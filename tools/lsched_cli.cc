// Command-line driver for training, evaluating, and comparing schedulers
// on the benchmark workloads without writing any C++.
//
//   lsched_cli train   --benchmark=tpch --episodes=100 --out=model.bin
//   lsched_cli eval    --benchmark=tpch --model=model.bin --queries=80
//   lsched_cli compare --benchmark=ssb  --model=model.bin --batch
//   lsched_cli report  --events=events.jsonl --decisions=decisions.csv
//   lsched_cli chaos   --seed=1 --duration-seconds=120 --threads=4
//   lsched_cli serve   --seed=1 --duration-seconds=60 --threads=4 --tenants=3
//   lsched_cli explain 17 --trace=trace.csv
//   lsched_cli top     --metrics-port=9100 [--watch] [--interval-ms=1000]
//   lsched_cli top     --profile=profile.csv
//   lsched_cli --version
//
// Flags (all optional unless noted):
//   --benchmark=tpch|ssb|job   workload family            [tpch]
//   --episodes=N               training episodes          [100]
//   --queries=N                evaluation queries         [80]
//   --threads=N                simulated worker threads   [60]
//   --interarrival-ms=N        mean arrival gap           [50]
//   --batch                    batch arrivals (all at t=0)
//   --seed=N                   master seed                [1]
//   --model=PATH               model to load (eval/compare)
//   --out=PATH                 checkpoint to write (train, required)
//   --transfer-from=PATH       warm start + freeze for transfer training
//   --events=PATH              scalar event JSONL (report; see
//                              LSCHED_SCALAR_EVENTS)
//   --decisions=PATH           decision-log CSV (report; see
//                              LSCHED_DECISION_LOG)
//   --duration-seconds=S       soak budget (chaos)        [30]
//   --workloads=N              max fuzzed workloads, 0 = until the
//                              duration budget runs out (chaos)
//   --scenario=NAME            shape the arrival stream with a workload
//                              scenario preset (chaos, serve): steady,
//                              diurnal, flash_crowd, drift_ramp, elastic,
//                              adversarial. Empty = plain Poisson.
//   --fault-log=PATH           where to dump the fault log when a chaos
//                              iteration fails             [fault_log.txt]
//   --tenants=N                serving tenants (serve)     [3]
//   --max-live=N               admission bound (serve)     [32]
//   --metrics-port=P           Prometheus exporter port, 0 = ephemeral,
//                              < 0 = off (serve)           [-1]
//   --slo-ms=N                 per-tenant latency SLO target, <= 0 = no SLO
//                              (serve)                     [0]
//   --slo-percentile=F         SLO percentile in (0,1) (serve) [0.99]
//   --trace-out=PATH           dump the per-query lifetime trace CSV on
//                              drain (serve; the input of `explain`)
//   --trace=PATH               lifetime-trace CSV to read (explain)
//   --profile-hz=F             sampling-profiler rate, 0 = off (serve) [0]
//   --profile-out=PATH         profiler CSV to write on drain (serve)
//                              [profile.csv]
//   --profile=PATH             profiler CSV to summarize offline (top)
//   --watch                    live refresh instead of one-shot (top)
//   --interval-ms=N            watch refresh interval (top)       [1000]
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/agent.h"
#include "core/trainer.h"
#include "obs/decision_log.h"
#include "obs/query_trace.h"
#include "obs/drift.h"
#include "obs/exporter.h"
#include "obs/profiler.h"
#include "obs/scalar_events.h"
#include "serve/serving_daemon.h"
#include "sched/decima.h"
#include "sched/guarded_policy.h"
#include "sched/heuristics.h"
#include "sched/selftune.h"
#include "testing/faultpoint.h"
#include "testing/fuzzer.h"
#include "testing/invariants.h"
#include "util/build_info.h"
#include "util/clock.h"
#include "workload/scenario.h"
#include "workload/workload.h"

namespace lsched {
namespace {

struct Args {
  std::string command;
  Benchmark benchmark = Benchmark::kTpch;
  int episodes = 100;
  int queries = 80;
  int threads = 60;
  double interarrival = 0.05;
  bool batch = false;
  uint64_t seed = 1;
  std::string model_path;
  std::string out_path;
  std::string transfer_from;
  std::string events_path;
  std::string decisions_path;
  double duration_seconds = 30.0;
  int workloads = 0;  // 0 = run until the duration budget is spent
  std::string scenario;  // empty = plain Poisson arrivals
  std::string fault_log_path = "fault_log.txt";
  int tenants = 3;
  int max_live = 32;
  int metrics_port = -1;  // < 0 = exporter off
  double slo_ms = 0.0;    // <= 0 = no SLO
  double slo_percentile = 0.99;
  std::string trace_out_path;
  std::string trace_path;
  int64_t explain_query = -1;
  double profile_hz = 0.0;  // <= 0 = sampling profiler off
  std::string profile_out_path = "profile.csv";
  std::string profile_path;  // top: offline CSV to summarize
  bool watch = false;
  int interval_ms = 1000;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--benchmark=")) {
      if (std::strcmp(v, "tpch") == 0) {
        args->benchmark = Benchmark::kTpch;
      } else if (std::strcmp(v, "ssb") == 0) {
        args->benchmark = Benchmark::kSsb;
      } else if (std::strcmp(v, "job") == 0) {
        args->benchmark = Benchmark::kJob;
      } else {
        std::fprintf(stderr, "unknown benchmark: %s\n", v);
        return false;
      }
    } else if (const char* v2 = value("--episodes=")) {
      args->episodes = std::atoi(v2);
    } else if (const char* v3 = value("--queries=")) {
      args->queries = std::atoi(v3);
    } else if (const char* v4 = value("--threads=")) {
      args->threads = std::atoi(v4);
    } else if (const char* v5 = value("--interarrival-ms=")) {
      args->interarrival = std::atof(v5) / 1000.0;
    } else if (arg == "--batch") {
      args->batch = true;
    } else if (const char* v6 = value("--seed=")) {
      args->seed = static_cast<uint64_t>(std::atoll(v6));
    } else if (const char* v7 = value("--model=")) {
      args->model_path = v7;
    } else if (const char* v8 = value("--out=")) {
      args->out_path = v8;
    } else if (const char* v9 = value("--transfer-from=")) {
      args->transfer_from = v9;
    } else if (const char* v10 = value("--events=")) {
      args->events_path = v10;
    } else if (const char* v11 = value("--decisions=")) {
      args->decisions_path = v11;
    } else if (const char* v12 = value("--duration-seconds=")) {
      args->duration_seconds = std::atof(v12);
    } else if (const char* v13 = value("--workloads=")) {
      args->workloads = std::atoi(v13);
    } else if (const char* v14 = value("--fault-log=")) {
      args->fault_log_path = v14;
    } else if (const char* v15 = value("--tenants=")) {
      args->tenants = std::atoi(v15);
    } else if (const char* v16 = value("--max-live=")) {
      args->max_live = std::atoi(v16);
    } else if (const char* v17 = value("--metrics-port=")) {
      args->metrics_port = std::atoi(v17);
    } else if (const char* v18 = value("--slo-ms=")) {
      args->slo_ms = std::atof(v18);
    } else if (const char* v19 = value("--slo-percentile=")) {
      args->slo_percentile = std::atof(v19);
    } else if (const char* v20 = value("--trace-out=")) {
      args->trace_out_path = v20;
    } else if (const char* v21 = value("--trace=")) {
      args->trace_path = v21;
    } else if (const char* v22 = value("--profile-hz=")) {
      args->profile_hz = std::atof(v22);
    } else if (const char* v23 = value("--profile-out=")) {
      args->profile_out_path = v23;
    } else if (const char* v24 = value("--profile=")) {
      args->profile_path = v24;
    } else if (arg == "--watch") {
      args->watch = true;
    } else if (const char* v25 = value("--interval-ms=")) {
      args->interval_ms = std::max(50, std::atoi(v25));
    } else if (const char* v26 = value("--scenario=")) {
      args->scenario = v26;
    } else if (args->command == "explain" && !arg.empty() && arg[0] != '-') {
      char* end = nullptr;
      args->explain_query = std::strtoll(arg.c_str(), &end, 10);
      if (end == arg.c_str() || *end != '\0' || args->explain_query < 0) {
        std::fprintf(stderr, "explain: bad query id '%s'\n", arg.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

LSchedConfig DefaultConfig() {
  LSchedConfig cfg;
  cfg.hidden_dim = 12;
  cfg.summary_dim = 12;
  cfg.head_hidden = 16;
  return cfg;
}

std::vector<QuerySubmission> EvalWorkload(const Args& args) {
  WorkloadConfig cfg;
  cfg.benchmark = args.benchmark;
  cfg.split = WorkloadSplit::kTest;
  cfg.num_queries = args.queries;
  cfg.batch = args.batch;
  cfg.mean_interarrival_seconds = args.interarrival;
  Rng rng(args.seed + 7777);
  return GenerateWorkload(cfg, &rng);
}

std::function<std::vector<QuerySubmission>(int, Rng*)> TrainFactoryForCli(
    Benchmark benchmark) {
  return MakeEpisodeFactory(benchmark, 10, 30, 0.02, 0.12);
}

int RunTrain(const Args& args) {
  if (args.out_path.empty()) {
    std::fprintf(stderr, "train requires --out=PATH\n");
    return 2;
  }
  LSchedModel model(DefaultConfig());
  if (!args.transfer_from.empty()) {
    LSchedModel base(DefaultConfig());
    const Status st = base.Load(args.transfer_from);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", args.transfer_from.c_str(),
                   st.ToString().c_str());
      return 2;
    }
    model.params()->CopyValuesFrom(*base.params());
    const int frozen = model.FreezeForTransfer();
    std::printf("transfer warm start from %s (%d tensors frozen)\n",
                args.transfer_from.c_str(), frozen);
  }
  SimEngineConfig ecfg;
  ecfg.num_threads = args.threads;
  ecfg.seed = args.seed;
  SimEngine engine(ecfg);
  TrainConfig tcfg;
  tcfg.episodes = args.episodes;
  tcfg.seed = args.seed;
  tcfg.log_every = std::max(1, args.episodes / 10);
  ReinforceTrainer trainer(&model, &engine, tcfg);
  std::printf("training on %s for %d episodes (%d threads)...\n",
              BenchmarkName(args.benchmark), args.episodes, args.threads);
  const TrainStats stats = trainer.Train(TrainFactoryForCli(args.benchmark));
  std::printf("final episode avg latency: %.3fs\n",
              stats.episode_avg_latency.back());
  const Status st = model.Save(args.out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("model written to %s\n", args.out_path.c_str());
  return 0;
}

int RunEval(const Args& args) {
  LSchedModel model(DefaultConfig());
  if (args.model_path.empty() || !model.Load(args.model_path).ok()) {
    std::fprintf(stderr, "eval requires a loadable --model=PATH\n");
    return 2;
  }
  SimEngineConfig ecfg;
  ecfg.num_threads = args.threads;
  ecfg.seed = args.seed;
  SimEngine engine(ecfg);
  LSchedAgent agent(&model);
  const EpisodeResult r = engine.Run(EvalWorkload(args), &agent);
  std::printf("%s %s x%d: avg=%.3fs p90=%.3fs makespan=%.3fs actions=%d "
              "sched_overhead=%.1fms\n",
              BenchmarkName(args.benchmark),
              args.batch ? "batch" : "streaming", args.queries, r.avg_latency,
              r.p90_latency, r.makespan, r.num_actions,
              1000.0 * r.scheduler_wall_seconds);
  return 0;
}

int RunCompare(const Args& args) {
  SimEngineConfig ecfg;
  ecfg.num_threads = args.threads;
  ecfg.seed = args.seed;
  SimEngine engine(ecfg);
  const auto workload = EvalWorkload(args);

  LSchedModel model(DefaultConfig());
  const bool have_model =
      !args.model_path.empty() && model.Load(args.model_path).ok();
  LSchedAgent lsched(&model);
  FifoScheduler fifo;
  FairScheduler fair;
  SjfScheduler sjf;
  QuickstepScheduler quickstep;
  CriticalPathScheduler cp;
  SelfTuneScheduler selftune;

  std::printf("%s %s x%d queries, %d threads:\n",
              BenchmarkName(args.benchmark),
              args.batch ? "batch" : "streaming", args.queries, args.threads);
  std::printf("%-12s %10s %10s %10s\n", "scheduler", "avg(s)", "p90(s)",
              "makespan");
  std::vector<std::pair<std::string, Scheduler*>> all;
  if (have_model) all.push_back({"LSched", &lsched});
  all.insert(all.end(), {{"Fair", &fair},
                         {"SJF", &sjf},
                         {"Quickstep", &quickstep},
                         {"SelfTune", &selftune},
                         {"CriticalPath", &cp},
                         {"FIFO", &fifo}});
  for (auto& [name, sched] : all) {
    const EpisodeResult r = engine.Run(workload, sched);
    std::printf("%-12s %10.3f %10.3f %10.3f\n", name.c_str(), r.avg_latency,
                r.p90_latency, r.makespan);
  }
  if (!have_model) {
    std::printf("(pass --model=PATH to include a trained LSched policy)\n");
  }
  return 0;
}

// ---------------------------------------------------------------------------
// report: offline rendering of the training telemetry stream and the
// prediction-drift picture, from the files the env exporters write
// (LSCHED_SCALAR_EVENTS → JSONL, LSCHED_DECISION_LOG → CSV).
// ---------------------------------------------------------------------------

// Compresses a series into a fixed-width ASCII strip chart: each column is
// the mean of its bucket, mapped onto nine density levels.
std::string Sparkline(const std::vector<double>& values, int width = 48) {
  static const char kLevels[] = " .:-=+*#%";
  const int num_levels = static_cast<int>(sizeof(kLevels)) - 2;
  if (values.empty()) return "";
  const int cols = std::min<int>(width, static_cast<int>(values.size()));
  std::vector<double> bucketed(cols, 0.0);
  std::vector<int> counts(cols, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) continue;
    const int c = static_cast<int>(i * cols / values.size());
    bucketed[c] += values[i];
    ++counts[c];
  }
  double lo = 0.0, hi = 0.0;
  bool any = false;
  for (int c = 0; c < cols; ++c) {
    if (counts[c] == 0) continue;
    bucketed[c] /= counts[c];
    if (!any || bucketed[c] < lo) lo = bucketed[c];
    if (!any || bucketed[c] > hi) hi = bucketed[c];
    any = true;
  }
  if (!any) return std::string(cols, '?');
  const double span = hi > lo ? hi - lo : 1.0;
  std::string out(cols, ' ');
  for (int c = 0; c < cols; ++c) {
    if (counts[c] == 0) continue;
    const int level =
        static_cast<int>((bucketed[c] - lo) / span * num_levels + 0.5);
    out[c] = kLevels[std::max(0, std::min(num_levels, level))];
  }
  return out;
}

int ReportEvents(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open events file: %s\n", path.c_str());
    return 1;
  }
  std::vector<obs::ScalarEvent> events;
  if (!obs::ParseScalarEventsJsonl(in, &events)) {
    std::fprintf(stderr, "malformed events file: %s\n", path.c_str());
    return 1;
  }
  // Group by tag in file (= append) order; std::map gives a stable listing.
  std::map<std::string, std::vector<double>> series;
  for (const obs::ScalarEvent& e : events) series[e.tag].push_back(e.value);
  std::printf("== learning curves: %s (%zu events, %zu tags) ==\n",
              path.c_str(), events.size(), series.size());
  std::printf("%-28s %6s %12s %12s %12s %12s\n", "tag", "n", "first", "last",
              "min", "max");
  for (const auto& [tag, values] : series) {
    double lo = values.front(), hi = values.front();
    for (double v : values) {
      if (std::isfinite(v)) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    std::printf("%-28s %6zu %12.4g %12.4g %12.4g %12.4g\n", tag.c_str(),
                values.size(), values.front(), values.back(), lo, hi);
    if (values.size() > 1) {
      std::printf("  [%s]\n", Sparkline(values).c_str());
    }
  }
  return 0;
}

int ReportDecisions(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open decisions file: %s\n", path.c_str());
    return 1;
  }
  std::vector<obs::DecisionRecord> records;
  if (!obs::ParseDecisionCsv(in, &records)) {
    std::fprintf(stderr, "malformed decision CSV: %s\n", path.c_str());
    return 1;
  }
  // Offline we have the whole stream, so quantiles are exact (sorted), and
  // a DriftMonitor replay reproduces the online Page-Hinkley score the
  // serving process would have seen for this log.
  struct OpStats {
    std::vector<double> errors;
  };
  std::map<std::string, OpStats> by_op;
  obs::DriftConfig dcfg;
  dcfg.export_gauges = false;
  obs::DriftMonitor replay(dcfg);
  int64_t usable = 0;
  for (const obs::DecisionRecord& r : records) {
    if (!std::isfinite(r.predicted_score) || r.realized_seconds <= 0.0) {
      continue;
    }
    ++usable;
    const std::string key = r.op_type.empty() ? "unknown" : r.op_type;
    by_op[key].errors.push_back(r.predicted_score - r.realized_seconds);
    replay.ObserveRecord(r);
  }
  std::printf("== prediction drift: %s (%zu decisions, %lld scored) ==\n",
              path.c_str(), records.size(), static_cast<long long>(usable));
  if (usable == 0) {
    std::printf("(no decisions carry both a predicted score and realized "
                "cost; nothing to analyze)\n");
    return 0;
  }
  std::printf("%-16s %8s %12s %12s %12s\n", "op_type", "n", "err_mean",
              "err_p50", "err_p99");
  auto quantile = [](std::vector<double>& v, double q) {
    std::sort(v.begin(), v.end());
    const double pos = q * static_cast<double>(v.size() - 1);
    const size_t i = static_cast<size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    return i + 1 < v.size() ? v[i] * (1.0 - frac) + v[i + 1] * frac : v[i];
  };
  for (auto& [op, stats] : by_op) {
    double mean = 0.0;
    for (double e : stats.errors) mean += e;
    mean /= static_cast<double>(stats.errors.size());
    std::printf("%-16s %8zu %12.4g %12.4g %12.4g\n", op.c_str(),
                stats.errors.size(), mean, quantile(stats.errors, 0.5),
                quantile(stats.errors, 0.99));
  }
  std::printf("drift score (Page-Hinkley / lambda): %.3f%s\n",
              replay.drift_score(),
              replay.alarmed() ? "  ** drift alarm fired during replay **"
                               : "");
  return 0;
}

int RunReport(const Args& args) {
  if (!obs::kCompiledIn) {
    std::fprintf(stderr,
                 "report requires an observability build "
                 "(reconfigure with -DLSCHED_OBS=ON)\n");
    return 2;
  }
  if (args.events_path.empty() && args.decisions_path.empty()) {
    std::fprintf(stderr,
                 "report requires --events=PATH and/or --decisions=PATH\n");
    return 2;
  }
  int rc = 0;
  if (!args.events_path.empty()) {
    rc = ReportEvents(args.events_path);
  }
  if (!args.decisions_path.empty()) {
    if (!args.events_path.empty()) std::printf("\n");
    const int rc2 = ReportDecisions(args.decisions_path);
    if (rc == 0) rc = rc2;
  }
  return rc;
}

// ---------------------------------------------------------------------------
// chaos: a seeded soak over fuzzed workloads with fuzzed fault/cancellation
// scripts (DESIGN.md §10). Each iteration runs the script through the
// SimEngine twice (byte-identical replay check), then through the RealEngine
// (real threads, real kernels), with a ValidatingScheduler wrapped around a
// GuardedPolicy so every snapshot, decision, and episode invariant is
// checked while the guard's fallback path stays hot. On the first violation
// the decision log and fault log are dumped for offline triage; exit 1.
// ---------------------------------------------------------------------------

int ChaosFail(const Args& args, uint64_t seed, const std::string& what) {
  std::fprintf(stderr, "chaos: workload seed %llu FAILED: %s\n",
               static_cast<unsigned long long>(seed), what.c_str());
  const std::string decisions_path =
      args.decisions_path.empty() ? "chaos_decisions.csv" : args.decisions_path;
  if (obs::DecisionLog::Global().WriteCsv(decisions_path)) {
    std::fprintf(stderr, "chaos: decision log dumped to %s\n",
                 decisions_path.c_str());
  }
  if (FaultInjector::Global().WriteLog(args.fault_log_path)) {
    std::fprintf(stderr, "chaos: fault log dumped to %s\n",
                 args.fault_log_path.c_str());
  }
  FaultInjector::Global().Clear();
  return 1;
}

/// Reports an unknown --scenario= value alongside the preset list. An empty
/// name (scenario mode off) passes.
bool CheckScenarioName(const std::string& name) {
  if (name.empty() || ScenarioByName(name).has_value()) return true;
  std::string have;
  for (const std::string& n : ScenarioNames()) {
    if (!have.empty()) have += ", ";
    have += n;
  }
  std::fprintf(stderr, "unknown scenario '%s' (have: %s)\n", name.c_str(),
               have.c_str());
  return false;
}

/// Highest simultaneous logical pool size a run reaches: the base thread
/// count plus the running maximum of the elasticity deltas.
int PeakPool(int base, const std::vector<ThreadPoolEvent>& events) {
  std::vector<ThreadPoolEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const ThreadPoolEvent& a, const ThreadPoolEvent& b) {
                     return a.time < b.time;
                   });
  int running = base;
  int peak = base;
  for (const ThreadPoolEvent& e : sorted) {
    running += e.delta;
    peak = std::max(peak, running);
  }
  return std::max(peak, base);
}

int RunChaos(const Args& args) {
  if (!kFaultsCompiledIn) {
    std::fprintf(stderr,
                 "chaos requires a fault-injection build "
                 "(reconfigure with -DLSCHED_FAULTS=ON)\n");
    return 2;
  }
  if (!CheckScenarioName(args.scenario)) return 2;
  FuzzerOptions fopts;
  fopts.chaos = true;
  fopts.min_queries = 6;
  fopts.max_queries = 16;
  fopts.scenario = args.scenario;
  const int sim_threads = std::max(1, args.threads);
  const int real_threads = std::max(1, std::min(args.threads, 8));

  Stopwatch clock;
  int iterations = 0;
  int64_t fallbacks = 0;
  int64_t fires = 0;
  while ((args.workloads == 0 || iterations < args.workloads) &&
         clock.ElapsedSeconds() < args.duration_seconds) {
    const uint64_t seed =
        args.seed + static_cast<uint64_t>(iterations) * 0x9e3779b97f4a7c15ULL;
    WorkloadFuzzer fuzzer(seed, fopts);
    FuzzedWorkload w = fuzzer.NextWorkload();
    // Sporadic scheduler failures on top of the fuzzed script keep the
    // guard's fallback/recovery machinery exercised every iteration.
    FaultRule decide;
    decide.point = "policy_decide";
    decide.probability = 0.05;
    decide.action = {FaultType::kError, 0.0};
    w.faults.rules.push_back(decide);
    const size_t num_queries = w.sim_queries.size();

    auto check = [&](const EpisodeResult& r, const ValidatingScheduler& v,
                     int pool_size, const char* engine) -> std::string {
      if (!v.violations().empty()) {
        return std::string(engine) + ": " + v.violations().front();
      }
      const Status st = ValidateEpisodeResult(r, num_queries, pool_size);
      if (!st.ok()) return std::string(engine) + ": " + st.ToString();
      if (r.final_statuses.size() != num_queries) {
        return std::string(engine) + ": missing final statuses";
      }
      for (size_t qi = 0; qi < num_queries; ++qi) {
        if (r.final_statuses[qi] != w.expected_statuses[qi]) {
          return std::string(engine) + ": query " + std::to_string(qi) +
                 " ended " + QueryStatusName(r.final_statuses[qi]) +
                 ", script demands " +
                 QueryStatusName(w.expected_statuses[qi]);
        }
      }
      return "";
    };

    // Two identically seeded simulator runs: the fault schedule is
    // reinstalled before each (resetting rule RNGs and counters), so the
    // episodes must replay byte-for-byte.
    SimEngineConfig scfg;
    scfg.num_threads = sim_threads;
    scfg.seed = seed;
    scfg.cancels = w.cancels;
    scfg.thread_events = w.sim_thread_events;  // scenario elasticity
    const int sim_pool = PeakPool(sim_threads, w.sim_thread_events);
    EpisodeResult sim[2];
    for (int rep = 0; rep < 2; ++rep) {
      FaultInjector::Global().Install(w.faults);
      SjfScheduler sjf;
      GuardedPolicy guarded(&sjf);
      ValidatingScheduler validating(&guarded);
      SimEngine engine(scfg);
      sim[rep] = engine.Run(w.sim_queries, &validating);
      fallbacks += guarded.fallback_count();
      fires += FaultInjector::Global().total_fires();
      const std::string err = check(sim[rep], validating, sim_pool, "sim");
      if (!err.empty()) return ChaosFail(args, seed, err);
    }
    const std::string diff = DiffEpisodeResults(sim[0], sim[1]);
    if (!diff.empty()) {
      return ChaosFail(args, seed, "sim replay diverged: " + diff);
    }

    // Same script against real threads and real kernels: terminal statuses
    // are scripted, so they must agree with the simulator's.
    {
      FaultInjector::Global().Install(w.faults);
      RealEngineConfig rcfg;
      rcfg.num_threads = real_threads;
      rcfg.cancels = w.cancels;
      rcfg.thread_events = w.real_thread_events;  // scenario elasticity
      SjfScheduler sjf;
      GuardedPolicy guarded(&sjf);
      ValidatingScheduler validating(&guarded);
      RealEngine engine(w.catalog.get(), rcfg);
      const RealRunResult rr = engine.Run(w.real_queries, &validating);
      fallbacks += guarded.fallback_count();
      fires += FaultInjector::Global().total_fires();
      const std::string err =
          check(rr.episode, validating,
                PeakPool(real_threads, w.real_thread_events), "real");
      if (!err.empty()) return ChaosFail(args, seed, err);
    }
    FaultInjector::Global().Clear();
    ++iterations;
  }

  std::printf("chaos: %d workloads clean in %.1fs (%lld faults fired, "
              "%lld guard fallbacks)\n",
              iterations, clock.ElapsedSeconds(),
              static_cast<long long>(fires),
              static_cast<long long>(fallbacks));
  if (iterations > 0 && fallbacks == 0) {
    std::fprintf(stderr,
                 "chaos: guard fallback path never exercised — the soak "
                 "did not test what it claims to\n");
    return 1;
  }
  return 0;
}

int RunExplain(const Args& args) {
  // Replay a dumped lifetime trace (serve --trace-out= / LSCHED_QUERY_TRACE)
  // into a human-readable timeline attributing each wait segment to the
  // serving decision that caused it. Pure offline tooling: works in every
  // build mode, on traces produced by any engine.
  if (args.trace_path.empty()) {
    std::fprintf(stderr, "explain: --trace=PATH is required\n");
    return 2;
  }
  std::ifstream in(args.trace_path);
  if (!in) {
    std::fprintf(stderr, "explain: cannot open %s\n",
                 args.trace_path.c_str());
    return 1;
  }
  std::vector<obs::QueryTraceRecord> records;
  if (!obs::ParseQueryTraceCsv(in, &records)) {
    std::fprintf(stderr, "explain: malformed trace CSV %s\n",
                 args.trace_path.c_str());
    return 1;
  }
  if (args.explain_query < 0) {
    // No query named: list what the trace holds so the user can pick one.
    std::printf("%s: %zu query traces\n", args.trace_path.c_str(),
                records.size());
    std::printf("%8s %6s %8s %10s %8s %6s\n", "query", "tenant", "status",
                "latency_s", "edges", "drops");
    for (const obs::QueryTraceRecord& r : records) {
      std::printf("%8lld %6d %8s %10.4f %8zu %6lld\n",
                  static_cast<long long>(r.query), r.tenant,
                  QueryStatusName(static_cast<QueryStatus>(r.final_status)),
                  r.terminal_time - r.arrival_time, r.edges.size(),
                  static_cast<long long>(r.dropped_edges));
    }
    return 0;
  }
  // Most recent record wins when the ring saw the id more than once.
  const obs::QueryTraceRecord* found = nullptr;
  for (const obs::QueryTraceRecord& r : records) {
    if (r.query == args.explain_query) found = &r;
  }
  if (found == nullptr) {
    std::fprintf(stderr,
                 "explain: query %lld not in %s (%zu traces retained; the "
                 "log is a bounded ring — rerun with a larger capture or "
                 "explain a later query)\n",
                 static_cast<long long>(args.explain_query),
                 args.trace_path.c_str(), records.size());
    return 1;
  }
  std::fputs(obs::RenderExplain(*found).c_str(), stdout);
  return 0;
}

// ---------------------------------------------------------------------------
// top: live worker-state utilization against a running daemon's /metrics
// (one-shot or --watch refresh), or an offline summary of a sampling-
// profiler CSV (--profile=). Plain POSIX sockets, so it works regardless
// of this binary's own obs gate — only the *daemon* needs -DLSCHED_OBS=ON.
// ---------------------------------------------------------------------------

std::string TopHttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t hdr = response.find("\r\n\r\n");
  return hdr == std::string::npos ? "" : response.substr(hdr + 4);
}

struct TopSnapshot {
  bool ok = false;
  // worker id -> cumulative seconds per state (accountant gauge order).
  std::map<int, std::array<double, prof::kNumWorkerStates>> workers;
  double overhead_fraction = -1.0;
};

TopSnapshot ScrapeTop(int port) {
  TopSnapshot snap;
  const std::string body = TopHttpGet(port, "/metrics");
  if (body.empty()) return snap;
  snap.ok = true;
  std::istringstream is(body);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t sp = line.find(' ');
    if (sp == std::string::npos) continue;
    const std::string name = line.substr(0, sp);
    const double value = std::atof(line.c_str() + sp + 1);
    if (name == "exec_sched_overhead_fraction") {
      snap.overhead_fraction = value;
      continue;
    }
    // exec_worker<i>_<state>_seconds (obs::PrometheusName of the
    // EpisodeRecorder's exec.worker<i>.<state>_seconds gauges).
    if (name.rfind("exec_worker", 0) != 0) continue;
    const char* p = name.c_str() + std::strlen("exec_worker");
    char* end = nullptr;
    const long worker = std::strtol(p, &end, 10);
    if (end == p || *end != '_') continue;
    const std::string rest(end + 1);
    for (int s = 0; s < prof::kNumWorkerStates; ++s) {
      const std::string want =
          std::string(
              prof::WorkerStateName(static_cast<prof::WorkerState>(s))) +
          "_seconds";
      if (rest == want) {
        snap.workers[static_cast<int>(worker)][static_cast<size_t>(s)] =
            value;
        break;
      }
    }
  }
  return snap;
}

/// Renders one top frame. With a previous snapshot, percentages are over
/// the interval delta (live utilization); without one, over the cumulative
/// buckets since the episode started.
std::string RenderTop(const TopSnapshot& cur, const TopSnapshot* prev) {
  std::ostringstream os;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%-6s %9s %9s %6s %8s %9s %9s\n", "worker",
                "dispatch%", "execute%", "idle%", "stalled%", "draining%",
                "wall_s");
  os << buf;
  double busy = 0.0, wall = 0.0;
  for (const auto& [worker, seconds] : cur.workers) {
    std::array<double, prof::kNumWorkerStates> delta = seconds;
    if (prev != nullptr) {
      const auto it = prev->workers.find(worker);
      if (it != prev->workers.end()) {
        for (int s = 0; s < prof::kNumWorkerStates; ++s) {
          delta[static_cast<size_t>(s)] -= it->second[static_cast<size_t>(s)];
        }
      }
    }
    double total = 0.0;
    for (double d : delta) total += d;
    if (total <= 0.0) continue;
    const double inv = 100.0 / total;
    std::snprintf(buf, sizeof(buf),
                  "%-6d %9.1f %9.1f %6.1f %8.1f %9.1f %9.3f\n", worker,
                  delta[0] * inv, delta[1] * inv, delta[2] * inv,
                  delta[3] * inv, delta[4] * inv, total);
    os << buf;
    busy += delta[1];
    wall += total;
  }
  if (wall > 0.0) {
    std::snprintf(buf, sizeof(buf), "pool executing: %.1f%% of %.3fs %s\n",
                  100.0 * busy / wall, wall,
                  prev != nullptr ? "(interval)" : "(cumulative)");
    os << buf;
  }
  if (cur.overhead_fraction >= 0.0) {
    std::snprintf(buf, sizeof(buf), "scheduler overhead fraction: %.4f%%\n",
                  100.0 * cur.overhead_fraction);
    os << buf;
  }
  return os.str();
}

int RunTop(const Args& args) {
  if (!args.profile_path.empty()) {
    // Offline mode: summarize a sampling-profiler CSV.
    std::ifstream in(args.profile_path);
    if (!in) {
      std::fprintf(stderr, "top: cannot open %s\n", args.profile_path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::vector<prof::ProfileSample> samples;
    if (!prof::ParseProfileCsv(text.str(), &samples)) {
      std::fprintf(stderr, "top: malformed profile CSV %s\n",
                   args.profile_path.c_str());
      return 1;
    }
    std::fputs(prof::RenderProfileSummary(samples).c_str(), stdout);
    return 0;
  }
  if (args.metrics_port < 0) {
    std::fprintf(stderr,
                 "top: --metrics-port=P (a running daemon's exporter port) "
                 "or --profile=CSV is required\n");
    return 2;
  }
  TopSnapshot cur = ScrapeTop(args.metrics_port);
  if (!cur.ok) {
    std::fprintf(stderr, "top: no /metrics at 127.0.0.1:%d\n",
                 args.metrics_port);
    return 1;
  }
  if (!args.watch) {
    std::fputs(RenderTop(cur, nullptr).c_str(), stdout);
    return 0;
  }
  // Live refresh: interval deltas, until the daemon goes away or ^C.
  TopSnapshot prev = cur;
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(args.interval_ms));
    cur = ScrapeTop(args.metrics_port);
    if (!cur.ok) {
      std::fprintf(stderr, "top: daemon went away\n");
      return 0;
    }
    // ANSI clear-screen + home keeps the frame in place like top(1).
    std::fputs("\x1b[2J\x1b[H", stdout);
    std::printf("lsched top — 127.0.0.1:%d (refresh %dms)\n",
                args.metrics_port, args.interval_ms);
    std::fputs(RenderTop(cur, &prev).c_str(), stdout);
    std::fflush(stdout);
    prev = cur;
  }
}

int RunVersion() {
  std::printf("lsched_cli %s\n", buildinfo::kGitSha);
  std::printf("  compiler   : %s\n", buildinfo::kCompiler);
  std::printf("  build type : %s\n", buildinfo::kBuildType);
  std::printf("  obs        : %s\n", buildinfo::kObs);
  std::printf("  faults     : %s\n", buildinfo::kFaults);
  return 0;
}

int RunServe(const Args& args) {
  // A live multi-tenant serving soak: start the daemon against real worker
  // threads, feed it a seeded Poisson arrival stream with fuzzed tenant and
  // priority tags (plus sporadic cancels) for the duration budget, then
  // drain gracefully and audit conservation — every accepted submission
  // must reach exactly one terminal state and the per-tenant ledgers must
  // sum back to the stream totals.
  if (!CheckScenarioName(args.scenario)) return 2;
  std::optional<ScenarioSpec> scenario;
  if (!args.scenario.empty()) scenario = ScenarioByName(args.scenario);
  // Scenario presets are authored at their own base rate; map that onto the
  // wall clock so the preset's base rate lands on 1/--interarrival-ms and
  // the traffic shape (bursts, diurnal swing) stretches accordingly.
  const double time_scale =
      scenario ? args.interarrival * scenario->rate.base_rate : 1.0;
  FuzzerOptions fopts;
  fopts.num_tenants = std::max(1, args.tenants);
  fopts.high_priority_fraction = 0.15;
  fopts.low_priority_fraction = 0.25;
  WorkloadFuzzer fuzzer(args.seed, fopts);
  const auto catalog = fuzzer.FuzzCatalog();
  std::vector<QueryPlan> plans;
  for (int i = 0; i < 8; ++i) plans.push_back(fuzzer.FuzzPlan(*catalog));

  ServingDaemonConfig cfg;
  cfg.policy.max_live_queries = args.max_live;
  for (int t = 0; t < fopts.num_tenants; ++t) {
    cfg.policy.tenant_weights.push_back({t, 1.0 + t});
  }
  cfg.real.num_threads = std::max(1, std::min(args.threads, 8));
  cfg.real.flush_window_queries = 8;
  if (scenario) {
    // Elasticity rides along: the preset's pool events, rescaled to wall
    // seconds, fire once during the soak (ServeLoop applies due events).
    cfg.real.thread_events =
        ScaleThreadEvents(scenario->thread_events, time_scale);
  }
  if (args.slo_ms > 0.0) {
    TenantSlo slo;
    slo.target_seconds = args.slo_ms / 1000.0;
    slo.percentile = args.slo_percentile;
    for (int t = 0; t < fopts.num_tenants; ++t) {
      cfg.policy.tenant_slos.push_back({t, slo});
    }
  }
  if (!args.trace_out_path.empty()) {
    if (obs::kCompiledIn) {
      obs::SetEnabled(true);  // trace capture needs the obs runtime on
    } else {
      std::fprintf(stderr, "serve: --trace-out needs -DLSCHED_OBS=ON; no "
                   "trace will be written\n");
    }
  }

  obs::MetricsExporter exporter;
  if (args.metrics_port >= 0) {
    if (exporter.Start(args.metrics_port)) {
      std::fprintf(stderr, "serve: metrics on 127.0.0.1:%d/metrics\n",
                   exporter.port());
    } else {
      std::fprintf(stderr, "serve: metrics exporter unavailable "
                   "(build with -DLSCHED_OBS=ON)\n");
    }
  }

  // Sampling profiler: the RealEngine registers its worker accountants on
  // Start(), and the profiler snapshots their states at --profile-hz into
  // a bounded ring dumped as CSV on drain (the input of `top --profile=`).
  bool profiling = false;
  if (args.profile_hz > 0.0) {
    if (obs::kCompiledIn) {
      obs::SetEnabled(true);
      profiling = prof::SamplingProfiler::Global().Start(args.profile_hz);
      if (!profiling) {
        std::fprintf(stderr, "serve: sampling profiler failed to start\n");
      }
    } else {
      std::fprintf(stderr,
                   "serve: --profile-hz needs -DLSCHED_OBS=ON; no profile "
                   "will be written\n");
    }
  }

  SjfScheduler sjf;
  GuardedPolicy guarded(&sjf);
  ValidatingScheduler validating(&guarded);
  ServingDaemon daemon(cfg);
  daemon.Start(catalog.get(), &validating);

  Rng rng(args.seed ^ 0x5eedf00dULL);
  Stopwatch clock;
  int64_t submitted = 0;
  int64_t cancels_sent = 0;
  QueryId last_id = kInvalidQuery;
  // Scenario presets describe a few seconds of traffic shape; cycle that
  // window for the whole soak so a long run sees the pattern repeatedly.
  constexpr double kScenarioCycleSeconds = 4.0;
  while (clock.ElapsedSeconds() < args.duration_seconds) {
    double gap;
    if (scenario) {
      // Lewis-Shedler thinning against the preset's rate curve, evaluated
      // in scenario time (wall time / time_scale) modulo the cycle window.
      const double lambda_max = scenario->rate.MaxRate();
      double t = clock.ElapsedSeconds() / time_scale;
      gap = 0.0;
      do {
        const double step = rng.Exponential(1.0 / lambda_max);
        t += step;
        gap += step * time_scale;
      } while (gap < args.duration_seconds &&
               rng.Uniform() * lambda_max >
                   scenario->rate.RateAt(
                       std::fmod(t, kScenarioCycleSeconds)));
    } else {
      gap = rng.Exponential(args.interarrival);
    }
    const double remaining = args.duration_seconds - clock.ElapsedSeconds();
    if (remaining <= 0.0) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(std::min(gap, remaining)));
    const QueryPlan& plan =
        plans[rng.UniformInt(static_cast<uint64_t>(plans.size()))];
    const QueryId id = daemon.Submit(plan, fuzzer.FuzzTag());
    if (id == kInvalidQuery) break;  // ingress closed (should not happen)
    last_id = id;
    ++submitted;
    if (rng.Uniform() < 0.05) {
      daemon.Cancel(static_cast<QueryId>(
          rng.UniformInt(static_cast<int64_t>(0), last_id)));
      ++cancels_sent;
    }
  }

  const RealRunResult result = daemon.Stop();
  exporter.Stop();
  if (profiling) {
    auto& profiler = prof::SamplingProfiler::Global();
    profiler.Stop();
    const auto samples = profiler.Snapshot();
    if (profiler.WriteCsv(args.profile_out_path)) {
      std::fprintf(stderr, "serve: %zu profile samples (%lld dropped) -> %s\n",
                   samples.size(),
                   static_cast<long long>(profiler.dropped()),
                   args.profile_out_path.c_str());
    } else {
      std::fprintf(stderr, "serve: cannot write profile CSV %s\n",
                   args.profile_out_path.c_str());
    }
    std::fputs(prof::RenderProfileSummary(samples).c_str(), stdout);
    prof::RegisterDefaultCounterTables();
    std::fputs(prof::CounterTables::Global().Render().c_str(), stdout);
  }
  if (!args.trace_out_path.empty() && obs::kCompiledIn) {
    if (obs::QueryTraceLog::Global().WriteCsv(args.trace_out_path)) {
      std::fprintf(stderr, "serve: %zu query traces -> %s\n",
                   obs::QueryTraceLog::Global().size(),
                   args.trace_out_path.c_str());
    } else {
      std::fprintf(stderr, "serve: cannot write trace CSV %s\n",
                   args.trace_out_path.c_str());
    }
  }
  const EpisodeResult& e = result.episode;

  auto fail = [&](const std::string& why) {
    std::fprintf(stderr, "serve: FAILED after %lld submissions: %s\n",
                 static_cast<long long>(submitted), why.c_str());
    return 1;
  };
  if (!validating.violations().empty()) {
    return fail("scheduler contract: " + validating.violations().front());
  }
  const Status st =
      ValidateEpisodeResult(e, static_cast<size_t>(submitted),
                            PeakPool(cfg.real.num_threads,
                                     cfg.real.thread_events));
  if (!st.ok()) return fail(st.ToString());
  if (e.final_statuses.size() != static_cast<size_t>(submitted)) {
    return fail("missing final statuses");
  }
  for (QueryStatus s : e.final_statuses) {
    if (!IsTerminalStatus(s)) return fail("non-terminal final status");
  }
  const int64_t terminal = static_cast<int64_t>(e.query_latencies.size()) +
                           e.num_queries_cancelled + e.num_queries_failed +
                           e.num_queries_shed;
  if (terminal != submitted) {
    return fail("terminal conservation: " + std::to_string(terminal) +
                " != " + std::to_string(submitted));
  }
  int64_t arrived = 0, tenant_terminal = 0;
  std::printf(
      "tenant  weight  arrived admitted complete cancel fail shed "
      "service_s    p50_s    p99_s     burn\n");
  for (TenantId t : daemon.tenants().ids()) {
    const TenantStats* s = daemon.tenants().stats(t);
    arrived += s->arrived;
    tenant_terminal += s->Terminal();
    std::printf("%6d %7.1f %8lld %8lld %8lld %6lld %4lld %4lld %9.3f %8.4f "
                "%8.4f %8.3f\n",
                t, daemon.tenants().weight(t),
                static_cast<long long>(s->arrived),
                static_cast<long long>(s->admitted),
                static_cast<long long>(s->completed),
                static_cast<long long>(s->cancelled),
                static_cast<long long>(s->failed),
                static_cast<long long>(s->shed), s->service_seconds,
                s->latency_p50.Value(), s->latency_p99.Value(),
                s->BurnRate());
  }
  if (arrived != submitted) {
    return fail("per-tenant arrivals: " + std::to_string(arrived) + " != " +
                std::to_string(submitted));
  }
  if (tenant_terminal != submitted) {
    return fail("per-tenant terminals: " + std::to_string(tenant_terminal) +
                " != " + std::to_string(submitted));
  }
  std::printf(
      "serve: %lld queries in %.1fs clean drain (%lld completed, %lld "
      "cancelled, %lld failed, %lld shed; %lld cancel requests, %lld door "
      "sheds, %lld displacements)\n",
      static_cast<long long>(submitted), clock.ElapsedSeconds(),
      static_cast<long long>(e.query_latencies.size()),
      static_cast<long long>(e.num_queries_cancelled),
      static_cast<long long>(e.num_queries_failed),
      static_cast<long long>(e.num_queries_shed),
      static_cast<long long>(cancels_sent),
      static_cast<long long>(daemon.policy().num_shed()),
      static_cast<long long>(daemon.policy().num_displacements()));
  return 0;
}

}  // namespace
}  // namespace lsched

int main(int argc, char** argv) {
  lsched::Args args;
  if (!lsched::ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s train|eval|compare|report|chaos|serve|explain|"
                 "top|--version "
                 "[--benchmark=tpch|ssb|job] "
                 "[--episodes=N] [--queries=N] [--threads=N] [--batch] "
                 "[--model=PATH] [--out=PATH] [--transfer-from=PATH] "
                 "[--events=PATH] [--decisions=PATH] [--duration-seconds=S] "
                 "[--workloads=N] [--scenario=NAME] [--fault-log=PATH] "
                 "[--tenants=N] "
                 "[--max-live=N] [--metrics-port=P] [--slo-ms=N] "
                 "[--slo-percentile=F] [--trace-out=PATH] "
                 "[--trace=PATH] [--profile-hz=F] [--profile-out=PATH] "
                 "[--profile=PATH] [--watch] [--interval-ms=N] [query-id]\n",
                 argv[0]);
    return 2;
  }
  if (args.command == "--version" || args.command == "version") {
    return lsched::RunVersion();
  }
  if (args.command == "train") return lsched::RunTrain(args);
  if (args.command == "eval") return lsched::RunEval(args);
  if (args.command == "compare") return lsched::RunCompare(args);
  if (args.command == "report") return lsched::RunReport(args);
  if (args.command == "chaos") return lsched::RunChaos(args);
  if (args.command == "serve") return lsched::RunServe(args);
  if (args.command == "explain") return lsched::RunExplain(args);
  if (args.command == "top") return lsched::RunTop(args);
  std::fprintf(stderr, "unknown command: %s\n", args.command.c_str());
  return 2;
}

// Command-line driver for training, evaluating, and comparing schedulers
// on the benchmark workloads without writing any C++.
//
//   lsched_cli train   --benchmark=tpch --episodes=100 --out=model.bin
//   lsched_cli eval    --benchmark=tpch --model=model.bin --queries=80
//   lsched_cli compare --benchmark=ssb  --model=model.bin --batch
//
// Flags (all optional unless noted):
//   --benchmark=tpch|ssb|job   workload family            [tpch]
//   --episodes=N               training episodes          [100]
//   --queries=N                evaluation queries         [80]
//   --threads=N                simulated worker threads   [60]
//   --interarrival-ms=N        mean arrival gap           [50]
//   --batch                    batch arrivals (all at t=0)
//   --seed=N                   master seed                [1]
//   --model=PATH               model to load (eval/compare)
//   --out=PATH                 checkpoint to write (train, required)
//   --transfer-from=PATH       warm start + freeze for transfer training
#include <cstdio>
#include <cstring>
#include <string>

#include "core/agent.h"
#include "core/trainer.h"
#include "sched/decima.h"
#include "sched/heuristics.h"
#include "sched/selftune.h"
#include "workload/workload.h"

namespace lsched {
namespace {

struct Args {
  std::string command;
  Benchmark benchmark = Benchmark::kTpch;
  int episodes = 100;
  int queries = 80;
  int threads = 60;
  double interarrival = 0.05;
  bool batch = false;
  uint64_t seed = 1;
  std::string model_path;
  std::string out_path;
  std::string transfer_from;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--benchmark=")) {
      if (std::strcmp(v, "tpch") == 0) {
        args->benchmark = Benchmark::kTpch;
      } else if (std::strcmp(v, "ssb") == 0) {
        args->benchmark = Benchmark::kSsb;
      } else if (std::strcmp(v, "job") == 0) {
        args->benchmark = Benchmark::kJob;
      } else {
        std::fprintf(stderr, "unknown benchmark: %s\n", v);
        return false;
      }
    } else if (const char* v2 = value("--episodes=")) {
      args->episodes = std::atoi(v2);
    } else if (const char* v3 = value("--queries=")) {
      args->queries = std::atoi(v3);
    } else if (const char* v4 = value("--threads=")) {
      args->threads = std::atoi(v4);
    } else if (const char* v5 = value("--interarrival-ms=")) {
      args->interarrival = std::atof(v5) / 1000.0;
    } else if (arg == "--batch") {
      args->batch = true;
    } else if (const char* v6 = value("--seed=")) {
      args->seed = static_cast<uint64_t>(std::atoll(v6));
    } else if (const char* v7 = value("--model=")) {
      args->model_path = v7;
    } else if (const char* v8 = value("--out=")) {
      args->out_path = v8;
    } else if (const char* v9 = value("--transfer-from=")) {
      args->transfer_from = v9;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

LSchedConfig DefaultConfig() {
  LSchedConfig cfg;
  cfg.hidden_dim = 12;
  cfg.summary_dim = 12;
  cfg.head_hidden = 16;
  return cfg;
}

std::vector<QuerySubmission> EvalWorkload(const Args& args) {
  WorkloadConfig cfg;
  cfg.benchmark = args.benchmark;
  cfg.split = WorkloadSplit::kTest;
  cfg.num_queries = args.queries;
  cfg.batch = args.batch;
  cfg.mean_interarrival_seconds = args.interarrival;
  Rng rng(args.seed + 7777);
  return GenerateWorkload(cfg, &rng);
}

std::function<std::vector<QuerySubmission>(int, Rng*)> TrainFactoryForCli(
    Benchmark benchmark) {
  return MakeEpisodeFactory(benchmark, 10, 30, 0.02, 0.12);
}

int RunTrain(const Args& args) {
  if (args.out_path.empty()) {
    std::fprintf(stderr, "train requires --out=PATH\n");
    return 2;
  }
  LSchedModel model(DefaultConfig());
  if (!args.transfer_from.empty()) {
    LSchedModel base(DefaultConfig());
    const Status st = base.Load(args.transfer_from);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", args.transfer_from.c_str(),
                   st.ToString().c_str());
      return 2;
    }
    model.params()->CopyValuesFrom(*base.params());
    const int frozen = model.FreezeForTransfer();
    std::printf("transfer warm start from %s (%d tensors frozen)\n",
                args.transfer_from.c_str(), frozen);
  }
  SimEngineConfig ecfg;
  ecfg.num_threads = args.threads;
  ecfg.seed = args.seed;
  SimEngine engine(ecfg);
  TrainConfig tcfg;
  tcfg.episodes = args.episodes;
  tcfg.seed = args.seed;
  tcfg.log_every = std::max(1, args.episodes / 10);
  ReinforceTrainer trainer(&model, &engine, tcfg);
  std::printf("training on %s for %d episodes (%d threads)...\n",
              BenchmarkName(args.benchmark), args.episodes, args.threads);
  const TrainStats stats = trainer.Train(TrainFactoryForCli(args.benchmark));
  std::printf("final episode avg latency: %.3fs\n",
              stats.episode_avg_latency.back());
  const Status st = model.Save(args.out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("model written to %s\n", args.out_path.c_str());
  return 0;
}

int RunEval(const Args& args) {
  LSchedModel model(DefaultConfig());
  if (args.model_path.empty() || !model.Load(args.model_path).ok()) {
    std::fprintf(stderr, "eval requires a loadable --model=PATH\n");
    return 2;
  }
  SimEngineConfig ecfg;
  ecfg.num_threads = args.threads;
  ecfg.seed = args.seed;
  SimEngine engine(ecfg);
  LSchedAgent agent(&model);
  const EpisodeResult r = engine.Run(EvalWorkload(args), &agent);
  std::printf("%s %s x%d: avg=%.3fs p90=%.3fs makespan=%.3fs actions=%d "
              "sched_overhead=%.1fms\n",
              BenchmarkName(args.benchmark),
              args.batch ? "batch" : "streaming", args.queries, r.avg_latency,
              r.p90_latency, r.makespan, r.num_actions,
              1000.0 * r.scheduler_wall_seconds);
  return 0;
}

int RunCompare(const Args& args) {
  SimEngineConfig ecfg;
  ecfg.num_threads = args.threads;
  ecfg.seed = args.seed;
  SimEngine engine(ecfg);
  const auto workload = EvalWorkload(args);

  LSchedModel model(DefaultConfig());
  const bool have_model =
      !args.model_path.empty() && model.Load(args.model_path).ok();
  LSchedAgent lsched(&model);
  FifoScheduler fifo;
  FairScheduler fair;
  SjfScheduler sjf;
  QuickstepScheduler quickstep;
  CriticalPathScheduler cp;
  SelfTuneScheduler selftune;

  std::printf("%s %s x%d queries, %d threads:\n",
              BenchmarkName(args.benchmark),
              args.batch ? "batch" : "streaming", args.queries, args.threads);
  std::printf("%-12s %10s %10s %10s\n", "scheduler", "avg(s)", "p90(s)",
              "makespan");
  std::vector<std::pair<std::string, Scheduler*>> all;
  if (have_model) all.push_back({"LSched", &lsched});
  all.insert(all.end(), {{"Fair", &fair},
                         {"SJF", &sjf},
                         {"Quickstep", &quickstep},
                         {"SelfTune", &selftune},
                         {"CriticalPath", &cp},
                         {"FIFO", &fifo}});
  for (auto& [name, sched] : all) {
    const EpisodeResult r = engine.Run(workload, sched);
    std::printf("%-12s %10.3f %10.3f %10.3f\n", name.c_str(), r.avg_latency,
                r.p90_latency, r.makespan);
  }
  if (!have_model) {
    std::printf("(pass --model=PATH to include a trained LSched policy)\n");
  }
  return 0;
}

}  // namespace
}  // namespace lsched

int main(int argc, char** argv) {
  lsched::Args args;
  if (!lsched::ParseArgs(argc, argv, &args)) {
    std::fprintf(stderr,
                 "usage: %s train|eval|compare [--benchmark=tpch|ssb|job] "
                 "[--episodes=N] [--queries=N] [--threads=N] [--batch] "
                 "[--model=PATH] [--out=PATH] [--transfer-from=PATH]\n",
                 argv[0]);
    return 2;
  }
  if (args.command == "train") return lsched::RunTrain(args);
  if (args.command == "eval") return lsched::RunEval(args);
  if (args.command == "compare") return lsched::RunCompare(args);
  std::fprintf(stderr, "unknown command: %s\n", args.command.c_str());
  return 2;
}

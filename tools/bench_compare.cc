// Diffs two perf-trajectory snapshots (BENCH_<name>.json, written by the
// bench_common harness) and exits nonzero when the new run regressed past
// the fail threshold. The CI perf-trajectory job runs this against the
// baselines committed at the repo root.
//
//   bench_compare [flags] OLD.json NEW.json
//
// Flags:
//   --warn-threshold=F   relative regression that warns        [0.10]
//   --fail-threshold=F   relative regression that fails        [0.25]
//   --threshold=F        shorthand: sets the fail threshold
//   --fail-filter=SUB    only metrics whose key contains SUB can hard-fail
//                        (others at most warn); CI passes "p50" so noisy
//                        tail metrics on shared runners do not gate
//   --strict             keep hard-fails even when the machine
//                        fingerprints of the two snapshots differ
//   --warn-only          render everything but always exit 0
//
// Exit codes: 0 within thresholds, 1 regression, 2 usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "util/perf_snapshot.h"

int main(int argc, char** argv) {
  lsched::CompareOptions opts;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--warn-threshold=")) {
      opts.warn_threshold = std::atof(v);
    } else if (const char* v2 = value("--fail-threshold=")) {
      opts.fail_threshold = std::atof(v2);
    } else if (const char* v3 = value("--threshold=")) {
      opts.fail_threshold = std::atof(v3);
    } else if (const char* v4 = value("--fail-filter=")) {
      opts.fail_filter = v4;
    } else if (arg == "--strict") {
      opts.strict = true;
    } else if (arg == "--warn-only") {
      opts.warn_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_compare: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare [--warn-threshold=F] "
                 "[--fail-threshold=F] [--fail-filter=SUB] [--strict] "
                 "[--warn-only] OLD.json NEW.json\n");
    return 2;
  }

  lsched::PerfSnapshot baseline, fresh;
  if (!lsched::ReadPerfSnapshot(paths[0], &baseline)) {
    std::fprintf(stderr, "bench_compare: cannot parse %s\n", paths[0].c_str());
    return 2;
  }
  if (!lsched::ReadPerfSnapshot(paths[1], &fresh)) {
    std::fprintf(stderr, "bench_compare: cannot parse %s\n", paths[1].c_str());
    return 2;
  }

  const lsched::CompareResult result =
      lsched::ComparePerfSnapshots(baseline, fresh, opts);
  std::fputs(lsched::RenderCompare(baseline, fresh, result).c_str(), stdout);
  return lsched::CompareExitCode(result, opts);
}

// Tests for the model-quality observability layer: the P² streaming
// quantile sketch, the scalar training-event stream, the prediction-drift
// monitor (Page-Hinkley), the Prometheus renderer/exporter, and the
// drift → OnlineLSched retrain-escalation hook.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/online.h"
#include "core/trainer.h"
#include "exec/sim_engine.h"
#include "obs/decision_log.h"
#include "obs/drift.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/scalar_events.h"
#include "sched/heuristics.h"
#include "util/rng.h"
#include "workload/workload.h"

#if LSCHED_OBS_ENABLED
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#endif

namespace lsched {
namespace {

double ExactQuantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const size_t i = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  return i + 1 < v.size() ? v[i] * (1.0 - frac) + v[i + 1] * frac : v[i];
}

// ---------------------------------------------------------------------------
// P² quantile sketch (compiled in both obs modes)
// ---------------------------------------------------------------------------

TEST(P2QuantileTest, ExactForSmallSamples) {
  obs::P2Quantile median(0.5);
  EXPECT_EQ(median.Value(), 0.0);
  median.Observe(3.0);
  EXPECT_DOUBLE_EQ(median.Value(), 3.0);
  median.Observe(1.0);
  EXPECT_DOUBLE_EQ(median.Value(), 2.0);
  median.Observe(2.0);
  EXPECT_DOUBLE_EQ(median.Value(), 2.0);
  EXPECT_EQ(median.count(), 3);
}

TEST(P2QuantileTest, TracksQuantilesOfNormalStream) {
  Rng rng(17);
  obs::P2Quantile p50(0.5);
  obs::P2Quantile p99(0.99);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Normal(5.0, 2.0);
    samples.push_back(x);
    p50.Observe(x);
    p99.Observe(x);
  }
  EXPECT_NEAR(p50.Value(), ExactQuantile(samples, 0.5), 0.15);
  EXPECT_NEAR(p99.Value(), ExactQuantile(samples, 0.99), 0.5);
}

TEST(P2QuantileTest, MonotoneQuantilesStayOrdered) {
  Rng rng(99);
  obs::P2Quantile p50(0.5);
  obs::P2Quantile p99(0.99);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.Exponential(0.3);
    p50.Observe(x);
    p99.Observe(x);
  }
  EXPECT_LT(p50.Value(), p99.Value());
}

// ---------------------------------------------------------------------------
// Prometheus rendering (compiled in both obs modes)
// ---------------------------------------------------------------------------

TEST(PrometheusTest, NameSanitization) {
  EXPECT_EQ(obs::PrometheusName("model.drift_score"), "model_drift_score");
  EXPECT_EQ(obs::PrometheusName("engine.work-order/us"),
            "engine_work_order_us");
  EXPECT_EQ(obs::PrometheusName("9lives"), "_9lives");
  EXPECT_EQ(obs::PrometheusName(""), "_");
}

TEST(PrometheusTest, GoldenCounterAndGauge) {
  obs::MetricsRegistry::Snapshot snap;
  snap.counters.push_back({"train.episodes", 7});
  snap.gauges.push_back({"model.drift_score", 2.5});
  snap.gauges.push_back({"serve.tenant0.slo_burn_rate", 1.25});
  snap.gauges.push_back({"model.tenant0.drift_score", 0.5});
  std::ostringstream out;
  obs::RenderPrometheusText(snap, out);
  // The render leads with the build-info block; its labels carry the git
  // sha so the golden covers structure, not the (build-varying) values.
  const std::string info = obs::BuildInfoPrometheusText();
  EXPECT_NE(info.find("# TYPE lsched_build_info gauge\n"), std::string::npos);
  EXPECT_NE(info.find("lsched_build_info{git_sha=\""), std::string::npos);
  EXPECT_NE(info.find("compiler=\""), std::string::npos);
  EXPECT_NE(info.find("obs=\""), std::string::npos);
  EXPECT_NE(info.find("faults=\""), std::string::npos);
  EXPECT_NE(info.find("\"} 1\n"), std::string::npos);
  EXPECT_EQ(out.str(),
            info +
            "# HELP train_episodes train.episodes\n"
            "# TYPE train_episodes counter\n"
            "train_episodes 7\n"
            "# HELP model_drift_score model.drift_score\n"
            "# TYPE model_drift_score gauge\n"
            "model_drift_score 2.5\n"
            "# HELP serve_tenant0_slo_burn_rate serve.tenant0.slo_burn_rate\n"
            "# TYPE serve_tenant0_slo_burn_rate gauge\n"
            "serve_tenant0_slo_burn_rate 1.25\n"
            "# HELP model_tenant0_drift_score model.tenant0.drift_score\n"
            "# TYPE model_tenant0_drift_score gauge\n"
            "model_tenant0_drift_score 0.5\n");
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeWithInf) {
  obs::MetricsRegistry::Snapshot snap;
  obs::HistogramSnapshot hist;
  hist.bucket_counts.assign(8, 0);
  hist.bucket_counts[2] = 2;
  hist.bucket_counts[5] = 1;
  hist.count = 3;
  hist.sum = 0.5;
  snap.histograms.push_back({"train.latency", hist});
  std::ostringstream out;
  obs::RenderPrometheusText(snap, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE train_latency histogram"), std::string::npos);
  // Sparse cumulative buckets: 2 at the first boundary, 3 at the second.
  EXPECT_NE(text.find("\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("train_latency_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("train_latency_sum 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("train_latency_count 3\n"), std::string::npos);
}

#if LSCHED_OBS_ENABLED

// ---------------------------------------------------------------------------
// Scalar event stream
// ---------------------------------------------------------------------------

TEST(ScalarEventsTest, JsonlRoundTripIncludingNaN) {
  auto& w = obs::ScalarEventWriter::Global();
  w.Clear();
  w.Append("train.reward", 0, -12.5);
  w.Append("train.reward", 1, -10.0);
  w.Append("train.grad_norm_preclip", 1,
           std::numeric_limits<double>::quiet_NaN());
  ASSERT_EQ(w.size(), 3u);

  std::ostringstream out;
  w.WriteJsonl(out);
  std::istringstream in(out.str());
  std::vector<obs::ScalarEvent> parsed;
  ASSERT_TRUE(obs::ParseScalarEventsJsonl(in, &parsed)) << out.str();
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].tag, "train.reward");
  EXPECT_EQ(parsed[0].step, 0);
  EXPECT_DOUBLE_EQ(parsed[0].value, -12.5);
  EXPECT_EQ(parsed[1].step, 1);
  EXPECT_DOUBLE_EQ(parsed[1].value, -10.0);
  EXPECT_EQ(parsed[2].tag, "train.grad_norm_preclip");
  EXPECT_TRUE(std::isnan(parsed[2].value));
  EXPECT_GE(parsed[2].wall_ms, 0.0);
  w.Clear();
}

TEST(ScalarEventsTest, SeriesFiltersByTagInAppendOrder) {
  auto& w = obs::ScalarEventWriter::Global();
  w.Clear();
  w.Append("a", 0, 1.0);
  w.Append("b", 0, 9.0);
  w.Append("a", 1, 2.0);
  const std::vector<double> a = w.SeriesValues("a");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  EXPECT_DOUBLE_EQ(a[1], 2.0);
  EXPECT_EQ(w.Series("b").size(), 1u);
  EXPECT_TRUE(w.Series("c").empty());
  w.Clear();
}

TEST(ScalarEventsTest, ParserRejectsGarbage) {
  std::istringstream in("this is not json\n");
  std::vector<obs::ScalarEvent> parsed;
  EXPECT_FALSE(obs::ParseScalarEventsJsonl(in, &parsed));
}

// ---------------------------------------------------------------------------
// Drift monitor
// ---------------------------------------------------------------------------

obs::DriftConfig FastDriftConfig() {
  obs::DriftConfig cfg;
  cfg.min_samples = 30;
  cfg.ph_lambda = 20.0;
  return cfg;
}

TEST(DriftMonitorTest, StationaryStreamDoesNotAlarm) {
  obs::SetEnabled(true);
  obs::DriftMonitor monitor(FastDriftConfig());
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double realized = 1.0 + 0.2 * rng.Normal();
    monitor.Observe("scan", realized + 0.1 * rng.Normal(), realized);
  }
  EXPECT_FALSE(monitor.alarmed());
  EXPECT_LT(monitor.drift_score(), 1.0);
  EXPECT_EQ(monitor.sample_count(), 5000);
}

TEST(DriftMonitorTest, ShiftedStreamAlarmsAndFiresCallback) {
  obs::SetEnabled(true);
  obs::DriftMonitor monitor(FastDriftConfig());
  int fired = 0;
  obs::DriftAlarm seen;
  monitor.AddAlarmCallback([&](const obs::DriftAlarm& a) {
    ++fired;
    seen = a;
  });
  Rng rng(6);
  // Stationary phase: prediction error centered at zero...
  for (int i = 0; i < 500; ++i) {
    const double realized = 1.0 + 0.2 * rng.Normal();
    monitor.Observe("scan", realized + 0.1 * rng.Normal(), realized);
  }
  ASSERT_FALSE(monitor.alarmed());
  // ...then the realized cost doubles while predictions stand still: the
  // signed error shifts down by ~10 baseline standard deviations.
  for (int i = 0; i < 500 && !monitor.alarmed(); ++i) {
    const double realized = 2.0 + 0.2 * rng.Normal();
    monitor.Observe("scan", (realized - 1.0) + 0.1 * rng.Normal(), realized);
  }
  EXPECT_TRUE(monitor.alarmed());
  EXPECT_GE(monitor.drift_score(), 1.0);
  EXPECT_EQ(fired, 1);  // latched: fires exactly once
  EXPECT_GT(seen.sample_count, 500);
  EXPECT_FALSE(seen.upward);
  // Gauges and the alarm counter reflect the event.
  auto& reg = obs::MetricsRegistry::Global();
  EXPECT_GE(reg.GetGauge("model.drift_score")->Value(), 1.0);
  EXPECT_GE(reg.GetCounter("model.drift_alarms")->Value(), 1);

  // Reset clears the latch but keeps the callback registered.
  monitor.Reset();
  EXPECT_FALSE(monitor.alarmed());
  EXPECT_EQ(monitor.sample_count(), 0);
}

TEST(DriftMonitorTest, PerKeyQuantilesAndOverflowKey) {
  obs::SetEnabled(true);
  obs::DriftConfig cfg = FastDriftConfig();
  cfg.max_keys = 2;
  obs::DriftMonitor monitor(cfg);
  for (int i = 0; i < 100; ++i) {
    monitor.Observe("HashJoin", 2.0, 1.0);   // error +1
    monitor.Observe("TableScan", 1.0, 2.0);  // error -1
    monitor.Observe("Sort", 5.0, 5.0);       // overflow -> "other"
  }
  const auto keys = monitor.SnapshotKeys();
  ASSERT_EQ(keys.size(), 3u);  // sorted: HashJoin, TableScan, other
  EXPECT_EQ(keys[0].first, "HashJoin");
  EXPECT_EQ(keys[0].second.count, 100);
  EXPECT_NEAR(keys[0].second.mean_error, 1.0, 1e-9);
  EXPECT_NEAR(keys[0].second.p50, 1.0, 1e-9);
  EXPECT_EQ(keys[1].first, "TableScan");
  EXPECT_NEAR(keys[1].second.mean_error, -1.0, 1e-9);
  EXPECT_EQ(keys[2].first, "other");
  EXPECT_EQ(keys[2].second.count, 100);
  EXPECT_NEAR(keys[2].second.mean_error, 0.0, 1e-9);
}

TEST(DriftMonitorTest, PerTenantShardsIsolateOneDriftingTenant) {
  obs::SetEnabled(true);
  obs::DriftConfig cfg = FastDriftConfig();
  obs::DriftMonitor monitor(cfg);
  Rng rng(11);
  // Tenant 0 stays stationary throughout; tenant 1 is stationary for the
  // first half, then its realized cost doubles while predictions stand
  // still. Tenant 1's shard must alarm and name the tenant while tenant
  // 0's shard stays quiet. (The blended global stream also sees half its
  // traffic drift and may alarm on its own schedule — that is the
  // coarse-grained signal the shards exist to sharpen, so it is not
  // asserted either way here.)
  obs::DriftAlarm shard_alarm;
  int shard_fired = 0;
  monitor.AddAlarmCallback([&](const obs::DriftAlarm& a) {
    if (a.tenant >= 0) {
      ++shard_fired;
      shard_alarm = a;
    }
  });
  for (int i = 0; i < 600; ++i) {
    const double realized = 1.0 + 0.2 * rng.Normal();
    monitor.Observe("scan", /*tenant=*/0, realized + 0.1 * rng.Normal(),
                    realized);
    monitor.Observe("scan", /*tenant=*/1, realized + 0.1 * rng.Normal(),
                    realized);
  }
  ASSERT_FALSE(monitor.alarmed());
  for (int i = 0; i < 600 && shard_fired == 0; ++i) {
    const double stat = 1.0 + 0.2 * rng.Normal();
    monitor.Observe("scan", /*tenant=*/0, stat + 0.1 * rng.Normal(), stat);
    const double drifted = 2.0 + 0.2 * rng.Normal();
    monitor.Observe("scan", /*tenant=*/1, (drifted - 1.0) + 0.1 * rng.Normal(),
                    drifted);
  }
  ASSERT_EQ(shard_fired, 1) << "tenant shard must alarm";
  EXPECT_EQ(shard_alarm.tenant, 1);

  const auto tenants = monitor.SnapshotTenants();
  ASSERT_EQ(tenants.size(), 2u);
  EXPECT_EQ(tenants[0].first, 0);
  EXPECT_FALSE(tenants[0].second.alarmed);
  EXPECT_LT(tenants[0].second.drift_score, 1.0);
  EXPECT_EQ(tenants[1].first, 1);
  EXPECT_TRUE(tenants[1].second.alarmed);
  EXPECT_GE(tenants[1].second.drift_score, 1.0);

  // Per-tenant gauges exported under model.tenant<id>.*.
  auto& reg = obs::MetricsRegistry::Global();
  EXPECT_GE(reg.GetGauge("model.tenant1.drift_score")->Value(), 1.0);
  EXPECT_LT(reg.GetGauge("model.tenant0.drift_score")->Value(), 1.0);

  monitor.Reset();
  EXPECT_TRUE(monitor.SnapshotTenants().empty());
}

TEST(DriftMonitorTest, TenantShardCapFeedsOnlyGlobalStream) {
  obs::SetEnabled(true);
  obs::DriftConfig cfg = FastDriftConfig();
  cfg.max_tenants = 2;
  obs::DriftMonitor monitor(cfg);
  for (int i = 0; i < 10; ++i) {
    monitor.Observe("scan", /*tenant=*/0, 1.0, 1.0);
    monitor.Observe("scan", /*tenant=*/1, 1.0, 1.0);
    monitor.Observe("scan", /*tenant=*/2, 1.0, 1.0);  // past the cap
  }
  EXPECT_EQ(monitor.sample_count(), 30);  // global stream sees everything
  const auto tenants = monitor.SnapshotTenants();
  ASSERT_EQ(tenants.size(), 2u);  // shard cap holds
  EXPECT_EQ(tenants[0].first, 0);
  EXPECT_EQ(tenants[1].first, 1);
}

TEST(DriftMonitorTest, IgnoresNonFiniteObservations) {
  obs::SetEnabled(true);
  obs::DriftMonitor monitor;
  monitor.Observe("x", std::numeric_limits<double>::quiet_NaN(), 1.0);
  monitor.Observe("x", 1.0, std::numeric_limits<double>::infinity());
  EXPECT_EQ(monitor.sample_count(), 0);
}

TEST(DriftMonitorTest, BackfillAttachmentFeedsMonitor) {
  obs::SetEnabled(true);
  auto& log = obs::DecisionLog::Global();
  log.Clear();
  obs::DriftMonitor monitor;
  monitor.AttachToDecisionLog();

  obs::DecisionRecord rec;
  rec.engine = "sim";
  rec.op_type = "HashJoin";
  rec.predicted_score = 0.4;
  const int64_t id = log.Add(rec);
  log.AddRealized(id, 0.5);
  EXPECT_EQ(monitor.sample_count(), 1);
  const auto keys = monitor.SnapshotKeys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].first, "HashJoin");

  monitor.DetachFromDecisionLog();
  log.AddRealized(id, 0.5);
  EXPECT_EQ(monitor.sample_count(), 1);  // detached: no further samples
  log.Clear();
}

// ---------------------------------------------------------------------------
// HTTP exporter
// ---------------------------------------------------------------------------

std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
  ::send(fd, req.data(), req.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ExporterTest, ServesMetricsHealthzAnd404) {
  obs::SetEnabled(true);
  obs::MetricsRegistry::Global().GetGauge("model.drift_score")->Set(0.25);

  obs::MetricsExporter exporter;
  ASSERT_TRUE(exporter.Start(0));  // ephemeral port
  ASSERT_GT(exporter.port(), 0);
  EXPECT_TRUE(exporter.running());
  EXPECT_FALSE(exporter.Start(0)) << "double Start must fail";

  const std::string metrics = HttpGet(exporter.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE model_drift_score gauge"),
            std::string::npos);
  EXPECT_NE(metrics.find("model_drift_score 0.25"), std::string::npos);

  const std::string health = HttpGet(exporter.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string missing = HttpGet(exporter.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  exporter.Stop();
  EXPECT_FALSE(exporter.running());
}

// Regression: concurrent scrapes racing Stop() used to serialize through a
// single accept-loop handler; a scrape in flight when Stop() ran could be
// cut off mid-response. Four threads hammer /metrics while the exporter
// shuts down — every response that arrives must be complete (status line,
// exposition-format Content-Type, Content-Length honored to the byte).
TEST(ExporterTest, ConcurrentScrapesSurviveStop) {
  obs::SetEnabled(true);
  obs::MetricsRegistry::Global().GetGauge("model.drift_score")->Set(0.5);

  obs::MetricsExporter exporter;
  ASSERT_TRUE(exporter.Start(0));
  const int port = exporter.port();

  constexpr int kScrapers = 4;
  std::atomic<bool> keep_going{true};
  std::array<std::atomic<int>, kScrapers> complete{};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < kScrapers; ++t) {
    scrapers.emplace_back([&, t] {
      while (keep_going.load(std::memory_order_acquire)) {
        const std::string resp = HttpGet(port, "/metrics");
        // An empty response means the connection was refused — the
        // listener is already gone, which is a legal race outcome. A
        // non-empty response must be whole.
        if (resp.empty()) continue;
        EXPECT_NE(resp.find("200 OK"), std::string::npos);
        EXPECT_NE(resp.find("Content-Type: text/plain; version=0.0.4"),
                  std::string::npos);
        EXPECT_NE(resp.find("lsched_build_info{"), std::string::npos);
        const size_t hdr_end = resp.find("\r\n\r\n");
        const size_t cl = resp.find("Content-Length: ");
        if (hdr_end == std::string::npos || cl == std::string::npos) {
          ADD_FAILURE() << "truncated response header";
          continue;
        }
        const size_t want =
            std::strtoull(resp.c_str() + cl + 16, nullptr, 10);
        EXPECT_EQ(resp.size() - (hdr_end + 4), want)
            << "body truncated mid-scrape";
        complete[static_cast<size_t>(t)].fetch_add(
            1, std::memory_order_relaxed);
      }
    });
  }

  // Wait until every scraper has landed at least one scrape, then stop
  // with traffic still in flight.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  auto all_scraped = [&] {
    for (const auto& c : complete) {
      if (c.load(std::memory_order_relaxed) == 0) return false;
    }
    return true;
  };
  while (!all_scraped() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  keep_going.store(false, std::memory_order_release);
  for (std::thread& th : scrapers) th.join();
  for (int t = 0; t < kScrapers; ++t) {
    EXPECT_GE(complete[static_cast<size_t>(t)].load(), 1)
        << "scraper " << t << " never completed a scrape";
  }
}

// ---------------------------------------------------------------------------
// Trainer telemetry: the event stream and TrainStats come from one path
// ---------------------------------------------------------------------------

LSchedConfig SmallModelConfig() {
  LSchedConfig cfg;
  cfg.hidden_dim = 8;
  cfg.summary_dim = 8;
  cfg.head_hidden = 8;
  return cfg;
}

TEST(TrainerTelemetryTest, EventStreamMatchesTrainStats) {
  obs::SetEnabled(true);
  auto& events = obs::ScalarEventWriter::Global();
  events.Clear();

  LSchedModel model(SmallModelConfig());
  SimEngineConfig ecfg;
  ecfg.num_threads = 4;
  SimEngine engine(ecfg);
  TrainConfig tcfg;
  tcfg.episodes = 3;
  tcfg.telemetry_prefix = "ttest";
  ReinforceTrainer trainer(&model, &engine, tcfg);
  const TrainStats stats =
      trainer.Train(MakeEpisodeFactory(Benchmark::kSsb, 4, 6, 0.05, 0.1, {2}));

  const std::vector<double> rewards = events.SeriesValues("ttest.reward");
  ASSERT_EQ(rewards.size(), stats.episode_reward.size());
  for (size_t i = 0; i < rewards.size(); ++i) {
    EXPECT_DOUBLE_EQ(rewards[i], stats.episode_reward[i]) << "episode " << i;
  }
  const std::vector<double> latency = events.SeriesValues("ttest.avg_latency");
  ASSERT_EQ(latency.size(), stats.episode_avg_latency.size());
  for (size_t i = 0; i < latency.size(); ++i) {
    EXPECT_DOUBLE_EQ(latency[i], stats.episode_avg_latency[i]);
  }
  // The full per-episode model-quality series rode along.
  EXPECT_EQ(events.SeriesValues("ttest.policy_entropy").size(), 3u);
  EXPECT_EQ(events.SeriesValues("ttest.grad_norm_preclip").size(), 3u);
  EXPECT_EQ(events.SeriesValues("ttest.grad_norm_postclip").size(), 3u);
  EXPECT_EQ(events.SeriesValues("ttest.learning_rate").size(), 3u);
  EXPECT_EQ(events.SeriesValues("ttest.return_variance").size(), 3u);
  // Entropy of a sampling policy over >1 candidates is positive; the
  // post-clip norm never exceeds pre-clip.
  const auto pre = events.SeriesValues("ttest.grad_norm_preclip");
  const auto post = events.SeriesValues("ttest.grad_norm_postclip");
  for (size_t i = 0; i < pre.size(); ++i) {
    EXPECT_LE(post[i], pre[i] + 1e-9);
  }
  // And the registry gauge agrees with the stream (single write path).
  EXPECT_DOUBLE_EQ(
      obs::MetricsRegistry::Global().GetGauge("train.last_reward")->Value(),
      stats.episode_reward.back());
  events.Clear();
}

// ---------------------------------------------------------------------------
// Acceptance: a mid-run cost-model shift drives the drift score over the
// threshold and escalates OnlineLSched's update cadence
// ---------------------------------------------------------------------------

TEST(OnlineDriftTest, CostShiftFiresAlarmAndEscalatesOnlineUpdates) {
  obs::SetEnabled(true);
  auto& log = obs::DecisionLog::Global();
  log.Clear();

  obs::DriftConfig dcfg;
  dcfg.min_samples = 40;
  dcfg.ph_lambda = 25.0;
  obs::DriftMonitor monitor(dcfg);
  monitor.AttachToDecisionLog();

  LSchedModel model(SmallModelConfig());
  OnlineConfig ocfg;
  ocfg.update_every_queries = 16;  // checkpoint-mode serving
  OnlineLSched online(&model, ocfg);
  online.AttachDriftMonitor(&monitor);
  ASSERT_EQ(online.update_every_queries(), 16);

  // Phase 1: SJF serving on the cost model its estimates were built from.
  // Prediction error is stationary -> no alarm.
  WorkloadConfig wcfg;
  wcfg.benchmark = Benchmark::kSsb;
  wcfg.num_queries = 24;
  wcfg.scale_factors = {2};
  Rng rng(21);
  SjfScheduler sjf;
  SimEngineConfig base_cfg;
  base_cfg.num_threads = 8;
  SimEngine base_engine(base_cfg);
  base_engine.Run(GenerateWorkload(wcfg, &rng), &sjf);
  ASSERT_GT(monitor.sample_count(), dcfg.min_samples);
  ASSERT_FALSE(monitor.alarmed())
      << "baseline must be stationary (score=" << monitor.drift_score()
      << ")";

  // Phase 2: the workload shifts under the policy — contention inflates
  // every realized duration while the estimates stand still.
  SimEngineConfig shifted_cfg = base_cfg;
  shifted_cfg.cost_params.intra_query_contention = 1.0;
  SimEngine shifted_engine(shifted_cfg);
  shifted_engine.Run(GenerateWorkload(wcfg, &rng), &sjf);

  EXPECT_TRUE(monitor.alarmed())
      << "shift must alarm (score=" << monitor.drift_score() << ")";
  EXPECT_GE(monitor.drift_score(), 1.0);
  EXPECT_GE(
      obs::MetricsRegistry::Global().GetGauge("model.drift_score")->Value(),
      1.0);

  // The retrain hook: the next completion the online scheduler sees
  // escalates it from checkpoint mode to query-by-query self-correction.
  EXPECT_FALSE(online.drift_escalated());
  online.OnQueryCompleted(0, 0.1);
  EXPECT_TRUE(online.drift_escalated());
  EXPECT_EQ(online.update_every_queries(), 1);
  EXPECT_GE(obs::MetricsRegistry::Global()
                .GetCounter("online.drift_escalations")
                ->Value(),
            1);

  // After retrain/redeploy the operator drops back to checkpoint cadence.
  online.ResetDriftEscalation();
  EXPECT_FALSE(online.drift_escalated());
  EXPECT_EQ(online.update_every_queries(), 16);

  monitor.DetachFromDecisionLog();
  log.Clear();
}

TEST(OnlineGaugesTest, ProgressGaugesTrackUpdates) {
  obs::SetEnabled(true);
  LSchedModel model(SmallModelConfig());
  OnlineConfig ocfg;
  ocfg.update_every_queries = 2;
  OnlineLSched online(&model, ocfg);
  online.Reset();

  WorkloadConfig wcfg;
  wcfg.benchmark = Benchmark::kSsb;
  wcfg.num_queries = 8;
  wcfg.scale_factors = {2};
  Rng rng(11);
  SimEngineConfig ecfg;
  ecfg.num_threads = 6;
  SimEngine engine(ecfg);
  engine.Run(GenerateWorkload(wcfg, &rng), &online);

  auto& reg = obs::MetricsRegistry::Global();
  EXPECT_GT(online.num_updates(), 0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("online.num_updates")->Value(),
                   static_cast<double>(online.num_updates()));
  EXPECT_DOUBLE_EQ(reg.GetGauge("online.update_every_queries")->Value(), 2.0);
  EXPECT_LT(reg.GetGauge("online.completions_since_update")->Value(), 2.5);
}

#endif  // LSCHED_OBS_ENABLED

// Compiles in both modes: the model-obs stub API must stay
// source-compatible with -DLSCHED_OBS=OFF.
TEST(ObsModelStubTest, ApiIsUsableRegardlessOfCompileGate) {
  obs::ScalarEventWriter::Global().Append("stub.tag", 0, 1.0);
  obs::DriftMonitor monitor;
  monitor.Observe("stub", 1.0, 2.0);
  monitor.AddAlarmCallback([](const obs::DriftAlarm&) {});
  (void)monitor.drift_score();
  (void)monitor.SnapshotKeys();
  monitor.Reset();
  obs::MetricsExporter exporter;
  EXPECT_FALSE(exporter.running());
  exporter.Stop();
  std::ostringstream out;
  obs::RenderPrometheusText(obs::MetricsRegistry::Global().TakeSnapshot(),
                            out);
  SUCCEED();
}

}  // namespace
}  // namespace lsched

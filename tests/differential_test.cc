#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "testing/differential.h"

namespace lsched {
namespace {

uint64_t EnvOrDefault(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

/// The main differential matrix: >= 50 fuzzed workloads, every heuristic
/// scheduler policy, RealEngine at 1/2/8 threads vs the single-threaded
/// oracle, plus double SimEngine runs for determinism. Override the
/// workload set with LSCHED_FUZZ_SEED / LSCHED_FUZZ_WORKLOADS to replay a
/// failure from a test log (the failure message embeds the exact recipe).
TEST(DifferentialTest, HeuristicSchedulersMatchOracle) {
  const uint64_t seed = EnvOrDefault("LSCHED_FUZZ_SEED", 20260806);
  const int workloads =
      static_cast<int>(EnvOrDefault("LSCHED_FUZZ_WORKLOADS", 50));
  DifferentialOptions options;
  options.real_thread_counts = {1, 2, 8};
  options.chunk_rows = 128;
  DifferentialReport report =
      RunDifferential(seed, workloads, HeuristicSchedulerFactories(), options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.workloads_run, workloads);
  // 7 heuristics x 3 thread counts per workload.
  EXPECT_EQ(report.real_engine_runs, report.workloads_run * 7 * 3);
}

/// The learned policies (untrained tiny models, greedy serving) must
/// produce oracle-identical results too: correctness cannot depend on the
/// quality of the policy. Fewer workloads — NN forwards dominate runtime.
TEST(DifferentialTest, LearnedSchedulersMatchOracle) {
  const uint64_t seed = EnvOrDefault("LSCHED_FUZZ_SEED", 7);
  const int workloads =
      static_cast<int>(EnvOrDefault("LSCHED_FUZZ_WORKLOADS", 6));
  DifferentialOptions options;
  options.real_thread_counts = {1, 8};
  options.chunk_rows = 128;
  DifferentialReport report =
      RunDifferential(seed, workloads, LearnedSchedulerFactories(), options);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(DifferentialTest, SummaryEmbedsReproRecipe) {
  DifferentialOptions options;
  options.real_thread_counts = {1};
  options.run_sim = false;
  DifferentialReport report = RunDifferential(
      424242, 1, {HeuristicSchedulerFactories().front()}, options);
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("LSCHED_FUZZ_SEED=424242"), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("ctest -R differential_test"), std::string::npos)
      << summary;
}

TEST(DifferentialTest, WorkloadSeedDerivationIsStableAndSpread) {
  // Pinned: replaying "workload 3 of seed 42" must mean the same workload
  // forever, or logged repro recipes rot.
  EXPECT_EQ(WorkloadSeed(42, 3), WorkloadSeed(42, 3));
  EXPECT_NE(WorkloadSeed(42, 3), WorkloadSeed(42, 4));
  EXPECT_NE(WorkloadSeed(42, 3), WorkloadSeed(43, 3));
}

}  // namespace
}  // namespace lsched

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "exec/real_engine.h"
#include "exec/worklist.h"
#include "plan/plan_builder.h"
#include "sched/heuristics.h"
#include "storage/table_generator.h"
#include "testing/faultpoint.h"

namespace lsched {
namespace {

// ---------------------------------------------------------------------------
// Kind plumbing
// ---------------------------------------------------------------------------

TEST(WorklistKindTest, NamesRoundTrip) {
  for (WorklistKind kind : {WorklistKind::kLocking, WorklistKind::kAtomic}) {
    WorklistKind parsed;
    ASSERT_TRUE(ParseWorklistKind(WorklistKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  WorklistKind parsed;
  EXPECT_FALSE(ParseWorklistKind("bogus", &parsed));
  EXPECT_FALSE(ParseWorklistKind("", &parsed));
}

// ---------------------------------------------------------------------------
// Single-threaded contract, both implementations
// ---------------------------------------------------------------------------

class WorklistContractTest : public ::testing::TestWithParam<WorklistKind> {};

TEST_P(WorklistContractTest, FifoOrderAndSize) {
  auto list = MakeWorklist<int>(GetParam(), 64);
  EXPECT_EQ(list->Size(), 0u);
  int out = -1;
  EXPECT_FALSE(list->TryPopClaim(&out));
  for (int i = 0; i < 10; ++i) list->Push(i);
  EXPECT_EQ(list->Size(), 10u);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(list->TryPopClaim(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(list->TryPopClaim(&out));
}

TEST_P(WorklistContractTest, DrainReturnsRemainingInOrder) {
  auto list = MakeWorklist<int>(GetParam(), 64);
  for (int i = 0; i < 8; ++i) list->Push(i);
  int out = -1;
  ASSERT_TRUE(list->TryPopClaim(&out));
  const std::vector<int> rest = list->Drain();
  ASSERT_EQ(rest.size(), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(rest[static_cast<size_t>(i)], i + 1);
  EXPECT_EQ(list->Size(), 0u);
}

TEST_P(WorklistContractTest, PopClaimWaitTimesOutOnEmpty) {
  auto list = MakeWorklist<int>(GetParam(), 64);
  int out = -1;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(list->PopClaimWait(&out, std::chrono::milliseconds(5)));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // The wait must be bounded (well under a second even on loaded CI).
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST_P(WorklistContractTest, PopClaimWaitWakesOnConcurrentPush) {
  auto list = MakeWorklist<int>(GetParam(), 64);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    list->Push(42);
  });
  int out = -1;
  // Generous timeout: the push lands long before it; the test is that the
  // sleeping consumer is actually woken rather than timing out.
  bool got = false;
  for (int i = 0; i < 1000 && !got; ++i) {
    got = list->PopClaimWait(&out, std::chrono::milliseconds(20));
  }
  producer.join();
  ASSERT_TRUE(got);
  EXPECT_EQ(out, 42);
}

TEST_P(WorklistContractTest, MoveOnlyPayloadSupported) {
  auto list = MakeWorklist<std::unique_ptr<int>>(GetParam(), 64);
  list->Push(std::make_unique<int>(7));
  std::unique_ptr<int> out;
  ASSERT_TRUE(list->TryPopClaim(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WorklistContractTest,
                         ::testing::Values(WorklistKind::kLocking,
                                           WorklistKind::kAtomic),
                         [](const auto& info) {
                           return std::string(WorklistKindName(info.param));
                         });

// ---------------------------------------------------------------------------
// Ring-specific behavior
// ---------------------------------------------------------------------------

TEST(AtomicWorklistTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(AtomicWorklist<int>(1).capacity(), 64u);
  EXPECT_EQ(AtomicWorklist<int>(64).capacity(), 64u);
  EXPECT_EQ(AtomicWorklist<int>(65).capacity(), 128u);
  EXPECT_EQ(AtomicWorklist<int>(1000).capacity(), 1024u);
}

TEST(AtomicWorklistTest, WrapAroundPreservesEveryItem) {
  AtomicWorklist<int> list(64);  // smallest ring: wraps many times below
  int next_push = 0, next_pop = 0;
  // Interleaved batches larger than half the ring force repeated
  // wrap-around of both position counters and every cell's sequence.
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 48; ++i) list.Push(next_push++);
    int out = -1;
    for (int i = 0; i < 48; ++i) {
      ASSERT_TRUE(list.TryPopClaim(&out));
      ASSERT_EQ(out, next_pop++);
    }
  }
  EXPECT_EQ(list.Size(), 0u);
}

// ---------------------------------------------------------------------------
// Concurrency: claim-exactly-once conservation
// ---------------------------------------------------------------------------

/// MPMC hammer: P producers push distinct ids, C consumers claim via
/// PopClaimWait. Every id must be claimed exactly once — the conservation
/// property RealEngine's in-flight counters are built on. Run under TSan in
/// CI, this is also the data-race gate for the lock-free ring.
void HammerClaimExactlyOnce(WorklistKind kind) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 20000;
  constexpr int kTotal = kProducers * kPerProducer;

  auto list = MakeWorklist<int>(kind, 256);
  std::vector<std::atomic<int>> claims(kTotal);
  for (auto& c : claims) c.store(0, std::memory_order_relaxed);
  std::atomic<int> claimed{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        list->Push(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int item = -1;
      while (claimed.load(std::memory_order_relaxed) < kTotal) {
        if (list->PopClaimWait(&item, std::chrono::milliseconds(1))) {
          claims[static_cast<size_t>(item)].fetch_add(
              1, std::memory_order_relaxed);
          claimed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(claimed.load(), kTotal);
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(claims[static_cast<size_t>(i)].load(), 1)
        << "item " << i << " claimed " << claims[static_cast<size_t>(i)].load()
        << " times";
  }
  EXPECT_EQ(list->Size(), 0u);
}

TEST(WorklistHammerTest, LockingClaimExactlyOnce) {
  HammerClaimExactlyOnce(WorklistKind::kLocking);
}

TEST(WorklistHammerTest, AtomicClaimExactlyOnce) {
  HammerClaimExactlyOnce(WorklistKind::kAtomic);
}

/// Drain racing against pushes and pops: whatever mixture of TryPopClaim
/// and Drain observes each item, the union must still be exactly-once.
void DrainDuringPushConservation(WorklistKind kind) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 10000;
  constexpr int kTotal = kProducers * kPerProducer;

  auto list = MakeWorklist<int>(kind, 256);
  std::vector<std::atomic<int>> claims(kTotal);
  for (auto& c : claims) c.store(0, std::memory_order_relaxed);
  std::atomic<int> claimed{0};
  std::atomic<bool> producing{true};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        list->Push(p * kPerProducer + i);
      }
    });
  }
  // One popping consumer plus the main thread draining concurrently.
  threads.emplace_back([&] {
    int item = -1;
    while (claimed.load(std::memory_order_relaxed) < kTotal) {
      if (list->PopClaimWait(&item, std::chrono::milliseconds(1))) {
        claims[static_cast<size_t>(item)].fetch_add(1,
                                                    std::memory_order_relaxed);
        claimed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  while (claimed.load(std::memory_order_relaxed) < kTotal) {
    for (int item : list->Drain()) {
      claims[static_cast<size_t>(item)].fetch_add(1, std::memory_order_relaxed);
      claimed.fetch_add(1, std::memory_order_relaxed);
    }
    std::this_thread::yield();
  }
  producing.store(false);
  for (auto& t : threads) t.join();

  ASSERT_EQ(claimed.load(), kTotal);
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(claims[static_cast<size_t>(i)].load(), 1) << "item " << i;
  }
}

TEST(WorklistHammerTest, LockingDrainDuringPush) {
  DrainDuringPushConservation(WorklistKind::kLocking);
}

TEST(WorklistHammerTest, AtomicDrainDuringPush) {
  DrainDuringPushConservation(WorklistKind::kAtomic);
}

// ---------------------------------------------------------------------------
// Differential: RealEngine under locking vs atomic dispatch
// ---------------------------------------------------------------------------

constexpr int64_t kDimRows = 800;
constexpr int64_t kFactRows = 3200;

std::unique_ptr<Catalog> MakeCatalog(uint64_t seed = 11) {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(seed);
  TableSpec dim;
  dim.name = "dim";
  dim.num_rows = kDimRows;
  dim.block_capacity = 128;
  dim.columns = {
      {"k", DataType::kInt64, ColumnDistribution::kSequential, 0, 0, 0},
      {"w", DataType::kDouble, ColumnDistribution::kUniformReal, 0, 1, 0}};
  TableSpec fact;
  fact.name = "fact";
  fact.num_rows = kFactRows;
  fact.block_capacity = 128;
  fact.columns = {
      {"fk", DataType::kInt64, ColumnDistribution::kForeignKey, 0,
       static_cast<double>(kDimRows), 0},
      {"val", DataType::kDouble, ColumnDistribution::kUniformReal, 0, 1, 0}};
  EXPECT_TRUE(catalog->AddRelation(GenerateTable(dim, &rng)).ok());
  EXPECT_TRUE(catalog->AddRelation(GenerateTable(fact, &rng)).ok());
  return catalog;
}

QueryPlan JoinCountPlan(const Catalog& catalog, double lo, double hi) {
  PlanBuilder b(&catalog);
  const RelationId dim_id = *catalog.FindRelation("dim");
  const RelationId fact_id = *catalog.FindRelation("fact");

  PlanBuilder::NodeOptions dim_opts;
  dim_opts.selectivity = 1.0;
  const int dim_scan = b.AddSource(OperatorType::kTableScan, dim_id, dim_opts);

  PlanBuilder::NodeOptions build_opts;
  build_opts.kernel.build_key = 0;
  const int build = b.AddOp(OperatorType::kBuildHash, {dim_scan}, build_opts);

  PlanBuilder::NodeOptions fact_opts;
  fact_opts.selectivity = (hi - lo);
  fact_opts.kernel.filter_column = 1;
  fact_opts.kernel.filter_lo = lo;
  fact_opts.kernel.filter_hi = hi;
  const int fact_scan = b.AddSource(OperatorType::kSelect, fact_id, fact_opts);

  PlanBuilder::NodeOptions probe_opts;
  probe_opts.selectivity = 1.0;
  probe_opts.kernel.probe_key = 0;
  const int probe =
      b.AddOp(OperatorType::kProbeHash, {fact_scan, build}, probe_opts);

  PlanBuilder::NodeOptions agg_opts;
  agg_opts.kernel.agg_fn = AggFn::kCount;
  agg_opts.kernel.group_by_column = -1;
  agg_opts.kernel.agg_column = 1;
  b.AddOp(OperatorType::kHashAggregate, {probe}, agg_opts);
  auto plan = b.Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

std::vector<RealQuerySubmission> MakeWorkload(const Catalog& catalog, int n) {
  std::vector<RealQuerySubmission> workload;
  for (int i = 0; i < n; ++i) {
    const double lo = 0.05 * static_cast<double>(i % 6);
    RealQuerySubmission sub;
    sub.plan = JoinCountPlan(catalog, lo, lo + 0.5);
    sub.arrival_offset_seconds = 0.002 * i;
    workload.push_back(std::move(sub));
  }
  return workload;
}

RealRunResult RunWith(const Catalog* catalog, WorklistKind kind, int queries) {
  RealEngineConfig cfg;
  cfg.num_threads = 4;
  cfg.chunk_rows = 128;
  cfg.worklist = kind;
  RealEngine engine(catalog, cfg);
  FifoScheduler fifo;
  return engine.Run(MakeWorkload(*catalog, queries), &fifo);
}

/// Both worklists must produce byte-identical query results and the same
/// terminal lifecycle states: the dispatch handoff is pure plumbing.
TEST(WorklistDifferentialTest, LockingAndAtomicAgree) {
  auto catalog = MakeCatalog();
  const RealRunResult locking =
      RunWith(catalog.get(), WorklistKind::kLocking, 8);
  const RealRunResult atomic = RunWith(catalog.get(), WorklistKind::kAtomic, 8);

  EXPECT_EQ(locking.sink_row_counts, atomic.sink_row_counts);
  EXPECT_EQ(locking.sink_checksums, atomic.sink_checksums);
  ASSERT_EQ(locking.episode.final_statuses.size(),
            atomic.episode.final_statuses.size());
  for (size_t i = 0; i < locking.episode.final_statuses.size(); ++i) {
    EXPECT_EQ(locking.episode.final_statuses[i],
              atomic.episode.final_statuses[i])
        << "query " << i;
  }
  EXPECT_EQ(locking.episode.num_queries_failed,
            atomic.episode.num_queries_failed);
  EXPECT_EQ(locking.episode.num_queries_cancelled,
            atomic.episode.num_queries_cancelled);
  EXPECT_EQ(locking.episode.num_queries_shed, atomic.episode.num_queries_shed);
}

/// Same differential under a deterministic fault storm: one query's work
/// orders always fail (probability 1.0, query-scoped, beyond retry budget),
/// so both worklists must drive that query — and only that query — to
/// FAILED while everything else completes.
TEST(WorklistDifferentialTest, ChaosFaultStormAgrees) {
  auto catalog = MakeCatalog();

  FaultSchedule schedule;
  schedule.seed = 23;
  FaultRule rule;
  rule.point = "work_order_exec";
  rule.query = 3;
  rule.probability = 1.0;  // every attempt of query 3 fails, replay-stable
  rule.action = {FaultType::kError, 0.0};
  schedule.rules.push_back(rule);

  RealRunResult results[2];
  const WorklistKind kinds[2] = {WorklistKind::kLocking, WorklistKind::kAtomic};
  for (int k = 0; k < 2; ++k) {
    FaultInjector::Global().Install(schedule);
    results[k] = RunWith(catalog.get(), kinds[k], 8);
    FaultInjector::Global().Clear();
  }

  for (int k = 0; k < 2; ++k) {
    ASSERT_EQ(results[k].episode.final_statuses.size(), 8u);
    EXPECT_EQ(results[k].episode.num_queries_failed, 1);
    EXPECT_EQ(results[k].episode.final_statuses[3], QueryStatus::kFailed);
  }
  EXPECT_EQ(results[0].sink_row_counts, results[1].sink_row_counts);
  EXPECT_EQ(results[0].sink_checksums, results[1].sink_checksums);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(results[0].episode.final_statuses[i],
              results[1].episode.final_statuses[i])
        << "query " << i;
  }
}

}  // namespace
}  // namespace lsched

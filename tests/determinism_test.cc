#include <gtest/gtest.h>

#include <memory>

#include "exec/sim_engine.h"
#include "sched/heuristics.h"
#include "sched/selftune.h"
#include "testing/fuzzer.h"
#include "testing/invariants.h"
#include "util/rng.h"

namespace lsched {
namespace {

/// Same seed, fresh engine + fresh scheduler => byte-identical telemetry
/// (every field except wall-clock scheduler time). This is what makes
/// simulator-trained policies reproducible from a seed alone.
TEST(DeterminismTest, SimEngineEpisodeIsByteIdentical) {
  WorkloadFuzzer fuzzer(31337);
  for (int round = 0; round < 5; ++round) {
    FuzzedWorkload w = fuzzer.NextWorkload();
    auto run_once = [&](Scheduler* policy) {
      SimEngineConfig config;
      config.num_threads = 4;
      SimEngine engine(config);
      return engine.Run(w.sim_queries, policy);
    };
    {
      FairScheduler a, b;
      EXPECT_EQ(DiffEpisodeResults(run_once(&a), run_once(&b)), "");
    }
    {
      SjfScheduler a, b;
      EXPECT_EQ(DiffEpisodeResults(run_once(&a), run_once(&b)), "");
    }
    {
      SelfTuneScheduler a, b;
      EXPECT_EQ(DiffEpisodeResults(run_once(&a), run_once(&b)), "");
    }
  }
}

TEST(DeterminismTest, SimEngineSeedChangesEpisode) {
  WorkloadFuzzer fuzzer(606);
  FuzzedWorkload w = fuzzer.NextWorkload();
  auto run_with_seed = [&](uint64_t seed) {
    FairScheduler policy;
    SimEngineConfig config;
    config.num_threads = 4;
    config.seed = seed;
    SimEngine engine(config);
    return engine.Run(w.sim_queries, &policy);
  };
  // Different engine seeds perturb the cost-model noise, so telemetry
  // should differ (guards against the seed being silently ignored).
  EXPECT_NE(DiffEpisodeResults(run_with_seed(1), run_with_seed(2)), "");
}

/// Pins the first values of the PRNG streams. If xoshiro/seeding ever
/// changes, every recorded fuzz seed and training run stops being
/// replayable — this test makes that an explicit, visible decision.
TEST(DeterminismTest, RngSeedStabilityPins) {
  {
    Rng rng(42);
    EXPECT_EQ(rng.Next(), 1546998764402558742ULL);
    EXPECT_EQ(rng.Next(), 6990951692964543102ULL);
    EXPECT_EQ(rng.Next(), 12544586762248559009ULL);
  }
  {
    Rng rng(42);
    EXPECT_EQ(rng.UniformInt(static_cast<uint64_t>(1000)), 742u);
    EXPECT_EQ(rng.UniformInt(static_cast<int64_t>(10), 20), 17);
    EXPECT_NEAR(rng.Uniform(), 0.6800434110281394, 1e-12);
  }
  {
    // Different seeds must give different streams.
    Rng a(1), b(2);
    EXPECT_NE(a.Next(), b.Next());
  }
}

/// The fuzzer's catalog generation is a pure function of its seed: pin the
/// shape of one workload so accidental RNG-consumption reordering inside
/// the fuzzer (which would invalidate logged repro seeds) fails loudly.
TEST(DeterminismTest, FuzzerWorkloadShapePin) {
  WorkloadFuzzer fuzzer(2026);
  FuzzedWorkload w = fuzzer.NextWorkload();
  EXPECT_EQ(w.seed, 2026u);
  EXPECT_GE(w.catalog->num_relations(), 2u);
  EXPECT_LE(w.catalog->num_relations(), 4u);
  ASSERT_FALSE(w.real_queries.empty());
  ASSERT_EQ(w.real_queries.size(), w.sim_queries.size());
  for (size_t i = 0; i < w.real_queries.size(); ++i) {
    EXPECT_EQ(w.real_queries[i].plan.num_nodes(),
              w.sim_queries[i].plan.num_nodes());
  }
}

}  // namespace
}  // namespace lsched

#include <gtest/gtest.h>

#include <algorithm>

#include "plan/cost_model.h"
#include "plan/operator_type.h"
#include "plan/plan_builder.h"
#include "plan/query_plan.h"

namespace lsched {
namespace {

/// select(A) -> buildhash ; select(B) -> probehash(probe B, build A) -> agg.
Result<QueryPlan> BuildJoinAggPlan() {
  PlanBuilder b(nullptr);
  PlanBuilder::NodeOptions scan_a;
  scan_a.input_rows = 40000;
  scan_a.selectivity = 0.5;
  const int sa = b.AddSource(OperatorType::kSelect, 0, scan_a);
  const int build = b.AddOp(OperatorType::kBuildHash, {sa});
  PlanBuilder::NodeOptions scan_b;
  scan_b.input_rows = 80000;
  scan_b.selectivity = 0.25;
  const int sb = b.AddSource(OperatorType::kSelect, 1, scan_b);
  PlanBuilder::NodeOptions probe;
  probe.selectivity = 1.0;
  const int pj = b.AddOp(OperatorType::kProbeHash, {sb, build}, probe);
  const int agg = b.AddOp(OperatorType::kHashAggregate, {pj});
  const int fin = b.AddOp(OperatorType::kFinalizeAggregate, {agg});
  (void)fin;
  return b.Build();
}

TEST(PlanBuilderTest, BuildsValidatedDag) {
  auto plan = BuildJoinAggPlan();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->num_nodes(), 6u);
  EXPECT_EQ(plan->num_edges(), 5u);
  EXPECT_TRUE(plan->Validate().ok());
}

TEST(PlanBuilderTest, PipelineBreakingDefaults) {
  auto plan = BuildJoinAggPlan();
  ASSERT_TRUE(plan.ok());
  // select -> buildhash: select produces incrementally => non-breaking.
  // buildhash -> probehash: breaking. probehash -> agg: non-breaking
  // (probe streams). agg -> finalize: breaking.
  for (const PlanEdge& e : plan->edges()) {
    const OperatorType p = plan->node(e.producer).type;
    EXPECT_EQ(e.pipeline_breaking, !ProducesIncrementally(p));
  }
}

TEST(PlanBuilderTest, EdgeBreakingOverride) {
  PlanBuilder b(nullptr);
  PlanBuilder::NodeOptions opts;
  opts.input_rows = 1000;
  const int s1 = b.AddSource(OperatorType::kSelect, 0, opts);
  const int s2 = b.AddOp(OperatorType::kSelect, {s1});
  ASSERT_TRUE(b.SetEdgeBreaking(s1, s2, true).ok());
  EXPECT_FALSE(b.SetEdgeBreaking(s2, s1, true).ok());
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->edge(0).pipeline_breaking);
}

TEST(PlanBuilderTest, WorkOrderCountFromRows) {
  PlanBuilder b(nullptr);
  PlanBuilder::NodeOptions opts;
  opts.input_rows = 10000;
  opts.rows_per_work_order = 4096;
  const int s = b.AddSource(OperatorType::kSelect, 0, opts);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->node(s).num_work_orders, 3);  // ceil(10000/4096)
  EXPECT_EQ(plan->node(s).block_bitmap.size(), 3u);
}

TEST(PlanBuilderTest, LineagePropagatesBaseInputs) {
  auto plan = BuildJoinAggPlan();
  ASSERT_TRUE(plan.ok());
  // The final aggregate should carry lineage of both base relations 0 and 1.
  const PlanNode& fin = plan->node(5);
  EXPECT_EQ(fin.base_inputs.size(), 2u);
}

TEST(QueryPlanTest, TopologicalOrderRespectsEdges) {
  auto plan = BuildJoinAggPlan();
  ASSERT_TRUE(plan.ok());
  const std::vector<int> order = plan->TopologicalOrder();
  ASSERT_EQ(order.size(), plan->num_nodes());
  std::vector<int> pos(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<size_t>(order[i])] = static_cast<int>(i);
  }
  for (const PlanEdge& e : plan->edges()) {
    EXPECT_LT(pos[static_cast<size_t>(e.producer)],
              pos[static_cast<size_t>(e.consumer)]);
  }
}

TEST(QueryPlanTest, SourcesAndSinks) {
  auto plan = BuildJoinAggPlan();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->SourceNodes().size(), 2u);
  EXPECT_EQ(plan->SinkNodes().size(), 1u);
}

TEST(QueryPlanTest, LongestPipelineFollowsNonBreakingEdges) {
  auto plan = BuildJoinAggPlan();
  ASSERT_TRUE(plan.ok());
  // From scan B (node 2): select -> probe -> agg (agg output edge breaks).
  const std::vector<int> chain = plan->LongestPipelineFrom(2);
  EXPECT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], 2);
  EXPECT_EQ(chain[1], 3);
  EXPECT_EQ(chain[2], 4);
  // From scan A (node 0): select -> buildhash, then the edge breaks.
  EXPECT_EQ(plan->LongestPipelineFrom(0).size(), 2u);
}

TEST(QueryPlanTest, CriticalPathAtLeastHeaviestNode) {
  auto plan = BuildJoinAggPlan();
  ASSERT_TRUE(plan.ok());
  double heaviest = 0.0;
  for (const PlanNode& n : plan->nodes()) {
    heaviest = std::max(
        heaviest, static_cast<double>(n.num_work_orders) * n.est_cost_per_wo);
  }
  EXPECT_GE(plan->CriticalPathCost(), heaviest);
  EXPECT_LE(plan->CriticalPathCost(), plan->TotalEstimatedCost());
}

TEST(CostModelTest, AnnotationsPositive) {
  auto plan = BuildJoinAggPlan();
  ASSERT_TRUE(plan.ok());
  for (const PlanNode& n : plan->nodes()) {
    EXPECT_GT(n.est_cost_per_wo, 0.0) << OperatorTypeName(n.type);
    EXPECT_GT(n.est_mem_per_wo, 0.0);
  }
}

TEST(CostModelTest, PipelineGainReducesFusedCost) {
  auto plan = BuildJoinAggPlan();
  ASSERT_TRUE(plan.ok());
  CostModel cm;
  // Chain 2 -> 3 -> 4 fused must cost less than the sum of running each
  // stage standalone (cache gain), as long as memory stays in budget.
  const std::vector<int> chain = {2, 3, 4};
  double standalone = 0.0;
  const double root_wos =
      std::max(plan->node(2).num_work_orders, 1);
  for (int op : chain) {
    standalone += static_cast<double>(plan->node(op).num_work_orders) *
                  plan->node(op).est_cost_per_wo / root_wos;
  }
  const double mem = cm.PipelineMemory(*plan, chain);
  if (mem <= cm.params().memory_budget_per_thread) {
    EXPECT_LT(cm.PipelineWorkOrderSeconds(*plan, chain), standalone);
  }
}

TEST(CostModelTest, ThrashMultiplierKicksInBeyondBudget) {
  CostModel cm;
  const double budget = cm.params().memory_budget_per_thread;
  EXPECT_DOUBLE_EQ(cm.ThrashMultiplier(budget * 0.5), 1.0);
  EXPECT_DOUBLE_EQ(cm.ThrashMultiplier(budget), 1.0);
  EXPECT_GT(cm.ThrashMultiplier(budget * 2.0), 1.0);
  EXPECT_GT(cm.ThrashMultiplier(budget * 4.0), cm.ThrashMultiplier(budget * 2.0));
}

TEST(CostModelTest, DeepPipelinesEventuallyHurt) {
  // A long chain of stateful stages must exceed the budget and thrash —
  // the effect that makes the *learned* pipeline degree non-trivial.
  PlanBuilder b(nullptr);
  PlanBuilder::NodeOptions opts;
  opts.input_rows = 400000;
  int node = b.AddSource(OperatorType::kSelect, 0, opts);
  std::vector<int> chain = {node};
  for (int i = 0; i < 6; ++i) {
    PlanBuilder::NodeOptions o2;
    o2.selectivity = 1.0;
    node = b.AddOp(OperatorType::kProbeHash, {node}, o2);
    chain.push_back(node);
  }
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  CostModel cm;
  EXPECT_GT(cm.PipelineMemory(*plan, chain),
            cm.params().memory_budget_per_thread);
  EXPECT_GT(cm.ThrashMultiplier(cm.PipelineMemory(*plan, chain)), 1.0);
}

TEST(OperatorTypeTest, TraitsConsistency) {
  for (int t = 0; t < kNumOperatorTypes; ++t) {
    const OperatorType type = static_cast<OperatorType>(t);
    EXPECT_GT(BaseCostPerRow(type), 0.0);
    EXPECT_GT(MemoryPerRow(type), 0.0);
    EXPECT_STRNE(OperatorTypeName(type), "?");
  }
  EXPECT_FALSE(ProducesIncrementally(OperatorType::kBuildHash));
  EXPECT_TRUE(ProducesIncrementally(OperatorType::kSelect));
  EXPECT_TRUE(IsSourceOperator(OperatorType::kIndexScan));
  EXPECT_FALSE(IsSourceOperator(OperatorType::kProbeHash));
}

TEST(QueryPlanTest, ValidateRejectsEmptyPlan) {
  QueryPlan plan;
  EXPECT_FALSE(plan.Validate().ok());
}

}  // namespace
}  // namespace lsched

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "util/math_util.h"
#include "util/rng.h"
#include "util/serialization.h"
#include "util/status.h"

namespace lsched {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad");
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err(Status::NotFound("x"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

Result<int> Doubled(Result<int> in) {
  LSCHED_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(Status::Internal("boom")).ok());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{3}, int64_t{7});
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(1.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.1);
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(17);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(1000, 0.8) < 10) ++low;
  }
  // Heavily skewed: the 1% smallest values take far more than 1% of mass.
  EXPECT_GT(low, n / 10);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(19);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.35);
}

TEST(RngTest, WeightedIndexAllZero) {
  Rng rng(23);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(w), w.size());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto copy = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(MathTest, SoftmaxSumsToOne) {
  std::vector<double> v = {1.0, 2.0, 3.0, -100.0};
  SoftmaxInPlace(&v);
  double sum = 0.0;
  for (double x : v) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(v[2], v[1]);
  EXPECT_GT(v[1], v[0]);
}

TEST(MathTest, SoftmaxStableForLargeInputs) {
  std::vector<double> v = {1e6, 1e6 + 1.0};
  SoftmaxInPlace(&v);
  EXPECT_NEAR(v[0] + v[1], 1.0, 1e-12);
  EXPECT_FALSE(std::isnan(v[0]));
}

TEST(MathTest, LogSumExp) {
  EXPECT_NEAR(LogSumExp({0.0, 0.0}), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogSumExp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, PercentileInterpolates) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.0);
}

TEST(MathTest, PercentileEmpty) { EXPECT_EQ(Percentile({}, 90), 0.0); }

TEST(MathTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4.0);
  EXPECT_NEAR(StdDev({2, 4, 6}), std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_EQ(StdDev({5}), 0.0);
}

TEST(RegressionTest, ExactLinearFit) {
  WindowedLinearRegression reg(16);
  for (int i = 0; i < 10; ++i) {
    reg.Add(i, 3.0 + 2.0 * i);
  }
  EXPECT_NEAR(reg.Slope(), 2.0, 1e-9);
  EXPECT_NEAR(reg.Intercept(), 3.0, 1e-9);
  EXPECT_NEAR(reg.Predict(20.0), 43.0, 1e-9);
}

TEST(RegressionTest, WindowEvictsOldPoints) {
  WindowedLinearRegression reg(4);
  // Old regime y = x; new regime y = 100 + x. After 4 new points the old
  // regime must be fully forgotten.
  for (int i = 0; i < 10; ++i) reg.Add(i, i);
  for (int i = 10; i < 14; ++i) reg.Add(i, 100.0 + i);
  EXPECT_NEAR(reg.Predict(14.0), 114.0, 1e-6);
  EXPECT_EQ(reg.size(), 4u);
}

TEST(RegressionTest, FallbackWithFewPoints) {
  WindowedLinearRegression reg(8);
  EXPECT_EQ(reg.Predict(5.0), 0.0);
  reg.Add(1.0, 7.0);
  EXPECT_DOUBLE_EQ(reg.Predict(100.0), 7.0);  // mean fallback
}

TEST(RegressionTest, IdenticalXFallsBackToMean) {
  WindowedLinearRegression reg(8);
  reg.Add(2.0, 10.0);
  reg.Add(2.0, 20.0);
  EXPECT_DOUBLE_EQ(reg.Predict(2.0), 15.0);
}

TEST(DownsampleTest, PaperEquation1Example) {
  // Paper §4.1: b = {1,1,0,1,1,0} reduced to |d| = 3 gives {1, 0.5, 0.5}...
  // the paper's worked example states d = {1, 1, 0.5} with windows
  // {1,1},{0,1},{1,0} — i.e. window k covers [j*|b|/|d|, (j+1)*|b|/|d|).
  const std::vector<double> d =
      MovingAverageDownsample({1, 1, 0, 1, 1, 0}, 3);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], 0.5);
  EXPECT_DOUBLE_EQ(d[2], 0.5);
}

TEST(DownsampleTest, PreservesMean) {
  std::vector<double> b;
  Rng rng(31);
  for (int i = 0; i < 64; ++i) b.push_back(rng.Uniform());
  const std::vector<double> d = MovingAverageDownsample(b, 8);
  EXPECT_NEAR(Mean(d), Mean(b), 1e-9);
}

TEST(DownsampleTest, UpsamplePathAndEdgeCases) {
  EXPECT_TRUE(MovingAverageDownsample({}, 0).empty());
  const std::vector<double> zero = MovingAverageDownsample({}, 4);
  EXPECT_EQ(zero.size(), 4u);
  const std::vector<double> up = MovingAverageDownsample({1.0, 2.0}, 4);
  EXPECT_EQ(up.size(), 4u);
  EXPECT_DOUBLE_EQ(up[0], 1.0);
  EXPECT_DOUBLE_EQ(up[3], 2.0);
}

TEST(EwmaTest, ConvergesTowardConstant) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.Add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  for (int i = 0; i < 20; ++i) e.Add(0.0);
  EXPECT_LT(e.value(), 1e-4);
}

TEST(SerializationTest, RoundTrip) {
  BinaryWriter w;
  w.WriteU32(7);
  w.WriteU64(1ull << 40);
  w.WriteI64(-5);
  w.WriteDouble(3.25);
  w.WriteString("hello");
  w.WriteDoubleVector({1.0, 2.0, 3.0});

  BinaryReader r(w.buffer());
  EXPECT_EQ(*r.ReadU32(), 7u);
  EXPECT_EQ(*r.ReadU64(), 1ull << 40);
  EXPECT_EQ(*r.ReadI64(), -5);
  EXPECT_DOUBLE_EQ(*r.ReadDouble(), 3.25);
  EXPECT_EQ(*r.ReadString(), "hello");
  EXPECT_EQ(*r.ReadDoubleVector(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializationTest, UnderflowReturnsError) {
  BinaryReader r("abc");
  EXPECT_FALSE(r.ReadU64().ok());
}

TEST(SerializationTest, FileRoundTrip) {
  BinaryWriter w;
  w.WriteString("file-test");
  const std::string path = "/tmp/lsched_serialization_test.bin";
  ASSERT_TRUE(w.SaveToFile(path).ok());
  auto r = BinaryReader::FromFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r->ReadString(), "file-test");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lsched

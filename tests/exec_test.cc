#include <gtest/gtest.h>

#include "exec/query_state.h"
#include "exec/sim_engine.h"
#include "plan/plan_builder.h"
#include "sched/heuristics.h"

namespace lsched {
namespace {

Result<QueryPlan> JoinPlan(int64_t rows_a = 40000, int64_t rows_b = 80000) {
  PlanBuilder b(nullptr);
  PlanBuilder::NodeOptions a_opts;
  a_opts.input_rows = rows_a;
  const int sa = b.AddSource(OperatorType::kSelect, 0, a_opts);
  const int build = b.AddOp(OperatorType::kBuildHash, {sa});
  PlanBuilder::NodeOptions b_opts;
  b_opts.input_rows = rows_b;
  const int sb = b.AddSource(OperatorType::kSelect, 1, b_opts);
  const int probe = b.AddOp(OperatorType::kProbeHash, {sb, build});
  const int agg = b.AddOp(OperatorType::kHashAggregate, {probe});
  b.AddOp(OperatorType::kFinalizeAggregate, {agg});
  return b.Build();
}

TEST(QueryStateTest, InitialSchedulability) {
  auto plan = JoinPlan();
  ASSERT_TRUE(plan.ok());
  QueryState q(0, *plan, 0.0);
  // Only the two source selects are schedulable at the start.
  EXPECT_EQ(q.SchedulableOps(), (std::vector<int>{0, 2}));
  EXPECT_FALSE(q.IsOpSchedulable(3));  // probe blocked on build
}

TEST(QueryStateTest, NonBreakingConsumerSchedulableWhileProducerRuns) {
  auto plan = JoinPlan();
  ASSERT_TRUE(plan.ok());
  QueryState q(0, *plan, 0.0);
  // BuildHash (1) consumes select(0) through a NON-breaking edge: it becomes
  // schedulable as soon as its producer is scheduled (streaming).
  EXPECT_FALSE(q.IsOpSchedulable(1));
  q.set_op_scheduled(0, true);
  EXPECT_TRUE(q.IsOpSchedulable(1));
}

TEST(QueryStateTest, AdvanceCompletesOperator) {
  auto plan = JoinPlan();
  ASSERT_TRUE(plan.ok());
  QueryState q(0, *plan, 0.0);
  const int wos = plan->node(0).num_work_orders;
  q.set_op_scheduled(0, true);
  for (int i = 0; i < wos - 1; ++i) {
    EXPECT_FALSE(q.AdvanceOperator(0, 1.0, 0.01, 100.0));
  }
  EXPECT_TRUE(q.AdvanceOperator(0, 1.0, 0.01, 100.0));
  EXPECT_TRUE(q.op_completed(0));
  EXPECT_FALSE(q.op_scheduled(0));
  EXPECT_DOUBLE_EQ(q.RemainingWorkOrders(0), 0.0);
}

TEST(QueryStateTest, FractionalAdvanceAccumulates) {
  auto plan = JoinPlan();
  ASSERT_TRUE(plan.ok());
  QueryState q(0, *plan, 0.0);
  const double wos = q.RemainingWorkOrders(1);
  for (int i = 0; i < 10; ++i) {
    q.AdvanceOperator(1, wos / 10.0, 0.001, 1.0);
  }
  EXPECT_TRUE(q.op_completed(1));
}

TEST(QueryStateTest, DurationEstimateLearnsFromObservations) {
  auto plan = JoinPlan();
  ASSERT_TRUE(plan.ok());
  QueryState q(0, *plan, 0.0);
  const double optimizer_est = q.EstimateNextWorkOrderSeconds(0);
  EXPECT_DOUBLE_EQ(optimizer_est, plan->node(0).est_cost_per_wo);
  // Feed consistent 0.5s observations; the estimate should move to ~0.5.
  for (int i = 0; i < 5; ++i) q.AdvanceOperator(0, 1.0, 0.5, 10.0);
  EXPECT_NEAR(q.EstimateNextWorkOrderSeconds(0), 0.5, 0.05);
  EXPECT_GT(q.EstimateRemainingSeconds(0), 0.0);
}

TEST(QueryStateTest, ValidPipelineStopsAtUnreadyConsumer) {
  auto plan = JoinPlan();
  ASSERT_TRUE(plan.ok());
  QueryState q(0, *plan, 0.0);
  // From select B (2): probe (3) requires the build (1) completed.
  EXPECT_EQ(q.ValidPipelineFrom(2), (std::vector<int>{2}));
  // Complete the build side.
  q.AdvanceOperator(0, q.RemainingWorkOrders(0), 0.1, 1.0);
  q.AdvanceOperator(1, q.RemainingWorkOrders(1), 0.1, 1.0);
  // Now select B can pipeline into probe and the aggregate.
  EXPECT_EQ(q.ValidPipelineFrom(2), (std::vector<int>{2, 3, 4}));
}

TEST(QueryStateTest, QueryCompletion) {
  auto plan = JoinPlan(100, 100);
  ASSERT_TRUE(plan.ok());
  QueryState q(7, *plan, 1.5);
  EXPECT_FALSE(q.completed());
  for (size_t i = 0; i < plan->num_nodes(); ++i) {
    q.AdvanceOperator(static_cast<int>(i),
                      q.RemainingWorkOrders(static_cast<int>(i)), 0.1, 1.0);
  }
  EXPECT_TRUE(q.completed());
}

std::vector<QuerySubmission> SmallWorkload(int n, bool batch) {
  std::vector<QuerySubmission> out;
  Rng rng(42);
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    auto plan = JoinPlan(20000 + 5000 * (i % 3), 40000);
    EXPECT_TRUE(plan.ok());
    QuerySubmission sub;
    sub.plan = std::move(plan).value();
    if (!batch) t += rng.Exponential(0.05);
    sub.arrival_time = batch ? 0.0 : t;
    out.push_back(std::move(sub));
  }
  return out;
}

TEST(SimEngineTest, FifoCompletesAllQueries) {
  SimEngineConfig config;
  config.num_threads = 8;
  SimEngine engine(config);
  FifoScheduler fifo;
  const EpisodeResult r = engine.Run(SmallWorkload(6, false), &fifo);
  EXPECT_EQ(r.query_latencies.size(), 6u);
  for (double lat : r.query_latencies) EXPECT_GT(lat, 0.0);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_GT(r.num_scheduler_invocations, 0);
  EXPECT_GE(r.p90_latency, 0.0);
}

TEST(SimEngineTest, DeterministicForSameSeed) {
  SimEngineConfig config;
  config.num_threads = 4;
  config.seed = 5;
  SimEngine e1(config), e2(config);
  FairScheduler f1, f2;
  const EpisodeResult r1 = e1.Run(SmallWorkload(5, false), &f1);
  const EpisodeResult r2 = e2.Run(SmallWorkload(5, false), &f2);
  ASSERT_EQ(r1.query_latencies.size(), r2.query_latencies.size());
  for (size_t i = 0; i < r1.query_latencies.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.query_latencies[i], r2.query_latencies[i]);
  }
}

TEST(SimEngineTest, BatchArrivalsAllAtTimeZero) {
  SimEngineConfig config;
  config.num_threads = 8;
  SimEngine engine(config);
  QuickstepScheduler sched;
  const EpisodeResult r = engine.Run(SmallWorkload(5, true), &sched);
  EXPECT_EQ(r.query_latencies.size(), 5u);
}

TEST(SimEngineTest, MoreThreadsFasterMakespan) {
  FairScheduler fair;
  SimEngineConfig slow_cfg;
  slow_cfg.num_threads = 2;
  SimEngineConfig fast_cfg;
  fast_cfg.num_threads = 16;
  SimEngine slow(slow_cfg), fast(fast_cfg);
  const EpisodeResult r_slow = slow.Run(SmallWorkload(8, true), &fair);
  const EpisodeResult r_fast = fast.Run(SmallWorkload(8, true), &fair);
  EXPECT_LT(r_fast.makespan, r_slow.makespan);
}

/// A scheduler that never schedules anything: the engine's fallback guard
/// must still finish every query.
class LazyScheduler : public Scheduler {
 public:
  std::string name() const override { return "Lazy"; }
  SchedulingDecision Schedule(const SchedulingEvent&,
                              const SystemState&) override {
    return {};
  }
};

TEST(SimEngineTest, FallbackGuardPreventsDeadlock) {
  SimEngineConfig config;
  config.num_threads = 4;
  SimEngine engine(config);
  LazyScheduler lazy;
  const EpisodeResult r = engine.Run(SmallWorkload(3, true), &lazy);
  EXPECT_EQ(r.query_latencies.size(), 3u);
  EXPECT_GT(r.num_fallback_decisions, 0);
}

TEST(SimEngineTest, DecisionLogMonotonicTimes) {
  SimEngineConfig config;
  config.num_threads = 8;
  SimEngine engine(config);
  SjfScheduler sjf;
  const EpisodeResult r = engine.Run(SmallWorkload(6, false), &sjf);
  for (size_t i = 1; i < r.decisions.size(); ++i) {
    EXPECT_GE(r.decisions[i].time, r.decisions[i - 1].time);
    EXPECT_GE(r.decisions[i].running_queries, 1);
  }
}

TEST(SimEngineTest, ParallelismCapLimitsConcurrency) {
  // A scheduler that caps every query at 1 thread; with one huge query the
  // makespan must be ~serial, far above the 8-thread fair run.
  class CappedFair : public FairScheduler {
   public:
    SchedulingDecision Schedule(const SchedulingEvent& e,
                                const SchedulingContext& ctx) override {
      SchedulingDecision d = FairScheduler::Schedule(e, ctx);
      for (auto& p : d.parallelism) p.max_threads = 1;
      return d;
    }
  };
  SimEngineConfig config;
  config.num_threads = 8;
  SimEngine engine(config);
  CappedFair capped;
  FairScheduler fair;
  const EpisodeResult r_capped = engine.Run(SmallWorkload(1, true), &capped);
  const EpisodeResult r_fair = engine.Run(SmallWorkload(1, true), &fair);
  EXPECT_GT(r_capped.makespan, r_fair.makespan * 1.5);
}

}  // namespace
}  // namespace lsched

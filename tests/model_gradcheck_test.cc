// End-to-end numerical gradient check of the full LSched network: feature
// matrices -> Query Encoder (tree conv + GAT + PQE + AQE) -> Scheduling
// Predictor -> action log-probability. Verifies that every layer's
// backward pass (including the GAT softmax and the masked degree head)
// is consistent with finite differences.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/encoder.h"
#include "core/predictor.h"
#include "exec/query_state.h"
#include "plan/plan_builder.h"

namespace lsched {
namespace {

StateFeatures MakeState(const FeatureConfig& fcfg) {
  PlanBuilder b(nullptr);
  PlanBuilder::NodeOptions a;
  a.input_rows = 20000;
  const int sa = b.AddSource(OperatorType::kSelect, 0, a);
  const int build = b.AddOp(OperatorType::kBuildHash, {sa});
  PlanBuilder::NodeOptions c;
  c.input_rows = 30000;
  const int sb = b.AddSource(OperatorType::kSelect, 1, c);
  const int probe = b.AddOp(OperatorType::kProbeHash, {sb, build});
  b.AddOp(OperatorType::kHashAggregate, {probe});
  auto plan = b.Build();
  EXPECT_TRUE(plan.ok());

  static std::vector<std::unique_ptr<QueryState>> keepalive;
  keepalive.push_back(std::make_unique<QueryState>(0, *plan, 0.0));
  keepalive.push_back(std::make_unique<QueryState>(1, *plan, 0.4));

  SystemState state;
  state.now = 1.0;
  state.queries = {keepalive[keepalive.size() - 2].get(),
                   keepalive.back().get()};
  state.threads.resize(4);
  for (int i = 0; i < 4; ++i) state.threads[static_cast<size_t>(i)].id = i;
  state.threads[0].last_query = 0;
  return FeatureExtractor(fcfg).Extract(state);
}

class ModelGradCheck : public ::testing::TestWithParam<
                           std::tuple<bool, bool>> {};  // (use_tcn, use_gat)

TEST_P(ModelGradCheck, FullForwardBackwardMatchesFiniteDifferences) {
  const auto [use_tcn, use_gat] = GetParam();
  LSchedConfig cfg;
  cfg.hidden_dim = 4;
  cfg.summary_dim = 4;
  cfg.head_hidden = 4;
  cfg.num_conv_layers = 2;
  cfg.features.num_relations = 4;
  cfg.features.num_columns = 4;
  cfg.features.blocks_downsample = 2;
  cfg.features.max_threads = 4;
  cfg.use_tree_conv = use_tcn;
  cfg.use_gat = use_gat;
  LSchedModel model(cfg);
  const StateFeatures state = MakeState(cfg.features);
  ASSERT_FALSE(state.candidates.empty());

  SchedulingAction action;
  action.candidate_index = static_cast<int>(state.candidates.size()) - 1;
  action.degree_index = 0;
  action.parallelism_index = 1;

  auto forward = [&](bool backward) {
    Tape tape;
    const EncodedState enc = EncodeState(&model, state, &tape);
    const PredictorOutput out = RunPredictor(&model, state, enc, &tape);
    Var loss = tape.Scale(ActionLogProb(&tape, out, action), -1.0);
    if (backward) tape.Backward(loss);
    return loss.value().at(0, 0);
  };

  model.params()->ZeroGrads();
  forward(true);

  const double h = 1e-6;
  int checked = 0;
  for (Param* p : model.params()->All()) {
    // Spot-check up to 4 entries per tensor (full sweep is O(minutes)).
    const size_t stride =
        std::max<size_t>(1, p->value.raw().size() / 4);
    for (size_t i = 0; i < p->value.raw().size(); i += stride) {
      const double orig = p->value.raw()[i];
      p->value.raw()[i] = orig + h;
      const double fp = forward(false);
      p->value.raw()[i] = orig - h;
      const double fm = forward(false);
      p->value.raw()[i] = orig;
      const double numeric = (fp - fm) / (2.0 * h);
      EXPECT_NEAR(p->grad.raw()[i], numeric,
                  2e-4 * std::max(1.0, std::fabs(numeric)))
          << p->name << "[" << i << "] tcn=" << use_tcn << " gat=" << use_gat;
      ++checked;
    }
  }
  EXPECT_GT(checked, 50);
}

INSTANTIATE_TEST_SUITE_P(Variants, ModelGradCheck,
                         ::testing::Values(std::make_tuple(true, true),
                                           std::make_tuple(true, false),
                                           std::make_tuple(false, false)));

}  // namespace
}  // namespace lsched

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/agent.h"
#include "core/encoder.h"
#include "core/model.h"
#include "core/predictor.h"
#include "core/reward.h"
#include "core/trainer.h"
#include "plan/plan_builder.h"
#include "sched/heuristics.h"
#include "workload/workload.h"

namespace lsched {
namespace {

Result<QueryPlan> SmallJoinPlan() {
  PlanBuilder b(nullptr);
  PlanBuilder::NodeOptions a;
  a.input_rows = 20000;
  const int sa = b.AddSource(OperatorType::kSelect, 0, a);
  b.AddUsedColumn(sa, 3);
  const int build = b.AddOp(OperatorType::kBuildHash, {sa});
  PlanBuilder::NodeOptions c;
  c.input_rows = 40000;
  const int sb = b.AddSource(OperatorType::kSelect, 1, c);
  const int probe = b.AddOp(OperatorType::kProbeHash, {sb, build});
  b.AddOp(OperatorType::kHashAggregate, {probe});
  return b.Build();
}

/// Builds a 2-query SystemState over live QueryStates.
struct StateFixture {
  StateFixture() {
    auto p1 = SmallJoinPlan();
    auto p2 = SmallJoinPlan();
    q1 = std::make_unique<QueryState>(0, std::move(p1).value(), 0.0);
    q2 = std::make_unique<QueryState>(1, std::move(p2).value(), 0.5);
    state.now = 1.0;
    state.queries = {q1.get(), q2.get()};
    state.threads.resize(8);
    for (int i = 0; i < 8; ++i) {
      state.threads[static_cast<size_t>(i)].id = i;
    }
    state.threads[0].busy = true;
    state.threads[0].running_query = 0;
    state.threads[1].last_query = 1;
  }
  std::unique_ptr<QueryState> q1, q2;
  SystemState state;
};

TEST(FeaturesTest, DimensionsMatchConfig) {
  FeatureConfig cfg;
  EXPECT_EQ(cfg.opf_dim(),
            kNumOperatorTypes + cfg.num_relations + cfg.num_columns +
                cfg.blocks_downsample + 6);
  EXPECT_EQ(cfg.edf_dim(), 2);
  EXPECT_EQ(cfg.qf_dim(), 2 + cfg.max_threads);
}

TEST(FeaturesTest, ExtractProducesConsistentShapes) {
  StateFixture fx;
  FeatureConfig cfg;
  FeatureExtractor extractor(cfg);
  const StateFeatures f = extractor.Extract(fx.state);
  ASSERT_EQ(f.queries.size(), 2u);
  EXPECT_EQ(f.total_threads, 8);
  EXPECT_EQ(f.free_threads, 7);
  for (const QueryFeatures& q : f.queries) {
    EXPECT_EQ(q.opf.size(), static_cast<size_t>(q.num_nodes));
    for (const auto& row : q.opf) {
      EXPECT_EQ(row.size(), static_cast<size_t>(cfg.opf_dim()));
    }
    for (const auto& row : q.edf) {
      EXPECT_EQ(row.size(), static_cast<size_t>(cfg.edf_dim()));
    }
    EXPECT_EQ(q.qf.size(), static_cast<size_t>(cfg.qf_dim()));
  }
  // Both queries have 2 schedulable sources each.
  EXPECT_EQ(f.candidates.size(), 4u);
}

TEST(FeaturesTest, OperatorTypeOneHot) {
  StateFixture fx;
  FeatureExtractor extractor(FeatureConfig{});
  const QueryFeatures q = extractor.ExtractQuery(*fx.q1, fx.state);
  // Node 0 is a Select.
  const int select_idx = static_cast<int>(OperatorType::kSelect);
  EXPECT_DOUBLE_EQ(q.opf[0][static_cast<size_t>(select_idx)], 1.0);
  double onehot_sum = 0.0;
  for (int t = 0; t < kNumOperatorTypes; ++t) {
    onehot_sum += q.opf[0][static_cast<size_t>(t)];
  }
  EXPECT_DOUBLE_EQ(onehot_sum, 1.0);
}

TEST(FeaturesTest, QLocalityReflectsThreadHistory) {
  StateFixture fx;
  FeatureExtractor extractor(FeatureConfig{});
  const QueryFeatures q2f = extractor.ExtractQuery(*fx.q2, fx.state);
  // Thread 1 last ran query 1 => its Q-LOC bit is set.
  EXPECT_DOUBLE_EQ(q2f.qf[2 + 1], 1.0);
  EXPECT_DOUBLE_EQ(q2f.qf[2 + 0], 0.0);
}

TEST(FeaturesTest, EdfEncodesPipelineBreaking) {
  StateFixture fx;
  FeatureExtractor extractor(FeatureConfig{});
  const QueryFeatures q = extractor.ExtractQuery(*fx.q1, fx.state);
  const QueryPlan& plan = fx.q1->plan();
  for (size_t e = 0; e < plan.num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(q.edf[e][0],
                     plan.edge(static_cast<int>(e)).pipeline_breaking ? 0.0
                                                                      : 1.0);
  }
}

LSchedConfig SmallConfig() {
  LSchedConfig cfg;
  cfg.hidden_dim = 8;
  cfg.summary_dim = 8;
  cfg.head_hidden = 8;
  cfg.num_conv_layers = 2;
  return cfg;
}

TEST(EncoderTest, ShapesAndDeterminism) {
  StateFixture fx;
  LSchedModel model(SmallConfig());
  FeatureExtractor extractor(model.config().features);
  const StateFeatures f = extractor.Extract(fx.state);
  Tape t1;
  const EncodedState e1 = EncodeState(&model, f, &t1);
  ASSERT_EQ(e1.queries.size(), 2u);
  EXPECT_EQ(e1.queries[0].node_emb.size(),
            static_cast<size_t>(f.queries[0].num_nodes));
  EXPECT_EQ(e1.queries[0].pqe.cols(), 8);
  EXPECT_EQ(e1.aqe.cols(), 8);
  Tape t2;
  const EncodedState e2 = EncodeState(&model, f, &t2);
  for (int c = 0; c < 8; ++c) {
    EXPECT_DOUBLE_EQ(e1.aqe.value().at(0, c), e2.aqe.value().at(0, c));
  }
}

TEST(EncoderTest, GcnFallbackDiffersFromTreeConv) {
  StateFixture fx;
  LSchedConfig cfg = SmallConfig();
  LSchedModel tcn_model(cfg);
  cfg.use_tree_conv = false;
  LSchedModel gcn_model(cfg);
  // Same seed => same initial weights; different conv paths => different
  // embeddings.
  FeatureExtractor extractor(cfg.features);
  const StateFeatures f = extractor.Extract(fx.state);
  Tape t1, t2;
  const EncodedState a = EncodeState(&tcn_model, f, &t1);
  const EncodedState b = EncodeState(&gcn_model, f, &t2);
  bool any_diff = false;
  for (int c = 0; c < 8; ++c) {
    any_diff |= std::fabs(a.aqe.value().at(0, c) - b.aqe.value().at(0, c)) >
                1e-12;
  }
  EXPECT_TRUE(any_diff);
}

TEST(PredictorTest, LogProbsNormalized) {
  StateFixture fx;
  LSchedModel model(SmallConfig());
  FeatureExtractor extractor(model.config().features);
  const StateFeatures f = extractor.Extract(fx.state);
  Tape tape;
  const EncodedState enc = EncodeState(&model, f, &tape);
  const PredictorOutput out = RunPredictor(&model, f, enc, &tape);
  double sum = 0.0;
  for (int c = 0; c < out.root_logprobs.cols(); ++c) {
    sum += std::exp(out.root_logprobs.value().at(0, c));
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  ASSERT_EQ(out.degree_logprobs.size(), f.candidates.size());
  for (size_t i = 0; i < f.candidates.size(); ++i) {
    double dsum = 0.0;
    for (int c = 0; c < out.degree_logprobs[i].cols(); ++c) {
      dsum += std::exp(out.degree_logprobs[i].value().at(0, c));
    }
    EXPECT_NEAR(dsum, 1.0, 1e-9);
  }
}

TEST(PredictorTest, InvalidDegreesMasked) {
  StateFixture fx;
  LSchedModel model(SmallConfig());
  FeatureExtractor extractor(model.config().features);
  const StateFeatures f = extractor.Extract(fx.state);
  Tape tape;
  const EncodedState enc = EncodeState(&model, f, &tape);
  const PredictorOutput out = RunPredictor(&model, f, enc, &tape);
  for (size_t i = 0; i < f.candidates.size(); ++i) {
    const int valid = f.candidates[i].max_degree;
    for (int c = valid; c < out.degree_logprobs[i].cols(); ++c) {
      EXPECT_LT(out.degree_logprobs[i].value().at(0, c), -1e8);
    }
  }
}

TEST(PredictorTest, PipelineAblationForcesDegreeOne) {
  StateFixture fx;
  LSchedConfig cfg = SmallConfig();
  cfg.predict_pipeline = false;
  LSchedModel model(cfg);
  FeatureExtractor extractor(cfg.features);
  const StateFeatures f = extractor.Extract(fx.state);
  Tape tape;
  const EncodedState enc = EncodeState(&model, f, &tape);
  const PredictorOutput out = RunPredictor(&model, f, enc, &tape);
  for (size_t i = 0; i < f.candidates.size(); ++i) {
    EXPECT_NEAR(std::exp(out.degree_logprobs[i].value().at(0, 0)), 1.0, 1e-9);
  }
}

TEST(PredictorTest, ActionLogProbSumsThreeHeads) {
  StateFixture fx;
  LSchedModel model(SmallConfig());
  FeatureExtractor extractor(model.config().features);
  const StateFeatures f = extractor.Extract(fx.state);
  Tape tape;
  const EncodedState enc = EncodeState(&model, f, &tape);
  const PredictorOutput out = RunPredictor(&model, f, enc, &tape);
  SchedulingAction a;
  a.candidate_index = 0;
  a.degree_index = 0;
  a.parallelism_index = 1;
  const Var lp = ActionLogProb(&tape, out, a);
  const double expected =
      out.root_logprobs.value().at(0, 0) +
      out.degree_logprobs[0].value().at(0, 0) +
      out.par_logprobs[0].value().at(0, 1);
  EXPECT_NEAR(lp.value().at(0, 0), expected, 1e-12);
  const Var h = ActionEntropy(&tape, out, a);
  EXPECT_GE(h.value().at(0, 0), 0.0);
}

TEST(AgentTest, ProducesValidDecision) {
  StateFixture fx;
  LSchedModel model(SmallConfig());
  LSchedAgent agent(&model);
  SchedulingEvent event;
  event.type = SchedulingEventType::kQueryArrival;
  const SchedulingDecision d = agent.Schedule(event, fx.state);
  ASSERT_EQ(d.pipelines.size(), 1u);
  const PipelineChoice& p = d.pipelines[0];
  QueryState* q = fx.state.FindQuery(p.query);
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(q->IsOpSchedulable(p.root_op));
  EXPECT_GE(p.degree, 1);
  ASSERT_EQ(d.parallelism.size(), 1u);
  EXPECT_GE(d.parallelism[0].max_threads, 1);
  EXPECT_LE(d.parallelism[0].max_threads, 8);
}

TEST(AgentTest, RecordsExperiencesWhenEnabled) {
  StateFixture fx;
  LSchedModel model(SmallConfig());
  LSchedAgent agent(&model);
  agent.set_record_experiences(true);
  agent.set_sample_actions(true);
  SchedulingEvent event;
  agent.Schedule(event, fx.state);
  agent.Schedule(event, fx.state);
  EXPECT_EQ(agent.experiences().size(), 2u);
  EXPECT_EQ(agent.experiences()[0].num_running_queries, 2);
  agent.Reset();
  EXPECT_TRUE(agent.experiences().empty());
}

TEST(RewardTest, MatchesPaperFormula) {
  std::vector<Experience> eps(3);
  eps[0].time = 1.0;
  eps[0].num_running_queries = 2;  // H = 1*2 = 2
  eps[1].time = 2.5;
  eps[1].num_running_queries = 4;  // H = 1.5*4 = 6
  eps[2].time = 3.0;
  eps[2].num_running_queries = 1;  // H = 0.5*1 = 0.5
  RewardConfig cfg;
  cfg.w_avg = 1.0;
  cfg.w_tail = 0.0;
  const std::vector<double> r = ComputeRewards(eps, cfg);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[0], -2.0);
  EXPECT_DOUBLE_EQ(r[1], -6.0);
  EXPECT_DOUBLE_EQ(r[2], -0.5);

  // With tail weight, the reward gets the -(H-P) term averaged in.
  RewardConfig cfg2;
  cfg2.w_avg = 0.5;
  cfg2.w_tail = 0.5;
  cfg2.tail_percentile = 90.0;
  const std::vector<double> r2 = ComputeRewards(eps, cfg2);
  const double p90 = Percentile({2.0, 6.0, 0.5}, 90.0);
  EXPECT_NEAR(r2[1], 0.5 * (-6.0) + 0.5 * (-(6.0 - p90)), 1e-12);
}

TEST(RewardTest, ReturnsAreSuffixSums) {
  const std::vector<double> g = ComputeReturns({1.0, 2.0, 3.0});
  EXPECT_EQ(g, (std::vector<double>{6.0, 5.0, 3.0}));
}

TEST(ExperienceTest, BaselineLearnsAcrossEpisodes) {
  ExperienceManager mgr(8, 0.5);
  mgr.AddEpisode(std::vector<Experience>(2), {10.0, 5.0});
  // First episode: no baseline yet -> advantages equal returns.
  EXPECT_DOUBLE_EQ(mgr.LatestAdvantages(false)[0], 10.0);
  EXPECT_DOUBLE_EQ(mgr.Baseline(0), 10.0);
  mgr.AddEpisode(std::vector<Experience>(2), {20.0, 5.0});
  // Second episode: baseline from episode 1.
  EXPECT_DOUBLE_EQ(mgr.LatestAdvantages(false)[0], 10.0);  // 20 - 10
  EXPECT_DOUBLE_EQ(mgr.LatestAdvantages(false)[1], 0.0);   // 5 - 5
}

TEST(ModelTest, SaveLoadRoundTrip) {
  LSchedModel a(SmallConfig());
  const std::string path = "/tmp/lsched_model_test.bin";
  ASSERT_TRUE(a.Save(path).ok());
  LSchedConfig cfg = SmallConfig();
  cfg.seed = 999;  // different init
  LSchedModel b(cfg);
  ASSERT_TRUE(b.Load(path).ok());
  Param* pa = a.params()->Find("head/root/l0/w");
  Param* pb = b.params()->Find("head/root/l0/w");
  ASSERT_NE(pa, nullptr);
  ASSERT_NE(pb, nullptr);
  EXPECT_EQ(pa->value.raw(), pb->value.raw());
  std::remove(path.c_str());
}

TEST(ModelTest, TransferFreezeKeepsBoundaryLayersTrainable) {
  LSchedModel model(SmallConfig());
  const int frozen = model.FreezeForTransfer();
  EXPECT_GT(frozen, 0);
  // Input projections stay trainable.
  EXPECT_TRUE(model.params()->Find("encoder/proj_node/w")->trainable);
  // Convolution layers are frozen.
  EXPECT_FALSE(model.params()->Find("encoder/conv0/w_self")->trainable);
  // Head output layers stay trainable, hidden layers frozen.
  EXPECT_FALSE(model.params()->Find("head/root/l0/w")->trainable);
  EXPECT_TRUE(model.params()->Find("head/root/l1/w")->trainable);
  model.UnfreezeAll();
  EXPECT_TRUE(model.params()->Find("encoder/conv0/w_self")->trainable);
}

TEST(TrainerTest, EpisodesRunAndParametersMove) {
  LSchedModel model(SmallConfig());
  SimEngineConfig engine_cfg;
  engine_cfg.num_threads = 4;
  SimEngine engine(engine_cfg);
  TrainConfig tcfg;
  tcfg.episodes = 3;
  tcfg.learning_rate = 1e-2;
  ReinforceTrainer trainer(&model, &engine, tcfg);

  const AlignedVector before =
      model.params()->Find("head/root/l1/w")->value.raw();
  auto factory = MakeEpisodeFactory(Benchmark::kSsb, 4, 6, 0.05, 0.1, {2});
  const TrainStats stats = trainer.Train(factory);
  EXPECT_EQ(stats.episode_avg_latency.size(), 3u);
  EXPECT_GT(stats.total_decisions, 0);
  for (double r : stats.episode_reward) EXPECT_TRUE(std::isfinite(r));
  const AlignedVector after =
      model.params()->Find("head/root/l1/w")->value.raw();
  EXPECT_NE(before, after);
}

TEST(TrainerTest, AgentInferenceAfterTrainingCompletesWorkload) {
  LSchedModel model(SmallConfig());
  SimEngineConfig engine_cfg;
  engine_cfg.num_threads = 4;
  SimEngine engine(engine_cfg);
  TrainConfig tcfg;
  tcfg.episodes = 2;
  ReinforceTrainer trainer(&model, &engine, tcfg);
  trainer.Train(MakeEpisodeFactory(Benchmark::kSsb, 4, 6, 0.05, 0.1, {2}));

  LSchedAgent agent(&model);  // greedy mode
  WorkloadConfig wcfg;
  wcfg.benchmark = Benchmark::kSsb;
  wcfg.num_queries = 5;
  wcfg.scale_factors = {2};
  Rng rng(3);
  const EpisodeResult r = engine.Run(GenerateWorkload(wcfg, &rng), &agent);
  EXPECT_EQ(r.query_latencies.size(), 5u);
}

}  // namespace
}  // namespace lsched

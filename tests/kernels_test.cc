#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "exec/kernels.h"
#include "plan/plan_builder.h"
#include "storage/table_generator.h"

namespace lsched {
namespace {

/// t(k sequential 0..N-1, g uniform 0..7, v uniform [0,1)); d(k, w).
class KernelsTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRows = 3000;
  static constexpr int64_t kDimRows = 500;
  static constexpr size_t kChunk = 256;

  void SetUp() override {
    Rng rng(77);
    TableSpec t;
    t.name = "t";
    t.num_rows = kRows;
    t.block_capacity = kChunk;
    t.columns = {
        {"k", DataType::kInt64, ColumnDistribution::kSequential, 0, 0, 0},
        {"g", DataType::kInt64, ColumnDistribution::kUniformInt, 0, 7, 0},
        {"v", DataType::kDouble, ColumnDistribution::kUniformReal, 0, 1, 0}};
    TableSpec d;
    d.name = "d";
    d.num_rows = kDimRows;
    d.block_capacity = kChunk;
    d.columns = {
        {"k", DataType::kInt64, ColumnDistribution::kSequential, 0, 0, 0},
        {"w", DataType::kDouble, ColumnDistribution::kUniformReal, 0, 1, 0}};
    t_id_ = *catalog_.AddRelation(GenerateTable(t, &rng));
    d_id_ = *catalog_.AddRelation(GenerateTable(d, &rng));
  }

  /// Runs all work orders of each op of `plan` in topological order,
  /// finalizing each op when done (single-threaded reference execution).
  void RunAll(const QueryPlan& plan, QueryExecution* exec) {
    for (int op : plan.TopologicalOrder()) {
      const int wos = exec->NumWorkOrders(op);
      for (int i = 0; i < wos; ++i) {
        ASSERT_TRUE(exec->ExecuteWorkOrder({op}, i).ok());
      }
      ASSERT_TRUE(exec->FinalizeOperator(op).ok());
    }
  }

  Catalog catalog_;
  RelationId t_id_ = 0;
  RelationId d_id_ = 0;
};

TEST_F(KernelsTest, RowStoreChunking) {
  RowStore store(2, 10);
  for (int i = 0; i < 25; ++i) {
    store.AppendRow({static_cast<double>(i), 2.0 * i});
  }
  EXPECT_EQ(store.num_rows(), 25u);
  EXPECT_EQ(store.num_chunks(), 3u);
  std::vector<std::vector<double>> rows;
  store.ChunkRows(2, &rows);
  ASSERT_EQ(rows.size(), 5u);  // 25 - 20
  EXPECT_DOUBLE_EQ(rows[0][0], 20.0);
  EXPECT_DOUBLE_EQ(rows[4][1], 48.0);
}

TEST_F(KernelsTest, SelectFiltersAndProjects) {
  PlanBuilder b(&catalog_);
  PlanBuilder::NodeOptions opts;
  opts.kernel.filter_column = 2;  // v
  opts.kernel.filter_lo = 0.25;
  opts.kernel.filter_hi = 0.5;
  opts.kernel.project_columns = {0};  // keep k only
  const int op = b.AddSource(OperatorType::kSelect, t_id_, opts);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  QueryExecution exec(&catalog_, &*plan, kChunk);
  RunAll(*plan, &exec);

  // Reference count.
  const Relation& rel = catalog_.relation(t_id_);
  int64_t expected = 0;
  for (size_t blk = 0; blk < rel.num_blocks(); ++blk) {
    for (double v : rel.block(blk).DoubleColumn(2)) {
      if (v >= 0.25 && v <= 0.5) ++expected;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(exec.output(op).num_rows()), expected);
  EXPECT_EQ(exec.output(op).num_cols(), 1);
}

TEST_F(KernelsTest, HashJoinMatchesEveryForeignKey) {
  // Join t against d on t.g-as-key? Use k mod: t.k joined to d.k matches
  // only k < kDimRows.
  PlanBuilder b(&catalog_);
  const int dscan = b.AddSource(OperatorType::kTableScan, d_id_, {});
  PlanBuilder::NodeOptions bopts;
  bopts.kernel.build_key = 0;
  const int build = b.AddOp(OperatorType::kBuildHash, {dscan}, bopts);
  const int tscan = b.AddSource(OperatorType::kTableScan, t_id_, {});
  PlanBuilder::NodeOptions popts;
  popts.kernel.probe_key = 0;  // t.k
  const int probe = b.AddOp(OperatorType::kProbeHash, {tscan, build}, popts);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  QueryExecution exec(&catalog_, &*plan, kChunk);
  RunAll(*plan, &exec);
  // Exactly the first kDimRows of t have a matching d.k.
  EXPECT_EQ(exec.output(probe).num_rows(), static_cast<size_t>(kDimRows));
  // Output arity: 3 (t) + 2 (d).
  EXPECT_EQ(exec.output(probe).num_cols(), 5);
}

TEST_F(KernelsTest, GroupedAggregateSumsPerGroup) {
  PlanBuilder b(&catalog_);
  const int scan = b.AddSource(OperatorType::kTableScan, t_id_, {});
  PlanBuilder::NodeOptions aopts;
  aopts.kernel.group_by_column = 1;  // g
  aopts.kernel.agg_column = 2;       // v
  aopts.kernel.agg_fn = AggFn::kSum;
  const int agg = b.AddOp(OperatorType::kHashAggregate, {scan}, aopts);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  QueryExecution exec(&catalog_, &*plan, kChunk);
  RunAll(*plan, &exec);

  // Reference sums per group.
  std::map<int64_t, double> ref;
  const Relation& rel = catalog_.relation(t_id_);
  for (size_t blk = 0; blk < rel.num_blocks(); ++blk) {
    const Block& block = rel.block(blk);
    for (size_t r = 0; r < block.num_rows(); ++r) {
      ref[block.Int64Column(1)[r]] += block.DoubleColumn(2)[r];
    }
  }
  const RowStore& out = exec.output(agg);
  ASSERT_EQ(out.num_rows(), ref.size());
  for (size_t r = 0; r < out.num_rows(); ++r) {
    const int64_t group = static_cast<int64_t>(out.at(r, 0));
    EXPECT_NEAR(out.at(r, 1), ref.at(group), 1e-6) << "group " << group;
  }
}

TEST_F(KernelsTest, PartialPlusFinalizeEqualsSingleAggregate) {
  auto make_plan = [&](bool two_phase) {
    PlanBuilder b(&catalog_);
    const int scan = b.AddSource(OperatorType::kTableScan, t_id_, {});
    PlanBuilder::NodeOptions aopts;
    aopts.kernel.group_by_column = 1;
    aopts.kernel.agg_column = 2;
    aopts.kernel.agg_fn = AggFn::kCount;
    int agg = b.AddOp(OperatorType::kHashAggregate, {scan}, aopts);
    if (two_phase) {
      PlanBuilder::NodeOptions fopts;
      fopts.kernel.agg_fn = AggFn::kCount;
      agg = b.AddOp(OperatorType::kFinalizeAggregate, {agg}, fopts);
    }
    auto plan = b.Build();
    EXPECT_TRUE(plan.ok());
    return std::make_pair(std::move(plan).value(), agg);
  };
  auto [p1, sink1] = make_plan(false);
  auto [p2, sink2] = make_plan(true);
  QueryExecution e1(&catalog_, &p1, kChunk), e2(&catalog_, &p2, kChunk);
  RunAll(p1, &e1);
  RunAll(p2, &e2);
  // Same number of groups, same total counts.
  ASSERT_EQ(e1.output(sink1).num_rows(), e2.output(sink2).num_rows());
  double total1 = 0.0, total2 = 0.0;
  for (size_t r = 0; r < e1.output(sink1).num_rows(); ++r) {
    total1 += e1.output(sink1).at(r, 1);
    total2 += e2.output(sink2).at(r, 1);
  }
  EXPECT_DOUBLE_EQ(total1, total2);
  EXPECT_DOUBLE_EQ(total1, static_cast<double>(kRows));
}

TEST_F(KernelsTest, DistinctKeepsOneRowPerKey) {
  PlanBuilder b(&catalog_);
  const int scan = b.AddSource(OperatorType::kTableScan, t_id_, {});
  PlanBuilder::NodeOptions dopts;
  dopts.kernel.group_by_column = 1;  // g in 0..7
  const int distinct = b.AddOp(OperatorType::kDistinct, {scan}, dopts);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  QueryExecution exec(&catalog_, &*plan, kChunk);
  RunAll(*plan, &exec);
  EXPECT_EQ(exec.output(distinct).num_rows(), 8u);
}

TEST_F(KernelsTest, LimitStopsAtN) {
  PlanBuilder b(&catalog_);
  const int scan = b.AddSource(OperatorType::kTableScan, t_id_, {});
  PlanBuilder::NodeOptions lopts;
  lopts.kernel.limit = 42;
  const int limit = b.AddOp(OperatorType::kLimit, {scan}, lopts);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  QueryExecution exec(&catalog_, &*plan, kChunk);
  RunAll(*plan, &exec);
  EXPECT_EQ(exec.output(limit).num_rows(), 42u);
}

TEST_F(KernelsTest, SortRunsThenMergeGloballySorted) {
  PlanBuilder b(&catalog_);
  const int scan = b.AddSource(OperatorType::kTableScan, t_id_, {});
  PlanBuilder::NodeOptions sopts;
  sopts.kernel.sort_column = 2;
  const int runs = b.AddOp(OperatorType::kSortRuns, {scan}, sopts);
  const int merged = b.AddOp(OperatorType::kMergeSortedRuns, {runs}, sopts);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  QueryExecution exec(&catalog_, &*plan, kChunk);
  RunAll(*plan, &exec);
  const RowStore& out = exec.output(merged);
  ASSERT_EQ(out.num_rows(), static_cast<size_t>(kRows));
  for (size_t r = 1; r < out.num_rows(); ++r) {
    EXPECT_LE(out.at(r - 1, 2), out.at(r, 2));
  }
}

TEST_F(KernelsTest, MergeJoinOverSortedInputs) {
  PlanBuilder b(&catalog_);
  // Sort both sides on k, then merge-join on k.
  const int tscan = b.AddSource(OperatorType::kTableScan, t_id_, {});
  PlanBuilder::NodeOptions sort_t;
  sort_t.kernel.sort_column = 0;
  const int truns = b.AddOp(OperatorType::kSortRuns, {tscan}, sort_t);
  const int tsorted = b.AddOp(OperatorType::kMergeSortedRuns, {truns}, sort_t);
  const int dscan = b.AddSource(OperatorType::kTableScan, d_id_, {});
  const int druns = b.AddOp(OperatorType::kSortRuns, {dscan}, sort_t);
  const int dsorted = b.AddOp(OperatorType::kMergeSortedRuns, {druns}, sort_t);
  PlanBuilder::NodeOptions mj;
  mj.kernel.probe_key = 0;
  mj.kernel.build_key = 0;
  const int join =
      b.AddOp(OperatorType::kMergeJoin, {tsorted, dsorted}, mj);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  QueryExecution exec(&catalog_, &*plan, kChunk);
  RunAll(*plan, &exec);
  EXPECT_EQ(exec.output(join).num_rows(), static_cast<size_t>(kDimRows));
}

TEST_F(KernelsTest, IndexNestedLoopJoinUsesPrebuiltIndex) {
  PlanBuilder b(&catalog_);
  PlanBuilder::NodeOptions scan_opts;
  scan_opts.kernel.filter_column = 2;
  scan_opts.kernel.filter_lo = 0.0;
  scan_opts.kernel.filter_hi = 0.3;
  const int scan = b.AddSource(OperatorType::kSelect, t_id_, scan_opts);
  PlanBuilder::NodeOptions inlj;
  inlj.kernel.probe_key = 0;  // t.k
  inlj.kernel.index_relation = d_id_;
  inlj.kernel.index_key = 0;  // d.k
  const int join = b.AddOp(OperatorType::kIndexNestedLoopJoin, {scan}, inlj);
  b.AddBaseInput(join, d_id_);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  QueryExecution exec(&catalog_, &*plan, kChunk);
  RunAll(*plan, &exec);

  // Reference: selected t rows with k < kDimRows.
  const Relation& rel = catalog_.relation(t_id_);
  int64_t expected = 0;
  for (size_t blk = 0; blk < rel.num_blocks(); ++blk) {
    const Block& block = rel.block(blk);
    for (size_t r = 0; r < block.num_rows(); ++r) {
      if (block.DoubleColumn(2)[r] <= 0.3 &&
          block.Int64Column(0)[r] < kDimRows) {
        ++expected;
      }
    }
  }
  EXPECT_EQ(static_cast<int64_t>(exec.output(join).num_rows()), expected);
}

TEST_F(KernelsTest, TopKKeepsLargest) {
  PlanBuilder b(&catalog_);
  const int scan = b.AddSource(OperatorType::kTableScan, t_id_, {});
  PlanBuilder::NodeOptions topts;
  topts.kernel.limit = 7;
  topts.kernel.sort_column = 2;
  const int topk = b.AddOp(OperatorType::kTopK, {scan}, topts);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  QueryExecution exec(&catalog_, &*plan, kChunk);
  RunAll(*plan, &exec);

  const Relation& rel = catalog_.relation(t_id_);
  std::vector<double> vals;
  for (size_t blk = 0; blk < rel.num_blocks(); ++blk) {
    for (double v : rel.block(blk).DoubleColumn(2)) vals.push_back(v);
  }
  std::sort(vals.rbegin(), vals.rend());
  const RowStore& out = exec.output(topk);
  ASSERT_EQ(out.num_rows(), 7u);
  std::multiset<double> got, want;
  for (size_t r = 0; r < 7; ++r) {
    got.insert(out.at(r, 2));
    want.insert(vals[r]);
  }
  EXPECT_EQ(got, want);
}

TEST_F(KernelsTest, WindowAppendsRunningSum) {
  PlanBuilder b(&catalog_);
  const int scan = b.AddSource(OperatorType::kTableScan, t_id_, {});
  PlanBuilder::NodeOptions wopts;
  wopts.kernel.group_by_column = 1;
  wopts.kernel.agg_column = 2;
  const int window = b.AddOp(OperatorType::kWindow, {scan}, wopts);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  QueryExecution exec(&catalog_, &*plan, kChunk);
  RunAll(*plan, &exec);
  const RowStore& out = exec.output(window);
  EXPECT_EQ(out.num_rows(), static_cast<size_t>(kRows));
  EXPECT_EQ(out.num_cols(), 4);  // input 3 + running sum
  // The final running sum per group equals the group total.
  std::map<int64_t, double> last, ref;
  for (size_t r = 0; r < out.num_rows(); ++r) {
    last[static_cast<int64_t>(out.at(r, 1))] = out.at(r, 3);
    ref[static_cast<int64_t>(out.at(r, 1))] += out.at(r, 2);
  }
  for (const auto& [g, total] : ref) {
    EXPECT_NEAR(last.at(g), total, 1e-6);
  }
}

TEST_F(KernelsTest, FusedPipelineEqualsStagedExecution) {
  auto make = [&]() {
    PlanBuilder b(&catalog_);
    PlanBuilder::NodeOptions s1;
    s1.kernel.filter_column = 2;
    s1.kernel.filter_lo = 0.2;
    s1.kernel.filter_hi = 1.0;
    const int scan = b.AddSource(OperatorType::kSelect, t_id_, s1);
    PlanBuilder::NodeOptions s2;
    s2.kernel.filter_column = 2;
    s2.kernel.filter_lo = 0.0;
    s2.kernel.filter_hi = 0.6;
    const int sel = b.AddOp(OperatorType::kSelect, {scan}, s2);
    auto plan = b.Build();
    EXPECT_TRUE(plan.ok());
    return std::make_pair(std::move(plan).value(), std::make_pair(scan, sel));
  };
  auto [p1, ops1] = make();
  auto [p2, ops2] = make();

  // Fused: one chain work order per source block.
  QueryExecution fused(&catalog_, &p1, kChunk);
  const int wos = fused.NumWorkOrders(ops1.first);
  for (int i = 0; i < wos; ++i) {
    ASSERT_TRUE(
        fused.ExecuteWorkOrder({ops1.first, ops1.second}, i).ok());
  }
  // Staged: run the scan fully, then the select over its output.
  QueryExecution staged(&catalog_, &p2, kChunk);
  RunAll(p2, &staged);
  EXPECT_EQ(fused.output(ops1.second).num_rows(),
            staged.output(ops2.second).num_rows());
}

TEST_F(KernelsTest, StateBytesGrowWithConsumedRows) {
  PlanBuilder b(&catalog_);
  const int scan = b.AddSource(OperatorType::kTableScan, d_id_, {});
  PlanBuilder::NodeOptions bopts;
  bopts.kernel.build_key = 0;
  const int build = b.AddOp(OperatorType::kBuildHash, {scan}, bopts);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  QueryExecution exec(&catalog_, &*plan, kChunk);
  for (int i = 0; i < exec.NumWorkOrders(scan); ++i) {
    ASSERT_TRUE(exec.ExecuteWorkOrder({scan}, i).ok());
  }
  ASSERT_TRUE(exec.FinalizeOperator(scan).ok());
  EXPECT_EQ(exec.StateBytes(build), 0u);
  ASSERT_TRUE(exec.ExecuteWorkOrder({build}, 0).ok());
  const size_t after_one = exec.StateBytes(build);
  EXPECT_GT(after_one, 0u);
  ASSERT_TRUE(exec.ExecuteWorkOrder({build}, 1).ok());
  EXPECT_GT(exec.StateBytes(build), after_one);
}

}  // namespace
}  // namespace lsched

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/real_engine.h"
#include "exec/sim_engine.h"
#include "plan/plan_builder.h"
#include "sched/guarded_policy.h"
#include "sched/heuristics.h"
#include "storage/table_generator.h"
#include "testing/faultpoint.h"
#include "testing/invariants.h"

namespace lsched {
namespace {

Result<QueryPlan> SmallPlan(int64_t rows = 30000) {
  PlanBuilder b(nullptr);
  PlanBuilder::NodeOptions src;
  src.input_rows = rows;
  const int s = b.AddSource(OperatorType::kSelect, 0, src);
  const int agg = b.AddOp(OperatorType::kHashAggregate, {s});
  b.AddOp(OperatorType::kFinalizeAggregate, {agg});
  return b.Build();
}

std::vector<QuerySubmission> SmallWorkload(int n, double gap = 0.01) {
  std::vector<QuerySubmission> out;
  for (int i = 0; i < n; ++i) {
    auto plan = SmallPlan(20000 + 7000 * (i % 3));
    EXPECT_TRUE(plan.ok());
    QuerySubmission sub;
    sub.plan = std::move(plan).value();
    sub.arrival_time = gap * i;
    out.push_back(std::move(sub));
  }
  return out;
}

struct InjectorCleaner {
  ~InjectorCleaner() { FaultInjector::Global().Clear(); }
};

/// --- the query lifecycle state machine ------------------------------------

TEST(QueryStatusTest, TransitionMatrix) {
  auto plan = SmallPlan();
  ASSERT_TRUE(plan.ok());
  {
    QueryState q(0, *plan, 0.0);
    EXPECT_EQ(q.status(), QueryStatus::kAdmitted);
    EXPECT_TRUE(q.TransitionTo(QueryStatus::kAdmitted));  // same-state no-op
    EXPECT_TRUE(q.TransitionTo(QueryStatus::kRunning));
    EXPECT_FALSE(q.TransitionTo(QueryStatus::kAdmitted));  // no going back
    EXPECT_TRUE(q.TransitionTo(QueryStatus::kDone));
    // Terminal states are absorbing.
    EXPECT_FALSE(q.TransitionTo(QueryStatus::kCancelled));
    EXPECT_FALSE(q.TransitionTo(QueryStatus::kRunning));
    EXPECT_TRUE(q.TransitionTo(QueryStatus::kDone));  // same-state still ok
    EXPECT_EQ(q.status(), QueryStatus::kDone);
  }
  {
    // Cancellation straight out of ADMITTED (pre-run cancel).
    QueryState q(1, *plan, 0.0);
    EXPECT_TRUE(q.TransitionTo(QueryStatus::kCancelled));
    EXPECT_TRUE(IsTerminalStatus(q.status()));
    EXPECT_FALSE(q.TransitionTo(QueryStatus::kFailed));
  }
  EXPECT_STREQ(QueryStatusName(QueryStatus::kAdmitted), "ADMITTED");
  EXPECT_STREQ(QueryStatusName(QueryStatus::kCancelled), "CANCELLED");
}

/// --- cancellation in the simulator ----------------------------------------

TEST(SimCancelTest, MidRunCancelTearsDownPipelinesPromptly) {
  // Reference run: how long does the lone query take untouched?
  SimEngineConfig config;
  config.num_threads = 4;
  double makespan;
  {
    SimEngine engine(config);
    FifoScheduler fifo;
    makespan = engine.Run(SmallWorkload(1), &fifo).makespan;
    ASSERT_GT(makespan, 0.0);
  }

  // Same seed, same workload, but cancel mid-run: the query must be torn
  // down at the cancel time, dropping its remaining work.
  config.cancels.push_back({0, makespan * 0.5});
  SimEngine engine(config);
  FifoScheduler fifo;
  ValidatingScheduler validating(&fifo);
  const EpisodeResult r = engine.Run(SmallWorkload(1), &validating);

  EXPECT_TRUE(validating.violations().empty())
      << validating.violations().front();
  ASSERT_EQ(r.final_statuses.size(), 1u);
  EXPECT_EQ(r.final_statuses[0], QueryStatus::kCancelled);
  EXPECT_EQ(r.num_queries_cancelled, 1);
  EXPECT_EQ(r.query_latencies.size(), 0u);  // no latency for a dead query
  // The cancel drops planned-but-unfinished work orders; the engine ends
  // promptly instead of simulating the rest of the query.
  EXPECT_GT(r.num_work_orders_dropped, 0);
  EXPECT_LT(r.num_work_orders_completed, r.num_work_orders_planned);
  EXPECT_LE(r.makespan, makespan);
  const Status ok = ValidateEpisodeResult(r, 1, config.num_threads);
  EXPECT_TRUE(ok.ok()) << ok.ToString();
}

TEST(SimCancelTest, PreArrivalCancelNeverRuns) {
  SimEngineConfig config;
  config.num_threads = 4;
  // Query 1 arrives at t=0.01 but is cancelled at t=0: admit-and-cancel.
  config.cancels.push_back({1, 0.0});
  SimEngine engine(config);
  FifoScheduler fifo;
  ValidatingScheduler validating(&fifo);
  const EpisodeResult r = engine.Run(SmallWorkload(2), &validating);

  EXPECT_TRUE(validating.violations().empty());
  ASSERT_EQ(r.final_statuses.size(), 2u);
  EXPECT_EQ(r.final_statuses[0], QueryStatus::kDone);
  EXPECT_EQ(r.final_statuses[1], QueryStatus::kCancelled);
  // Never launched => nothing planned for it, nothing dropped or discarded.
  EXPECT_EQ(r.num_work_orders_dropped, 0);
  EXPECT_EQ(r.num_work_orders_discarded, 0);
  EXPECT_TRUE(ValidateEpisodeResult(r, 2, config.num_threads).ok());
}

TEST(SimCancelTest, DoubleCancelAndCancelAfterDoneAreNoOps) {
  SimEngineConfig config;
  config.num_threads = 4;
  // Two scripted cancels for the same query, plus a cancel for a query that
  // will long be DONE by then.
  config.cancels.push_back({0, 0.0});
  config.cancels.push_back({0, 0.005});
  config.cancels.push_back({1, 1e7});
  SimEngine engine(config);
  FifoScheduler fifo;
  ValidatingScheduler validating(&fifo);
  const EpisodeResult r = engine.Run(SmallWorkload(2), &validating);

  EXPECT_TRUE(validating.violations().empty());
  ASSERT_EQ(r.final_statuses.size(), 2u);
  EXPECT_EQ(r.final_statuses[0], QueryStatus::kCancelled);
  EXPECT_EQ(r.final_statuses[1], QueryStatus::kDone);
  EXPECT_EQ(r.num_queries_cancelled, 1);  // the double cancel counted once
  EXPECT_TRUE(ValidateEpisodeResult(r, 2, config.num_threads).ok());

  // Cancelling after Run() returned: the query is terminal, so this is a
  // structural no-op.
  EXPECT_FALSE(engine.CancelQuery(0));
  EXPECT_FALSE(engine.CancelQuery(1));
  EXPECT_FALSE(engine.CancelQuery(999));  // unknown query
}

/// --- deadlines and retries -------------------------------------------------

TEST(DeadlineRetryTest, ExpiredAttemptsRetryExactlyMaxRetriesThenFail) {
  // A deadline below any work-order duration: every attempt expires. With
  // one thread the counters are exact: 1 + max_retries attempts for the
  // first work order, then the query FAILs.
  SimEngineConfig config;
  config.num_threads = 1;
  config.work_order_deadline_seconds = 1e-9;
  config.retry.max_retries = 3;
  SimEngine engine(config);
  FifoScheduler fifo;
  ValidatingScheduler validating(&fifo);
  const EpisodeResult r = engine.Run(SmallWorkload(1), &validating);

  EXPECT_TRUE(validating.violations().empty());
  ASSERT_EQ(r.final_statuses.size(), 1u);
  EXPECT_EQ(r.final_statuses[0], QueryStatus::kFailed);
  EXPECT_EQ(r.num_retries, 3);
  EXPECT_EQ(r.num_work_orders_failed, 4);
  EXPECT_EQ(r.num_work_orders_expired, 4);
  EXPECT_EQ(r.num_work_orders_completed, 0);
  EXPECT_TRUE(ValidateEpisodeResult(r, 1, config.num_threads).ok());
}

TEST(DeadlineRetryTest, RetryBackoffDelaysRedispatch) {
  SimEngineConfig config;
  config.num_threads = 1;
  config.work_order_deadline_seconds = 1e-9;
  config.retry.max_retries = 2;
  config.retry.backoff_seconds = 0.5;
  config.retry.backoff_multiplier = 2.0;
  SimEngine engine(config);
  FifoScheduler fifo;
  const EpisodeResult r = engine.Run(SmallWorkload(1), &fifo);

  ASSERT_EQ(r.final_statuses.size(), 1u);
  EXPECT_EQ(r.final_statuses[0], QueryStatus::kFailed);
  // Two backoffs happened (0.5s then 1.0s) before the final failure, so
  // virtual time must have advanced past their sum.
  EXPECT_GE(r.makespan, 1.5);
}

TEST(DeadlineRetryTest, FailingQueryDoesNotWedgeThePool) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "built with -DLSCHED_FAULTS=OFF";
  InjectorCleaner cleaner;
  // Query 0 fails every attempt; query 1 shares the pool and must still
  // finish normally.
  FaultSchedule schedule;
  schedule.seed = 4;
  FaultRule rule;
  rule.point = "work_order_exec";
  rule.query = 0;
  rule.probability = 1.0;
  rule.action = {FaultType::kError, 0.0};
  schedule.rules.push_back(rule);
  FaultInjector::Global().Install(schedule);

  SimEngineConfig config;
  config.num_threads = 2;
  SimEngine engine(config);
  FifoScheduler fifo;
  ValidatingScheduler validating(&fifo);
  const EpisodeResult r = engine.Run(SmallWorkload(2), &validating);

  EXPECT_TRUE(validating.violations().empty());
  ASSERT_EQ(r.final_statuses.size(), 2u);
  EXPECT_EQ(r.final_statuses[0], QueryStatus::kFailed);
  EXPECT_EQ(r.final_statuses[1], QueryStatus::kDone);
  ASSERT_EQ(r.query_latencies.size(), 1u);
  EXPECT_GT(r.query_latencies[0], 0.0);
  EXPECT_TRUE(ValidateEpisodeResult(r, 2, config.num_threads).ok());
}

/// --- GuardedPolicy ----------------------------------------------------------

class ThrowingScheduler : public Scheduler {
 public:
  std::string name() const override { return "Throwing"; }
  SchedulingDecision Schedule(const SchedulingEvent&,
                              const SchedulingContext&) override {
    throw std::runtime_error("model file went missing");
  }
  using Scheduler::Schedule;
};

/// Emits a parallelism choice for a query id that never existed.
class InvalidScheduler : public Scheduler {
 public:
  std::string name() const override { return "Invalid"; }
  SchedulingDecision Schedule(const SchedulingEvent&,
                              const SchedulingContext&) override {
    SchedulingDecision d;
    ParallelismChoice pc;
    pc.query = 424242;
    pc.max_threads = 4;
    d.parallelism.push_back(pc);
    return d;
  }
  using Scheduler::Schedule;
};

/// Throws for the first `failures` calls, then behaves like FIFO.
class FlakyScheduler : public Scheduler {
 public:
  explicit FlakyScheduler(int failures) : failures_left_(failures) {}
  std::string name() const override { return "Flaky"; }
  void Reset() override { fifo_.Reset(); }
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override {
    if (failures_left_ > 0) {
      --failures_left_;
      throw std::runtime_error("transient failure");
    }
    return fifo_.Schedule(event, ctx);
  }
  using Scheduler::Schedule;
  void OnQueryCompleted(QueryId query, double latency) override {
    fifo_.OnQueryCompleted(query, latency);
  }

 private:
  int failures_left_;
  FifoScheduler fifo_;
};

TEST(GuardedPolicyTest, ThrowingPolicyDegradesToFifoAndGoesSticky) {
  ThrowingScheduler inner;
  GuardedPolicy::Config gc;
  gc.sticky_after = 3;
  GuardedPolicy guarded(&inner, gc);
  EXPECT_EQ(guarded.name(), "Guarded(Throwing)");

  SimEngineConfig config;
  config.num_threads = 4;
  SimEngine engine(config);
  ValidatingScheduler validating(&guarded);
  const EpisodeResult r = engine.Run(SmallWorkload(3), &validating);

  // Every query completed even though the inner policy never answered once.
  EXPECT_TRUE(validating.violations().empty());
  ASSERT_EQ(r.final_statuses.size(), 3u);
  for (QueryStatus s : r.final_statuses) EXPECT_EQ(s, QueryStatus::kDone);
  EXPECT_GT(guarded.fallback_count(), 0);
  EXPECT_TRUE(guarded.sticky());
  EXPECT_TRUE(ValidateEpisodeResult(r, 3, config.num_threads).ok());
}

TEST(GuardedPolicyTest, InvalidDecisionIsCaughtAndReplaced) {
  InvalidScheduler inner;
  GuardedPolicy guarded(&inner);

  SimEngineConfig config;
  config.num_threads = 4;
  SimEngine engine(config);
  ValidatingScheduler validating(&guarded);
  const EpisodeResult r = engine.Run(SmallWorkload(2), &validating);

  // The invalid choice never reached the engine (the validator would have
  // flagged it), and FIFO kept the workload moving.
  EXPECT_TRUE(validating.violations().empty())
      << validating.violations().front();
  EXPECT_GT(guarded.fallback_count(), 0);
  ASSERT_EQ(r.final_statuses.size(), 2u);
  for (QueryStatus s : r.final_statuses) EXPECT_EQ(s, QueryStatus::kDone);
}

TEST(GuardedPolicyTest, SimulatedDecisionDelayExceedsBudget) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "built with -DLSCHED_FAULTS=OFF";
  InjectorCleaner cleaner;
  // Deterministic slowness: every policy_decide hit injects 1.0s of
  // simulated latency against a 0.5s budget (no real sleeping, so the sim
  // stays deterministic).
  FaultSchedule schedule;
  schedule.seed = 6;
  FaultRule rule;
  rule.point = "policy_decide";
  rule.probability = 1.0;
  rule.action = {FaultType::kDelay, 1.0};
  schedule.rules.push_back(rule);
  FaultInjector::Global().Install(schedule);

  FifoScheduler inner;
  GuardedPolicy::Config gc;
  gc.decision_budget_seconds = 0.5;
  GuardedPolicy guarded(&inner, gc);

  SimEngineConfig config;
  config.num_threads = 4;
  SimEngine engine(config);
  const EpisodeResult r = engine.Run(SmallWorkload(2), &guarded);

  EXPECT_GT(guarded.fallback_count(), 0);
  ASSERT_EQ(r.final_statuses.size(), 2u);
  for (QueryStatus s : r.final_statuses) EXPECT_EQ(s, QueryStatus::kDone);
}

TEST(GuardedPolicyTest, StickyGuardRecoversViaProbe) {
  // Fails the first 6 events (going sticky after 2), then heals. With a
  // probe every 3rd sticky event the guard must eventually probe the healed
  // policy and leave degraded mode.
  FlakyScheduler inner(6);
  GuardedPolicy::Config gc;
  gc.sticky_after = 2;
  gc.probe_interval = 3;
  GuardedPolicy guarded(&inner, gc);

  SimEngineConfig config;
  config.num_threads = 4;
  SimEngine engine(config);
  ValidatingScheduler validating(&guarded);
  const EpisodeResult r = engine.Run(SmallWorkload(8), &validating);

  EXPECT_TRUE(validating.violations().empty());
  ASSERT_EQ(r.final_statuses.size(), 8u);
  for (QueryStatus s : r.final_statuses) EXPECT_EQ(s, QueryStatus::kDone);
  EXPECT_GT(guarded.fallback_count(), 0);
  EXPECT_FALSE(guarded.sticky()) << "guard never recovered from degradation";
  EXPECT_EQ(guarded.consecutive_failures(), 0);
}

/// --- ValidatingScheduler liveness regression (satellite fix) ---------------

/// Returns choices referencing whatever query the test wired in, dead or not.
class DeadPickScheduler : public Scheduler {
 public:
  std::string name() const override { return "DeadPick"; }
  SchedulingDecision Schedule(const SchedulingEvent&,
                              const SystemState&) override {
    SchedulingDecision d;
    PipelineChoice pc;
    pc.query = 0;
    pc.root_op = 0;
    pc.degree = 1;
    d.pipelines.push_back(pc);
    ParallelismChoice par;
    par.query = 0;
    par.max_threads = 2;
    d.parallelism.push_back(par);
    return d;
  }
  using Scheduler::Schedule;
};

TEST(ValidatingSchedulerTest, FlagsChoicesForDeadQueries) {
  auto plan = SmallPlan();
  ASSERT_TRUE(plan.ok());
  QueryState q(0, *plan, 0.0);
  ASSERT_TRUE(q.TransitionTo(QueryStatus::kCancelled));

  SystemState state;
  state.now = 1.0;
  state.queries = {&q};
  ThreadInfo t;
  t.id = 0;
  state.threads = {t};

  DeadPickScheduler inner;
  ValidatingScheduler validating(&inner);
  SchedulingEvent ev;
  ev.type = SchedulingEventType::kThreadIdle;
  ev.time = 1.0;
  validating.Schedule(ev, state);

  // Both the snapshot (terminal query exposed) and the decision (choices
  // naming a dead query) must be flagged.
  bool snapshot_flagged = false, pipeline_flagged = false,
       parallelism_flagged = false;
  for (const std::string& v : validating.violations()) {
    if (v.find("still in snapshot") != std::string::npos &&
        v.find("terminal") != std::string::npos) {
      snapshot_flagged = true;
    }
    if (v.find("pipeline choice for dead query") != std::string::npos) {
      pipeline_flagged = true;
    }
    if (v.find("parallelism choice for dead query") != std::string::npos) {
      parallelism_flagged = true;
    }
  }
  EXPECT_TRUE(snapshot_flagged);
  EXPECT_TRUE(pipeline_flagged);
  EXPECT_TRUE(parallelism_flagged);
}

/// --- RealEngine lifecycle ---------------------------------------------------

std::unique_ptr<Catalog> TinyCatalog(uint64_t seed = 3) {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(seed);
  TableSpec t;
  t.name = "t";
  t.num_rows = 4000;
  t.block_capacity = 256;
  t.columns = {
      {"id", DataType::kInt64, ColumnDistribution::kSequential, 0, 0, 0},
      {"val", DataType::kDouble, ColumnDistribution::kUniformReal, 0, 1, 0}};
  EXPECT_TRUE(catalog->AddRelation(GenerateTable(t, &rng)).ok());
  return catalog;
}

QueryPlan ScanCountPlan(const Catalog& catalog) {
  PlanBuilder b(&catalog);
  PlanBuilder::NodeOptions scan;
  scan.selectivity = 1.0;
  const int src = b.AddSource(OperatorType::kTableScan, 0, scan);
  PlanBuilder::NodeOptions agg;
  agg.kernel.agg_fn = AggFn::kCount;
  agg.kernel.group_by_column = -1;
  agg.kernel.agg_column = 0;
  b.AddOp(OperatorType::kHashAggregate, {src}, agg);
  auto plan = b.Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

TEST(RealLifecycleTest, CancelledQueryFreesResourcesOthersComplete) {
  auto catalog = TinyCatalog();
  RealEngineConfig cfg;
  cfg.num_threads = 4;
  cfg.chunk_rows = 128;
  // Query 0 is cancelled on admission; query 1 runs to completion. The
  // engine's own end-of-run invariant checks (and ASan/LSan in CI) verify
  // the cancelled query's blocks and execution state were reclaimed.
  cfg.cancels.push_back({0, 0.0});
  RealEngine engine(catalog.get(), cfg);
  std::vector<RealQuerySubmission> workload;
  workload.push_back({ScanCountPlan(*catalog), 0.0});
  workload.push_back({ScanCountPlan(*catalog), 0.0});
  FifoScheduler fifo;
  ValidatingScheduler validating(&fifo);
  const RealRunResult result = engine.Run(workload, &validating);

  EXPECT_TRUE(validating.violations().empty())
      << validating.violations().front();
  ASSERT_EQ(result.episode.final_statuses.size(), 2u);
  EXPECT_EQ(result.episode.final_statuses[0], QueryStatus::kCancelled);
  EXPECT_EQ(result.episode.final_statuses[1], QueryStatus::kDone);
  // Sink output exists only for the completed query.
  EXPECT_EQ(result.sink_row_counts[0], 0);
  EXPECT_EQ(result.sink_row_counts[1], 1);
  EXPECT_DOUBLE_EQ(result.sink_checksums[1], 4000.0);
  const Status ok =
      ValidateEpisodeResult(result.episode, 2, cfg.num_threads);
  EXPECT_TRUE(ok.ok()) << ok.ToString();
}

TEST(RealLifecycleTest, InjectedFaultFailsQueryWithoutWedgingPool) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "built with -DLSCHED_FAULTS=OFF";
  InjectorCleaner cleaner;
  FaultSchedule schedule;
  schedule.seed = 8;
  FaultRule rule;
  rule.point = "work_order_exec";
  rule.query = 0;  // RealEngine probes with the query index
  rule.probability = 1.0;
  rule.action = {FaultType::kError, 0.0};
  schedule.rules.push_back(rule);
  FaultInjector::Global().Install(schedule);

  auto catalog = TinyCatalog();
  RealEngineConfig cfg;
  cfg.num_threads = 4;
  cfg.chunk_rows = 128;
  cfg.retry.max_retries = 1;
  RealEngine engine(catalog.get(), cfg);
  std::vector<RealQuerySubmission> workload;
  workload.push_back({ScanCountPlan(*catalog), 0.0});
  workload.push_back({ScanCountPlan(*catalog), 0.0});
  FifoScheduler fifo;
  ValidatingScheduler validating(&fifo);
  const RealRunResult result = engine.Run(workload, &validating);

  EXPECT_TRUE(validating.violations().empty())
      << validating.violations().front();
  ASSERT_EQ(result.episode.final_statuses.size(), 2u);
  EXPECT_EQ(result.episode.final_statuses[0], QueryStatus::kFailed);
  EXPECT_EQ(result.episode.final_statuses[1], QueryStatus::kDone);
  EXPECT_GT(result.episode.num_work_orders_failed, 0);
  EXPECT_DOUBLE_EQ(result.sink_checksums[1], 4000.0);
  const Status ok =
      ValidateEpisodeResult(result.episode, 2, cfg.num_threads);
  EXPECT_TRUE(ok.ok()) << ok.ToString();
}

TEST(RealLifecycleTest, ExternalCancelFromAnotherThreadIsSafe) {
  auto catalog = TinyCatalog();
  RealEngineConfig cfg;
  cfg.num_threads = 2;
  cfg.chunk_rows = 128;
  RealEngine engine(catalog.get(), cfg);
  std::vector<RealQuerySubmission> workload;
  for (int i = 0; i < 3; ++i) {
    workload.push_back({ScanCountPlan(*catalog), 0.0});
  }
  FifoScheduler fifo;
  // Fire CancelQuery(1) from a second thread while Run() is active. The
  // race is intentional: whichever way it lands, the run must finish with
  // every query terminal and pass the episode invariants.
  std::thread canceller([&engine] { engine.CancelQuery(1); });
  const RealRunResult result = engine.Run(workload, &fifo);
  canceller.join();

  ASSERT_EQ(result.episode.final_statuses.size(), 3u);
  for (QueryStatus s : result.episode.final_statuses) {
    EXPECT_TRUE(IsTerminalStatus(s));
  }
  const Status ok =
      ValidateEpisodeResult(result.episode, 3, cfg.num_threads);
  EXPECT_TRUE(ok.ok()) << ok.ToString();
}

}  // namespace
}  // namespace lsched

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "plan/plan_builder.h"
#include "storage/table_generator.h"
#include "testing/differential.h"
#include "testing/faultpoint.h"
#include "testing/fuzzer.h"
#include "testing/oracle.h"

namespace lsched {
namespace {

/// Structural fingerprint of a plan: node types, kernel parameters, edge
/// topology. Two plans with equal signatures execute identically.
std::string PlanSignature(const QueryPlan& plan) {
  std::ostringstream out;
  for (const PlanNode& n : plan.nodes()) {
    const KernelSpec& k = n.kernel;
    out << n.id << ":" << OperatorTypeName(n.type) << "(f" << k.filter_column
        << "," << k.filter_lo << "," << k.filter_hi << ";b" << k.build_key
        << ";p" << k.probe_key << ";g" << k.group_by_column << ";a"
        << k.agg_column << "," << static_cast<int>(k.agg_fn) << ";s"
        << k.sort_column << ";l" << k.limit << ";i" << k.index_relation << ","
        << k.index_key << ";proj";
    for (int c : k.project_columns) out << "_" << c;
    out << ";wo" << n.num_work_orders << ")\n";
  }
  for (const PlanEdge& e : plan.edges()) {
    out << e.producer << "->" << e.consumer << (e.pipeline_breaking ? "!" : "")
        << "\n";
  }
  return out.str();
}

double CatalogChecksum(const Catalog& catalog) {
  double sum = 0.0;
  for (RelationId r = 0; r < static_cast<RelationId>(catalog.num_relations());
       ++r) {
    const Relation& rel = catalog.relation(r);
    for (size_t b = 0; b < rel.num_blocks(); ++b) {
      const Block& block = rel.block(b);
      for (size_t c = 0; c < block.num_columns(); ++c) {
        for (size_t row = 0; row < block.num_rows(); ++row) {
          sum += block.ValueAsDouble(c, row);
        }
      }
    }
  }
  return sum;
}

TEST(WorkloadFuzzerTest, SameSeedSameWorkload) {
  for (uint64_t seed : {1ULL, 99ULL, 123456789ULL}) {
    WorkloadFuzzer a(seed);
    WorkloadFuzzer b(seed);
    FuzzedWorkload wa = a.NextWorkload();
    FuzzedWorkload wb = b.NextWorkload();
    ASSERT_EQ(wa.real_queries.size(), wb.real_queries.size());
    ASSERT_EQ(wa.catalog->num_relations(), wb.catalog->num_relations());
    EXPECT_DOUBLE_EQ(CatalogChecksum(*wa.catalog), CatalogChecksum(*wb.catalog));
    for (size_t i = 0; i < wa.real_queries.size(); ++i) {
      EXPECT_EQ(PlanSignature(wa.real_queries[i].plan),
                PlanSignature(wb.real_queries[i].plan));
      EXPECT_DOUBLE_EQ(wa.real_queries[i].arrival_offset_seconds,
                       wb.real_queries[i].arrival_offset_seconds);
      EXPECT_DOUBLE_EQ(wa.sim_queries[i].arrival_time,
                       wb.sim_queries[i].arrival_time);
    }
  }
}

TEST(WorkloadFuzzerTest, DifferentSeedsDiverge) {
  WorkloadFuzzer a(7);
  WorkloadFuzzer b(8);
  // A weak but deterministic statement: over a few workloads, at least one
  // structural difference shows up.
  std::string sig_a, sig_b;
  for (int i = 0; i < 5; ++i) {
    for (const auto& q : a.NextWorkload().real_queries) {
      sig_a += PlanSignature(q.plan);
    }
    for (const auto& q : b.NextWorkload().real_queries) {
      sig_b += PlanSignature(q.plan);
    }
  }
  EXPECT_NE(sig_a, sig_b);
}

TEST(WorkloadFuzzerTest, PlansAreValidAndOracleExecutable) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    WorkloadFuzzer fuzzer(seed);
    FuzzedWorkload w = fuzzer.NextWorkload();
    OracleExecutor oracle(w.catalog.get());
    for (const auto& q : w.real_queries) {
      EXPECT_TRUE(q.plan.Validate().ok()) << "seed " << seed;
      for (const PlanNode& n : q.plan.nodes()) {
        EXPECT_GE(n.num_work_orders, 1)
            << "seed " << seed << " node " << n.id;
      }
      Result<OracleQueryResult> r = oracle.Execute(q.plan);
      ASSERT_TRUE(r.ok()) << "seed " << seed << ": " << r.status().ToString();
      EXPECT_GE(r->sink_rows, 0);
    }
  }
}

TEST(WorkloadFuzzerTest, ChaosScriptsAreDeterministicAndConsistent) {
  FuzzerOptions opts;
  opts.chaos = true;
  opts.min_queries = 3;
  opts.max_queries = 6;
  for (uint64_t seed : {11ULL, 77ULL}) {
    WorkloadFuzzer a(seed, opts);
    WorkloadFuzzer b(seed, opts);
    const FuzzedWorkload wa = a.NextWorkload();
    const FuzzedWorkload wb = b.NextWorkload();
    // Same seed => same chaos script.
    ASSERT_EQ(wa.expected_statuses.size(), wa.sim_queries.size());
    ASSERT_EQ(wa.expected_statuses, wb.expected_statuses);
    ASSERT_EQ(wa.cancels.size(), wb.cancels.size());
    ASSERT_EQ(wa.faults.rules.size(), wb.faults.rules.size());
    EXPECT_EQ(wa.faults.seed, wb.faults.seed);
    // Script consistency: every cancelled query has a cancel request, every
    // failing query a query-scoped always-fail rule.
    for (size_t qi = 0; qi < wa.expected_statuses.size(); ++qi) {
      const QueryStatus expect = wa.expected_statuses[qi];
      bool has_cancel = false, has_fail_rule = false;
      for (const CancelRequest& c : wa.cancels) {
        if (c.query == static_cast<QueryId>(qi)) has_cancel = true;
      }
      for (const FaultRule& r : wa.faults.rules) {
        if (r.query == static_cast<int64_t>(qi) &&
            r.point == "work_order_exec" &&
            r.action.type == FaultType::kError) {
          has_fail_rule = true;
        }
      }
      EXPECT_EQ(has_cancel, expect == QueryStatus::kCancelled) << qi;
      EXPECT_EQ(has_fail_rule, expect == QueryStatus::kFailed) << qi;
    }
  }
}

/// Differential chaos sweep (satellite 3): under a fuzzed fault/cancel
/// script, Sim and Real must drive every query to the SAME scripted
/// terminal status, and completed queries must still match the oracle.
TEST(WorkloadFuzzerTest, DifferentialChaosTerminalStatusesAgree) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "built with -DLSCHED_FAULTS=OFF";
  DifferentialOptions options;
  options.fuzzer.chaos = true;
  options.real_thread_counts = {2};
  options.sim_threads = 4;
  std::vector<NamedSchedulerFactory> factories;
  for (auto& f : HeuristicSchedulerFactories()) {
    if (f.name == "FIFO" || f.name == "SJF") factories.push_back(f);
  }
  const DifferentialReport report =
      RunDifferential(20250806, 4, factories, options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.queries_run, 0);
}

TEST(WorkloadFuzzerTest, ArrivalsAreNondecreasing) {
  WorkloadFuzzer fuzzer(5, {});
  for (int i = 0; i < 10; ++i) {
    FuzzedWorkload w = fuzzer.NextWorkload();
    for (size_t q = 1; q < w.real_queries.size(); ++q) {
      EXPECT_GE(w.real_queries[q].arrival_offset_seconds,
                w.real_queries[q - 1].arrival_offset_seconds);
      EXPECT_GE(w.sim_queries[q].arrival_time,
                w.sim_queries[q - 1].arrival_time);
    }
    EXPECT_EQ(w.real_queries.front().arrival_offset_seconds, 0.0);
  }
}

TEST(WorkloadFuzzerTest, CoversDiverseOperatorMix) {
  std::set<OperatorType> seen;
  for (uint64_t seed = 0; seed < 80; ++seed) {
    WorkloadFuzzer fuzzer(seed);
    FuzzedWorkload w = fuzzer.NextWorkload();
    for (const auto& q : w.real_queries) {
      for (const PlanNode& n : q.plan.nodes()) seen.insert(n.type);
    }
  }
  for (OperatorType t : {OperatorType::kTableScan, OperatorType::kSelect,
                         OperatorType::kBuildHash, OperatorType::kProbeHash,
                         OperatorType::kUnion, OperatorType::kIntersect,
                         OperatorType::kSortRuns,
                         OperatorType::kMergeSortedRuns,
                         OperatorType::kMergeJoin,
                         OperatorType::kIndexNestedLoopJoin,
                         OperatorType::kNestedLoopJoin,
                         OperatorType::kHashAggregate,
                         OperatorType::kFinalizeAggregate,
                         OperatorType::kDistinct, OperatorType::kTopK,
                         OperatorType::kProject}) {
    EXPECT_TRUE(seen.count(t) > 0)
        << "fuzzer never generated " << OperatorTypeName(t);
  }
  // The order-dependent operators must never appear (oracle contract).
  EXPECT_EQ(seen.count(OperatorType::kLimit), 0u);
  EXPECT_EQ(seen.count(OperatorType::kWindow), 0u);
}

/// Oracle vs a hand-computed result on a tiny hand-built table: 10 rows,
/// id 0..9, val = id * 2. Filter val in [4, 10] -> ids {2,3,4,5}; scalar sum
/// of val = 4+6+8+10 = 28.
TEST(OracleExecutorTest, MatchesHandComputedReference) {
  auto catalog = std::make_unique<Catalog>();
  auto rel = std::make_unique<Relation>(
      "tiny",
      Schema({{"id", DataType::kInt64}, {"val", DataType::kInt64}}), 4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rel->AppendRow({static_cast<double>(i),
                                static_cast<double>(2 * i)}).ok());
  }
  ASSERT_TRUE(catalog->AddRelation(std::move(rel)).ok());

  PlanBuilder b(catalog.get());
  PlanBuilder::NodeOptions sel;
  sel.kernel.filter_column = 1;
  sel.kernel.filter_lo = 4.0;
  sel.kernel.filter_hi = 10.0;
  const int src = b.AddSource(OperatorType::kSelect, 0, sel);
  PlanBuilder::NodeOptions agg;
  agg.kernel.group_by_column = -1;
  agg.kernel.agg_column = 1;
  agg.kernel.agg_fn = AggFn::kSum;
  b.AddOp(OperatorType::kHashAggregate, {src}, agg);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());

  OracleExecutor oracle(catalog.get());
  Result<OracleQueryResult> r = oracle.Execute(plan.value());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->sink_rows, 1);
  // Sink row is (group key = 0 scalar, sum = 28): checksum 0 + 28.
  EXPECT_DOUBLE_EQ(r->sink_checksum, 28.0);
  // Node 0 (select) emits 4 rows; node 1 (agg) emits 1.
  ASSERT_EQ(r->node_output_rows.size(), 2u);
  EXPECT_EQ(r->node_output_rows[0], 4);
  EXPECT_EQ(r->node_output_rows[1], 1);
}

}  // namespace
}  // namespace lsched

// Tests for the workload scenario engine (workload/scenario.h): rate-curve
// algebra, the thinned inhomogeneous-Poisson arrival sampler (statistical
// acceptance: folded-bucket empirical rates and a KS check of steady gaps),
// seed-deterministic compilation (including concurrent regeneration for the
// TSan tier), template-mix drift semantics, the adversarial mix search, the
// end-to-end drift_ramp -> drift monitor -> OnlineLSched retrain trigger,
// and a Sim/Real differential run under the elastic preset.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/online.h"
#include "exec/real_engine.h"
#include "exec/sim_engine.h"
#include "obs/decision_log.h"
#include "obs/drift.h"
#include "obs/obs.h"
#include "sched/heuristics.h"
#include "testing/faultpoint.h"
#include "testing/fuzzer.h"
#include "testing/invariants.h"
#include "util/rng.h"
#include "workload/scenario.h"
#include "workload/workload.h"

namespace lsched {
namespace {

// ---------------------------------------------------------------------------
// Rate-curve algebra
// ---------------------------------------------------------------------------

TEST(RateCurveTest, PhasesBurstsAndDiurnalCompose) {
  RateCurve curve;
  curve.base_rate = 20.0;
  curve.phases = {{1.0, 5.0}, {2.0, 10.0}};
  EXPECT_DOUBLE_EQ(curve.RateAt(0.5), 5.0);    // first matching phase
  EXPECT_DOUBLE_EQ(curve.RateAt(1.5), 10.0);   // second phase window
  EXPECT_DOUBLE_EQ(curve.RateAt(2.5), 20.0);   // past the phases: base

  RateCurve burst;
  burst.base_rate = 8.0;
  burst.bursts = {{1.0, 0.5, 10.0}};
  EXPECT_DOUBLE_EQ(burst.RateAt(0.9), 8.0);
  EXPECT_DOUBLE_EQ(burst.RateAt(1.0), 80.0);   // half-open [start, start+dur)
  EXPECT_DOUBLE_EQ(burst.RateAt(1.49), 80.0);
  EXPECT_DOUBLE_EQ(burst.RateAt(1.5), 8.0);

  RateCurve diurnal;
  diurnal.base_rate = 10.0;
  diurnal.diurnal_amplitude = 1.0;
  diurnal.diurnal_period_seconds = 2.0;
  diurnal.diurnal_phase_radians = -M_PI / 2.0;  // trough at t = 0
  EXPECT_NEAR(diurnal.RateAt(0.0), 0.0, 1e-9);  // clamped, never negative
  EXPECT_NEAR(diurnal.RateAt(1.0), 20.0, 1e-9);  // peak: (1 + A) * base
}

TEST(RateCurveTest, MaxRateDominatesRateAtEverywhere) {
  RateCurve curve;
  curve.base_rate = 12.0;
  curve.phases = {{0.5, 30.0}};
  curve.diurnal_amplitude = 0.7;
  curve.diurnal_period_seconds = 1.3;
  curve.bursts = {{0.8, 0.4, 6.0}, {1.1, 0.4, 3.0}};  // overlapping
  const double max_rate = curve.MaxRate();
  for (int i = 0; i < 500; ++i) {
    const double t = 0.01 * static_cast<double>(i);
    EXPECT_LE(curve.RateAt(t), max_rate + 1e-9) << "t=" << t;
  }
}

// ---------------------------------------------------------------------------
// Thinned arrival process — statistical acceptance
// ---------------------------------------------------------------------------

TEST(ScenarioArrivalsTest, SteadyGapsMatchExponentialKs) {
  // For a constant curve, thinning accepts every candidate and the gaps are
  // exactly Exponential(1/rate). One-sample Kolmogorov-Smirnov against the
  // analytic CDF; the 1% critical value at n=4000 is ~0.026 and the seed is
  // fixed, so the bound is deterministic.
  RateCurve curve;
  curve.base_rate = 20.0;
  Rng rng(4242);
  const int n = 4000;
  const std::vector<double> at = SampleArrivalTimes(curve, n, &rng);
  ASSERT_EQ(at.size(), static_cast<size_t>(n));

  std::vector<double> gaps;
  gaps.reserve(at.size());
  double prev = 0.0;
  for (double t : at) {
    ASSERT_GT(t, prev);  // strictly increasing arrivals
    gaps.push_back(t - prev);
    prev = t;
  }
  std::sort(gaps.begin(), gaps.end());
  double d = 0.0;
  for (size_t i = 0; i < gaps.size(); ++i) {
    const double f = 1.0 - std::exp(-curve.base_rate * gaps[i]);
    const double lo = static_cast<double>(i) / static_cast<double>(n);
    const double hi = static_cast<double>(i + 1) / static_cast<double>(n);
    d = std::max({d, std::abs(f - lo), std::abs(f - hi)});
  }
  EXPECT_LT(d, 0.035) << "KS distance too large for exponential gaps";
}

TEST(ScenarioArrivalsTest, ThinnedProcessTracksDiurnalRate) {
  // Fold arrivals over complete diurnal periods into 8 phase buckets; the
  // empirical bucket counts must track the analytic intensity integral.
  RateCurve curve;
  curve.base_rate = 20.0;
  curve.diurnal_amplitude = 0.7;
  curve.diurnal_period_seconds = 2.0;
  curve.diurnal_phase_radians = -M_PI / 2.0;
  Rng rng(777);
  const int n = 6000;
  const std::vector<double> at = SampleArrivalTimes(curve, n, &rng);

  const double period = curve.diurnal_period_seconds;
  const int buckets = 8;
  const int periods = static_cast<int>(at.back() / period);
  ASSERT_GE(periods, 20) << "not enough complete periods to fold";
  const double horizon = static_cast<double>(periods) * period;

  std::vector<int> count(static_cast<size_t>(buckets), 0);
  int used = 0;
  for (double t : at) {
    if (t >= horizon) break;
    const int b = static_cast<int>(std::fmod(t, period) / period *
                                   static_cast<double>(buckets));
    ++count[static_cast<size_t>(std::min(b, buckets - 1))];
    ++used;
  }

  // Expected bucket mass: fine Riemann integral of the intensity over the
  // folded bucket (the curve has no phases/bursts, so RateAt is periodic).
  std::vector<double> mass(static_cast<size_t>(buckets), 0.0);
  double total_mass = 0.0;
  const int steps = 8000;
  for (int s = 0; s < steps; ++s) {
    const double t = (static_cast<double>(s) + 0.5) * period /
                     static_cast<double>(steps);
    const double r = curve.RateAt(t);
    const int b = static_cast<int>(t / period * static_cast<double>(buckets));
    mass[static_cast<size_t>(std::min(b, buckets - 1))] += r;
    total_mass += r;
  }
  for (int b = 0; b < buckets; ++b) {
    const double expected =
        static_cast<double>(used) * mass[static_cast<size_t>(b)] / total_mass;
    EXPECT_NEAR(static_cast<double>(count[static_cast<size_t>(b)]), expected,
                0.2 * expected + 12.0)
        << "bucket " << b << " of " << buckets;
  }
}

// ---------------------------------------------------------------------------
// Seed-deterministic compilation
// ---------------------------------------------------------------------------

ScenarioSpec SmallSpec(const std::string& preset) {
  ScenarioSpec spec = *ScenarioByName(preset);
  spec.benchmark = Benchmark::kSsb;
  spec.scale_factors = {2};
  spec.num_queries = 12;
  return spec;
}

/// Bit-stable fingerprint of a compiled scenario: arrival-time bit
/// patterns, tags, plan shapes, cancels, and thread events.
uint64_t Fingerprint(const CompiledScenario& c) {
  uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  const auto mix_double = [&](double d) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d), "");
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  for (const QuerySubmission& s : c.submissions) {
    mix_double(s.arrival_time);
    mix(static_cast<uint64_t>(s.tag.tenant));
    mix(static_cast<uint64_t>(s.tag.priority));
    mix(static_cast<uint64_t>(s.plan.num_nodes()));
    for (size_t op = 0; op < s.plan.num_nodes(); ++op) {
      mix(static_cast<uint64_t>(
          s.plan.node(static_cast<int>(op)).num_work_orders));
    }
  }
  for (const CancelRequest& cr : c.cancels) {
    mix(static_cast<uint64_t>(cr.query));
    mix_double(cr.time);
  }
  for (const ThreadPoolEvent& e : c.thread_events) {
    mix_double(e.time);
    mix(static_cast<uint64_t>(static_cast<int64_t>(e.delta)));
  }
  return h;
}

TEST(ScenarioCompileTest, SameSeedRegeneratesBitIdentically) {
  const ScenarioSpec spec = SmallSpec("drift_ramp");
  Rng a(99);
  Rng b(99);
  const CompiledScenario ca = CompileScenario(spec, &a);
  const CompiledScenario cb = CompileScenario(spec, &b);
  ASSERT_EQ(ca.submissions.size(), cb.submissions.size());
  for (size_t i = 0; i < ca.submissions.size(); ++i) {
    // Exact equality, not near: same seed must mean the same bits.
    EXPECT_EQ(ca.submissions[i].arrival_time, cb.submissions[i].arrival_time);
    EXPECT_EQ(ca.submissions[i].tag.tenant, cb.submissions[i].tag.tenant);
    EXPECT_EQ(ca.submissions[i].tag.priority, cb.submissions[i].tag.priority);
  }
  EXPECT_EQ(Fingerprint(ca), Fingerprint(cb));

  Rng c(100);
  EXPECT_NE(Fingerprint(ca), Fingerprint(CompileScenario(spec, &c)))
      << "different seeds should produce different workloads";
}

TEST(ScenarioCompileTest, ConcurrentCompilationIsPure) {
  // Two threads compiling the same (spec, seed) concurrently must both
  // reproduce the serial result — scenario compilation may not share any
  // hidden mutable state. Run under TSan in CI.
  const ScenarioSpec spec = SmallSpec("flash_crowd");
  Rng serial_rng(5);
  const uint64_t expected = Fingerprint(CompileScenario(spec, &serial_rng));

  uint64_t got[2] = {0, 0};
  std::thread t0([&] {
    Rng rng(5);
    got[0] = Fingerprint(CompileScenario(spec, &rng));
  });
  std::thread t1([&] {
    Rng rng(5);
    got[1] = Fingerprint(CompileScenario(spec, &rng));
  });
  t0.join();
  t1.join();
  EXPECT_EQ(got[0], expected);
  EXPECT_EQ(got[1], expected);
}

// ---------------------------------------------------------------------------
// Template-mix drift
// ---------------------------------------------------------------------------

double MeanTemplatePosition(const ScenarioSpec& spec, double t) {
  const std::vector<double> w = MixWeightsAt(spec, t);
  double num = 0.0;
  double den = 0.0;
  for (size_t j = 0; j < w.size(); ++j) {
    num += static_cast<double>(j) * w[j];
    den += w[j];
  }
  return den > 0.0 ? num / den : 0.0;
}

TEST(ScenarioMixTest, LinearRampMovesMeanPositionMonotonically) {
  const ScenarioSpec spec = SmallSpec("drift_ramp");  // tilt -4 -> +4
  double prev = MeanTemplatePosition(spec, 0.0);
  const double start = prev;
  for (double t = 0.25; t <= 2.5; t += 0.25) {
    const double cur = MeanTemplatePosition(spec, t);
    EXPECT_GE(cur, prev - 1e-12) << "t=" << t;
    prev = cur;
  }
  EXPECT_GT(prev, start + 0.5)
      << "the ramp must visibly shift the expected template position";
  // Outside the ramp window the mix is pinned to the endpoints.
  EXPECT_DOUBLE_EQ(MeanTemplatePosition(spec, 0.0),
                   MeanTemplatePosition(spec, spec.drift.start_time - 0.01));
  EXPECT_DOUBLE_EQ(MeanTemplatePosition(spec, spec.drift.end_time),
                   MeanTemplatePosition(spec, spec.drift.end_time + 5.0));
}

TEST(ScenarioMixTest, AbruptSwitchIsExactAtTheBoundary) {
  ScenarioSpec spec = SmallSpec("steady");
  spec.drift.kind = MixDriftKind::kAbruptSwitch;
  spec.drift.from.tilt = -3.0;
  spec.drift.to.tilt = 3.0;
  spec.drift.start_time = 1.0;

  ScenarioSpec from_only = spec;
  from_only.drift = MixDrift{};
  from_only.drift.from.tilt = -3.0;
  ScenarioSpec to_only = spec;
  to_only.drift = MixDrift{};
  to_only.drift.from.tilt = 3.0;

  const std::vector<double> before = MixWeightsAt(spec, 0.999);
  const std::vector<double> from_w = MixWeightsAt(from_only, 0.0);
  const std::vector<double> at = MixWeightsAt(spec, 1.0);
  const std::vector<double> to_w = MixWeightsAt(to_only, 0.0);
  ASSERT_EQ(before.size(), from_w.size());
  ASSERT_EQ(at.size(), to_w.size());
  for (size_t j = 0; j < before.size(); ++j) {
    EXPECT_DOUBLE_EQ(before[j], from_w[j]);
    EXPECT_DOUBLE_EQ(at[j], to_w[j]);
  }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ScenarioRegistryTest, PresetsCompileAndUnknownNamesAreRejected) {
  const std::vector<std::string>& names = ScenarioNames();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_FALSE(ScenarioByName("no_such_scenario").has_value());

  for (const std::string& name : names) {
    const std::optional<ScenarioSpec> preset = ScenarioByName(name);
    ASSERT_TRUE(preset.has_value()) << name;
    EXPECT_EQ(preset->name, name);

    ScenarioSpec spec = SmallSpec(name);
    spec.num_queries = 6;
    Rng rng(11);
    const CompiledScenario compiled = CompileScenario(spec, &rng);
    ASSERT_EQ(compiled.submissions.size(), 6u) << name;
    double prev = -1.0;
    for (const QuerySubmission& s : compiled.submissions) {
      EXPECT_GT(s.arrival_time, prev) << name;
      prev = s.arrival_time;
      EXPECT_GE(s.tag.tenant, 0);
      EXPECT_LT(s.tag.tenant, spec.num_tenants);
    }
    if (name == "elastic") {
      EXPECT_FALSE(compiled.thread_events.empty());
    }
    // The ingress form mirrors the compiled submissions 1:1.
    Rng rng2(11);
    const ScriptedIngress ingress = CompileIngress(spec, &rng2);
    EXPECT_EQ(ingress.plans().size(), compiled.submissions.size());
  }
}

// ---------------------------------------------------------------------------
// Adversarial mix search
// ---------------------------------------------------------------------------

TEST(AdversarialMixTest, SearchIsSeedDeterministic) {
  ScenarioSpec spec = SmallSpec("steady");
  spec.num_queries = 8;
  AdversarialSearchOptions opts;
  opts.iterations = 2;
  opts.num_threads = 4;
  opts.seed = 31;

  FifoScheduler policy_a;
  const AdversarialMixResult a = FindAdversarialMix(spec, &policy_a, opts);
  FifoScheduler policy_b;
  const AdversarialMixResult b = FindAdversarialMix(spec, &policy_b, opts);

  // 1 baseline + `iterations` candidates, each costing policy + 3 heuristic
  // episodes on the common-random-numbers workload.
  EXPECT_EQ(a.evaluations, (opts.iterations + 1) * 4);
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  ASSERT_FALSE(a.weights.empty());
  for (size_t j = 0; j < a.weights.size(); ++j) {
    EXPECT_EQ(a.weights[j], b.weights[j]);
    EXPECT_GT(a.weights[j], 0.0);
  }
  EXPECT_EQ(a.regret, b.regret);
  EXPECT_EQ(a.best_heuristic, b.best_heuristic);
  EXPECT_DOUBLE_EQ(a.regret,
                   a.policy_latency - a.best_heuristic_latency);
  // FIFO-as-policy can never beat the heuristic pool's best: the pool
  // contains FIFO itself, so best_heuristic <= policy and regret >= 0.
  EXPECT_GE(a.regret, -1e-12);
}

// ---------------------------------------------------------------------------
// End-to-end: drift_ramp traffic drives the drift monitor -> OnlineLSched
// retrain escalation, with the engine's own completion callbacks (no manual
// OnQueryCompleted calls).
// ---------------------------------------------------------------------------

#if LSCHED_OBS_ENABLED

TEST(ScenarioDriftTest, DriftRampEscalatesOnlineRetraining) {
  obs::SetEnabled(true);
  auto& log = obs::DecisionLog::Global();
  log.Clear();

  obs::DriftConfig dcfg;
  dcfg.min_samples = 40;
  dcfg.ph_lambda = 25.0;
  obs::DriftMonitor monitor(dcfg);
  monitor.AttachToDecisionLog();

  LSchedConfig mcfg;
  mcfg.hidden_dim = 8;
  mcfg.summary_dim = 8;
  mcfg.head_hidden = 8;
  LSchedModel model(mcfg);
  OnlineConfig ocfg;
  ocfg.update_every_queries = 16;  // checkpoint-mode serving
  OnlineLSched online(&model, ocfg);
  online.AttachDriftMonitor(&monitor);

  // drift_ramp traffic, single-tenant, carved into the scenario's own three
  // regimes by arrival time: the pre-ramp (stationary) prefix, the ramp
  // window, and the post-ramp tail. Splitting the stationary phase any
  // later would fold part of the mix drift into it and alarm by
  // construction.
  ScenarioSpec spec = SmallSpec("drift_ramp");
  spec.num_queries = 48;
  spec.num_tenants = 1;
  spec.high_priority_fraction = 0.0;
  spec.low_priority_fraction = 0.0;
  Rng rng(21);
  CompiledScenario compiled = CompileScenario(spec, &rng);
  std::vector<QuerySubmission> phase1;
  std::vector<QuerySubmission> phase2;
  std::vector<QuerySubmission> phase3;
  for (QuerySubmission& sub : compiled.submissions) {
    auto& dst = sub.arrival_time < spec.drift.start_time ? phase1
                : sub.arrival_time < spec.drift.end_time ? phase2
                                                         : phase3;
    dst.push_back(std::move(sub));
  }
  ASSERT_GE(phase1.size(), 6u);
  ASSERT_GE(phase2.size(), 12u);
  ASSERT_GE(phase3.size(), 4u);
  for (auto* phase : {&phase2, &phase3}) {
    const double rebase = phase->front().arrival_time;
    for (QuerySubmission& sub : *phase) sub.arrival_time -= rebase;
  }

  // Phase 1: the online scheduler serves the pre-ramp prefix on the cost
  // model its estimates come from — stationary, no alarm.
  SimEngineConfig base_cfg;
  base_cfg.num_threads = 8;
  SimEngine(base_cfg).Run(phase1, &online);
  ASSERT_GT(monitor.sample_count(), dcfg.min_samples);
  ASSERT_FALSE(monitor.alarmed())
      << "pre-drift phase must be stationary (score="
      << monitor.drift_score() << ")";
  ASSERT_FALSE(online.drift_escalated());

  // Phase 2: the ramp arrives while the system shifts under the policy
  // (contention inflates every realized duration). Realized latencies are
  // flushed to the decision log at episode finalize, so the Page-Hinkley
  // alarm fires by the end of this run.
  SimEngineConfig shifted_cfg = base_cfg;
  shifted_cfg.cost_params.intra_query_contention = 1.0;
  SimEngine(shifted_cfg).Run(phase2, &online);
  ASSERT_TRUE(monitor.alarmed())
      << "drift must alarm (score=" << monitor.drift_score() << ")";
  ASSERT_FALSE(online.drift_escalated());

  // Phase 3: the post-ramp tail keeps arriving. The first completion the
  // ENGINE reports to the online scheduler observes the pending alarm and
  // escalates the retrain cadence — the full trigger path, no manual pokes.
  SimEngine(shifted_cfg).Run(phase3, &online);
  EXPECT_TRUE(online.drift_escalated())
      << "the engine's OnQueryCompleted must have escalated the cadence";
  EXPECT_EQ(online.update_every_queries(), ocfg.drift_update_every_queries);

  monitor.DetachFromDecisionLog();
  log.Clear();
}

#endif  // LSCHED_OBS_ENABLED

// ---------------------------------------------------------------------------
// Differential: Sim and Real engines under the elastic preset
// ---------------------------------------------------------------------------

struct ElasticRunOutcome {
  std::vector<QueryStatus> statuses;
  int64_t planned = 0;
  int64_t dispatched = 0;
  int64_t completed = 0;
};

int PeakOf(int base, const std::vector<ThreadPoolEvent>& events) {
  int running = base;
  int peak = base;
  for (const ThreadPoolEvent& e : events) {
    running += e.delta;
    peak = std::max(peak, running);
  }
  return peak;
}

ElasticRunOutcome RunSimElastic(const FuzzedWorkload& w, int threads) {
  SimEngineConfig cfg;
  cfg.num_threads = threads;
  cfg.thread_events = w.sim_thread_events;
  cfg.cancels = w.cancels;
  FifoScheduler fifo;
  ValidatingScheduler validating(&fifo);
  SimEngine engine(cfg);
  const EpisodeResult r = engine.Run(w.sim_queries, &validating);
  EXPECT_TRUE(validating.violations().empty())
      << "[sim] " << validating.violations().front();
  const Status ok = ValidateEpisodeResult(
      r, w.sim_queries.size(), PeakOf(threads, w.sim_thread_events));
  EXPECT_TRUE(ok.ok()) << "[sim] " << ok.ToString();
  return {r.final_statuses, r.num_work_orders_planned,
          r.num_work_orders_dispatched, r.num_work_orders_completed};
}

ElasticRunOutcome RunRealElastic(const FuzzedWorkload& w, int threads) {
  RealEngineConfig cfg;
  cfg.num_threads = threads;
  cfg.chunk_rows = 128;
  cfg.thread_events = w.real_thread_events;
  cfg.cancels = w.cancels;
  FifoScheduler fifo;
  ValidatingScheduler validating(&fifo);
  RealEngine engine(w.catalog.get(), cfg);
  const RealRunResult r = engine.Run(w.real_queries, &validating);
  EXPECT_TRUE(validating.violations().empty())
      << "[real] " << validating.violations().front();
  const Status ok = ValidateEpisodeResult(
      r.episode, w.real_queries.size(),
      PeakOf(threads, w.real_thread_events));
  EXPECT_TRUE(ok.ok()) << "[real] " << ok.ToString();
  return {r.episode.final_statuses, r.episode.num_work_orders_planned,
          r.episode.num_work_orders_dispatched,
          r.episode.num_work_orders_completed};
}

TEST(ScenarioElasticDifferentialTest, EnginesAgreeUnderElasticPreset) {
  FuzzerOptions fopts;
  fopts.scenario = "elastic";
  fopts.min_queries = 24;
  fopts.max_queries = 24;
  WorkloadFuzzer fuzzer(7, fopts);
  const FuzzedWorkload w = fuzzer.NextWorkload();
  ASSERT_EQ(w.sim_thread_events.size(), 3u);   // the preset's three events
  ASSERT_EQ(w.real_thread_events.size(), 3u);

  const int threads = 4;  // preset deltas keep the pool within [2, 8]
  const ElasticRunOutcome sim = RunSimElastic(w, threads);
  const ElasticRunOutcome real = RunRealElastic(w, threads);

  // Identical terminal statuses: every query DONE in both engines.
  ASSERT_EQ(sim.statuses.size(), w.sim_queries.size());
  ASSERT_EQ(real.statuses.size(), w.real_queries.size());
  for (size_t i = 0; i < sim.statuses.size(); ++i) {
    EXPECT_EQ(sim.statuses[i], QueryStatus::kDone) << "query " << i;
    EXPECT_EQ(real.statuses[i], sim.statuses[i]) << "query " << i;
  }
  // Conservation closes in both engines despite mid-run pool changes:
  // every planned work order dispatched exactly once and completed.
  EXPECT_EQ(sim.planned, sim.dispatched);
  EXPECT_EQ(sim.planned, sim.completed);
  EXPECT_EQ(real.planned, real.dispatched);
  EXPECT_EQ(real.planned, real.completed);
}

TEST(ScenarioElasticDifferentialTest, ChaosVariantKeepsScriptedStatuses) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "built with -DLSCHED_FAULTS=OFF";
  FuzzerOptions fopts;
  fopts.scenario = "elastic";
  fopts.min_queries = 16;
  fopts.max_queries = 16;
  fopts.chaos = true;
  WorkloadFuzzer fuzzer(13, fopts);
  const FuzzedWorkload w = fuzzer.NextWorkload();
  ASSERT_EQ(w.expected_statuses.size(), w.sim_queries.size());

  const int threads = 4;
  FaultInjector::Global().Install(w.faults);
  const ElasticRunOutcome sim = RunSimElastic(w, threads);
  FaultInjector::Global().Install(w.faults);  // fresh per-rule RNG state
  const ElasticRunOutcome real = RunRealElastic(w, threads);
  FaultInjector::Global().Clear();

  // Both engines must land every query on the chaos script's terminal
  // status, elasticity or not.
  ASSERT_EQ(sim.statuses.size(), w.expected_statuses.size());
  ASSERT_EQ(real.statuses.size(), w.expected_statuses.size());
  for (size_t i = 0; i < w.expected_statuses.size(); ++i) {
    EXPECT_EQ(sim.statuses[i], w.expected_statuses[i]) << "[sim] query " << i;
    EXPECT_EQ(real.statuses[i], w.expected_statuses[i])
        << "[real] query " << i;
  }
}

}  // namespace
}  // namespace lsched

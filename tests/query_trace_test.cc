// Tests for the per-query lifetime trace subsystem (DESIGN.md §8.2): the
// exact-sum latency-decomposition invariant over seeded multi-tenant
// serving runs, bitwise Sim replay determinism, the Sim/Real differential
// (identical structural decompositions and the shared DeriveBreakdown
// round-trip both engines must satisfy), trace CSV round-trip, the
// `lsched_cli explain` renderer golden, and the TenantTable SLO/burn-rate
// and refused-latency ledgers the traces feed.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "exec/real_engine.h"
#include "exec/sim_engine.h"
#include "obs/obs.h"
#include "obs/query_trace.h"
#include "plan/plan_builder.h"
#include "sched/heuristics.h"
#include "serve/scripted_ingress.h"
#include "serve/serving_daemon.h"
#include "serve/serving_policy.h"
#include "testing/fuzzer.h"

namespace lsched {
namespace {

QueryPlan TinyPlan(int64_t rows = 20000) {
  PlanBuilder b(nullptr);
  PlanBuilder::NodeOptions src;
  src.input_rows = rows;
  const int s = b.AddSource(OperatorType::kSelect, 0, src);
  const int agg = b.AddOp(OperatorType::kHashAggregate, {s});
  b.AddOp(OperatorType::kFinalizeAggregate, {agg});
  auto plan = b.Build();
  EXPECT_TRUE(plan.ok());
  return std::move(plan).value();
}

/// A seeded multi-tenant overload script: enough concurrent arrivals that
/// the admission bound sheds and displaces, with mixed priorities so the
/// fairness machinery runs too.
ScriptedIngress OverloadScript(int num_queries) {
  std::vector<QueryPlan> plans;
  std::vector<IngressEvent> events;
  for (int i = 0; i < num_queries; ++i) {
    QueryTag tag;
    tag.tenant = static_cast<TenantId>(i % 3);
    if (i % 7 == 3) tag.priority = QueryPriority::kHigh;
    if (i % 3 == 1) tag.priority = QueryPriority::kLow;
    plans.push_back(TinyPlan(20000 + 1000 * (i % 5)));
    events.push_back(IngressEvent::Submit(0.001 * i, i, tag));
  }
  return ScriptedIngress(std::move(events), std::move(plans));
}

EpisodeResult RunOverload(int num_queries, int max_live) {
  const ScriptedIngress script = OverloadScript(num_queries);
  ServingDaemonConfig cfg;
  cfg.policy.max_live_queries = max_live;
  cfg.policy.tenant_weights = {{0, 1.0}, {1, 2.0}, {2, 3.0}};
  cfg.policy.tenant_slos = {{0, {0.05, 0.9}}, {1, {0.05, 0.9}},
                            {2, {0.05, 0.9}}};
  cfg.sim.num_threads = 4;
  cfg.sim.seed = 17;
  ServingDaemon daemon(cfg);
  SjfScheduler sjf;
  return daemon.RunScript(script, &sjf);
}

// ---------------------------------------------------------------------------
// Exact-sum decomposition invariant
// ---------------------------------------------------------------------------

TEST(LatencyDecompositionTest, SegmentsSumExactlyToEndToEndLatency) {
  const EpisodeResult r = RunOverload(/*num_queries=*/40, /*max_live=*/8);
  ASSERT_EQ(r.final_statuses.size(), 40u);
  ASSERT_EQ(r.query_breakdowns.size(), 40u);

  int64_t admission = 0, queue = 0, service = 0, stall = 0, total = 0;
  int decomposed = 0;
  for (size_t i = 0; i < r.query_breakdowns.size(); ++i) {
    const LatencyBreakdown& b = r.query_breakdowns[i];
    ASSERT_TRUE(b.valid) << "query " << i << " has no decomposition";
    // The invariant: integer-nanosecond segments telescope exactly — no
    // epsilon, no remainder bucket.
    EXPECT_EQ(b.SumNs(), b.total_ns) << "query " << i;
    EXPECT_GE(b.admission_ns, 0) << "query " << i;
    EXPECT_GE(b.queue_ns, 0) << "query " << i;
    EXPECT_GE(b.service_ns, 0) << "query " << i;
    EXPECT_GE(b.stall_ns, 0) << "query " << i;
    if (r.final_statuses[i] == QueryStatus::kDone) {
      EXPECT_GT(b.dispatches, 0) << "query " << i;
      EXPECT_GT(b.service_ns, 0) << "query " << i;
    }
    if (r.final_statuses[i] == QueryStatus::kShed) {
      // Shed covers both door-refusals (refused at the arrival instant,
      // so possibly a zero-length lifetime) and displacement victims,
      // which may have launched pipelines and accrued queue/service time
      // before a higher-priority arrival evicted them.  Either way the
      // segments must telescope (checked above via SumNs == total_ns).
      EXPECT_GE(b.total_ns, 0) << "query " << i;
    }
    admission += b.admission_ns;
    queue += b.queue_ns;
    service += b.service_ns;
    stall += b.stall_ns;
    total += b.total_ns;
    ++decomposed;
  }
  // The episode aggregates are exactly the per-query sums.
  EXPECT_EQ(r.num_queries_decomposed, decomposed);
  EXPECT_EQ(r.sum_admission_wait_ns, admission);
  EXPECT_EQ(r.sum_queue_wait_ns, queue);
  EXPECT_EQ(r.sum_service_time_ns, service);
  EXPECT_EQ(r.sum_stall_time_ns, stall);
  EXPECT_EQ(r.sum_latency_ns, total);
  // The overload bound actually bit (otherwise this test is a no-op).
  EXPECT_GT(r.num_queries_shed, 0);
}

TEST(LatencyDecompositionTest, SimReplayIsBitIdentical) {
  const EpisodeResult a = RunOverload(/*num_queries=*/30, /*max_live=*/8);
  const EpisodeResult b = RunOverload(/*num_queries=*/30, /*max_live=*/8);
  ASSERT_EQ(a.query_breakdowns.size(), b.query_breakdowns.size());
  for (size_t i = 0; i < a.query_breakdowns.size(); ++i) {
    const LatencyBreakdown& x = a.query_breakdowns[i];
    const LatencyBreakdown& y = b.query_breakdowns[i];
    EXPECT_EQ(x.admission_ns, y.admission_ns) << i;
    EXPECT_EQ(x.queue_ns, y.queue_ns) << i;
    EXPECT_EQ(x.service_ns, y.service_ns) << i;
    EXPECT_EQ(x.stall_ns, y.stall_ns) << i;
    EXPECT_EQ(x.total_ns, y.total_ns) << i;
    EXPECT_EQ(x.dispatches, y.dispatches) << i;
    EXPECT_EQ(x.retries, y.retries) << i;
  }
}

// ---------------------------------------------------------------------------
// Sim == Real differential
// ---------------------------------------------------------------------------

// Both engines run the same seeded multi-tenant workload through the same
// ServingPolicy. Real wall-clock timings differ from Sim's virtual clock,
// so the *values* of the segments differ — what must agree is the
// structure: the same terminal statuses, the exact-sum invariant on every
// decomposition, and (below, obs builds) the engine-independent
// DeriveBreakdown round-trip that defines "bit-identical decomposition".
TEST(SimRealDifferentialTest, DecompositionsAgreeStructurally) {
  FuzzerOptions opts;
  opts.min_queries = 8;
  opts.max_queries = 12;
  opts.num_tenants = 3;
  opts.high_priority_fraction = 0.25;
  opts.low_priority_fraction = 0.25;
  WorkloadFuzzer fuzzer(1234, opts);

  for (int round = 0; round < 3; ++round) {
    FuzzedWorkload w = fuzzer.NextWorkload();
    const size_t n = w.sim_queries.size();

    ServingPolicyConfig pcfg;
    pcfg.max_live_queries = 0;  // unbounded: statuses timing-independent

    ServingPolicy sim_policy(pcfg);
    SimEngineConfig scfg;
    scfg.num_threads = 4;
    scfg.cancels = w.cancels;
    scfg.hooks = &sim_policy;
    SimEngine sim(scfg);
    FifoScheduler sim_fifo;
    const EpisodeResult sim_r = sim.Run(w.sim_queries, &sim_fifo);

    ServingPolicy real_policy(pcfg);
    RealEngineConfig rcfg;
    rcfg.num_threads = 4;
    rcfg.chunk_rows = 128;
    rcfg.cancels = w.cancels;
    rcfg.hooks = &real_policy;
    RealEngine real(w.catalog.get(), rcfg);
    FifoScheduler real_fifo;
    const RealRunResult real_r = real.Run(w.real_queries, &real_fifo);

    ASSERT_EQ(sim_r.query_breakdowns.size(), n);
    ASSERT_EQ(real_r.episode.query_breakdowns.size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(sim_r.final_statuses[i], real_r.episode.final_statuses[i])
          << "query " << i << " (seed " << w.seed << ")";
      const LatencyBreakdown& s = sim_r.query_breakdowns[i];
      const LatencyBreakdown& r = real_r.episode.query_breakdowns[i];
      ASSERT_TRUE(s.valid) << "sim query " << i;
      ASSERT_TRUE(r.valid) << "real query " << i;
      EXPECT_EQ(s.SumNs(), s.total_ns) << "sim query " << i;
      EXPECT_EQ(r.SumNs(), r.total_ns) << "real query " << i;
      if (sim_r.final_statuses[i] == QueryStatus::kDone) {
        EXPECT_GT(s.dispatches, 0) << "sim query " << i;
        EXPECT_GT(r.dispatches, 0) << "real query " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DeriveBreakdown round-trip: the bit-identity both engines must satisfy
// ---------------------------------------------------------------------------

// DeriveBreakdown replays a published trace's edge stream through the same
// integer-nanosecond state machine the engines run online. For every
// record with no dropped edges — from EITHER engine — the result must
// reproduce the engine-computed breakdown bit-for-bit. This is the
// differential that makes "Sim and Real decompose identically" precise
// without comparing virtual seconds to wall seconds.
TEST(DeriveBreakdownTest, RoundTripsBitIdenticalOnBothEngines) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DLSCHED_OBS=OFF";
  obs::SetEnabled(true);
  obs::QueryTraceLog::Global().SetCapture(true);
  obs::QueryTraceLog::Global().Clear();

  // Sim side: the overload script (sheds + displacements in the stream).
  RunOverload(/*num_queries=*/30, /*max_live=*/8);
  const auto sim_records = obs::QueryTraceLog::Global().Snapshot();
  ASSERT_GE(sim_records.size(), 30u);

  // Real side: a fuzzed workload on real threads.
  obs::QueryTraceLog::Global().Clear();
  FuzzerOptions opts;
  opts.min_queries = 8;
  opts.max_queries = 10;
  opts.num_tenants = 3;
  WorkloadFuzzer fuzzer(99, opts);
  FuzzedWorkload w = fuzzer.NextWorkload();
  ServingPolicyConfig pcfg;
  pcfg.max_live_queries = 0;
  ServingPolicy policy(pcfg);
  RealEngineConfig rcfg;
  rcfg.num_threads = 4;
  rcfg.chunk_rows = 128;
  rcfg.cancels = w.cancels;
  rcfg.hooks = &policy;
  RealEngine real(w.catalog.get(), rcfg);
  FifoScheduler fifo;
  real.Run(w.real_queries, &fifo);
  const auto real_records = obs::QueryTraceLog::Global().Snapshot();
  ASSERT_GE(real_records.size(), w.real_queries.size());

  int checked = 0;
  for (const auto* records : {&sim_records, &real_records}) {
    for (const obs::QueryTraceRecord& rec : *records) {
      if (rec.dropped_edges > 0) continue;
      ASSERT_FALSE(rec.edges.empty()) << "query " << rec.query;
      const LatencyBreakdown derived = obs::DeriveBreakdown(rec);
      EXPECT_EQ(derived.admission_ns, rec.breakdown.admission_ns)
          << rec.engine << " query " << rec.query;
      EXPECT_EQ(derived.queue_ns, rec.breakdown.queue_ns)
          << rec.engine << " query " << rec.query;
      EXPECT_EQ(derived.service_ns, rec.breakdown.service_ns)
          << rec.engine << " query " << rec.query;
      EXPECT_EQ(derived.stall_ns, rec.breakdown.stall_ns)
          << rec.engine << " query " << rec.query;
      EXPECT_EQ(derived.total_ns, rec.breakdown.total_ns)
          << rec.engine << " query " << rec.query;
      EXPECT_EQ(derived.dispatches, rec.breakdown.dispatches)
          << rec.engine << " query " << rec.query;
      EXPECT_EQ(derived.retries, rec.breakdown.retries)
          << rec.engine << " query " << rec.query;
      ++checked;
    }
  }
  EXPECT_GT(checked, 30) << "cap must not have swallowed every record";
  obs::QueryTraceLog::Global().Clear();
}

// ---------------------------------------------------------------------------
// Trace CSV round-trip
// ---------------------------------------------------------------------------

TEST(QueryTraceCsvTest, RoundTripsEveryFieldAndEdge) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DLSCHED_OBS=OFF";
  obs::SetEnabled(true);
  obs::QueryTraceLog::Global().SetCapture(true);
  obs::QueryTraceLog::Global().Clear();
  RunOverload(/*num_queries=*/20, /*max_live=*/6);
  const auto records = obs::QueryTraceLog::Global().Snapshot();
  ASSERT_GE(records.size(), 20u);

  std::ostringstream out;
  obs::WriteQueryTraceCsv(records, out);
  std::istringstream in(out.str());
  std::vector<obs::QueryTraceRecord> parsed;
  ASSERT_TRUE(obs::ParseQueryTraceCsv(in, &parsed));
  ASSERT_EQ(parsed.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const obs::QueryTraceRecord& a = records[i];
    const obs::QueryTraceRecord& b = parsed[i];
    EXPECT_EQ(a.query, b.query);
    EXPECT_EQ(a.tenant, b.tenant);
    EXPECT_EQ(a.priority, b.priority);
    EXPECT_EQ(a.engine, b.engine);
    EXPECT_EQ(a.final_status, b.final_status);
    EXPECT_EQ(a.dropped_edges, b.dropped_edges);
    EXPECT_EQ(a.breakdown.admission_ns, b.breakdown.admission_ns);
    EXPECT_EQ(a.breakdown.queue_ns, b.breakdown.queue_ns);
    EXPECT_EQ(a.breakdown.service_ns, b.breakdown.service_ns);
    EXPECT_EQ(a.breakdown.stall_ns, b.breakdown.stall_ns);
    EXPECT_EQ(a.breakdown.total_ns, b.breakdown.total_ns);
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (size_t j = 0; j < a.edges.size(); ++j) {
      EXPECT_EQ(a.edges[j].kind, b.edges[j].kind) << i << "/" << j;
      EXPECT_EQ(a.edges[j].a, b.edges[j].a) << i << "/" << j;
      EXPECT_EQ(a.edges[j].b, b.edges[j].b) << i << "/" << j;
    }
  }

  std::istringstream garbage("this,is,not,a,trace\n1,2,3\n");
  std::vector<obs::QueryTraceRecord> rejected;
  EXPECT_FALSE(obs::ParseQueryTraceCsv(garbage, &rejected));
  obs::QueryTraceLog::Global().Clear();
}

// ---------------------------------------------------------------------------
// `lsched_cli explain` renderer golden
// ---------------------------------------------------------------------------

// A synthetic trace with one of everything the attributor names: a
// considered-but-skipped decision, a fairness redirection, a displacement
// threat survived, a retry, and a terminal DONE. The golden is the full
// renderer output; a change here is a user-visible CLI change and should
// be reviewed as one.
TEST(RenderExplainTest, GoldenTimeline) {
  obs::QueryTraceRecord r;
  r.query = 42;
  r.tenant = 1;
  r.priority = 2;  // kHigh
  r.engine = "sim";
  r.final_status = static_cast<int32_t>(QueryStatus::kDone);
  r.arrival_time = 10.0;
  r.terminal_time = 10.005;
  r.breakdown.admission_ns = 1000000;   // 1 ms
  r.breakdown.queue_ns = 1500000;       // 1.5 ms
  r.breakdown.service_ns = 2000000;     // 2 ms
  r.breakdown.stall_ns = 500000;        // 0.5 ms
  r.breakdown.total_ns = 5000000;       // exact sum
  r.breakdown.dispatches = 2;
  r.breakdown.retries = 1;
  r.breakdown.valid = true;

  auto edge = [](double t, obs::TraceEdgeKind k, int64_t a, int64_t b,
                 double v) {
    obs::TraceEdge e;
    e.time = t;
    e.kind = k;
    e.a = a;
    e.b = b;
    e.value = v;
    return e;
  };
  r.edges = {
      edge(10.0, obs::TraceEdgeKind::kArrival, 1, 2, 0),
      edge(10.0, obs::TraceEdgeKind::kAdmit, 0, -1, 0),
      edge(10.0005, obs::TraceEdgeKind::kConsideredSkipped, 7, 9, 0.25),
      edge(10.001, obs::TraceEdgeKind::kScheduled, 8, 0, 2),
      edge(10.001, obs::TraceEdgeKind::kRedirected, 11, -1, 0),
      edge(10.0025, obs::TraceEdgeKind::kDispatch, -1, -1, 0),
      edge(10.003, obs::TraceEdgeKind::kFailed, -1, -1, 0),
      edge(10.003, obs::TraceEdgeKind::kRetry, -1, -1, 0),
      edge(10.0035, obs::TraceEdgeKind::kDispatch, -1, -1, 1),
      edge(10.0045, obs::TraceEdgeKind::kComplete, -1, -1, 0.001),
      edge(10.005, obs::TraceEdgeKind::kTerminal,
           static_cast<int64_t>(QueryStatus::kDone), -1, 0.005),
  };

  const std::string golden =
      "query 42 — DONE (tenant 1, HIGH priority, sim engine)\n"
      "  end-to-end latency: 5.000 ms (arrival t=10.000000s, terminal "
      "t=10.005000s)\n"
      "  decomposition: admission 1.000 ms | queue 1.500 ms | service "
      "2.000 ms | stall 0.500 ms  [segments sum exactly to total]\n"
      "  timeline:\n"
      "    +    0.000 ms  arrival (tenant 1, HIGH priority)\n"
      "    +    0.000 ms  admission verdict: admit\n"
      "    +    0.500 ms  considered by decision #7 but skipped (chose "
      "query 9, predicted score 0.2500)\n"
      "    +    1.000 ms  pipeline launched by decision #8 (root op 0, "
      "degree 2)\n"
      "    +    1.000 ms  launch redirected to query 11 by "
      "weighted-fairness post-processing\n"
      "    +    2.500 ms  work order dispatched\n"
      "    +    3.000 ms  work-order attempt failed\n"
      "    +    3.000 ms  failed attempt queued for retry\n"
      "    +    3.500 ms  work-order retry dispatched\n"
      "    +    4.500 ms  work order completed (1.000 ms)\n"
      "    +    5.000 ms  terminal: DONE\n"
      "  attribution:\n"
      "    admission wait (1.000 ms): waiting in the admitted set for the "
      "first pipeline launch; passed over by 1 decision(s)\n"
      "    queue wait (1.500 ms): launch redirected away 1 time(s) by "
      "weighted fairness\n"
      "    service (2.000 ms): 2 work-order dispatch(es)\n"
      "    stall (0.500 ms): 1 failed attempt(s) retried\n";
  EXPECT_EQ(obs::RenderExplain(r), golden);
}

// ---------------------------------------------------------------------------
// TenantTable: SLO burn rate and refused-latency ledger
// ---------------------------------------------------------------------------

QueryState TerminalQuery(QueryId id, double arrival, double now,
                         QueryStatus status, TenantId tenant) {
  QueryState q(id, TinyPlan(), arrival);
  QueryTag tag;
  tag.tenant = tenant;
  q.set_tag(tag);
  // kShed is only reachable from kAdmitted (a shed query never started);
  // the other terminals pass through kRunning first.
  if (status != QueryStatus::kShed) q.TransitionTo(QueryStatus::kRunning);
  q.TransitionTo(status);
  LatencyBreakdown b;
  b.total_ns = static_cast<int64_t>((now - arrival) * 1e9 + 0.5);
  b.service_ns = b.total_ns;
  b.valid = true;
  q.set_breakdown(b);
  return q;
}

TEST(TenantSloTest, BurnRateCountsSlowDoneAndRefusedQueries) {
  TenantTable table;
  TenantSlo slo;
  slo.target_seconds = 0.1;
  slo.percentile = 0.9;  // error budget: 10%
  table.SetSlo(0, slo);

  // 8 fast DONE + 1 slow DONE + 1 SHED: 2 violations out of 10 eligible.
  for (int i = 0; i < 8; ++i) {
    QueryState q = TerminalQuery(i, 0.0, 0.05, QueryStatus::kDone, 0);
    table.OnArrival(q.tag(), /*admitted=*/true);
    table.OnTerminal(q, 0.05);
  }
  QueryState slow = TerminalQuery(8, 0.0, 0.5, QueryStatus::kDone, 0);
  table.OnArrival(slow.tag(), true);
  table.OnTerminal(slow, 0.5);
  QueryState shed = TerminalQuery(9, 0.0, 0.01, QueryStatus::kShed, 0);
  table.OnArrival(shed.tag(), /*admitted=*/false);
  table.OnTerminal(shed, 0.01);

  const TenantStats* s = table.stats(0);
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->has_slo);
  EXPECT_EQ(s->slo_total, 10);
  EXPECT_EQ(s->slo_violations, 2);
  // (2/10) observed bad fraction / 0.1 budget = burn rate 2.
  EXPECT_NEAR(s->BurnRate(), 2.0, 1e-12);

  // A cancel is the client's own doing: refused ledger yes, SLO no.
  QueryState cancel = TerminalQuery(10, 0.0, 0.2, QueryStatus::kCancelled, 0);
  table.OnArrival(cancel.tag(), true);
  table.OnTerminal(cancel, 0.2);
  EXPECT_EQ(table.stats(0)->slo_total, 10);
  EXPECT_EQ(table.stats(0)->slo_violations, 2);
  EXPECT_EQ(table.stats(0)->refused, 2);  // the shed + the cancel

  // No SLO configured -> burn rate identically 0.
  QueryState other = TerminalQuery(11, 0.0, 9.9, QueryStatus::kShed, 5);
  table.OnArrival(other.tag(), false);
  table.OnTerminal(other, 9.9);
  EXPECT_DOUBLE_EQ(table.stats(5)->BurnRate(), 0.0);

  // The SLO survives Reset (like weights) and re-applies to the tenant.
  table.Reset();
  QueryState late = TerminalQuery(12, 0.0, 0.5, QueryStatus::kDone, 0);
  table.OnArrival(late.tag(), true);
  table.OnTerminal(late, 0.5);
  EXPECT_TRUE(table.stats(0)->has_slo);
  EXPECT_EQ(table.stats(0)->slo_total, 1);
  EXPECT_EQ(table.stats(0)->slo_violations, 1);
  EXPECT_NEAR(table.stats(0)->BurnRate(), 10.0, 1e-12);
}

TEST(TenantSloTest, RefusedLatencyLedgerSeparatesShedPain) {
  TenantTable table;
  // Tenant 0: every query refused after a long admission wait. The
  // DONE-only quantiles never observe anything, but the refused ledger
  // records the pain.
  for (int i = 0; i < 50; ++i) {
    QueryState q = TerminalQuery(i, 0.0, 2.0, QueryStatus::kShed, 0);
    table.OnArrival(q.tag(), false);
    table.OnTerminal(q, 2.0);
  }
  const TenantStats* s = table.stats(0);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->refused, 50);
  EXPECT_EQ(s->completed, 0);
  EXPECT_NEAR(s->refused_latency_p50.Value(), 2.0, 0.1);
  // Decomposition sums accumulated from the breakdowns.
  EXPECT_NEAR(s->service_time_seconds, 100.0, 1e-6);
}

TEST(TenantSloTest, SetSloValidatesAndExposesConfig) {
  TenantTable table;
  TenantSlo slo;
  slo.target_seconds = 1.5;
  slo.percentile = 0.95;
  table.SetSlo(3, slo);
  ASSERT_NE(table.slo(3), nullptr);
  EXPECT_DOUBLE_EQ(table.slo(3)->target_seconds, 1.5);
  EXPECT_DOUBLE_EQ(table.slo(3)->percentile, 0.95);
  EXPECT_EQ(table.slo(4), nullptr);
}

// ---------------------------------------------------------------------------
// Serving daemon end-to-end: per-tenant decomposition sums
// ---------------------------------------------------------------------------

TEST(ServingDecompositionTest, PerTenantSumsMatchEpisodeAggregates) {
  const ScriptedIngress script = OverloadScript(30);
  ServingDaemonConfig cfg;
  cfg.policy.max_live_queries = 8;
  cfg.policy.tenant_weights = {{0, 1.0}, {1, 2.0}, {2, 3.0}};
  cfg.sim.num_threads = 4;
  cfg.sim.seed = 17;
  ServingDaemon daemon(cfg);
  SjfScheduler sjf;
  const EpisodeResult r = daemon.RunScript(script, &sjf);

  double admission = 0, queue = 0, service = 0, stall = 0;
  for (TenantId t : daemon.tenants().ids()) {
    const TenantStats* s = daemon.tenants().stats(t);
    admission += s->admission_wait_seconds;
    queue += s->queue_wait_seconds;
    service += s->service_time_seconds;
    stall += s->stall_time_seconds;
  }
  // The per-tenant accumulators partition the episode totals (double
  // accumulation of exact integer-ns values: tolerance is rounding only).
  EXPECT_NEAR(admission, r.sum_admission_wait_ns * 1e-9, 1e-6);
  EXPECT_NEAR(queue, r.sum_queue_wait_ns * 1e-9, 1e-6);
  EXPECT_NEAR(service, r.sum_service_time_ns * 1e-9, 1e-6);
  EXPECT_NEAR(stall, r.sum_stall_time_ns * 1e-9, 1e-6);
}

// ---------------------------------------------------------------------------
// Name tables
// ---------------------------------------------------------------------------

TEST(TraceEdgeKindTest, NamesAreStable) {
  EXPECT_STREQ(obs::TraceEdgeKindName(obs::TraceEdgeKind::kArrival),
               "arrival");
  EXPECT_STREQ(obs::TraceEdgeKindName(obs::TraceEdgeKind::kTerminal),
               "terminal");
  EXPECT_STREQ(
      obs::TraceEdgeKindName(obs::TraceEdgeKind::kConsideredSkipped),
      "considered_skipped");
}

}  // namespace
}  // namespace lsched

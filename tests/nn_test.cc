#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>

#include "nn/autograd.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/params.h"
#include "nn/tensor.h"

namespace lsched {
namespace {

TEST(MatrixTest, MatMulKnownValues) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int v = 1;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) a.at(r, c) = v++;
  }
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 2; ++c) b.at(r, c) = v++;
  }
  const Matrix c = Matrix::MatMul(a, b);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(MatrixTest, Transpose) {
  Matrix a(2, 3);
  a.at(0, 2) = 5.0;
  const Matrix t = a.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 5.0);
}

/// Numerical gradient check: perturbs every element of every parameter and
/// compares (f(x+h)-f(x-h))/2h to the backprop gradient.
void GradCheck(ParameterStore* store,
               const std::function<double(Tape*, bool)>& forward,
               double tol = 1e-5) {
  // Analytic gradients.
  store->ZeroGrads();
  {
    Tape tape;
    forward(&tape, true);
  }
  const double h = 1e-6;
  for (Param* p : store->All()) {
    for (size_t i = 0; i < p->value.raw().size(); ++i) {
      const double orig = p->value.raw()[i];
      p->value.raw()[i] = orig + h;
      Tape t1;
      const double fp = forward(&t1, false);
      p->value.raw()[i] = orig - h;
      Tape t2;
      const double fm = forward(&t2, false);
      p->value.raw()[i] = orig;
      const double numeric = (fp - fm) / (2.0 * h);
      const double analytic = p->grad.raw()[i];
      EXPECT_NEAR(analytic, numeric, tol)
          << "param " << p->name << " index " << i;
    }
  }
}

TEST(AutogradTest, GradCheckLinearChain) {
  ParameterStore store;
  Rng rng(5);
  Param* w = store.Create("w", 3, 4, &rng);
  Param* b = store.CreateZero("b", 1, 4);
  b->value.at(0, 1) = 0.3;
  Matrix x(2, 3);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) x.at(r, c) = 0.1 * (r + 1) * (c + 1);
  }
  auto forward = [&](Tape* tape, bool backward) {
    Var xv = tape->Constant(x);
    Var h = tape->Add(tape->MatMul(xv, tape->Leaf(w)), tape->Leaf(b));
    h = tape->Tanh(h);
    Var loss = tape->SumAll(tape->Mul(h, h));
    if (backward) tape->Backward(loss);
    return loss.value().at(0, 0);
  };
  GradCheck(&store, forward);
}

TEST(AutogradTest, GradCheckSoftmaxPick) {
  ParameterStore store;
  Rng rng(6);
  Param* w = store.Create("w", 4, 5, &rng);
  Matrix x(1, 4);
  for (int c = 0; c < 4; ++c) x.at(0, c) = 0.3 * c - 0.5;
  auto forward = [&](Tape* tape, bool backward) {
    Var logits = tape->MatMul(tape->Constant(x), tape->Leaf(w));
    Var lp = tape->LogSoftmaxRow(logits);
    Var loss = tape->Scale(tape->PickCol(lp, 2), -1.0);
    if (backward) tape->Backward(loss);
    return loss.value().at(0, 0);
  };
  GradCheck(&store, forward);
}

TEST(AutogradTest, GradCheckConcatSliceExp) {
  ParameterStore store;
  Rng rng(7);
  Param* a = store.Create("a", 1, 3, &rng);
  Param* b = store.Create("b", 1, 2, &rng);
  auto forward = [&](Tape* tape, bool backward) {
    Var av = tape->Leaf(a);
    Var bv = tape->Leaf(b);
    Var cat = tape->ConcatCols({av, bv});          // 1x5
    Var rows = tape->ConcatRows({cat, cat});       // 2x5
    Var row1 = tape->SliceRow(rows, 1);            // 1x5
    Var e = tape->Exp(tape->Scale(row1, 0.5));
    Var loss = tape->SumAll(tape->LeakyRelu(tape->AddConst(e, -1.0)));
    if (backward) tape->Backward(loss);
    return loss.value().at(0, 0);
  };
  GradCheck(&store, forward);
}

TEST(AutogradTest, GradCheckBroadcastMulAndDot) {
  ParameterStore store;
  Rng rng(8);
  Param* w = store.Create("w", 1, 4, &rng);   // broadcast row
  Param* s = store.Create("s", 1, 1, &rng);   // broadcast scalar
  Matrix x(3, 4);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) x.at(r, c) = 0.2 * r - 0.1 * c + 0.05;
  }
  auto forward = [&](Tape* tape, bool backward) {
    Var xv = tape->Constant(x);
    Var h = tape->Mul(xv, tape->Leaf(w));     // (3x4) * (1x4)
    h = tape->Mul(h, tape->Leaf(s));          // (3x4) * (1x1)
    Var m = tape->MeanRows(h);                // 1x4
    Var loss = tape->DotRows(m, tape->Leaf(w));
    if (backward) tape->Backward(loss);
    return loss.value().at(0, 0);
  };
  GradCheck(&store, forward);
}

TEST(AutogradTest, GradCheckSigmoidSubSumRows) {
  ParameterStore store;
  Rng rng(9);
  Param* w = store.Create("w", 2, 3, &rng);
  Matrix x(2, 2);
  x.at(0, 0) = 0.5;
  x.at(1, 1) = -0.25;
  auto forward = [&](Tape* tape, bool backward) {
    Var h = tape->MatMul(tape->Constant(x), tape->Leaf(w));
    Var s = tape->Sigmoid(h);
    Var r = tape->Relu(tape->Sub(s, tape->Constant(Matrix(2, 3, 0.4))));
    Var loss = tape->SumAll(tape->SumRows(r));
    if (backward) tape->Backward(loss);
    return loss.value().at(0, 0);
  };
  GradCheck(&store, forward);
}

TEST(AutogradTest, LogSoftmaxIsNormalized) {
  Tape tape;
  Matrix logits(1, 4);
  logits.at(0, 0) = 5.0;
  logits.at(0, 3) = -2.0;
  Var lp = tape.LogSoftmaxRow(tape.Constant(logits));
  double sum = 0.0;
  for (int c = 0; c < 4; ++c) sum += std::exp(lp.value().at(0, c));
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(AutogradTest, BackwardAccumulatesIntoParams) {
  ParameterStore store;
  Rng rng(10);
  Param* w = store.Create("w", 1, 1, &rng);
  w->value.at(0, 0) = 2.0;
  store.ZeroGrads();
  for (int i = 0; i < 3; ++i) {
    Tape tape;
    Var loss = tape.Mul(tape.Leaf(w), tape.Leaf(w));  // w^2, d/dw = 2w = 4
    tape.Backward(loss);
  }
  EXPECT_NEAR(w->grad.at(0, 0), 12.0, 1e-12);  // 3 accumulated backward passes
}

TEST(LayersTest, MlpShapesAndDeterminism) {
  ParameterStore store;
  Rng rng(11);
  Mlp mlp(&store, "mlp", {4, 8, 3}, &rng);
  Matrix x(2, 4, 0.5);
  Tape t1, t2;
  Var o1 = mlp.Forward(&t1, t1.Constant(x));
  Var o2 = mlp.Forward(&t2, t2.Constant(x));
  EXPECT_EQ(o1.rows(), 2);
  EXPECT_EQ(o1.cols(), 3);
  for (int c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(o1.value().at(0, c), o2.value().at(0, c));
  }
}

TEST(OptimizerTest, SgdMinimizesQuadratic) {
  ParameterStore store;
  Rng rng(12);
  Param* w = store.Create("w", 1, 1, &rng);
  w->value.at(0, 0) = 5.0;
  Sgd sgd(0.1);
  for (int i = 0; i < 200; ++i) {
    store.ZeroGrads();
    Tape tape;
    Var wv = tape.Leaf(w);
    Var loss = tape.Mul(tape.AddConst(wv, -3.0), tape.AddConst(wv, -3.0));
    tape.Backward(loss);
    sgd.Step(&store);
  }
  EXPECT_NEAR(w->value.at(0, 0), 3.0, 1e-4);
}

TEST(OptimizerTest, AdamMinimizesQuadratic) {
  ParameterStore store;
  Rng rng(13);
  Param* w = store.Create("w", 1, 2, &rng);
  w->value.at(0, 0) = 4.0;
  w->value.at(0, 1) = -4.0;
  Adam adam(0.05);
  for (int i = 0; i < 800; ++i) {
    store.ZeroGrads();
    Tape tape;
    Var wv = tape.Leaf(w);
    Var loss = tape.SumAll(tape.Mul(wv, wv));
    tape.Backward(loss);
    adam.Step(&store);
  }
  EXPECT_NEAR(w->value.at(0, 0), 0.0, 1e-2);
  EXPECT_NEAR(w->value.at(0, 1), 0.0, 1e-2);
}

TEST(OptimizerTest, FrozenParamsAreNotUpdated) {
  ParameterStore store;
  Rng rng(14);
  Param* w = store.Create("frozen/w", 1, 1, &rng);
  const double before = w->value.at(0, 0);
  EXPECT_EQ(store.SetTrainableByPrefix("frozen", false), 1);
  Adam adam(0.1);
  store.ZeroGrads();
  Tape tape;
  Var loss = tape.Mul(tape.Leaf(w), tape.Leaf(w));
  tape.Backward(loss);
  adam.Step(&store);
  EXPECT_DOUBLE_EQ(w->value.at(0, 0), before);
  // Gradient still accumulated (needed for upstream layers).
  EXPECT_NE(w->grad.at(0, 0), 0.0);
}

TEST(ParamsTest, GradClipBoundsNorm) {
  ParameterStore store;
  Param* w = store.CreateZero("w", 1, 2);
  w->grad.at(0, 0) = 30.0;
  w->grad.at(0, 1) = 40.0;  // norm 50
  store.ClipGradNorm(5.0);
  EXPECT_NEAR(store.GradNorm(), 5.0, 1e-9);
  EXPECT_NEAR(w->grad.at(0, 0), 3.0, 1e-9);
}

TEST(ParamsTest, SerializeDeserializeRoundTrip) {
  Rng rng(15);
  ParameterStore a;
  a.Create("x/w", 2, 3, &rng);
  a.Create("y/w", 1, 4, &rng);
  BinaryWriter writer;
  a.Serialize(&writer);

  ParameterStore b;
  Rng rng2(999);
  b.Create("x/w", 2, 3, &rng2);
  b.Create("y/w", 1, 4, &rng2);
  BinaryReader reader(writer.buffer());
  ASSERT_TRUE(b.Deserialize(&reader).ok());
  EXPECT_EQ(b.Find("x/w")->value.raw(), a.Find("x/w")->value.raw());
}

TEST(ParamsTest, DeserializeShapeMismatchFails) {
  Rng rng(16);
  ParameterStore a;
  a.Create("w", 2, 3, &rng);
  BinaryWriter writer;
  a.Serialize(&writer);
  ParameterStore b;
  b.Create("w", 3, 3, &rng);
  BinaryReader reader(writer.buffer());
  EXPECT_FALSE(b.Deserialize(&reader).ok());
}

TEST(ParamsTest, CopyValuesFromMatchesByNameAndShape) {
  Rng rng(17);
  ParameterStore a, b;
  a.Create("shared", 2, 2, &rng);
  a.Create("only_a", 1, 1, &rng);
  b.Create("shared", 2, 2, &rng);
  b.Create("only_b", 1, 1, &rng);
  EXPECT_EQ(b.CopyValuesFrom(a), 1);
  EXPECT_EQ(b.Find("shared")->value.raw(), a.Find("shared")->value.raw());
}

}  // namespace
}  // namespace lsched

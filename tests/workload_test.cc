#include <gtest/gtest.h>

#include <set>

#include "workload/benchmarks.h"
#include "workload/templates.h"
#include "workload/workload.h"

namespace lsched {
namespace {

TEST(BenchmarksTest, TemplateCountsMatchPaper) {
  EXPECT_EQ(NumTemplatesOf(Benchmark::kTpch), 22);
  EXPECT_EQ(NumTemplatesOf(Benchmark::kSsb), 13);
  EXPECT_EQ(NumTemplatesOf(Benchmark::kJob), 113);
  EXPECT_EQ(TemplatesOf(Benchmark::kTpch).size(), 22u);
  EXPECT_EQ(TemplatesOf(Benchmark::kSsb).size(), 13u);
  EXPECT_EQ(TemplatesOf(Benchmark::kJob).size(), 113u);
}

TEST(BenchmarksTest, ScaleFactorsMatchPaper) {
  EXPECT_EQ(ScaleFactorsOf(Benchmark::kTpch),
            (std::vector<int>{2, 5, 10, 50, 100}));
  EXPECT_EQ(ScaleFactorsOf(Benchmark::kSsb), (std::vector<int>{2, 5, 10, 50}));
  EXPECT_EQ(ScaleFactorsOf(Benchmark::kJob), (std::vector<int>{1}));
}

TEST(BenchmarksTest, TableRowsScale) {
  const auto& tables = TablesOf(Benchmark::kTpch);
  EXPECT_EQ(tables[0].name, "lineitem");
  EXPECT_EQ(tables[0].RowsAt(10), 10 * tables[0].RowsAt(1));
  // JOB tables are fixed-size.
  const auto& job = TablesOf(Benchmark::kJob);
  EXPECT_EQ(job[0].RowsAt(1), job[0].RowsAt(50));
}

/// Every template of every benchmark must instantiate to a valid plan at
/// every scale factor (parameterized sweep).
class TemplateValidity
    : public ::testing::TestWithParam<std::tuple<Benchmark, int>> {};

TEST_P(TemplateValidity, AllTemplatesBuildValidPlans) {
  const auto [bench, sf] = GetParam();
  Rng rng(99);
  const auto specs = TemplatesOf(bench);
  for (size_t i = 0; i < specs.size(); ++i) {
    auto plan = InstantiateTemplate(bench, specs[i], sf, &rng);
    ASSERT_TRUE(plan.ok())
        << BenchmarkName(bench) << " template " << i << ": "
        << plan.status().ToString();
    EXPECT_TRUE(plan->Validate().ok());
    EXPECT_GE(plan->num_nodes(), 1u);
    for (const PlanNode& n : plan->nodes()) {
      EXPECT_GT(n.num_work_orders, 0);
      EXPECT_GT(n.est_cost_per_wo, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, TemplateValidity,
    ::testing::Values(std::make_tuple(Benchmark::kTpch, 2),
                      std::make_tuple(Benchmark::kTpch, 100),
                      std::make_tuple(Benchmark::kSsb, 2),
                      std::make_tuple(Benchmark::kSsb, 50),
                      std::make_tuple(Benchmark::kJob, 1)));

TEST(TemplatesTest, JobTemplatesAreJoinHeavy) {
  const auto specs = TemplatesOf(Benchmark::kJob);
  int max_joins = 0;
  int total = 0;
  for (const TemplateSpec& s : specs) {
    max_joins = std::max(max_joins, static_cast<int>(s.joins.size()));
    total += static_cast<int>(s.joins.size());
    EXPECT_GE(s.joins.size(), 4u);
    EXPECT_LE(s.joins.size(), 17u);
  }
  EXPECT_GT(max_joins, 10);  // "some queries have more than 10 joins"
  EXPECT_GT(total / static_cast<int>(specs.size()), 4);
}

TEST(TemplatesTest, InstantiationVariesWithRng) {
  Rng rng(7);
  auto a = InstantiateTemplate(Benchmark::kTpch, 2, 10, &rng);
  auto b = InstantiateTemplate(Benchmark::kTpch, 2, 10, &rng);
  ASSERT_TRUE(a.ok() && b.ok());
  // Same shape, different sampled selectivities -> different row estimates.
  EXPECT_EQ(a->num_nodes(), b->num_nodes());
  bool any_diff = false;
  for (size_t i = 0; i < a->num_nodes(); ++i) {
    any_diff |= a->node(static_cast<int>(i)).est_output_rows !=
                b->node(static_cast<int>(i)).est_output_rows;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TemplatesTest, ScaleFactorGrowsWork) {
  Rng r1(3), r2(3);
  auto small = InstantiateTemplate(Benchmark::kTpch, 0, 2, &r1);
  auto large = InstantiateTemplate(Benchmark::kTpch, 0, 100, &r2);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(large->TotalEstimatedCost(), small->TotalEstimatedCost() * 10);
}

TEST(WorkloadTest, TrainTestSplitsAreDisjointAndCoverAll) {
  WorkloadConfig train_cfg, test_cfg;
  train_cfg.benchmark = test_cfg.benchmark = Benchmark::kTpch;
  train_cfg.split = WorkloadSplit::kTrain;
  test_cfg.split = WorkloadSplit::kTest;
  std::set<int> train, test;
  for (const auto& [tmpl, sf] : TemplatePool(train_cfg)) train.insert(tmpl);
  for (const auto& [tmpl, sf] : TemplatePool(test_cfg)) test.insert(tmpl);
  EXPECT_EQ(train.size(), 11u);
  EXPECT_EQ(test.size(), 11u);
  for (int t : train) EXPECT_EQ(test.count(t), 0u);
}

TEST(WorkloadTest, PoolSizeMatchesPaper) {
  // Paper §7.1: "a total of 55 queries, from all scale factors" for TPCH
  // training (11 templates x 5 scale factors).
  WorkloadConfig cfg;
  cfg.benchmark = Benchmark::kTpch;
  cfg.split = WorkloadSplit::kTrain;
  EXPECT_EQ(TemplatePool(cfg).size(), 55u);
}

TEST(WorkloadTest, StreamingArrivalsIncrease) {
  WorkloadConfig cfg;
  cfg.benchmark = Benchmark::kSsb;
  cfg.num_queries = 20;
  cfg.mean_interarrival_seconds = 0.1;
  Rng rng(55);
  const auto workload = GenerateWorkload(cfg, &rng);
  ASSERT_EQ(workload.size(), 20u);
  for (size_t i = 1; i < workload.size(); ++i) {
    EXPECT_GT(workload[i].arrival_time, workload[i - 1].arrival_time);
  }
}

TEST(WorkloadTest, BatchArrivalsAtZero) {
  WorkloadConfig cfg;
  cfg.benchmark = Benchmark::kJob;
  cfg.num_queries = 10;
  cfg.batch = true;
  Rng rng(56);
  const auto workload = GenerateWorkload(cfg, &rng);
  for (const QuerySubmission& q : workload) {
    EXPECT_DOUBLE_EQ(q.arrival_time, 0.0);
  }
}

TEST(WorkloadTest, EpisodeFactoryVariesSizes) {
  auto factory = MakeEpisodeFactory(Benchmark::kTpch, 5, 15, 0.05, 0.2, {2});
  Rng rng(57);
  std::set<size_t> sizes;
  for (int ep = 0; ep < 10; ++ep) {
    const auto w = factory(ep, &rng);
    EXPECT_GE(w.size(), 5u);
    EXPECT_LE(w.size(), 15u);
    sizes.insert(w.size());
  }
  EXPECT_GT(sizes.size(), 2u);
}

TEST(WorkloadTest, EpisodeFactoryAdvancesCallerRngByExactlyOneDraw) {
  // The factory runs every episode off a forked child stream, so the
  // caller's Rng advances by exactly one draw per episode — independent of
  // the episode's size and arrival parameters. Regression: drawing the
  // episode directly from the caller's stream made later episodes depend on
  // how many queries earlier ones happened to contain.
  auto small = MakeEpisodeFactory(Benchmark::kTpch, 5, 5, 0.05, 0.05, {2});
  auto large = MakeEpisodeFactory(Benchmark::kTpch, 14, 15, 0.05, 0.2, {2});

  Rng a(91);
  Rng b(91);
  Rng c(91);
  (void)small(0, &a);
  (void)large(0, &b);
  (void)c.Fork();
  const uint64_t na = a.Next();
  // Same caller state after episodes of very different sizes...
  EXPECT_EQ(na, b.Next());
  // ...which equals exactly one Fork() worth of consumption.
  EXPECT_EQ(na, c.Next());

  // And the second episode is identical whether or not the first episode's
  // parameters differed.
  Rng d(91);
  Rng e(91);
  (void)small(0, &d);
  (void)large(0, &e);
  const auto w_d = small(1, &d);
  const auto w_e = small(1, &e);
  ASSERT_EQ(w_d.size(), w_e.size());
  for (size_t i = 0; i < w_d.size(); ++i) {
    EXPECT_DOUBLE_EQ(w_d[i].arrival_time, w_e[i].arrival_time);
  }
}

}  // namespace
}  // namespace lsched

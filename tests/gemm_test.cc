#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "nn/gemm.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace lsched {
namespace {

Matrix RandomMatrix(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      m.at(i, j) = rng->Uniform() * 2.0 - 1.0;
    }
  }
  return m;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a.data()[i] - b.data()[i]));
  }
  return max_diff;
}

TEST(GemmKindTest, NamesRoundTrip) {
  for (GemmKind kind : {GemmKind::kNaive, GemmKind::kBlocked}) {
    GemmKind parsed;
    ASSERT_TRUE(ParseGemmKind(GemmKindName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  GemmKind parsed;
  EXPECT_FALSE(ParseGemmKind("bogus", &parsed));
}

TEST(GemmBackendTest, ScopedKindRestores) {
  GemmBackend& backend = GemmBackend::Global();
  const GemmKind before = backend.kind();
  {
    ScopedGemmKind scoped(GemmKind::kNaive);
    EXPECT_EQ(backend.kind(), GemmKind::kNaive);
    {
      ScopedGemmKind nested(GemmKind::kBlocked);
      EXPECT_EQ(backend.kind(), GemmKind::kBlocked);
    }
    EXPECT_EQ(backend.kind(), GemmKind::kNaive);
  }
  EXPECT_EQ(backend.kind(), before);
}

/// Blocked and naive kernels accumulate products for each output element in
/// the same k-ascending order, so they agree to tight tolerance on every
/// shape — including ones that are not multiples of the register/panel
/// blocking (4 rows, 128-deep k panels).
TEST(GemmEquivalenceTest, BlockedMatchesNaiveAcrossShapes) {
  Rng rng(1234);
  const int shapes[][3] = {
      {1, 1, 1},    {1, 8, 1},    {1, 300, 7},   // single-row serving GEMMs
      {2, 3, 5},    {4, 4, 4},    {5, 128, 9},   // exact k-panel boundary
      {4, 129, 4},  {3, 127, 3},                 // straddling the k panel
      {8, 64, 32},  {9, 65, 33},  {16, 256, 16}, // multi-panel, odd remainders
      {37, 41, 43},                              // all-prime stress shape
  };
  for (const auto& s : shapes) {
    const Matrix a = RandomMatrix(s[0], s[1], &rng);
    const Matrix b = RandomMatrix(s[1], s[2], &rng);
    Matrix naive(s[0], s[2]), blocked(s[0], s[2]);
    MatMulNaiveInto(a, b, &naive);
    MatMulBlockedInto(a, b, &blocked);
    EXPECT_LE(MaxAbsDiff(naive, blocked), 1e-12)
        << "shape " << s[0] << "x" << s[1] << "x" << s[2];
  }
}

/// The naive kernel skips zero entries of A; with no zeros both kernels add
/// exactly the same doubles in the same order, so the results are
/// bit-identical (not merely close).
TEST(GemmEquivalenceTest, BitIdenticalOnDenseInputs) {
  Rng rng(77);
  const Matrix a = RandomMatrix(9, 131, &rng);  // no exact zeros from Uniform
  const Matrix b = RandomMatrix(131, 17, &rng);
  Matrix naive(9, 17), blocked(9, 17);
  MatMulNaiveInto(a, b, &naive);
  MatMulBlockedInto(a, b, &blocked);
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(naive.data()[i], blocked.data()[i]) << "element " << i;
  }
}

TEST(GemmEquivalenceTest, SparseInputsStayWithinTolerance) {
  Rng rng(99);
  Matrix a = RandomMatrix(6, 96, &rng);
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      if (rng.Uniform() < 0.5) a.at(i, j) = 0.0;  // exercise the skip path
    }
  }
  const Matrix b = RandomMatrix(96, 11, &rng);
  Matrix naive(6, 11), blocked(6, 11);
  MatMulNaiveInto(a, b, &naive);
  MatMulBlockedInto(a, b, &blocked);
  EXPECT_LE(MaxAbsDiff(naive, blocked), 1e-9);
}

TEST(GemmBackendTest, BackendRoutesToSelectedKernel) {
  Rng rng(5);
  const Matrix a = RandomMatrix(4, 32, &rng);
  const Matrix b = RandomMatrix(32, 4, &rng);
  Matrix expected(4, 4);
  MatMulNaiveInto(a, b, &expected);

  for (GemmKind kind : {GemmKind::kNaive, GemmKind::kBlocked}) {
    ScopedGemmKind scoped(kind);
    const Matrix via_backend = GemmBackend::Global().MatMul(a, b);
    EXPECT_LE(MaxAbsDiff(expected, via_backend), 1e-12)
        << GemmKindName(kind);
    Matrix into(4, 4);
    GemmBackend::Global().MatMulInto(a, b, &into);
    EXPECT_LE(MaxAbsDiff(expected, into), 1e-12) << GemmKindName(kind);
  }
}

TEST(GemmEquivalenceTest, MatchesMatrixMatMulReference) {
  Rng rng(31);
  const Matrix a = RandomMatrix(7, 23, &rng);
  const Matrix b = RandomMatrix(23, 9, &rng);
  const Matrix reference = Matrix::MatMul(a, b);
  Matrix blocked(7, 9);
  MatMulBlockedInto(a, b, &blocked);
  EXPECT_LE(MaxAbsDiff(reference, blocked), 1e-12);
}

/// Matrix row storage is 64-byte aligned so the blocked kernel's contiguous
/// row accesses stay on cache-line boundaries.
TEST(MatrixAlignmentTest, StorageIs64ByteAligned) {
  for (int n : {1, 3, 64, 1000}) {
    Matrix m(n, n);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.data()) % 64, 0u) << "n=" << n;
  }
}

}  // namespace
}  // namespace lsched

#include <gtest/gtest.h>

#include "sched/decima.h"
#include "sched/heuristics.h"
#include "sched/selftune.h"
#include "workload/workload.h"

namespace lsched {
namespace {

std::vector<QuerySubmission> TestWorkload(int n, uint64_t seed,
                                          bool batch = false) {
  WorkloadConfig cfg;
  cfg.benchmark = Benchmark::kSsb;
  cfg.num_queries = n;
  cfg.scale_factors = {2, 5};
  cfg.batch = batch;
  cfg.mean_interarrival_seconds = 0.05;
  Rng rng(seed);
  return GenerateWorkload(cfg, &rng);
}

SimEngine MakeEngine(int threads = 8) {
  SimEngineConfig cfg;
  cfg.num_threads = threads;
  return SimEngine(cfg);
}

/// All heuristic schedulers must complete every query (parameterized).
class HeuristicCompletion : public ::testing::TestWithParam<int> {};

TEST_P(HeuristicCompletion, CompletesWorkload) {
  std::unique_ptr<Scheduler> sched;
  switch (GetParam()) {
    case 0:
      sched = std::make_unique<FifoScheduler>();
      break;
    case 1:
      sched = std::make_unique<FairScheduler>();
      break;
    case 2:
      sched = std::make_unique<SjfScheduler>();
      break;
    case 3:
      sched = std::make_unique<HpfScheduler>();
      break;
    case 4:
      sched = std::make_unique<CriticalPathScheduler>();
      break;
    case 5:
      sched = std::make_unique<QuickstepScheduler>();
      break;
    case 6:
      sched = std::make_unique<SelfTuneScheduler>();
      break;
  }
  SimEngine engine = MakeEngine();
  const EpisodeResult r = engine.Run(TestWorkload(8, 11), sched.get());
  EXPECT_EQ(r.query_latencies.size(), 8u) << sched->name();
  for (double lat : r.query_latencies) EXPECT_GT(lat, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllHeuristics, HeuristicCompletion,
                         ::testing::Range(0, 7));

TEST(HeuristicsTest, FifoStallsLaterQueries) {
  // Under FIFO with batch arrivals, the last-finishing query waits for all
  // earlier ones: its latency is close to the makespan.
  SimEngine engine = MakeEngine(4);
  FifoScheduler fifo;
  const EpisodeResult r = engine.Run(TestWorkload(6, 13, true), &fifo);
  double max_latency = 0.0;
  for (double lat : r.query_latencies) max_latency = std::max(max_latency, lat);
  EXPECT_GT(max_latency, 0.8 * r.makespan);
}

TEST(HeuristicsTest, FairBeatsFifoUnderHeadOfLineBlocking) {
  // FIFO is the paper's worst baseline because it stalls short queries
  // behind long ones (§7.2). Streaming arrivals + mixed scale factors make
  // that head-of-line blocking visible.
  WorkloadConfig cfg;
  cfg.benchmark = Benchmark::kSsb;
  cfg.num_queries = 12;
  cfg.scale_factors = {2, 50};
  cfg.mean_interarrival_seconds = 0.05;
  Rng rng(17);
  const auto workload = GenerateWorkload(cfg, &rng);
  // Enough threads that a single head query cannot fill the pool during its
  // narrow stages — the regime the paper evaluates (60 threads).
  SimEngine engine = MakeEngine(16);
  FifoScheduler fifo;
  FairScheduler fair;
  const EpisodeResult rf = engine.Run(workload, &fifo);
  const EpisodeResult ra = engine.Run(workload, &fair);
  EXPECT_LT(ra.avg_latency, rf.avg_latency);
}

TEST(HeuristicsTest, CriticalPathSchedulesHeaviestPipeline) {
  SimEngine engine = MakeEngine(4);
  CriticalPathScheduler cp;
  const EpisodeResult r = engine.Run(TestWorkload(4, 19), &cp);
  EXPECT_EQ(r.query_latencies.size(), 4u);
  EXPECT_GT(r.num_actions, 0);
}

TEST(SelfTuneTest, TunerNeverWorseThanDefault) {
  SimEngine engine = MakeEngine(6);
  std::vector<std::vector<QuerySubmission>> training = {TestWorkload(6, 23),
                                                        TestWorkload(6, 29)};
  Rng rng(31);
  const SelfTuneResult result = TuneSelfTune(&engine, training, 6, &rng);
  ASSERT_EQ(result.latency_per_iteration.size(), 6u);
  // Iteration 0 evaluates the defaults; the best found must be <= that.
  EXPECT_LE(result.best_avg_latency, result.latency_per_iteration[0] + 1e-9);
}

TEST(DecimaTest, FeaturesAreBlackBoxAndNoPipelining) {
  auto workload = TestWorkload(1, 37);
  QueryState q(0, workload[0].plan, 0.0);
  SystemState state;
  state.queries = {&q};
  state.threads.resize(4);
  const DecimaStateFeatures f = DecimaScheduler::ExtractFeatures(state);
  ASSERT_EQ(f.queries.size(), 1u);
  EXPECT_EQ(f.queries[0].node_features[0].size(),
            static_cast<size_t>(DecimaModel::kNodeFeatureDim));
  // Decima's runnable set (all parents complete) is a subset of LSched's
  // schedulable set (which allows streaming consumers).
  q.set_op_scheduled(0, true);
  const DecimaStateFeatures f2 = DecimaScheduler::ExtractFeatures(state);
  const auto lsched_ops = q.SchedulableOps();
  EXPECT_LE(f2.candidates.size() + 1, lsched_ops.size() + 1);
  for (const auto& [qi, op] : f2.candidates) {
    bool all_parents_done = true;
    for (int e : q.plan().node(op).in_edges) {
      all_parents_done &= q.op_completed(q.plan().edge(e).producer);
    }
    EXPECT_TRUE(all_parents_done);
  }
}

TEST(DecimaTest, SchedulerCompletesWorkload) {
  DecimaModel model(DecimaConfig{});
  DecimaScheduler decima(&model);
  SimEngine engine = MakeEngine();
  const EpisodeResult r = engine.Run(TestWorkload(6, 41), &decima);
  EXPECT_EQ(r.query_latencies.size(), 6u);
}

TEST(DecimaTest, DecisionsAreDegreeOne) {
  DecimaModel model(DecimaConfig{});
  DecimaScheduler decima(&model);
  auto workload = TestWorkload(1, 43);
  QueryState q(0, workload[0].plan, 0.0);
  SystemState state;
  state.queries = {&q};
  state.threads.resize(4);
  for (int i = 0; i < 4; ++i) state.threads[static_cast<size_t>(i)].id = i;
  SchedulingEvent event;
  const SchedulingDecision d = decima.Schedule(event, state);
  ASSERT_EQ(d.pipelines.size(), 1u);
  EXPECT_EQ(d.pipelines[0].degree, 1);
}

TEST(DecimaTest, TrainerRunsAndUpdatesParams) {
  DecimaModel model(DecimaConfig{});
  SimEngineConfig ecfg;
  ecfg.num_threads = 4;
  SimEngine engine(ecfg);
  DecimaTrainer trainer(&model, &engine, 2, 1e-2);
  const AlignedVector before =
      model.params()->Find("decima/node_head/l1/w")->value.raw();
  auto factory = MakeEpisodeFactory(Benchmark::kSsb, 4, 6, 0.05, 0.1, {2});
  const DecimaTrainStats stats = trainer.Train(factory);
  EXPECT_EQ(stats.episode_avg_latency.size(), 2u);
  EXPECT_NE(before, model.params()->Find("decima/node_head/l1/w")->value.raw());
}

}  // namespace
}  // namespace lsched

#include <gtest/gtest.h>

#include <memory>

#include "exec/real_engine.h"
#include "plan/plan_builder.h"
#include "sched/heuristics.h"
#include "testing/fuzzer.h"
#include "testing/invariants.h"
#include "testing/oracle.h"

namespace lsched {
namespace {

/// Runs `workload` against `catalog` under FIFO with the given engine
/// config and asserts the sink results equal the oracle's.
void ExpectMatchesOracle(const Catalog& catalog,
                         const std::vector<RealQuerySubmission>& workload,
                         RealEngineConfig config) {
  OracleExecutor oracle(&catalog);
  FifoScheduler policy;
  ValidatingScheduler validating(&policy);
  RealEngine engine(&catalog, config);
  RealRunResult run = engine.Run(workload, &validating);
  ASSERT_EQ(run.sink_row_counts.size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    Result<OracleQueryResult> expected = oracle.Execute(workload[i].plan);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    EXPECT_EQ(run.sink_row_counts[i], expected->sink_rows) << "query " << i;
    EXPECT_NEAR(run.sink_checksums[i], expected->sink_checksum,
                1e-6 + 1e-9 * std::abs(expected->sink_checksum))
        << "query " << i;
  }
  EXPECT_TRUE(validating.violations().empty())
      << validating.violations().front();
  Status episode_ok = ValidateEpisodeResult(run.episode, workload.size(),
                                            config.num_threads);
  EXPECT_TRUE(episode_ok.ok()) << episode_ok.ToString();
}

TEST(RealEngineEdgeTest, SingleThreadMatchesOracle) {
  WorkloadFuzzer fuzzer(11);
  FuzzedWorkload w = fuzzer.NextWorkload();
  RealEngineConfig config;
  config.num_threads = 1;
  config.chunk_rows = 128;
  ExpectMatchesOracle(*w.catalog, w.real_queries, config);
}

TEST(RealEngineEdgeTest, OneRowChunksMatchOracle) {
  // chunk_rows=1 maximizes work-order counts and interleavings: every
  // intermediate row becomes its own work order.
  WorkloadFuzzer fuzzer(12, {.min_rows = 20, .max_rows = 60});
  FuzzedWorkload w = fuzzer.NextWorkload();
  RealEngineConfig config;
  config.num_threads = 4;
  config.chunk_rows = 1;
  ExpectMatchesOracle(*w.catalog, w.real_queries, config);
}

TEST(RealEngineEdgeTest, EmptyWorkloadCompletes) {
  WorkloadFuzzer fuzzer(13);
  std::unique_ptr<Catalog> catalog = fuzzer.FuzzCatalog();
  FifoScheduler policy;
  RealEngine engine(catalog.get(), {});
  RealRunResult run = engine.Run({}, &policy);
  EXPECT_TRUE(run.sink_row_counts.empty());
  EXPECT_TRUE(run.episode.query_latencies.empty());
  EXPECT_EQ(run.episode.num_work_orders_dispatched, 0);
  EXPECT_EQ(run.episode.avg_latency, 0.0);
}

TEST(RealEngineEdgeTest, SingleOperatorPlanMatchesOracle) {
  WorkloadFuzzer fuzzer(14);
  std::unique_ptr<Catalog> catalog = fuzzer.FuzzCatalog();
  PlanBuilder b(catalog.get());
  b.AddSource(OperatorType::kTableScan, 0, {});
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());
  std::vector<RealQuerySubmission> workload;
  workload.push_back({std::move(plan).value(), 0.0});

  RealEngineConfig config;
  config.num_threads = 2;
  ExpectMatchesOracle(*catalog, workload, config);

  // The scan of t0 must emit exactly the base table.
  OracleExecutor oracle(catalog.get());
  Result<OracleQueryResult> r = oracle.Execute(workload[0].plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->sink_rows, catalog->relation(0).num_rows());
}

TEST(RealEngineEdgeTest, EdgeConfigsAgreeWithEachOther) {
  // Same workload under wildly different execution configs: all runs must
  // agree on sink results (transitively, via the oracle).
  WorkloadFuzzer fuzzer(15, {.min_rows = 30, .max_rows = 90});
  FuzzedWorkload w = fuzzer.NextWorkload();
  for (RealEngineConfig config :
       {RealEngineConfig{.num_threads = 1, .chunk_rows = 1},
        RealEngineConfig{.num_threads = 8, .chunk_rows = 7},
        RealEngineConfig{.num_threads = 2, .chunk_rows = 4096}}) {
    ExpectMatchesOracle(*w.catalog, w.real_queries, config);
  }
}

}  // namespace
}  // namespace lsched

#include <gtest/gtest.h>

#include "exec/real_engine.h"
#include "plan/plan_builder.h"
#include "sched/heuristics.h"
#include "storage/table_generator.h"

namespace lsched {
namespace {

constexpr int64_t kDimRows = 1500;
constexpr int64_t kFactRows = 6000;

/// dim(k sequential unique, w uniform); fact(fk -> dim.k, val uniform).
std::unique_ptr<Catalog> MakeCatalog(uint64_t seed = 3) {
  auto catalog = std::make_unique<Catalog>();
  Rng rng(seed);
  TableSpec dim;
  dim.name = "dim";
  dim.num_rows = kDimRows;
  dim.block_capacity = 256;
  dim.columns = {
      {"k", DataType::kInt64, ColumnDistribution::kSequential, 0, 0, 0},
      {"w", DataType::kDouble, ColumnDistribution::kUniformReal, 0, 1, 0}};
  TableSpec fact;
  fact.name = "fact";
  fact.num_rows = kFactRows;
  fact.block_capacity = 256;
  fact.columns = {
      {"fk", DataType::kInt64, ColumnDistribution::kForeignKey, 0,
       static_cast<double>(kDimRows), 0},
      {"val", DataType::kDouble, ColumnDistribution::kUniformReal, 0, 1, 0}};
  EXPECT_TRUE(catalog->AddRelation(GenerateTable(dim, &rng)).ok());
  EXPECT_TRUE(catalog->AddRelation(GenerateTable(fact, &rng)).ok());
  return catalog;
}

/// Rows of `rel` passing lo <= col <= hi.
int64_t CountFiltered(const Relation& rel, int col, double lo, double hi) {
  int64_t count = 0;
  for (size_t b = 0; b < rel.num_blocks(); ++b) {
    const Block& block = rel.block(b);
    for (size_t r = 0; r < block.num_rows(); ++r) {
      const double v = block.ValueAsDouble(static_cast<size_t>(col), r);
      if (v >= lo && v <= hi) ++count;
    }
  }
  return count;
}

/// select(fact, val in [lo,hi]) joined with dim on fk == k, then COUNT(*).
QueryPlan JoinCountPlan(const Catalog& catalog, double lo, double hi) {
  PlanBuilder b(&catalog);
  const RelationId dim_id = *catalog.FindRelation("dim");
  const RelationId fact_id = *catalog.FindRelation("fact");

  PlanBuilder::NodeOptions dim_opts;
  dim_opts.selectivity = 1.0;
  const int dim_scan = b.AddSource(OperatorType::kTableScan, dim_id, dim_opts);

  PlanBuilder::NodeOptions build_opts;
  build_opts.kernel.build_key = 0;  // dim.k
  const int build = b.AddOp(OperatorType::kBuildHash, {dim_scan}, build_opts);

  PlanBuilder::NodeOptions fact_opts;
  fact_opts.selectivity = (hi - lo);
  fact_opts.kernel.filter_column = 1;  // fact.val
  fact_opts.kernel.filter_lo = lo;
  fact_opts.kernel.filter_hi = hi;
  const int fact_scan =
      b.AddSource(OperatorType::kSelect, fact_id, fact_opts);

  PlanBuilder::NodeOptions probe_opts;
  probe_opts.selectivity = 1.0;
  probe_opts.kernel.probe_key = 0;  // fact.fk within the probe stream
  const int probe =
      b.AddOp(OperatorType::kProbeHash, {fact_scan, build}, probe_opts);

  PlanBuilder::NodeOptions agg_opts;
  agg_opts.kernel.agg_fn = AggFn::kCount;
  agg_opts.kernel.group_by_column = -1;
  agg_opts.kernel.agg_column = 1;
  b.AddOp(OperatorType::kHashAggregate, {probe}, agg_opts);
  auto plan = b.Build();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

TEST(RealEngineTest, HashJoinCountMatchesReference) {
  auto catalog = MakeCatalog();
  const double lo = 0.2, hi = 0.7;
  // Each fact fk matches exactly one dim row (k is a sequential unique key),
  // so the join count equals the number of filter-passing fact rows.
  const int64_t expected = CountFiltered(
      catalog->relation(*catalog->FindRelation("fact")), 1, lo, hi);

  RealEngineConfig cfg;
  cfg.num_threads = 4;
  cfg.chunk_rows = 256;
  RealEngine engine(catalog.get(), cfg);
  std::vector<RealQuerySubmission> workload;
  workload.push_back({JoinCountPlan(*catalog, lo, hi), 0.0});
  FifoScheduler fifo;
  const RealRunResult result = engine.Run(workload, &fifo);

  ASSERT_EQ(result.episode.query_latencies.size(), 1u);
  ASSERT_EQ(result.sink_row_counts.size(), 1u);
  EXPECT_EQ(result.sink_row_counts[0], 1);  // one scalar aggregate row
  // The aggregate checksum = group(0) + count.
  EXPECT_DOUBLE_EQ(result.sink_checksums[0], static_cast<double>(expected));
}

TEST(RealEngineTest, ConcurrentQueriesAllComplete) {
  auto catalog = MakeCatalog();
  RealEngineConfig cfg;
  cfg.num_threads = 4;
  cfg.chunk_rows = 256;
  RealEngine engine(catalog.get(), cfg);
  std::vector<RealQuerySubmission> workload;
  for (int i = 0; i < 4; ++i) {
    workload.push_back(
        {JoinCountPlan(*catalog, 0.1 * i, 0.1 * i + 0.4), 0.0});
  }
  FairScheduler fair;
  const RealRunResult result = engine.Run(workload, &fair);
  EXPECT_EQ(result.episode.query_latencies.size(), 4u);
  const Relation& fact =
      catalog->relation(*catalog->FindRelation("fact"));
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(
        result.sink_checksums[static_cast<size_t>(i)],
        static_cast<double>(
            CountFiltered(fact, 1, 0.1 * i, 0.1 * i + 0.4)))
        << "query " << i;
  }
}

TEST(RealEngineTest, PipelinedSelectChainMatchesSequential) {
  auto catalog = MakeCatalog();
  const RelationId fact_id = *catalog->FindRelation("fact");
  // select(val >= 0.3) -> select(val <= 0.8): chain of two filters.
  PlanBuilder b(catalog.get());
  PlanBuilder::NodeOptions s1;
  s1.kernel.filter_column = 1;
  s1.kernel.filter_lo = 0.3;
  s1.kernel.filter_hi = 1.0;
  const int scan = b.AddSource(OperatorType::kSelect, fact_id, s1);
  PlanBuilder::NodeOptions s2;
  s2.kernel.filter_column = 1;
  s2.kernel.filter_lo = 0.0;
  s2.kernel.filter_hi = 0.8;
  b.AddOp(OperatorType::kSelect, {scan}, s2);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());

  const int64_t expected = CountFiltered(
      catalog->relation(fact_id), 1, 0.3, 0.8);

  // CriticalPath pipelines the whole chain onto single work orders.
  RealEngineConfig cfg;
  cfg.num_threads = 2;
  cfg.chunk_rows = 256;
  RealEngine engine(catalog.get(), cfg);
  std::vector<RealQuerySubmission> workload;
  workload.push_back({*plan, 0.0});
  CriticalPathScheduler cp;
  const RealRunResult result = engine.Run(workload, &cp);
  EXPECT_EQ(result.sink_row_counts[0], expected);
}

TEST(RealEngineTest, TopKReturnsLargestValues) {
  auto catalog = MakeCatalog();
  const RelationId fact_id = *catalog->FindRelation("fact");
  PlanBuilder b(catalog.get());
  PlanBuilder::NodeOptions scan_opts;
  const int scan = b.AddSource(OperatorType::kTableScan, fact_id, scan_opts);
  PlanBuilder::NodeOptions topk_opts;
  topk_opts.kernel.limit = 5;
  topk_opts.kernel.sort_column = 1;
  b.AddOp(OperatorType::kTopK, {scan}, topk_opts);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());

  RealEngineConfig cfg;
  cfg.num_threads = 2;
  cfg.chunk_rows = 256;
  RealEngine engine(catalog.get(), cfg);
  std::vector<RealQuerySubmission> workload;
  workload.push_back({*plan, 0.0});
  FifoScheduler fifo;
  const RealRunResult result = engine.Run(workload, &fifo);
  EXPECT_EQ(result.sink_row_counts[0], 5);

  // Reference: 5 largest values of fact.val.
  const Relation& fact = catalog->relation(fact_id);
  std::vector<double> vals;
  for (size_t blk = 0; blk < fact.num_blocks(); ++blk) {
    const Block& block = fact.block(blk);
    for (double v : block.DoubleColumn(1)) vals.push_back(v);
  }
  std::sort(vals.rbegin(), vals.rend());
  double expected_sum = 0.0;
  for (int i = 0; i < 5; ++i) expected_sum += vals[static_cast<size_t>(i)];
  // checksum = sum over rows of (fk + val); compare val parts via total.
  // TopK keeps whole rows, so just verify the val column dominates order:
  // recompute full checksum from reference rows is awkward; instead ensure
  // engine checksum is finite and > expected_sum (fk >= 0 adds on top).
  EXPECT_GE(result.sink_checksums[0], expected_sum);
}

TEST(RealEngineTest, SortProducesOrderedOutput) {
  auto catalog = MakeCatalog();
  const RelationId dim_id = *catalog->FindRelation("dim");
  PlanBuilder b(catalog.get());
  const int scan = b.AddSource(OperatorType::kTableScan, dim_id, {});
  PlanBuilder::NodeOptions sort_opts;
  sort_opts.kernel.sort_column = 1;
  const int runs = b.AddOp(OperatorType::kSortRuns, {scan}, sort_opts);
  PlanBuilder::NodeOptions merge_opts;
  merge_opts.kernel.sort_column = 1;
  b.AddOp(OperatorType::kMergeSortedRuns, {runs}, merge_opts);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());

  RealEngineConfig cfg;
  cfg.num_threads = 3;
  cfg.chunk_rows = 256;
  RealEngine engine(catalog.get(), cfg);
  std::vector<RealQuerySubmission> workload;
  workload.push_back({*plan, 0.0});
  QuickstepScheduler qs;
  const RealRunResult result = engine.Run(workload, &qs);
  EXPECT_EQ(result.sink_row_counts[0], kDimRows);
}

}  // namespace
}  // namespace lsched

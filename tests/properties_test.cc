// Property-style parameterized tests: invariants that must hold across
// benchmarks, schedulers, seeds, and engine configurations.
#include <gtest/gtest.h>

#include <cmath>

#include "core/online.h"
#include "core/reward.h"
#include "exec/sim_engine.h"
#include "sched/heuristics.h"
#include "workload/workload.h"

namespace lsched {
namespace {

// ---------------------------------------------------------------------------
// Workload invariants across (benchmark, split, seed).
class WorkloadProperties
    : public ::testing::TestWithParam<std::tuple<Benchmark, int>> {};

TEST_P(WorkloadProperties, GeneratedPlansHaveConsistentEdgeInvariants) {
  const auto [bench, seed] = GetParam();
  WorkloadConfig cfg;
  cfg.benchmark = bench;
  cfg.num_queries = 12;
  Rng rng(static_cast<uint64_t>(seed));
  for (const QuerySubmission& sub : GenerateWorkload(cfg, &rng)) {
    const QueryPlan& plan = sub.plan;
    ASSERT_TRUE(plan.Validate().ok());
    for (const PlanEdge& e : plan.edges()) {
      // Edge breaking status must agree with the producer's trait unless
      // the builder overrode it (templates never override).
      EXPECT_EQ(e.pipeline_breaking,
                !ProducesIncrementally(plan.node(e.producer).type));
    }
    // Every non-source node is reachable from a source (lineage non-empty).
    for (const PlanNode& n : plan.nodes()) {
      EXPECT_FALSE(n.base_inputs.empty())
          << OperatorTypeName(n.type) << " without base lineage";
    }
    // Pipelines bounded by plan size.
    for (const PlanNode& n : plan.nodes()) {
      EXPECT_LE(plan.LongestPipelineFrom(n.id).size(), plan.num_nodes());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadProperties,
    ::testing::Combine(::testing::Values(Benchmark::kTpch, Benchmark::kSsb,
                                         Benchmark::kJob),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// Engine conservation laws across schedulers and seeds.
class EngineProperties : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(EngineProperties, EveryQueryCompletesExactlyOnceAndOnTime) {
  const auto [sched_kind, seed] = GetParam();
  std::unique_ptr<Scheduler> sched;
  switch (sched_kind) {
    case 0:
      sched = std::make_unique<FairScheduler>();
      break;
    case 1:
      sched = std::make_unique<SjfScheduler>();
      break;
    case 2:
      sched = std::make_unique<CriticalPathScheduler>();
      break;
    default:
      sched = std::make_unique<QuickstepScheduler>();
      break;
  }
  WorkloadConfig cfg;
  cfg.benchmark = Benchmark::kSsb;
  cfg.num_queries = 10;
  cfg.scale_factors = {2, 5};
  Rng rng(static_cast<uint64_t>(1000 + seed));
  const auto workload = GenerateWorkload(cfg, &rng);

  SimEngineConfig ecfg;
  ecfg.num_threads = 8;
  ecfg.seed = static_cast<uint64_t>(seed);
  SimEngine engine(ecfg);
  const EpisodeResult r = engine.Run(workload, sched.get());

  // Conservation: one latency per submitted query, all positive; makespan
  // bounds every latency + arrival; monotone decision log.
  ASSERT_EQ(r.query_latencies.size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_GT(r.query_latencies[i], 0.0);
  }
  double max_completion = 0.0;
  for (size_t i = 0; i < r.query_latencies.size(); ++i) {
    max_completion = std::max(max_completion, r.query_latencies[i]);
  }
  EXPECT_LE(max_completion, r.makespan + 1e-9);
  EXPECT_GE(r.p90_latency, 0.0);
  EXPECT_LE(r.p90_latency,
            *std::max_element(r.query_latencies.begin(),
                              r.query_latencies.end()) +
                1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineProperties,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Values(1, 2)));

// ---------------------------------------------------------------------------
// Reward identities.
TEST(RewardProperties, AvgOnlyRewardSumsToNegativeIntegralOfQueueSize) {
  // With w_tail = 0, sum of rewards == -sum H_d == -(integral of #running
  // over time sampled at decisions + terminal interval).
  std::vector<Experience> eps(4);
  const double times[] = {0.5, 1.0, 2.0, 2.5};
  const int running[] = {1, 3, 2, 4};
  double expected = 0.0;
  double prev = 0.0;
  for (int i = 0; i < 4; ++i) {
    eps[static_cast<size_t>(i)].time = times[i];
    eps[static_cast<size_t>(i)].num_running_queries = running[i];
    expected += (times[i] - prev) * running[i];
    prev = times[i];
  }
  const double end = 3.25;
  expected += (end - prev) * running[3];
  RewardConfig cfg;
  cfg.w_avg = 1.0;
  cfg.w_tail = 0.0;
  const std::vector<double> r = ComputeRewards(eps, cfg, end);
  double total = 0.0;
  for (double x : r) total += x;
  EXPECT_NEAR(total, -expected, 1e-12);
}

TEST(RewardProperties, TailTermOnlyPenalizes) {
  // Adding tail weight can only make each reward weakly smaller in
  // magnitude-or-equal... precisely: r(w_tail) >= pure-average reward,
  // since the one-sided tail penalty is 0 for below-percentile decisions
  // and the mixture halves the average weight.
  std::vector<Experience> eps(5);
  Rng rng(3);
  double t = 0.0;
  for (auto& e : eps) {
    t += rng.Exponential(0.5);
    e.time = t;
    e.num_running_queries = 1 + static_cast<int>(rng.UniformInt(uint64_t{4}));
  }
  RewardConfig avg_only;
  avg_only.w_avg = 1.0;
  avg_only.w_tail = 0.0;
  RewardConfig mixed;
  const auto r_avg = ComputeRewards(eps, avg_only, t + 1.0);
  const auto r_mix = ComputeRewards(eps, mixed, t + 1.0);
  for (size_t i = 0; i < eps.size(); ++i) {
    EXPECT_LE(r_mix[i], 1e-12);      // rewards are penalties
    EXPECT_GE(r_mix[i], r_avg[i]);   // tail-mix never doubles the penalty
  }
}

// ---------------------------------------------------------------------------
// Dynamic thread pool events.
TEST(ThreadPoolProperties, GrowingThePoolSpeedsUpTheBatch) {
  WorkloadConfig cfg;
  cfg.benchmark = Benchmark::kSsb;
  cfg.num_queries = 8;
  cfg.scale_factors = {5};
  cfg.batch = true;
  Rng rng(9);
  const auto workload = GenerateWorkload(cfg, &rng);

  SimEngineConfig base;
  base.num_threads = 4;
  SimEngineConfig grown = base;
  grown.thread_events = {{0.2, +8}};
  SimEngine e1(base), e2(grown);
  FairScheduler f1, f2;
  const EpisodeResult r_small = e1.Run(workload, &f1);
  const EpisodeResult r_grown = e2.Run(workload, &f2);
  EXPECT_EQ(r_grown.query_latencies.size(), workload.size());
  EXPECT_LT(r_grown.makespan, r_small.makespan);
}

TEST(ThreadPoolProperties, ShrinkingThePoolStillCompletesEverything) {
  WorkloadConfig cfg;
  cfg.benchmark = Benchmark::kSsb;
  cfg.num_queries = 6;
  cfg.scale_factors = {2};
  cfg.batch = true;
  Rng rng(10);
  const auto workload = GenerateWorkload(cfg, &rng);

  SimEngineConfig shrunk;
  shrunk.num_threads = 8;
  shrunk.thread_events = {{0.05, -6}};
  SimEngine engine(shrunk);
  QuickstepScheduler sched;
  const EpisodeResult r = engine.Run(workload, &sched);
  EXPECT_EQ(r.query_latencies.size(), workload.size());
  // With only 2 threads surviving, it must still be slower than an
  // untouched 8-thread pool.
  SimEngineConfig full;
  full.num_threads = 8;
  SimEngine engine_full(full);
  QuickstepScheduler sched2;
  const EpisodeResult r_full = engine_full.Run(workload, &sched2);
  EXPECT_GT(r.makespan, r_full.makespan);
}

// ---------------------------------------------------------------------------
// Online self-correction.
TEST(OnlineProperties, OnlineAgentUpdatesWhileServing) {
  LSchedConfig mcfg;
  mcfg.hidden_dim = 8;
  mcfg.summary_dim = 8;
  mcfg.head_hidden = 8;
  LSchedModel model(mcfg);
  const AlignedVector before =
      model.params()->Find("head/root/l1/w")->value.raw();

  OnlineConfig ocfg;
  ocfg.update_every_queries = 2;
  OnlineLSched online(&model, ocfg);

  WorkloadConfig cfg;
  cfg.benchmark = Benchmark::kSsb;
  cfg.num_queries = 8;
  cfg.scale_factors = {2};
  Rng rng(11);
  SimEngineConfig ecfg;
  ecfg.num_threads = 6;
  SimEngine engine(ecfg);
  const EpisodeResult r = engine.Run(GenerateWorkload(cfg, &rng), &online);
  EXPECT_EQ(r.query_latencies.size(), 8u);
  EXPECT_GE(online.num_updates(), 2);
  EXPECT_NE(before, model.params()->Find("head/root/l1/w")->value.raw());
}

}  // namespace
}  // namespace lsched

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/sim_engine.h"
#include "obs/decision_log.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sched/heuristics.h"
#include "testing/fuzzer.h"

namespace lsched {
namespace {

// The whole suite only makes sense with the layer compiled in; with
// -DLSCHED_OBS=OFF the stubs are exercised (they must still link and
// return inert values), which the last test covers.

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough to validate the Chrome trace_event
// output (objects, arrays, strings with escapes, numbers, literals).
// ---------------------------------------------------------------------------

struct JsonParser {
  const std::string& s;
  size_t pos = 0;
  bool ok = true;

  explicit JsonParser(const std::string& text) : s(text) {}

  void SkipWs() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\n' ||
                              s[pos] == '\t' || s[pos] == '\r')) {
      ++pos;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    ok = false;
    return false;
  }
  bool ParseString() {
    SkipWs();
    if (pos >= s.size() || s[pos] != '"') return ok = false;
    ++pos;
    while (pos < s.size() && s[pos] != '"') {
      if (s[pos] == '\\') {
        ++pos;
        if (pos >= s.size()) return ok = false;
      }
      ++pos;
    }
    if (pos >= s.size()) return ok = false;
    ++pos;  // closing quote
    return true;
  }
  bool ParseNumber() {
    SkipWs();
    const size_t start = pos;
    if (pos < s.size() && (s[pos] == '-' || s[pos] == '+')) ++pos;
    while (pos < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[pos])) || s[pos] == '.' ||
            s[pos] == 'e' || s[pos] == 'E' || s[pos] == '-' || s[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return ok = false;
    return true;
  }
  bool ParseValue() {
    SkipWs();
    if (pos >= s.size()) return ok = false;
    const char c = s[pos];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (s.compare(pos, 4, "true") == 0) {
      pos += 4;
      return true;
    }
    if (s.compare(pos, 5, "false") == 0) {
      pos += 5;
      return true;
    }
    if (s.compare(pos, 4, "null") == 0) {
      pos += 4;
      return true;
    }
    return ParseNumber();
  }
  bool ParseObject() {
    if (!Consume('{')) return false;
    SkipWs();
    if (pos < s.size() && s[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      if (!ParseString()) return false;
      if (!Consume(':')) return false;
      if (!ParseValue()) return false;
      SkipWs();
      if (pos < s.size() && s[pos] == ',') {
        ++pos;
        continue;
      }
      return Consume('}');
    }
  }
  bool ParseArray() {
    if (!Consume('[')) return false;
    SkipWs();
    if (pos < s.size() && s[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!ParseValue()) return false;
      SkipWs();
      if (pos < s.size() && s[pos] == ',') {
        ++pos;
        continue;
      }
      return Consume(']');
    }
  }
  /// Full-document parse: one value, then nothing but whitespace.
  bool ParseDocument() {
    if (!ParseValue()) return false;
    SkipWs();
    if (pos != s.size()) ok = false;
    return ok;
  }
};

int CountOccurrences(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

#if LSCHED_OBS_ENABLED

TEST(HistogramTest, BucketBoundariesAreHalfOpen) {
  // Bucket 0 is [0, 1e-9); bucket i >= 1 is [1e-9*2^(i-1), 1e-9*2^i).
  EXPECT_EQ(obs::Histogram::BucketFor(0.0), 0u);
  EXPECT_EQ(obs::Histogram::BucketFor(-1.0), 0u);
  EXPECT_EQ(obs::Histogram::BucketFor(0.5e-9), 0u);
  EXPECT_EQ(obs::Histogram::BucketFor(1e-9), 1u);

  // Every exact boundary must land in the bucket it opens, and the value
  // just below it in the previous bucket.
  for (size_t b = 1; b < 63; ++b) {
    const double lower = obs::HistogramSnapshot::LowerBound(b);
    const double upper = obs::HistogramSnapshot::UpperBound(b);
    EXPECT_EQ(obs::Histogram::BucketFor(lower), b) << "lower of " << b;
    EXPECT_EQ(obs::Histogram::BucketFor(std::nextafter(upper, 0.0)), b)
        << "just below upper of " << b;
    EXPECT_EQ(obs::Histogram::BucketFor(upper), b + 1) << "upper of " << b;
    const double mid = lower + (upper - lower) / 2.0;
    EXPECT_EQ(obs::Histogram::BucketFor(mid), b) << "mid of " << b;
  }

  // Overflow clamps into the last bucket; NaN goes to bucket 0.
  EXPECT_EQ(obs::Histogram::BucketFor(1e300), 63u);
  EXPECT_EQ(obs::Histogram::BucketFor(std::nan("")), 0u);
}

TEST(HistogramTest, ObserveSnapshotAndPercentile) {
  obs::Histogram h("test.histogram");
  // 100 observations at ~1ms, 100 at ~4ms.
  for (int i = 0; i < 100; ++i) h.Observe(1e-3);
  for (int i = 0; i < 100; ++i) h.Observe(4e-3);
  obs::HistogramSnapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 200u);
  EXPECT_NEAR(snap.sum, 0.5, 1e-9);
  EXPECT_NEAR(snap.Mean(), 2.5e-3, 1e-9);
  // p25 must sit in the 1ms bucket, p90 in the 4ms bucket.
  const double p25 = snap.Percentile(25.0);
  const double p90 = snap.Percentile(90.0);
  const size_t b1 = obs::Histogram::BucketFor(1e-3);
  const size_t b4 = obs::Histogram::BucketFor(4e-3);
  EXPECT_GE(p25, obs::HistogramSnapshot::LowerBound(b1));
  EXPECT_LT(p25, obs::HistogramSnapshot::UpperBound(b1));
  EXPECT_GE(p90, obs::HistogramSnapshot::LowerBound(b4));
  EXPECT_LT(p90, obs::HistogramSnapshot::UpperBound(b4));
  // p0 degrades to the lower bound of the first occupied bucket.
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0),
                   obs::HistogramSnapshot::LowerBound(b1));

  h.Reset();
  EXPECT_EQ(h.TakeSnapshot().count, 0u);
}

TEST(HistogramTest, SnapshotMergeAddsBucketwise) {
  obs::Histogram a("test.merge_a");
  obs::Histogram b("test.merge_b");
  a.Observe(1e-6);
  a.Observe(1e-3);
  b.Observe(1e-3);
  b.Observe(1.0);
  obs::HistogramSnapshot sa = a.TakeSnapshot();
  sa.Merge(b.TakeSnapshot());
  EXPECT_EQ(sa.count, 4u);
  EXPECT_NEAR(sa.sum, 1e-6 + 2e-3 + 1.0, 1e-12);
  EXPECT_EQ(sa.bucket_counts[obs::Histogram::BucketFor(1e-3)], 2u);
  EXPECT_EQ(sa.bucket_counts[obs::Histogram::BucketFor(1.0)], 1u);
}

TEST(HistogramTest, MergeSnapshotPublishesBatchedObservations) {
  obs::Histogram h("test.merge_snapshot");
  obs::HistogramSnapshot local;
  for (int i = 0; i < 10; ++i) {
    const size_t b = obs::Histogram::BucketFor(2e-3);
    if (b >= local.bucket_counts.size()) local.bucket_counts.resize(b + 1, 0);
    ++local.bucket_counts[b];
    ++local.count;
    local.sum += 2e-3;
  }
  h.MergeSnapshot(local);
  h.Observe(2e-3);  // direct path still composes with the batched one
  obs::HistogramSnapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 11u);
  EXPECT_NEAR(snap.sum, 11 * 2e-3, 1e-12);
  EXPECT_EQ(snap.bucket_counts[obs::Histogram::BucketFor(2e-3)], 11u);
}

// ---------------------------------------------------------------------------
// Counters / gauges / registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameReturnsSamePointer) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* c1 = reg.GetCounter("test.registry_counter");
  obs::Counter* c2 = reg.GetCounter("test.registry_counter");
  EXPECT_EQ(c1, c2);
  c1->Reset();
  c1->Add(3);
  c2->Add(4);
  EXPECT_EQ(c1->Value(), 7);

  obs::Gauge* g = reg.GetGauge("test.registry_gauge");
  g->Reset();
  g->Add(2.5);
  g->Sub(1.0);
  EXPECT_NEAR(g->Value(), 1.5, 1e-12);
  g->Set(42.0);
  EXPECT_NEAR(g->Value(), 42.0, 1e-12);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("test.snap_a")->Add(1);
  reg.GetCounter("test.snap_b")->Add(2);
  auto snap = reg.TakeSnapshot();
  ASSERT_GE(snap.counters.size(), 2u);
  for (size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LE(snap.counters[i - 1].first, snap.counters[i].first);
  }
}

TEST(MetricsRegistryTest, EightThreadHammer) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter* counter = reg.GetCounter("test.hammer_counter");
  obs::Gauge* gauge = reg.GetGauge("test.hammer_gauge");
  obs::Histogram* hist = reg.GetHistogram("test.hammer_histogram");
  counter->Reset();
  gauge->Reset();
  hist->Reset();

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter->Add(1);
        gauge->Add(1.0);
        hist->Observe(1e-6 * static_cast<double>(1 + ((t + i) % 7)));
        // Re-resolving by name concurrently must also be safe.
        if (i % 1000 == 0) {
          reg.GetCounter("test.hammer_counter")->Add(0);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kOpsPerThread);
  EXPECT_NEAR(gauge->Value(), double(kThreads) * kOpsPerThread, 1e-6);
  EXPECT_EQ(hist->TakeSnapshot().count, uint64_t{kThreads} * kOpsPerThread);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(TracerTest, RingWraparoundKeepsNewestEvents) {
  auto& tracer = obs::Tracer::Global();
  const size_t old_cap = tracer.capacity();
  tracer.SetCapacityForTest(8);
  // A fresh thread leases a fresh (capacity-8) ring; record 20 events.
  std::thread recorder([&]() {
    for (int i = 0; i < 20; ++i) {
      obs::TraceEvent e;
      e.name = "wrap.event";
      e.category = "test";
      e.ts_us = static_cast<double>(i);
      e.dur_us = 1.0;
      e.tid = 777;
      tracer.RecordSpan(e);
    }
  });
  recorder.join();
  tracer.SetCapacityForTest(old_cap);

  std::ostringstream out;
  tracer.ExportChromeTrace(out);
  const std::string json = out.str();
  // Only the newest 8 survive: ts 12..19.
  EXPECT_EQ(CountOccurrences(json, "wrap.event"), 8);
  EXPECT_EQ(json.find("\"ts\":11"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":12"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":19"), std::string::npos);
  EXPECT_GE(tracer.dropped_events(), 12u);
  tracer.Clear();
}

TEST(TracerTest, BatchRecordCountsUpstreamDrops) {
  auto& tracer = obs::Tracer::Global();
  tracer.Clear();
  const size_t old_cap = tracer.capacity();
  tracer.SetCapacityForTest(4);
  std::thread recorder([&]() {
    std::vector<obs::TraceEvent> batch(6);
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].name = "batch.event";
      batch[i].category = "test";
      batch[i].ts_us = static_cast<double>(100 + i);
    }
    // The recorder saw 10 events but only buffered the newest 6.
    tracer.RecordSpans(batch.data(), batch.size(), /*total=*/10);
  });
  recorder.join();
  tracer.SetCapacityForTest(old_cap);

  std::ostringstream out;
  tracer.ExportChromeTrace(out);
  const std::string json = out.str();
  // Ring capacity 4 < batch 6: the newest 4 survive.
  EXPECT_EQ(CountOccurrences(json, "batch.event"), 4);
  EXPECT_NE(json.find("\"ts\":105"), std::string::npos);
  EXPECT_EQ(json.find("\"ts\":101"), std::string::npos);
  // All 6 non-surviving of the 10 total are accounted as dropped.
  EXPECT_EQ(tracer.dropped_events(), 6u);
  tracer.Clear();
}

TEST(TracerTest, ChromeTraceJsonParsesBack) {
  auto& tracer = obs::Tracer::Global();
  tracer.Clear();
  obs::TraceEvent e;
  e.name = "json \"escaped\"\n";
  e.category = "test\\cat";
  e.ts_us = 12.5;
  e.dur_us = 3.25;
  e.tid = 5;
  e.arg1_name = "query";
  e.arg1 = 42;
  e.arg2_name = "op";
  e.arg2 = -7;
  tracer.RecordSpan(e);
  tracer.RecordInstant("inst", "test", 20.0, 6, "mark", 1);

  std::ostringstream out;
  tracer.ExportChromeTrace(out);
  const std::string json = out.str();

  JsonParser parser(json);
  EXPECT_TRUE(parser.ParseDocument()) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // the span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // the instant
  EXPECT_NE(json.find("json \\\"escaped\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("\"query\":42"), std::string::npos);
  EXPECT_NE(json.find("\"op\":-7"), std::string::npos);
  tracer.Clear();
  EXPECT_EQ(tracer.buffered_events(), 0u);
}

// ---------------------------------------------------------------------------
// Decision log
// ---------------------------------------------------------------------------

TEST(DecisionLogTest, CsvRoundTrip) {
  auto& log = obs::DecisionLog::Global();
  log.Clear();

  obs::DecisionRecord rec;
  rec.time = 1.25;
  rec.engine = "sim";
  rec.event = "QueryArrival";
  rec.policy = "LSched";
  rec.candidates = "0:1;0:2;7:0";
  rec.num_candidates = 3;
  rec.running_queries = 2;
  rec.free_threads = 5;
  rec.chosen_query = 7;
  rec.chosen_root = 0;
  rec.op_type = "HashJoin";
  rec.degree = 4;
  rec.max_threads = 8;
  rec.predicted_score = -0.5;
  rec.schedule_wall_us = 17.5;
  rec.tenant = 3;
  const int64_t id = log.Add(rec);
  ASSERT_GE(id, 0);
  log.AddPipeline(id, 12);
  log.AddRealized(id, 0.75);
  log.AddRealized(id, 0.25);

  obs::DecisionRecord fallback;
  fallback.time = 2.0;
  fallback.engine = "sim";
  fallback.event = "fallback";
  fallback.policy = "LSched";
  fallback.fallback = true;
  log.Add(fallback);

  std::ostringstream out;
  log.WriteCsv(out);
  std::istringstream in(out.str());
  std::vector<obs::DecisionRecord> parsed;
  ASSERT_TRUE(obs::ParseDecisionCsv(in, &parsed)) << out.str();
  ASSERT_EQ(parsed.size(), 2u);

  const obs::DecisionRecord& p = parsed[0];
  EXPECT_EQ(p.id, id);
  EXPECT_DOUBLE_EQ(p.time, 1.25);
  EXPECT_EQ(p.engine, "sim");
  EXPECT_EQ(p.event, "QueryArrival");
  EXPECT_EQ(p.policy, "LSched");
  EXPECT_EQ(p.candidates, "0:1;0:2;7:0");
  EXPECT_EQ(p.num_candidates, 3);
  EXPECT_EQ(p.running_queries, 2);
  EXPECT_EQ(p.free_threads, 5);
  EXPECT_EQ(p.chosen_query, 7);
  EXPECT_EQ(p.chosen_root, 0);
  EXPECT_EQ(p.op_type, "HashJoin");
  EXPECT_EQ(p.degree, 4);
  EXPECT_EQ(p.max_threads, 8);
  EXPECT_EQ(p.num_pipelines, 1);
  EXPECT_EQ(p.planned_work_orders, 12);
  EXPECT_DOUBLE_EQ(p.predicted_score, -0.5);
  EXPECT_DOUBLE_EQ(p.schedule_wall_us, 17.5);
  EXPECT_DOUBLE_EQ(p.realized_seconds, 1.0);
  EXPECT_EQ(p.tenant, 3);
  EXPECT_FALSE(p.fallback);
  EXPECT_TRUE(parsed[1].fallback);
  EXPECT_EQ(parsed[1].tenant, -1);
  EXPECT_TRUE(std::isnan(parsed[1].predicted_score));
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: one decision-log row per scheduler invocation
// ---------------------------------------------------------------------------

TEST(ObsIntegrationTest, OneDecisionRowPerSchedulerInvocation) {
  obs::DecisionLog::Global().Clear();
  obs::Tracer::Global().Clear();

  WorkloadFuzzer fuzzer(2024);
  FuzzedWorkload w = fuzzer.NextWorkload();
  FairScheduler policy;
  SimEngineConfig config;
  config.num_threads = 4;
  SimEngine engine(config);
  EpisodeResult result = engine.Run(w.sim_queries, &policy);

  ASSERT_GT(result.num_scheduler_invocations, 0);
  const auto records = obs::DecisionLog::Global().Snapshot();
  int64_t invocation_rows = 0;
  for (const auto& r : records) {
    if (!r.fallback) ++invocation_rows;
  }
  EXPECT_EQ(invocation_rows, result.num_scheduler_invocations);
  // The run also produced trace events (work orders at minimum).
  EXPECT_GT(obs::Tracer::Global().buffered_events(), 0u);

  std::ostringstream out;
  obs::Tracer::Global().ExportChromeTrace(out);
  const std::string json = out.str();
  JsonParser parser(json);
  EXPECT_TRUE(parser.ParseDocument());
  EXPECT_NE(json.find("engine.work_order"), std::string::npos);

  obs::DecisionLog::Global().Clear();
  obs::Tracer::Global().Clear();
}

TEST(ObsIntegrationTest, DisabledRecordingIsInert) {
  obs::DecisionLog::Global().Clear();
  obs::Tracer::Global().Clear();
  obs::MetricsRegistry::Global().ResetAll();
  obs::SetEnabled(false);

  WorkloadFuzzer fuzzer(99);
  FuzzedWorkload w = fuzzer.NextWorkload();
  FairScheduler policy;
  SimEngineConfig config;
  config.num_threads = 4;
  SimEngine engine(config);
  EpisodeResult result = engine.Run(w.sim_queries, &policy);
  obs::SetEnabled(true);

  // EpisodeResult telemetry is independent of the obs layer...
  EXPECT_GT(result.num_scheduler_invocations, 0);
  // ...but nothing leaked into the global sinks.
  EXPECT_EQ(obs::DecisionLog::Global().size(), 0u);
  EXPECT_EQ(obs::Tracer::Global().buffered_events(), 0u);
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetCounter("sched.invocations")
                ->Value(),
            0);
}

#endif  // LSCHED_OBS_ENABLED

// Compiles in both modes: the stub API must stay source-compatible.
TEST(ObsStubTest, ApiIsUsableRegardlessOfCompileGate) {
  obs::MetricsRegistry::Global().GetCounter("test.stub")->Add(1);
  obs::Tracer::Global().RecordInstant("stub", "test", 0.0, 0);
  LSCHED_TRACE_SPAN("stub.span", "test");
  std::ostringstream out;
  obs::Tracer::Global().ExportChromeTrace(out);
  EXPECT_NE(out.str().find("traceEvents"), std::string::npos);
  SUCCEED();
}

}  // namespace
}  // namespace lsched

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "exec/real_engine.h"
#include "exec/sim_engine.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "sched/heuristics.h"
#include "testing/faultpoint.h"
#include "testing/fuzzer.h"
#include "util/perf_snapshot.h"
#include "util/rng.h"

namespace lsched {
namespace {

using prof::ProfileSample;
using prof::WorkerAccount;
using prof::WorkerState;
using prof::WorkerStateBuckets;

// --- 1. the accountant itself ---------------------------------------------

/// The telescoping invariant is the whole point of the accountant: every
/// nanosecond between Start and Stop is charged to exactly one state, so
/// the buckets sum bit-exactly to the wall time — even when the timestamp
/// stream is slightly out of order (clamping) or transitions are no-ops.
TEST(WorkerAccountTest, TelescopesUnderRandomizedTransitions) {
  Rng rng(20260808);
  for (int round = 0; round < 50; ++round) {
    WorkerAccount acct;
    int64_t now = static_cast<int64_t>(rng.UniformInt(uint64_t{1000000}));
    const int64_t start = now;
    acct.Start(now, WorkerState::kIdle);

    // Mirror the clamping semantics to predict the buckets exactly.
    int64_t expect[prof::kNumWorkerStates] = {0, 0, 0, 0, 0};
    WorkerState cur = WorkerState::kIdle;
    int64_t last = now;
    const int steps = 1 + static_cast<int>(rng.UniformInt(uint64_t{200}));
    for (int i = 0; i < steps; ++i) {
      // ~1 in 8 timestamps goes backwards — the dispatch issued-at case.
      int64_t delta = static_cast<int64_t>(rng.UniformInt(uint64_t{5000}));
      if (rng.UniformInt(uint64_t{8}) == 0) delta = -delta;
      now += delta;
      const WorkerState next = static_cast<WorkerState>(
          rng.UniformInt(uint64_t{prof::kNumWorkerStates}));
      acct.Transition(next, now);
      const int64_t clamped = now > last ? now : last;
      expect[static_cast<int>(cur)] += clamped - last;
      last = clamped;
      cur = next;
    }
    now += static_cast<int64_t>(rng.UniformInt(uint64_t{5000}));
    acct.Stop(now);
    const int64_t clamped = now > last ? now : last;
    expect[static_cast<int>(cur)] += clamped - last;
    last = clamped;

    const WorkerStateBuckets b = acct.Read();
    EXPECT_EQ(b.SumNs(), b.wall_ns) << "round " << round;
    EXPECT_EQ(b.wall_ns, last - start) << "round " << round;
    for (int s = 0; s < prof::kNumWorkerStates; ++s) {
      EXPECT_EQ(b.ns[s], expect[s]) << "round " << round << " state " << s;
    }
  }
}

TEST(WorkerAccountTest, StartResetsAndStopIsFinal) {
  WorkerAccount acct;
  EXPECT_FALSE(acct.started());
  acct.Start(100, WorkerState::kDispatch);
  EXPECT_TRUE(acct.started());
  acct.Transition(WorkerState::kExecuting, 150);
  acct.Stop(250);
  WorkerStateBuckets b = acct.Read();
  EXPECT_EQ(b.ns[static_cast<int>(WorkerState::kDispatch)], 50);
  EXPECT_EQ(b.ns[static_cast<int>(WorkerState::kExecuting)], 100);
  EXPECT_EQ(b.wall_ns, 150);
  // Restarting zeroes every bucket.
  acct.Start(1000, WorkerState::kIdle);
  acct.Stop(1001);
  b = acct.Read();
  EXPECT_EQ(b.SumNs(), 1);
  EXPECT_EQ(b.ns[static_cast<int>(WorkerState::kIdle)], 1);
  EXPECT_EQ(b.wall_ns, 1);
}

TEST(WorkerAccountTest, StateNamesRoundTrip) {
  for (int s = 0; s < prof::kNumWorkerStates; ++s) {
    const WorkerState state = static_cast<WorkerState>(s);
    WorkerState parsed = WorkerState::kDispatch;
    ASSERT_TRUE(prof::ParseWorkerState(prof::WorkerStateName(state), &parsed))
        << prof::WorkerStateName(state);
    EXPECT_EQ(parsed, state);
  }
  WorkerState ignored;
  EXPECT_FALSE(prof::ParseWorkerState("no_such_state", &ignored));
}

// --- 2. engine integration -------------------------------------------------

/// On the simulator the clock is virtual, so the invariant is not merely
/// conservation but bit-exact reproducibility: two identical runs produce
/// identical per-worker buckets.
TEST(ProfilerEngineTest, SimEpisodeTelescopesAndIsDeterministic) {
  WorkloadFuzzer fuzzer(424242);
  const FuzzedWorkload w = fuzzer.NextWorkload();
  auto run_once = [&] {
    SimEngineConfig config;
    config.num_threads = 4;
    SimEngine engine(config);
    SjfScheduler sjf;
    return engine.Run(w.sim_queries, &sjf);
  };
  const EpisodeResult a = run_once();
  const EpisodeResult b = run_once();

  ASSERT_EQ(a.worker_states.size(), 4u);
  for (size_t i = 0; i < a.worker_states.size(); ++i) {
    const WorkerStateBuckets& wb = a.worker_states[i];
    EXPECT_EQ(wb.SumNs(), wb.wall_ns) << "worker " << i;
    EXPECT_GT(wb.wall_ns, 0) << "worker " << i;
  }
  EXPECT_GE(a.sched_overhead_fraction, 0.0);
  EXPECT_LE(a.sched_overhead_fraction, 1.0);

  ASSERT_EQ(b.worker_states.size(), a.worker_states.size());
  for (size_t i = 0; i < a.worker_states.size(); ++i) {
    EXPECT_EQ(a.worker_states[i].wall_ns, b.worker_states[i].wall_ns);
    for (int s = 0; s < prof::kNumWorkerStates; ++s) {
      EXPECT_EQ(a.worker_states[i].ns[s], b.worker_states[i].ns[s])
          << "worker " << i << " state " << s;
    }
  }
}

/// On the real engine the clock is the actual monotonic clock and the
/// workload runs under a chaos script (faults + cancels), yet conservation
/// must still hold exactly: the accountant never loses a nanosecond no
/// matter how ugly the run gets.
TEST(ProfilerEngineTest, RealChaosRunConservesWallTime) {
  FuzzerOptions opts;
  opts.chaos = kFaultsCompiledIn;
  opts.min_queries = 4;
  opts.max_queries = 6;
  WorkloadFuzzer fuzzer(777001, opts);
  const FuzzedWorkload w = fuzzer.NextWorkload();

  if (kFaultsCompiledIn) FaultInjector::Global().Install(w.faults);
  RealEngineConfig cfg;
  cfg.num_threads = 3;
  cfg.cancels = w.cancels;
  RealEngine engine(w.catalog.get(), cfg);
  FifoScheduler fifo;
  const RealRunResult r = engine.Run(w.real_queries, &fifo);
  if (kFaultsCompiledIn) FaultInjector::Global().Clear();

  ASSERT_EQ(r.episode.worker_states.size(), 3u);
  for (size_t i = 0; i < r.episode.worker_states.size(); ++i) {
    const WorkerStateBuckets& wb = r.episode.worker_states[i];
    EXPECT_EQ(wb.SumNs(), wb.wall_ns) << "worker " << i;
    EXPECT_GT(wb.wall_ns, 0) << "worker " << i;
  }
  EXPECT_GE(r.episode.sched_overhead_fraction, 0.0);
  EXPECT_LE(r.episode.sched_overhead_fraction, 1.0);
}

// --- 3. counter tables -----------------------------------------------------

TEST(CounterTablesTest, RenderShowsValuesAndRates) {
  double counter = 10.0;
  prof::CounterTables& tables = prof::CounterTables::Global();
  tables.Register("proftest", "widgets", [&] { return counter; });
  tables.Register("proftest", "ratio", [&] { return 0.5; },
                  /*rated=*/false);
  tables.ResetRates();

  const std::string first = tables.Render();
  EXPECT_NE(first.find("[proftest]"), std::string::npos);
  EXPECT_NE(first.find("widgets"), std::string::npos);
  EXPECT_NE(first.find("ratio"), std::string::npos);
  // First render after ResetRates has no baseline: rate column is "-".
  const size_t row = first.find("widgets");
  const size_t eol = first.find('\n', row);
  EXPECT_NE(first.substr(row, eol - row).find('-'), std::string::npos);

  counter = 110.0;
  const std::string second = tables.Render();
  const size_t row2 = second.find("widgets");
  const size_t eol2 = second.find('\n', row2);
  // Second render has a baseline, so the rated row shows a /s figure.
  EXPECT_NE(second.substr(row2, eol2 - row2).find("/s"), std::string::npos);
}

TEST(CounterTablesTest, ReRegisteringReplacesInsteadOfDuplicating) {
  prof::CounterTables& tables = prof::CounterTables::Global();
  tables.Register("proftest2", "x", [] { return 1.0; });
  tables.Register("proftest2", "x", [] { return 2.0; });
  const std::string text = tables.Render();
  size_t count = 0;
  for (size_t pos = text.find("[proftest2]"); pos != std::string::npos;
       pos = text.find("[proftest2]", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(CounterTablesTest, DefaultTablesRegisterIdempotently) {
  prof::RegisterDefaultCounterTables();
  prof::RegisterDefaultCounterTables();
  const std::string text = prof::CounterTables::Global().Render();
  for (const char* table : {"[sched]", "[encoder]", "[nn]", "[exec]",
                            "[faults]", "[serve]"}) {
    size_t count = 0;
    for (size_t pos = text.find(table); pos != std::string::npos;
         pos = text.find(table, pos + 1)) {
      ++count;
    }
    EXPECT_EQ(count, 1u) << table;
  }
}

// --- 4. profile CSV + summary ---------------------------------------------

std::vector<ProfileSample> SampleFixture() {
  std::vector<ProfileSample> samples;
  for (int i = 0; i < 12; ++i) {
    ProfileSample s;
    s.t_us = 1000 + 10 * i;
    s.engine = i % 2 == 0 ? "real" : "sim";
    s.worker = i % 3;
    s.state = static_cast<WorkerState>(i % prof::kNumWorkerStates);
    samples.push_back(s);
  }
  return samples;
}

TEST(ProfileCsvTest, RoundTripsExactly) {
  const std::vector<ProfileSample> samples = SampleFixture();
  const std::string csv = prof::ProfileSamplesToCsv(samples);
  EXPECT_EQ(csv.rfind("t_us,engine,worker,state\n", 0), 0u);

  std::vector<ProfileSample> parsed;
  ASSERT_TRUE(prof::ParseProfileCsv(csv, &parsed));
  ASSERT_EQ(parsed.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(parsed[i].t_us, samples[i].t_us) << i;
    EXPECT_EQ(parsed[i].engine, samples[i].engine) << i;
    EXPECT_EQ(parsed[i].worker, samples[i].worker) << i;
    EXPECT_EQ(parsed[i].state, samples[i].state) << i;
  }

  std::vector<ProfileSample> bad;
  EXPECT_FALSE(prof::ParseProfileCsv("not,a,profile\n1,2,3\n", &bad));
}

TEST(ProfileCsvTest, SummaryBreaksDownByEngineAndWorker) {
  const std::string summary = prof::RenderProfileSummary(SampleFixture());
  EXPECT_NE(summary.find("real"), std::string::npos);
  EXPECT_NE(summary.find("sim"), std::string::npos);
  EXPECT_NE(summary.find("sample(s)"), std::string::npos);
  // An empty capture renders without crashing.
  EXPECT_FALSE(prof::RenderProfileSummary({}).empty());
}

// --- 5. sampling profiler (OBS builds only) --------------------------------

TEST(SamplingProfilerTest, BoundedRingCapturesRegisteredWorkers) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with -DLSCHED_OBS=OFF";
  prof::SamplingProfiler& profiler = prof::SamplingProfiler::Global();
  ASSERT_FALSE(profiler.running());

  std::vector<WorkerAccount> accounts(3);
  for (size_t i = 0; i < accounts.size(); ++i) {
    accounts[i].Start(0, WorkerState::kExecuting);
  }
  std::vector<const WorkerAccount*> ptrs;
  for (const WorkerAccount& a : accounts) ptrs.push_back(&a);
  const int handle = profiler.RegisterWorkers("proftest", ptrs);

  // Tiny ring at a high rate: the ring must stay bounded and count drops.
  ASSERT_TRUE(profiler.Start(/*hz=*/2000.0, /*capacity=*/16));
  EXPECT_TRUE(profiler.running());
  EXPECT_FALSE(profiler.Start(2000.0, 16));  // already running
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (profiler.dropped() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  profiler.Stop();
  EXPECT_FALSE(profiler.running());

  const std::vector<ProfileSample> samples = profiler.Snapshot();
  EXPECT_LE(samples.size(), 16u);
  EXPECT_FALSE(samples.empty());
  EXPECT_GT(profiler.dropped(), 0);
  for (const ProfileSample& s : samples) {
    EXPECT_EQ(s.engine, "proftest");
    EXPECT_GE(s.worker, 0);
    EXPECT_LT(s.worker, 3);
    EXPECT_EQ(s.state, WorkerState::kExecuting);
  }
  // Oldest-first: timestamps are non-decreasing across the snapshot.
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LE(samples[i - 1].t_us, samples[i].t_us);
  }

  profiler.UnregisterWorkers(handle);
}

// --- 6. perf-trajectory compare logic --------------------------------------

PerfSnapshot BaseSnap() {
  PerfSnapshot s;
  s.name = "t";
  s.machine = "Linux-x86_64";
  s.cores = 8;
  s.Add("p50_us", 100.0);
  s.Add("p99_us", 500.0);
  s.Add("speedup_p50", 2.0);
  return s;
}

TEST(PerfSnapshotTest, RegressionFailsImprovementPasses) {
  const PerfSnapshot base = BaseSnap();
  PerfSnapshot fresh = base;
  fresh.metrics[0].second = 140.0;  // p50 +40% — past the 25% fail bar
  fresh.metrics[1].second = 400.0;  // p99 improved
  CompareOptions opts;
  const CompareResult r = ComparePerfSnapshots(base, fresh, opts);
  EXPECT_EQ(r.fails, 1);
  EXPECT_EQ(CompareExitCode(r, opts), 1);

  PerfSnapshot better = base;
  better.metrics[0].second = 90.0;
  const CompareResult r2 = ComparePerfSnapshots(base, better, opts);
  EXPECT_EQ(r2.fails, 0);
  EXPECT_EQ(r2.warns, 0);
  EXPECT_EQ(CompareExitCode(r2, opts), 0);
}

TEST(PerfSnapshotTest, HigherIsBetterMetricsFlipDirection) {
  const PerfSnapshot base = BaseSnap();
  PerfSnapshot fresh = base;
  fresh.metrics[2].second = 1.0;  // speedup halved: 2.0 -> 1.0 is a regression
  CompareOptions opts;
  const CompareResult r = ComparePerfSnapshots(base, fresh, opts);
  EXPECT_EQ(r.fails, 1);

  PerfSnapshot faster = base;
  faster.metrics[2].second = 4.0;  // speedup doubled: fine
  EXPECT_EQ(ComparePerfSnapshots(base, faster, opts).fails, 0);
}

TEST(PerfSnapshotTest, WarnBandMachineMismatchAndWarnOnly) {
  const PerfSnapshot base = BaseSnap();
  PerfSnapshot fresh = base;
  fresh.metrics[0].second = 115.0;  // +15%: warn band (10%..25%)
  CompareOptions opts;
  CompareResult r = ComparePerfSnapshots(base, fresh, opts);
  EXPECT_EQ(r.fails, 0);
  EXPECT_EQ(r.warns, 1);

  // A hard regression on a different machine downgrades to a warning...
  fresh.metrics[0].second = 200.0;
  fresh.machine = "Linux-aarch64";
  r = ComparePerfSnapshots(base, fresh, opts);
  EXPECT_TRUE(r.machine_mismatch);
  EXPECT_EQ(r.fails, 0);
  EXPECT_EQ(r.warns, 1);
  // ...unless --strict keeps the gate.
  opts.strict = true;
  r = ComparePerfSnapshots(base, fresh, opts);
  EXPECT_EQ(r.fails, 1);
  EXPECT_EQ(CompareExitCode(r, opts), 1);
  // --warn-only always exits 0 regardless.
  opts.warn_only = true;
  EXPECT_EQ(CompareExitCode(r, opts), 0);
}

TEST(PerfSnapshotTest, FailFilterLimitsWhichKeysGate) {
  const PerfSnapshot base = BaseSnap();
  PerfSnapshot fresh = base;
  fresh.metrics[0].second = 200.0;  // p50 doubles
  fresh.metrics[1].second = 1000.0; // p99 doubles
  CompareOptions opts;
  opts.fail_filter = "p50";
  const CompareResult r = ComparePerfSnapshots(base, fresh, opts);
  // Only the p50 key can hard-fail; the p99 blowup is a warning.
  EXPECT_EQ(r.fails, 1);
  EXPECT_EQ(r.warns, 1);
  for (const MetricDelta& d : r.deltas) {
    if (d.key == "p50_us") EXPECT_EQ(d.severity, MetricDelta::kFail);
    if (d.key == "p99_us") EXPECT_EQ(d.severity, MetricDelta::kWarn);
  }
}

TEST(PerfSnapshotTest, NewAndMissingMetricsAreInformational) {
  const PerfSnapshot base = BaseSnap();
  PerfSnapshot fresh = base;
  fresh.metrics.erase(fresh.metrics.begin() + 1);  // p99 gone
  fresh.Add("brand_new", 1.0);
  CompareOptions opts;
  const CompareResult r = ComparePerfSnapshots(base, fresh, opts);
  EXPECT_EQ(r.fails, 0);
  bool saw_missing = false;
  bool saw_new = false;
  for (const MetricDelta& d : r.deltas) {
    if (d.key == "p99_us") {
      EXPECT_EQ(d.severity, MetricDelta::kMissing);
      saw_missing = true;
    }
    if (d.key == "brand_new") {
      EXPECT_EQ(d.severity, MetricDelta::kNew);
      saw_new = true;
    }
  }
  EXPECT_TRUE(saw_missing);
  EXPECT_TRUE(saw_new);
  const std::string rendered = RenderCompare(base, fresh, r);
  EXPECT_NE(rendered.find("gone"), std::string::npos);
  EXPECT_NE(rendered.find("new "), std::string::npos);
}

TEST(PerfSnapshotTest, JsonRoundTripSelfComparesToZero) {
  PerfSnapshot snap = MakePerfSnapshot("roundtrip");
  snap.Add("p50_us", 123.456789012345);
  snap.Add("throughput_per_sec", 9876.5);
  snap.Add("zero_metric", 0.0);
  const std::string json = PerfSnapshotToJson(snap);

  PerfSnapshot parsed;
  ASSERT_TRUE(ParsePerfSnapshot(json, &parsed));
  EXPECT_EQ(parsed.name, snap.name);
  EXPECT_EQ(parsed.git_sha, snap.git_sha);
  EXPECT_EQ(parsed.compiler, snap.compiler);
  EXPECT_EQ(parsed.build_type, snap.build_type);
  EXPECT_EQ(parsed.obs, snap.obs);
  EXPECT_EQ(parsed.faults, snap.faults);
  EXPECT_EQ(parsed.machine, snap.machine);
  EXPECT_EQ(parsed.cores, snap.cores);
  ASSERT_EQ(parsed.metrics.size(), snap.metrics.size());
  for (size_t i = 0; i < snap.metrics.size(); ++i) {
    EXPECT_EQ(parsed.metrics[i].first, snap.metrics[i].first);
    EXPECT_EQ(parsed.metrics[i].second, snap.metrics[i].second) << i;
  }

  CompareOptions opts;
  const CompareResult r = ComparePerfSnapshots(snap, parsed, opts);
  EXPECT_EQ(r.fails, 0);
  EXPECT_EQ(r.warns, 0);
  EXPECT_FALSE(r.machine_mismatch);
  for (const MetricDelta& d : r.deltas) {
    EXPECT_EQ(d.severity, MetricDelta::kOk) << d.key;
    EXPECT_EQ(d.regression, 0.0) << d.key;
  }
  EXPECT_FALSE(ParsePerfSnapshot("{}", &parsed));
}

}  // namespace
}  // namespace lsched

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/sim_engine.h"
#include "obs/metrics.h"
#include "plan/plan_builder.h"
#include "sched/guarded_policy.h"
#include "sched/heuristics.h"
#include "testing/faultpoint.h"
#include "testing/fuzzer.h"
#include "testing/invariants.h"

namespace lsched {
namespace {

Result<QueryPlan> SmallPlan(int64_t rows = 30000) {
  PlanBuilder b(nullptr);
  PlanBuilder::NodeOptions src;
  src.input_rows = rows;
  const int s = b.AddSource(OperatorType::kSelect, 0, src);
  const int agg = b.AddOp(OperatorType::kHashAggregate, {s});
  b.AddOp(OperatorType::kFinalizeAggregate, {agg});
  return b.Build();
}

std::vector<QuerySubmission> SmallWorkload(int n, double gap = 0.01) {
  std::vector<QuerySubmission> out;
  for (int i = 0; i < n; ++i) {
    auto plan = SmallPlan(20000 + 7000 * (i % 3));
    EXPECT_TRUE(plan.ok());
    QuerySubmission sub;
    sub.plan = std::move(plan).value();
    sub.arrival_time = gap * i;
    out.push_back(std::move(sub));
  }
  return out;
}

/// RAII guard: every test leaves the process-global injector disarmed.
struct InjectorCleaner {
  ~InjectorCleaner() { FaultInjector::Global().Clear(); }
};

TEST(FaultInjectorTest, NthHitAndEveryRulesFireDeterministically) {
  InjectorCleaner cleaner;
  FaultSchedule schedule;
  schedule.seed = 17;
  FaultRule nth;
  nth.point = "p";
  nth.nth_hit = 3;
  nth.action = {FaultType::kError, 0.0};
  schedule.rules.push_back(nth);
  FaultRule every;
  every.point = "q";
  every.every = 4;
  every.action = {FaultType::kDelay, 0.5};
  schedule.rules.push_back(every);

  for (int round = 0; round < 2; ++round) {
    FaultInjector::Global().Install(schedule);
    std::vector<FaultType> p_fires, q_fires;
    for (int i = 0; i < 10; ++i) {
      p_fires.push_back(FaultInjector::Global().Check("p", 0, 0.0).type);
      q_fires.push_back(FaultInjector::Global().Check("q", 0, 0.0).type);
    }
    // nth_hit=3: only the 3rd probe fires.
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(p_fires[static_cast<size_t>(i)],
                i == 2 ? FaultType::kError : FaultType::kNone)
          << "round " << round << " probe " << i;
      // every=4: probes 4, 8, ... fire.
      EXPECT_EQ(q_fires[static_cast<size_t>(i)],
                (i + 1) % 4 == 0 ? FaultType::kDelay : FaultType::kNone)
          << "round " << round << " probe " << i;
    }
    EXPECT_EQ(FaultInjector::Global().hits("p"), 10);
    EXPECT_EQ(FaultInjector::Global().fires("p"), 1);
    EXPECT_EQ(FaultInjector::Global().fires("q"), 2);
  }
}

TEST(FaultInjectorTest, ProbabilityRuleReplaysIdentically) {
  InjectorCleaner cleaner;
  FaultSchedule schedule;
  schedule.seed = 99;
  FaultRule rule;
  rule.point = "p";
  rule.probability = 0.3;
  rule.action = {FaultType::kError, 0.0};
  schedule.rules.push_back(rule);

  std::vector<bool> first;
  for (int round = 0; round < 2; ++round) {
    FaultInjector::Global().Install(schedule);
    std::vector<bool> fired;
    for (int i = 0; i < 300; ++i) {
      fired.push_back(
          static_cast<bool>(FaultInjector::Global().Check("p", i, 0.0)));
    }
    if (round == 0) {
      first = fired;
      // Sanity: the rule is genuinely probabilistic at p=0.3 over 300 hits.
      const int64_t fires = FaultInjector::Global().fires("p");
      EXPECT_GT(fires, 0);
      EXPECT_LT(fires, 300);
    } else {
      EXPECT_EQ(first, fired) << "same (seed, schedule) must replay bit-equal";
    }
  }
}

TEST(FaultInjectorTest, QueryScopeWindowAndMaxFiresBound) {
  InjectorCleaner cleaner;
  FaultSchedule schedule;
  schedule.seed = 5;
  FaultRule rule;
  rule.point = "p";
  rule.query = 7;
  rule.probability = 1.0;
  rule.window_start = 1.0;
  rule.window_end = 2.0;
  rule.max_fires = 2;
  rule.action = {FaultType::kStall, 9.0};
  schedule.rules.push_back(rule);
  FaultInjector::Global().Install(schedule);

  // Wrong query / out-of-window probes never fire.
  EXPECT_FALSE(FaultInjector::Global().Check("p", 3, 1.5));
  EXPECT_FALSE(FaultInjector::Global().Check("p", 7, 0.5));
  EXPECT_FALSE(FaultInjector::Global().Check("p", 7, 2.5));
  // In-window probes fire until max_fires is exhausted.
  EXPECT_EQ(FaultInjector::Global().Check("p", 7, 1.1).type, FaultType::kStall);
  EXPECT_DOUBLE_EQ(FaultInjector::Global().Check("p", 7, 1.2).param, 9.0);
  EXPECT_FALSE(FaultInjector::Global().Check("p", 7, 1.3));
  EXPECT_EQ(FaultInjector::Global().total_fires(), 2);
  ASSERT_EQ(FaultInjector::Global().Log().size(), 2u);
  EXPECT_EQ(FaultInjector::Global().Log()[0].point, "p");
  EXPECT_EQ(FaultInjector::Global().Log()[0].query, 7);
}

TEST(FaultInjectorTest, DisarmedMacroReturnsNoFault) {
  FaultInjector::Global().Clear();
  EXPECT_FALSE(FaultInjector::Global().armed());
  const FaultAction a = LSCHED_FAULT("anything", 3, 1.0);
  EXPECT_EQ(a.type, FaultType::kNone);
  EXPECT_FALSE(a);
}

TEST(FaultPointTest, WorkOrderExecFaultFailsQuery) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "built with -DLSCHED_FAULTS=OFF";
  InjectorCleaner cleaner;
  FaultSchedule schedule;
  schedule.seed = 1;
  FaultRule rule;
  rule.point = "work_order_exec";
  rule.query = 0;
  rule.probability = 1.0;
  rule.action = {FaultType::kError, 0.0};
  schedule.rules.push_back(rule);
  FaultInjector::Global().Install(schedule);

  // One thread => one attempt in flight at a time, so the failed/retry
  // counters are exact: wo0 fails, retries once, fails again, query dies.
  SimEngineConfig config;
  config.num_threads = 1;
  config.retry.max_retries = 1;
  SimEngine engine(config);
  FifoScheduler fifo;
  const EpisodeResult r = engine.Run(SmallWorkload(2), &fifo);

  ASSERT_EQ(r.final_statuses.size(), 2u);
  EXPECT_EQ(r.final_statuses[0], QueryStatus::kFailed);
  EXPECT_EQ(r.final_statuses[1], QueryStatus::kDone);
  EXPECT_EQ(r.num_queries_failed, 1);
  EXPECT_GT(FaultInjector::Global().fires("work_order_exec"), 0);
  EXPECT_EQ(r.num_retries, 1);
  EXPECT_EQ(r.num_work_orders_failed, 2);
  EXPECT_TRUE(ValidateEpisodeResult(r, 2, config.num_threads).ok());
}

TEST(FaultPointTest, QueryAdmitFaultRejectsQueryBeforeScheduling) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "built with -DLSCHED_FAULTS=OFF";
  InjectorCleaner cleaner;
  FaultSchedule schedule;
  schedule.seed = 2;
  FaultRule rule;
  rule.point = "query_admit";
  rule.query = 1;
  rule.nth_hit = 1;
  rule.action = {FaultType::kError, 0.0};
  schedule.rules.push_back(rule);
  FaultInjector::Global().Install(schedule);

  SimEngineConfig config;
  config.num_threads = 4;
  SimEngine engine(config);
  FifoScheduler fifo;
  ValidatingScheduler validating(&fifo);
  const EpisodeResult r = engine.Run(SmallWorkload(3), &validating);

  ASSERT_EQ(r.final_statuses.size(), 3u);
  EXPECT_EQ(r.final_statuses[1], QueryStatus::kFailed);
  EXPECT_EQ(r.final_statuses[0], QueryStatus::kDone);
  EXPECT_EQ(r.final_statuses[2], QueryStatus::kDone);
  // The rejected query never entered the scheduling context.
  EXPECT_TRUE(validating.violations().empty());
  EXPECT_EQ(r.query_latencies.size(), 2u);
  EXPECT_TRUE(ValidateEpisodeResult(r, 3, config.num_threads).ok());
}

TEST(FaultPointTest, PolicyDecideFaultTriggersGuardFallback) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "built with -DLSCHED_FAULTS=OFF";
  InjectorCleaner cleaner;
  FaultSchedule schedule;
  schedule.seed = 3;
  FaultRule rule;
  rule.point = "policy_decide";
  rule.probability = 1.0;
  rule.action = {FaultType::kError, 0.0};
  schedule.rules.push_back(rule);
  FaultInjector::Global().Install(schedule);

  SjfScheduler sjf;
  GuardedPolicy guarded(&sjf);
  SimEngineConfig config;
  config.num_threads = 4;
  SimEngine engine(config);
  const EpisodeResult r = engine.Run(SmallWorkload(3), &guarded);

  // Every decision failed by injection, yet FIFO answered them all.
  EXPECT_GT(guarded.fallback_count(), 0);
  EXPECT_TRUE(guarded.sticky());
  ASSERT_EQ(r.final_statuses.size(), 3u);
  for (QueryStatus s : r.final_statuses) EXPECT_EQ(s, QueryStatus::kDone);
  EXPECT_GT(FaultInjector::Global().fires("policy_decide"), 0);
}

TEST(FaultReplayTest, SameSeedAndScheduleYieldIdenticalEpisodes) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "built with -DLSCHED_FAULTS=OFF";
  InjectorCleaner cleaner;
  FuzzerOptions opts;
  opts.chaos = true;
  opts.min_queries = 4;
  opts.max_queries = 6;
  WorkloadFuzzer fuzzer(20250806, opts);
  const FuzzedWorkload w = fuzzer.NextWorkload();
  ASSERT_FALSE(w.expected_statuses.empty());

  EpisodeResult episodes[2];
  for (int rep = 0; rep < 2; ++rep) {
    // Install before each run: resets rule-local RNGs and counters, so the
    // replay sees the exact same firing sequence.
    FaultInjector::Global().Install(w.faults);
    SimEngineConfig config;
    config.num_threads = 4;
    config.cancels = w.cancels;
    SimEngine engine(config);
    FifoScheduler fifo;
    episodes[rep] = engine.Run(w.sim_queries, &fifo);
  }
  EXPECT_EQ(DiffEpisodeResults(episodes[0], episodes[1]), "");
  ASSERT_EQ(episodes[0].final_statuses.size(), w.expected_statuses.size());
  for (size_t i = 0; i < w.expected_statuses.size(); ++i) {
    EXPECT_EQ(episodes[0].final_statuses[i], w.expected_statuses[i])
        << "query " << i;
  }
}

/// The compiled-out guarantee (satellite 1): with -DLSCHED_FAULTS=OFF every
/// LSCHED_FAULT site collapses to a constant, so such a build is
/// byte-identical to a run that never armed the injector. A single process
/// cannot host both build flavours, so the in-process proxy is the disarmed
/// identity: (a) a run after Install+Clear — armed machinery exercised, then
/// disarmed — and (b) a run with an armed schedule whose rules match no
/// probe, must both equal a run that never touched the injector.
TEST(FaultReplayTest, DisarmedRunMatchesNeverArmedRunBitForBit) {
  InjectorCleaner cleaner;
  auto run_once = [] {
    SimEngineConfig config;
    config.num_threads = 4;
    SimEngine engine(config);
    FifoScheduler fifo;
    return engine.Run(SmallWorkload(4), &fifo);
  };

  FaultInjector::Global().Clear();
  const EpisodeResult baseline = run_once();

  // (a) installed, then disarmed before the run.
  FaultSchedule schedule;
  schedule.seed = 11;
  FaultRule rule;
  rule.point = "work_order_exec";
  rule.probability = 1.0;
  rule.action = {FaultType::kError, 0.0};
  schedule.rules.push_back(rule);
  FaultInjector::Global().Install(schedule);
  FaultInjector::Global().Clear();
  const EpisodeResult disarmed = run_once();
  EXPECT_EQ(DiffEpisodeResults(baseline, disarmed), "");

  // (b) armed the whole run, but no rule matches any probed point: the
  // probes hit the injector's slow path and still change nothing.
  FaultSchedule inert;
  inert.seed = 12;
  FaultRule never;
  never.point = "no_such_point";
  never.probability = 1.0;
  inert.rules.push_back(never);
  FaultInjector::Global().Install(inert);
  const EpisodeResult armed_inert = run_once();
  FaultInjector::Global().Clear();
  EXPECT_EQ(DiffEpisodeResults(baseline, armed_inert), "");
  EXPECT_EQ(FaultInjector::Global().total_fires(), 0);
}

/// Acceptance episode (ISSUE): a 1000-query fuzzed chaos run — cancels,
/// always-fail queries, work-order delays, and injected policy failures —
/// must complete with every query terminal, zero invariant violations, and
/// the guard visibly falling back while still emitting valid decisions.
TEST(ChaosAcceptanceTest, ThousandQueryFuzzedEpisodeStaysConsistent) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "built with -DLSCHED_FAULTS=OFF";
  InjectorCleaner cleaner;
  constexpr int kQueries = 1000;
  Rng rng(424242);
  WorkloadFuzzer fuzzer(424242);
  const std::unique_ptr<Catalog> catalog = fuzzer.FuzzCatalog();

  std::vector<QuerySubmission> workload;
  std::vector<QueryStatus> expected(kQueries, QueryStatus::kDone);
  FaultSchedule schedule;
  schedule.seed = 424242;
  SimEngineConfig config;
  config.num_threads = 16;
  double at = 0.0;
  for (int i = 0; i < kQueries; ++i) {
    QuerySubmission sub;
    sub.plan = fuzzer.FuzzPlan(*catalog);
    sub.arrival_time = at;
    at += rng.Exponential(0.02);
    workload.push_back(std::move(sub));

    const double r = rng.Uniform();
    if (r < 0.10) {  // ~10% cancelled, half up-front and half mid-run
      CancelRequest cancel;
      cancel.query = i;
      cancel.time = rng.Uniform() < 0.5 ? 0.0 : at + rng.Uniform(0.0, 2.0);
      config.cancels.push_back(cancel);
      // A mid-run cancel can land after the query already finished or
      // failed; only the t=0 flavour pins the terminal status exactly.
      expected[static_cast<size_t>(i)] =
          cancel.time == 0.0 ? QueryStatus::kCancelled : QueryStatus::kRunning;
    } else if (r < 0.15) {  // ~5% fail every work-order attempt
      FaultRule rule;
      rule.point = "work_order_exec";
      rule.query = i;
      rule.probability = 1.0;
      rule.action = {FaultType::kError, 0.0};
      schedule.rules.push_back(rule);
      expected[static_cast<size_t>(i)] = QueryStatus::kFailed;
    }
  }
  FaultRule stall;  // global timing noise
  stall.point = "work_order_exec";
  stall.probability = 0.05;
  stall.action = {FaultType::kDelay, 0.002};
  schedule.rules.push_back(stall);
  FaultRule decide;  // sporadic policy failures exercise the guard
  decide.point = "policy_decide";
  decide.probability = 0.02;
  decide.action = {FaultType::kError, 0.0};
  schedule.rules.push_back(decide);
  FaultInjector::Global().Install(schedule);

  obs::Counter* fallback_total =
      obs::MetricsRegistry::Global().GetCounter("sched.fallback_total");
  const int64_t fallback_before = fallback_total->Value();

  SjfScheduler sjf;
  GuardedPolicy guarded(&sjf);
  ValidatingScheduler validating(&guarded);
  SimEngine engine(config);
  const EpisodeResult r = engine.Run(workload, &validating);

  EXPECT_TRUE(validating.violations().empty())
      << validating.violations().front();
  const Status ok = ValidateEpisodeResult(r, kQueries, config.num_threads);
  EXPECT_TRUE(ok.ok()) << ok.ToString();
  ASSERT_EQ(r.final_statuses.size(), static_cast<size_t>(kQueries));
  for (int i = 0; i < kQueries; ++i) {
    const QueryStatus got = r.final_statuses[static_cast<size_t>(i)];
    EXPECT_TRUE(IsTerminalStatus(got)) << "query " << i;
    // kRunning marks "any terminal state acceptable" (mid-run cancels).
    if (expected[static_cast<size_t>(i)] != QueryStatus::kRunning) {
      EXPECT_EQ(got, expected[static_cast<size_t>(i)]) << "query " << i;
    }
  }
  EXPECT_GT(guarded.fallback_count(), 0);
  if (obs::Enabled()) {
    EXPECT_GT(fallback_total->Value(), fallback_before);
  }
  EXPECT_GT(FaultInjector::Global().total_fires(), 0);
}

}  // namespace
}  // namespace lsched

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/agent.h"
#include "core/trainer.h"
#include "exec/real_engine.h"
#include "plan/plan_builder.h"
#include "sched/decima.h"
#include "sched/heuristics.h"
#include "sched/selftune.h"
#include "storage/table_generator.h"
#include "workload/workload.h"

namespace lsched {
namespace {

LSchedConfig TinyConfig() {
  LSchedConfig cfg;
  cfg.hidden_dim = 8;
  cfg.summary_dim = 8;
  cfg.head_hidden = 8;
  return cfg;
}

SimEngineConfig TinyEngine() {
  SimEngineConfig cfg;
  cfg.num_threads = 6;
  return cfg;
}

TEST(IntegrationTest, AllSchedulersOnSameWorkloadProduceFiniteResults) {
  SimEngine engine(TinyEngine());
  WorkloadConfig wcfg;
  wcfg.benchmark = Benchmark::kTpch;
  wcfg.num_queries = 8;
  wcfg.scale_factors = {2, 5};
  Rng rng(101);
  const auto workload = GenerateWorkload(wcfg, &rng);

  LSchedModel lsched_model(TinyConfig());
  LSchedAgent lsched(&lsched_model);
  DecimaModel decima_model(DecimaConfig{});
  DecimaScheduler decima(&decima_model);
  FifoScheduler fifo;
  FairScheduler fair;
  SjfScheduler sjf;
  SelfTuneScheduler selftune;
  QuickstepScheduler quickstep;
  CriticalPathScheduler cp;
  std::vector<Scheduler*> all = {&lsched, &decima,    &fifo, &fair,
                                 &sjf,    &selftune, &quickstep, &cp};
  for (Scheduler* s : all) {
    const EpisodeResult r = engine.Run(workload, s);
    EXPECT_EQ(r.query_latencies.size(), workload.size()) << s->name();
    EXPECT_TRUE(std::isfinite(r.avg_latency)) << s->name();
    EXPECT_GE(r.p90_latency, r.avg_latency * 0.5) << s->name();
  }
}

TEST(IntegrationTest, TrainingImprovesOverRandomInitOnFixedWorkload) {
  // Train briefly on tiny SSB episodes, then compare greedy inference
  // before/after on a held-out workload. With few episodes this is noisy,
  // so only require the trained agent not to be dramatically worse.
  SimEngine engine(TinyEngine());
  WorkloadConfig wcfg;
  wcfg.benchmark = Benchmark::kSsb;
  wcfg.split = WorkloadSplit::kTest;
  wcfg.num_queries = 8;
  wcfg.scale_factors = {2};
  Rng rng(7);
  const auto test_workload = GenerateWorkload(wcfg, &rng);

  LSchedModel model(TinyConfig());
  LSchedAgent before_agent(&model);
  const double before =
      engine.Run(test_workload, &before_agent).avg_latency;

  TrainConfig tcfg;
  tcfg.episodes = 5;
  ReinforceTrainer trainer(&model, &engine, tcfg);
  trainer.Train(MakeEpisodeFactory(Benchmark::kSsb, 4, 8, 0.05, 0.15, {2}));

  LSchedAgent after_agent(&model);
  const double after = engine.Run(test_workload, &after_agent).avg_latency;
  EXPECT_TRUE(std::isfinite(after));
  EXPECT_LT(after, before * 3.0);
}

TEST(IntegrationTest, TransferLearningWorkflow) {
  // Train a source model on SSB, transfer into a fresh model, freeze, and
  // continue training — the §6 workflow end to end.
  SimEngine engine(TinyEngine());
  LSchedModel source(TinyConfig());
  TrainConfig tcfg;
  tcfg.episodes = 2;
  ReinforceTrainer src_trainer(&source, &engine, tcfg);
  src_trainer.Train(MakeEpisodeFactory(Benchmark::kSsb, 4, 6, 0.05, 0.1, {2}));

  LSchedModel target(TinyConfig());
  const int copied = target.params()->CopyValuesFrom(*source.params());
  EXPECT_EQ(copied, static_cast<int>(target.params()->size()));
  const int frozen = target.FreezeForTransfer();
  EXPECT_GT(frozen, 0);

  const AlignedVector frozen_before =
      target.params()->Find("encoder/conv0/w_self")->value.raw();
  ReinforceTrainer tgt_trainer(&target, &engine, tcfg);
  tgt_trainer.Train(
      MakeEpisodeFactory(Benchmark::kTpch, 4, 6, 0.05, 0.1, {2}));
  // Frozen layers unchanged; trainable boundary layers updated.
  EXPECT_EQ(target.params()->Find("encoder/conv0/w_self")->value.raw(),
            frozen_before);
}

TEST(IntegrationTest, ModelCheckpointServesAfterReload) {
  SimEngine engine(TinyEngine());
  LSchedModel model(TinyConfig());
  TrainConfig tcfg;
  tcfg.episodes = 2;
  ReinforceTrainer trainer(&model, &engine, tcfg);
  trainer.Train(MakeEpisodeFactory(Benchmark::kSsb, 3, 5, 0.05, 0.1, {2}));
  const std::string path = "/tmp/lsched_integration_ckpt.bin";
  ASSERT_TRUE(model.Save(path).ok());

  LSchedModel reloaded(TinyConfig());
  ASSERT_TRUE(reloaded.Load(path).ok());
  std::remove(path.c_str());

  WorkloadConfig wcfg;
  wcfg.benchmark = Benchmark::kSsb;
  wcfg.num_queries = 4;
  wcfg.scale_factors = {2};
  Rng rng(9);
  const auto workload = GenerateWorkload(wcfg, &rng);
  LSchedAgent a(&model), b(&reloaded);
  const EpisodeResult ra = engine.Run(workload, &a);
  const EpisodeResult rb = engine.Run(workload, &b);
  // Greedy agents with identical weights act identically.
  ASSERT_EQ(ra.query_latencies.size(), rb.query_latencies.size());
  for (size_t i = 0; i < ra.query_latencies.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.query_latencies[i], rb.query_latencies[i]);
  }
}

TEST(IntegrationTest, LearnedAgentDrivesRealEngine) {
  // The same LSched agent that schedules the simulator drives real kernel
  // execution through the identical Scheduler interface.
  auto catalog = std::make_unique<Catalog>();
  Rng rng(12);
  TableSpec dim;
  dim.name = "dim";
  dim.num_rows = 600;
  dim.block_capacity = 128;
  dim.columns = {
      {"k", DataType::kInt64, ColumnDistribution::kSequential, 0, 0, 0},
      {"w", DataType::kDouble, ColumnDistribution::kUniformReal, 0, 1, 0}};
  TableSpec fact;
  fact.name = "fact";
  fact.num_rows = 2400;
  fact.block_capacity = 128;
  fact.columns = {
      {"fk", DataType::kInt64, ColumnDistribution::kForeignKey, 0, 600, 0},
      {"val", DataType::kDouble, ColumnDistribution::kUniformReal, 0, 1, 0}};
  ASSERT_TRUE(catalog->AddRelation(GenerateTable(dim, &rng)).ok());
  ASSERT_TRUE(catalog->AddRelation(GenerateTable(fact, &rng)).ok());

  PlanBuilder b(catalog.get());
  PlanBuilder::NodeOptions build_opts;
  build_opts.kernel.build_key = 0;
  const int dscan = b.AddSource(OperatorType::kTableScan, 0, {});
  const int build = b.AddOp(OperatorType::kBuildHash, {dscan}, build_opts);
  PlanBuilder::NodeOptions probe_opts;
  probe_opts.kernel.probe_key = 0;
  const int fscan = b.AddSource(OperatorType::kTableScan, 1, {});
  b.AddOp(OperatorType::kProbeHash, {fscan, build}, probe_opts);
  auto plan = b.Build();
  ASSERT_TRUE(plan.ok());

  LSchedModel model(TinyConfig());
  LSchedAgent agent(&model);
  RealEngineConfig cfg;
  cfg.num_threads = 3;
  cfg.chunk_rows = 128;
  RealEngine engine(catalog.get(), cfg);
  std::vector<RealQuerySubmission> workload;
  workload.push_back({*plan, 0.0});
  workload.push_back({*plan, 0.0});
  const RealRunResult result = engine.Run(workload, &agent);
  ASSERT_EQ(result.episode.query_latencies.size(), 2u);
  // Every fact row joins exactly one dim row.
  EXPECT_EQ(result.sink_row_counts[0], 2400);
  EXPECT_EQ(result.sink_row_counts[1], 2400);
}

}  // namespace
}  // namespace lsched

// Pins down the *specific* behaviours of individual schedulers, features,
// and template instantiations (beyond "it completes the workload").
#include <gtest/gtest.h>

#include <cmath>

#include "core/features.h"
#include "plan/plan_builder.h"
#include "sched/heuristics.h"
#include "sched/selftune.h"
#include "workload/templates.h"

namespace lsched {
namespace {

QueryPlan SingleScanPlan(int64_t rows) {
  PlanBuilder b(nullptr);
  PlanBuilder::NodeOptions opts;
  opts.input_rows = rows;
  b.AddSource(OperatorType::kSelect, 0, opts);
  auto plan = b.Build();
  EXPECT_TRUE(plan.ok());
  return std::move(plan).value();
}

struct TwoQueryFixture {
  TwoQueryFixture(int64_t rows_a, int64_t rows_b)
      : qa(0, SingleScanPlan(rows_a), 0.0),
        qb(1, SingleScanPlan(rows_b), 0.1) {
    state.now = 1.0;
    state.queries = {&qa, &qb};
    state.threads.resize(4);
    for (int i = 0; i < 4; ++i) state.threads[static_cast<size_t>(i)].id = i;
  }
  QueryState qa, qb;
  SystemState state;
};

TEST(SchedulerBehavior, SjfPicksTheShorterQuery) {
  TwoQueryFixture fx(500000, 4096);
  SjfScheduler sjf;
  const SchedulingDecision d = sjf.Schedule({}, fx.state);
  ASSERT_FALSE(d.pipelines.empty());
  EXPECT_EQ(d.pipelines[0].query, 1);  // the small one
}

TEST(SchedulerBehavior, HpfUsesStaticPlanCost) {
  TwoQueryFixture fx(500000, 4096);
  HpfScheduler hpf;
  const SchedulingDecision d = hpf.Schedule({}, fx.state);
  ASSERT_FALSE(d.pipelines.empty());
  // Priority = 1/(1+plan cost): the cheap query wins.
  EXPECT_EQ(d.pipelines[0].query, 1);
}

TEST(SchedulerBehavior, FifoPicksTheOldestRegardlessOfCost) {
  TwoQueryFixture fx(500000, 4096);  // big query arrived first
  FifoScheduler fifo;
  const SchedulingDecision d = fifo.Schedule({}, fx.state);
  ASSERT_FALSE(d.pipelines.empty());
  EXPECT_EQ(d.pipelines[0].query, 0);
}

TEST(SchedulerBehavior, QuickstepCapsProportionalToRemainingWork) {
  TwoQueryFixture fx(400000, 100000);  // 4:1 remaining work orders
  QuickstepScheduler qs;
  const SchedulingDecision d = qs.Schedule({}, fx.state);
  int cap_big = -1, cap_small = -1;
  for (const ParallelismChoice& p : d.parallelism) {
    (p.query == 0 ? cap_big : cap_small) = p.max_threads;
  }
  ASSERT_GT(cap_big, 0);
  ASSERT_GT(cap_small, 0);
  EXPECT_GT(cap_big, cap_small);
  EXPECT_NEAR(cap_big, 3, 1);  // ~ 4 threads * 4/5
}

TEST(SchedulerBehavior, SelfTuneSharesDecayWithAttainedService) {
  TwoQueryFixture fx(100000, 100000);
  fx.qa.AddAttainedService(50.0);  // query 0 already consumed a lot
  SelfTuneParams params;
  params.share_exponent = 1.0;
  SelfTuneScheduler st(params);
  const SchedulingDecision d = st.Schedule({}, fx.state);
  int cap_a = -1, cap_b = -1;
  for (const ParallelismChoice& p : d.parallelism) {
    (p.query == 0 ? cap_a : cap_b) = p.max_threads;
  }
  EXPECT_LT(cap_a, cap_b);  // the service-hungry query is deprioritized
}

TEST(SchedulerBehavior, FairIgnoresCostWithEqualWeights) {
  TwoQueryFixture fx(500000, 4096);
  FairScheduler fair;
  const SchedulingDecision d = fair.Schedule({}, fx.state);
  int cap_a = -1, cap_b = -1;
  for (const ParallelismChoice& p : d.parallelism) {
    (p.query == 0 ? cap_a : cap_b) = p.max_threads;
  }
  EXPECT_EQ(cap_a, cap_b);
}

// ---------------------------------------------------------------------------
// Feature semantics.
TEST(FeatureBehavior, DynamicFeaturesChangeAfterProgress) {
  QueryState q(0, SingleScanPlan(100000), 0.0);
  SystemState state;
  state.queries = {&q};
  state.threads.resize(2);
  FeatureExtractor fx((FeatureConfig()));
  const QueryFeatures before = fx.ExtractQuery(q, state);
  q.set_op_scheduled(0, true);
  q.AdvanceOperator(0, 5.0, 0.2, 100.0);
  const QueryFeatures after = fx.ExtractQuery(q, state);
  // O-WO ratio (index right after the static prefix) must drop.
  const FeatureConfig cfg;
  const size_t owo = static_cast<size_t>(kNumOperatorTypes +
                                         cfg.num_relations + cfg.num_columns +
                                         cfg.blocks_downsample);
  EXPECT_LT(after.opf[0][owo], before.opf[0][owo]);
  // Scheduled flag flipped on.
  EXPECT_EQ(after.opf[0][static_cast<size_t>(cfg.opf_dim()) - 2], 1.0);
  // Static one-hots unchanged.
  for (size_t i = 0; i < owo; ++i) {
    EXPECT_EQ(after.opf[0][i], before.opf[0][i]) << i;
  }
}

TEST(FeatureBehavior, CandidatesMatchSchedulableOps) {
  auto plan = [&] {
    PlanBuilder b(nullptr);
    PlanBuilder::NodeOptions o;
    o.input_rows = 50000;
    const int s1 = b.AddSource(OperatorType::kSelect, 0, o);
    const int s2 = b.AddSource(OperatorType::kSelect, 1, o);
    const int bh = b.AddOp(OperatorType::kBuildHash, {s1});
    b.AddOp(OperatorType::kProbeHash, {s2, bh});
    auto p = b.Build();
    EXPECT_TRUE(p.ok());
    return std::move(p).value();
  }();
  QueryState q(0, plan, 0.0);
  SystemState state;
  state.queries = {&q};
  state.threads.resize(2);
  FeatureExtractor fx((FeatureConfig()));
  const StateFeatures f = fx.Extract(state);
  const std::vector<int> ops = q.SchedulableOps();
  ASSERT_EQ(f.candidates.size(), ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(f.candidates[i].op, ops[i]);
    EXPECT_EQ(f.candidates[i].max_degree,
              static_cast<int>(q.ValidPipelineFrom(ops[i]).size()));
  }
}

// ---------------------------------------------------------------------------
// Template instantiation structure (spot checks of the TPCH shapes).
TEST(TemplateBehavior, TpchQ1HasNoJoins) {
  Rng rng(1);
  auto plan = InstantiateTemplate(Benchmark::kTpch, 0, 10, &rng);
  ASSERT_TRUE(plan.ok());
  for (const PlanNode& n : plan->nodes()) {
    EXPECT_NE(n.type, OperatorType::kProbeHash);
    EXPECT_NE(n.type, OperatorType::kBuildHash);
  }
}

TEST(TemplateBehavior, JoinCountMatchesSpec) {
  const auto specs = TemplatesOf(Benchmark::kTpch);
  Rng rng(2);
  for (size_t t = 0; t < specs.size(); ++t) {
    auto plan = InstantiateTemplate(Benchmark::kTpch, specs[t], 10, &rng);
    ASSERT_TRUE(plan.ok());
    int joins = 0;
    for (const PlanNode& n : plan->nodes()) {
      joins += n.type == OperatorType::kProbeHash ||
               n.type == OperatorType::kMergeJoin ||
               n.type == OperatorType::kIndexNestedLoopJoin;
    }
    EXPECT_EQ(joins, static_cast<int>(specs[t].joins.size())) << "Q" << t + 1;
  }
}

TEST(TemplateBehavior, AggregatingTemplatesEndInAggregateOrOrdering) {
  const auto specs = TemplatesOf(Benchmark::kSsb);
  Rng rng(3);
  for (size_t t = 0; t < specs.size(); ++t) {
    auto plan = InstantiateTemplate(Benchmark::kSsb, specs[t], 5, &rng);
    ASSERT_TRUE(plan.ok());
    const std::vector<int> sinks = plan->SinkNodes();
    ASSERT_EQ(sinks.size(), 1u);
    const OperatorType sink_type = plan->node(sinks[0]).type;
    EXPECT_TRUE(sink_type == OperatorType::kFinalizeAggregate ||
                sink_type == OperatorType::kMergeSortedRuns ||
                sink_type == OperatorType::kTopK)
        << OperatorTypeName(sink_type);
  }
}

TEST(TemplateBehavior, IndexScansAreSelective) {
  const auto specs = TemplatesOf(Benchmark::kJob);
  Rng rng(4);
  int index_scans = 0;
  for (int t = 0; t < 20; ++t) {
    auto plan = InstantiateTemplate(Benchmark::kJob,
                                    specs[static_cast<size_t>(t)], 1, &rng);
    ASSERT_TRUE(plan.ok());
    for (const PlanNode& n : plan->nodes()) {
      if (n.type != OperatorType::kIndexScan) continue;
      ++index_scans;
      EXPECT_LT(static_cast<double>(n.est_output_rows),
                0.2 * static_cast<double>(n.est_input_rows) + 1.0);
    }
  }
  EXPECT_GT(index_scans, 0);
}

}  // namespace
}  // namespace lsched

#include <gtest/gtest.h>

#include "storage/block.h"
#include "storage/catalog.h"
#include "storage/relation.h"
#include "storage/table_generator.h"

namespace lsched {
namespace {

Schema TwoColSchema() {
  return Schema({{"id", DataType::kInt64}, {"v", DataType::kDouble}});
}

TEST(BlockTest, AppendAndRead) {
  Block b(TwoColSchema(), 4);
  ASSERT_TRUE(b.AppendRow({1.0, 2.5}).ok());
  ASSERT_TRUE(b.AppendRow({2.0, -1.5}).ok());
  EXPECT_EQ(b.num_rows(), 2u);
  EXPECT_EQ(b.Int64Column(0)[1], 2);
  EXPECT_DOUBLE_EQ(b.DoubleColumn(1)[0], 2.5);
  EXPECT_DOUBLE_EQ(b.ValueAsDouble(0, 1), 2.0);
}

TEST(BlockTest, CapacityEnforced) {
  Block b(TwoColSchema(), 1);
  ASSERT_TRUE(b.AppendRow({1, 1}).ok());
  EXPECT_TRUE(b.full());
  EXPECT_FALSE(b.AppendRow({2, 2}).ok());
}

TEST(BlockTest, ArityChecked) {
  Block b(TwoColSchema(), 4);
  EXPECT_FALSE(b.AppendRow({1.0}).ok());
}

TEST(BlockTest, HeaderStatsTrackMinMax) {
  Block b(TwoColSchema(), 8);
  ASSERT_TRUE(b.AppendRow({5, 1.0}).ok());
  ASSERT_TRUE(b.AppendRow({-3, 9.0}).ok());
  EXPECT_DOUBLE_EQ(b.column_stats(0).min, -3.0);
  EXPECT_DOUBLE_EQ(b.column_stats(0).max, 5.0);
  EXPECT_DOUBLE_EQ(b.column_stats(1).max, 9.0);
}

TEST(RelationTest, SpillsIntoMultipleBlocks) {
  Relation rel("t", TwoColSchema(), 3);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rel.AppendRow({static_cast<double>(i), 0.0}).ok());
  }
  EXPECT_EQ(rel.num_rows(), 10);
  EXPECT_EQ(rel.num_blocks(), 4u);  // 3+3+3+1
  EXPECT_EQ(rel.block(3).num_rows(), 1u);
}

TEST(CatalogTest, AddAndFind) {
  Catalog catalog;
  auto rel = std::make_unique<Relation>("orders", TwoColSchema());
  auto id = catalog.AddRelation(std::move(rel));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*catalog.FindRelation("orders"), *id);
  EXPECT_FALSE(catalog.FindRelation("nope").ok());
  EXPECT_FALSE(
      catalog.AddRelation(std::make_unique<Relation>("orders", TwoColSchema()))
          .ok());
}

TEST(CatalogTest, ColumnIdsStable) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.AddRelation(std::make_unique<Relation>("t", TwoColSchema()))
          .ok());
  const ColumnId a = catalog.ColumnIdFor("t.id");
  const ColumnId b = catalog.ColumnIdFor("t.v");
  EXPECT_NE(a, b);
  EXPECT_EQ(catalog.ColumnIdFor("t.id"), a);
  EXPECT_EQ(catalog.num_distinct_columns(), 2u);
}

TEST(TableGeneratorTest, GeneratesRequestedShape) {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 1000;
  spec.block_capacity = 128;
  spec.columns = {
      {"pk", DataType::kInt64, ColumnDistribution::kSequential, 0, 0, 0},
      {"fk", DataType::kInt64, ColumnDistribution::kForeignKey, 0, 50, 0},
      {"val", DataType::kDouble, ColumnDistribution::kUniformReal, 0, 1, 0},
  };
  Rng rng(77);
  auto rel = GenerateTable(spec, &rng);
  EXPECT_EQ(rel->num_rows(), 1000);
  EXPECT_EQ(rel->num_blocks(), 8u);  // ceil(1000/128)
  // Sequential pk.
  EXPECT_EQ(rel->block(0).Int64Column(0)[5], 5);
  // FK within range.
  for (size_t b = 0; b < rel->num_blocks(); ++b) {
    for (int64_t v : rel->block(b).Int64Column(1)) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 50);
    }
  }
}

TEST(TableGeneratorTest, DeterministicForSameSeed) {
  TableSpec spec;
  spec.name = "t";
  spec.num_rows = 64;
  spec.columns = {
      {"v", DataType::kDouble, ColumnDistribution::kNormalReal, 0, 0, 1.0}};
  Rng r1(5), r2(5);
  auto a = GenerateTable(spec, &r1);
  auto b = GenerateTable(spec, &r2);
  EXPECT_EQ(a->block(0).DoubleColumn(0), b->block(0).DoubleColumn(0));
}

}  // namespace
}  // namespace lsched

// Equivalence suite for the tape-free serving fast path (Scheduler API v2,
// DESIGN.md §9). Three claims are checked under fuzzer-seeded workloads on
// BOTH engines:
//
//  1. the serving forward (cached encodings + batched GEMM heads) produces
//     the same log-probabilities as the autograd-tape forward, within 1e-9
//     (in practice bit-identical);
//  2. cached per-query encodings are bit-identical to a full re-encode
//     (the dirty-flag invalidation never serves stale embeddings);
//  3. the fast path and the legacy tape path produce identical decisions
//     event-by-event — including identical rng consumption when sampling —
//     and the serving path never constructs an autograd Tape.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/encoder.h"
#include "core/features.h"
#include "core/model.h"
#include "core/predictor.h"
#include "exec/real_engine.h"
#include "exec/scheduling_context.h"
#include "exec/sim_engine.h"
#include "nn/autograd.h"
#include "nn/gemm.h"
#include "nn/inference.h"
#include "nn/optimizer.h"
#include "sched/decima.h"
#include "sched/heuristics.h"
#include "testing/fuzzer.h"

namespace lsched {
namespace {

LSchedConfig TinyLSchedConfig() {
  LSchedConfig config;
  config.hidden_dim = 8;
  config.summary_dim = 8;
  config.head_hidden = 8;
  return config;
}

DecimaConfig TinyDecimaConfig() {
  DecimaConfig config;
  config.hidden_dim = 8;
  config.summary_dim = 8;
  config.head_hidden = 8;
  return config;
}

bool MatricesBitEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) {
      if (a.at(r, c) != b.at(r, c)) return false;
    }
  }
  return true;
}

/// Runs BOTH forward passes at every scheduling event and accumulates the
/// maximum |tape - serving| log-probability difference, then delegates the
/// actual decision to a sampled LSchedAgent so the episode follows a
/// realistic learned-policy trajectory. Stats are asserted by the test
/// body after the episode (no gtest calls from engine threads).
class LSchedForwardProbe : public Scheduler {
 public:
  explicit LSchedForwardProbe(uint64_t seed)
      : model_(TinyLSchedConfig()),
        extractor_(model_.config().features),
        agent_(&model_, seed) {
    agent_.set_sample_actions(true);
  }

  std::string name() const override { return "lsched-forward-probe"; }
  void Reset() override { agent_.Reset(); }

  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override {
    StateFeatures features = extractor_.Extract(ctx);
    if (!features.candidates.empty() && features.free_threads > 0) {
      CompareForwards(ctx, features);
    }
    return agent_.Schedule(event, ctx);
  }

  int events_compared() const { return events_compared_; }
  int shape_mismatches() const { return shape_mismatches_; }
  int reencode_mismatches() const { return reencode_mismatches_; }
  int head_path_mismatches() const { return head_path_mismatches_; }
  double max_abs_diff() const { return max_abs_diff_; }
  const EncodingCache& cache() const { return cache_; }

 private:
  void CompareForwards(const SchedulingContext& ctx,
                       const StateFeatures& features) {
    // Reference: the training-time autograd forward on a full extraction.
    Tape tape;
    const EncodedState encoded = EncodeState(&model_, features, &tape);
    const PredictorOutput out = RunPredictor(&model_, features, encoded, &tape);

    // Candidate: the serving path — cached encodings + batched heads.
    arena_.Reset();
    reencode_arena_.Reset();
    const std::vector<QueryState*>& queries = ctx.queries();
    ServingStateView view;
    view.total_threads = ctx.total_threads();
    view.free_threads = ctx.num_free_threads();
    std::vector<std::vector<double>> qf_rows(queries.size());
    std::vector<const Matrix*> head_in;
    std::vector<int> head_rows;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const QueryState* q = queries[qi];
      const EncodingCache::Entry& entry = cache_.Get(
          *q, ctx.query_version(q->id()), model_, extractor_, &arena_);
      // Claim 2: the cache entry equals a from-scratch re-encode.
      const ServingEncodedQuery fresh =
          EncodeQueryServing(model_, entry.features, &reencode_arena_);
      if (!MatricesBitEqual(fresh.node_emb, entry.enc.node_emb) ||
          !MatricesBitEqual(fresh.edge_emb, entry.enc.edge_emb) ||
          !MatricesBitEqual(fresh.pqe, entry.enc.pqe)) {
        ++reencode_mismatches_;
      }
      view.queries.push_back(&entry.features);
      view.encoded.push_back(&entry.enc);
      head_in.push_back(&entry.head_in);
      qf_rows[qi] = extractor_.ExtractQf(*q, ctx);
      view.qf.push_back(&qf_rows[qi]);
      int head_row = 0;
      for (const auto& [op, degree] : entry.candidates) {
        Candidate c;
        c.query_index = static_cast<int>(qi);
        c.op = op;
        c.max_degree = degree;
        view.candidates.push_back(c);
        head_rows.push_back(head_row++);
      }
    }
    if (view.candidates.size() != features.candidates.size()) {
      ++shape_mismatches_;
      return;
    }
    // This view has no head_in/head_row: RunPredictorServing takes the
    // fallback (per-event gather + aggregate) assembly path.
    const Matrix aqe = ComputeAqeServing(model_, view, &arena_);
    RunPredictorServing(model_, view, aqe, &arena_, &serving_out_);

    // Claim 4: the cached-head-row fast path (what LSchedAgent serves
    // with) is bit-identical to the fallback assembly.
    view.head_in = std::move(head_in);
    view.head_row = std::move(head_rows);
    RunPredictorServing(model_, view, aqe, &arena_, &head_out_);
    if (!MatricesBitEqual(serving_out_.root_logprobs, head_out_.root_logprobs) ||
        !MatricesBitEqual(serving_out_.degree_logprobs,
                          head_out_.degree_logprobs) ||
        !MatricesBitEqual(serving_out_.par_logprobs, head_out_.par_logprobs)) {
      ++head_path_mismatches_;
    }

    // Claim 1: log-probabilities match within 1e-9.
    const Matrix& root_ref = out.root_logprobs.value();
    const int num_cands = static_cast<int>(features.candidates.size());
    if (serving_out_.root_logprobs.cols() != num_cands) {
      ++shape_mismatches_;
      return;
    }
    for (int c = 0; c < num_cands; ++c) {
      Track(root_ref.at(0, c) - serving_out_.root_logprobs.at(0, c));
      const Matrix& deg_ref =
          out.degree_logprobs[static_cast<size_t>(c)].value();
      for (int k = 0; k < deg_ref.cols(); ++k) {
        Track(deg_ref.at(0, k) - serving_out_.degree_logprobs.at(c, k));
      }
      const Matrix& par_ref = out.par_logprobs[static_cast<size_t>(c)].value();
      for (int k = 0; k < par_ref.cols(); ++k) {
        Track(par_ref.at(0, k) - serving_out_.par_logprobs.at(c, k));
      }
    }
    ++events_compared_;
  }

  void Track(double diff) {
    max_abs_diff_ = std::max(max_abs_diff_, std::abs(diff));
  }

  LSchedModel model_;
  FeatureExtractor extractor_;
  LSchedAgent agent_;
  EncodingCache cache_;
  ScratchArena arena_;
  ScratchArena reencode_arena_;
  ServingPredictorOutput serving_out_;
  ServingPredictorOutput head_out_;
  int events_compared_ = 0;
  int shape_mismatches_ = 0;
  int reencode_mismatches_ = 0;
  int head_path_mismatches_ = 0;
  double max_abs_diff_ = 0.0;
};

bool DecisionsEqual(const SchedulingDecision& a, const SchedulingDecision& b) {
  if (a.pipelines.size() != b.pipelines.size() ||
      a.parallelism.size() != b.parallelism.size()) {
    return false;
  }
  for (size_t i = 0; i < a.pipelines.size(); ++i) {
    if (a.pipelines[i].query != b.pipelines[i].query ||
        a.pipelines[i].root_op != b.pipelines[i].root_op ||
        a.pipelines[i].degree != b.pipelines[i].degree) {
      return false;
    }
  }
  for (size_t i = 0; i < a.parallelism.size(); ++i) {
    if (a.parallelism[i].query != b.parallelism[i].query ||
        a.parallelism[i].max_threads != b.parallelism[i].max_threads) {
      return false;
    }
  }
  return true;
}

/// At every event, runs the fast path (context) and the legacy tape path
/// (materialized snapshot) through two same-seeded agents sharing one
/// model, and counts decision mismatches. Identical decisions across whole
/// sampled episodes require bit-identical scores AND identical rng
/// consumption on both paths.
class DualLSched : public Scheduler {
 public:
  explicit DualLSched(uint64_t seed)
      : model_(TinyLSchedConfig()),
        fast_(&model_, seed),
        slow_(&model_, seed) {
    fast_.set_sample_actions(true);
    slow_.set_sample_actions(true);
    slow_.set_use_fast_path(false);
  }

  std::string name() const override { return "dual-lsched"; }
  void Reset() override {
    fast_.Reset();
    slow_.Reset();
  }

  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override {
    SchedulingDecision fast = fast_.Schedule(event, ctx);
    const SystemState snapshot = ctx.MaterializeSnapshot();
    const SchedulingDecision slow = slow_.Schedule(event, snapshot);
    ++events_;
    if (!DecisionsEqual(fast, slow)) ++mismatches_;
    return fast;
  }

  int events() const { return events_; }
  int mismatches() const { return mismatches_; }
  const LSchedAgent& fast_agent() const { return fast_; }

 private:
  LSchedModel model_;
  LSchedAgent fast_;
  LSchedAgent slow_;
  int events_ = 0;
  int mismatches_ = 0;
};

class DualDecima : public Scheduler {
 public:
  explicit DualDecima(uint64_t seed)
      : model_(TinyDecimaConfig()),
        fast_(&model_, seed),
        slow_(&model_, seed) {
    fast_.set_sample_actions(true);
    slow_.set_sample_actions(true);
    slow_.set_use_fast_path(false);
  }

  std::string name() const override { return "dual-decima"; }
  void Reset() override {
    fast_.Reset();
    slow_.Reset();
  }

  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override {
    SchedulingDecision fast = fast_.Schedule(event, ctx);
    const SystemState snapshot = ctx.MaterializeSnapshot();
    const SchedulingDecision slow = slow_.Schedule(event, snapshot);
    ++events_;
    if (!DecisionsEqual(fast, slow)) ++mismatches_;
    return fast;
  }

  int events() const { return events_; }
  int mismatches() const { return mismatches_; }

 private:
  DecimaModel model_;
  DecimaScheduler fast_;
  DecimaScheduler slow_;
  int events_ = 0;
  int mismatches_ = 0;
};

TEST(ServingEquivalenceTest, LSchedForwardMatchesTapeOnSimEngine) {
  // Dense arrivals so several queries are live at once: cache hits require
  // a query that was NOT dirtied since the previous event, and with a
  // single live query every decision/completion dirties it.
  FuzzerOptions options;
  options.min_queries = 3;
  options.max_queries = 3;
  options.sim_arrival_mean_seconds = 0.001;
  WorkloadFuzzer fuzzer(9001, options);
  LSchedForwardProbe probe(17);
  for (int round = 0; round < 6; ++round) {
    FuzzedWorkload w = fuzzer.NextWorkload();
    SimEngineConfig config;
    config.num_threads = 4;
    SimEngine engine(config);
    engine.Run(w.sim_queries, &probe);
  }
  ASSERT_GT(probe.events_compared(), 10);
  EXPECT_EQ(probe.shape_mismatches(), 0);
  EXPECT_EQ(probe.reencode_mismatches(), 0);
  EXPECT_LE(probe.max_abs_diff(), 1e-9);
  EXPECT_EQ(probe.head_path_mismatches(), 0);
  // The cache must actually be doing something: most events re-touch
  // queries that were not dirtied since the previous event.
  EXPECT_GT(probe.cache().hits(), 0);
  EXPECT_GT(probe.cache().misses(), 0);
}

TEST(ServingEquivalenceTest, LSchedForwardMatchesTapeOnRealEngine) {
  WorkloadFuzzer fuzzer(4242);
  FuzzedWorkload w = fuzzer.NextWorkload();
  LSchedForwardProbe probe(29);
  RealEngineConfig config;
  config.num_threads = 3;
  RealEngine engine(w.catalog.get(), config);
  engine.Run(w.real_queries, &probe);
  ASSERT_GT(probe.events_compared(), 0);
  EXPECT_EQ(probe.shape_mismatches(), 0);
  EXPECT_EQ(probe.reencode_mismatches(), 0);
  EXPECT_EQ(probe.head_path_mismatches(), 0);
  EXPECT_LE(probe.max_abs_diff(), 1e-9);
}

/// The GemmBackend equivalence gate: the full tape ≡ serving comparison
/// must hold under BOTH GEMM kernels (the backend is process-global, so
/// each pass runs every GEMM in the forward through the selected kernel).
TEST(ServingEquivalenceTest, ForwardMatchesTapeUnderEveryGemmBackend) {
  for (GemmKind kind : {GemmKind::kNaive, GemmKind::kBlocked}) {
    ScopedGemmKind scoped(kind);
    FuzzerOptions options;
    options.min_queries = 3;
    options.max_queries = 3;
    options.sim_arrival_mean_seconds = 0.001;
    WorkloadFuzzer fuzzer(6006, options);
    LSchedForwardProbe probe(41);
    for (int round = 0; round < 3; ++round) {
      FuzzedWorkload w = fuzzer.NextWorkload();
      SimEngineConfig config;
      config.num_threads = 4;
      SimEngine engine(config);
      engine.Run(w.sim_queries, &probe);
    }
    ASSERT_GT(probe.events_compared(), 0) << GemmKindName(kind);
    EXPECT_EQ(probe.shape_mismatches(), 0) << GemmKindName(kind);
    EXPECT_EQ(probe.reencode_mismatches(), 0) << GemmKindName(kind);
    EXPECT_EQ(probe.head_path_mismatches(), 0) << GemmKindName(kind);
    EXPECT_LE(probe.max_abs_diff(), 1e-9) << GemmKindName(kind);
  }
}

/// Captures live scheduling states off a FIFO-driven episode (for
/// cross-backend forward comparisons below).
class StateCaptureScheduler : public Scheduler {
 public:
  StateCaptureScheduler() : extractor_(TinyLSchedConfig().features) {}

  std::string name() const override { return "state-capture"; }

  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override {
    if (states_.size() < 8) {
      StateFeatures f = extractor_.Extract(ctx);
      if (!f.candidates.empty() && f.free_threads > 0) {
        states_.push_back(std::move(f));
      }
    }
    return inner_.Schedule(event, ctx);
  }

  const std::vector<StateFeatures>& states() const { return states_; }

 private:
  FifoScheduler inner_;
  FeatureExtractor extractor_;
  std::vector<StateFeatures> states_;
};

/// Direct naive-vs-blocked gate on whole forward passes: the same state
/// through the same model under each backend must agree within 1e-9 on all
/// three heads' log-probabilities.
TEST(ServingEquivalenceTest, BlockedBackendMatchesNaiveOnFullForward) {
  WorkloadFuzzer fuzzer(909);
  StateCaptureScheduler capture;
  FuzzedWorkload w = fuzzer.NextWorkload();
  SimEngineConfig config;
  config.num_threads = 4;
  SimEngine engine(config);
  engine.Run(w.sim_queries, &capture);
  ASSERT_FALSE(capture.states().empty());

  LSchedModel model(TinyLSchedConfig());
  for (const StateFeatures& state : capture.states()) {
    PredictorOutput naive_out, blocked_out;
    Tape naive_tape, blocked_tape;
    {
      ScopedGemmKind scoped(GemmKind::kNaive);
      const EncodedState enc = EncodeState(&model, state, &naive_tape);
      naive_out = RunPredictor(&model, state, enc, &naive_tape);
    }
    {
      ScopedGemmKind scoped(GemmKind::kBlocked);
      const EncodedState enc = EncodeState(&model, state, &blocked_tape);
      blocked_out = RunPredictor(&model, state, enc, &blocked_tape);
    }
    const Matrix& root_n = naive_out.root_logprobs.value();
    const Matrix& root_b = blocked_out.root_logprobs.value();
    ASSERT_EQ(root_n.cols(), root_b.cols());
    for (int c = 0; c < root_n.cols(); ++c) {
      EXPECT_NEAR(root_n.at(0, c), root_b.at(0, c), 1e-9);
      const Matrix& deg_n =
          naive_out.degree_logprobs[static_cast<size_t>(c)].value();
      const Matrix& deg_b =
          blocked_out.degree_logprobs[static_cast<size_t>(c)].value();
      for (int k = 0; k < deg_n.cols(); ++k) {
        EXPECT_NEAR(deg_n.at(0, k), deg_b.at(0, k), 1e-9);
      }
      const Matrix& par_n =
          naive_out.par_logprobs[static_cast<size_t>(c)].value();
      const Matrix& par_b =
          blocked_out.par_logprobs[static_cast<size_t>(c)].value();
      for (int k = 0; k < par_n.cols(); ++k) {
        EXPECT_NEAR(par_n.at(0, k), par_b.at(0, k), 1e-9);
      }
    }
  }
}

TEST(ServingEquivalenceTest, LSchedFastAndSlowDecisionsIdenticalOnSim) {
  WorkloadFuzzer fuzzer(777);
  DualLSched dual(55);
  for (int round = 0; round < 6; ++round) {
    FuzzedWorkload w = fuzzer.NextWorkload();
    SimEngineConfig config;
    config.num_threads = 4;
    SimEngine engine(config);
    engine.Run(w.sim_queries, &dual);
  }
  ASSERT_GT(dual.events(), 10);
  EXPECT_EQ(dual.mismatches(), 0);
}

TEST(ServingEquivalenceTest, LSchedFastAndSlowDecisionsIdenticalOnReal) {
  WorkloadFuzzer fuzzer(31338);
  FuzzedWorkload w = fuzzer.NextWorkload();
  DualLSched dual(91);
  RealEngineConfig config;
  config.num_threads = 3;
  RealEngine engine(w.catalog.get(), config);
  engine.Run(w.real_queries, &dual);
  ASSERT_GT(dual.events(), 0);
  EXPECT_EQ(dual.mismatches(), 0);
}

TEST(ServingEquivalenceTest, DecimaFastAndSlowDecisionsIdenticalOnSim) {
  WorkloadFuzzer fuzzer(1234);
  DualDecima dual(66);
  for (int round = 0; round < 6; ++round) {
    FuzzedWorkload w = fuzzer.NextWorkload();
    SimEngineConfig config;
    config.num_threads = 4;
    SimEngine engine(config);
    engine.Run(w.sim_queries, &dual);
  }
  ASSERT_GT(dual.events(), 10);
  EXPECT_EQ(dual.mismatches(), 0);
}

TEST(ServingEquivalenceTest, DecimaFastAndSlowDecisionsIdenticalOnReal) {
  WorkloadFuzzer fuzzer(8080);
  FuzzedWorkload w = fuzzer.NextWorkload();
  DualDecima dual(13);
  RealEngineConfig config;
  config.num_threads = 3;
  RealEngine engine(w.catalog.get(), config);
  engine.Run(w.real_queries, &dual);
  ASSERT_GT(dual.events(), 0);
  EXPECT_EQ(dual.mismatches(), 0);
}

/// The acceptance gate for "serving never touches the tape": a pure
/// inference episode through the fast path must construct zero Tapes.
TEST(ServingEquivalenceTest, ServingPathConstructsNoTapes) {
  WorkloadFuzzer fuzzer(2025);
  FuzzedWorkload w = fuzzer.NextWorkload();

  LSchedModel lsched_model(TinyLSchedConfig());
  LSchedAgent lsched(&lsched_model, 7);
  DecimaModel decima_model(TinyDecimaConfig());
  DecimaScheduler decima(&decima_model, 7);

  const int64_t before = Tape::num_constructed();
  {
    SimEngineConfig config;
    config.num_threads = 4;
    SimEngine engine(config);
    engine.Run(w.sim_queries, &lsched);
    engine.Run(w.sim_queries, &decima);
  }
  {
    RealEngineConfig config;
    config.num_threads = 3;
    RealEngine engine(w.catalog.get(), config);
    engine.Run(w.real_queries, &lsched);
    engine.Run(w.real_queries, &decima);
  }
  EXPECT_EQ(Tape::num_constructed() - before, 0)
      << "inference-only episodes must never allocate an autograd tape";
}

/// Weight updates must invalidate cached encodings: every mutation route
/// into a ParameterStore bumps its value epoch.
TEST(ServingEquivalenceTest, ParameterEpochTracksEveryWeightMutation) {
  LSchedModel model(TinyLSchedConfig());
  ParameterStore* store = model.params();
  const uint64_t e0 = store->value_epoch();

  Sgd sgd(0.01);
  sgd.Step(store);
  const uint64_t e1 = store->value_epoch();
  EXPECT_GT(e1, e0);

  Adam adam(0.001);
  adam.Step(store);
  const uint64_t e2 = store->value_epoch();
  EXPECT_GT(e2, e1);

  LSchedModel other(TinyLSchedConfig());
  store->CopyValuesFrom(*other.params());
  EXPECT_GT(store->value_epoch(), e2);
}

}  // namespace
}  // namespace lsched

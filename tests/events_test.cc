// Verifies the scheduling-trigger discipline of §5.2: the engine consults
// the policy exactly on the major events (query arrival, operator
// completion, idle thread, pool changes) — never per work order — and
// honors the "no decisions when all threads busy / nothing schedulable"
// rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "exec/sim_engine.h"
#include "plan/plan_builder.h"
#include "sched/heuristics.h"

namespace lsched {
namespace {

/// Wraps a policy and records every invocation's event type + state.
class RecordingScheduler : public Scheduler {
 public:
  explicit RecordingScheduler(Scheduler* inner) : inner_(inner) {}
  std::string name() const override { return "Recording"; }
  void Reset() override {
    inner_->Reset();
    by_type_.clear();
    had_free_thread_and_candidate_ = true;
    total_ = 0;
  }
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SystemState& state) override {
    ++total_;
    ++by_type_[event.type];
    bool any_candidate = false;
    for (QueryState* q : state.queries) {
      any_candidate |= !q->SchedulableOps().empty();
    }
    if (state.num_free_threads() == 0 || !any_candidate) {
      had_free_thread_and_candidate_ = false;
    }
    return inner_->Schedule(event, state);
  }

  int total() const { return total_; }
  int count(SchedulingEventType t) const {
    auto it = by_type_.find(t);
    return it == by_type_.end() ? 0 : it->second;
  }
  bool invariant_held() const { return had_free_thread_and_candidate_; }

 private:
  Scheduler* inner_;
  std::map<SchedulingEventType, int> by_type_;
  bool had_free_thread_and_candidate_ = true;
  int total_ = 0;
};

std::vector<QuerySubmission> Workload(int n) {
  std::vector<QuerySubmission> out;
  for (int i = 0; i < n; ++i) {
    PlanBuilder b(nullptr);
    PlanBuilder::NodeOptions opts;
    opts.input_rows = 60000;  // ~15 work orders
    const int scan = b.AddSource(OperatorType::kSelect, 0, opts);
    const int sel = b.AddOp(OperatorType::kSelect, {scan});
    const int agg = b.AddOp(OperatorType::kHashAggregate, {sel});
    b.AddOp(OperatorType::kFinalizeAggregate, {agg});
    auto plan = b.Build();
    EXPECT_TRUE(plan.ok());
    out.push_back({std::move(plan).value(), 0.02 * i});
  }
  return out;
}

TEST(EventsTest, SchedulerInvokedOnlyOnMajorEvents) {
  SimEngineConfig cfg;
  cfg.num_threads = 4;
  SimEngine engine(cfg);
  FairScheduler fair;
  RecordingScheduler rec(&fair);
  const EpisodeResult r = engine.Run(Workload(5), &rec);
  ASSERT_EQ(r.query_latencies.size(), 5u);

  // 5 queries x 4 operators = 20 operator completions, ~75 work orders.
  // Invocations must be far below the work-order count: the scheduler is
  // event-driven, not per-work-order.
  int total_wos = 0;
  for (const QuerySubmission& q : Workload(5)) {
    for (const PlanNode& n : q.plan.nodes()) total_wos += n.num_work_orders;
  }
  EXPECT_LT(rec.total(), total_wos);
  EXPECT_GT(rec.count(SchedulingEventType::kQueryArrival), 0);
  EXPECT_GT(rec.count(SchedulingEventType::kOperatorCompleted), 0);
  // §5.2: never invoked with zero free threads or nothing to schedule.
  EXPECT_TRUE(rec.invariant_held());
}

TEST(EventsTest, PoolGrowthRaisesThreadAddedEvent) {
  SimEngineConfig cfg;
  cfg.num_threads = 2;
  cfg.thread_events = {{0.05, +2}};
  SimEngine engine(cfg);
  QuickstepScheduler qs;
  RecordingScheduler rec(&qs);
  const EpisodeResult r = engine.Run(Workload(4), &rec);
  ASSERT_EQ(r.query_latencies.size(), 4u);
  // Growth always produces free threads, so the §5.2 gate lets the
  // ThreadAdded invocation through.
  EXPECT_GE(rec.count(SchedulingEventType::kThreadAdded), 1);
}

TEST(EventsTest, PoolShrinkReducesVisibleThreads) {
  // A ThreadRemoved invocation may legitimately be gated away (§5.2: no
  // decisions while all threads are busy), but the scheduler must observe
  // the smaller pool in subsequent snapshots.
  SimEngineConfig cfg;
  cfg.num_threads = 6;
  cfg.thread_events = {{0.1, -3}};
  SimEngine engine(cfg);

  class PoolSizeProbe : public QuickstepScheduler {
   public:
    SchedulingDecision Schedule(const SchedulingEvent& event,
                                const SchedulingContext& ctx) override {
      if (ctx.now() < 0.1) {
        before = std::max(before, ctx.threads().size());
      } else {
        after_min = std::min(after_min, ctx.threads().size());
      }
      return QuickstepScheduler::Schedule(event, ctx);
    }
    size_t before = 0;
    size_t after_min = 1000;
  };
  PoolSizeProbe probe;
  const EpisodeResult r = engine.Run(Workload(6), &probe);
  ASSERT_EQ(r.query_latencies.size(), 6u);
  EXPECT_EQ(probe.before, 6u);
  EXPECT_LE(probe.after_min, 3u);
}

TEST(EventsTest, ArrivalEventCarriesQueryId) {
  SimEngineConfig cfg;
  // Enough threads that the §5.2 all-busy gate never swallows an arrival.
  cfg.num_threads = 16;
  SimEngine engine(cfg);

  class ArrivalChecker : public FairScheduler {
   public:
    SchedulingDecision Schedule(const SchedulingEvent& event,
                                const SchedulingContext& ctx) override {
      if (event.type == SchedulingEventType::kQueryArrival) {
        ids.push_back(event.query);
        EXPECT_NE(ctx.FindQuery(event.query), nullptr);
      }
      return FairScheduler::Schedule(event, ctx);
    }
    std::vector<QueryId> ids;
  };
  ArrivalChecker checker;
  engine.Run(Workload(3), &checker);
  EXPECT_EQ(checker.ids, (std::vector<QueryId>{0, 1, 2}));
}

}  // namespace
}  // namespace lsched

// Tests for the long-running multi-tenant serving stack (DESIGN.md §11):
// ScriptedIngress packaging, the ServingPolicy admission/fairness/priority
// hooks through both engines, byte-identical deterministic replays of long
// streams, shed-count conservation, priority-inversion absence, weighted
// fair-share convergence, graceful drain with zero work-order loss, chaos
// Sim==Real terminal-status agreement, rolling-window snapshot exactness,
// and the /healthz draining flip.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "exec/real_engine.h"
#include "exec/sim_engine.h"
#include "obs/exporter.h"
#include "plan/plan_builder.h"
#include "sched/heuristics.h"
#include "serve/scripted_ingress.h"
#include "serve/serving_daemon.h"
#include "serve/serving_policy.h"
#include "testing/faultpoint.h"
#include "testing/fuzzer.h"
#include "testing/invariants.h"

namespace lsched {
namespace {

QueryPlan TinyPlan(int64_t rows = 20000) {
  PlanBuilder b(nullptr);
  PlanBuilder::NodeOptions src;
  src.input_rows = rows;
  const int s = b.AddSource(OperatorType::kSelect, 0, src);
  const int agg = b.AddOp(OperatorType::kHashAggregate, {s});
  b.AddOp(OperatorType::kFinalizeAggregate, {agg});
  auto plan = b.Build();
  EXPECT_TRUE(plan.ok());
  return std::move(plan).value();
}

int CountTerminal(const EpisodeResult& e) {
  return static_cast<int>(e.query_latencies.size()) + e.num_queries_cancelled +
         e.num_queries_failed + e.num_queries_shed;
}

struct InjectorCleaner {
  ~InjectorCleaner() { FaultInjector::Global().Clear(); }
};

// ---------------------------------------------------------------------------
// ScriptedIngress
// ---------------------------------------------------------------------------

TEST(ScriptedIngressTest, SortsEventsAndPackagesBothEngines) {
  std::vector<QueryPlan> plans;
  plans.push_back(TinyPlan(10000));
  plans.push_back(TinyPlan(30000));

  QueryTag hi;
  hi.tenant = 2;
  hi.priority = QueryPriority::kHigh;
  std::vector<IngressEvent> events;
  events.push_back(IngressEvent::Submit(0.5, 1));          // ordinal 1
  events.push_back(IngressEvent::Submit(0.1, 0, hi));      // ordinal 0
  events.push_back(IngressEvent::Cancel(0.3, 1));          // cancels ordinal 1
  ScriptedIngress ingress(std::move(events), std::move(plans));

  EXPECT_EQ(ingress.num_submissions(), 2);
  ASSERT_EQ(ingress.events().size(), 3u);
  // Stable-sorted by time: submit@0.1, cancel@0.3, submit@0.5.
  EXPECT_EQ(ingress.events()[0].kind, IngressEvent::Kind::kSubmit);
  EXPECT_EQ(ingress.events()[1].kind, IngressEvent::Kind::kCancel);
  EXPECT_EQ(ingress.events()[2].kind, IngressEvent::Kind::kSubmit);

  const auto sim = ingress.SimWorkload();
  ASSERT_EQ(sim.size(), 2u);
  EXPECT_DOUBLE_EQ(sim[0].arrival_time, 0.1);
  EXPECT_EQ(sim[0].tag.tenant, 2);
  EXPECT_EQ(sim[0].tag.priority, QueryPriority::kHigh);
  EXPECT_DOUBLE_EQ(sim[1].arrival_time, 0.5);

  const auto cancels = ingress.SimCancels();
  ASSERT_EQ(cancels.size(), 1u);
  EXPECT_EQ(cancels[0].query, 1);  // submission ordinal == sim QueryId
  EXPECT_DOUBLE_EQ(cancels[0].time, 0.3);

  // Real packaging scales times; a cancel-before-arrival stays before it.
  const auto real = ingress.RealWorkload(0.01);
  ASSERT_EQ(real.size(), 2u);
  EXPECT_DOUBLE_EQ(real[1].arrival_offset_seconds, 0.005);
  EXPECT_DOUBLE_EQ(ingress.RealCancels(0.01)[0].time, 0.003);
}

// ---------------------------------------------------------------------------
// ServingPolicy unit behaviour (hand-built context)
// ---------------------------------------------------------------------------

TEST(ServingPolicyTest, AdmissionBoundShedsAndDisplaces) {
  ServingPolicyConfig cfg;
  cfg.max_live_queries = 2;
  ServingPolicy policy(cfg);

  QueryPlan plan = TinyPlan();
  QueryState low0(0, plan, 0.0), low1(1, plan, 0.0), low2(2, plan, 1.0),
      high(3, plan, 2.0), high2(4, plan, 3.0);
  QueryTag low_tag;
  low_tag.priority = QueryPriority::kLow;
  low0.set_tag(low_tag);
  low1.set_tag(low_tag);
  low2.set_tag(low_tag);
  QueryTag high_tag;
  high_tag.priority = QueryPriority::kHigh;
  high.set_tag(high_tag);
  high2.set_tag(high_tag);

  SchedulingContext ctx;
  ctx.Reset();
  // Below the bound: everything is admitted.
  EXPECT_TRUE(policy.OnAdmission(low0, ctx, 0.0).admit);
  ctx.AddQuery(&low0);
  EXPECT_TRUE(policy.OnAdmission(low1, ctx, 0.0).admit);
  ctx.AddQuery(&low1);

  // At the bound, same priority: no strictly-lower victim exists, so shed.
  const AdmissionVerdict shed = policy.OnAdmission(low2, ctx, 1.0);
  EXPECT_FALSE(shed.admit);
  EXPECT_EQ(policy.num_shed(), 1);

  // At the bound, higher priority: admit by displacing the NEWEST pending
  // query of the lowest class (id 1, still ADMITTED).
  const AdmissionVerdict disp = policy.OnAdmission(high, ctx, 2.0);
  EXPECT_TRUE(disp.admit);
  EXPECT_EQ(disp.displace, 1);
  EXPECT_EQ(policy.num_displacements(), 1);
  // Mirror what the engine does with that verdict: the victim leaves the
  // live set and the arrival joins it.
  ctx.RemoveQuery(low1.id());
  ctx.AddQuery(&high);

  // A RUNNING query is never displaced (drain-don't-preempt), and a pending
  // query of the same class is not displaced either: shed.
  EXPECT_TRUE(low0.TransitionTo(QueryStatus::kRunning));
  const AdmissionVerdict shed2 = policy.OnAdmission(high2, ctx, 3.0);
  EXPECT_FALSE(shed2.admit);
  EXPECT_EQ(policy.num_shed(), 2);

  // Tenant accounting saw every consultation.
  const TenantStats* t0 = policy.tenants().stats(kDefaultTenant);
  ASSERT_NE(t0, nullptr);
  EXPECT_EQ(t0->arrived, 5);
  EXPECT_EQ(t0->admitted, 3);
}

TEST(ServingPolicyTest, FilterOrdersByPriorityThenWeightedDeficit) {
  ServingPolicyConfig cfg;
  cfg.tenant_weights = {{1, 4.0}};  // tenant 1 is entitled to 4x
  ServingPolicy policy(cfg);

  QueryPlan plan = TinyPlan();
  QueryState a(0, plan, 0.0), b(1, plan, 0.0), c(2, plan, 0.0);
  QueryTag t1;
  t1.tenant = 1;
  a.set_tag(t1);  // tenant 1, normal priority
  QueryTag t0_high;
  t0_high.priority = QueryPriority::kHigh;
  b.set_tag(t0_high);  // tenant 0, high priority
  // c: tenant 0, normal priority.
  a.AddAttainedService(4.0);  // weighted: 4/4 = 1.0
  c.AddAttainedService(2.0);  // weighted: 2/1 = 2.0

  SchedulingContext ctx;
  ctx.Reset();
  ctx.AddQuery(&a);
  ctx.AddQuery(&b);
  ctx.AddQuery(&c);

  SchedulingDecision d;
  d.pipelines.push_back(PipelineChoice{2, 0, 1});
  d.pipelines.push_back(PipelineChoice{0, 0, 1});
  d.pipelines.push_back(PipelineChoice{1, 0, 1});
  policy.FilterDecision(&d, ctx);

  ASSERT_EQ(d.pipelines.size(), 3u);
  // High priority first; then within kNormal the smaller weighted-service
  // (tenant 1's query a at 1.0 vs tenant 0's query c at 2.0).
  EXPECT_EQ(d.pipelines[0].query, 1);
  EXPECT_EQ(d.pipelines[1].query, 0);
  EXPECT_EQ(d.pipelines[2].query, 2);

  // Weighted thread caps appended for every live query (4:1 split of the
  // context's threads when two tenants are live).
  for (int i = 0; i < 5; ++i) {
    ThreadInfo t;
    t.id = i;
    ctx.AddThread(t);
  }
  d.parallelism.clear();
  policy.FilterDecision(&d, ctx);
  ASSERT_EQ(d.parallelism.size(), 3u);
  for (const ParallelismChoice& p : d.parallelism) {
    const QueryState* q = ctx.FindQuery(p.query);
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(p.max_threads, q->tag().tenant == 1 ? 4 : 1);
  }
}

// ---------------------------------------------------------------------------
// Deterministic simulated serving
// ---------------------------------------------------------------------------

TEST(SimServingTest, ByteIdenticalThousandQueryReplay) {
  FuzzerOptions opts;
  opts.num_tenants = 3;
  opts.high_priority_fraction = 0.2;
  opts.low_priority_fraction = 0.3;
  opts.script_queries = 1000;
  opts.script_arrival_mean_seconds = 0.002;  // overload: force real sheds
  opts.script_cancel_fraction = 0.08;
  WorkloadFuzzer fuzzer(1234, opts);
  const auto catalog = fuzzer.FuzzCatalog();
  const ScriptedIngress ingress = fuzzer.FuzzIngress(*catalog);
  ASSERT_EQ(ingress.num_submissions(), 1000);

  auto run = [&ingress]() {
    ServingDaemonConfig cfg;
    cfg.policy.max_live_queries = 8;
    cfg.policy.tenant_weights = {{0, 1.0}, {1, 2.0}, {2, 4.0}};
    cfg.sim.num_threads = 4;
    cfg.sim.seed = 99;
    ServingDaemon daemon(cfg);
    FifoScheduler fifo;
    return daemon.RunScript(ingress, &fifo);
  };

  const EpisodeResult a = run();
  const EpisodeResult b = run();
  EXPECT_EQ(DiffEpisodeResults(a, b), "") << "serving replay diverged";

  // Every submission reached exactly one terminal state.
  ASSERT_EQ(a.final_statuses.size(), 1000u);
  for (QueryStatus s : a.final_statuses) EXPECT_TRUE(IsTerminalStatus(s));
  EXPECT_EQ(CountTerminal(a), 1000);
  // The stream genuinely exercised the serving machinery.
  EXPECT_GT(a.num_queries_shed, 0);
  EXPECT_GT(static_cast<int>(a.query_latencies.size()), 0);
}

TEST(SimServingTest, ShedConservationUnderOverload) {
  ServingDaemonConfig cfg;
  cfg.policy.max_live_queries = 8;
  cfg.policy.displace_on_priority = false;  // pure shedding
  cfg.sim.num_threads = 2;
  ServingDaemon daemon(cfg);

  std::vector<QueryPlan> plans;
  plans.push_back(TinyPlan(40000));
  std::vector<IngressEvent> events;
  for (int i = 0; i < 60; ++i) {
    QueryTag tag;
    tag.tenant = i % 2;
    events.push_back(IngressEvent::Submit(0.001 * i, 0, tag));
  }
  ScriptedIngress ingress(std::move(events), std::move(plans));

  FifoScheduler fifo;
  const EpisodeResult result = daemon.RunScript(ingress, &fifo);

  ASSERT_EQ(result.final_statuses.size(), 60u);
  // admitted == completed + cancelled + failed + shed, with real shedding.
  EXPECT_EQ(CountTerminal(result), 60);
  EXPECT_GT(result.num_queries_shed, 0);
  EXPECT_GT(static_cast<int>(result.query_latencies.size()), 0);
  // The policy's door-shed count is the engine's shed count (displacement
  // off, so no other path sheds).
  EXPECT_EQ(daemon.policy().num_shed(), result.num_queries_shed);

  // Per-tenant conservation: every consultation ended in a terminal state.
  int64_t arrived = 0, terminal = 0;
  for (TenantId t : daemon.tenants().ids()) {
    const TenantStats* s = daemon.tenants().stats(t);
    ASSERT_NE(s, nullptr);
    arrived += s->arrived;
    terminal += s->Terminal();
  }
  EXPECT_EQ(arrived, 60);
  EXPECT_EQ(terminal, 60);
}

TEST(SimServingTest, NoPriorityInversionUnderLowPriorityFlood) {
  ServingDaemonConfig cfg;
  cfg.policy.max_live_queries = 8;
  cfg.sim.num_threads = 4;
  ServingDaemon daemon(cfg);

  std::vector<QueryPlan> plans;
  plans.push_back(TinyPlan(40000));
  std::vector<IngressEvent> events;
  QueryTag low;
  low.tenant = 0;
  low.priority = QueryPriority::kLow;
  for (int i = 0; i < 48; ++i) {
    events.push_back(IngressEvent::Submit(0.01 * i, 0, low));
  }
  QueryTag high;
  high.tenant = 1;
  high.priority = QueryPriority::kHigh;
  for (int i = 0; i < 6; ++i) {
    events.push_back(IngressEvent::Submit(0.2 + 0.05 * i, 0, high));
  }
  ScriptedIngress ingress(std::move(events), std::move(plans));

  FifoScheduler fifo;
  const EpisodeResult result = daemon.RunScript(ingress, &fifo);
  EXPECT_EQ(CountTerminal(result), 54);

  // Every high-priority query completed — the flood never shed or starved
  // one (displacement at the admission door + decision-filter ordering).
  const TenantStats* hi = daemon.tenants().stats(1);
  ASSERT_NE(hi, nullptr);
  EXPECT_EQ(hi->completed, 6);
  EXPECT_EQ(hi->shed, 0);
  EXPECT_GT(daemon.policy().num_displacements(), 0);

  // And they completed faster than the flood's survivors.
  const TenantStats* lo = daemon.tenants().stats(0);
  ASSERT_NE(lo, nullptr);
  ASSERT_GT(lo->completed, 0);
  EXPECT_LT(hi->latency_p50.Value(), lo->latency_p50.Value());
}

/// Observes per-tenant attained-service shares at the moment the weighted
/// tenant finishes its stream (while contention is still live).
class ShareProbe : public ServingPolicy {
 public:
  ShareProbe(ServingPolicyConfig cfg, int heavy_tenant, int64_t heavy_total)
      : ServingPolicy(std::move(cfg)),
        heavy_tenant_(heavy_tenant),
        heavy_total_(heavy_total) {}

  void OnQueryTerminal(const QueryState& q, double now) override {
    ServingPolicy::OnQueryTerminal(q, now);
    if (heavy_service_ < 0.0) {
      const TenantStats* heavy = tenants().stats(heavy_tenant_);
      if (heavy != nullptr && heavy->completed == heavy_total_) {
        heavy_service_ = heavy->service_seconds;
        const TenantStats* light = tenants().stats(1 - heavy_tenant_);
        light_service_ = light != nullptr ? light->service_seconds : 0.0;
      }
    }
  }

  double heavy_service() const { return heavy_service_; }
  double light_service() const { return light_service_; }

 private:
  int heavy_tenant_;
  int64_t heavy_total_;
  double heavy_service_ = -1.0;
  double light_service_ = -1.0;
};

TEST(SimServingTest, WeightedFairShareConverges) {
  ServingPolicyConfig pcfg;
  pcfg.max_live_queries = 0;  // unbounded: fairness, not admission
  pcfg.tenant_weights = {{0, 1.0}, {1, 3.0}};
  ShareProbe probe(pcfg, /*heavy_tenant=*/1, /*heavy_total=*/20);

  SimEngineConfig cfg;
  cfg.num_threads = 4;
  cfg.hooks = &probe;
  SimEngine engine(cfg);

  std::vector<QuerySubmission> workload;
  for (int i = 0; i < 40; ++i) {
    QuerySubmission sub;
    sub.plan = TinyPlan(40000);
    sub.arrival_time = 1e-4 * i;
    sub.tag.tenant = i % 2;  // interleaved equal load per tenant
    workload.push_back(std::move(sub));
  }
  FifoScheduler fifo;
  const EpisodeResult result = engine.Run(workload, &fifo);
  EXPECT_EQ(static_cast<int>(result.query_latencies.size()), 40);

  // When the weight-3 tenant finished its 20 queries, it must have attained
  // clearly more service than the weight-1 tenant — the shares track the
  // 3:1 weights during contention (exact ratio depends on quantization of
  // 4 threads, hence the loose bound).
  ASSERT_GE(probe.heavy_service(), 0.0) << "probe never triggered";
  EXPECT_GT(probe.heavy_service(), 1.5 * probe.light_service())
      << "heavy=" << probe.heavy_service()
      << " light=" << probe.light_service();
}

// ---------------------------------------------------------------------------
// Chaos: Sim == Real terminal statuses with the serving stack installed
// ---------------------------------------------------------------------------

TEST(ChaosServingTest, SimAndRealAgreeOnTerminalStatuses) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "built with -DLSCHED_FAULTS=OFF";
  FuzzerOptions opts;
  opts.chaos = true;
  opts.min_queries = 6;
  opts.max_queries = 10;
  opts.num_tenants = 3;
  opts.high_priority_fraction = 0.25;
  opts.low_priority_fraction = 0.25;
  WorkloadFuzzer fuzzer(77, opts);
  InjectorCleaner cleaner;

  for (int round = 0; round < 3; ++round) {
    FuzzedWorkload w = fuzzer.NextWorkload();
    const size_t n = w.sim_queries.size();

    // Unbounded admission: chaos terminal statuses must stay timing-
    // independent, so the serving layer must not shed based on load here.
    ServingPolicyConfig pcfg;
    pcfg.max_live_queries = 0;

    ServingPolicy sim_policy(pcfg);
    FaultInjector::Global().Install(w.faults);
    SimEngineConfig scfg;
    scfg.num_threads = 4;
    scfg.cancels = w.cancels;
    scfg.hooks = &sim_policy;
    SimEngine sim(scfg);
    FifoScheduler sim_fifo;
    const EpisodeResult sim_result = sim.Run(w.sim_queries, &sim_fifo);

    ServingPolicy real_policy(pcfg);
    FaultInjector::Global().Install(w.faults);  // fresh per-rule RNG state
    RealEngineConfig rcfg;
    rcfg.num_threads = 4;
    rcfg.chunk_rows = 128;
    rcfg.cancels = w.cancels;
    rcfg.hooks = &real_policy;
    RealEngine real(w.catalog.get(), rcfg);
    FifoScheduler real_fifo;
    const RealRunResult real_result = real.Run(w.real_queries, &real_fifo);

    ASSERT_EQ(sim_result.final_statuses.size(), n);
    ASSERT_EQ(real_result.episode.final_statuses.size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(sim_result.final_statuses[i], w.expected_statuses[i])
          << "sim query " << i << " (seed " << w.seed << ")";
      EXPECT_EQ(real_result.episode.final_statuses[i], w.expected_statuses[i])
          << "real query " << i << " (seed " << w.seed << ")";
    }

    // Tenant accounting agrees across engines (same tags, same statuses).
    for (TenantId t : sim_policy.tenants().ids()) {
      const TenantStats* s = sim_policy.tenants().stats(t);
      const TenantStats* r = real_policy.tenants().stats(t);
      ASSERT_NE(r, nullptr) << "tenant " << t << " missing on real";
      EXPECT_EQ(s->completed, r->completed) << "tenant " << t;
      EXPECT_EQ(s->cancelled, r->cancelled) << "tenant " << t;
      EXPECT_EQ(s->failed, r->failed) << "tenant " << t;
      EXPECT_EQ(s->shed, r->shed) << "tenant " << t;
    }
    FaultInjector::Global().Clear();
  }
}

// ---------------------------------------------------------------------------
// Live serving (RealEngine daemon mode)
// ---------------------------------------------------------------------------

TEST(RealServingTest, ReplayedStreamDrainsWithFullAccounting) {
  FuzzerOptions opts;
  opts.num_tenants = 2;
  opts.high_priority_fraction = 0.2;
  opts.low_priority_fraction = 0.2;
  opts.script_queries = 40;
  opts.script_cancel_fraction = 0.1;
  WorkloadFuzzer fuzzer(5, opts);
  const auto catalog = fuzzer.FuzzCatalog();
  const ScriptedIngress ingress = fuzzer.FuzzIngress(*catalog);

  ServingDaemonConfig cfg;
  cfg.policy.max_live_queries = 64;
  cfg.real.num_threads = 4;
  cfg.real.chunk_rows = 256;
  cfg.real.flush_window_queries = 4;
  ServingDaemon daemon(cfg);
  FifoScheduler fifo;
  daemon.Start(catalog.get(), &fifo);
  EXPECT_TRUE(daemon.serving());

  const std::vector<QueryId> ids = daemon.Replay(ingress, /*time_scale=*/0.0);
  ASSERT_EQ(static_cast<int>(ids.size()), ingress.num_submissions());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<QueryId>(i)) << "ids must be contiguous";
  }

  // Let the stream run to completion before draining: Stop() sheds
  // queued-but-unadmitted work by design, and this test is about the
  // zero-loss completion path, not the drain-shed path.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline &&
           CountTerminal(daemon.Snapshot()) < static_cast<int>(ids.size())) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  const RealRunResult result = daemon.Stop();
  EXPECT_FALSE(daemon.serving());

  // Zero-loss: every submission terminal, conservation exact.
  ASSERT_EQ(result.episode.final_statuses.size(), ids.size());
  for (QueryStatus s : result.episode.final_statuses) {
    EXPECT_TRUE(IsTerminalStatus(s));
  }
  EXPECT_EQ(CountTerminal(result.episode), static_cast<int>(ids.size()));
  EXPECT_GT(static_cast<int>(result.episode.query_latencies.size()), 0);

  int64_t arrived = 0, terminal = 0;
  for (TenantId t : daemon.tenants().ids()) {
    const TenantStats* s = daemon.tenants().stats(t);
    arrived += s->arrived;
    terminal += s->Terminal();
  }
  EXPECT_EQ(arrived, static_cast<int64_t>(ids.size()));
  EXPECT_EQ(terminal, static_cast<int64_t>(ids.size()));
}

TEST(RealServingTest, GracefulDrainRacingSubmittersLosesNothing) {
  FuzzerOptions opts;
  WorkloadFuzzer fuzzer(11, opts);
  const auto catalog = fuzzer.FuzzCatalog();
  std::vector<QueryPlan> plans;
  for (int i = 0; i < 3; ++i) plans.push_back(fuzzer.FuzzPlan(*catalog));

  ServingDaemonConfig cfg;
  cfg.policy.max_live_queries = 16;
  cfg.real.num_threads = 3;
  cfg.real.chunk_rows = 256;
  ServingDaemon daemon(cfg);
  FifoScheduler fifo;
  daemon.Start(catalog.get(), &fifo);

  constexpr int kSubmitters = 3;
  std::vector<std::vector<QueryId>> accepted(kSubmitters);
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < 400; ++i) {
        QueryTag tag;
        tag.tenant = s;
        const QueryId id = daemon.Submit(plans[i % plans.size()], tag);
        if (id == kInvalidQuery) break;  // draining: ingress closed
        accepted[s].push_back(id);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  const RealRunResult result = daemon.Stop();  // races the submitters
  for (std::thread& t : submitters) t.join();

  std::vector<QueryId> all;
  for (const auto& ids : accepted) {
    all.insert(all.end(), ids.begin(), ids.end());
  }
  std::sort(all.begin(), all.end());

  // Every accepted id exists, exactly once, and reached a terminal state:
  // nothing lost, nothing double-counted when Stop() raced dispatch.
  ASSERT_EQ(result.episode.final_statuses.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], static_cast<QueryId>(i))
        << "accepted ids must be exactly 0..N-1";
    EXPECT_TRUE(IsTerminalStatus(result.episode.final_statuses[i]));
  }
  EXPECT_EQ(CountTerminal(result.episode), static_cast<int>(all.size()));
}

TEST(RealServingTest, RollingSnapshotIsExactMidStream) {
  FuzzerOptions opts;
  WorkloadFuzzer fuzzer(21, opts);
  const auto catalog = fuzzer.FuzzCatalog();
  QueryPlan plan = fuzzer.FuzzPlan(*catalog);

  ServingDaemonConfig cfg;
  cfg.real.num_threads = 2;
  cfg.real.chunk_rows = 256;
  cfg.real.flush_window_queries = 1;  // refresh the snapshot every terminal
  ServingDaemon daemon(cfg);
  FifoScheduler fifo;
  daemon.Start(catalog.get(), &fifo);

  auto wait_for_terminal = [&](int target) {
    EpisodeResult snap;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      snap = daemon.Snapshot();
      if (CountTerminal(snap) >= target) return snap;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ADD_FAILURE() << "timed out waiting for " << target
                  << " terminal queries in the snapshot";
    return snap;
  };

  // Mid-stream snapshots must be internally exact without any episode-end
  // flush: one query at a time, assert after each.
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(daemon.Submit(plan), kInvalidQuery);
    const EpisodeResult snap = wait_for_terminal(i + 1);
    EXPECT_EQ(CountTerminal(snap), i + 1);
    ASSERT_EQ(snap.query_latencies.size(), snap.query_arrivals.size());
    ASSERT_EQ(snap.query_latencies.size(), snap.query_completions.size());
    double sum = 0.0;
    for (size_t k = 0; k < snap.query_latencies.size(); ++k) {
      EXPECT_NEAR(snap.query_latencies[k],
                  snap.query_completions[k] - snap.query_arrivals[k], 1e-12);
      sum += snap.query_latencies[k];
    }
    if (!snap.query_latencies.empty()) {
      EXPECT_NEAR(snap.avg_latency, sum / snap.query_latencies.size(), 1e-12)
          << "snapshot aggregates must be recomputed per window";
    }
  }

  const RealRunResult result = daemon.Stop();
  EXPECT_EQ(CountTerminal(result.episode), 3);
}

// ---------------------------------------------------------------------------
// /healthz draining flip
// ---------------------------------------------------------------------------

std::string HttpGet(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
  ::send(fd, req.data(), req.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ServingHealthzTest, DrainWindowAnswers503) {
  obs::MetricsExporter exporter;
  if (!exporter.Start(0)) {
    GTEST_SKIP() << "exporter unavailable (built with -DLSCHED_OBS=OFF?)";
  }
  obs::SetDraining(false);
  const std::string healthy = HttpGet(exporter.port(), "/healthz");
  EXPECT_NE(healthy.find("200 OK"), std::string::npos);
  EXPECT_NE(healthy.find("ok"), std::string::npos);

  obs::SetDraining(true);
  const std::string draining = HttpGet(exporter.port(), "/healthz");
  EXPECT_NE(draining.find("503"), std::string::npos);
  EXPECT_NE(draining.find("draining"), std::string::npos);

  obs::SetDraining(false);
  const std::string recovered = HttpGet(exporter.port(), "/healthz");
  EXPECT_NE(recovered.find("200 OK"), std::string::npos);
  exporter.Stop();
}

}  // namespace
}  // namespace lsched

// Scenario: a nightly batch of report queries (the paper's batching mode —
// "the user provides a script with all queries that need to run in
// advance"). All queries arrive at t=0 and the system runs fully loaded;
// this is where the paper finds learned scheduling has the biggest impact
// (Fig. 8b). Trains LSched on batched JOB-shaped episodes and compares.
//
//   ./build/examples/batch_reporting
#include <cstdio>

#include "core/agent.h"
#include "core/trainer.h"
#include "sched/heuristics.h"
#include "workload/workload.h"

using namespace lsched;

int main() {
  SimEngineConfig engine_cfg;
  engine_cfg.num_threads = 16;
  SimEngine engine(engine_cfg);

  std::printf("training LSched on batched JOB episodes...\n");
  LSchedConfig model_cfg;
  model_cfg.hidden_dim = 12;
  model_cfg.summary_dim = 12;
  model_cfg.head_hidden = 16;
  LSchedModel model(model_cfg);
  TrainConfig train_cfg;
  train_cfg.episodes = 12;
  ReinforceTrainer trainer(&model, &engine, train_cfg);
  trainer.Train([](int ep, Rng* rng) {
    WorkloadConfig cfg;
    cfg.benchmark = Benchmark::kJob;
    cfg.split = WorkloadSplit::kTrain;
    cfg.batch = true;
    cfg.num_queries =
        8 + static_cast<int>(rng->UniformInt(uint64_t{8}));
    (void)ep;
    return GenerateWorkload(cfg, rng);
  });

  WorkloadConfig eval_cfg;
  eval_cfg.benchmark = Benchmark::kJob;
  eval_cfg.split = WorkloadSplit::kTest;
  eval_cfg.batch = true;
  eval_cfg.num_queries = 24;
  Rng rng(77);
  const auto batch = GenerateWorkload(eval_cfg, &rng);

  LSchedAgent lsched(&model);
  FairScheduler fair;
  QuickstepScheduler quickstep;
  CriticalPathScheduler cp;
  std::printf("\nnightly batch: %d held-out JOB queries, all at t=0:\n",
              eval_cfg.num_queries);
  std::printf("%-12s %10s %10s %10s\n", "scheduler", "avg(s)", "p90(s)",
              "makespan");
  for (auto& [name, sched] :
       std::vector<std::pair<const char*, Scheduler*>>{
           {"LSched", &lsched},
           {"Fair", &fair},
           {"Quickstep", &quickstep},
           {"CriticalPath", &cp}}) {
    const EpisodeResult r = engine.Run(batch, sched);
    std::printf("%-12s %10.3f %10.3f %10.3f\n", name, r.avg_latency,
                r.p90_latency, r.makespan);
  }
  return 0;
}

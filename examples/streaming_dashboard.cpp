// Scenario: an interactive analytics dashboard fires ad-hoc queries at an
// in-memory engine while periodic report queries stream in — the dynamic
// mixed workload the paper's introduction motivates. Compares a trained
// LSched policy against the engine's built-in heuristics on latency AND
// tail latency (LSched's reward optimizes both, §6).
//
//   ./build/examples/streaming_dashboard
#include <cstdio>

#include "core/agent.h"
#include "core/trainer.h"
#include "sched/heuristics.h"
#include "workload/workload.h"

using namespace lsched;

namespace {

/// Mixed stream: frequent cheap dashboard queries (SSB flight 1 shapes at
/// small scale) interleaved with occasional heavy report queries (full
/// 4-dimension flights at SF 50).
std::vector<QuerySubmission> DashboardWorkload(int n, uint64_t seed) {
  Rng rng(seed);
  const auto specs = TemplatesOf(Benchmark::kSsb);
  std::vector<QuerySubmission> out;
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    const bool heavy = rng.Uniform() < 0.2;
    const int tmpl = heavy ? 10 + static_cast<int>(rng.UniformInt(uint64_t{3}))
                           : static_cast<int>(rng.UniformInt(uint64_t{3}));
    const int sf = heavy ? 50 : 2;
    auto plan = InstantiateTemplate(Benchmark::kSsb,
                                    specs[static_cast<size_t>(tmpl)], sf, &rng);
    t += rng.Exponential(0.08);
    out.push_back({std::move(plan).value(), t});
  }
  return out;
}

}  // namespace

int main() {
  SimEngineConfig engine_cfg;
  engine_cfg.num_threads = 16;
  SimEngine engine(engine_cfg);

  std::printf("training LSched on the dashboard workload distribution...\n");
  LSchedConfig model_cfg;
  model_cfg.hidden_dim = 12;
  model_cfg.summary_dim = 12;
  model_cfg.head_hidden = 16;
  LSchedModel model(model_cfg);
  TrainConfig train_cfg;
  train_cfg.episodes = 30;
  train_cfg.learning_rate = 2e-3;
  ReinforceTrainer trainer(&model, &engine, train_cfg);
  trainer.Train([](int ep, Rng* rng) {
    return DashboardWorkload(
        10 + static_cast<int>(rng->UniformInt(uint64_t{15})),
        1000 + static_cast<uint64_t>(ep));
  });

  const auto workload = DashboardWorkload(40, 9999);
  LSchedAgent lsched(&model);
  FairScheduler fair;
  QuickstepScheduler quickstep;
  FifoScheduler fifo;

  std::printf("\n40 mixed dashboard+report queries, 16 threads:\n");
  std::printf("%-10s %10s %10s %10s\n", "scheduler", "avg(s)", "p90(s)",
              "makespan");
  for (auto& [name, sched] :
       std::vector<std::pair<const char*, Scheduler*>>{
           {"LSched", &lsched},
           {"Fair", &fair},
           {"Quickstep", &quickstep},
           {"FIFO", &fifo}}) {
    const EpisodeResult r = engine.Run(workload, sched);
    std::printf("%-10s %10.3f %10.3f %10.3f\n", name, r.avg_latency,
                r.p90_latency, r.makespan);
  }
  std::printf("\nNote how FIFO stalls cheap dashboard queries behind heavy "
              "reports (p90).\n");
  return 0;
}

// Quickstart: build a tiny in-memory database, construct a query plan,
// execute it with real worker threads under a heuristic scheduler, then
// train a small LSched model on simulated workloads and serve it.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/agent.h"
#include "core/trainer.h"
#include "exec/real_engine.h"
#include "plan/plan_builder.h"
#include "sched/heuristics.h"
#include "storage/table_generator.h"
#include "workload/workload.h"

using namespace lsched;

int main() {
  // ---------------------------------------------------------------- 1. data
  // A dimension table with a unique key and a fact table referencing it.
  Catalog catalog;
  Rng rng(42);
  TableSpec users;
  users.name = "users";
  users.num_rows = 10000;
  users.columns = {
      {"id", DataType::kInt64, ColumnDistribution::kSequential, 0, 0, 0},
      {"age", DataType::kInt64, ColumnDistribution::kUniformInt, 18, 80, 0}};
  TableSpec clicks;
  clicks.name = "clicks";
  clicks.num_rows = 80000;
  clicks.columns = {
      {"user_id", DataType::kInt64, ColumnDistribution::kForeignKey, 0,
       10000, 0},
      {"amount", DataType::kDouble, ColumnDistribution::kUniformReal, 0, 100,
       0}};
  const RelationId users_id = *catalog.AddRelation(GenerateTable(users, &rng));
  const RelationId clicks_id =
      *catalog.AddRelation(GenerateTable(clicks, &rng));
  std::printf("catalog: users=%lld rows, clicks=%lld rows\n",
              static_cast<long long>(catalog.relation(users_id).num_rows()),
              static_cast<long long>(catalog.relation(clicks_id).num_rows()));

  // ------------------------------------------------------------- 2. a query
  // SELECT count(*) FROM clicks JOIN users ON user_id = id
  // WHERE amount BETWEEN 20 AND 60;
  PlanBuilder builder(&catalog);
  const int users_scan =
      builder.AddSource(OperatorType::kTableScan, users_id, {});
  PlanBuilder::NodeOptions build_opts;
  build_opts.kernel.build_key = 0;  // users.id
  const int build =
      builder.AddOp(OperatorType::kBuildHash, {users_scan}, build_opts);
  PlanBuilder::NodeOptions scan_opts;
  scan_opts.selectivity = 0.4;
  scan_opts.kernel.filter_column = 1;  // clicks.amount
  scan_opts.kernel.filter_lo = 20.0;
  scan_opts.kernel.filter_hi = 60.0;
  const int clicks_scan =
      builder.AddSource(OperatorType::kSelect, clicks_id, scan_opts);
  PlanBuilder::NodeOptions probe_opts;
  probe_opts.kernel.probe_key = 0;  // clicks.user_id
  const int join = builder.AddOp(OperatorType::kProbeHash,
                                 {clicks_scan, build}, probe_opts);
  PlanBuilder::NodeOptions agg_opts;
  agg_opts.kernel.agg_fn = AggFn::kCount;
  builder.AddOp(OperatorType::kHashAggregate, {join}, agg_opts);
  auto plan = builder.Build();
  if (!plan.ok()) {
    std::printf("plan error: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  // ----------------------------------------------- 3. real threaded execution
  RealEngineConfig engine_cfg;
  engine_cfg.num_threads = 4;
  RealEngine engine(&catalog, engine_cfg);
  FairScheduler fair;
  std::vector<RealQuerySubmission> workload;
  workload.push_back({*plan, 0.0});
  const RealRunResult result = engine.Run(workload, &fair);
  std::printf("join count = %.0f (latency %.3fs on %d real threads)\n",
              result.sink_checksums[0], result.episode.query_latencies[0],
              engine_cfg.num_threads);

  // ------------------------------------- 4. train a learned scheduler (sim)
  std::printf("\ntraining a small LSched model (simulated episodes)...\n");
  LSchedConfig model_cfg;
  model_cfg.hidden_dim = 8;
  model_cfg.summary_dim = 8;
  model_cfg.head_hidden = 8;
  LSchedModel model(model_cfg);
  SimEngineConfig sim_cfg;
  sim_cfg.num_threads = 8;
  SimEngine sim(sim_cfg);
  TrainConfig train_cfg;
  train_cfg.episodes = 40;
  ReinforceTrainer trainer(&model, &sim, train_cfg);
  const TrainStats stats =
      trainer.Train(MakeEpisodeFactory(Benchmark::kSsb, 5, 10, 0.05, 0.1, {2}));
  std::printf("episode rewards: first=%.2f last=%.2f\n",
              stats.episode_reward.front(), stats.episode_reward.back());

  // ------------------------------------------------ 5. serve the policy
  WorkloadConfig eval_cfg;
  eval_cfg.benchmark = Benchmark::kSsb;
  eval_cfg.num_queries = 20;
  eval_cfg.mean_interarrival_seconds = 0.03;  // contended system
  eval_cfg.scale_factors = {2};
  Rng eval_rng(7);
  const auto eval_workload = GenerateWorkload(eval_cfg, &eval_rng);
  LSchedAgent agent(&model);  // greedy serving mode
  const EpisodeResult lsched_run = sim.Run(eval_workload, &agent);
  const EpisodeResult fair_run = sim.Run(eval_workload, &fair);
  std::printf("eval avg latency: LSched=%.3fs Fair=%.3fs\n",
              lsched_run.avg_latency, fair_run.avg_latency);
  return 0;
}

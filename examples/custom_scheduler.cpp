// Scenario: extending the library with your own scheduling policy. The
// Scheduler interface is the same one the engines drive LSched through, so
// a custom policy immediately works on both the simulator and the real
// threaded engine. This example implements a deadline-aware policy that
// boosts queries older than an SLA threshold, and validates it against the
// built-in heuristics.
//
// It overrides the API v2 entry point — Schedule(event, SchedulingContext)
// (DESIGN.md §9): the context is a live, incrementally-maintained view
// (O(1) FindQuery / free-thread count, per-query change versions), not a
// per-event snapshot rebuild. Policies that only implement the legacy
// Schedule(event, SystemState) overload keep working through an automatic
// bridge.
//
//   ./build/examples/custom_scheduler
#include <algorithm>
#include <cstdio>

#include "exec/scheduler.h"
#include "exec/scheduling_context.h"
#include "sched/heuristics.h"
#include "workload/workload.h"

using namespace lsched;

namespace {

/// Oldest-past-deadline first; otherwise shortest-remaining-first. Each
/// chosen query gets full pipelines and a bounded thread share.
class SlaScheduler : public Scheduler {
 public:
  explicit SlaScheduler(double sla_seconds) : sla_(sla_seconds) {}

  std::string name() const override { return "SLA"; }

  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override {
    (void)event;
    SchedulingDecision d;
    // Rank: past-deadline queries first (oldest first), then by estimated
    // remaining work.
    std::vector<QueryState*> order;
    for (QueryState* q : ctx.queries()) {
      if (!q->SchedulableOps().empty()) order.push_back(q);
    }
    std::sort(order.begin(), order.end(), [&](QueryState* a, QueryState* b) {
      const double age_a = ctx.now() - a->arrival_time();
      const double age_b = ctx.now() - b->arrival_time();
      const bool late_a = age_a > sla_;
      const bool late_b = age_b > sla_;
      if (late_a != late_b) return late_a;
      if (late_a) return age_a > age_b;
      return a->EstimateQueryRemainingSeconds() <
             b->EstimateQueryRemainingSeconds();
    });
    const int total = ctx.total_threads();
    int budget = ctx.num_free_threads();
    for (QueryState* q : order) {
      if (budget <= 0) break;
      for (int root : q->SchedulableOps()) {
        const std::vector<int> chain = q->ValidPipelineFrom(root);
        // Moderate pipelining: at most 3 stages (avoids buffer thrash).
        const int degree =
            std::min<int>(3, static_cast<int>(chain.size()));
        d.pipelines.push_back(PipelineChoice{q->id(), root, degree});
      }
      const int share = std::max(1, total / 2);
      d.parallelism.push_back(ParallelismChoice{q->id(), share});
      budget -= share;
    }
    return d;
  }

 private:
  double sla_;
};

}  // namespace

int main() {
  WorkloadConfig wcfg;
  wcfg.benchmark = Benchmark::kJob;
  wcfg.num_queries = 30;
  wcfg.mean_interarrival_seconds = 0.05;
  Rng rng(21);
  const auto workload = GenerateWorkload(wcfg, &rng);

  SimEngineConfig ecfg;
  ecfg.num_threads = 16;
  SimEngine engine(ecfg);

  SlaScheduler sla(1.0);
  FairScheduler fair;
  SjfScheduler sjf;
  std::printf("30 JOB queries, 16 threads:\n");
  std::printf("%-8s %10s %10s %12s\n", "policy", "avg(s)", "p90(s)",
              "#actions");
  for (auto& [name, sched] : std::vector<std::pair<const char*, Scheduler*>>{
           {"SLA", &sla}, {"Fair", &fair}, {"SJF", &sjf}}) {
    const EpisodeResult r = engine.Run(workload, sched);
    std::printf("%-8s %10.3f %10.3f %12d\n", name, r.avg_latency,
                r.p90_latency, r.num_actions);
  }
  return 0;
}

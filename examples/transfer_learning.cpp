// Scenario: a deployed LSched model trained on one workload (TPCH-shaped)
// is moved to a new workload (SSB-shaped) — §6's transfer learning: freeze
// the inner convolution/hidden layers, retrain only the boundary layers,
// and converge in fewer episodes than training from scratch.
//
//   ./build/examples/transfer_learning
#include <cstdio>

#include "core/agent.h"
#include "core/trainer.h"
#include "util/math_util.h"
#include "workload/workload.h"

using namespace lsched;

namespace {

LSchedConfig SmallConfig() {
  LSchedConfig cfg;
  cfg.hidden_dim = 12;
  cfg.summary_dim = 12;
  cfg.head_hidden = 16;
  return cfg;
}

}  // namespace

int main() {
  SimEngineConfig engine_cfg;
  engine_cfg.num_threads = 16;
  SimEngine engine(engine_cfg);

  // 1. Train the source model on TPCH-shaped episodes.
  std::printf("training source model (TPCH shapes)...\n");
  LSchedModel source(SmallConfig());
  TrainConfig train_cfg;
  train_cfg.episodes = 25;
  {
    ReinforceTrainer trainer(&source, &engine, train_cfg);
    trainer.Train(MakeEpisodeFactory(Benchmark::kTpch, 8, 16, 0.05, 0.12,
                                     {2, 5}));
  }
  const std::string checkpoint = "/tmp/lsched_transfer_example.model";
  if (!source.Save(checkpoint).ok()) return 1;
  std::printf("checkpoint written to %s (%zu params, %zu weights)\n",
              checkpoint.c_str(), source.params()->size(),
              source.params()->NumWeights());

  // 2. New workload arrives: SSB. Warm-start + freeze vs from scratch.
  auto train_on_ssb = [&](LSchedModel* model, const char* label) {
    ReinforceTrainer trainer(model, &engine, train_cfg);
    const TrainStats stats = trainer.Train(
        MakeEpisodeFactory(Benchmark::kSsb, 8, 16, 0.05, 0.12, {2, 5}));
    const size_t n = stats.episode_reward.size();
    std::vector<double> early(stats.episode_reward.begin(),
                              stats.episode_reward.begin() + 5);
    std::vector<double> late(stats.episode_reward.end() - 5,
                             stats.episode_reward.end());
    std::printf("%-12s first-5 episode reward=%9.2f  last-5=%9.2f  (n=%zu)\n",
                label, Mean(early), Mean(late), n);
  };

  LSchedModel with_tl(SmallConfig());
  if (!with_tl.Load(checkpoint).ok()) return 1;
  const int frozen = with_tl.FreezeForTransfer();
  std::printf("\ntransfer: froze %d parameter tensors; retraining boundary "
              "layers on SSB\n", frozen);
  train_on_ssb(&with_tl, "with TL");

  LSchedModel scratch(SmallConfig());
  train_on_ssb(&scratch, "from scratch");

  std::printf("\nWith transfer the model starts from meaningful embeddings "
              "(higher early reward)\nand needs fewer episodes to adapt — "
              "Fig. 14b's effect.\n");
  return 0;
}

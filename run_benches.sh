#!/bin/bash
# Runs every figure-reproduction benchmark and the micro-benchmarks.
# Scale with LSCHED_EPISODES / LSCHED_EVAL_QUERIES / LSCHED_THREADS.
set -u
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "### $b"
  "$b" 2> >(grep '\[bench\]' >&2) || echo "(exit $?)"
  echo
done

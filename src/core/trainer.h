#ifndef LSCHED_CORE_TRAINER_H_
#define LSCHED_CORE_TRAINER_H_

#include <functional>
#include <string>
#include <vector>

#include "core/agent.h"
#include "core/experience.h"
#include "core/reward.h"
#include "exec/sim_engine.h"
#include "nn/optimizer.h"

namespace lsched {

struct TrainConfig {
  int episodes = 200;
  double learning_rate = 1e-3;
  double entropy_coef = 0.01;
  /// Probability of a uniformly-random sub-action during training episodes
  /// (keeps exploration alive once the policy sharpens).
  double exploration_epsilon = 0.05;
  double grad_clip = 5.0;
  RewardConfig reward;
  uint64_t seed = 31;
  /// Emit an INFO log line every this many episodes (0 = silent).
  int log_every = 0;
  /// Tag prefix for the scalar event stream (obs/scalar_events.h): one
  /// event per episode under `<prefix>.reward`, `<prefix>.policy_entropy`,
  /// `<prefix>.grad_norm_preclip`, ... Distinct prefixes keep concurrent
  /// trainers' learning curves separable (e.g. fig14b's with/without-TL
  /// pair).
  std::string telemetry_prefix = "train";
};

struct TrainStats {
  /// Average query latency of each training episode (sampled policy).
  std::vector<double> episode_avg_latency;
  /// Total reward of each episode (the Fig. 14b y-axis).
  std::vector<double> episode_reward;
  /// Policy-gradient decisions processed in total.
  int total_decisions = 0;
};

/// Generates the workload for training episode `episode` (paper §7.1:
/// episodes vary query counts and arrival rates).
using WorkloadFactory =
    std::function<std::vector<QuerySubmission>(int episode, Rng* rng)>;

/// REINFORCE policy-gradient trainer (paper §6): runs episodes on the
/// simulator with the agent sampling actions, computes the average+tail
/// latency rewards, and replays each recorded decision to accumulate
/// log-prob gradients weighted by baselined advantages.
class ReinforceTrainer {
 public:
  ReinforceTrainer(LSchedModel* model, SimEngine* engine, TrainConfig config);

  /// Full training run; `factory` supplies one workload per episode.
  TrainStats Train(const WorkloadFactory& factory);

  /// Runs one episode + one gradient update; returns the episode's total
  /// reward. Exposed for tests and for the incremental training curves of
  /// Fig. 14.
  double TrainOneEpisode(const std::vector<QuerySubmission>& workload);

  ExperienceManager* experience_manager() { return &experience_; }

 private:
  /// Per-update telemetry surfaced by UpdateFromLatestEpisode for the
  /// scalar event stream.
  struct UpdateTelemetry {
    double mean_entropy = 0.0;
    double grad_norm_preclip = 0.0;
    double grad_norm_postclip = 0.0;
    int decisions = 0;
  };

  UpdateTelemetry UpdateFromLatestEpisode();
  /// The single instrumentation path for per-episode model-quality data:
  /// appends to TrainStats, the scalar event stream, and the registry
  /// gauges from the same values, so the three sinks cannot diverge.
  void RecordEpisodeTelemetry(const EpisodeResult& result,
                              double total_reward, double return_variance,
                              const UpdateTelemetry& update);

  LSchedModel* model_;
  SimEngine* engine_;
  TrainConfig config_;
  LSchedAgent agent_;
  ExperienceManager experience_;
  Adam optimizer_;
  Rng rng_;
  TrainStats stats_;
  int episode_index_ = 0;
};

}  // namespace lsched

#endif  // LSCHED_CORE_TRAINER_H_

#ifndef LSCHED_CORE_AGENT_H_
#define LSCHED_CORE_AGENT_H_

#include <string>
#include <vector>

#include "core/encoder.h"
#include "core/features.h"
#include "core/model.h"
#include "core/predictor.h"
#include "exec/scheduler.h"
#include "exec/scheduling_context.h"
#include "nn/inference.h"
#include "util/rng.h"

namespace lsched {

/// One recorded decision: enough to replay the forward pass during the
/// REINFORCE update (paper §6) long after the episode finished.
struct Experience {
  StateFeatures state;
  SchedulingAction action;
  double time = 0.0;
  int num_running_queries = 0;
};

/// The LSched scheduling agent (paper Fig. 2): feature extraction ->
/// Query Encoder -> Scheduling Predictor -> one (root, degree, parallelism)
/// action per invocation. The engine re-invokes it while free threads and
/// schedulable operators remain, so a scheduling event unrolls into a
/// sequence of sampled actions — each one a REINFORCE step.
class LSchedAgent : public Scheduler {
 public:
  LSchedAgent(LSchedModel* model, uint64_t seed = 101);

  std::string name() const override { return "LSched"; }
  void Reset() override;
  /// Legacy tape-based forward (kept for the old-path benchmark and as the
  /// bridge target when the fast path is disabled).
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SystemState& state) override;
  /// Serving fast path (API v2): per-query encodings come from the
  /// EncodingCache keyed by the context's dirty-flag versions, the decision
  /// heads run as batched tape-free GEMMs, and no autograd Tape is ever
  /// constructed. Scores — and therefore decisions and rng consumption —
  /// are bit-identical to the tape path.
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override;

  /// Toggles the tape-free fast path (default on). When off, the context
  /// overload bridges to the legacy tape-based forward.
  void set_use_fast_path(bool v) { use_fast_path_ = v; }
  bool use_fast_path() const { return use_fast_path_; }

  /// Sampling (training) vs greedy argmax (serving) action selection.
  void set_sample_actions(bool v) { sample_actions_ = v; }
  /// With probability eps, a sampled sub-action is drawn uniformly instead
  /// of from the policy — keeps exploration alive after the softmax heads
  /// sharpen (prevents premature convergence to local optima).
  void set_exploration_epsilon(double eps) { exploration_epsilon_ = eps; }
  /// Whether to record experiences for the trainer.
  void set_record_experiences(bool v) { record_experiences_ = v; }

  std::vector<Experience>& experiences() { return experiences_; }
  const std::vector<Experience>& experiences() const { return experiences_; }

  LSchedModel* model() { return model_; }
  const FeatureExtractor& extractor() const { return extractor_; }
  const EncodingCache& encoding_cache() const { return cache_; }

 private:
  int SampleFromLogProbs(const double* logprobs, int n);
  int SampleFromLogProbs(const Matrix& logprobs);
  SchedulingAction SelectAction(const ServingPredictorOutput& out);

  LSchedModel* model_;
  FeatureExtractor extractor_;
  Rng rng_;
  bool sample_actions_ = false;
  double exploration_epsilon_ = 0.0;
  bool record_experiences_ = false;
  bool use_fast_path_ = true;
  std::vector<Experience> experiences_;
  EncodingCache cache_;
  ScratchArena arena_;
  ServingPredictorOutput serving_out_;
};

}  // namespace lsched

#endif  // LSCHED_CORE_AGENT_H_

#ifndef LSCHED_CORE_EXPERIENCE_H_
#define LSCHED_CORE_EXPERIENCE_H_

#include <deque>
#include <vector>

#include "core/agent.h"

namespace lsched {

/// The Experience Manager (paper Fig. 2): stores reward experiences from
/// training/online episodes and maintains the per-decision-index reward
/// baselines used to reduce REINFORCE's gradient variance (paper §6, [61]).
class ExperienceManager {
 public:
  explicit ExperienceManager(size_t max_episodes = 64, double baseline_alpha = 0.1)
      : max_episodes_(max_episodes), baseline_alpha_(baseline_alpha) {}

  /// Records an episode's returns and updates the baselines.
  void AddEpisode(std::vector<Experience> experiences,
                  std::vector<double> returns);

  /// Baseline value b(d) for decision index d (0 before any data).
  double Baseline(size_t decision_index) const;

  /// Advantages G_d - b(d) for the most recent episode, normalized to unit
  /// variance when `normalize` (stabilizes updates across workload scales).
  std::vector<double> LatestAdvantages(bool normalize = true) const;

  struct StoredEpisode {
    std::vector<Experience> experiences;
    std::vector<double> returns;
    std::vector<double> advantages;  ///< returns minus pre-episode baselines
  };

  const StoredEpisode& latest() const { return episodes_.back(); }
  size_t num_episodes() const { return episodes_.size(); }
  bool empty() const { return episodes_.empty(); }
  void Clear();

 private:
  size_t max_episodes_;
  double baseline_alpha_;
  std::deque<StoredEpisode> episodes_;
  std::vector<double> baseline_;       ///< EWMA of G_d per decision index
  std::vector<bool> baseline_init_;
};

}  // namespace lsched

#endif  // LSCHED_CORE_EXPERIENCE_H_

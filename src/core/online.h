#ifndef LSCHED_CORE_ONLINE_H_
#define LSCHED_CORE_ONLINE_H_

#include <atomic>
#include <memory>
#include <string>

#include "core/agent.h"
#include "core/experience.h"
#include "core/reward.h"
#include "nn/optimizer.h"
#include "obs/drift.h"
#include "obs/metrics.h"

namespace lsched {

/// Online self-correction (paper §3): in serving mode, completely executed
/// scheduling decisions are rewarded and used to keep improving the
/// predictor, either query-by-query or at user-controlled checkpoints.
struct OnlineConfig {
  /// Apply a policy-gradient update after this many completed queries
  /// (1 = query-by-query; larger = checkpointing).
  int update_every_queries = 4;
  double learning_rate = 5e-4;
  double grad_clip = 5.0;
  RewardConfig reward;
  /// Sampling temperature: online mode keeps sampling (with a small
  /// exploration floor) so corrections have signal; set false to serve
  /// greedily between checkpoints.
  bool sample_actions = true;
  double exploration_epsilon = 0.02;
  /// Update cadence after a prediction-drift alarm fires (see
  /// AttachDriftMonitor): checkpoint-mode serving escalates to this many
  /// queries per update (1 = query-by-query self-correction).
  int drift_update_every_queries = 1;
};

/// A serving scheduler that self-corrects: wraps an LSchedAgent, records
/// its decisions, and applies REINFORCE updates from the observed rewards
/// every `update_every_queries` completions.
class OnlineLSched : public Scheduler {
 public:
  OnlineLSched(LSchedModel* model, OnlineConfig config, uint64_t seed = 303);

  std::string name() const override { return "LSched-online"; }
  void Reset() override;
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SystemState& state) override;
  /// API v2 entry point: serves through the agent's tape-free fast path
  /// (updates still build tapes inside ApplyUpdate, never on this path).
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override;
  void OnQueryCompleted(QueryId query, double latency) override;

  /// The wrapped agent (e.g. to toggle the fast path in benchmarks).
  LSchedAgent* agent() { return &agent_; }

  /// Registers the drift monitor's alarm as a retrain trigger: when the
  /// prediction-error distribution shifts (obs::DriftMonitor fires), the
  /// update cadence escalates from `update_every_queries` to
  /// `drift_update_every_queries` at the next query completion, so stale
  /// checkpoint-mode policies start correcting query-by-query. Safe to
  /// call with a monitor that outlives or is outlived by this scheduler
  /// (the callback holds only a shared flag).
  void AttachDriftMonitor(obs::DriftMonitor* monitor);

  /// Drops back to the configured checkpoint cadence (e.g. after a
  /// retrain/redeploy cleared the drift).
  void ResetDriftEscalation();
  bool drift_escalated() const { return drift_escalated_; }
  /// Current effective cadence (configured, or escalated after an alarm).
  int update_every_queries() const { return effective_update_every_; }

  int num_updates() const { return num_updates_; }
  ExperienceManager* experience_manager() { return &experience_; }

 private:
  void ApplyUpdate(double now);
  void PublishProgressGauges();

  LSchedModel* model_;
  OnlineConfig config_;
  LSchedAgent agent_;
  ExperienceManager experience_;
  Adam optimizer_;
  int completions_since_update_ = 0;
  int num_updates_ = 0;
  double last_event_time_ = 0.0;
  int effective_update_every_ = 0;
  bool drift_escalated_ = false;
  /// Set by the drift-alarm callback (possibly from another thread),
  /// consumed on the scheduling thread at the next completion. Shared so
  /// the callback stays valid even if this scheduler is destroyed first.
  std::shared_ptr<std::atomic<bool>> drift_fired_;

  // Cached registry handles for online-mode progress visibility.
  obs::Gauge* num_updates_gauge_;
  obs::Gauge* completions_gauge_;
  obs::Gauge* update_every_gauge_;
  obs::Counter* drift_escalations_;
};

}  // namespace lsched

#endif  // LSCHED_CORE_ONLINE_H_

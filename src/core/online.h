#ifndef LSCHED_CORE_ONLINE_H_
#define LSCHED_CORE_ONLINE_H_

#include <memory>
#include <string>

#include "core/agent.h"
#include "core/experience.h"
#include "core/reward.h"
#include "nn/optimizer.h"

namespace lsched {

/// Online self-correction (paper §3): in serving mode, completely executed
/// scheduling decisions are rewarded and used to keep improving the
/// predictor, either query-by-query or at user-controlled checkpoints.
struct OnlineConfig {
  /// Apply a policy-gradient update after this many completed queries
  /// (1 = query-by-query; larger = checkpointing).
  int update_every_queries = 4;
  double learning_rate = 5e-4;
  double grad_clip = 5.0;
  RewardConfig reward;
  /// Sampling temperature: online mode keeps sampling (with a small
  /// exploration floor) so corrections have signal; set false to serve
  /// greedily between checkpoints.
  bool sample_actions = true;
  double exploration_epsilon = 0.02;
};

/// A serving scheduler that self-corrects: wraps an LSchedAgent, records
/// its decisions, and applies REINFORCE updates from the observed rewards
/// every `update_every_queries` completions.
class OnlineLSched : public Scheduler {
 public:
  OnlineLSched(LSchedModel* model, OnlineConfig config, uint64_t seed = 303);

  std::string name() const override { return "LSched-online"; }
  void Reset() override;
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SystemState& state) override;
  void OnQueryCompleted(QueryId query, double latency) override;

  int num_updates() const { return num_updates_; }
  ExperienceManager* experience_manager() { return &experience_; }

 private:
  void ApplyUpdate(double now);

  LSchedModel* model_;
  OnlineConfig config_;
  LSchedAgent agent_;
  ExperienceManager experience_;
  Adam optimizer_;
  int completions_since_update_ = 0;
  int num_updates_ = 0;
  double last_event_time_ = 0.0;
};

}  // namespace lsched

#endif  // LSCHED_CORE_ONLINE_H_

#include "core/agent.h"

#include <algorithm>
#include <cmath>

#include "core/encoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace lsched {

LSchedAgent::LSchedAgent(LSchedModel* model, uint64_t seed)
    : model_(model), extractor_(model->config().features), rng_(seed) {}

void LSchedAgent::Reset() {
  experiences_.clear();
  cache_.Clear();
}

int LSchedAgent::SampleFromLogProbs(const double* logprobs, int n) {
  std::vector<double> probs(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) {
    probs[static_cast<size_t>(c)] = std::exp(logprobs[c]);
  }
  if (exploration_epsilon_ > 0.0 &&
      rng_.Uniform() < exploration_epsilon_) {
    // Uniform among actions the policy has not masked out (p > 0).
    std::vector<double> uniform(probs.size(), 0.0);
    for (size_t i = 0; i < probs.size(); ++i) {
      uniform[i] = probs[i] > 1e-30 ? 1.0 : 0.0;
    }
    const size_t idx = rng_.WeightedIndex(uniform);
    if (idx < probs.size()) return static_cast<int>(idx);
  }
  const size_t idx = rng_.WeightedIndex(probs);
  return idx >= probs.size() ? 0 : static_cast<int>(idx);
}

int LSchedAgent::SampleFromLogProbs(const Matrix& logprobs) {
  return SampleFromLogProbs(logprobs.data(), logprobs.cols());
}

namespace {
int ArgmaxSpan(const double* v, int n) {
  int best = 0;
  for (int c = 1; c < n; ++c) {
    if (v[c] > v[best]) best = c;
  }
  return best;
}

int ArgmaxRow(const Matrix& m) { return ArgmaxSpan(m.data(), m.cols()); }
}  // namespace

SchedulingAction LSchedAgent::SelectAction(const ServingPredictorOutput& out) {
  const int max_deg = out.degree_logprobs.cols();
  const int num_par = out.par_logprobs.cols();
  SchedulingAction action;
  if (sample_actions_) {
    action.candidate_index =
        SampleFromLogProbs(out.root_logprobs.data(), out.root_logprobs.cols());
    action.degree_index = SampleFromLogProbs(
        out.degree_logprobs.data() +
            static_cast<size_t>(action.candidate_index) *
                static_cast<size_t>(max_deg),
        max_deg);
    action.parallelism_index = SampleFromLogProbs(
        out.par_logprobs.data() + static_cast<size_t>(action.candidate_index) *
                                      static_cast<size_t>(num_par),
        num_par);
  } else {
    action.candidate_index =
        ArgmaxSpan(out.root_logprobs.data(), out.root_logprobs.cols());
    action.degree_index =
        ArgmaxSpan(out.degree_logprobs.data() +
                       static_cast<size_t>(action.candidate_index) *
                           static_cast<size_t>(max_deg),
                   max_deg);
    action.parallelism_index =
        ArgmaxSpan(out.par_logprobs.data() +
                       static_cast<size_t>(action.candidate_index) *
                           static_cast<size_t>(num_par),
                   num_par);
  }
  return action;
}

SchedulingDecision LSchedAgent::Schedule(const SchedulingEvent& event,
                                         const SystemState& state) {
  (void)event;
  SchedulingDecision decision;
  StateFeatures features = extractor_.Extract(state);
  if (features.candidates.empty() || features.free_threads == 0) {
    return decision;
  }

  Tape tape;
  EncodedState encoded;
  PredictorOutput out;
  {
    obs::ScopedSpan span("sched.lsched.forward", "sched", "candidates",
                         static_cast<int64_t>(features.candidates.size()));
    encoded = EncodeState(model_, features, &tape);
    out = RunPredictor(model_, features, encoded, &tape);
  }

  SchedulingAction action;
  if (sample_actions_) {
    action.candidate_index = SampleFromLogProbs(out.root_logprobs.value());
    action.degree_index = SampleFromLogProbs(
        out.degree_logprobs[static_cast<size_t>(action.candidate_index)]
            .value());
    action.parallelism_index = SampleFromLogProbs(
        out.par_logprobs[static_cast<size_t>(action.candidate_index)]
            .value());
  } else {
    action.candidate_index = ArgmaxRow(out.root_logprobs.value());
    action.degree_index = ArgmaxRow(
        out.degree_logprobs[static_cast<size_t>(action.candidate_index)]
            .value());
    action.parallelism_index = ArgmaxRow(
        out.par_logprobs[static_cast<size_t>(action.candidate_index)]
            .value());
  }

  // Decision-log hook: the policy's own confidence in the chosen root
  // (log-probability), compared offline against the realized runtime.
  obs::AnnotatePredictedScore(
      out.root_logprobs.value().at(0, action.candidate_index));

  const Candidate& cand =
      features.candidates[static_cast<size_t>(action.candidate_index)];
  const QueryFeatures& q =
      features.queries[static_cast<size_t>(cand.query_index)];

  PipelineChoice pipeline;
  pipeline.query = q.qid;
  pipeline.root_op = cand.op;
  pipeline.degree = action.degree_index + 1;
  decision.pipelines.push_back(pipeline);

  const double frac =
      model_->config()
          .parallelism_fractions[static_cast<size_t>(action.parallelism_index)];
  ParallelismChoice par;
  par.query = q.qid;
  par.max_threads = std::max(
      1, static_cast<int>(std::lround(
             frac * static_cast<double>(features.total_threads))));
  decision.parallelism.push_back(par);

  if (record_experiences_) {
    Experience exp;
    exp.time = state.now;
    exp.num_running_queries = static_cast<int>(state.queries.size());
    exp.action = action;
    exp.state = std::move(features);
    experiences_.push_back(std::move(exp));
  }
  return decision;
}

SchedulingDecision LSchedAgent::Schedule(const SchedulingEvent& event,
                                         const SchedulingContext& ctx) {
  if (!use_fast_path_) {
    // Bridge to the legacy tape-based forward (old-path benchmarking).
    return Scheduler::Schedule(event, ctx);
  }
  (void)event;
  SchedulingDecision decision;
  // Same gate as the legacy path (which checks it after extraction), hoisted
  // before any cache work: no free thread means no decision and no rng use.
  if (ctx.num_free_threads() == 0) return decision;
  arena_.Reset();

  const std::vector<QueryState*>& queries = ctx.queries();
  ServingStateView view;
  view.total_threads = ctx.total_threads();
  view.free_threads = ctx.num_free_threads();
  view.queries.reserve(queries.size());
  view.encoded.reserve(queries.size());
  view.qf.reserve(queries.size());
  std::vector<EncodingCache::Entry*> entries(queries.size());
  std::vector<std::vector<double>> qf_rows(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const QueryState* q = queries[qi];
    // Hit unless this query was dirtied (operator scheduled / work order
    // completed) since the last event — or the model's weights moved.
    EncodingCache::Entry& entry = cache_.GetStructural(
        *q, ctx.query_version(q->id()), *model_, extractor_);
    entries[qi] = &entry;
    view.queries.push_back(&entry.features);
    qf_rows[qi] = extractor_.ExtractQf(*q, ctx);
    view.qf.push_back(&qf_rows[qi]);
    int head_row = 0;
    for (const auto& [op, degree] : entry.candidates) {
      Candidate c;
      c.query_index = static_cast<int>(qi);
      c.op = op;
      c.max_degree = degree;
      view.candidates.push_back(c);
      // Candidate c's pre-assembled head input is row `head_row` of the
      // entry's head_in matrix (filled by EnsureEncoded below).
      view.head_row.push_back(head_row++);
    }
  }
  if (view.candidates.empty()) {
    return decision;
  }
  // Only now pay for encodings: events with nothing schedulable never
  // reach the networks.
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    cache_.EnsureEncoded(entries[qi], *model_, &arena_);
    view.encoded.push_back(&entries[qi]->enc);
    view.head_in.push_back(&entries[qi]->head_in);
  }

  {
    obs::ScopedSpan span("sched.lsched.forward", "sched", "candidates",
                         static_cast<int64_t>(view.candidates.size()));
    // NN batch occupancy (rows per forward call) for the "nn" counter
    // table: every serving forward scores the whole candidate batch.
    static obs::Counter* batch_calls =
        obs::MetricsRegistry::Global().GetCounter("nn.batch_calls");
    static obs::Counter* batch_rows =
        obs::MetricsRegistry::Global().GetCounter("nn.batch_rows");
    batch_calls->Add(1);
    batch_rows->Add(static_cast<double>(view.candidates.size()));
    const Matrix aqe = ComputeAqeServing(*model_, view, &arena_);
    RunPredictorServing(*model_, view, aqe, &arena_, &serving_out_);
  }

  const SchedulingAction action = SelectAction(serving_out_);
  obs::AnnotatePredictedScore(
      serving_out_.root_logprobs.at(0, action.candidate_index));

  const Candidate& cand =
      view.candidates[static_cast<size_t>(action.candidate_index)];
  const QueryFeatures& q =
      *view.queries[static_cast<size_t>(cand.query_index)];

  PipelineChoice pipeline;
  pipeline.query = q.qid;
  pipeline.root_op = cand.op;
  pipeline.degree = action.degree_index + 1;
  decision.pipelines.push_back(pipeline);

  const double frac =
      model_->config()
          .parallelism_fractions[static_cast<size_t>(action.parallelism_index)];
  ParallelismChoice par;
  par.query = q.qid;
  par.max_threads = std::max(
      1, static_cast<int>(std::lround(
             frac * static_cast<double>(view.total_threads))));
  decision.parallelism.push_back(par);

  if (record_experiences_) {
    // The trainer replays this state through the tape path; the cached
    // structural features plus the fresh QF rows reconstruct exactly what
    // a full extraction would have produced.
    Experience exp;
    exp.time = ctx.now();
    exp.num_running_queries = static_cast<int>(queries.size());
    exp.action = action;
    exp.state.time = ctx.now();
    exp.state.total_threads = view.total_threads;
    exp.state.free_threads = view.free_threads;
    exp.state.candidates = view.candidates;
    exp.state.queries.reserve(queries.size());
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      QueryFeatures f = *view.queries[qi];
      f.qf = std::move(qf_rows[qi]);
      exp.state.queries.push_back(std::move(f));
    }
    experiences_.push_back(std::move(exp));
  }
  if (cache_.size() > queries.size() * 2 + 16) {
    cache_.Trim(queries);
  }
  return decision;
}

}  // namespace lsched

#include "core/agent.h"

#include <algorithm>
#include <cmath>

#include "core/encoder.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace lsched {

LSchedAgent::LSchedAgent(LSchedModel* model, uint64_t seed)
    : model_(model), extractor_(model->config().features), rng_(seed) {}

void LSchedAgent::Reset() { experiences_.clear(); }

int LSchedAgent::SampleFromLogProbs(const Matrix& logprobs) {
  std::vector<double> probs(static_cast<size_t>(logprobs.cols()));
  for (int c = 0; c < logprobs.cols(); ++c) {
    probs[static_cast<size_t>(c)] = std::exp(logprobs.at(0, c));
  }
  if (exploration_epsilon_ > 0.0 &&
      rng_.Uniform() < exploration_epsilon_) {
    // Uniform among actions the policy has not masked out (p > 0).
    std::vector<double> uniform(probs.size(), 0.0);
    for (size_t i = 0; i < probs.size(); ++i) {
      uniform[i] = probs[i] > 1e-30 ? 1.0 : 0.0;
    }
    const size_t idx = rng_.WeightedIndex(uniform);
    if (idx < probs.size()) return static_cast<int>(idx);
  }
  const size_t idx = rng_.WeightedIndex(probs);
  return idx >= probs.size() ? 0 : static_cast<int>(idx);
}

namespace {
int ArgmaxRow(const Matrix& m) {
  int best = 0;
  for (int c = 1; c < m.cols(); ++c) {
    if (m.at(0, c) > m.at(0, best)) best = c;
  }
  return best;
}
}  // namespace

SchedulingDecision LSchedAgent::Schedule(const SchedulingEvent& event,
                                         const SystemState& state) {
  (void)event;
  SchedulingDecision decision;
  StateFeatures features = extractor_.Extract(state);
  if (features.candidates.empty() || features.free_threads == 0) {
    return decision;
  }

  Tape tape;
  EncodedState encoded;
  PredictorOutput out;
  {
    obs::ScopedSpan span("sched.lsched.forward", "sched", "candidates",
                         static_cast<int64_t>(features.candidates.size()));
    encoded = EncodeState(model_, features, &tape);
    out = RunPredictor(model_, features, encoded, &tape);
  }

  SchedulingAction action;
  if (sample_actions_) {
    action.candidate_index = SampleFromLogProbs(out.root_logprobs.value());
    action.degree_index = SampleFromLogProbs(
        out.degree_logprobs[static_cast<size_t>(action.candidate_index)]
            .value());
    action.parallelism_index = SampleFromLogProbs(
        out.par_logprobs[static_cast<size_t>(action.candidate_index)]
            .value());
  } else {
    action.candidate_index = ArgmaxRow(out.root_logprobs.value());
    action.degree_index = ArgmaxRow(
        out.degree_logprobs[static_cast<size_t>(action.candidate_index)]
            .value());
    action.parallelism_index = ArgmaxRow(
        out.par_logprobs[static_cast<size_t>(action.candidate_index)]
            .value());
  }

  // Decision-log hook: the policy's own confidence in the chosen root
  // (log-probability), compared offline against the realized runtime.
  obs::AnnotatePredictedScore(
      out.root_logprobs.value().at(0, action.candidate_index));

  const Candidate& cand =
      features.candidates[static_cast<size_t>(action.candidate_index)];
  const QueryFeatures& q =
      features.queries[static_cast<size_t>(cand.query_index)];

  PipelineChoice pipeline;
  pipeline.query = q.qid;
  pipeline.root_op = cand.op;
  pipeline.degree = action.degree_index + 1;
  decision.pipelines.push_back(pipeline);

  const double frac =
      model_->config()
          .parallelism_fractions[static_cast<size_t>(action.parallelism_index)];
  ParallelismChoice par;
  par.query = q.qid;
  par.max_threads = std::max(
      1, static_cast<int>(std::lround(
             frac * static_cast<double>(features.total_threads))));
  decision.parallelism.push_back(par);

  if (record_experiences_) {
    Experience exp;
    exp.time = state.now;
    exp.num_running_queries = static_cast<int>(state.queries.size());
    exp.action = action;
    exp.state = std::move(features);
    experiences_.push_back(std::move(exp));
  }
  return decision;
}

}  // namespace lsched

#ifndef LSCHED_CORE_MODEL_H_
#define LSCHED_CORE_MODEL_H_

#include <string>
#include <vector>

#include "core/features.h"
#include "nn/layers.h"
#include "nn/params.h"
#include "util/status.h"

namespace lsched {

/// Hyper-parameters of the LSched networks, including the ablation toggles
/// evaluated in Fig. 15.
struct LSchedConfig {
  FeatureConfig features;

  int hidden_dim = 16;        ///< node/edge embedding width d
  int num_conv_layers = 2;    ///< stacked tree-convolution (+GAT) layers
  int summary_dim = 16;       ///< PQE / AQE width
  int head_hidden = 32;       ///< hidden width of the decision heads
  int max_pipeline_degree = 8;

  /// Parallelism-degree action buckets, as fractions of the thread pool
  /// (mapped to 1..T threads at decision time).
  std::vector<double> parallelism_fractions = {0.1, 0.2, 0.35, 0.5,
                                               0.65, 0.8, 1.0};

  // --- ablation toggles (Fig. 15) ---
  bool use_tree_conv = true;  ///< false: sequential message-passing GCN
  bool use_gat = true;        ///< false: isotropic (equal-weight) aggregation
  bool predict_pipeline = true;  ///< false: always degree 1 (Decima-style)
  /// false: always grant the full thread pool (isolates the pipelining
  /// decision, e.g. for the Fig. 1 motivating experiment).
  bool predict_parallelism = true;

  uint64_t seed = 17;
};

/// All parameters of the Query Encoder (Fig. 6) and Scheduling Predictor
/// (Fig. 7), owned by one ParameterStore for training, checkpointing, and
/// transfer-learning freezes.
class LSchedModel {
 public:
  explicit LSchedModel(LSchedConfig config);

  const LSchedConfig& config() const { return config_; }
  ParameterStore* params() { return &store_; }
  const ParameterStore& params() const { return store_; }

  // --- encoder modules ---
  Linear proj_node;  ///< OPF -> d
  Linear proj_edge;  ///< EDF -> d

  /// One edge-aware triangle filter layer (Eq. 2) with its GAT attention
  /// vector (Eq. 3) and a channel-mixing projection (standing in for the
  /// paper's "hundreds of filters" per layer).
  struct ConvLayer {
    Param* w_self = nullptr;   ///< w_p
    Param* w_left = nullptr;   ///< w_n
    Param* w_right = nullptr;  ///< w_m
    Param* w_eleft = nullptr;  ///< w_{p,n}
    Param* w_eright = nullptr; ///< w_{p,m}
    Param* att = nullptr;      ///< a^l, (1 x 2d)
    Linear mix;
  };
  std::vector<ConvLayer> conv;

  /// GCN fallback used when use_tree_conv == false (the Fig. 15 "w/o
  /// triangle convolution" variant): sequential message passing.
  Linear gcn_self;
  Linear gcn_child;

  // --- high-level encoders (Fig. 6) ---
  Mlp pqe_node_in;  ///< concat(NE, OPF) -> summary_dim
  Mlp pqe_edge_in;  ///< concat(EE, EDF) -> summary_dim
  Mlp pqe_out;      ///< 2*summary_dim -> summary_dim
  Mlp aqe_in;       ///< concat(PQE, QF) -> summary_dim
  Mlp aqe_out;      ///< summary_dim -> summary_dim

  // --- decision heads (Fig. 7) ---
  Mlp root_head;    ///< concat(NE, EE_in, PQE) -> 1 (score)
  Mlp degree_head;  ///< concat(NE, EE_in, PQE, EDF_agg) -> max_pipeline_degree
  Mlp par_head;     ///< concat(AQE, PQE, QF) -> #parallelism buckets

  /// Applies the paper's transfer-learning freeze (§6): freezes the stacked
  /// convolution layers and the hidden layers of the summarization networks
  /// and heads, keeping the input projections and each network's output
  /// layer trainable. Returns the number of frozen parameters.
  int FreezeForTransfer();
  /// Makes every parameter trainable again.
  void UnfreezeAll();

  /// Checkpoint I/O (values only).
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

 private:
  LSchedConfig config_;
  ParameterStore store_;
};

}  // namespace lsched

#endif  // LSCHED_CORE_MODEL_H_

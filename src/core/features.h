#ifndef LSCHED_CORE_FEATURES_H_
#define LSCHED_CORE_FEATURES_H_

#include <array>
#include <utility>
#include <vector>

#include "exec/scheduler.h"

namespace lsched {

class SchedulingContext;

/// Sizes of the feature vocabularies (paper §4.1). One-hot vocabularies are
/// hashed/clamped so the network dimensions stay fixed across benchmarks.
struct FeatureConfig {
  int num_relations = 16;     ///< O-IN one-hot width (relation id mod width)
  int num_columns = 32;       ///< O-COLS one-hot width (column id mod width)
  int blocks_downsample = 8;  ///< |d| of the Eq. (1) O-BLCKS moving average
  int max_threads = 128;      ///< Q-LOC vector width

  /// Operator feature (OPF) vector width:
  /// O-TY one-hot + O-IN + O-COLS + O-BLCKS + [O-WO ratio, O-WO log,
  /// O-DUR log, O-MEM log, is_scheduled, is_schedulable].
  int opf_dim() const;
  /// Edge feature (EDF) width: [E-NPB, E-DIR].
  int edf_dim() const { return 2; }
  /// Query feature (QF) width: [Q-ATH, Q-FTH] + Q-LOC.
  int qf_dim() const { return 2 + max_threads; }
};

/// Features + structure of one running query at a scheduling event. The
/// structure (children slots per node) is what the tree convolution slides
/// its triangle filters over — it encodes the O-CON adjacency feature.
struct QueryFeatures {
  QueryId qid = kInvalidQuery;
  int num_nodes = 0;
  /// OPF row per operator.
  std::vector<std::vector<double>> opf;
  /// EDF row per plan edge.
  std::vector<std::vector<double>> edf;
  /// Producer ("child" in tree-convolution terms) slots per node: up to two
  /// (node, edge) pairs; -1 marks an absent slot.
  std::vector<std::array<int, 2>> child_node;
  std::vector<std::array<int, 2>> child_edge;
  /// All incoming / outgoing edge indices per node (for edge-embedding
  /// aggregation and the pipeline-degree head's EDF input).
  std::vector<std::vector<int>> in_edges;
  std::vector<std::vector<int>> out_edges;
  /// Topological order (producers first) — used by the GCN baselines.
  std::vector<int> topo_order;
  /// QF row for the whole query.
  std::vector<double> qf;
};

/// One candidate execution root (a schedulable operator).
struct Candidate {
  int query_index = -1;  ///< index into StateFeatures::queries
  int op = -1;
  int max_degree = 1;  ///< length of the currently-valid pipeline from op
};

/// Everything the scheduling agent's forward pass consumes at one event.
/// Self-contained (no pointers into engine state) so training can replay
/// decisions long after the episode finished.
struct StateFeatures {
  double time = 0.0;
  int total_threads = 0;
  int free_threads = 0;
  std::vector<QueryFeatures> queries;
  std::vector<Candidate> candidates;
};

/// Extracts the paper's feature set from a SystemState snapshot or a
/// SchedulingContext.
///
/// The extraction is split along the cache boundary the serving fast path
/// exploits (DESIGN.md §9): everything in ExtractQueryStructural depends
/// only on query-local state and is invalidated exactly by the context's
/// dirty flags (MarkQueryDirty), while the QF row additionally reads
/// thread-pool occupancy and must be recomputed fresh at every event.
class FeatureExtractor {
 public:
  explicit FeatureExtractor(FeatureConfig config) : config_(config) {}

  const FeatureConfig& config() const { return config_; }

  StateFeatures Extract(const SystemState& state) const;
  /// Full (uncached) extraction from an incremental context; identical
  /// output to the snapshot overload for the same underlying state.
  StateFeatures Extract(const SchedulingContext& ctx) const;

  /// Features of a single query (exposed for tests).
  QueryFeatures ExtractQuery(const QueryState& q,
                             const SystemState& state) const;

  /// The version-cacheable part of one query's features: OPF, EDF, plan
  /// structure, and topological order — everything except the QF row.
  QueryFeatures ExtractQueryStructural(const QueryState& q) const;

  /// The per-event QF row ([Q-ATH, Q-FTH] + Q-LOC locality bits). Depends
  /// on thread occupancy, so never cached.
  std::vector<double> ExtractQf(const QueryState& q,
                                const SchedulingContext& ctx) const;

  /// Schedulable (op, valid-pipeline-length) pairs of one query — the
  /// per-query slice of StateFeatures::candidates. Cacheable per version.
  static std::vector<std::pair<int, int>> SchedulableCandidates(
      const QueryState& q);

 private:
  FeatureConfig config_;
};

}  // namespace lsched

#endif  // LSCHED_CORE_FEATURES_H_

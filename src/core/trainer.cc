#include "core/trainer.h"

#include "core/encoder.h"
#include "obs/metrics.h"
#include "obs/scalar_events.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace lsched {

namespace {

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double mean = Mean(v);
  double sum = 0.0;
  for (double x : v) sum += (x - mean) * (x - mean);
  return sum / static_cast<double>(v.size() - 1);
}

}  // namespace

ReinforceTrainer::ReinforceTrainer(LSchedModel* model, SimEngine* engine,
                                   TrainConfig config)
    : model_(model),
      engine_(engine),
      config_(config),
      agent_(model, config.seed ^ 0x5bd1e995),
      optimizer_(config.learning_rate),
      rng_(config.seed) {
  agent_.set_sample_actions(true);
  agent_.set_record_experiences(true);
  agent_.set_exploration_epsilon(config.exploration_epsilon);
}

double ReinforceTrainer::TrainOneEpisode(
    const std::vector<QuerySubmission>& workload) {
  obs::ScopedSpan episode_span("train.episode", "train", "queries",
                               static_cast<int64_t>(workload.size()));
  agent_.set_sample_actions(true);
  agent_.set_record_experiences(true);
  const EpisodeResult result = engine_->Run(workload, &agent_);

  std::vector<Experience>& exps = agent_.experiences();
  double total_reward = 0.0;
  double return_variance = 0.0;
  UpdateTelemetry update;
  if (!exps.empty()) {
    const std::vector<double> rewards =
        ComputeRewards(exps, config_.reward, result.makespan);
    const std::vector<double> returns = ComputeReturns(rewards);
    for (double r : rewards) total_reward += r;
    return_variance = Variance(returns);

    experience_.AddEpisode(std::move(exps), returns);
    agent_.experiences().clear();

    update = UpdateFromLatestEpisode();
  }

  RecordEpisodeTelemetry(result, total_reward, return_variance, update);
  ++episode_index_;
  return total_reward;
}

ReinforceTrainer::UpdateTelemetry ReinforceTrainer::UpdateFromLatestEpisode() {
  obs::ScopedSpan span("train.update", "train");
  const ExperienceManager::StoredEpisode& ep = experience_.latest();
  const std::vector<double> adv = experience_.LatestAdvantages(true);

  UpdateTelemetry tel;
  // Entropy is needed for the loss whenever the coefficient is live, and
  // for telemetry whenever obs is recording.
  const bool want_entropy = config_.entropy_coef > 0.0 || obs::Enabled();
  double entropy_sum = 0.0;

  model_->params()->ZeroGrads();
  const double scale = 1.0 / std::max<size_t>(ep.experiences.size(), 1);
  for (size_t d = 0; d < ep.experiences.size(); ++d) {
    const Experience& exp = ep.experiences[d];
    if (exp.state.candidates.empty()) continue;
    // Replay the forward pass on a fresh tape and backprop the policy
    // gradient term: loss_d = -adv_d * log pi(a_d | s_d) - beta * H(pi).
    Tape tape;
    const EncodedState encoded = EncodeState(model_, exp.state, &tape);
    const PredictorOutput out =
        RunPredictor(model_, exp.state, encoded, &tape);
    Var logprob = ActionLogProb(&tape, out, exp.action);
    Var loss = tape.Scale(logprob, -adv[d]);
    if (want_entropy) {
      Var entropy = ActionEntropy(&tape, out, exp.action);
      entropy_sum += entropy.value().at(0, 0);
      if (config_.entropy_coef > 0.0) {
        loss = tape.Add(loss, tape.Scale(entropy, -config_.entropy_coef));
      }
    }
    tape.Backward(loss, scale);
    ++stats_.total_decisions;
    ++tel.decisions;
  }
  if (obs::Enabled()) {
    tel.grad_norm_preclip = model_->params()->GradNorm();
  }
  model_->params()->ClipGradNorm(config_.grad_clip);
  if (obs::Enabled()) {
    tel.grad_norm_postclip = model_->params()->GradNorm();
  }
  tel.mean_entropy =
      tel.decisions > 0 ? entropy_sum / tel.decisions : 0.0;
  optimizer_.Step(model_->params());
  return tel;
}

void ReinforceTrainer::RecordEpisodeTelemetry(const EpisodeResult& result,
                                              double total_reward,
                                              double return_variance,
                                              const UpdateTelemetry& update) {
  // TrainStats, the scalar event stream, and the registry gauges are all
  // fed from the same locals here — the one place episode bookkeeping
  // happens (previously stats_ and train.last_reward were updated in two
  // places and could drift apart).
  stats_.episode_avg_latency.push_back(result.avg_latency);
  stats_.episode_reward.push_back(total_reward);
  if (!obs::Enabled()) return;

  const int64_t step = episode_index_;
  const std::string& prefix = config_.telemetry_prefix;
  auto& events = obs::ScalarEventWriter::Global();
  events.Append(prefix + ".reward", step, total_reward);
  events.Append(prefix + ".return_variance", step, return_variance);
  events.Append(prefix + ".policy_entropy", step, update.mean_entropy);
  events.Append(prefix + ".grad_norm_preclip", step,
                update.grad_norm_preclip);
  events.Append(prefix + ".grad_norm_postclip", step,
                update.grad_norm_postclip);
  events.Append(prefix + ".learning_rate", step, optimizer_.lr());
  events.Append(prefix + ".exploration_epsilon", step,
                config_.exploration_epsilon);
  events.Append(prefix + ".avg_latency", step, result.avg_latency);

  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("train.episodes")->Add(1);
  reg.GetGauge("train.last_reward")->Set(total_reward);
  reg.GetGauge("train.total_decisions")
      ->Set(static_cast<double>(stats_.total_decisions));
  reg.GetHistogram("train.episode_avg_latency_seconds")
      ->Observe(result.avg_latency);
}

TrainStats ReinforceTrainer::Train(const WorkloadFactory& factory) {
  for (int ep = 0; ep < config_.episodes; ++ep) {
    const std::vector<QuerySubmission> workload = factory(ep, &rng_);
    const double reward = TrainOneEpisode(workload);
    if (config_.log_every > 0 && (ep + 1) % config_.log_every == 0) {
      LSCHED_LOG(Info) << "episode " << (ep + 1) << "/" << config_.episodes
                       << " reward=" << reward << " avg_latency="
                       << stats_.episode_avg_latency.back();
    }
  }
  return stats_;
}

}  // namespace lsched

#include "core/trainer.h"

#include "core/encoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace lsched {

ReinforceTrainer::ReinforceTrainer(LSchedModel* model, SimEngine* engine,
                                   TrainConfig config)
    : model_(model),
      engine_(engine),
      config_(config),
      agent_(model, config.seed ^ 0x5bd1e995),
      optimizer_(config.learning_rate),
      rng_(config.seed) {
  agent_.set_sample_actions(true);
  agent_.set_record_experiences(true);
  agent_.set_exploration_epsilon(config.exploration_epsilon);
}

double ReinforceTrainer::TrainOneEpisode(
    const std::vector<QuerySubmission>& workload) {
  obs::ScopedSpan episode_span("train.episode", "train", "queries",
                               static_cast<int64_t>(workload.size()));
  agent_.set_sample_actions(true);
  agent_.set_record_experiences(true);
  const EpisodeResult result = engine_->Run(workload, &agent_);

  std::vector<Experience>& exps = agent_.experiences();
  if (exps.empty()) {
    stats_.episode_avg_latency.push_back(result.avg_latency);
    stats_.episode_reward.push_back(0.0);
    return 0.0;
  }

  const std::vector<double> rewards =
      ComputeRewards(exps, config_.reward, result.makespan);
  const std::vector<double> returns = ComputeReturns(rewards);
  double total_reward = 0.0;
  for (double r : rewards) total_reward += r;

  experience_.AddEpisode(std::move(exps), returns);
  agent_.experiences().clear();

  UpdateFromLatestEpisode();

  stats_.episode_avg_latency.push_back(result.avg_latency);
  stats_.episode_reward.push_back(total_reward);
  if (obs::Enabled()) {
    auto& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("train.episodes")->Add(1);
    reg.GetGauge("train.last_reward")->Set(total_reward);
    reg.GetGauge("train.total_decisions")
        ->Set(static_cast<double>(stats_.total_decisions));
    reg.GetHistogram("train.episode_avg_latency_seconds")
        ->Observe(result.avg_latency);
  }
  return total_reward;
}

void ReinforceTrainer::UpdateFromLatestEpisode() {
  obs::ScopedSpan span("train.update", "train");
  const ExperienceManager::StoredEpisode& ep = experience_.latest();
  const std::vector<double> adv = experience_.LatestAdvantages(true);

  model_->params()->ZeroGrads();
  const double scale = 1.0 / std::max<size_t>(ep.experiences.size(), 1);
  for (size_t d = 0; d < ep.experiences.size(); ++d) {
    const Experience& exp = ep.experiences[d];
    if (exp.state.candidates.empty()) continue;
    // Replay the forward pass on a fresh tape and backprop the policy
    // gradient term: loss_d = -adv_d * log pi(a_d | s_d) - beta * H(pi).
    Tape tape;
    const EncodedState encoded = EncodeState(model_, exp.state, &tape);
    const PredictorOutput out =
        RunPredictor(model_, exp.state, encoded, &tape);
    Var logprob = ActionLogProb(&tape, out, exp.action);
    Var loss = tape.Scale(logprob, -adv[d]);
    if (config_.entropy_coef > 0.0) {
      Var entropy = ActionEntropy(&tape, out, exp.action);
      loss = tape.Add(loss, tape.Scale(entropy, -config_.entropy_coef));
    }
    tape.Backward(loss, scale);
    ++stats_.total_decisions;
  }
  model_->params()->ClipGradNorm(config_.grad_clip);
  optimizer_.Step(model_->params());
}

TrainStats ReinforceTrainer::Train(const WorkloadFactory& factory) {
  for (int ep = 0; ep < config_.episodes; ++ep) {
    const std::vector<QuerySubmission> workload = factory(ep, &rng_);
    const double reward = TrainOneEpisode(workload);
    if (config_.log_every > 0 && (ep + 1) % config_.log_every == 0) {
      LSCHED_LOG(Info) << "episode " << (ep + 1) << "/" << config_.episodes
                       << " reward=" << reward << " avg_latency="
                       << stats_.episode_avg_latency.back();
    }
  }
  return stats_;
}

}  // namespace lsched

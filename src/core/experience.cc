#include "core/experience.h"

#include <cmath>

#include "util/math_util.h"

namespace lsched {

void ExperienceManager::AddEpisode(std::vector<Experience> experiences,
                                   std::vector<double> returns) {
  if (baseline_.size() < returns.size()) {
    baseline_.resize(returns.size(), 0.0);
    baseline_init_.resize(returns.size(), false);
  }

  StoredEpisode ep;
  // Advantages use the baselines learned from *previous* episodes only.
  ep.advantages.resize(returns.size());
  for (size_t d = 0; d < returns.size(); ++d) {
    ep.advantages[d] = returns[d] - Baseline(d);
  }
  ep.experiences = std::move(experiences);
  ep.returns = std::move(returns);

  // EWMA baseline update per decision index.
  for (size_t d = 0; d < ep.returns.size(); ++d) {
    if (!baseline_init_[d]) {
      baseline_[d] = ep.returns[d];
      baseline_init_[d] = true;
    } else {
      baseline_[d] = (1.0 - baseline_alpha_) * baseline_[d] +
                     baseline_alpha_ * ep.returns[d];
    }
  }

  episodes_.push_back(std::move(ep));
  if (episodes_.size() > max_episodes_) episodes_.pop_front();
}

double ExperienceManager::Baseline(size_t decision_index) const {
  if (decision_index < baseline_.size() && baseline_init_[decision_index]) {
    return baseline_[decision_index];
  }
  return 0.0;
}

std::vector<double> ExperienceManager::LatestAdvantages(bool normalize) const {
  if (episodes_.empty()) return {};
  std::vector<double> adv = episodes_.back().advantages;
  if (normalize && adv.size() > 1) {
    const double sd = StdDev(adv);
    const double m = Mean(adv);
    if (sd > 1e-9) {
      for (double& a : adv) a = (a - m) / sd;
    }
  }
  return adv;
}

void ExperienceManager::Clear() {
  episodes_.clear();
  baseline_.clear();
  baseline_init_.clear();
}

}  // namespace lsched

#include "core/encoder.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <iterator>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace lsched {

namespace {

/// One edge-aware tree-convolution layer (Eq. 2) with optional GAT
/// attention weighting (Eqs. 3-5) applied to every node in parallel.
std::vector<Var> TreeConvLayer(LSchedModel* model,
                               const LSchedModel::ConvLayer& layer,
                               const QueryFeatures& q,
                               const std::vector<Var>& x,
                               const std::vector<Var>& e, Tape* tape) {
  const bool use_gat = model->config().use_gat;
  std::vector<Var> out;
  out.reserve(x.size());

  Var w_self = tape->Leaf(layer.w_self);
  Var w_left = tape->Leaf(layer.w_left);
  Var w_right = tape->Leaf(layer.w_right);
  Var w_eleft = tape->Leaf(layer.w_eleft);
  Var w_eright = tape->Leaf(layer.w_eright);
  Var att = tape->Leaf(layer.att);

  for (int i = 0; i < q.num_nodes; ++i) {
    // Weighted terms of the triangle filter. Slot 0 = right (heaviest
    // producer), slot 1 = left. Missing children simply contribute nothing
    // (equivalent to zero-padded leaves in standard tree convolution).
    std::vector<Var> terms;
    Var self_term = tape->Mul(x[static_cast<size_t>(i)], w_self);
    terms.push_back(self_term);
    const std::array<Var, 2> child_w = {w_right, w_left};
    const std::array<Var, 2> edge_w = {w_eright, w_eleft};
    for (int s = 0; s < 2; ++s) {
      const int child = q.child_node[static_cast<size_t>(i)][s];
      const int edge = q.child_edge[static_cast<size_t>(i)][s];
      if (child < 0) continue;
      terms.push_back(tape->Mul(x[static_cast<size_t>(child)], child_w[s]));
      terms.push_back(tape->Mul(e[static_cast<size_t>(edge)], edge_w[s]));
    }

    Var combined;
    if (use_gat && terms.size() > 1) {
      // Un-normalized scores y_k = LeakyReLU(a . (self_term || term_k))
      // (Eq. 3; the Hadamard-with-a formulation followed by the sum that
      // makes the score scalar, as in standard GAT), then softmax (Eq. 4).
      std::vector<Var> scores;
      scores.reserve(terms.size());
      for (const Var& term : terms) {
        Var cat = tape->ConcatCols({self_term, term});
        scores.push_back(tape->LeakyRelu(tape->DotRows(att, cat)));
      }
      Var logits = tape->ConcatCols(scores);
      Var logz = tape->LogSoftmaxRow(logits);
      for (size_t k = 0; k < terms.size(); ++k) {
        Var zk = tape->Exp(tape->PickCol(logz, static_cast<int>(k)));
        Var weighted = tape->Mul(terms[k], zk);
        combined = k == 0 ? weighted : tape->Add(combined, weighted);
      }
    } else {
      // Isotropic aggregation (the Fig. 15 "w/o GAT" ablation): every term
      // contributes equally, per Eq. 2.
      for (size_t k = 0; k < terms.size(); ++k) {
        combined = k == 0 ? terms[k] : tape->Add(combined, terms[k]);
      }
    }
    out.push_back(tape->Relu(layer.mix.Forward(tape, combined)));
  }
  return out;
}

/// Sequential message-passing GCN layer (the Decima-style encoder used for
/// the "w/o triangle convolution" ablation): children embeddings computed
/// earlier in the same sweep are fused into their parents, which is exactly
/// the within-iteration indirect fusion the paper identifies as the source
/// of over-smoothing (§4.2.1).
std::vector<Var> GcnLayer(LSchedModel* model, const QueryFeatures& q,
                          const std::vector<Var>& x, Tape* tape) {
  std::vector<Var> out = x;
  for (int i : q.topo_order) {  // producers first: sequential steps
    Var h = model->gcn_self.Forward(tape, out[static_cast<size_t>(i)]);
    for (int s = 0; s < 2; ++s) {
      const int child = q.child_node[static_cast<size_t>(i)][s];
      if (child < 0) continue;
      h = tape->Add(
          h, model->gcn_child.Forward(tape, out[static_cast<size_t>(child)]));
    }
    out[static_cast<size_t>(i)] = tape->Relu(h);
  }
  return out;
}

}  // namespace

EncodedQuery EncodeQuery(LSchedModel* model, const QueryFeatures& q,
                         Tape* tape) {
  EncodedQuery enc;
  const int sd = model->config().summary_dim;

  // Initial projections of OPF and EDF.
  enc.node_emb.reserve(static_cast<size_t>(q.num_nodes));
  for (int i = 0; i < q.num_nodes; ++i) {
    Var f = tape->Constant(Matrix::FromRow(q.opf[static_cast<size_t>(i)]));
    enc.node_emb.push_back(
        tape->Relu(model->proj_node.Forward(tape, f)));
  }
  enc.edge_emb.reserve(q.edf.size());
  for (const std::vector<double>& edf : q.edf) {
    Var f = tape->Constant(Matrix::FromRow(edf));
    enc.edge_emb.push_back(tape->Relu(model->proj_edge.Forward(tape, f)));
  }

  // Stacked convolution layers.
  if (model->config().use_tree_conv) {
    for (const LSchedModel::ConvLayer& layer : model->conv) {
      enc.node_emb =
          TreeConvLayer(model, layer, q, enc.node_emb, enc.edge_emb, tape);
    }
  } else {
    for (int l = 0; l < model->config().num_conv_layers; ++l) {
      enc.node_emb = GcnLayer(model, q, enc.node_emb, tape);
    }
  }

  // PQE: summarize nodes (NE || OPF) and edges (EE || EDF) into one vector
  // via the false-edges-to-summary-node message passing of Fig. 6.
  Var node_sum;
  for (int i = 0; i < q.num_nodes; ++i) {
    Var cat = tape->ConcatCols(
        {enc.node_emb[static_cast<size_t>(i)],
         tape->Constant(Matrix::FromRow(q.opf[static_cast<size_t>(i)]))});
    Var msg = tape->Relu(model->pqe_node_in.Forward(tape, cat));
    node_sum = i == 0 ? msg : tape->Add(node_sum, msg);
  }
  Var edge_sum;
  if (!q.edf.empty()) {
    for (size_t j = 0; j < q.edf.size(); ++j) {
      Var cat = tape->ConcatCols(
          {enc.edge_emb[j], tape->Constant(Matrix::FromRow(q.edf[j]))});
      Var msg = tape->Relu(model->pqe_edge_in.Forward(tape, cat));
      edge_sum = j == 0 ? msg : tape->Add(edge_sum, msg);
    }
  } else {
    edge_sum = tape->Constant(Matrix(1, sd, 0.0));
  }
  enc.pqe = model->pqe_out.Forward(tape, tape->ConcatCols({node_sum,
                                                           edge_sum}));
  return enc;
}

// --- tape-free serving path -------------------------------------------------

namespace {

/// acc[0..d) += b[0..d) — mirrors Tape::Add on (1 x d) rows.
inline void AddRowInPlace(double* acc, const double* b, int d) {
  for (int j = 0; j < d; ++j) acc[j] += b[j];
}

/// GAT score y_k = a . (self_term || term_k): same summation order as
/// Tape::DotRows over the concatenated row (first the self half, then the
/// term half). Caller applies LeakyReLU.
inline double GatScore(const double* att, const double* self_term,
                       const double* term, int d) {
  double s = 0.0;
  for (int j = 0; j < d; ++j) s += att[j] * self_term[j];
  for (int j = 0; j < d; ++j) s += att[d + j] * term[j];
  return s;
}

/// One tape-free edge-aware tree-convolution layer over all nodes: the
/// per-node triangle filter + GAT math stays scalar (variable term counts),
/// but the channel-mixing projection is batched into one GEMM across every
/// node of the query.
void TreeConvLayerServing(const LSchedModel& model,
                          const LSchedModel::ConvLayer& layer,
                          const QueryFeatures& q, Matrix* node_emb,
                          const Matrix& edge_emb, ScratchArena* arena) {
  const int d = model.config().hidden_dim;
  const bool use_gat = model.config().use_gat;
  const double* w_self = layer.w_self->value.data();
  const std::array<const double*, 2> child_w = {layer.w_right->value.data(),
                                                layer.w_left->value.data()};
  const std::array<const double*, 2> edge_w = {layer.w_eright->value.data(),
                                               layer.w_eleft->value.data()};
  const double* att = layer.att->value.data();

  // Up to 5 terms per node: self + 2 x (child, edge).
  Matrix* terms = arena->Alloc(5, d);
  Matrix* combined_mat = arena->Alloc(q.num_nodes, d);
  for (int i = 0; i < q.num_nodes; ++i) {
    const double* x_i =
        node_emb->data() + static_cast<size_t>(i) * static_cast<size_t>(d);
    int num_terms = 0;
    auto term_row = [&](int k) {
      return terms->data() + static_cast<size_t>(k) * static_cast<size_t>(d);
    };
    double* self_term = term_row(num_terms++);
    for (int j = 0; j < d; ++j) self_term[j] = x_i[j] * w_self[j];
    for (int s = 0; s < 2; ++s) {
      const int child = q.child_node[static_cast<size_t>(i)][s];
      const int edge = q.child_edge[static_cast<size_t>(i)][s];
      if (child < 0) continue;
      const double* xc = node_emb->data() +
                         static_cast<size_t>(child) * static_cast<size_t>(d);
      double* t = term_row(num_terms++);
      for (int j = 0; j < d; ++j) t[j] = xc[j] * child_w[s][j];
      const double* ec =
          edge_emb.data() + static_cast<size_t>(edge) * static_cast<size_t>(d);
      double* te = term_row(num_terms++);
      for (int j = 0; j < d; ++j) te[j] = ec[j] * edge_w[s][j];
    }

    double* combined = combined_mat->data() +
                       static_cast<size_t>(i) * static_cast<size_t>(d);
    if (use_gat && num_terms > 1) {
      double logits[5];
      for (int k = 0; k < num_terms; ++k) {
        const double y = GatScore(att, self_term, term_row(k), d);
        logits[k] = y > 0.0 ? y : 0.2 * y;  // LeakyReLU, tape alpha
      }
      const double lse = LogSumExp(logits, static_cast<size_t>(num_terms));
      for (int k = 0; k < num_terms; ++k) {
        const double zk = std::exp(logits[k] - lse);
        const double* t = term_row(k);
        if (k == 0) {
          for (int j = 0; j < d; ++j) combined[j] = t[j] * zk;
        } else {
          for (int j = 0; j < d; ++j) combined[j] += t[j] * zk;
        }
      }
    } else {
      for (int j = 0; j < d; ++j) combined[j] = self_term[j];
      for (int k = 1; k < num_terms; ++k) {
        AddRowInPlace(combined, term_row(k), d);
      }
    }
  }
  // Batched channel mix: one GEMM for the whole query's nodes.
  Matrix* mixed = arena->Alloc(q.num_nodes, d);
  LinearForwardInto(layer.mix, *combined_mat, mixed);
  ReluInPlace(mixed);
  *node_emb = *mixed;
}

/// Tape-free sequential message-passing GCN layer (ablation fallback).
void GcnLayerServing(const LSchedModel& model, const QueryFeatures& q,
                     Matrix* node_emb, ScratchArena* arena) {
  const int d = model.config().hidden_dim;
  Matrix* row = arena->Alloc(1, d);
  Matrix* h = arena->Alloc(1, d);
  Matrix* child_out = arena->Alloc(1, d);
  for (int i : q.topo_order) {
    double* x_i =
        node_emb->data() + static_cast<size_t>(i) * static_cast<size_t>(d);
    for (int j = 0; j < d; ++j) row->data()[j] = x_i[j];
    LinearForwardInto(model.gcn_self, *row, h);
    for (int s = 0; s < 2; ++s) {
      const int child = q.child_node[static_cast<size_t>(i)][s];
      if (child < 0) continue;
      const double* xc = node_emb->data() +
                         static_cast<size_t>(child) * static_cast<size_t>(d);
      for (int j = 0; j < d; ++j) row->data()[j] = xc[j];
      LinearForwardInto(model.gcn_child, *row, child_out);
      AddRowInPlace(h->data(), child_out->data(), d);
    }
    for (int j = 0; j < d; ++j) x_i[j] = h->data()[j] > 0.0 ? h->data()[j] : 0.0;
  }
}

}  // namespace

ServingEncodedQuery EncodeQueryServing(const LSchedModel& model,
                                       const QueryFeatures& q,
                                       ScratchArena* arena) {
  const LSchedConfig& cfg = model.config();
  const int d = cfg.hidden_dim;
  const int sd = cfg.summary_dim;
  const int opf_dim = cfg.features.opf_dim();
  const int edf_dim = cfg.features.edf_dim();
  const int num_edges = static_cast<int>(q.edf.size());
  ServingEncodedQuery out;

  // Initial projections, batched over all nodes / edges of the query.
  Matrix* opf_mat = arena->Alloc(q.num_nodes, opf_dim);
  for (int i = 0; i < q.num_nodes; ++i) {
    const std::vector<double>& f = q.opf[static_cast<size_t>(i)];
    std::copy(f.begin(), f.end(),
              opf_mat->data() + static_cast<size_t>(i) *
                                    static_cast<size_t>(opf_dim));
  }
  Matrix* ne = arena->Alloc(q.num_nodes, d);
  LinearForwardInto(model.proj_node, *opf_mat, ne);
  ReluInPlace(ne);

  Matrix* edf_mat = arena->Alloc(num_edges, edf_dim);
  for (int e = 0; e < num_edges; ++e) {
    const std::vector<double>& f = q.edf[static_cast<size_t>(e)];
    std::copy(f.begin(), f.end(),
              edf_mat->data() + static_cast<size_t>(e) *
                                    static_cast<size_t>(edf_dim));
  }
  out.edge_emb.Resize(num_edges, d);
  if (num_edges > 0) {
    Matrix* ee = arena->Alloc(num_edges, d);
    LinearForwardInto(model.proj_edge, *edf_mat, ee);
    ReluInPlace(ee);
    out.edge_emb = *ee;
  }

  // Stacked convolution layers.
  if (cfg.use_tree_conv) {
    for (const LSchedModel::ConvLayer& layer : model.conv) {
      TreeConvLayerServing(model, layer, q, ne, out.edge_emb, arena);
    }
  } else {
    for (int l = 0; l < cfg.num_conv_layers; ++l) {
      GcnLayerServing(model, q, ne, arena);
    }
  }
  out.node_emb = *ne;

  // PQE: batched node / edge messages, then ordered row-summation (same
  // accumulation order as the tape's sequential Adds).
  Matrix* node_cat = arena->Alloc(q.num_nodes, d + opf_dim);
  for (int i = 0; i < q.num_nodes; ++i) {
    double* row = node_cat->data() +
                  static_cast<size_t>(i) * static_cast<size_t>(d + opf_dim);
    const double* nrow = out.node_emb.data() +
                         static_cast<size_t>(i) * static_cast<size_t>(d);
    std::copy(nrow, nrow + d, row);
    const std::vector<double>& f = q.opf[static_cast<size_t>(i)];
    std::copy(f.begin(), f.end(), row + d);
  }
  Matrix* node_msgs = MlpForward(model.pqe_node_in, *node_cat, arena);
  ReluInPlace(node_msgs);
  Matrix* node_sum = arena->Alloc(1, sd);
  for (int i = 0; i < q.num_nodes; ++i) {
    const double* row =
        node_msgs->data() + static_cast<size_t>(i) * static_cast<size_t>(sd);
    if (i == 0) {
      std::copy(row, row + sd, node_sum->data());
    } else {
      AddRowInPlace(node_sum->data(), row, sd);
    }
  }

  Matrix* edge_sum = arena->Alloc(1, sd);
  if (num_edges > 0) {
    Matrix* edge_cat = arena->Alloc(num_edges, d + edf_dim);
    for (int e = 0; e < num_edges; ++e) {
      double* row = edge_cat->data() +
                    static_cast<size_t>(e) * static_cast<size_t>(d + edf_dim);
      const double* erow = out.edge_emb.data() +
                           static_cast<size_t>(e) * static_cast<size_t>(d);
      std::copy(erow, erow + d, row);
      const std::vector<double>& f = q.edf[static_cast<size_t>(e)];
      std::copy(f.begin(), f.end(), row + d);
    }
    Matrix* edge_msgs = MlpForward(model.pqe_edge_in, *edge_cat, arena);
    ReluInPlace(edge_msgs);
    for (int e = 0; e < num_edges; ++e) {
      const double* row = edge_msgs->data() +
                          static_cast<size_t>(e) * static_cast<size_t>(sd);
      if (e == 0) {
        std::copy(row, row + sd, edge_sum->data());
      } else {
        AddRowInPlace(edge_sum->data(), row, sd);
      }
    }
  }  // else: zeros, matching the tape's zero constant.

  Matrix* pqe_cat = arena->Alloc(1, 2 * sd);
  std::copy(node_sum->data(), node_sum->data() + sd, pqe_cat->data());
  std::copy(edge_sum->data(), edge_sum->data() + sd, pqe_cat->data() + sd);
  out.pqe = *MlpForward(model.pqe_out, *pqe_cat, arena);
  return out;
}

EncodingCache::Entry& EncodingCache::GetStructural(
    const QueryState& q, uint64_t version, const LSchedModel& model,
    const FeatureExtractor& extractor) {
  const uint64_t epoch = model.params().value_epoch();
  if (epoch != params_epoch_) {
    // Parameter values moved (optimizer step / checkpoint load): every
    // cached encoding is stale regardless of query versions.
    entries_.clear();
    params_epoch_ = epoch;
  }
  // Process-wide mirrors of the per-instance counters feed the "encoder"
  // counter table (obs/profiler.h); sharded counters keep this cheap.
  static obs::Counter* hit_counter =
      obs::MetricsRegistry::Global().GetCounter("sched.encoder_cache_hits");
  static obs::Counter* miss_counter =
      obs::MetricsRegistry::Global().GetCounter("sched.encoder_cache_misses");
  Entry& e = entries_[q.id()];
  if (e.version == version && version != 0) {
    ++hits_;
    hit_counter->Add(1);
    return e;
  }
  ++misses_;
  miss_counter->Add(1);
  e.version = version;
  e.features = extractor.ExtractQueryStructural(q);
  e.candidates = FeatureExtractor::SchedulableCandidates(q);
  e.encoded = false;
  return e;
}

Matrix EdfAggregate(const QueryFeatures& q, int op, int edf_dim) {
  Matrix agg(1, edf_dim, 0.0);
  int count = 0;
  auto add = [&](int e) {
    for (int c = 0; c < edf_dim; ++c) {
      agg.at(0, c) += q.edf[static_cast<size_t>(e)][static_cast<size_t>(c)];
    }
    ++count;
  };
  for (int e : q.in_edges[static_cast<size_t>(op)]) add(e);
  for (int e : q.out_edges[static_cast<size_t>(op)]) add(e);
  if (count > 0) {
    for (int c = 0; c < edf_dim; ++c) {
      agg.at(0, c) /= static_cast<double>(count);
    }
  }
  return agg;
}

void EncodingCache::EnsureEncoded(Entry* entry, const LSchedModel& model,
                                  ScratchArena* arena) {
  if (entry->encoded) return;
  entry->enc = EncodeQueryServing(model, entry->features, arena);
  // Pre-assemble the head-input row of every candidate while the encodings
  // are hot. Same ordered arithmetic (copy, +=, scale) as the predictor's
  // per-event fallback assembly, so the cached rows are bit-identical to
  // recomputing them at each event.
  const LSchedConfig& cfg = model.config();
  const int d = cfg.hidden_dim;
  const int sd = cfg.summary_dim;
  const int edf_dim = cfg.features.edf_dim();
  const int width = 2 * d + sd + edf_dim;
  const QueryFeatures& q = entry->features;
  const ServingEncodedQuery& enc = entry->enc;
  const int nc = static_cast<int>(entry->candidates.size());
  entry->head_in.Resize(nc, width);
  for (int c = 0; c < nc; ++c) {
    const int op = entry->candidates[static_cast<size_t>(c)].first;
    double* row = entry->head_in.data() +
                  static_cast<size_t>(c) * static_cast<size_t>(width);
    const double* ne = enc.node_emb.data() +
                       static_cast<size_t>(op) * static_cast<size_t>(d);
    std::copy(ne, ne + d, row);
    // Mean in-edge embedding — same ordered sum + scale as the tape path.
    double* ee = row + d;
    const std::vector<int>& edges = q.in_edges[static_cast<size_t>(op)];
    if (edges.empty()) {
      std::fill(ee, ee + d, 0.0);
    } else {
      for (size_t k = 0; k < edges.size(); ++k) {
        const double* erow =
            enc.edge_emb.data() +
            static_cast<size_t>(edges[k]) * static_cast<size_t>(d);
        if (k == 0) {
          std::copy(erow, erow + d, ee);
        } else {
          for (int j = 0; j < d; ++j) ee[j] += erow[j];
        }
      }
      const double inv = 1.0 / static_cast<double>(edges.size());
      for (int j = 0; j < d; ++j) ee[j] *= inv;
    }
    std::copy(enc.pqe.data(), enc.pqe.data() + sd, row + 2 * d);
    const Matrix edf_agg = EdfAggregate(q, op, edf_dim);
    std::copy(edf_agg.data(), edf_agg.data() + edf_dim, row + 2 * d + sd);
  }
  entry->encoded = true;
}

const EncodingCache::Entry& EncodingCache::Get(const QueryState& q,
                                               uint64_t version,
                                               const LSchedModel& model,
                                               const FeatureExtractor& extractor,
                                               ScratchArena* arena) {
  Entry& e = GetStructural(q, version, model, extractor);
  EnsureEncoded(&e, model, arena);
  return e;
}

void EncodingCache::Clear() {
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

void EncodingCache::Trim(const std::vector<QueryState*>& live) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool found = false;
    for (const QueryState* q : live) {
      if (q->id() == it->first) {
        found = true;
        break;
      }
    }
    it = found ? std::next(it) : entries_.erase(it);
  }
}

EncodedState EncodeState(LSchedModel* model, const StateFeatures& state,
                         Tape* tape) {
  EncodedState out;
  out.queries.reserve(state.queries.size());
  for (const QueryFeatures& q : state.queries) {
    out.queries.push_back(EncodeQuery(model, q, tape));
  }
  // AQE: summarize concat(PQE, QF) across queries (Fig. 6 bottom).
  Var sum;
  for (size_t qi = 0; qi < state.queries.size(); ++qi) {
    Var cat = tape->ConcatCols(
        {out.queries[qi].pqe,
         tape->Constant(Matrix::FromRow(state.queries[qi].qf))});
    Var msg = tape->Relu(model->aqe_in.Forward(tape, cat));
    sum = qi == 0 ? msg : tape->Add(sum, msg);
  }
  if (state.queries.empty()) {
    sum = tape->Constant(Matrix(1, model->config().summary_dim, 0.0));
  }
  out.aqe = model->aqe_out.Forward(tape, sum);
  return out;
}

}  // namespace lsched

#include "core/encoder.h"

#include "util/logging.h"

namespace lsched {

namespace {

/// One edge-aware tree-convolution layer (Eq. 2) with optional GAT
/// attention weighting (Eqs. 3-5) applied to every node in parallel.
std::vector<Var> TreeConvLayer(LSchedModel* model,
                               const LSchedModel::ConvLayer& layer,
                               const QueryFeatures& q,
                               const std::vector<Var>& x,
                               const std::vector<Var>& e, Tape* tape) {
  const bool use_gat = model->config().use_gat;
  std::vector<Var> out;
  out.reserve(x.size());

  Var w_self = tape->Leaf(layer.w_self);
  Var w_left = tape->Leaf(layer.w_left);
  Var w_right = tape->Leaf(layer.w_right);
  Var w_eleft = tape->Leaf(layer.w_eleft);
  Var w_eright = tape->Leaf(layer.w_eright);
  Var att = tape->Leaf(layer.att);

  for (int i = 0; i < q.num_nodes; ++i) {
    // Weighted terms of the triangle filter. Slot 0 = right (heaviest
    // producer), slot 1 = left. Missing children simply contribute nothing
    // (equivalent to zero-padded leaves in standard tree convolution).
    std::vector<Var> terms;
    Var self_term = tape->Mul(x[static_cast<size_t>(i)], w_self);
    terms.push_back(self_term);
    const std::array<Var, 2> child_w = {w_right, w_left};
    const std::array<Var, 2> edge_w = {w_eright, w_eleft};
    for (int s = 0; s < 2; ++s) {
      const int child = q.child_node[static_cast<size_t>(i)][s];
      const int edge = q.child_edge[static_cast<size_t>(i)][s];
      if (child < 0) continue;
      terms.push_back(tape->Mul(x[static_cast<size_t>(child)], child_w[s]));
      terms.push_back(tape->Mul(e[static_cast<size_t>(edge)], edge_w[s]));
    }

    Var combined;
    if (use_gat && terms.size() > 1) {
      // Un-normalized scores y_k = LeakyReLU(a . (self_term || term_k))
      // (Eq. 3; the Hadamard-with-a formulation followed by the sum that
      // makes the score scalar, as in standard GAT), then softmax (Eq. 4).
      std::vector<Var> scores;
      scores.reserve(terms.size());
      for (const Var& term : terms) {
        Var cat = tape->ConcatCols({self_term, term});
        scores.push_back(tape->LeakyRelu(tape->DotRows(att, cat)));
      }
      Var logits = tape->ConcatCols(scores);
      Var logz = tape->LogSoftmaxRow(logits);
      for (size_t k = 0; k < terms.size(); ++k) {
        Var zk = tape->Exp(tape->PickCol(logz, static_cast<int>(k)));
        Var weighted = tape->Mul(terms[k], zk);
        combined = k == 0 ? weighted : tape->Add(combined, weighted);
      }
    } else {
      // Isotropic aggregation (the Fig. 15 "w/o GAT" ablation): every term
      // contributes equally, per Eq. 2.
      for (size_t k = 0; k < terms.size(); ++k) {
        combined = k == 0 ? terms[k] : tape->Add(combined, terms[k]);
      }
    }
    out.push_back(tape->Relu(layer.mix.Forward(tape, combined)));
  }
  return out;
}

/// Sequential message-passing GCN layer (the Decima-style encoder used for
/// the "w/o triangle convolution" ablation): children embeddings computed
/// earlier in the same sweep are fused into their parents, which is exactly
/// the within-iteration indirect fusion the paper identifies as the source
/// of over-smoothing (§4.2.1).
std::vector<Var> GcnLayer(LSchedModel* model, const QueryFeatures& q,
                          const std::vector<Var>& x, Tape* tape) {
  std::vector<Var> out = x;
  for (int i : q.topo_order) {  // producers first: sequential steps
    Var h = model->gcn_self.Forward(tape, out[static_cast<size_t>(i)]);
    for (int s = 0; s < 2; ++s) {
      const int child = q.child_node[static_cast<size_t>(i)][s];
      if (child < 0) continue;
      h = tape->Add(
          h, model->gcn_child.Forward(tape, out[static_cast<size_t>(child)]));
    }
    out[static_cast<size_t>(i)] = tape->Relu(h);
  }
  return out;
}

}  // namespace

EncodedQuery EncodeQuery(LSchedModel* model, const QueryFeatures& q,
                         Tape* tape) {
  EncodedQuery enc;
  const int sd = model->config().summary_dim;

  // Initial projections of OPF and EDF.
  enc.node_emb.reserve(static_cast<size_t>(q.num_nodes));
  for (int i = 0; i < q.num_nodes; ++i) {
    Var f = tape->Constant(Matrix::FromRow(q.opf[static_cast<size_t>(i)]));
    enc.node_emb.push_back(
        tape->Relu(model->proj_node.Forward(tape, f)));
  }
  enc.edge_emb.reserve(q.edf.size());
  for (const std::vector<double>& edf : q.edf) {
    Var f = tape->Constant(Matrix::FromRow(edf));
    enc.edge_emb.push_back(tape->Relu(model->proj_edge.Forward(tape, f)));
  }

  // Stacked convolution layers.
  if (model->config().use_tree_conv) {
    for (const LSchedModel::ConvLayer& layer : model->conv) {
      enc.node_emb =
          TreeConvLayer(model, layer, q, enc.node_emb, enc.edge_emb, tape);
    }
  } else {
    for (int l = 0; l < model->config().num_conv_layers; ++l) {
      enc.node_emb = GcnLayer(model, q, enc.node_emb, tape);
    }
  }

  // PQE: summarize nodes (NE || OPF) and edges (EE || EDF) into one vector
  // via the false-edges-to-summary-node message passing of Fig. 6.
  Var node_sum;
  for (int i = 0; i < q.num_nodes; ++i) {
    Var cat = tape->ConcatCols(
        {enc.node_emb[static_cast<size_t>(i)],
         tape->Constant(Matrix::FromRow(q.opf[static_cast<size_t>(i)]))});
    Var msg = tape->Relu(model->pqe_node_in.Forward(tape, cat));
    node_sum = i == 0 ? msg : tape->Add(node_sum, msg);
  }
  Var edge_sum;
  if (!q.edf.empty()) {
    for (size_t j = 0; j < q.edf.size(); ++j) {
      Var cat = tape->ConcatCols(
          {enc.edge_emb[j], tape->Constant(Matrix::FromRow(q.edf[j]))});
      Var msg = tape->Relu(model->pqe_edge_in.Forward(tape, cat));
      edge_sum = j == 0 ? msg : tape->Add(edge_sum, msg);
    }
  } else {
    edge_sum = tape->Constant(Matrix(1, sd, 0.0));
  }
  enc.pqe = model->pqe_out.Forward(tape, tape->ConcatCols({node_sum,
                                                           edge_sum}));
  return enc;
}

EncodedState EncodeState(LSchedModel* model, const StateFeatures& state,
                         Tape* tape) {
  EncodedState out;
  out.queries.reserve(state.queries.size());
  for (const QueryFeatures& q : state.queries) {
    out.queries.push_back(EncodeQuery(model, q, tape));
  }
  // AQE: summarize concat(PQE, QF) across queries (Fig. 6 bottom).
  Var sum;
  for (size_t qi = 0; qi < state.queries.size(); ++qi) {
    Var cat = tape->ConcatCols(
        {out.queries[qi].pqe,
         tape->Constant(Matrix::FromRow(state.queries[qi].qf))});
    Var msg = tape->Relu(model->aqe_in.Forward(tape, cat));
    sum = qi == 0 ? msg : tape->Add(sum, msg);
  }
  if (state.queries.empty()) {
    sum = tape->Constant(Matrix(1, model->config().summary_dim, 0.0));
  }
  out.aqe = model->aqe_out.Forward(tape, sum);
  return out;
}

}  // namespace lsched

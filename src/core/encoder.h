#ifndef LSCHED_CORE_ENCODER_H_
#define LSCHED_CORE_ENCODER_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/features.h"
#include "core/model.h"
#include "nn/autograd.h"
#include "nn/inference.h"

namespace lsched {

/// Embeddings of one query produced by the Single Query Encoder + PQE
/// summarization (paper Fig. 6).
struct EncodedQuery {
  std::vector<Var> node_emb;  ///< NE, one (1 x d) per operator
  std::vector<Var> edge_emb;  ///< EE, one (1 x d) per plan edge
  Var pqe;                    ///< per-query embedding (1 x summary_dim)
};

/// Encoder output for the full system state.
struct EncodedState {
  std::vector<EncodedQuery> queries;
  Var aqe;  ///< all-queries embedding (1 x summary_dim)
};

/// Runs the Query Encoder on `state` over `tape`:
///  - projects OPF/EDF into d-dim embeddings,
///  - stacks edge-aware tree-convolution layers (Eq. 2) weighted by GAT
///    attention scores (Eqs. 3-5), or the sequential-message-passing GCN
///    fallback when config.use_tree_conv is false,
///  - summarizes per query (PQE) and across queries (AQE).
EncodedState EncodeState(LSchedModel* model, const StateFeatures& state,
                         Tape* tape);

/// Encodes one query (exposed for tests and micro-benchmarks).
EncodedQuery EncodeQuery(LSchedModel* model, const QueryFeatures& q,
                         Tape* tape);

/// --- tape-free serving path (Scheduler API v2, DESIGN.md §9) -------------

/// Per-query encodings on the serving fast path: plain matrices, no Vars.
/// Node/edge embeddings are batched row-major — row i of node_emb is
/// operator i's embedding — so the decision heads can gather candidate rows
/// straight into GEMM inputs.
struct ServingEncodedQuery {
  Matrix node_emb;  ///< (num_nodes x hidden_dim), post conv stack
  Matrix edge_emb;  ///< (num_edges x hidden_dim)
  Matrix pqe;       ///< (1 x summary_dim)
};

/// Mean raw EDF over all edges touching `op` (input of the pipeline-degree
/// head, Fig. 7 middle). Purely structural — shared by the tape predictor,
/// the serving fallback path, and the cached head-input rows below.
Matrix EdfAggregate(const QueryFeatures& q, int op, int edf_dim);

/// Tape-free forward of the Single Query Encoder. Bit-identical to
/// EncodeQuery's values (same loop and accumulation order per row), but
/// allocates nothing beyond `arena` scratch plus the returned matrices, and
/// never constructs a Tape. Depends only on the structural features, so the
/// result is cacheable per (query id, context version).
ServingEncodedQuery EncodeQueryServing(const LSchedModel& model,
                                       const QueryFeatures& q,
                                       ScratchArena* arena);

/// Per-query serving cache keyed by the SchedulingContext's (id, version)
/// pairs and the model's parameter value-epoch. A hit returns the cached
/// structural features, candidate list, and encoder outputs without
/// touching the plan; a miss re-extracts and re-encodes just that query.
class EncodingCache {
 public:
  struct Entry {
    uint64_t version = 0;
    QueryFeatures features;  ///< structural only — qf is left empty
    /// Schedulable (op, valid-pipeline-length) pairs.
    std::vector<std::pair<int, int>> candidates;
    /// True once `enc` reflects `features` (encoding is lazy: an event
    /// whose candidate set turns out empty never pays for the forward).
    bool encoded = false;
    ServingEncodedQuery enc;
    /// Pre-assembled decision-head input rows, one per candidate (same
    /// order as `candidates`): [NE | mean-in-EE | PQE | EDF-aggregate],
    /// width 2*hidden_dim + summary_dim + edf_dim. Everything in a row is
    /// structural, so consecutive serving events that hit this entry skip
    /// the per-candidate gather/aggregate work entirely — the per-event
    /// cost shrinks to QF assembly, row copies, and the head GEMMs. Valid
    /// iff `encoded`.
    Matrix head_in;
  };

  /// Refreshes the structural half of `q`'s entry (features + candidate
  /// list) if `version` (from SchedulingContext::query_version) or the
  /// model's parameter epoch moved. Does NOT encode — callers that decide
  /// to run the forward pass call EnsureEncoded on the returned entry.
  Entry& GetStructural(const QueryState& q, uint64_t version,
                       const LSchedModel& model,
                       const FeatureExtractor& extractor);

  /// Runs the serving encoder for `entry` if its encoding is stale.
  void EnsureEncoded(Entry* entry, const LSchedModel& model,
                     ScratchArena* arena);

  /// GetStructural + EnsureEncoded in one call.
  const Entry& Get(const QueryState& q, uint64_t version,
                   const LSchedModel& model, const FeatureExtractor& extractor,
                   ScratchArena* arena);

  void Clear();
  /// Drops entries for queries no longer in `live` (call occasionally; a
  /// completed query's entry is otherwise retained until Clear()).
  void Trim(const std::vector<QueryState*>& live);

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<QueryId, Entry> entries_;
  uint64_t params_epoch_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace lsched

#endif  // LSCHED_CORE_ENCODER_H_

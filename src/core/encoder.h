#ifndef LSCHED_CORE_ENCODER_H_
#define LSCHED_CORE_ENCODER_H_

#include <vector>

#include "core/features.h"
#include "core/model.h"
#include "nn/autograd.h"

namespace lsched {

/// Embeddings of one query produced by the Single Query Encoder + PQE
/// summarization (paper Fig. 6).
struct EncodedQuery {
  std::vector<Var> node_emb;  ///< NE, one (1 x d) per operator
  std::vector<Var> edge_emb;  ///< EE, one (1 x d) per plan edge
  Var pqe;                    ///< per-query embedding (1 x summary_dim)
};

/// Encoder output for the full system state.
struct EncodedState {
  std::vector<EncodedQuery> queries;
  Var aqe;  ///< all-queries embedding (1 x summary_dim)
};

/// Runs the Query Encoder on `state` over `tape`:
///  - projects OPF/EDF into d-dim embeddings,
///  - stacks edge-aware tree-convolution layers (Eq. 2) weighted by GAT
///    attention scores (Eqs. 3-5), or the sequential-message-passing GCN
///    fallback when config.use_tree_conv is false,
///  - summarizes per query (PQE) and across queries (AQE).
EncodedState EncodeState(LSchedModel* model, const StateFeatures& state,
                         Tape* tape);

/// Encodes one query (exposed for tests and micro-benchmarks).
EncodedQuery EncodeQuery(LSchedModel* model, const QueryFeatures& q,
                         Tape* tape);

}  // namespace lsched

#endif  // LSCHED_CORE_ENCODER_H_

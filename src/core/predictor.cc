#include "core/predictor.h"

#include <algorithm>

#include "util/logging.h"

namespace lsched {

namespace {

/// Mean of the edge embeddings incident (incoming) to `op`, or zeros.
Var InEdgeEmbedding(const EncodedQuery& eq, const QueryFeatures& q, int op,
                    int dim, Tape* tape) {
  const std::vector<int>& edges = q.in_edges[static_cast<size_t>(op)];
  if (edges.empty()) return tape->Constant(Matrix(1, dim, 0.0));
  Var sum;
  for (size_t k = 0; k < edges.size(); ++k) {
    const Var& e = eq.edge_emb[static_cast<size_t>(edges[k])];
    sum = k == 0 ? e : tape->Add(sum, e);
  }
  return tape->Scale(sum, 1.0 / static_cast<double>(edges.size()));
}

/// Mean raw EDF over all edges touching `op` (input of the degree head).
Matrix EdfAggregate(const QueryFeatures& q, int op, int edf_dim) {
  Matrix agg(1, edf_dim, 0.0);
  int count = 0;
  auto add = [&](int e) {
    for (int c = 0; c < edf_dim; ++c) {
      agg.at(0, c) += q.edf[static_cast<size_t>(e)][static_cast<size_t>(c)];
    }
    ++count;
  };
  for (int e : q.in_edges[static_cast<size_t>(op)]) add(e);
  for (int e : q.out_edges[static_cast<size_t>(op)]) add(e);
  if (count > 0) {
    for (int c = 0; c < edf_dim; ++c) {
      agg.at(0, c) /= static_cast<double>(count);
    }
  }
  return agg;
}

}  // namespace

PredictorOutput RunPredictor(LSchedModel* model, const StateFeatures& state,
                             const EncodedState& encoded, Tape* tape) {
  LSCHED_CHECK(!state.candidates.empty());
  const LSchedConfig& cfg = model->config();
  const int d = cfg.hidden_dim;
  const int edf_dim = cfg.features.edf_dim();
  const int max_deg = cfg.max_pipeline_degree;
  const int num_par = static_cast<int>(cfg.parallelism_fractions.size());

  PredictorOutput out;
  std::vector<Var> root_scores;
  root_scores.reserve(state.candidates.size());

  for (const Candidate& cand : state.candidates) {
    const QueryFeatures& q = state.queries[static_cast<size_t>(cand.query_index)];
    const EncodedQuery& eq = encoded.queries[static_cast<size_t>(cand.query_index)];
    Var ne = eq.node_emb[static_cast<size_t>(cand.op)];
    Var ee = InEdgeEmbedding(eq, q, cand.op, d, tape);

    // Execution-roots head: score(NE, EE, PQE) (Fig. 7 left).
    Var root_in = tape->ConcatCols({ne, ee, eq.pqe});
    root_scores.push_back(model->root_head.Forward(tape, root_in));

    // Pipeline-degree head: same input + aggregated EDF of the root's
    // edges (Fig. 7 middle). Invalid degrees (beyond the currently-valid
    // chain) are masked out; the "w/o pipelining prediction" ablation masks
    // everything but degree 1.
    Var edf_agg = tape->Constant(EdfAggregate(q, cand.op, edf_dim));
    Var deg_in = tape->ConcatCols({ne, ee, eq.pqe, edf_agg});
    Var deg_logits = model->degree_head.Forward(tape, deg_in);
    Matrix mask(1, max_deg, 0.0);
    const int valid =
        cfg.predict_pipeline ? std::min(cand.max_degree, max_deg) : 1;
    for (int k = 0; k < max_deg; ++k) {
      if (k >= valid) mask.at(0, k) = -1e9;
    }
    deg_logits = tape->Add(deg_logits, tape->Constant(std::move(mask)));
    out.degree_logprobs.push_back(tape->LogSoftmaxRow(deg_logits));

    // Parallelism-degree head: AQE + PQE + QF (Fig. 7 right).
    Var qf = tape->Constant(Matrix::FromRow(q.qf));
    Var par_in = tape->ConcatCols({encoded.aqe, eq.pqe, qf});
    Var par_logits = model->par_head.Forward(tape, par_in);
    LSCHED_DCHECK(par_logits.cols() == num_par);
    if (!cfg.predict_parallelism) {
      // Force the full-pool bucket (the last fraction, 1.0).
      Matrix pmask(1, num_par, -1e9);
      pmask.at(0, num_par - 1) = 0.0;
      par_logits = tape->Add(par_logits, tape->Constant(std::move(pmask)));
    }
    out.par_logprobs.push_back(tape->LogSoftmaxRow(par_logits));
  }

  out.root_logprobs = tape->LogSoftmaxRow(tape->ConcatCols(root_scores));
  return out;
}

Var ActionLogProb(Tape* tape, const PredictorOutput& output,
                  const SchedulingAction& action) {
  Var lp = tape->PickCol(output.root_logprobs, action.candidate_index);
  lp = tape->Add(
      lp, tape->PickCol(
              output.degree_logprobs[static_cast<size_t>(action.candidate_index)],
              action.degree_index));
  lp = tape->Add(
      lp, tape->PickCol(
              output.par_logprobs[static_cast<size_t>(action.candidate_index)],
              action.parallelism_index));
  return lp;
}

namespace {
Var CategoricalEntropy(Tape* tape, Var logprobs) {
  // H = -sum p * log p. Masked entries have p == 0 exactly (exp underflow),
  // and 0 * -1e9 = -0, so they contribute nothing.
  Var p = tape->Exp(logprobs);
  return tape->Scale(tape->SumAll(tape->Mul(p, logprobs)), -1.0);
}
}  // namespace

Var ActionEntropy(Tape* tape, const PredictorOutput& output,
                  const SchedulingAction& action) {
  Var h = CategoricalEntropy(tape, output.root_logprobs);
  h = tape->Add(
      h, CategoricalEntropy(
             tape, output.degree_logprobs[static_cast<size_t>(
                       action.candidate_index)]));
  h = tape->Add(
      h, CategoricalEntropy(
             tape, output.par_logprobs[static_cast<size_t>(
                       action.candidate_index)]));
  return h;
}

}  // namespace lsched

#include "core/predictor.h"

#include <algorithm>

#include "util/logging.h"

namespace lsched {

namespace {

/// Mean of the edge embeddings incident (incoming) to `op`, or zeros.
Var InEdgeEmbedding(const EncodedQuery& eq, const QueryFeatures& q, int op,
                    int dim, Tape* tape) {
  const std::vector<int>& edges = q.in_edges[static_cast<size_t>(op)];
  if (edges.empty()) return tape->Constant(Matrix(1, dim, 0.0));
  Var sum;
  for (size_t k = 0; k < edges.size(); ++k) {
    const Var& e = eq.edge_emb[static_cast<size_t>(edges[k])];
    sum = k == 0 ? e : tape->Add(sum, e);
  }
  return tape->Scale(sum, 1.0 / static_cast<double>(edges.size()));
}

}  // namespace

PredictorOutput RunPredictor(LSchedModel* model, const StateFeatures& state,
                             const EncodedState& encoded, Tape* tape) {
  LSCHED_CHECK(!state.candidates.empty());
  const LSchedConfig& cfg = model->config();
  const int d = cfg.hidden_dim;
  const int edf_dim = cfg.features.edf_dim();
  const int max_deg = cfg.max_pipeline_degree;
  const int num_par = static_cast<int>(cfg.parallelism_fractions.size());

  PredictorOutput out;
  std::vector<Var> root_scores;
  root_scores.reserve(state.candidates.size());

  for (const Candidate& cand : state.candidates) {
    const QueryFeatures& q = state.queries[static_cast<size_t>(cand.query_index)];
    const EncodedQuery& eq = encoded.queries[static_cast<size_t>(cand.query_index)];
    Var ne = eq.node_emb[static_cast<size_t>(cand.op)];
    Var ee = InEdgeEmbedding(eq, q, cand.op, d, tape);

    // Execution-roots head: score(NE, EE, PQE) (Fig. 7 left).
    Var root_in = tape->ConcatCols({ne, ee, eq.pqe});
    root_scores.push_back(model->root_head.Forward(tape, root_in));

    // Pipeline-degree head: same input + aggregated EDF of the root's
    // edges (Fig. 7 middle). Invalid degrees (beyond the currently-valid
    // chain) are masked out; the "w/o pipelining prediction" ablation masks
    // everything but degree 1.
    Var edf_agg = tape->Constant(EdfAggregate(q, cand.op, edf_dim));
    Var deg_in = tape->ConcatCols({ne, ee, eq.pqe, edf_agg});
    Var deg_logits = model->degree_head.Forward(tape, deg_in);
    Matrix mask(1, max_deg, 0.0);
    const int valid =
        cfg.predict_pipeline ? std::min(cand.max_degree, max_deg) : 1;
    for (int k = 0; k < max_deg; ++k) {
      if (k >= valid) mask.at(0, k) = -1e9;
    }
    deg_logits = tape->Add(deg_logits, tape->Constant(std::move(mask)));
    out.degree_logprobs.push_back(tape->LogSoftmaxRow(deg_logits));

    // Parallelism-degree head: AQE + PQE + QF (Fig. 7 right).
    Var qf = tape->Constant(Matrix::FromRow(q.qf));
    Var par_in = tape->ConcatCols({encoded.aqe, eq.pqe, qf});
    Var par_logits = model->par_head.Forward(tape, par_in);
    LSCHED_DCHECK(par_logits.cols() == num_par);
    if (!cfg.predict_parallelism) {
      // Force the full-pool bucket (the last fraction, 1.0).
      Matrix pmask(1, num_par, -1e9);
      pmask.at(0, num_par - 1) = 0.0;
      par_logits = tape->Add(par_logits, tape->Constant(std::move(pmask)));
    }
    out.par_logprobs.push_back(tape->LogSoftmaxRow(par_logits));
  }

  out.root_logprobs = tape->LogSoftmaxRow(tape->ConcatCols(root_scores));
  return out;
}

Matrix ComputeAqeServing(const LSchedModel& model, const ServingStateView& view,
                         ScratchArena* arena) {
  const LSchedConfig& cfg = model.config();
  const int sd = cfg.summary_dim;
  const int qf_dim = cfg.features.qf_dim();
  const int nq = static_cast<int>(view.queries.size());
  Matrix* sum = arena->Alloc(1, sd);  // zero-filled: the empty-state constant
  if (nq > 0) {
    Matrix* cat = arena->Alloc(nq, sd + qf_dim);
    for (int qi = 0; qi < nq; ++qi) {
      double* row = cat->data() +
                    static_cast<size_t>(qi) * static_cast<size_t>(sd + qf_dim);
      const Matrix& pqe = view.encoded[static_cast<size_t>(qi)]->pqe;
      std::copy(pqe.data(), pqe.data() + sd, row);
      const std::vector<double>& qf = *view.qf[static_cast<size_t>(qi)];
      std::copy(qf.begin(), qf.end(), row + sd);
    }
    Matrix* msgs = MlpForward(model.aqe_in, *cat, arena);
    ReluInPlace(msgs);
    for (int qi = 0; qi < nq; ++qi) {
      const double* row =
          msgs->data() + static_cast<size_t>(qi) * static_cast<size_t>(sd);
      if (qi == 0) {
        std::copy(row, row + sd, sum->data());
      } else {
        for (int j = 0; j < sd; ++j) sum->data()[j] += row[j];
      }
    }
  }
  return *MlpForward(model.aqe_out, *sum, arena);
}

void RunPredictorServing(const LSchedModel& model, const ServingStateView& view,
                         const Matrix& aqe, ScratchArena* arena,
                         ServingPredictorOutput* out) {
  LSCHED_CHECK(!view.candidates.empty());
  const LSchedConfig& cfg = model.config();
  const int d = cfg.hidden_dim;
  const int sd = cfg.summary_dim;
  const int edf_dim = cfg.features.edf_dim();
  const int qf_dim = cfg.features.qf_dim();
  const int max_deg = cfg.max_pipeline_degree;
  const int num_par = static_cast<int>(cfg.parallelism_fractions.size());
  const int num_cands = static_cast<int>(view.candidates.size());

  // Assemble one row per candidate for each head, then run each head as a
  // single batched GEMM stack over all candidates. When the caller supplies
  // cached head rows (the agent's fast path), the root/degree inputs are
  // straight row copies; the per-candidate gather + EDF aggregation below
  // only runs as the fallback.
  const bool cached_rows =
      view.head_in.size() == view.queries.size() &&
      view.head_row.size() == view.candidates.size();
  Matrix* root_in = arena->Alloc(num_cands, 2 * d + sd);
  Matrix* deg_in = arena->Alloc(num_cands, 2 * d + sd + edf_dim);
  Matrix* par_in = arena->Alloc(num_cands, 2 * sd + qf_dim);
  Matrix* ee = arena->Alloc(1, d);
  for (int c = 0; c < num_cands; ++c) {
    const Candidate& cand = view.candidates[static_cast<size_t>(c)];
    const QueryFeatures& q = *view.queries[static_cast<size_t>(cand.query_index)];
    const ServingEncodedQuery& eq =
        *view.encoded[static_cast<size_t>(cand.query_index)];

    double* rrow = root_in->data() +
                   static_cast<size_t>(c) * static_cast<size_t>(2 * d + sd);
    double* drow =
        deg_in->data() +
        static_cast<size_t>(c) * static_cast<size_t>(2 * d + sd + edf_dim);
    if (cached_rows) {
      const Matrix& hin = *view.head_in[static_cast<size_t>(cand.query_index)];
      const double* hrow =
          hin.data() + static_cast<size_t>(view.head_row[static_cast<size_t>(c)]) *
                           static_cast<size_t>(2 * d + sd + edf_dim);
      std::copy(hrow, hrow + 2 * d + sd + edf_dim, drow);
      std::copy(hrow, hrow + 2 * d + sd, rrow);
    } else {
      const double* ne = eq.node_emb.data() +
                         static_cast<size_t>(cand.op) * static_cast<size_t>(d);

      // Mean in-edge embedding — same ordered sum + scale as the tape path.
      const std::vector<int>& edges = q.in_edges[static_cast<size_t>(cand.op)];
      if (edges.empty()) {
        for (int j = 0; j < d; ++j) ee->data()[j] = 0.0;
      } else {
        for (size_t k = 0; k < edges.size(); ++k) {
          const double* erow =
              eq.edge_emb.data() +
              static_cast<size_t>(edges[k]) * static_cast<size_t>(d);
          if (k == 0) {
            std::copy(erow, erow + d, ee->data());
          } else {
            for (int j = 0; j < d; ++j) ee->data()[j] += erow[j];
          }
        }
        const double inv = 1.0 / static_cast<double>(edges.size());
        for (int j = 0; j < d; ++j) ee->data()[j] *= inv;
      }

      std::copy(ne, ne + d, rrow);
      std::copy(ee->data(), ee->data() + d, rrow + d);
      std::copy(eq.pqe.data(), eq.pqe.data() + sd, rrow + 2 * d);

      std::copy(rrow, rrow + 2 * d + sd, drow);
      const Matrix edf_agg = EdfAggregate(q, cand.op, edf_dim);
      std::copy(edf_agg.data(), edf_agg.data() + edf_dim, drow + 2 * d + sd);
    }

    double* prow = par_in->data() +
                   static_cast<size_t>(c) * static_cast<size_t>(2 * sd + qf_dim);
    std::copy(aqe.data(), aqe.data() + sd, prow);
    std::copy(eq.pqe.data(), eq.pqe.data() + sd, prow + sd);
    const std::vector<double>& qf = *view.qf[static_cast<size_t>(cand.query_index)];
    std::copy(qf.begin(), qf.end(), prow + 2 * sd);
  }

  Matrix* root_scores = MlpForward(model.root_head, *root_in, arena);
  out->root_logprobs.Resize(1, num_cands);
  for (int c = 0; c < num_cands; ++c) {
    out->root_logprobs.data()[c] = root_scores->at(c, 0);
  }
  LogSoftmaxRowsInPlace(&out->root_logprobs);

  Matrix* deg_logits = MlpForward(model.degree_head, *deg_in, arena);
  out->degree_logprobs = *deg_logits;
  for (int c = 0; c < num_cands; ++c) {
    const Candidate& cand = view.candidates[static_cast<size_t>(c)];
    const int valid =
        cfg.predict_pipeline ? std::min(cand.max_degree, max_deg) : 1;
    double* row = out->degree_logprobs.data() +
                  static_cast<size_t>(c) * static_cast<size_t>(max_deg);
    // Tape adds an explicit mask matrix (0 or -1e9) to every entry; mirror
    // the additions exactly.
    for (int k = 0; k < max_deg; ++k) row[k] += k >= valid ? -1e9 : 0.0;
  }
  LogSoftmaxRowsInPlace(&out->degree_logprobs);

  Matrix* par_logits = MlpForward(model.par_head, *par_in, arena);
  out->par_logprobs = *par_logits;
  if (!cfg.predict_parallelism) {
    for (int c = 0; c < num_cands; ++c) {
      double* row = out->par_logprobs.data() +
                    static_cast<size_t>(c) * static_cast<size_t>(num_par);
      for (int k = 0; k < num_par; ++k) {
        row[k] += k == num_par - 1 ? 0.0 : -1e9;
      }
    }
  }
  LogSoftmaxRowsInPlace(&out->par_logprobs);
}

double ServingActionLogProb(const ServingPredictorOutput& output,
                            const SchedulingAction& action) {
  return output.root_logprobs.at(0, action.candidate_index) +
         output.degree_logprobs.at(action.candidate_index,
                                   action.degree_index) +
         output.par_logprobs.at(action.candidate_index,
                                action.parallelism_index);
}

Var ActionLogProb(Tape* tape, const PredictorOutput& output,
                  const SchedulingAction& action) {
  Var lp = tape->PickCol(output.root_logprobs, action.candidate_index);
  lp = tape->Add(
      lp, tape->PickCol(
              output.degree_logprobs[static_cast<size_t>(action.candidate_index)],
              action.degree_index));
  lp = tape->Add(
      lp, tape->PickCol(
              output.par_logprobs[static_cast<size_t>(action.candidate_index)],
              action.parallelism_index));
  return lp;
}

namespace {
Var CategoricalEntropy(Tape* tape, Var logprobs) {
  // H = -sum p * log p. Masked entries have p == 0 exactly (exp underflow),
  // and 0 * -1e9 = -0, so they contribute nothing.
  Var p = tape->Exp(logprobs);
  return tape->Scale(tape->SumAll(tape->Mul(p, logprobs)), -1.0);
}
}  // namespace

Var ActionEntropy(Tape* tape, const PredictorOutput& output,
                  const SchedulingAction& action) {
  Var h = CategoricalEntropy(tape, output.root_logprobs);
  h = tape->Add(
      h, CategoricalEntropy(
             tape, output.degree_logprobs[static_cast<size_t>(
                       action.candidate_index)]));
  h = tape->Add(
      h, CategoricalEntropy(
             tape, output.par_logprobs[static_cast<size_t>(
                       action.candidate_index)]));
  return h;
}

}  // namespace lsched

#include "core/reward.h"
#include <algorithm>

#include "util/math_util.h"

namespace lsched {

std::vector<double> ComputeRewards(const std::vector<Experience>& episode,
                                   const RewardConfig& config,
                                   double end_time) {
  std::vector<double> h(episode.size(), 0.0);
  double prev_time = 0.0;
  for (size_t d = 0; d < episode.size(); ++d) {
    const double dt = episode[d].time - prev_time;
    h[d] = dt * static_cast<double>(episode[d].num_running_queries);
    prev_time = episode[d].time;
  }
  // Terminal interval: queries kept running after the last decision.
  double h_terminal = 0.0;
  if (!episode.empty() && end_time > prev_time) {
    h_terminal = (end_time - prev_time) *
                 static_cast<double>(episode.back().num_running_queries);
  }
  std::vector<double> h_all = h;
  if (h_terminal > 0.0) h_all.push_back(h_terminal);
  const double p = Percentile(h_all, config.tail_percentile);
  std::vector<double> rewards(episode.size(), 0.0);
  const double wsum = config.w_avg + config.w_tail;
  auto reward_of = [&](double hd) {
    const double r_avg = -hd;
    // One-sided tail penalty: -(H_d - P) applied only when H_d exceeds the
    // percentile. The two-sided form of the paper's Eq. would hand out a
    // +P bonus to every below-percentile decision, which rewards policies
    // that concentrate latency into fewer, larger intervals (i.e. slower
    // schedules with more below-P decisions score higher).
    const double r_tail = -std::max(hd - p, 0.0);
    return wsum > 0.0
               ? (config.w_avg * r_avg + config.w_tail * r_tail) / wsum
               : 0.0;
  };
  for (size_t d = 0; d < h.size(); ++d) rewards[d] = reward_of(h[d]);
  if (!rewards.empty() && h_terminal > 0.0) {
    rewards.back() += reward_of(h_terminal);
  }
  return rewards;
}

std::vector<double> ComputeReturns(const std::vector<double>& rewards) {
  std::vector<double> g(rewards.size(), 0.0);
  double acc = 0.0;
  for (size_t i = rewards.size(); i-- > 0;) {
    acc += rewards[i];
    g[i] = acc;
  }
  return g;
}

}  // namespace lsched

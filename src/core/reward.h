#ifndef LSCHED_CORE_REWARD_H_
#define LSCHED_CORE_REWARD_H_

#include <vector>

#include "core/agent.h"

namespace lsched {

/// Weights of the average-vs-tail latency reward (paper §6). The final
/// per-decision reward is r_d = (w_avg * r1 + w_tail * r2) / (w_avg +
/// w_tail) with r1 = -H_d and r2 = -(H_d - P), where H_d = (t_d - t_{d-1})
/// * Q_d approximates the latency accumulated by the Q_d queries running in
/// the interval and P is the `tail_percentile`-th percentile of all H
/// values in the episode.
struct RewardConfig {
  double w_avg = 0.5;
  double w_tail = 0.5;
  double tail_percentile = 90.0;
};

/// Per-decision rewards for one episode of experiences (time-ordered).
/// `end_time` (the episode makespan), when past the last decision time,
/// charges the final execution interval to the last decision — without it
/// the tail after the last scheduling decision would be unpenalized and
/// the policy would optimize time-to-last-decision instead of completion.
std::vector<double> ComputeRewards(const std::vector<Experience>& episode,
                                   const RewardConfig& config,
                                   double end_time = -1.0);

/// Undiscounted returns G_d = sum_{k >= d} r_k.
std::vector<double> ComputeReturns(const std::vector<double>& rewards);

}  // namespace lsched

#endif  // LSCHED_CORE_REWARD_H_

#ifndef LSCHED_CORE_PREDICTOR_H_
#define LSCHED_CORE_PREDICTOR_H_

#include <vector>

#include "core/encoder.h"

namespace lsched {

/// The triple of sub-actions sampled at one scheduling decision
/// (paper §5.3): which execution root, what pipeline degree, and which
/// parallelism bucket for that root's query.
struct SchedulingAction {
  int candidate_index = -1;  ///< into StateFeatures::candidates
  int degree_index = 0;      ///< 0-based: pipeline degree = index + 1
  int parallelism_index = 0; ///< into config.parallelism_fractions
};

/// Differentiable outputs of the Scheduling Predictor for one state.
struct PredictorOutput {
  /// Log-probabilities over candidates (1 x num_candidates).
  Var root_logprobs;
  /// Per-candidate log-probabilities over pipeline degrees
  /// (1 x max_pipeline_degree each, invalid degrees masked to -inf).
  std::vector<Var> degree_logprobs;
  /// Per-candidate log-probabilities over parallelism buckets.
  std::vector<Var> par_logprobs;
};

/// Runs the three decision heads (Fig. 7) over the encoded state. Requires
/// state.candidates to be non-empty.
PredictorOutput RunPredictor(LSchedModel* model, const StateFeatures& state,
                             const EncodedState& encoded, Tape* tape);

/// Joint log-probability of `action` under `output` (sum of the three
/// categorical log-probs); differentiable.
Var ActionLogProb(Tape* tape, const PredictorOutput& output,
                  const SchedulingAction& action);

/// Sum of the entropies of the three categorical heads for the chosen
/// candidate — the exploration bonus used by the trainer.
Var ActionEntropy(Tape* tape, const PredictorOutput& output,
                  const SchedulingAction& action);

}  // namespace lsched

#endif  // LSCHED_CORE_PREDICTOR_H_

#ifndef LSCHED_CORE_PREDICTOR_H_
#define LSCHED_CORE_PREDICTOR_H_

#include <vector>

#include "core/encoder.h"

namespace lsched {

/// The triple of sub-actions sampled at one scheduling decision
/// (paper §5.3): which execution root, what pipeline degree, and which
/// parallelism bucket for that root's query.
struct SchedulingAction {
  int candidate_index = -1;  ///< into StateFeatures::candidates
  int degree_index = 0;      ///< 0-based: pipeline degree = index + 1
  int parallelism_index = 0; ///< into config.parallelism_fractions
};

/// Differentiable outputs of the Scheduling Predictor for one state.
struct PredictorOutput {
  /// Log-probabilities over candidates (1 x num_candidates).
  Var root_logprobs;
  /// Per-candidate log-probabilities over pipeline degrees
  /// (1 x max_pipeline_degree each, invalid degrees masked to -inf).
  std::vector<Var> degree_logprobs;
  /// Per-candidate log-probabilities over parallelism buckets.
  std::vector<Var> par_logprobs;
};

/// Runs the three decision heads (Fig. 7) over the encoded state. Requires
/// state.candidates to be non-empty.
PredictorOutput RunPredictor(LSchedModel* model, const StateFeatures& state,
                             const EncodedState& encoded, Tape* tape);

/// Joint log-probability of `action` under `output` (sum of the three
/// categorical log-probs); differentiable.
Var ActionLogProb(Tape* tape, const PredictorOutput& output,
                  const SchedulingAction& action);

/// Sum of the entropies of the three categorical heads for the chosen
/// candidate — the exploration bonus used by the trainer.
Var ActionEntropy(Tape* tape, const PredictorOutput& output,
                  const SchedulingAction& action);

/// --- tape-free serving path (Scheduler API v2, DESIGN.md §9) -------------

/// Borrowed view of everything the serving heads need at one event: cached
/// structural features + encodings per query, plus the fresh QF rows. All
/// pointers are parallel (queries[i], qf[i], encoded[i] describe the same
/// query); candidates index into them via Candidate::query_index.
struct ServingStateView {
  int total_threads = 0;
  int free_threads = 0;
  std::vector<const QueryFeatures*> queries;  ///< structural (qf unused)
  std::vector<const std::vector<double>*> qf; ///< fresh per-event QF rows
  std::vector<const ServingEncodedQuery*> encoded;
  std::vector<Candidate> candidates;
  /// Optional cached head-input rows (EncodingCache::Entry::head_in): one
  /// matrix per query, parallel to `queries`, each row a pre-assembled
  /// [NE | EE | PQE | EDF-agg]. When populated (together with `head_row`),
  /// RunPredictorServing copies row head_row[c] instead of re-gathering and
  /// re-aggregating embeddings per event. Leave empty to recompute.
  std::vector<const Matrix*> head_in;
  /// Per-candidate row index into head_in[candidates[c].query_index].
  std::vector<int> head_row;
};

/// Plain-matrix outputs of the serving heads. Row c of degree_logprobs /
/// par_logprobs is candidate c's distribution; root_logprobs is (1 x C).
/// Values are bit-identical to PredictorOutput's.
struct ServingPredictorOutput {
  Matrix root_logprobs;
  Matrix degree_logprobs;
  Matrix par_logprobs;
};

/// AQE for the serving path (per event — QF-dependent, never cached).
Matrix ComputeAqeServing(const LSchedModel& model, const ServingStateView& view,
                         ScratchArena* arena);

/// Runs the three decision heads over all candidates as three batched GEMM
/// stacks (one row per candidate). Requires view.candidates non-empty.
void RunPredictorServing(const LSchedModel& model, const ServingStateView& view,
                         const Matrix& aqe, ScratchArena* arena,
                         ServingPredictorOutput* out);

/// Joint log-probability of `action` under serving outputs (matches
/// ActionLogProb's value).
double ServingActionLogProb(const ServingPredictorOutput& output,
                            const SchedulingAction& action);

}  // namespace lsched

#endif  // LSCHED_CORE_PREDICTOR_H_

#include "core/features.h"

#include <algorithm>
#include <cmath>

#include "exec/scheduling_context.h"
#include "plan/operator_type.h"
#include "util/math_util.h"

namespace lsched {

namespace {
inline double Log1pScaled(double v, double scale = 1.0) {
  return std::log1p(std::max(v, 0.0)) * scale;
}

/// Shared QF assembly: identical math for the snapshot and context paths
/// (and therefore for the cached fast path, which recomputes only this
/// row per event).
std::vector<double> MakeQf(const FeatureConfig& config, const QueryState& q,
                           const std::vector<ThreadInfo>& threads) {
  std::vector<double> qf;
  const double total_threads = std::max<size_t>(threads.size(), 1);
  qf.reserve(static_cast<size_t>(config.qf_dim()));
  qf.push_back(static_cast<double>(q.assigned_threads()) /
               static_cast<double>(total_threads));  // Q-ATH
  int free_threads = 0;
  for (const ThreadInfo& t : threads) {
    if (!t.busy) ++free_threads;
  }
  qf.push_back(static_cast<double>(free_threads) /
               static_cast<double>(total_threads));  // Q-FTH
  // Q-LOC: per-thread locality bit.
  for (int t = 0; t < config.max_threads; ++t) {
    if (t < static_cast<int>(threads.size())) {
      qf.push_back(threads[static_cast<size_t>(t)].last_query == q.id()
                       ? 1.0
                       : 0.0);
    } else {
      qf.push_back(0.0);
    }
  }
  return qf;
}
}  // namespace

int FeatureConfig::opf_dim() const {
  return kNumOperatorTypes + num_relations + num_columns + blocks_downsample +
         6;
}

QueryFeatures FeatureExtractor::ExtractQueryStructural(
    const QueryState& q) const {
  const QueryPlan& plan = q.plan();
  QueryFeatures out;
  out.qid = q.id();
  out.num_nodes = static_cast<int>(plan.num_nodes());
  out.topo_order = plan.TopologicalOrder();

  // --- OPF per operator ---------------------------------------------------
  out.opf.reserve(plan.num_nodes());
  for (size_t i = 0; i < plan.num_nodes(); ++i) {
    const PlanNode& node = plan.node(static_cast<int>(i));
    std::vector<double> f;
    f.reserve(static_cast<size_t>(config_.opf_dim()));

    // O-TY: 1-hot operator type.
    for (int t = 0; t < kNumOperatorTypes; ++t) {
      f.push_back(t == static_cast<int>(node.type) ? 1.0 : 0.0);
    }
    // O-IN: 1-hot base input relations (hashed into the fixed vocabulary).
    std::vector<double> in(static_cast<size_t>(config_.num_relations), 0.0);
    for (RelationId rid : node.base_inputs) {
      in[static_cast<size_t>(rid) %
         static_cast<size_t>(config_.num_relations)] = 1.0;
    }
    f.insert(f.end(), in.begin(), in.end());
    // O-COLS: 1-hot used columns (hashed).
    std::vector<double> cols(static_cast<size_t>(config_.num_columns), 0.0);
    for (ColumnId cid : node.used_columns) {
      cols[static_cast<size_t>(cid) %
           static_cast<size_t>(config_.num_columns)] = 1.0;
    }
    f.insert(f.end(), cols.begin(), cols.end());
    // O-BLCKS: moving-average downsampled block bitmap (Eq. 1).
    const std::vector<double> blocks = MovingAverageDownsample(
        node.block_bitmap, static_cast<size_t>(config_.blocks_downsample));
    f.insert(f.end(), blocks.begin(), blocks.end());

    // Dynamic features from the execution monitor.
    const int op = static_cast<int>(i);
    const double remaining = q.RemainingWorkOrders(op);
    const double planned = std::max(1.0, static_cast<double>(node.num_work_orders));
    f.push_back(remaining / planned);                       // O-WO ratio
    f.push_back(Log1pScaled(remaining, 0.2));               // O-WO magnitude
    f.push_back(Log1pScaled(q.EstimateRemainingSeconds(op)));    // O-DUR
    f.push_back(Log1pScaled(q.EstimateRemainingMemory(op), 0.1));  // O-MEM
    f.push_back(q.op_scheduled(op) ? 1.0 : 0.0);
    f.push_back(q.IsOpSchedulable(op) ? 1.0 : 0.0);

    out.opf.push_back(std::move(f));
  }

  // --- EDF per edge ---------------------------------------------------------
  out.edf.reserve(plan.num_edges());
  for (size_t e = 0; e < plan.num_edges(); ++e) {
    const PlanEdge& edge = plan.edge(static_cast<int>(e));
    // E-NPB: 1 when non-pipeline-breaking; E-DIR: 1 = data flows
    // producer->consumer (always, in our plan orientation; kept for paper
    // fidelity since feature extraction should not assume orientation).
    out.edf.push_back({edge.pipeline_breaking ? 0.0 : 1.0, 1.0});
  }

  // --- structure (O-CON): producer slots per node ---------------------------
  out.child_node.assign(plan.num_nodes(), {-1, -1});
  out.child_edge.assign(plan.num_nodes(), {-1, -1});
  out.in_edges.resize(plan.num_nodes());
  out.out_edges.resize(plan.num_nodes());
  for (size_t i = 0; i < plan.num_nodes(); ++i) {
    const PlanNode& node = plan.node(static_cast<int>(i));
    for (int e : node.out_edges) out.out_edges[i].push_back(e);
    // Order producers by estimated total cost (heaviest first) so the two
    // triangle-filter slots see a stable ordering; extra producers beyond
    // two share the second slot via the in_edges aggregation.
    std::vector<std::pair<double, int>> producers;
    for (int e : node.in_edges) {
      out.in_edges[i].push_back(e);
      const PlanNode& p = plan.node(plan.edge(e).producer);
      producers.push_back(
          {static_cast<double>(p.num_work_orders) * p.est_cost_per_wo, e});
    }
    std::sort(producers.begin(), producers.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (size_t s = 0; s < producers.size() && s < 2; ++s) {
      out.child_edge[i][s] = producers[s].second;
      out.child_node[i][s] = plan.edge(producers[s].second).producer;
    }
  }

  return out;
}

QueryFeatures FeatureExtractor::ExtractQuery(const QueryState& q,
                                             const SystemState& state) const {
  QueryFeatures out = ExtractQueryStructural(q);
  out.qf = MakeQf(config_, q, state.threads);
  return out;
}

std::vector<double> FeatureExtractor::ExtractQf(
    const QueryState& q, const SchedulingContext& ctx) const {
  return MakeQf(config_, q, ctx.threads());
}

std::vector<std::pair<int, int>> FeatureExtractor::SchedulableCandidates(
    const QueryState& q) {
  std::vector<std::pair<int, int>> out;
  for (int op : q.SchedulableOps()) {
    out.push_back({op, static_cast<int>(q.ValidPipelineFrom(op).size())});
  }
  return out;
}

StateFeatures FeatureExtractor::Extract(const SystemState& state) const {
  StateFeatures out;
  out.time = state.now;
  out.total_threads = static_cast<int>(state.threads.size());
  out.free_threads = state.num_free_threads();
  out.queries.reserve(state.queries.size());
  for (size_t qi = 0; qi < state.queries.size(); ++qi) {
    const QueryState* q = state.queries[qi];
    out.queries.push_back(ExtractQuery(*q, state));
    for (const auto& [op, degree] : SchedulableCandidates(*q)) {
      Candidate c;
      c.query_index = static_cast<int>(qi);
      c.op = op;
      c.max_degree = degree;
      out.candidates.push_back(c);
    }
  }
  return out;
}

StateFeatures FeatureExtractor::Extract(const SchedulingContext& ctx) const {
  StateFeatures out;
  out.time = ctx.now();
  out.total_threads = ctx.total_threads();
  out.free_threads = ctx.num_free_threads();
  out.queries.reserve(ctx.queries().size());
  for (size_t qi = 0; qi < ctx.queries().size(); ++qi) {
    const QueryState* q = ctx.queries()[qi];
    QueryFeatures f = ExtractQueryStructural(*q);
    f.qf = ExtractQf(*q, ctx);
    out.queries.push_back(std::move(f));
    for (const auto& [op, degree] : SchedulableCandidates(*q)) {
      Candidate c;
      c.query_index = static_cast<int>(qi);
      c.op = op;
      c.max_degree = degree;
      out.candidates.push_back(c);
    }
  }
  return out;
}

}  // namespace lsched

#include "core/model.h"

namespace lsched {

LSchedModel::LSchedModel(LSchedConfig config) : config_(std::move(config)) {
  Rng rng(config_.seed);
  const int d = config_.hidden_dim;
  const int sd = config_.summary_dim;
  const int opf = config_.features.opf_dim();
  const int edf = config_.features.edf_dim();
  const int qf = config_.features.qf_dim();

  proj_node = Linear(&store_, "encoder/proj_node", opf, d, &rng);
  proj_edge = Linear(&store_, "encoder/proj_edge", edf, d, &rng);

  conv.resize(static_cast<size_t>(config_.num_conv_layers));
  for (int l = 0; l < config_.num_conv_layers; ++l) {
    const std::string base = "encoder/conv" + std::to_string(l);
    ConvLayer& layer = conv[static_cast<size_t>(l)];
    layer.w_self = store_.Create(base + "/w_self", 1, d, &rng);
    layer.w_left = store_.Create(base + "/w_left", 1, d, &rng);
    layer.w_right = store_.Create(base + "/w_right", 1, d, &rng);
    layer.w_eleft = store_.Create(base + "/w_eleft", 1, d, &rng);
    layer.w_eright = store_.Create(base + "/w_eright", 1, d, &rng);
    layer.att = store_.Create(base + "/att", 1, 2 * d, &rng);
    layer.mix = Linear(&store_, base + "/mix", d, d, &rng);
  }

  gcn_self = Linear(&store_, "encoder/gcn_self", d, d, &rng);
  gcn_child = Linear(&store_, "encoder/gcn_child", d, d, &rng);

  pqe_node_in = Mlp(&store_, "encoder/pqe_node_in", {d + opf, sd}, &rng);
  pqe_edge_in = Mlp(&store_, "encoder/pqe_edge_in", {d + edf, sd}, &rng);
  pqe_out = Mlp(&store_, "encoder/pqe_out", {2 * sd, sd, sd}, &rng);
  aqe_in = Mlp(&store_, "encoder/aqe_in", {sd + qf, sd}, &rng);
  aqe_out = Mlp(&store_, "encoder/aqe_out", {sd, sd, sd}, &rng);

  const int root_in = d + d + sd;
  root_head = Mlp(&store_, "head/root", {root_in, config_.head_hidden, 1},
                  &rng);
  const int degree_in = d + d + sd + edf;
  degree_head =
      Mlp(&store_, "head/degree",
          {degree_in, config_.head_hidden, config_.max_pipeline_degree},
          &rng);
  const int par_in = sd + sd + qf;
  par_head = Mlp(&store_, "head/parallelism",
                 {par_in, config_.head_hidden,
                  static_cast<int>(config_.parallelism_fractions.size())},
                 &rng);
}

int LSchedModel::FreezeForTransfer() {
  int frozen = 0;
  // Freeze the stacked convolution layers (general hierarchical patterns).
  frozen += store_.SetTrainableByPrefix("encoder/conv", false);
  frozen += store_.SetTrainableByPrefix("encoder/gcn", false);
  // Freeze the summarization cores but keep their (input-adjacent) first
  // layers trainable. pqe_out/aqe_out first layer = l0, output layer = l1:
  // freeze l0 of the two-layer heads, keep l1 (output).
  frozen += store_.SetTrainableByPrefix("encoder/pqe_out/l0", false);
  frozen += store_.SetTrainableByPrefix("encoder/aqe_out/l0", false);
  // Freeze the heads' hidden (first) layers; output layers stay trainable.
  frozen += store_.SetTrainableByPrefix("head/root/l0", false);
  frozen += store_.SetTrainableByPrefix("head/degree/l0", false);
  frozen += store_.SetTrainableByPrefix("head/parallelism/l0", false);
  return frozen;
}

void LSchedModel::UnfreezeAll() { store_.SetTrainableByPrefix("", true); }

Status LSchedModel::Save(const std::string& path) const {
  BinaryWriter writer;
  writer.WriteString("lsched-model-v1");
  store_.Serialize(&writer);
  return writer.SaveToFile(path);
}

Status LSchedModel::Load(const std::string& path) {
  LSCHED_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  LSCHED_ASSIGN_OR_RETURN(std::string magic, reader.ReadString());
  if (magic != "lsched-model-v1") {
    return Status::InvalidArgument("bad model file magic");
  }
  return store_.Deserialize(&reader);
}

}  // namespace lsched

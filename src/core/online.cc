#include "core/online.h"

#include "core/encoder.h"
#include "util/math_util.h"

namespace lsched {

OnlineLSched::OnlineLSched(LSchedModel* model, OnlineConfig config,
                           uint64_t seed)
    : model_(model),
      config_(config),
      agent_(model, seed),
      optimizer_(config.learning_rate) {
  agent_.set_sample_actions(config_.sample_actions);
  agent_.set_record_experiences(true);
  agent_.set_exploration_epsilon(config_.exploration_epsilon);
}

void OnlineLSched::Reset() {
  agent_.Reset();
  completions_since_update_ = 0;
  last_event_time_ = 0.0;
}

SchedulingDecision OnlineLSched::Schedule(const SchedulingEvent& event,
                                          const SystemState& state) {
  last_event_time_ = state.now;
  return agent_.Schedule(event, state);
}

void OnlineLSched::OnQueryCompleted(QueryId query, double latency) {
  (void)query;
  (void)latency;
  if (++completions_since_update_ >= config_.update_every_queries) {
    completions_since_update_ = 0;
    ApplyUpdate(last_event_time_);
  }
}

void OnlineLSched::ApplyUpdate(double now) {
  std::vector<Experience>& exps = agent_.experiences();
  if (exps.size() < 2) return;
  const std::vector<double> rewards =
      ComputeRewards(exps, config_.reward, now);
  const std::vector<double> returns = ComputeReturns(rewards);
  experience_.AddEpisode(std::move(exps), returns);
  agent_.experiences().clear();

  const ExperienceManager::StoredEpisode& ep = experience_.latest();
  const std::vector<double> adv = experience_.LatestAdvantages(true);
  model_->params()->ZeroGrads();
  const double scale =
      1.0 / static_cast<double>(std::max<size_t>(ep.experiences.size(), 1));
  for (size_t d = 0; d < ep.experiences.size(); ++d) {
    const Experience& exp = ep.experiences[d];
    if (exp.state.candidates.empty()) continue;
    Tape tape;
    const EncodedState encoded = EncodeState(model_, exp.state, &tape);
    const PredictorOutput out =
        RunPredictor(model_, exp.state, encoded, &tape);
    Var loss = tape.Scale(ActionLogProb(&tape, out, exp.action), -adv[d]);
    tape.Backward(loss, scale);
  }
  model_->params()->ClipGradNorm(config_.grad_clip);
  optimizer_.Step(model_->params());
  ++num_updates_;
}

}  // namespace lsched

#include "core/online.h"

#include "core/encoder.h"
#include "obs/scalar_events.h"
#include "util/math_util.h"

namespace lsched {

OnlineLSched::OnlineLSched(LSchedModel* model, OnlineConfig config,
                           uint64_t seed)
    : model_(model),
      config_(config),
      agent_(model, seed),
      optimizer_(config.learning_rate),
      effective_update_every_(config.update_every_queries),
      drift_fired_(std::make_shared<std::atomic<bool>>(false)) {
  agent_.set_sample_actions(config_.sample_actions);
  agent_.set_record_experiences(true);
  agent_.set_exploration_epsilon(config_.exploration_epsilon);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  num_updates_gauge_ = reg.GetGauge("online.num_updates");
  completions_gauge_ = reg.GetGauge("online.completions_since_update");
  update_every_gauge_ = reg.GetGauge("online.update_every_queries");
  drift_escalations_ = reg.GetCounter("online.drift_escalations");
}

void OnlineLSched::Reset() {
  agent_.Reset();
  completions_since_update_ = 0;
  last_event_time_ = 0.0;
  PublishProgressGauges();
}

SchedulingDecision OnlineLSched::Schedule(const SchedulingEvent& event,
                                          const SystemState& state) {
  last_event_time_ = state.now;
  return agent_.Schedule(event, state);
}

SchedulingDecision OnlineLSched::Schedule(const SchedulingEvent& event,
                                          const SchedulingContext& ctx) {
  last_event_time_ = ctx.now();
  return agent_.Schedule(event, ctx);
}

void OnlineLSched::AttachDriftMonitor(obs::DriftMonitor* monitor) {
  // The callback captures only the shared flag, never `this`: monitor and
  // scheduler lifetimes stay independent.
  std::shared_ptr<std::atomic<bool>> flag = drift_fired_;
  monitor->AddAlarmCallback(
      [flag](const obs::DriftAlarm&) {
        flag->store(true, std::memory_order_release);
      });
}

void OnlineLSched::ResetDriftEscalation() {
  drift_escalated_ = false;
  effective_update_every_ = config_.update_every_queries;
  drift_fired_->store(false, std::memory_order_release);
  PublishProgressGauges();
}

void OnlineLSched::OnQueryCompleted(QueryId query, double latency) {
  (void)query;
  (void)latency;
  if (!drift_escalated_ &&
      drift_fired_->exchange(false, std::memory_order_acq_rel)) {
    // Drift alarm: the predictor's error distribution shifted under the
    // serving workload — escalate from checkpoint-mode to (near)
    // query-by-query self-correction (paper §3).
    drift_escalated_ = true;
    effective_update_every_ =
        std::max(1, config_.drift_update_every_queries);
    drift_escalations_->Add(1);
    obs::ScalarEventWriter::Global().Append(
        "online.drift_escalation", num_updates_,
        static_cast<double>(effective_update_every_));
  }
  if (++completions_since_update_ >= effective_update_every_) {
    completions_since_update_ = 0;
    ApplyUpdate(last_event_time_);
  }
  PublishProgressGauges();
}

void OnlineLSched::ApplyUpdate(double now) {
  std::vector<Experience>& exps = agent_.experiences();
  if (exps.size() < 2) return;
  const std::vector<double> rewards =
      ComputeRewards(exps, config_.reward, now);
  const std::vector<double> returns = ComputeReturns(rewards);
  experience_.AddEpisode(std::move(exps), returns);
  agent_.experiences().clear();

  const ExperienceManager::StoredEpisode& ep = experience_.latest();
  const std::vector<double> adv = experience_.LatestAdvantages(true);
  model_->params()->ZeroGrads();
  const double scale =
      1.0 / static_cast<double>(std::max<size_t>(ep.experiences.size(), 1));
  for (size_t d = 0; d < ep.experiences.size(); ++d) {
    const Experience& exp = ep.experiences[d];
    if (exp.state.candidates.empty()) continue;
    Tape tape;
    const EncodedState encoded = EncodeState(model_, exp.state, &tape);
    const PredictorOutput out =
        RunPredictor(model_, exp.state, encoded, &tape);
    Var loss = tape.Scale(ActionLogProb(&tape, out, exp.action), -adv[d]);
    tape.Backward(loss, scale);
  }
  model_->params()->ClipGradNorm(config_.grad_clip);
  optimizer_.Step(model_->params());
  ++num_updates_;
  if (obs::Enabled()) {
    double total_reward = 0.0;
    for (double r : rewards) total_reward += r;
    obs::ScalarEventWriter::Global().Append("online.update_reward",
                                            num_updates_, total_reward);
  }
}

void OnlineLSched::PublishProgressGauges() {
  if (!obs::Enabled()) return;
  num_updates_gauge_->Set(static_cast<double>(num_updates_));
  completions_gauge_->Set(static_cast<double>(completions_since_update_));
  update_every_gauge_->Set(static_cast<double>(effective_update_every_));
}

}  // namespace lsched

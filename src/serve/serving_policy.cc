#include "serve/serving_policy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include "exec/query_state.h"
#include "exec/scheduling_context.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace lsched {

ServingPolicy::ServingPolicy(ServingPolicyConfig config)
    : config_(std::move(config)) {
  for (const auto& [tenant, weight] : config_.tenant_weights) {
    table_.SetWeight(tenant, weight);
  }
  for (const auto& [tenant, slo] : config_.tenant_slos) {
    table_.SetSlo(tenant, slo);
  }
}

void ServingPolicy::Reset() {
  table_.Reset();
  for (const auto& [tenant, weight] : config_.tenant_weights) {
    table_.SetWeight(tenant, weight);
  }
  for (const auto& [tenant, slo] : config_.tenant_slos) {
    table_.SetSlo(tenant, slo);
  }
  num_shed_ = 0;
  num_displacements_ = 0;
  num_injections_ = 0;
  num_redirects_ = 0;
}

AdmissionVerdict ServingPolicy::OnAdmission(const QueryState& q,
                                            const SchedulingContext& ctx,
                                            double /*now*/) {
  // Process-wide admission-verdict counters for the "serve" counter table
  // (obs/profiler.h) — the per-instance num_* members reset per session.
  static obs::Counter* admitted_counter =
      obs::MetricsRegistry::Global().GetCounter("serve.admitted_total");
  static obs::Counter* shed_counter =
      obs::MetricsRegistry::Global().GetCounter("serve.shed_total");
  static obs::Counter* displaced_counter =
      obs::MetricsRegistry::Global().GetCounter("serve.displaced_total");
  AdmissionVerdict verdict;
  const int live = static_cast<int>(ctx.queries().size());
  if (config_.max_live_queries > 0 && live >= config_.max_live_queries) {
    // At the bound. A strictly lower-priority query that has not launched
    // yet may be displaced to make room; otherwise the arrival is shed.
    const QueryState* victim = nullptr;
    if (config_.displace_on_priority) {
      for (const QueryState* cand : ctx.queries()) {
        if (cand->status() != QueryStatus::kAdmitted) continue;
        if (cand->tag().priority >= q.tag().priority) continue;
        // Lowest priority class first; newest (highest id) within a class,
        // so older pending work of the same class survives longer.
        if (victim == nullptr ||
            cand->tag().priority < victim->tag().priority ||
            (cand->tag().priority == victim->tag().priority &&
             cand->id() > victim->id())) {
          victim = cand;
        }
      }
    }
    if (victim != nullptr) {
      ++num_displacements_;
      displaced_counter->Add(1);
      verdict.displace = victim->id();
    } else {
      ++num_shed_;
      shed_counter->Add(1);
      verdict.admit = false;
    }
  }
  if (verdict.admit) admitted_counter->Add(1);
  table_.OnArrival(q.tag(), verdict.admit);
  return verdict;
}

void ServingPolicy::FilterDecision(SchedulingDecision* decision,
                                   const SchedulingContext& ctx) {
  // Per-tenant accounting snapshot, exact and deterministic: live queries'
  // attained service from the context plus terminal totals from the table.
  std::map<TenantId, double> service;
  std::map<TenantId, int> live_count;
  std::map<TenantId, int> busy_threads;
  for (const QueryState* q : ctx.queries()) {
    const TenantId tenant = q->tag().tenant;
    service[tenant] += q->attained_service();
    live_count[tenant] += 1;
    busy_threads[tenant] += q->assigned_threads();
  }
  for (auto& [tenant, seconds] : service) {
    if (const TenantStats* s = table_.stats(tenant)) {
      seconds += s->service_seconds;
    }
  }
  table_.PublishInflight(live_count);

  // --- strict priority classes -------------------------------------------
  if (config_.priority_injection && !decision->pipelines.empty()) {
    // The highest priority class with schedulable work right now, and its
    // lowest-id representative (the query an injection would launch).
    const QueryState* starved = nullptr;
    for (const QueryState* q : ctx.queries()) {
      if (IsTerminalStatus(q->status())) continue;
      if (starved != nullptr && q->tag().priority <= starved->tag().priority) {
        continue;  // ids ascend, so the first hit per class is the lowest id
      }
      if (!q->SchedulableOps().empty()) starved = q;
    }
    if (starved != nullptr) {
      bool top_served = false;
      for (const PipelineChoice& c : decision->pipelines) {
        const QueryState* q = ctx.FindQuery(c.query);
        if (q != nullptr && q->tag().priority >= starved->tag().priority) {
          top_served = true;
          break;
        }
      }
      if (!top_served) {
        // The decision only launches lower classes while the top class has
        // schedulable work: inject a minimal (degree-1) launch for it. The
        // engine re-validates the choice in ApplyDecision, so if the
        // operator became unschedulable meanwhile it is skipped, not fatal.
        ++num_injections_;
        obs::AnnotateServingAction(obs::ServingAction::kInjectPriority,
                                   starved->id(), kInvalidQuery);
        decision->pipelines.insert(
            decision->pipelines.begin(),
            PipelineChoice{starved->id(), starved->SchedulableOps().front(),
                           1});
      }
    }
  }

  // --- launch ordering: priority desc, weighted-service deficit asc ------
  auto sort_key = [&](const PipelineChoice& c) {
    const QueryState* q = ctx.FindQuery(c.query);
    if (q == nullptr) {
      // Unknown/dead queries sort last; the engine skips them anyway.
      return std::make_tuple(-1, std::numeric_limits<double>::infinity(),
                             c.query);
    }
    const TenantId tenant = q->tag().tenant;
    const double weighted =
        service[tenant] / std::max(table_.weight(tenant), 1e-9);
    return std::make_tuple(static_cast<int>(q->tag().priority), -weighted,
                           -c.query);
  };
  std::stable_sort(decision->pipelines.begin(), decision->pipelines.end(),
                   [&](const PipelineChoice& a, const PipelineChoice& b) {
                     return sort_key(a) > sort_key(b);
                   });

  // --- per-tenant weighted thread caps -----------------------------------
  if (config_.weighted_thread_caps && live_count.size() > 1) {
    const int total = ctx.total_threads();
    double weight_sum = 0.0;
    for (const auto& [tenant, count] : live_count) {
      weight_sum += table_.weight(tenant);
    }
    std::map<TenantId, int> cap;
    for (const auto& [tenant, count] : live_count) {
      cap[tenant] = std::max(
          1, static_cast<int>(std::floor(
                 total * table_.weight(tenant) / weight_sum + 1e-9)));
    }

    // Launch redirection: the per-query caps below are work-conserving
    // (never under 1), so a tenant with many live queries could exceed its
    // aggregate share one thread at a time. Rewrite launches that would
    // push a tenant past its cap into launches for the neediest under-cap
    // tenant with unclaimed schedulable work instead — capacity is
    // redirected, never idled, and never down a priority class.
    std::map<TenantId, int> planned = busy_threads;
    std::set<std::pair<QueryId, int>> claimed;
    for (const PipelineChoice& c : decision->pipelines) {
      claimed.insert({c.query, c.root_op});
    }
    for (PipelineChoice& choice : decision->pipelines) {
      const QueryState* q = ctx.FindQuery(choice.query);
      if (q == nullptr) continue;
      const TenantId tenant = q->tag().tenant;
      if (planned[tenant] < cap[tenant]) {
        ++planned[tenant];
        continue;
      }
      const QueryState* best = nullptr;
      int best_op = -1;
      double best_weighted = std::numeric_limits<double>::infinity();
      for (const QueryState* cand : ctx.queries()) {
        const TenantId other = cand->tag().tenant;
        if (other == tenant || planned[other] >= cap[other]) continue;
        if (cand->tag().priority < q->tag().priority) continue;
        const double weighted =
            service[other] / std::max(table_.weight(other), 1e-9);
        // Strictly-better keeps the lowest id per tenant (ids ascend).
        if (best != nullptr && weighted >= best_weighted) continue;
        for (int op : cand->SchedulableOps()) {
          if (claimed.count({cand->id(), op}) == 0) {
            best = cand;
            best_op = op;
            best_weighted = weighted;
            break;
          }
        }
      }
      if (best != nullptr) {
        ++num_redirects_;
        // Causal annotation for the query trace: `choice.query` lost this
        // launch to `best` (fairness redirection).
        obs::AnnotateServingAction(obs::ServingAction::kRedirect,
                                   choice.query, best->id());
        claimed.insert({best->id(), best_op});
        ++planned[best->tag().tenant];
        choice = PipelineChoice{best->id(), best_op, 1};
      } else {
        ++planned[tenant];  // keep: work-conserving beats the cap
      }
    }

    // Fairness injection: post-processing can only reshape what the policy
    // proposed, and a head-of-line policy (e.g. FIFO) proposes nothing for
    // queries behind its head — an under-share tenant would never catch up.
    // While planned capacity remains and an under-cap tenant of the highest
    // schedulable class has unclaimed work, append minimal (degree-1)
    // launches for its neediest query. Restricting candidates to the top
    // schedulable class keeps strict priority intact.
    int planned_total = 0;
    for (const auto& [tenant, n] : planned) planned_total += n;
    int top_class = std::numeric_limits<int>::min();
    for (const QueryState* q : ctx.queries()) {
      if (!q->SchedulableOps().empty()) {
        top_class = std::max(top_class, static_cast<int>(q->tag().priority));
      }
    }
    while (planned_total < total) {
      const QueryState* best = nullptr;
      int best_op = -1;
      double best_weighted = std::numeric_limits<double>::infinity();
      for (const QueryState* cand : ctx.queries()) {
        const TenantId other = cand->tag().tenant;
        if (planned[other] >= cap[other]) continue;
        if (static_cast<int>(cand->tag().priority) != top_class) continue;
        const double weighted =
            service[other] / std::max(table_.weight(other), 1e-9);
        if (best != nullptr && weighted >= best_weighted) continue;
        for (int op : cand->SchedulableOps()) {
          if (claimed.count({cand->id(), op}) == 0) {
            best = cand;
            best_op = op;
            best_weighted = weighted;
            break;
          }
        }
      }
      if (best == nullptr) break;
      ++num_redirects_;
      obs::AnnotateServingAction(obs::ServingAction::kInjectShare, best->id(),
                                 kInvalidQuery);
      claimed.insert({best->id(), best_op});
      ++planned[best->tag().tenant];
      ++planned_total;
      decision->pipelines.push_back(PipelineChoice{best->id(), best_op, 1});
    }

    for (const QueryState* q : ctx.queries()) {
      const TenantId tenant = q->tag().tenant;
      const int tenant_cap = cap[tenant];
      const int others = busy_threads[tenant] - q->assigned_threads();
      // Work-conserving: never cap below 1 — a tenant already at its share
      // can still make minimal progress rather than idling capacity.
      const int cap = std::max(1, tenant_cap - others);
      decision->parallelism.push_back(ParallelismChoice{q->id(), cap});
    }
  }
}

void ServingPolicy::OnQueryTerminal(const QueryState& q, double now) {
  table_.OnTerminal(q, now);
}

void ServingPolicy::OnEngineRefused(const QueryState& q, double /*now*/) {
  // Engine-decided door refusal (admission fault, drain-shed, pre-arrival
  // cancel): the arrival still belongs in the tenant ledger so that
  // arrived == admitted + every refusal and the per-stream conservation
  // audit (arrived == submissions) holds without an episode-end flush.
  table_.OnArrival(q.tag(), /*admitted=*/false);
}

}  // namespace lsched

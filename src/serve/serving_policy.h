#ifndef LSCHED_SERVE_SERVING_POLICY_H_
#define LSCHED_SERVE_SERVING_POLICY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "exec/serving_hooks.h"
#include "serve/tenant_table.h"

namespace lsched {

/// Configuration of the serving layer's admission/fairness behaviour
/// (DESIGN.md §11).
struct ServingPolicyConfig {
  /// Admission bound: maximum live (admitted + running) queries in the
  /// system. Arrivals beyond it are shed (or displace, below). <= 0 means
  /// unbounded — every arrival is admitted.
  int max_live_queries = 64;

  /// When at the bound, let a higher-priority arrival displace a
  /// still-ADMITTED (never launched) lower-priority query instead of being
  /// refused: the victim is shed, the arrival admitted. Prevents priority
  /// inversion at the admission door.
  bool displace_on_priority = true;

  /// Reorder every scheduling decision's pipeline launches by (priority
  /// class desc, weighted-service deficit asc) and inject a launch for a
  /// starved top-priority query when the policy only served lower classes.
  bool priority_injection = true;

  /// Append per-query thread caps so each tenant's running threads stay
  /// proportional to its weight share (work-conserving: every live query
  /// keeps a cap of at least 1, so capacity is never left idle while work
  /// exists). Only applies when more than one tenant is live.
  bool weighted_thread_caps = true;

  /// Fair-share weights per tenant; tenants not listed get weight 1.
  std::vector<std::pair<TenantId, double>> tenant_weights;

  /// Latency SLOs per tenant; tenants not listed have no SLO. Applied to
  /// the TenantTable at construction and on every Reset, and published as
  /// `serve.tenant<id>.slo_burn_rate` gauges.
  std::vector<std::pair<TenantId, TenantSlo>> tenant_slos;
};

/// The serving layer's decision post-processor: one ServingHooks
/// implementation installed into both engines (SimEngine for deterministic
/// replay, RealEngine for the live daemon), so simulated and real serving
/// make identical admission/fairness/priority decisions given identical
/// event sequences (DESIGN.md §11).
///
/// Three responsibilities, one per hook:
///
///  * OnAdmission — bounded admission with load shedding and
///    priority-displacement (the pending queue is the set of ADMITTED
///    queries inside the engine; the bound caps its size).
///  * FilterDecision — strict priority classes and per-tenant weighted
///    fairness, enforced by reordering/augmenting the underlying
///    scheduler's decision rather than inside each policy.
///  * OnQueryTerminal — per-tenant accounting (TenantTable) and the
///    attained-service totals the fairness deficit is computed from.
///
/// Threading: hooks run on the engine coordinator thread only (see
/// exec/serving_hooks.h); no internal locking.
class ServingPolicy : public ServingHooks {
 public:
  explicit ServingPolicy(ServingPolicyConfig config = {});

  /// Clears tenant statistics and decision counters for a fresh stream
  /// (weights from the config are re-applied).
  void Reset();

  AdmissionVerdict OnAdmission(const QueryState& q,
                               const SchedulingContext& ctx,
                               double now) override;
  void FilterDecision(SchedulingDecision* decision,
                      const SchedulingContext& ctx) override;
  void OnQueryTerminal(const QueryState& q, double now) override;
  void OnEngineRefused(const QueryState& q, double now) override;

  const TenantTable& tenants() const { return table_; }
  TenantTable& tenants() { return table_; }
  const ServingPolicyConfig& config() const { return config_; }

  /// Arrivals refused outright (shed at the door).
  int64_t num_shed() const { return num_shed_; }
  /// Admissions that displaced a lower-priority pending query.
  int64_t num_displacements() const { return num_displacements_; }
  /// Pipeline launches injected for starved top-priority queries.
  int64_t num_injections() const { return num_injections_; }
  /// Launches rewritten from an over-share tenant to an under-share one.
  int64_t num_redirects() const { return num_redirects_; }

 private:
  ServingPolicyConfig config_;
  TenantTable table_;
  int64_t num_shed_ = 0;
  int64_t num_displacements_ = 0;
  int64_t num_injections_ = 0;
  int64_t num_redirects_ = 0;
};

}  // namespace lsched

#endif  // LSCHED_SERVE_SERVING_POLICY_H_

#ifndef LSCHED_SERVE_SERVING_DAEMON_H_
#define LSCHED_SERVE_SERVING_DAEMON_H_

#include <memory>
#include <vector>

#include "exec/episode_result.h"
#include "exec/real_engine.h"
#include "exec/scheduler.h"
#include "exec/sim_engine.h"
#include "serve/scripted_ingress.h"
#include "serve/serving_policy.h"
#include "storage/catalog.h"

namespace lsched {

struct ServingDaemonConfig {
  /// Admission/fairness/priority behaviour (shared by both modes).
  ServingPolicyConfig policy;
  /// Simulated-serving engine parameters (RunScript). `hooks` and `cancels`
  /// are overwritten by the daemon.
  SimEngineConfig sim;
  /// Live-serving engine parameters (Start/Submit/Stop). `hooks` and
  /// `cancels` are overwritten by the daemon.
  RealEngineConfig real;
};

/// The long-running multi-tenant serving front end (DESIGN.md §11): owns the
/// ServingPolicy (admission control, weighted fairness, priority classes,
/// per-tenant metrics) and installs it into either engine —
///
///  * RunScript() replays a deterministic ingress script through a
///    SimEngine on the virtual clock: the full serving stack with zero
///    timing nondeterminism, so two runs of the same (config, script,
///    scheduler seed) are byte-identical. This is the testing/training
///    surface.
///
///  * Start()/Submit()/Cancel()/Stop() run the same stack live: a
///    RealEngine in serving mode (standing worker pool, persistent
///    scheduler state, thread-safe ingress), with /healthz flipped to
///    "draining" for the graceful-drain window of Stop(). This is what
///    `lsched_cli serve` exposes.
///
/// One daemon serves one stream at a time; RunScript and live serving may
/// be used sequentially but not concurrently.
class ServingDaemon {
 public:
  explicit ServingDaemon(ServingDaemonConfig config);
  ~ServingDaemon();

  ServingDaemon(const ServingDaemon&) = delete;
  ServingDaemon& operator=(const ServingDaemon&) = delete;

  /// --- deterministic simulated serving -----------------------------------

  /// Runs `ingress` to completion under `scheduler` on a fresh SimEngine
  /// with the serving policy installed. Resets tenant accounting first.
  EpisodeResult RunScript(const ScriptedIngress& ingress,
                          Scheduler* scheduler);

  /// --- live serving -------------------------------------------------------

  /// Starts live serving over `catalog` under `scheduler` (which must
  /// outlive the session; its state persists across the whole stream).
  void Start(const Catalog* catalog, Scheduler* scheduler);

  /// Thread-safe ingress; returns the query's id, or kInvalidQuery when the
  /// daemon is not serving or is draining.
  QueryId Submit(QueryPlan plan, QueryTag tag = QueryTag{});

  /// Requests cancellation of a live query (thread-safe, idempotent).
  void Cancel(QueryId query);

  /// Replays `ingress` against the live daemon: submissions and cancels in
  /// script order, paced at `time_scale * event.time` on the wall clock
  /// (0 = as fast as possible). Returns the QueryId of each submission
  /// ordinal (kInvalidQuery for refused ones). Requires serving().
  std::vector<QueryId> Replay(const ScriptedIngress& ingress,
                              double time_scale = 1.0);

  /// Graceful drain: flips /healthz to 503 "draining", refuses new
  /// submissions, sheds the queued backlog, waits for running queries
  /// (drain-don't-preempt), tears down the pool, and returns the
  /// full-stream telemetry.
  RealRunResult Stop();

  /// Latest rolling-window telemetry of the live stream (thread-safe;
  /// empty when not serving).
  EpisodeResult Snapshot() const;

  bool serving() const { return real_ != nullptr && real_->serving(); }

  ServingPolicy& policy() { return policy_; }
  const ServingPolicy& policy() const { return policy_; }
  const TenantTable& tenants() const { return policy_.tenants(); }

 private:
  ServingDaemonConfig config_;
  ServingPolicy policy_;
  std::unique_ptr<RealEngine> real_;
};

}  // namespace lsched

#endif  // LSCHED_SERVE_SERVING_DAEMON_H_

#include "serve/scripted_ingress.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace lsched {

ScriptedIngress::ScriptedIngress(std::vector<IngressEvent> events,
                                 std::vector<QueryPlan> plans)
    : events_(std::move(events)), plans_(std::move(plans)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const IngressEvent& a, const IngressEvent& b) {
                     return a.time < b.time;
                   });
  for (const IngressEvent& e : events_) {
    if (e.kind == IngressEvent::Kind::kSubmit) {
      LSCHED_CHECK(e.plan_index >= 0 &&
                   e.plan_index < static_cast<int>(plans_.size()));
      ++num_submissions_;
    }
  }
  for (const IngressEvent& e : events_) {
    if (e.kind == IngressEvent::Kind::kCancel) {
      LSCHED_CHECK(e.target >= 0 && e.target < num_submissions_);
    }
  }
}

std::vector<QuerySubmission> ScriptedIngress::SimWorkload() const {
  std::vector<QuerySubmission> workload;
  workload.reserve(num_submissions_);
  for (const IngressEvent& e : events_) {
    if (e.kind != IngressEvent::Kind::kSubmit) continue;
    workload.push_back(QuerySubmission{plans_[e.plan_index], e.time, e.tag});
  }
  return workload;
}

std::vector<CancelRequest> ScriptedIngress::SimCancels() const {
  std::vector<CancelRequest> cancels;
  for (const IngressEvent& e : events_) {
    if (e.kind != IngressEvent::Kind::kCancel) continue;
    cancels.push_back(CancelRequest{static_cast<QueryId>(e.target), e.time});
  }
  return cancels;
}

std::vector<RealQuerySubmission> ScriptedIngress::RealWorkload(
    double time_scale) const {
  std::vector<RealQuerySubmission> workload;
  workload.reserve(num_submissions_);
  for (const IngressEvent& e : events_) {
    if (e.kind != IngressEvent::Kind::kSubmit) continue;
    workload.push_back(RealQuerySubmission{plans_[e.plan_index],
                                           e.time * time_scale, e.tag});
  }
  return workload;
}

std::vector<CancelRequest> ScriptedIngress::RealCancels(
    double time_scale) const {
  std::vector<CancelRequest> cancels;
  for (const IngressEvent& e : events_) {
    if (e.kind != IngressEvent::Kind::kCancel) continue;
    cancels.push_back(CancelRequest{static_cast<QueryId>(e.target),
                                    e.time * time_scale});
  }
  return cancels;
}

}  // namespace lsched

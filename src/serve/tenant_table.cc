#include "serve/tenant_table.h"

#include <string>

#include "exec/query_state.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace lsched {

namespace {

std::string MetricName(TenantId tenant, const char* field) {
  return "serve.tenant" + std::to_string(tenant) + "." + field;
}

obs::Counter* TenantCounter(TenantId tenant, const char* field) {
  return obs::MetricsRegistry::Global().GetCounter(MetricName(tenant, field));
}

obs::Gauge* TenantGauge(TenantId tenant, const char* field) {
  return obs::MetricsRegistry::Global().GetGauge(MetricName(tenant, field));
}

}  // namespace

void TenantTable::Reset() {
  tenants_.clear();
  last_inflight_.clear();
}

void TenantTable::SetWeight(TenantId tenant, double weight) {
  LSCHED_CHECK(weight > 0.0);
  weights_[tenant] = weight;
  Entry(tenant).weight = weight;
}

double TenantTable::weight(TenantId tenant) const {
  const auto it = weights_.find(tenant);
  return it == weights_.end() ? 1.0 : it->second;
}

void TenantTable::OnArrival(const QueryTag& tag, bool admitted) {
  TenantStats& s = Entry(tag.tenant);
  ++s.arrived;
  TenantCounter(tag.tenant, "arrived")->Add(1);
  if (admitted) {
    ++s.admitted;
    TenantCounter(tag.tenant, "admitted")->Add(1);
  }
}

void TenantTable::OnTerminal(const QueryState& q, double now) {
  const TenantId tenant = q.tag().tenant;
  TenantStats& s = Entry(tenant);
  switch (q.status()) {
    case QueryStatus::kDone: {
      ++s.completed;
      TenantCounter(tenant, "completed")->Add(1);
      const double latency = now - q.arrival_time();
      s.latency_p50.Observe(latency);
      s.latency_p99.Observe(latency);
      TenantGauge(tenant, "latency_p50")->Set(s.latency_p50.Value());
      TenantGauge(tenant, "latency_p99")->Set(s.latency_p99.Value());
      break;
    }
    case QueryStatus::kCancelled:
      ++s.cancelled;
      TenantCounter(tenant, "cancelled")->Add(1);
      break;
    case QueryStatus::kFailed:
      ++s.failed;
      TenantCounter(tenant, "failed")->Add(1);
      break;
    case QueryStatus::kShed:
      ++s.shed;
      TenantCounter(tenant, "shed")->Add(1);
      break;
    default:
      LSCHED_CHECK(false);  // OnTerminal requires a terminal status
  }
  s.service_seconds += q.attained_service();
  TenantGauge(tenant, "service_seconds")->Set(s.service_seconds);
}

void TenantTable::PublishInflight(const std::map<TenantId, int>& live) {
  for (const auto& [tenant, count] : live) {
    TenantGauge(tenant, "inflight")->Set(count);
  }
  // Zero gauges of tenants that went idle since the last publication.
  for (const auto& [tenant, prev] : last_inflight_) {
    if (prev != 0 && live.find(tenant) == live.end()) {
      TenantGauge(tenant, "inflight")->Set(0.0);
    }
  }
  last_inflight_ = live;
}

const TenantStats* TenantTable::stats(TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

std::vector<TenantId> TenantTable::ids() const {
  std::vector<TenantId> out;
  out.reserve(tenants_.size());
  for (const auto& [tenant, stats] : tenants_) out.push_back(tenant);
  return out;
}

TenantStats& TenantTable::Entry(TenantId tenant) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) it->second.weight = weight(tenant);
  return it->second;
}

}  // namespace lsched

#include "serve/tenant_table.h"

#include <string>

#include "exec/query_state.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace lsched {

namespace {

std::string MetricName(TenantId tenant, const char* field) {
  return "serve.tenant" + std::to_string(tenant) + "." + field;
}

obs::Counter* TenantCounter(TenantId tenant, const char* field) {
  return obs::MetricsRegistry::Global().GetCounter(MetricName(tenant, field));
}

obs::Gauge* TenantGauge(TenantId tenant, const char* field) {
  return obs::MetricsRegistry::Global().GetGauge(MetricName(tenant, field));
}

}  // namespace

double TenantStats::BurnRate() const {
  if (!has_slo || slo_total <= 0) return 0.0;
  const double budget = 1.0 - slo.percentile;
  if (budget <= 0.0) return 0.0;
  return (static_cast<double>(slo_violations) /
          static_cast<double>(slo_total)) /
         budget;
}

void TenantTable::Reset() {
  tenants_.clear();
  last_inflight_.clear();
}

void TenantTable::SetWeight(TenantId tenant, double weight) {
  LSCHED_CHECK(weight > 0.0);
  weights_[tenant] = weight;
  Entry(tenant).weight = weight;
}

double TenantTable::weight(TenantId tenant) const {
  const auto it = weights_.find(tenant);
  return it == weights_.end() ? 1.0 : it->second;
}

void TenantTable::SetSlo(TenantId tenant, const TenantSlo& slo) {
  LSCHED_CHECK(slo.target_seconds > 0.0);
  LSCHED_CHECK(slo.percentile > 0.0 && slo.percentile < 1.0);
  slos_[tenant] = slo;
  TenantStats& s = Entry(tenant);
  s.has_slo = true;
  s.slo = slo;
  TenantGauge(tenant, "slo_target_seconds")->Set(slo.target_seconds);
  TenantGauge(tenant, "slo_burn_rate")->Set(s.BurnRate());
}

const TenantSlo* TenantTable::slo(TenantId tenant) const {
  const auto it = slos_.find(tenant);
  return it == slos_.end() ? nullptr : &it->second;
}

void TenantTable::OnArrival(const QueryTag& tag, bool admitted) {
  TenantStats& s = Entry(tag.tenant);
  ++s.arrived;
  TenantCounter(tag.tenant, "arrived")->Add(1);
  if (admitted) {
    ++s.admitted;
    TenantCounter(tag.tenant, "admitted")->Add(1);
  }
}

void TenantTable::OnTerminal(const QueryState& q, double now) {
  const TenantId tenant = q.tag().tenant;
  TenantStats& s = Entry(tenant);
  const double latency = now - q.arrival_time();
  bool slo_eligible = false;   // counts toward the SLO denominator
  bool slo_violation = false;  // ... and against the error budget
  switch (q.status()) {
    case QueryStatus::kDone: {
      ++s.completed;
      TenantCounter(tenant, "completed")->Add(1);
      s.latency_p50.Observe(latency);
      s.latency_p99.Observe(latency);
      TenantGauge(tenant, "latency_p50")->Set(s.latency_p50.Value());
      TenantGauge(tenant, "latency_p99")->Set(s.latency_p99.Value());
      slo_eligible = true;
      slo_violation = s.has_slo && latency > s.slo.target_seconds;
      break;
    }
    case QueryStatus::kCancelled:
      ++s.cancelled;
      TenantCounter(tenant, "cancelled")->Add(1);
      break;
    case QueryStatus::kFailed:
      ++s.failed;
      TenantCounter(tenant, "failed")->Add(1);
      slo_eligible = true;
      slo_violation = true;
      break;
    case QueryStatus::kShed:
      ++s.shed;
      TenantCounter(tenant, "shed")->Add(1);
      slo_eligible = true;
      slo_violation = true;
      break;
    default:
      LSCHED_CHECK(false);  // OnTerminal requires a terminal status
  }
  if (q.status() != QueryStatus::kDone) {
    // Refused-latency ledger: how long refused queries were strung along
    // before the system gave up on them.
    ++s.refused;
    s.refused_latency_p50.Observe(latency);
    s.refused_latency_p99.Observe(latency);
    TenantGauge(tenant, "refused_latency_p50")
        ->Set(s.refused_latency_p50.Value());
    TenantGauge(tenant, "refused_latency_p99")
        ->Set(s.refused_latency_p99.Value());
  }
  if (s.has_slo && slo_eligible) {
    ++s.slo_total;
    if (slo_violation) {
      ++s.slo_violations;
      TenantCounter(tenant, "slo_violations")->Add(1);
    }
    TenantGauge(tenant, "slo_burn_rate")->Set(s.BurnRate());
  }
  s.service_seconds += q.attained_service();
  TenantGauge(tenant, "service_seconds")->Set(s.service_seconds);
  // Latency decomposition (filled by the EpisodeRecorder before the hooks
  // ran; DESIGN.md §8.2). Published as cumulative per-tenant sums so a
  // scrape can tell queue-bound tenants from service-bound ones.
  const LatencyBreakdown& b = q.breakdown();
  if (b.valid) {
    s.admission_wait_seconds += b.admission_seconds();
    s.queue_wait_seconds += b.queue_seconds();
    s.service_time_seconds += b.service_seconds();
    s.stall_time_seconds += b.stall_seconds();
    TenantGauge(tenant, "admission_wait_seconds")
        ->Set(s.admission_wait_seconds);
    TenantGauge(tenant, "queue_wait_seconds")->Set(s.queue_wait_seconds);
    TenantGauge(tenant, "service_time_seconds")->Set(s.service_time_seconds);
    TenantGauge(tenant, "stall_time_seconds")->Set(s.stall_time_seconds);
  }
}

void TenantTable::PublishInflight(const std::map<TenantId, int>& live) {
  for (const auto& [tenant, count] : live) {
    TenantGauge(tenant, "inflight")->Set(count);
  }
  // Zero gauges of tenants that went idle since the last publication.
  for (const auto& [tenant, prev] : last_inflight_) {
    if (prev != 0 && live.find(tenant) == live.end()) {
      TenantGauge(tenant, "inflight")->Set(0.0);
    }
  }
  last_inflight_ = live;
}

const TenantStats* TenantTable::stats(TenantId tenant) const {
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : &it->second;
}

std::vector<TenantId> TenantTable::ids() const {
  std::vector<TenantId> out;
  out.reserve(tenants_.size());
  for (const auto& [tenant, stats] : tenants_) out.push_back(tenant);
  return out;
}

TenantStats& TenantTable::Entry(TenantId tenant) {
  auto [it, inserted] = tenants_.try_emplace(tenant);
  if (inserted) {
    it->second.weight = weight(tenant);
    if (const TenantSlo* s = slo(tenant)) {
      it->second.has_slo = true;
      it->second.slo = *s;
    }
  }
  return it->second;
}

}  // namespace lsched

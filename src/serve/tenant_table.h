#ifndef LSCHED_SERVE_TENANT_TABLE_H_
#define LSCHED_SERVE_TENANT_TABLE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "exec/exec_types.h"
#include "obs/drift.h"

namespace lsched {

class QueryState;

/// Per-tenant latency objective: "`percentile` of this tenant's queries
/// finish within `target_seconds`". The error budget is 1 - percentile;
/// the burn rate is the observed bad-query fraction divided by that budget
/// (burn rate 1.0 = spending the budget exactly as fast as allowed, > 1 =
/// on track to violate the SLO). Queries the system refused (shed at
/// admission, displaced, failed) count against the budget — a query the
/// user never got an answer for is worse than a slow one. Cancels are the
/// client's own doing and are excluded from the objective.
struct TenantSlo {
  double target_seconds = 0.0;
  double percentile = 0.99;
};

/// Per-tenant serving statistics (DESIGN.md §11).
struct TenantStats {
  /// Weighted-fair-share weight (relative; the share of threads and service
  /// a tenant is entitled to is weight / sum-of-active-weights).
  double weight = 1.0;

  /// Admission-control consultations for this tenant (every arrival that
  /// reached the serving hooks; drain-time sheds bypass admission and are
  /// only visible in the terminal counters below).
  int64_t arrived = 0;
  /// Arrivals the admission controller let in (including ones that later
  /// get displaced by a higher-priority arrival).
  int64_t admitted = 0;

  // Terminal outcomes (exactly one per query that reached a terminal
  // state; admitted + at-door sheds == sum of these once the stream ends).
  int64_t completed = 0;
  int64_t cancelled = 0;
  int64_t failed = 0;
  int64_t shed = 0;

  /// Attained service (thread-seconds of completed work orders) summed over
  /// *terminal* queries. The fairness deficit adds live queries' attained
  /// service from the scheduling context on top of this.
  double service_seconds = 0.0;

  /// Streaming latency quantiles over DONE queries (completion - arrival).
  obs::P2Quantile latency_p50{0.5};
  obs::P2Quantile latency_p99{0.99};

  /// Refused-latency ledger: time-in-system of queries that reached a
  /// terminal state WITHOUT completing (shed, displaced, failed,
  /// cancelled). The DONE-only quantiles above systematically undercount a
  /// tenant's pain under load shedding — a tenant whose queries are all
  /// refused instantly shows a perfect latency_p99 — so refused queries
  /// get their own ledger and count against the SLO below.
  int64_t refused = 0;
  obs::P2Quantile refused_latency_p50{0.5};
  obs::P2Quantile refused_latency_p99{0.99};

  /// SLO accounting (only meaningful when has_slo). slo_total counts DONE +
  /// SHED + FAILED terminals; slo_violations the subset that blew the
  /// objective (over-target DONE, plus every SHED/FAILED).
  bool has_slo = false;
  TenantSlo slo;
  int64_t slo_total = 0;
  int64_t slo_violations = 0;

  /// Cumulative latency decomposition over terminal queries
  /// (QueryState::breakdown(), filled by the EpisodeRecorder before the
  /// serving hooks run; DESIGN.md §8.2).
  double admission_wait_seconds = 0.0;
  double queue_wait_seconds = 0.0;
  double service_time_seconds = 0.0;
  double stall_time_seconds = 0.0;

  int64_t Terminal() const { return completed + cancelled + failed + shed; }

  /// Burn rate of the SLO error budget; 0 when no SLO is set or nothing
  /// has terminated yet.
  double BurnRate() const;
};

/// Tenant accounting for the serving layer: counters, latency quantiles,
/// and fair-share weights, mirrored into the process-global metrics
/// registry as `serve.tenant<id>.*` so the Prometheus exporter surfaces
/// per-tenant health of a long-running daemon.
///
/// Threading: mutated only from the engine coordinator thread (the
/// ServingHooks contract); the registry metrics it publishes are themselves
/// thread-safe, so scrapes never race the mutations.
class TenantTable {
 public:
  TenantTable() = default;

  /// Clears all statistics but keeps configured weights. (The registry
  /// metrics are process-global and monotonic; they are NOT reset.)
  void Reset();

  /// Sets the fair-share weight of `tenant` (must be > 0).
  void SetWeight(TenantId tenant, double weight);
  /// The configured weight, or 1.0 for tenants never configured.
  double weight(TenantId tenant) const;

  /// Sets `tenant`'s latency SLO (target_seconds > 0, percentile in
  /// (0, 1)). Publishes `serve.tenant<id>.slo_burn_rate` from then on.
  void SetSlo(TenantId tenant, const TenantSlo& slo);
  /// The configured SLO, or nullptr when the tenant has none.
  const TenantSlo* slo(TenantId tenant) const;

  /// Records an admission consultation for `tag`'s tenant; `admitted` says
  /// whether the verdict let the query in.
  void OnArrival(const QueryTag& tag, bool admitted);

  /// Records a terminal transition: bumps the outcome counter, accumulates
  /// attained service, observes completion latency (DONE only), and
  /// publishes the tenant's registry metrics.
  void OnTerminal(const QueryState& q, double now);

  /// Publishes per-tenant live-query gauges (`serve.tenant<id>.inflight`).
  /// Tenants previously live but absent from `live` are zeroed.
  void PublishInflight(const std::map<TenantId, int>& live);

  /// Stats for `tenant`, or nullptr if it never appeared.
  const TenantStats* stats(TenantId tenant) const;

  /// All tenant ids ever seen (sorted).
  std::vector<TenantId> ids() const;

 private:
  TenantStats& Entry(TenantId tenant);
  void PublishTenant(TenantId tenant, const TenantStats& s) const;

  // std::map: deterministic iteration order for metric publication.
  std::map<TenantId, TenantStats> tenants_;
  std::map<TenantId, double> weights_;
  std::map<TenantId, TenantSlo> slos_;  // survives Reset, like weights_
  /// Tenants with a nonzero inflight gauge (so PublishInflight can zero
  /// gauges of tenants that went idle).
  std::map<TenantId, int> last_inflight_;
};

}  // namespace lsched

#endif  // LSCHED_SERVE_TENANT_TABLE_H_

#include "serve/serving_daemon.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/exporter.h"
#include "util/clock.h"
#include "util/logging.h"

namespace lsched {

ServingDaemon::ServingDaemon(ServingDaemonConfig config)
    : config_(std::move(config)), policy_(config_.policy) {}

ServingDaemon::~ServingDaemon() {
  if (serving()) Stop();
}

EpisodeResult ServingDaemon::RunScript(const ScriptedIngress& ingress,
                                       Scheduler* scheduler) {
  LSCHED_CHECK(real_ == nullptr);  // not while live serving
  policy_.Reset();
  for (const auto& [tenant, slo] : ingress.tenant_slos()) {
    policy_.tenants().SetSlo(tenant, slo);
  }
  SimEngineConfig cfg = config_.sim;
  cfg.hooks = &policy_;
  cfg.cancels = ingress.SimCancels();
  SimEngine engine(cfg);
  return engine.Run(ingress.SimWorkload(), scheduler);
}

void ServingDaemon::Start(const Catalog* catalog, Scheduler* scheduler) {
  LSCHED_CHECK(real_ == nullptr);
  policy_.Reset();
  RealEngineConfig cfg = config_.real;
  cfg.hooks = &policy_;
  cfg.cancels.clear();  // serving mode cancels via Cancel(), not scripts
  real_ = std::make_unique<RealEngine>(catalog, cfg);
  obs::SetDraining(false);
  real_->StartServing(scheduler);
}

QueryId ServingDaemon::Submit(QueryPlan plan, QueryTag tag) {
  if (real_ == nullptr) return kInvalidQuery;
  return real_->Submit(std::move(plan), tag);
}

void ServingDaemon::Cancel(QueryId query) {
  if (real_ != nullptr) real_->CancelQuery(query);
}

std::vector<QueryId> ServingDaemon::Replay(const ScriptedIngress& ingress,
                                           double time_scale) {
  LSCHED_CHECK(serving());
  for (const auto& [tenant, slo] : ingress.tenant_slos()) {
    policy_.tenants().SetSlo(tenant, slo);
  }
  std::vector<QueryId> ids(ingress.num_submissions(), kInvalidQuery);
  WallClock clock;
  int ordinal = 0;
  for (const IngressEvent& e : ingress.events()) {
    const double target = e.time * time_scale;
    while (clock.Now() < target) {
      const double remaining = target - clock.Now();
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(remaining, 0.01)));
    }
    if (e.kind == IngressEvent::Kind::kSubmit) {
      ids[ordinal++] = Submit(ingress.plans()[e.plan_index], e.tag);
    } else if (ids[e.target] != kInvalidQuery) {
      Cancel(ids[e.target]);
    }
  }
  return ids;
}

RealRunResult ServingDaemon::Stop() {
  LSCHED_CHECK(real_ != nullptr);
  obs::SetDraining(true);
  RealRunResult result = real_->Drain();
  real_.reset();
  obs::SetDraining(false);
  return result;
}

EpisodeResult ServingDaemon::Snapshot() const {
  if (real_ == nullptr) return EpisodeResult{};
  return real_->Snapshot();
}

}  // namespace lsched

#ifndef LSCHED_SERVE_SCRIPTED_INGRESS_H_
#define LSCHED_SERVE_SCRIPTED_INGRESS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "exec/exec_types.h"
#include "exec/real_engine.h"
#include "exec/sim_engine.h"
#include "plan/query_plan.h"
#include "serve/tenant_table.h"

namespace lsched {

/// One event of a deterministic ingress script (DESIGN.md §11): either a
/// query submission (with tenant/priority tag) or the cancellation of an
/// earlier submission, at a scripted time.
struct IngressEvent {
  enum class Kind : uint8_t {
    kSubmit = 0,
    kCancel,
  };

  Kind kind = Kind::kSubmit;
  /// Script time in seconds (virtual seconds when replayed through the
  /// simulator; scaled run-clock seconds against a live daemon).
  double time = 0.0;

  /// kSubmit: index into the plan library.
  int plan_index = -1;
  /// kSubmit: serving metadata.
  QueryTag tag;

  /// kCancel: ordinal (0-based, submission order) of the submission to
  /// cancel. May name a later submission — the cancel then lands at or
  /// before the query's arrival and cancels it on admission.
  int target = -1;

  static IngressEvent Submit(double time, int plan_index,
                             QueryTag tag = QueryTag{}) {
    IngressEvent e;
    e.kind = Kind::kSubmit;
    e.time = time;
    e.plan_index = plan_index;
    e.tag = tag;
    return e;
  }
  static IngressEvent Cancel(double time, int target) {
    IngressEvent e;
    e.kind = Kind::kCancel;
    e.time = time;
    e.target = target;
    return e;
  }
};

/// A deterministic multi-tenant arrival script plus the plan library it
/// indexes into: the single source of truth a serving stream can be driven
/// from in three interchangeable ways —
///
///  * SimWorkload()/SimCancels(): one SimEngine episode on the virtual
///    clock (submission ordinal i becomes QueryId i), for byte-identical
///    replays,
///  * RealWorkload()/RealCancels(): one RealEngine episode with scripted
///    arrival offsets,
///  * ServingDaemon::Replay(): live Submit()/Cancel() calls against a
///    running daemon, paced on the wall clock.
///
/// Events are kept sorted by time (stable, preserving the authored order of
/// ties), so identical scripts produce identical event sequences.
class ScriptedIngress {
 public:
  /// Validates and adopts the script: every submit's plan_index must be in
  /// range, every cancel's target must name one of the script's
  /// submissions.
  ScriptedIngress(std::vector<IngressEvent> events,
                  std::vector<QueryPlan> plans);

  const std::vector<IngressEvent>& events() const { return events_; }
  const std::vector<QueryPlan>& plans() const { return plans_; }
  int num_submissions() const { return num_submissions_; }

  /// Declares `tenant`'s latency SLO as part of the script, so a replay —
  /// simulated or live — carries its objectives with it
  /// (ServingDaemon::RunScript/Replay apply them to the tenant table).
  void SetTenantSlo(TenantId tenant, const TenantSlo& slo) {
    for (auto& [t, s] : tenant_slos_) {
      if (t == tenant) {
        s = slo;
        return;
      }
    }
    tenant_slos_.emplace_back(tenant, slo);
  }
  const std::vector<std::pair<TenantId, TenantSlo>>& tenant_slos() const {
    return tenant_slos_;
  }

  /// The script as a SimEngine workload: submission ordinal i is workload
  /// index (= QueryId) i, arriving at its scripted time.
  std::vector<QuerySubmission> SimWorkload() const;
  /// The script's cancels against those QueryIds, at their scripted times.
  std::vector<CancelRequest> SimCancels() const;

  /// The script as a RealEngine episode workload; times are multiplied by
  /// `time_scale` (scripts are usually authored in abstract seconds much
  /// longer than real kernels need).
  std::vector<RealQuerySubmission> RealWorkload(double time_scale) const;
  std::vector<CancelRequest> RealCancels(double time_scale) const;

 private:
  std::vector<IngressEvent> events_;
  std::vector<QueryPlan> plans_;
  std::vector<std::pair<TenantId, TenantSlo>> tenant_slos_;
  int num_submissions_ = 0;
};

}  // namespace lsched

#endif  // LSCHED_SERVE_SCRIPTED_INGRESS_H_

#ifndef LSCHED_UTIL_CLOCK_H_
#define LSCHED_UTIL_CLOCK_H_

#include <chrono>

namespace lsched {

/// Abstract time source so engines can run on wall-clock time (RealEngine)
/// or virtual time (SimEngine) behind the same interface. Times are seconds.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double Now() const = 0;
};

/// Monotonic wall clock (seconds since first use).
class WallClock : public Clock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}
  double Now() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Manually-advanced virtual clock used by the discrete-event simulator.
class VirtualClock : public Clock {
 public:
  double Now() const override { return now_; }
  void AdvanceTo(double t) {
    if (t > now_) now_ = t;
  }
  void Reset() { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

/// RAII stopwatch measuring elapsed wall time in seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lsched

#endif  // LSCHED_UTIL_CLOCK_H_

#include "util/perf_snapshot.h"

#include <sys/utsname.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "util/build_info.h"

namespace lsched {

namespace {

/// Escapes the few characters that could plausibly appear in provenance
/// strings; metric keys are identifier-like by convention.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  // %.17g round-trips doubles exactly: a self-compare of a written and
  // re-parsed snapshot reports zero deltas.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s(buf);
  if (s == "inf") s = "1e308";
  if (s == "-inf") s = "-1e308";
  if (s == "nan" || s == "-nan") s = "0";
  return s;
}

/// Extracts the first quoted string in `line`; returns false if none.
bool FirstQuoted(const std::string& line, std::string* out, size_t* after) {
  const size_t a = line.find('"');
  if (a == std::string::npos) return false;
  const size_t b = line.find('"', a + 1);
  if (b == std::string::npos) return false;
  out->assign(line, a + 1, b - a - 1);
  *after = b + 1;
  return true;
}

}  // namespace

double PerfSnapshot::Get(const std::string& key) const {
  for (const auto& [k, v] : metrics) {
    if (k == key) return v;
  }
  return std::nan("");
}

PerfSnapshot MakePerfSnapshot(const std::string& name) {
  PerfSnapshot snap;
  snap.name = name;
  snap.git_sha = buildinfo::kGitSha;
  snap.compiler = buildinfo::kCompiler;
  snap.build_type = buildinfo::kBuildType;
  snap.obs = buildinfo::kObs;
  snap.faults = buildinfo::kFaults;
  utsname un{};
  if (uname(&un) == 0) {
    snap.machine = std::string(un.sysname) + "-" + un.machine;
  } else {
    snap.machine = "unknown";
  }
  snap.cores = static_cast<int>(std::thread::hardware_concurrency());
  return snap;
}

std::string PerfSnapshotToJson(const PerfSnapshot& snap) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"name\": \"" << JsonEscape(snap.name) << "\",\n";
  os << "  \"build\": {\n";
  os << "    \"git_sha\": \"" << JsonEscape(snap.git_sha) << "\",\n";
  os << "    \"compiler\": \"" << JsonEscape(snap.compiler) << "\",\n";
  os << "    \"build_type\": \"" << JsonEscape(snap.build_type) << "\",\n";
  os << "    \"obs\": \"" << JsonEscape(snap.obs) << "\",\n";
  os << "    \"faults\": \"" << JsonEscape(snap.faults) << "\"\n";
  os << "  },\n";
  os << "  \"machine\": {\n";
  os << "    \"fingerprint\": \"" << JsonEscape(snap.machine) << "\",\n";
  os << "    \"cores\": " << snap.cores << "\n";
  os << "  },\n";
  os << "  \"metrics\": {\n";
  for (size_t i = 0; i < snap.metrics.size(); ++i) {
    os << "    \"" << JsonEscape(snap.metrics[i].first)
       << "\": " << FormatDouble(snap.metrics[i].second)
       << (i + 1 < snap.metrics.size() ? ",\n" : "\n");
  }
  os << "  }\n";
  os << "}\n";
  return os.str();
}

bool WritePerfSnapshot(const PerfSnapshot& snap, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = PerfSnapshotToJson(snap);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

bool ParsePerfSnapshot(const std::string& text, PerfSnapshot* out) {
  *out = PerfSnapshot();
  out->cores = 0;
  std::istringstream is(text);
  std::string line;
  std::string section;  // "", "build", "machine", "metrics"
  bool saw_name = false;
  bool saw_metrics = false;
  while (std::getline(is, line)) {
    std::string key;
    size_t after = 0;
    if (!FirstQuoted(line, &key, &after)) {
      if (line.find('}') != std::string::npos) section.clear();
      continue;
    }
    const size_t colon = line.find(':', after);
    if (colon == std::string::npos) continue;
    std::string rest = line.substr(colon + 1);
    // Section opener?
    if (rest.find('{') != std::string::npos) {
      section = key;
      if (section == "metrics") saw_metrics = true;
      continue;
    }
    // String value?
    std::string sval;
    size_t ignored = 0;
    const bool is_string = FirstQuoted(rest, &sval, &ignored);
    if (section.empty() && key == "name" && is_string) {
      out->name = sval;
      saw_name = true;
    } else if (section == "build" && is_string) {
      if (key == "git_sha") out->git_sha = sval;
      if (key == "compiler") out->compiler = sval;
      if (key == "build_type") out->build_type = sval;
      if (key == "obs") out->obs = sval;
      if (key == "faults") out->faults = sval;
    } else if (section == "machine") {
      if (key == "fingerprint" && is_string) out->machine = sval;
      if (key == "cores") out->cores = std::atoi(rest.c_str());
    } else if (section == "metrics" && !is_string) {
      out->metrics.emplace_back(key, std::strtod(rest.c_str(), nullptr));
    }
  }
  return saw_name && saw_metrics;
}

bool ReadPerfSnapshot(const std::string& path, PerfSnapshot* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return ParsePerfSnapshot(text, out);
}

bool MetricHigherIsBetter(const std::string& key) {
  static constexpr const char* kHigherIsBetter[] = {
      "speedup", "throughput", "per_sec", "hit_rate", "occupancy", "qps",
      "completed",
  };
  for (const char* marker : kHigherIsBetter) {
    if (key.find(marker) != std::string::npos) return true;
  }
  return false;
}

CompareResult ComparePerfSnapshots(const PerfSnapshot& baseline,
                                   const PerfSnapshot& fresh,
                                   const CompareOptions& opts) {
  CompareResult result;
  result.machine_mismatch =
      baseline.machine != fresh.machine || baseline.cores != fresh.cores;
  result.build_flags_mismatch = baseline.obs != fresh.obs ||
                                baseline.faults != fresh.faults ||
                                baseline.build_type != fresh.build_type;
  for (const auto& [key, old_value] : baseline.metrics) {
    MetricDelta d;
    d.key = key;
    d.old_value = old_value;
    d.higher_is_better = MetricHigherIsBetter(key);
    const double new_value = fresh.Get(key);
    if (std::isnan(new_value)) {
      d.severity = MetricDelta::kMissing;
      result.deltas.push_back(d);
      continue;
    }
    d.new_value = new_value;
    // Relative regression, direction-aware. Guard zero/negative baselines:
    // a metric that was 0 cannot regress relatively, only absolutely — we
    // treat any move off an exact 0 as informational.
    if (old_value > 0.0 && new_value > 0.0) {
      d.regression = d.higher_is_better ? old_value / new_value - 1.0
                                        : new_value / old_value - 1.0;
    } else {
      d.regression = 0.0;
    }
    const bool can_fail =
        opts.fail_filter.empty() || key.find(opts.fail_filter) != std::string::npos;
    if (d.regression > opts.fail_threshold && can_fail) {
      d.severity = MetricDelta::kFail;
    } else if (d.regression > opts.warn_threshold) {
      d.severity = MetricDelta::kWarn;
    }
    // Shared-runner mode: a different machine cannot hard-fail the gate
    // unless the caller insists (--strict).
    if (d.severity == MetricDelta::kFail && result.machine_mismatch &&
        !opts.strict) {
      d.severity = MetricDelta::kWarn;
    }
    if (d.severity == MetricDelta::kFail) ++result.fails;
    if (d.severity == MetricDelta::kWarn) ++result.warns;
    result.deltas.push_back(d);
  }
  for (const auto& [key, value] : fresh.metrics) {
    if (!std::isnan(baseline.Get(key))) continue;
    MetricDelta d;
    d.key = key;
    d.new_value = value;
    d.severity = MetricDelta::kNew;
    result.deltas.push_back(d);
  }
  return result;
}

std::string RenderCompare(const PerfSnapshot& baseline,
                          const PerfSnapshot& fresh,
                          const CompareResult& result) {
  std::ostringstream os;
  os << "bench_compare: " << baseline.name << "\n";
  os << "  baseline: sha=" << baseline.git_sha << " machine=" << baseline.machine
     << "/" << baseline.cores << "c obs=" << baseline.obs << "\n";
  os << "  fresh:    sha=" << fresh.git_sha << " machine=" << fresh.machine
     << "/" << fresh.cores << "c obs=" << fresh.obs << "\n";
  if (result.machine_mismatch) {
    os << "  note: machine fingerprints differ — regressions downgraded to"
          " warnings (pass --strict to gate anyway)\n";
  }
  if (result.build_flags_mismatch) {
    os << "  note: build flags differ between snapshots\n";
  }
  size_t width = 8;
  for (const MetricDelta& d : result.deltas) width = std::max(width, d.key.size());
  char buf[256];
  for (const MetricDelta& d : result.deltas) {
    const char* tag = "ok  ";
    switch (d.severity) {
      case MetricDelta::kWarn: tag = "WARN"; break;
      case MetricDelta::kFail: tag = "FAIL"; break;
      case MetricDelta::kNew: tag = "new "; break;
      case MetricDelta::kMissing: tag = "gone"; break;
      default: break;
    }
    if (d.severity == MetricDelta::kNew) {
      std::snprintf(buf, sizeof(buf), "  %s %-*s %14s -> %12.6g\n", tag,
                    static_cast<int>(width), d.key.c_str(), "-", d.new_value);
    } else if (d.severity == MetricDelta::kMissing) {
      std::snprintf(buf, sizeof(buf), "  %s %-*s %14.6g -> %12s\n", tag,
                    static_cast<int>(width), d.key.c_str(), d.old_value, "-");
    } else {
      std::snprintf(buf, sizeof(buf), "  %s %-*s %14.6g -> %12.6g  %+6.1f%%%s\n",
                    tag, static_cast<int>(width), d.key.c_str(), d.old_value,
                    d.new_value, d.regression * 100.0,
                    d.higher_is_better ? " (higher is better)" : "");
    }
    os << buf;
  }
  os << "  " << result.fails << " fail(s), " << result.warns << " warn(s), "
     << result.deltas.size() << " metric(s)\n";
  return os.str();
}

int CompareExitCode(const CompareResult& result, const CompareOptions& opts) {
  if (opts.warn_only) return 0;
  return result.fails > 0 ? 1 : 0;
}

}  // namespace lsched

#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace lsched {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// SplitMix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  LSCHED_DCHECK(n > 0) << "UniformInt(0)";
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return v % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  LSCHED_DCHECK(hi >= lo);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Exponential(double mean) {
  double u;
  do {
    u = Uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

uint64_t Rng::Zipf(uint64_t n, double theta) {
  LSCHED_DCHECK(n > 0);
  if (n == 1) return 0;
  // Standard Gray et al. approximation-free method via the zeta normalizer.
  // O(1) per sample after O(1) setup using the closed-form approximation of
  // the generalized harmonic number; adequate for workload skew generation.
  const double alpha = 1.0 / (1.0 - theta);
  const double zetan = (std::pow(static_cast<double>(n), 1.0 - theta) - 1.0) /
                           (1.0 - theta) +
                       1.0;
  const double eta =
      (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
      (1.0 - 2.0 / zetan / 1.0);
  const double u = Uniform();
  const double uz = u * zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
  return v >= n ? n - 1 : v;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.size();
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA0761D6478BD642FULL); }

}  // namespace lsched

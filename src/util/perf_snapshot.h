#ifndef LSCHED_UTIL_PERF_SNAPSHOT_H_
#define LSCHED_UTIL_PERF_SNAPSHOT_H_

// Perf-trajectory snapshots (DESIGN.md §8.3). Every bench writes one
// BENCH_<name>.json with a flat metric map plus enough provenance (git
// sha, compiler, build flags, machine fingerprint) that a later diff can
// tell a code regression from an environment change. tools/bench_compare
// diffs two snapshots and exits nonzero past a regression threshold; CI
// runs it against the baselines committed at the repo root.

#include <string>
#include <utility>
#include <vector>

namespace lsched {

struct PerfSnapshot {
  std::string name;        ///< bench name, e.g. "serving" → BENCH_serving.json
  std::string git_sha;
  std::string compiler;
  std::string build_type;
  std::string obs;         ///< "on"/"off" (LSCHED_OBS at configure time)
  std::string faults;      ///< "on"/"off" (LSCHED_FAULTS)
  std::string machine;     ///< uname fingerprint, e.g. "Linux-x86_64"
  int cores = 0;

  /// Flat metric map; insertion order is preserved in the JSON.
  std::vector<std::pair<std::string, double>> metrics;

  void Add(const std::string& key, double value) {
    metrics.emplace_back(key, value);
  }
  /// First value stored under `key`, or NaN if absent.
  double Get(const std::string& key) const;
};

/// Snapshot pre-filled with build provenance (util/build_info.h) and the
/// machine fingerprint; callers Add() metrics and write it out.
PerfSnapshot MakePerfSnapshot(const std::string& name);

std::string PerfSnapshotToJson(const PerfSnapshot& snap);
bool WritePerfSnapshot(const PerfSnapshot& snap, const std::string& path);

/// Parses a snapshot previously produced by PerfSnapshotToJson. Tolerant
/// of whitespace/ordering but only of this writer's shape (one key per
/// line of `"key": value` pairs) — it is not a general JSON parser.
bool ParsePerfSnapshot(const std::string& text, PerfSnapshot* out);
bool ReadPerfSnapshot(const std::string& path, PerfSnapshot* out);

// --- comparison -----------------------------------------------------------

struct CompareOptions {
  double warn_threshold = 0.10;  ///< relative regression that warns
  double fail_threshold = 0.25;  ///< relative regression that fails
  /// Only metrics whose key contains this substring can hard-fail (others
  /// at most warn). Empty = every metric can fail. CI sets "p50" so noisy
  /// tail metrics on shared runners do not gate.
  std::string fail_filter;
  /// When the machine fingerprints differ, fails are downgraded to warns
  /// unless strict is set (shared-runner mode per ISSUE 8 satellite 5).
  bool strict = false;
  /// Render everything but always exit 0.
  bool warn_only = false;
};

struct MetricDelta {
  enum Severity { kOk, kWarn, kFail, kNew, kMissing };
  std::string key;
  double old_value = 0.0;
  double new_value = 0.0;
  /// Relative regression: positive = worse, negative = improvement.
  /// Direction-aware (a drop in a "*speedup*" metric is a regression).
  double regression = 0.0;
  bool higher_is_better = false;
  Severity severity = kOk;
};

struct CompareResult {
  std::vector<MetricDelta> deltas;
  bool machine_mismatch = false;
  bool build_flags_mismatch = false;  ///< obs/faults/build_type differ
  int warns = 0;
  int fails = 0;
};

/// Name heuristic for metric direction: keys containing speedup/throughput/
/// per_sec/hit_rate/occupancy/qps are higher-is-better, everything else
/// (latencies, overheads) lower-is-better.
bool MetricHigherIsBetter(const std::string& key);

CompareResult ComparePerfSnapshots(const PerfSnapshot& baseline,
                                   const PerfSnapshot& fresh,
                                   const CompareOptions& opts);

/// Aligned-text report of a comparison (one row per metric).
std::string RenderCompare(const PerfSnapshot& baseline,
                          const PerfSnapshot& fresh,
                          const CompareResult& result);

/// 0 = within thresholds, 1 = regression (respects warn_only/mismatch
/// downgrades, which are applied in ComparePerfSnapshots).
int CompareExitCode(const CompareResult& result, const CompareOptions& opts);

}  // namespace lsched

#endif  // LSCHED_UTIL_PERF_SNAPSHOT_H_

#ifndef LSCHED_UTIL_RNG_H_
#define LSCHED_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lsched {

/// Deterministic, seedable PRNG (xoshiro256**). All randomness in the
/// library flows through explicitly-passed Rng instances so that workloads,
/// training, and simulations are exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires hi >= lo.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Exponential with expected value `mean` (= 1/lambda).
  double Exponential(double mean);

  /// Standard normal via Box–Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Zipf-distributed integer in [0, n) with skew `theta` in (0, 1).
  /// theta -> 0 approaches uniform. Uses the rejection-free CDF inversion
  /// over a precomputed harmonic table for small n, direct sampling otherwise.
  uint64_t Zipf(uint64_t n, double theta);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples an index according to (non-negative, not necessarily
  /// normalized) weights. Returns weights.size() if all weights are zero.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Splits off an independent child generator (useful for per-query or
  /// per-thread determinism regardless of interleaving).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace lsched

#endif  // LSCHED_UTIL_RNG_H_

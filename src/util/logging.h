#ifndef LSCHED_UTIL_LOGGING_H_
#define LSCHED_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace lsched {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum level; messages below it are dropped. Default kInfo,
/// overridable at process start via the LSCHED_LOG_LEVEL env var
/// (DEBUG/INFO/WARN/ERROR/FATAL or an integer 0..4).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// FATAL messages abort the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define LSCHED_LOG(level) \
  ::lsched::internal::LogMessage(::lsched::LogLevel::k##level, __FILE__, __LINE__)

#define LSCHED_CHECK(cond)                                                 \
  if (!(cond))                                                             \
  ::lsched::internal::LogMessage(::lsched::LogLevel::kFatal, __FILE__,     \
                                 __LINE__)                                 \
      << "Check failed: " #cond " "

#define LSCHED_DCHECK(cond) LSCHED_CHECK(cond)

}  // namespace lsched

#endif  // LSCHED_UTIL_LOGGING_H_

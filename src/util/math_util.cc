#include "util/math_util.h"

#include <algorithm>
#include <cmath>

namespace lsched {

void SoftmaxInPlace(std::vector<double>* v) {
  if (v->empty()) return;
  const double mx = *std::max_element(v->begin(), v->end());
  double sum = 0.0;
  for (double& x : *v) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (double& x : *v) x /= sum;
}

std::vector<double> Softmax(const std::vector<double>& v) {
  std::vector<double> out = v;
  SoftmaxInPlace(&out);
  return out;
}

double LogSumExp(const std::vector<double>& v) {
  return LogSumExp(v.data(), v.size());
}

double LogSumExp(const double* v, size_t n) {
  if (n == 0) return -INFINITY;
  const double mx = *std::max_element(v, v + n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += std::exp(v[i] - mx);
  return mx + std::log(sum);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = Mean(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size()));
}

WindowedLinearRegression::WindowedLinearRegression(size_t window)
    : window_(window == 0 ? 1 : window) {}

void WindowedLinearRegression::Add(double x, double y) {
  points_.emplace_back(x, y);
  sx_ += x;
  sy_ += y;
  sxx_ += x * x;
  sxy_ += x * y;
  if (points_.size() > window_) {
    auto [ox, oy] = points_.front();
    points_.pop_front();
    sx_ -= ox;
    sy_ -= oy;
    sxx_ -= ox * ox;
    sxy_ -= ox * oy;
  }
}

void WindowedLinearRegression::Fit(double* a, double* b) const {
  const double n = static_cast<double>(points_.size());
  if (points_.size() < 2) {
    *b = 0.0;
    *a = points_.empty() ? 0.0 : sy_ / n;
    return;
  }
  const double denom = n * sxx_ - sx_ * sx_;
  if (std::fabs(denom) < 1e-12) {  // all x identical
    *b = 0.0;
    *a = sy_ / n;
    return;
  }
  *b = (n * sxy_ - sx_ * sy_) / denom;
  *a = (sy_ - *b * sx_) / n;
}

double WindowedLinearRegression::Predict(double x) const {
  double a, b;
  Fit(&a, &b);
  return a + b * x;
}

double WindowedLinearRegression::Slope() const {
  double a, b;
  Fit(&a, &b);
  return b;
}

double WindowedLinearRegression::Intercept() const {
  double a, b;
  Fit(&a, &b);
  return a;
}

std::vector<double> MovingAverageDownsample(const std::vector<double>& b,
                                            size_t out_size) {
  if (out_size == 0) return {};
  std::vector<double> d(out_size, 0.0);
  if (b.empty()) return d;
  if (b.size() <= out_size) {
    // Fewer inputs than outputs: copy and pad with the last value's average
    // semantics (each output bucket maps to at most one input).
    for (size_t j = 0; j < out_size; ++j) {
      const size_t idx = j * b.size() / out_size;
      d[j] = b[idx];
    }
    return d;
  }
  const double stride =
      static_cast<double>(b.size()) / static_cast<double>(out_size);
  for (size_t j = 0; j < out_size; ++j) {
    const size_t lo = static_cast<size_t>(static_cast<double>(j) * stride);
    size_t hi = static_cast<size_t>(static_cast<double>(j + 1) * stride);
    if (hi <= lo) hi = lo + 1;
    if (hi > b.size()) hi = b.size();
    double sum = 0.0;
    for (size_t k = lo; k < hi; ++k) sum += b[k];
    d[j] = sum / static_cast<double>(hi - lo);
  }
  return d;
}

}  // namespace lsched

#ifndef LSCHED_UTIL_STATUS_H_
#define LSCHED_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace lsched {

/// Error codes used across the library. Mirrors the common database-library
/// convention (Arrow/RocksDB style): cheap to pass by value, OK is the
/// overwhelmingly common case.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
  kIOError,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Functions that can fail return Status (or
/// Result<T> when they also produce a value) instead of throwing.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "Code: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_ = Status::Internal("uninitialized Result");
};

#define LSCHED_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::lsched::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define LSCHED_CONCAT_INNER(a, b) a##b
#define LSCHED_CONCAT(a, b) LSCHED_CONCAT_INNER(a, b)

#define LSCHED_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define LSCHED_ASSIGN_OR_RETURN(lhs, expr) \
  LSCHED_ASSIGN_OR_RETURN_IMPL(LSCHED_CONCAT(_res_, __LINE__), lhs, expr)

}  // namespace lsched

#endif  // LSCHED_UTIL_STATUS_H_

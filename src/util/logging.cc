#include "util/logging.h"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace lsched {

namespace {

/// Parses LSCHED_LOG_LEVEL: a name (DEBUG/INFO/WARN[ING]/ERROR/FATAL,
/// case-insensitive) or an integer 0..4. Anything else falls back to
/// kInfo, so a typo'd env var never silences errors.
int InitialLevel() {
  const char* env = std::getenv("LSCHED_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kInfo);
  }
  if (std::isdigit(static_cast<unsigned char>(env[0]))) {
    const long v = std::atol(env);
    if (v >= 0 && v <= static_cast<long>(LogLevel::kFatal)) {
      return static_cast<int>(v);
    }
    return static_cast<int>(LogLevel::kInfo);
  }
  char name[16] = {0};
  for (size_t i = 0; i < sizeof(name) - 1 && env[i] != '\0'; ++i) {
    name[i] = static_cast<char>(std::toupper(static_cast<unsigned char>(env[i])));
  }
  if (std::strcmp(name, "DEBUG") == 0) return static_cast<int>(LogLevel::kDebug);
  if (std::strcmp(name, "INFO") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(name, "WARN") == 0 || std::strcmp(name, "WARNING") == 0) {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (std::strcmp(name, "ERROR") == 0) return static_cast<int>(LogLevel::kError);
  if (std::strcmp(name, "FATAL") == 0) return static_cast<int>(LogLevel::kFatal);
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int> g_min_level{InitialLevel()};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = static_cast<int>(level); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >= g_min_level.load()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    const std::string line = stream_.str();
    // Single write() per line keeps messages from interleaved threads (or
    // a forked child sharing the fd) intact even beyond our own mutex.
    std::lock_guard<std::mutex> lock(g_log_mutex);
    size_t off = 0;
    while (off < line.size()) {
      const ssize_t n =
          ::write(STDERR_FILENO, line.data() + off, line.size() - off);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace lsched

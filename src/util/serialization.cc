#include "util/serialization.h"

#include <cstring>
#include <fstream>

namespace lsched {

namespace {
template <typename T>
void AppendRaw(std::string* buf, T v) {
  char tmp[sizeof(T)];
  std::memcpy(tmp, &v, sizeof(T));
  buf->append(tmp, sizeof(T));
}
}  // namespace

void BinaryWriter::WriteU32(uint32_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteU64(uint64_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteI64(int64_t v) { AppendRaw(&buffer_, v); }
void BinaryWriter::WriteDouble(double v) { AppendRaw(&buffer_, v); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  buffer_.append(s);
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& v) {
  WriteDoubles(v.data(), v.size());
}

void BinaryWriter::WriteDoubles(const double* v, size_t n) {
  WriteU64(n);
  for (size_t i = 0; i < n; ++i) WriteDouble(v[i]);
}

Status BinaryWriter::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return BinaryReader(std::move(data));
}

Status BinaryReader::Need(size_t n) {
  if (pos_ + n > buffer_.size()) {
    return Status::OutOfRange("binary buffer underflow");
  }
  return Status::OK();
}

Result<uint32_t> BinaryReader::ReadU32() {
  LSCHED_RETURN_IF_ERROR(Need(sizeof(uint32_t)));
  uint32_t v;
  std::memcpy(&v, buffer_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  LSCHED_RETURN_IF_ERROR(Need(sizeof(uint64_t)));
  uint64_t v;
  std::memcpy(&v, buffer_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

Result<int64_t> BinaryReader::ReadI64() {
  LSCHED_RETURN_IF_ERROR(Need(sizeof(int64_t)));
  int64_t v;
  std::memcpy(&v, buffer_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

Result<double> BinaryReader::ReadDouble() {
  LSCHED_RETURN_IF_ERROR(Need(sizeof(double)));
  double v;
  std::memcpy(&v, buffer_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  LSCHED_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  LSCHED_RETURN_IF_ERROR(Need(n));
  std::string s = buffer_.substr(pos_, n);
  pos_ += n;
  return s;
}

Result<std::vector<double>> BinaryReader::ReadDoubleVector() {
  LSCHED_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  std::vector<double> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    LSCHED_ASSIGN_OR_RETURN(double d, ReadDouble());
    v.push_back(d);
  }
  return v;
}

}  // namespace lsched

#ifndef LSCHED_UTIL_SERIALIZATION_H_
#define LSCHED_UTIL_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace lsched {

/// Append-only little-endian binary writer used for model checkpoints.
class BinaryWriter {
 public:
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteDoubleVector(const std::vector<double>& v);
  /// Same wire format as WriteDoubleVector (u64 count + raw doubles) for
  /// callers whose storage is not a plain std::vector<double> (e.g. the
  /// 64-byte-aligned nn::Matrix backing store).
  void WriteDoubles(const double* v, size_t n);

  const std::string& buffer() const { return buffer_; }

  /// Writes the buffer to `path` atomically-ish (truncate + write).
  Status SaveToFile(const std::string& path) const;

 private:
  std::string buffer_;
};

/// Sequential reader over a byte buffer; all reads bounds-checked.
class BinaryReader {
 public:
  explicit BinaryReader(std::string buffer) : buffer_(std::move(buffer)) {}

  static Result<BinaryReader> FromFile(const std::string& path);

  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<std::vector<double>> ReadDoubleVector();

  bool AtEnd() const { return pos_ == buffer_.size(); }

 private:
  Status Need(size_t n);

  std::string buffer_;
  size_t pos_ = 0;
};

}  // namespace lsched

#endif  // LSCHED_UTIL_SERIALIZATION_H_

#ifndef LSCHED_UTIL_MATH_UTIL_H_
#define LSCHED_UTIL_MATH_UTIL_H_

#include <cstddef>
#include <deque>
#include <vector>

namespace lsched {

/// In-place numerically-stable softmax over `v` (shifts by max).
void SoftmaxInPlace(std::vector<double>* v);

/// Returns softmax(v) without mutating the input.
std::vector<double> Softmax(const std::vector<double>& v);

/// log(sum(exp(v))) computed stably.
double LogSumExp(const std::vector<double>& v);

/// Pointer/size overload (same max-shift-then-sum order, so results are
/// bit-identical to the vector version on the same data).
double LogSumExp(const double* v, size_t n);

/// The p-th percentile (p in [0,100]) of `values` using linear
/// interpolation between closest ranks. Returns 0 for empty input.
double Percentile(std::vector<double> values, double p);

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Population standard deviation; 0 for size < 2.
double StdDev(const std::vector<double>& values);

/// Online simple linear regression y = a + b*x over a sliding window of the
/// most recent `window` observations. This is the estimator LSched uses for
/// per-work-order duration and memory prediction (paper §4.1 footnote 1):
/// fit on the durations of work orders within the last time window and
/// extrapolate the next one.
class WindowedLinearRegression {
 public:
  explicit WindowedLinearRegression(size_t window = 32);

  /// Adds an (x, y) observation, evicting the oldest beyond the window.
  void Add(double x, double y);

  /// Predicted y at `x`. With < 2 points falls back to the mean of y (or 0).
  double Predict(double x) const;

  /// Fitted slope b (0 until 2 distinct x values seen).
  double Slope() const;
  /// Fitted intercept a.
  double Intercept() const;

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

 private:
  void Fit(double* a, double* b) const;

  size_t window_;
  std::deque<std::pair<double, double>> points_;
  // Running sums over the window for O(1) fits.
  double sx_ = 0.0, sy_ = 0.0, sxx_ = 0.0, sxy_ = 0.0;
};

/// Exponentially-weighted moving average.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}
  void Add(double v) {
    value_ = initialized_ ? alpha_ * v + (1.0 - alpha_) * value_ : v;
    initialized_ = true;
  }
  double value() const { return value_; }
  bool initialized() const { return initialized_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Moving-average downsampling of a 0/1 (or real-valued) array to a fixed
/// size, per Eq. (1) of the paper: each output entry j averages the input
/// slice [j*|b|/|d|, (j+1)*|b|/|d|). Used to compress the O-BLCKS bitmap.
std::vector<double> MovingAverageDownsample(const std::vector<double>& b,
                                            size_t out_size);

}  // namespace lsched

#endif  // LSCHED_UTIL_MATH_UTIL_H_

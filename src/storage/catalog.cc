#include "storage/catalog.h"

namespace lsched {

Result<RelationId> Catalog::AddRelation(std::unique_ptr<Relation> relation) {
  const std::string& name = relation->name();
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("relation exists: " + name);
  }
  const RelationId id = static_cast<RelationId>(relations_.size());
  by_name_[name] = id;
  // Pre-register all columns so O-COLS ids are stable per catalog.
  for (const ColumnDef& col : relation->schema().columns()) {
    ColumnIdFor(name + "." + col.name);
  }
  relations_.push_back(std::move(relation));
  return id;
}

Result<RelationId> Catalog::FindRelation(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("no relation: " + name);
  return it->second;
}

ColumnId Catalog::ColumnIdFor(const std::string& qualified_name) {
  auto it = column_ids_.find(qualified_name);
  if (it != column_ids_.end()) return it->second;
  const ColumnId id = static_cast<ColumnId>(column_ids_.size());
  column_ids_[qualified_name] = id;
  return id;
}

}  // namespace lsched

#ifndef LSCHED_STORAGE_RELATION_H_
#define LSCHED_STORAGE_RELATION_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/block.h"
#include "storage/types.h"
#include "util/status.h"

namespace lsched {

/// A named table stored as a sequence of Blocks (paper §2: "Quickstep
/// manages its table storage as a set of blocks"). Also used for
/// intermediate results produced by operators.
class Relation {
 public:
  static constexpr size_t kDefaultBlockCapacity = 4096;

  Relation(std::string name, Schema schema,
           size_t block_capacity = kDefaultBlockCapacity);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t block_capacity() const { return block_capacity_; }

  size_t num_blocks() const { return blocks_.size(); }
  const Block& block(size_t i) const { return *blocks_[i]; }
  Block& mutable_block(size_t i) { return *blocks_[i]; }

  int64_t num_rows() const { return num_rows_; }

  /// Appends a row, allocating a new block when the tail block is full.
  Status AppendRow(const std::vector<double>& values);

  /// Appends a pre-built block (bulk load path).
  void AppendBlock(std::unique_ptr<Block> block);

  /// Total approximate bytes across all blocks.
  size_t ByteSize() const;

 private:
  std::string name_;
  Schema schema_;
  size_t block_capacity_;
  std::vector<std::unique_ptr<Block>> blocks_;
  int64_t num_rows_ = 0;
};

}  // namespace lsched

#endif  // LSCHED_STORAGE_RELATION_H_

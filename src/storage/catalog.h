#ifndef LSCHED_STORAGE_CATALOG_H_
#define LSCHED_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/relation.h"
#include "util/status.h"

namespace lsched {

/// Owns all base relations of a database instance and assigns RelationIds.
/// RelationIds are dense, so they double as positions in the O-IN feature
/// vector (paper §4.1).
class Catalog {
 public:
  /// Registers `relation` and returns its id; error if the name exists.
  Result<RelationId> AddRelation(std::unique_ptr<Relation> relation);

  /// Number of registered relations.
  size_t num_relations() const { return relations_.size(); }

  /// Lookup by id. Requires a valid id.
  const Relation& relation(RelationId id) const { return *relations_[id]; }
  Relation& mutable_relation(RelationId id) { return *relations_[id]; }

  /// Lookup by name.
  Result<RelationId> FindRelation(const std::string& name) const;

  /// Total number of distinct column names across all relations; used to
  /// size the O-COLS one-hot vocabulary.
  size_t num_distinct_columns() const { return column_ids_.size(); }

  /// Stable dense id for a (relation-qualified) column name, creating one on
  /// first use.
  ColumnId ColumnIdFor(const std::string& qualified_name);

 private:
  std::vector<std::unique_ptr<Relation>> relations_;
  std::map<std::string, RelationId> by_name_;
  std::map<std::string, ColumnId> column_ids_;
};

}  // namespace lsched

#endif  // LSCHED_STORAGE_CATALOG_H_

#include "storage/block.h"

namespace lsched {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "Int64";
    case DataType::kDouble:
      return "Double";
  }
  return "?";
}

Block::Block(const Schema& schema, size_t capacity) : capacity_(capacity) {
  types_.reserve(schema.num_columns());
  columns_.reserve(schema.num_columns());
  stats_.resize(schema.num_columns());
  for (const ColumnDef& col : schema.columns()) {
    types_.push_back(col.type);
    if (col.type == DataType::kInt64) {
      std::vector<int64_t> v;
      v.reserve(capacity);
      columns_.emplace_back(std::move(v));
    } else {
      std::vector<double> v;
      v.reserve(capacity);
      columns_.emplace_back(std::move(v));
    }
  }
}

Status Block::AppendRow(const std::vector<double>& values) {
  if (full()) return Status::FailedPrecondition("block is full");
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (types_[i] == DataType::kInt64) {
      std::get<std::vector<int64_t>>(columns_[i])
          .push_back(static_cast<int64_t>(values[i]));
    } else {
      std::get<std::vector<double>>(columns_[i]).push_back(values[i]);
    }
    ColumnStats& st = stats_[i];
    if (values[i] < st.min) st.min = values[i];
    if (values[i] > st.max) st.max = values[i];
  }
  ++num_rows_;
  return Status::OK();
}

double Block::ValueAsDouble(size_t col, size_t row) const {
  if (types_[col] == DataType::kInt64) {
    return static_cast<double>(Int64Column(col)[row]);
  }
  return DoubleColumn(col)[row];
}

size_t Block::ByteSize() const {
  size_t bytes = sizeof(Block) + stats_.size() * sizeof(ColumnStats);
  for (size_t i = 0; i < columns_.size(); ++i) {
    bytes += num_rows_ * 8;  // both supported types are 8 bytes wide
  }
  return bytes;
}

}  // namespace lsched

#include "storage/relation.h"

namespace lsched {

Relation::Relation(std::string name, Schema schema, size_t block_capacity)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      block_capacity_(block_capacity == 0 ? kDefaultBlockCapacity
                                          : block_capacity) {}

Status Relation::AppendRow(const std::vector<double>& values) {
  if (blocks_.empty() || blocks_.back()->full()) {
    blocks_.push_back(std::make_unique<Block>(schema_, block_capacity_));
  }
  LSCHED_RETURN_IF_ERROR(blocks_.back()->AppendRow(values));
  ++num_rows_;
  return Status::OK();
}

void Relation::AppendBlock(std::unique_ptr<Block> block) {
  num_rows_ += static_cast<int64_t>(block->num_rows());
  blocks_.push_back(std::move(block));
}

size_t Relation::ByteSize() const {
  size_t bytes = 0;
  for (const auto& b : blocks_) bytes += b->ByteSize();
  return bytes;
}

}  // namespace lsched

#include "storage/table_generator.h"

#include <cmath>

#include "util/logging.h"

namespace lsched {

namespace {
double DrawValue(const ColumnSpec& spec, int64_t row, Rng* rng) {
  switch (spec.dist) {
    case ColumnDistribution::kSequential:
      return static_cast<double>(row);
    case ColumnDistribution::kUniformInt:
      return static_cast<double>(rng->UniformInt(
          static_cast<int64_t>(spec.lo), static_cast<int64_t>(spec.hi)));
    case ColumnDistribution::kUniformReal:
      return rng->Uniform(spec.lo, spec.hi);
    case ColumnDistribution::kZipfInt:
      return static_cast<double>(
          rng->Zipf(static_cast<uint64_t>(spec.hi), spec.param));
    case ColumnDistribution::kNormalReal:
      return rng->Normal(spec.lo, spec.param);
    case ColumnDistribution::kForeignKey: {
      const uint64_t n = static_cast<uint64_t>(spec.hi);
      return static_cast<double>(n == 0 ? 0 : rng->UniformInt(n));
    }
  }
  return 0.0;
}
}  // namespace

std::unique_ptr<Relation> GenerateTable(const TableSpec& spec, Rng* rng) {
  std::vector<ColumnDef> defs;
  defs.reserve(spec.columns.size());
  for (const ColumnSpec& col : spec.columns) {
    defs.push_back(ColumnDef{col.name, col.type});
  }
  auto rel = std::make_unique<Relation>(spec.name, Schema(std::move(defs)),
                                        spec.block_capacity);
  std::vector<double> row(spec.columns.size());
  for (int64_t r = 0; r < spec.num_rows; ++r) {
    for (size_t c = 0; c < spec.columns.size(); ++c) {
      row[c] = DrawValue(spec.columns[c], r, rng);
    }
    const Status st = rel->AppendRow(row);
    LSCHED_CHECK(st.ok()) << st.ToString();
  }
  return rel;
}

}  // namespace lsched

#ifndef LSCHED_STORAGE_TABLE_GENERATOR_H_
#define LSCHED_STORAGE_TABLE_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/relation.h"
#include "util/rng.h"
#include "util/status.h"

namespace lsched {

/// How a synthetic column's values are drawn.
enum class ColumnDistribution {
  kSequential,   ///< 0, 1, 2, ... (primary keys)
  kUniformInt,   ///< uniform integer in [lo, hi]
  kUniformReal,  ///< uniform double in [lo, hi)
  kZipfInt,      ///< zipf over [0, hi) with skew `param`
  kNormalReal,   ///< normal(lo, param)
  kForeignKey,   ///< uniform in [0, hi) — reference into another table
};

/// Specification of one synthetic column.
struct ColumnSpec {
  std::string name;
  DataType type = DataType::kInt64;
  ColumnDistribution dist = ColumnDistribution::kUniformInt;
  double lo = 0.0;
  double hi = 100.0;
  double param = 0.0;  ///< zipf skew or normal stddev
};

/// Specification of one synthetic table.
struct TableSpec {
  std::string name;
  std::vector<ColumnSpec> columns;
  int64_t num_rows = 0;
  size_t block_capacity = Relation::kDefaultBlockCapacity;
};

/// Deterministically materializes `spec` using `rng`.
std::unique_ptr<Relation> GenerateTable(const TableSpec& spec, Rng* rng);

}  // namespace lsched

#endif  // LSCHED_STORAGE_TABLE_GENERATOR_H_

#ifndef LSCHED_STORAGE_TYPES_H_
#define LSCHED_STORAGE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lsched {

/// Column data types. Strings are dictionary-encoded to Int64 keys by the
/// table generators, so the execution kernels only deal with fixed-width
/// values (the common design in block-based columnar engines).
enum class DataType : uint8_t { kInt64 = 0, kDouble = 1 };

const char* DataTypeName(DataType t);

/// One column of a relation schema.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;
};

/// An ordered list of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1 if absent.
  int FindColumn(const std::string& name) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

 private:
  std::vector<ColumnDef> columns_;
};

/// Identifiers used throughout the library.
using RelationId = int32_t;
using BlockId = int32_t;
using ColumnId = int32_t;

inline constexpr RelationId kInvalidRelation = -1;

}  // namespace lsched

#endif  // LSCHED_STORAGE_TYPES_H_

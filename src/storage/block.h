#ifndef LSCHED_STORAGE_BLOCK_H_
#define LSCHED_STORAGE_BLOCK_H_

#include <cstdint>
#include <limits>
#include <variant>
#include <vector>

#include "storage/types.h"
#include "util/status.h"

namespace lsched {

/// Typed columnar sub-block storage.
using ColumnData = std::variant<std::vector<int64_t>, std::vector<double>>;

/// Per-column zone-map style statistics kept in the block header; used by
/// kernels for block pruning and by the optimizer for cardinality estimates.
struct ColumnStats {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

/// A self-contained mini-database unit (paper §2): columnar sub-blocks of
/// data plus a metadata header. Each work order processes exactly one block.
class Block {
 public:
  /// Creates an empty block with the given schema and row capacity.
  Block(const Schema& schema, size_t capacity);

  size_t num_rows() const { return num_rows_; }
  size_t capacity() const { return capacity_; }
  size_t num_columns() const { return columns_.size(); }
  bool full() const { return num_rows_ >= capacity_; }

  /// Appends one row given per-column values as doubles (int columns are
  /// truncated). Returns FailedPrecondition when full or arity mismatches.
  Status AppendRow(const std::vector<double>& values);

  /// Typed column accessors. The variant alternative must match the schema.
  const std::vector<int64_t>& Int64Column(size_t i) const {
    return std::get<std::vector<int64_t>>(columns_[i]);
  }
  const std::vector<double>& DoubleColumn(size_t i) const {
    return std::get<std::vector<double>>(columns_[i]);
  }
  DataType column_type(size_t i) const { return types_[i]; }

  /// Value of column `col` at row `row` widened to double.
  double ValueAsDouble(size_t col, size_t row) const;

  /// Header statistics for column `i` (maintained on append).
  const ColumnStats& column_stats(size_t i) const { return stats_[i]; }

  /// Approximate in-memory footprint in bytes (data + header).
  size_t ByteSize() const;

 private:
  size_t capacity_;
  size_t num_rows_ = 0;
  std::vector<DataType> types_;
  std::vector<ColumnData> columns_;
  std::vector<ColumnStats> stats_;
};

}  // namespace lsched

#endif  // LSCHED_STORAGE_BLOCK_H_

#ifndef LSCHED_NN_AUTOGRAD_H_
#define LSCHED_NN_AUTOGRAD_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "nn/params.h"
#include "nn/tensor.h"

namespace lsched {

class Tape;

/// Lightweight handle to a node on a Tape. Copyable; valid while the Tape
/// lives.
class Var {
 public:
  Var() = default;
  Var(Tape* tape, int id) : tape_(tape), id_(id) {}

  bool valid() const { return tape_ != nullptr && id_ >= 0; }
  int id() const { return id_; }
  Tape* tape() const { return tape_; }

  const Matrix& value() const;
  int rows() const { return value().rows(); }
  int cols() const { return value().cols(); }

 private:
  Tape* tape_ = nullptr;
  int id_ = -1;
};

/// Dynamic reverse-mode autodiff tape. A fresh Tape is built per forward
/// pass (per scheduling decision during training); Backward() accumulates
/// gradients of a scalar output into the tape nodes and, for Leaf(Param*)
/// nodes, into the ParameterStore's grad buffers.
///
/// Broadcasting: binary elementwise ops (Add/Mul) accept a right operand
/// that is (1 x d) against (n x d), or (1 x 1) against anything; the
/// gradient is sum-reduced accordingly.
class Tape {
 public:
  Tape();
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  /// Process-wide count of Tape constructions. The serving fast path must
  /// never build a tape; tests assert this stays flat across an
  /// inference-only episode (also exported as the "nn.tape_constructions"
  /// gauge when observability is on).
  static int64_t num_constructed();

  /// --- graph inputs -----------------------------------------------------
  Var Constant(Matrix value);                 ///< no gradient tracked
  Var Leaf(Param* param);                     ///< parameter leaf

  /// --- elementwise / linear algebra --------------------------------------
  Var MatMul(Var a, Var b);
  Var Add(Var a, Var b);        ///< supports (n x d)+(1 x d), +(1 x 1)
  Var Sub(Var a, Var b);
  Var Mul(Var a, Var b);        ///< Hadamard; same broadcasting as Add
  Var Scale(Var a, double c);
  Var AddConst(Var a, double c);

  /// --- nonlinearities -----------------------------------------------------
  Var Relu(Var a);
  Var Exp(Var a);
  Var LeakyRelu(Var a, double alpha = 0.2);
  Var Tanh(Var a);
  Var Sigmoid(Var a);

  /// --- shape ops ----------------------------------------------------------
  Var ConcatCols(const std::vector<Var>& parts);  ///< equal row counts
  Var ConcatRows(const std::vector<Var>& parts);  ///< equal col counts
  Var SliceRow(Var a, int row);                   ///< (n x d) -> (1 x d)
  Var SumAll(Var a);                              ///< -> (1 x 1)
  Var MeanRows(Var a);                            ///< (n x d) -> (1 x d)
  Var SumRows(Var a);                             ///< (n x d) -> (1 x d)

  /// --- softmax / losses ----------------------------------------------------
  /// Log-softmax along the single row of a (1 x n) input.
  Var LogSoftmaxRow(Var a);
  /// Extracts column j of a (1 x n) value as (1 x 1).
  Var PickCol(Var a, int j);
  /// Dot product of two (1 x d) rows -> (1 x 1).
  Var DotRows(Var a, Var b);

  /// Runs backprop from scalar (1 x 1) node `output`, seeding with `seed`.
  /// Accumulates parameter gradients into their ParameterStore entries.
  void Backward(Var output, double seed = 1.0);

  const Matrix& value(int id) const { return nodes_[id].value; }
  const Matrix& grad(int id) const { return nodes_[id].grad; }

  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    Matrix value;
    Matrix grad;
    std::function<void(Tape*)> backward;  ///< may be empty (constants)
    Param* param = nullptr;
  };

  int NewNode(Matrix value);
  Matrix& grad_ref(int id) { return nodes_[id].grad; }

  /// Accumulates `delta` (shaped like the op output) into `target` grad of
  /// shape `shape`, sum-reducing when `target` was broadcast.
  static void AccumulateWithBroadcast(Matrix* target_grad,
                                      const Matrix& delta);

  std::vector<Node> nodes_;
};

}  // namespace lsched

#endif  // LSCHED_NN_AUTOGRAD_H_

#ifndef LSCHED_NN_PARAMS_H_
#define LSCHED_NN_PARAMS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "util/serialization.h"
#include "util/status.h"

namespace lsched {

/// One trainable tensor with its accumulated gradient.
struct Param {
  std::string name;
  Matrix value;
  Matrix grad;
  /// Frozen parameters still propagate gradients to their inputs but are
  /// skipped by the optimizer — the mechanism behind LSched's transfer
  /// learning (paper §6: freeze convolution/hidden layers, retrain the
  /// layers adjacent to input and output).
  bool trainable = true;
};

/// Owns all parameters of a model. Names are hierarchical
/// ("encoder/tcn0/w_p") so layer groups can be frozen by prefix.
class ParameterStore {
 public:
  /// Creates a Xavier-initialized parameter. Name must be unique.
  Param* Create(const std::string& name, int rows, int cols, Rng* rng);

  /// Creates a zero-initialized parameter (biases).
  Param* CreateZero(const std::string& name, int rows, int cols);

  Param* Find(const std::string& name);

  std::vector<Param*> All();

  /// Zeroes every gradient (call before accumulating an episode's loss).
  void ZeroGrads();

  /// Marks all parameters whose name starts with `prefix` (non-)trainable.
  /// Returns how many matched.
  int SetTrainableByPrefix(const std::string& prefix, bool trainable);

  /// Global L2 norm of all trainable gradients (for clipping).
  double GradNorm() const;
  /// Scales trainable grads so the global norm is at most `max_norm`.
  void ClipGradNorm(double max_norm);

  /// Model checkpoint I/O. Load requires identical names and shapes.
  void Serialize(BinaryWriter* writer) const;
  Status Deserialize(BinaryReader* reader);

  /// Copies values (not grads) from `other` for all same-named,
  /// same-shaped parameters; returns the number copied. This is the
  /// transfer-learning warm start.
  int CopyValuesFrom(const ParameterStore& other);

  size_t size() const { return params_.size(); }
  /// Total number of scalar weights.
  size_t NumWeights() const;

  /// Monotonic counter of bulk value mutations (optimizer steps, checkpoint
  /// loads, value copies). Serving-side encoding caches key on this: a
  /// changed epoch means every cached forward-pass result is stale.
  uint64_t value_epoch() const { return value_epoch_; }
  /// Called by every code path that rewrites parameter *values*.
  void BumpValueEpoch() { ++value_epoch_; }

 private:
  std::vector<std::unique_ptr<Param>> params_;
  std::map<std::string, Param*> by_name_;
  uint64_t value_epoch_ = 0;
};

}  // namespace lsched

#endif  // LSCHED_NN_PARAMS_H_

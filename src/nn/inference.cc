#include "nn/inference.h"

#include <cmath>

#include "nn/gemm.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace lsched {

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  GemmBackend::Global().MatMulInto(a, b, out);
}

void AddRowBroadcastInPlace(Matrix* m, const Matrix& row) {
  LSCHED_CHECK(row.rows() == 1 && row.cols() == m->cols());
  for (int r = 0; r < m->rows(); ++r) {
    double* mrow = m->data() + static_cast<size_t>(r) * m->cols();
    const double* b = row.data();
    for (int c = 0; c < m->cols(); ++c) mrow[c] += b[c];
  }
}

void ReluInPlace(Matrix* m) {
  for (double& v : m->raw()) v = v > 0.0 ? v : 0.0;
}

void LeakyReluInPlace(Matrix* m, double alpha) {
  for (double& v : m->raw()) v = v > 0.0 ? v : alpha * v;
}

void TanhInPlace(Matrix* m) {
  for (double& v : m->raw()) v = std::tanh(v);
}

void ExpInPlace(Matrix* m) {
  for (double& v : m->raw()) v = std::exp(v);
}

void ActivateInPlace(Matrix* m, Activation act) {
  switch (act) {
    case Activation::kRelu:
      ReluInPlace(m);
      return;
    case Activation::kLeakyRelu:
      LeakyReluInPlace(m);
      return;
    case Activation::kTanh:
      TanhInPlace(m);
      return;
    case Activation::kNone:
      return;
  }
}

void LinearForwardInto(const Linear& layer, const Matrix& x, Matrix* out) {
  MatMulInto(x, layer.weight()->value, out);
  AddRowBroadcastInPlace(out, layer.bias()->value);
}

Matrix* MlpForward(const Mlp& mlp, const Matrix& x, ScratchArena* arena) {
  const std::vector<Linear>& layers = mlp.layers();
  LSCHED_CHECK(!layers.empty());
  const Matrix* h = &x;
  Matrix* out = nullptr;
  for (size_t i = 0; i < layers.size(); ++i) {
    out = arena->Alloc(h->rows(), layers[i].out_dim());
    LinearForwardInto(layers[i], *h, out);
    if (i + 1 < layers.size()) {
      ActivateInPlace(out, mlp.hidden_activation());
    }
    h = out;
  }
  return out;
}

void LogSoftmaxRowsInPlace(Matrix* m) {
  for (int r = 0; r < m->rows(); ++r) {
    double* row = m->data() + static_cast<size_t>(r) * m->cols();
    const double lse = LogSumExp(row, static_cast<size_t>(m->cols()));
    for (int c = 0; c < m->cols(); ++c) row[c] -= lse;
  }
}

}  // namespace lsched

#ifndef LSCHED_NN_GEMM_H_
#define LSCHED_NN_GEMM_H_

#include <atomic>
#include <string>

#include "nn/tensor.h"

namespace lsched {

/// GEMM kernel selection. All nn matrix products — the autograd tape, the
/// tape-free serving fast path, and training — route through GemmBackend,
/// so switching kernels can never make serving diverge from training.
///
///  - kNaive:   the original skip-zero i-k-j triple loop (reference).
///  - kBlocked: k-panel + 4-row register blocking over the same contiguous
///              row-major panels; each B-row load is reused across four
///              accumulator rows and the dense inner j-loop auto-vectorizes
///              over the 64-byte-aligned storage. Accumulation over k stays
///              ascending per output element, so results match kNaive to
///              well under 1e-9 (bit-identical for finite inputs except
///              ±0.0 edge cases the naive kernel's zero-skip produces).
enum class GemmKind {
  kNaive,
  kBlocked,
};

const char* GemmKindName(GemmKind kind);
bool ParseGemmKind(const std::string& name, GemmKind* out);

/// Reads LSCHED_GEMM (naive|blocked); returns `fallback` when unset or
/// unparseable.
GemmKind GemmKindFromEnv(GemmKind fallback);

/// out = a * b with the naive reference kernel.
void MatMulNaiveInto(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b with the cache-blocked kernel.
void MatMulBlockedInto(const Matrix& a, const Matrix& b, Matrix* out);

/// Process-wide GEMM backend. The kind is resolved once at first use from
/// LSCHED_GEMM (default: kBlocked, the fastest); tests and benches may
/// override it at runtime via set_kind().
class GemmBackend {
 public:
  static GemmBackend& Global();

  GemmKind kind() const { return kind_.load(std::memory_order_relaxed); }
  void set_kind(GemmKind kind) {
    kind_.store(kind, std::memory_order_relaxed);
  }

  /// out = a * b (shapes checked; out resized and overwritten).
  void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) const;

  /// Convenience value-returning product.
  Matrix MatMul(const Matrix& a, const Matrix& b) const {
    Matrix out;
    MatMulInto(a, b, &out);
    return out;
  }

 private:
  explicit GemmBackend(GemmKind kind) : kind_(kind) {}

  std::atomic<GemmKind> kind_;
};

/// RAII kind override for tests: restores the previous global kind on exit.
class ScopedGemmKind {
 public:
  explicit ScopedGemmKind(GemmKind kind)
      : prev_(GemmBackend::Global().kind()) {
    GemmBackend::Global().set_kind(kind);
  }
  ~ScopedGemmKind() { GemmBackend::Global().set_kind(prev_); }

  ScopedGemmKind(const ScopedGemmKind&) = delete;
  ScopedGemmKind& operator=(const ScopedGemmKind&) = delete;

 private:
  GemmKind prev_;
};

}  // namespace lsched

#endif  // LSCHED_NN_GEMM_H_

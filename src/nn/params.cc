#include "nn/params.h"

#include <cmath>

#include "util/logging.h"

namespace lsched {

Param* ParameterStore::Create(const std::string& name, int rows, int cols,
                              Rng* rng) {
  LSCHED_CHECK(by_name_.count(name) == 0) << "duplicate param: " << name;
  auto p = std::make_unique<Param>();
  p->name = name;
  p->value = Matrix::Xavier(rows, cols, rng);
  p->grad = Matrix(rows, cols, 0.0);
  Param* raw = p.get();
  by_name_[name] = raw;
  params_.push_back(std::move(p));
  return raw;
}

Param* ParameterStore::CreateZero(const std::string& name, int rows,
                                  int cols) {
  LSCHED_CHECK(by_name_.count(name) == 0) << "duplicate param: " << name;
  auto p = std::make_unique<Param>();
  p->name = name;
  p->value = Matrix(rows, cols, 0.0);
  p->grad = Matrix(rows, cols, 0.0);
  Param* raw = p.get();
  by_name_[name] = raw;
  params_.push_back(std::move(p));
  return raw;
}

Param* ParameterStore::Find(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

std::vector<Param*> ParameterStore::All() {
  std::vector<Param*> out;
  out.reserve(params_.size());
  for (auto& p : params_) out.push_back(p.get());
  return out;
}

void ParameterStore::ZeroGrads() {
  for (auto& p : params_) p->grad.Zero();
}

int ParameterStore::SetTrainableByPrefix(const std::string& prefix,
                                         bool trainable) {
  int count = 0;
  for (auto& p : params_) {
    if (p->name.rfind(prefix, 0) == 0) {
      p->trainable = trainable;
      ++count;
    }
  }
  return count;
}

double ParameterStore::GradNorm() const {
  double sum = 0.0;
  for (const auto& p : params_) {
    if (!p->trainable) continue;
    for (double g : p->grad.raw()) sum += g * g;
  }
  return std::sqrt(sum);
}

void ParameterStore::ClipGradNorm(double max_norm) {
  const double norm = GradNorm();
  if (norm <= max_norm || norm == 0.0) return;
  const double scale = max_norm / norm;
  for (auto& p : params_) {
    if (!p->trainable) continue;
    for (double& g : p->grad.raw()) g *= scale;
  }
}

void ParameterStore::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(params_.size());
  for (const auto& p : params_) {
    writer->WriteString(p->name);
    writer->WriteU32(static_cast<uint32_t>(p->value.rows()));
    writer->WriteU32(static_cast<uint32_t>(p->value.cols()));
    writer->WriteDoubles(p->value.data(), p->value.size());
  }
}

Status ParameterStore::Deserialize(BinaryReader* reader) {
  BumpValueEpoch();
  LSCHED_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  for (uint64_t i = 0; i < n; ++i) {
    LSCHED_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
    LSCHED_ASSIGN_OR_RETURN(uint32_t rows, reader->ReadU32());
    LSCHED_ASSIGN_OR_RETURN(uint32_t cols, reader->ReadU32());
    LSCHED_ASSIGN_OR_RETURN(std::vector<double> data,
                            reader->ReadDoubleVector());
    Param* p = Find(name);
    if (p == nullptr) {
      return Status::NotFound("checkpoint param not in model: " + name);
    }
    if (p->value.rows() != static_cast<int>(rows) ||
        p->value.cols() != static_cast<int>(cols) ||
        data.size() != p->value.size()) {
      return Status::InvalidArgument("shape mismatch for param: " + name);
    }
    p->value.raw().assign(data.begin(), data.end());
  }
  return Status::OK();
}

int ParameterStore::CopyValuesFrom(const ParameterStore& other) {
  BumpValueEpoch();
  int copied = 0;
  for (const auto& src : other.params_) {
    Param* dst = Find(src->name);
    if (dst != nullptr && dst->value.SameShape(src->value)) {
      dst->value = src->value;
      ++copied;
    }
  }
  return copied;
}

size_t ParameterStore::NumWeights() const {
  size_t n = 0;
  for (const auto& p : params_) n += p->value.size();
  return n;
}

}  // namespace lsched

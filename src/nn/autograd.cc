#include "nn/autograd.h"

#include <atomic>
#include <cmath>

#include "nn/gemm.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace lsched {

namespace {
std::atomic<int64_t> g_tapes_constructed{0};
}  // namespace

Tape::Tape() {
  const int64_t n =
      g_tapes_constructed.fetch_add(1, std::memory_order_relaxed) + 1;
  if (obs::Enabled()) {
    // Cached once: registry lookups are mutex-guarded.
    static obs::Gauge* gauge =
        obs::MetricsRegistry::Global().GetGauge("nn.tape_constructions");
    gauge->Set(static_cast<double>(n));
  }
}

int64_t Tape::num_constructed() {
  return g_tapes_constructed.load(std::memory_order_relaxed);
}

const Matrix& Var::value() const { return tape_->value(id_); }

int Tape::NewNode(Matrix value) {
  Node n;
  n.grad = Matrix(value.rows(), value.cols(), 0.0);
  n.value = std::move(value);
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

void Tape::AccumulateWithBroadcast(Matrix* target_grad, const Matrix& delta) {
  Matrix& t = *target_grad;
  if (t.SameShape(delta)) {
    t.AddInPlace(delta);
    return;
  }
  if (t.rows() == 1 && t.cols() == 1) {
    double s = 0.0;
    for (double v : delta.raw()) s += v;
    t.at(0, 0) += s;
    return;
  }
  if (t.rows() == 1 && t.cols() == delta.cols()) {
    for (int r = 0; r < delta.rows(); ++r) {
      for (int c = 0; c < delta.cols(); ++c) t.at(0, c) += delta.at(r, c);
    }
    return;
  }
  LSCHED_CHECK(false) << "incompatible broadcast grad shapes";
}

namespace {
/// Expands broadcasting: returns value of `m` at (r, c) treating (1 x d)
/// and (1 x 1) shapes as broadcast against an (n x d) partner.
inline double BroadcastAt(const Matrix& m, int r, int c) {
  const int rr = m.rows() == 1 ? 0 : r;
  const int cc = m.cols() == 1 ? 0 : c;
  return m.at(rr, cc);
}

inline bool BroadcastCompatible(const Matrix& a, const Matrix& b) {
  if (a.SameShape(b)) return true;
  if (b.rows() == 1 && b.cols() == 1) return true;
  if (b.rows() == 1 && b.cols() == a.cols()) return true;
  return false;
}
}  // namespace

Var Tape::Constant(Matrix value) { return Var(this, NewNode(std::move(value))); }

Var Tape::Leaf(Param* param) {
  const int id = NewNode(param->value);
  nodes_[id].param = param;
  nodes_[id].backward = [id](Tape* t) {
    // Frozen params accumulate too; the optimizer is what skips them.
    Param* p = t->nodes_[id].param;
    p->grad.AddInPlace(t->nodes_[id].grad);
  };
  return Var(this, id);
}

Var Tape::MatMul(Var a, Var b) {
  // Forward and both backward products go through the process-wide
  // GemmBackend, same as the tape-free serving path, so serving scores
  // match training bit-for-bit under any backend.
  GemmBackend& gemm = GemmBackend::Global();
  const int id = NewNode(gemm.MatMul(a.value(), b.value()));
  const int ia = a.id(), ib = b.id();
  nodes_[id].backward = [id, ia, ib](Tape* t) {
    GemmBackend& g_gemm = GemmBackend::Global();
    const Matrix& g = t->nodes_[id].grad;
    const Matrix& av = t->nodes_[ia].value;
    const Matrix& bv = t->nodes_[ib].value;
    t->nodes_[ia].grad.AddInPlace(g_gemm.MatMul(g, bv.Transposed()));
    t->nodes_[ib].grad.AddInPlace(g_gemm.MatMul(av.Transposed(), g));
  };
  return Var(this, id);
}

Var Tape::Add(Var a, Var b) {
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  LSCHED_CHECK(BroadcastCompatible(av, bv)) << "Add shape mismatch";
  Matrix out(av.rows(), av.cols());
  for (int r = 0; r < av.rows(); ++r) {
    for (int c = 0; c < av.cols(); ++c) {
      out.at(r, c) = av.at(r, c) + BroadcastAt(bv, r, c);
    }
  }
  const int id = NewNode(std::move(out));
  const int ia = a.id(), ib = b.id();
  nodes_[id].backward = [id, ia, ib](Tape* t) {
    const Matrix& g = t->nodes_[id].grad;
    AccumulateWithBroadcast(&t->nodes_[ia].grad, g);
    AccumulateWithBroadcast(&t->nodes_[ib].grad, g);
  };
  return Var(this, id);
}

Var Tape::Sub(Var a, Var b) { return Add(a, Scale(b, -1.0)); }

Var Tape::Mul(Var a, Var b) {
  const Matrix& av = a.value();
  const Matrix& bv = b.value();
  LSCHED_CHECK(BroadcastCompatible(av, bv)) << "Mul shape mismatch";
  Matrix out(av.rows(), av.cols());
  for (int r = 0; r < av.rows(); ++r) {
    for (int c = 0; c < av.cols(); ++c) {
      out.at(r, c) = av.at(r, c) * BroadcastAt(bv, r, c);
    }
  }
  const int id = NewNode(std::move(out));
  const int ia = a.id(), ib = b.id();
  nodes_[id].backward = [id, ia, ib](Tape* t) {
    const Matrix& g = t->nodes_[id].grad;
    const Matrix& av2 = t->nodes_[ia].value;
    const Matrix& bv2 = t->nodes_[ib].value;
    Matrix da(av2.rows(), av2.cols());
    Matrix db_full(av2.rows(), av2.cols());
    for (int r = 0; r < av2.rows(); ++r) {
      for (int c = 0; c < av2.cols(); ++c) {
        da.at(r, c) = g.at(r, c) * BroadcastAt(bv2, r, c);
        db_full.at(r, c) = g.at(r, c) * av2.at(r, c);
      }
    }
    t->nodes_[ia].grad.AddInPlace(da);
    AccumulateWithBroadcast(&t->nodes_[ib].grad, db_full);
  };
  return Var(this, id);
}

Var Tape::Scale(Var a, double c) {
  Matrix out = a.value();
  for (double& v : out.raw()) v *= c;
  const int id = NewNode(std::move(out));
  const int ia = a.id();
  nodes_[id].backward = [id, ia, c](Tape* t) {
    t->nodes_[ia].grad.AddScaled(t->nodes_[id].grad, c);
  };
  return Var(this, id);
}

Var Tape::AddConst(Var a, double c) {
  Matrix out = a.value();
  for (double& v : out.raw()) v += c;
  const int id = NewNode(std::move(out));
  const int ia = a.id();
  nodes_[id].backward = [id, ia](Tape* t) {
    t->nodes_[ia].grad.AddInPlace(t->nodes_[id].grad);
  };
  return Var(this, id);
}

Var Tape::Relu(Var a) {
  Matrix out = a.value();
  for (double& v : out.raw()) v = v > 0.0 ? v : 0.0;
  const int id = NewNode(std::move(out));
  const int ia = a.id();
  nodes_[id].backward = [id, ia](Tape* t) {
    const Matrix& g = t->nodes_[id].grad;
    const Matrix& av = t->nodes_[ia].value;
    Matrix d(g.rows(), g.cols());
    for (size_t i = 0; i < g.raw().size(); ++i) {
      d.raw()[i] = av.raw()[i] > 0.0 ? g.raw()[i] : 0.0;
    }
    t->nodes_[ia].grad.AddInPlace(d);
  };
  return Var(this, id);
}

Var Tape::Exp(Var a) {
  Matrix out = a.value();
  for (double& v : out.raw()) v = std::exp(v);
  const int id = NewNode(std::move(out));
  const int ia = a.id();
  nodes_[id].backward = [id, ia](Tape* t) {
    const Matrix& g = t->nodes_[id].grad;
    const Matrix& ov = t->nodes_[id].value;
    Matrix d(g.rows(), g.cols());
    for (size_t i = 0; i < g.raw().size(); ++i) {
      d.raw()[i] = g.raw()[i] * ov.raw()[i];
    }
    t->nodes_[ia].grad.AddInPlace(d);
  };
  return Var(this, id);
}

Var Tape::LeakyRelu(Var a, double alpha) {
  Matrix out = a.value();
  for (double& v : out.raw()) v = v > 0.0 ? v : alpha * v;
  const int id = NewNode(std::move(out));
  const int ia = a.id();
  nodes_[id].backward = [id, ia, alpha](Tape* t) {
    const Matrix& g = t->nodes_[id].grad;
    const Matrix& av = t->nodes_[ia].value;
    Matrix d(g.rows(), g.cols());
    for (size_t i = 0; i < g.raw().size(); ++i) {
      d.raw()[i] = av.raw()[i] > 0.0 ? g.raw()[i] : alpha * g.raw()[i];
    }
    t->nodes_[ia].grad.AddInPlace(d);
  };
  return Var(this, id);
}

Var Tape::Tanh(Var a) {
  Matrix out = a.value();
  for (double& v : out.raw()) v = std::tanh(v);
  const int id = NewNode(std::move(out));
  const int ia = a.id();
  nodes_[id].backward = [id, ia](Tape* t) {
    const Matrix& g = t->nodes_[id].grad;
    const Matrix& ov = t->nodes_[id].value;
    Matrix d(g.rows(), g.cols());
    for (size_t i = 0; i < g.raw().size(); ++i) {
      d.raw()[i] = g.raw()[i] * (1.0 - ov.raw()[i] * ov.raw()[i]);
    }
    t->nodes_[ia].grad.AddInPlace(d);
  };
  return Var(this, id);
}

Var Tape::Sigmoid(Var a) {
  Matrix out = a.value();
  for (double& v : out.raw()) v = 1.0 / (1.0 + std::exp(-v));
  const int id = NewNode(std::move(out));
  const int ia = a.id();
  nodes_[id].backward = [id, ia](Tape* t) {
    const Matrix& g = t->nodes_[id].grad;
    const Matrix& ov = t->nodes_[id].value;
    Matrix d(g.rows(), g.cols());
    for (size_t i = 0; i < g.raw().size(); ++i) {
      d.raw()[i] = g.raw()[i] * ov.raw()[i] * (1.0 - ov.raw()[i]);
    }
    t->nodes_[ia].grad.AddInPlace(d);
  };
  return Var(this, id);
}

Var Tape::ConcatCols(const std::vector<Var>& parts) {
  LSCHED_CHECK(!parts.empty());
  const int rows = parts[0].value().rows();
  int cols = 0;
  for (const Var& p : parts) {
    LSCHED_CHECK(p.value().rows() == rows) << "ConcatCols row mismatch";
    cols += p.value().cols();
  }
  Matrix out(rows, cols);
  int offset = 0;
  for (const Var& p : parts) {
    const Matrix& v = p.value();
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < v.cols(); ++c) out.at(r, offset + c) = v.at(r, c);
    }
    offset += v.cols();
  }
  const int id = NewNode(std::move(out));
  std::vector<int> ids;
  ids.reserve(parts.size());
  for (const Var& p : parts) ids.push_back(p.id());
  nodes_[id].backward = [id, ids](Tape* t) {
    const Matrix& g = t->nodes_[id].grad;
    int off = 0;
    for (int pid : ids) {
      Matrix& pg = t->nodes_[pid].grad;
      for (int r = 0; r < pg.rows(); ++r) {
        for (int c = 0; c < pg.cols(); ++c) pg.at(r, c) += g.at(r, off + c);
      }
      off += pg.cols();
    }
  };
  return Var(this, id);
}

Var Tape::ConcatRows(const std::vector<Var>& parts) {
  LSCHED_CHECK(!parts.empty());
  const int cols = parts[0].value().cols();
  int rows = 0;
  for (const Var& p : parts) {
    LSCHED_CHECK(p.value().cols() == cols) << "ConcatRows col mismatch";
    rows += p.value().rows();
  }
  Matrix out(rows, cols);
  int offset = 0;
  for (const Var& p : parts) {
    const Matrix& v = p.value();
    for (int r = 0; r < v.rows(); ++r) {
      for (int c = 0; c < cols; ++c) out.at(offset + r, c) = v.at(r, c);
    }
    offset += v.rows();
  }
  const int id = NewNode(std::move(out));
  std::vector<int> ids;
  ids.reserve(parts.size());
  for (const Var& p : parts) ids.push_back(p.id());
  nodes_[id].backward = [id, ids](Tape* t) {
    const Matrix& g = t->nodes_[id].grad;
    int off = 0;
    for (int pid : ids) {
      Matrix& pg = t->nodes_[pid].grad;
      for (int r = 0; r < pg.rows(); ++r) {
        for (int c = 0; c < pg.cols(); ++c) pg.at(r, c) += g.at(off + r, c);
      }
      off += pg.rows();
    }
  };
  return Var(this, id);
}

Var Tape::SliceRow(Var a, int row) {
  const Matrix& av = a.value();
  Matrix out(1, av.cols());
  for (int c = 0; c < av.cols(); ++c) out.at(0, c) = av.at(row, c);
  const int id = NewNode(std::move(out));
  const int ia = a.id();
  nodes_[id].backward = [id, ia, row](Tape* t) {
    const Matrix& g = t->nodes_[id].grad;
    Matrix& pg = t->nodes_[ia].grad;
    for (int c = 0; c < g.cols(); ++c) pg.at(row, c) += g.at(0, c);
  };
  return Var(this, id);
}

Var Tape::SumAll(Var a) {
  double s = 0.0;
  for (double v : a.value().raw()) s += v;
  Matrix out(1, 1);
  out.at(0, 0) = s;
  const int id = NewNode(std::move(out));
  const int ia = a.id();
  nodes_[id].backward = [id, ia](Tape* t) {
    const double g = t->nodes_[id].grad.at(0, 0);
    Matrix& pg = t->nodes_[ia].grad;
    for (double& v : pg.raw()) v += g;
  };
  return Var(this, id);
}

Var Tape::SumRows(Var a) {
  const Matrix& av = a.value();
  Matrix out(1, av.cols());
  for (int r = 0; r < av.rows(); ++r) {
    for (int c = 0; c < av.cols(); ++c) out.at(0, c) += av.at(r, c);
  }
  const int id = NewNode(std::move(out));
  const int ia = a.id();
  nodes_[id].backward = [id, ia](Tape* t) {
    const Matrix& g = t->nodes_[id].grad;
    Matrix& pg = t->nodes_[ia].grad;
    for (int r = 0; r < pg.rows(); ++r) {
      for (int c = 0; c < pg.cols(); ++c) pg.at(r, c) += g.at(0, c);
    }
  };
  return Var(this, id);
}

Var Tape::MeanRows(Var a) {
  const int n = a.value().rows();
  return Scale(SumRows(a), 1.0 / static_cast<double>(n));
}

Var Tape::LogSoftmaxRow(Var a) {
  const Matrix& av = a.value();
  LSCHED_CHECK(av.rows() == 1) << "LogSoftmaxRow expects a row vector";
  const double lse = LogSumExp(av.data(), av.size());
  Matrix out = av;
  for (double& v : out.raw()) v -= lse;
  const int id = NewNode(std::move(out));
  const int ia = a.id();
  nodes_[id].backward = [id, ia](Tape* t) {
    const Matrix& g = t->nodes_[id].grad;
    const Matrix& ov = t->nodes_[id].value;  // log-probs
    double gsum = 0.0;
    for (double v : g.raw()) gsum += v;
    Matrix d(1, g.cols());
    for (int c = 0; c < g.cols(); ++c) {
      d.at(0, c) = g.at(0, c) - std::exp(ov.at(0, c)) * gsum;
    }
    t->nodes_[ia].grad.AddInPlace(d);
  };
  return Var(this, id);
}

Var Tape::PickCol(Var a, int j) {
  const Matrix& av = a.value();
  LSCHED_CHECK(av.rows() == 1 && j >= 0 && j < av.cols());
  Matrix out(1, 1);
  out.at(0, 0) = av.at(0, j);
  const int id = NewNode(std::move(out));
  const int ia = a.id();
  nodes_[id].backward = [id, ia, j](Tape* t) {
    t->nodes_[ia].grad.at(0, j) += t->nodes_[id].grad.at(0, 0);
  };
  return Var(this, id);
}

Var Tape::DotRows(Var a, Var b) { return SumAll(Mul(a, b)); }

void Tape::Backward(Var output, double seed) {
  LSCHED_CHECK(output.tape() == this);
  const Matrix& out = output.value();
  LSCHED_CHECK(out.rows() == 1 && out.cols() == 1)
      << "Backward expects a scalar output";
  nodes_[output.id()].grad.at(0, 0) += seed;
  for (int i = output.id(); i >= 0; --i) {
    if (nodes_[i].backward) nodes_[i].backward(this);
  }
}

}  // namespace lsched

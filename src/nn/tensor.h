#ifndef LSCHED_NN_TENSOR_H_
#define LSCHED_NN_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "util/rng.h"

namespace lsched {

/// STL allocator that hands out 64-byte-aligned storage (one cache line;
/// also the widest SIMD vector the toolchain may emit). Matrix keeps its
/// dense row-major layout — only the base pointer alignment changes — so
/// indexing, raw() iteration order, and the checkpoint byte format are
/// unchanged.
///
/// Alignment is done by over-allocating through plain `operator new` and
/// stashing the raw pointer just below the returned block, NOT via the
/// align_val_t overload: glibc's aligned path bypasses the thread-local
/// fastbin cache and costs ~3x per call, which the encoder's thousands of
/// small per-node matrices turn into a double-digit encode regression.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::size_t kAlignment = 64;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* raw = ::operator new(n * sizeof(T) + kAlignment + sizeof(void*));
    auto addr = reinterpret_cast<std::uintptr_t>(raw) + sizeof(void*);
    addr = (addr + kAlignment - 1) & ~(kAlignment - 1);
    void* aligned = reinterpret_cast<void*>(addr);
    static_cast<void**>(aligned)[-1] = raw;
    return static_cast<T*>(aligned);
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(static_cast<void**>(static_cast<void*>(p))[-1]);
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U>;
  };
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// 64-byte-aligned double storage backing Matrix.
using AlignedVector = std::vector<double, AlignedAllocator<double>>;

/// Dense row-major matrix of doubles. The only tensor rank the LSched
/// networks need: node/edge embeddings are row vectors (1 x d), batched
/// node sets are (n x d), weights are (in x out).
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double init = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), init) {}

  static Matrix FromRow(const std::vector<double>& row);

  /// Xavier/Glorot-style initialization: N(0, sqrt(2/(rows+cols))).
  static Matrix Xavier(int rows, int cols, Rng* rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& at(int r, int c) { return data_[idx(r, c)]; }
  double at(int r, int c) const { return data_[idx(r, c)]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  AlignedVector& raw() { return data_; }
  const AlignedVector& raw() const { return data_; }

  void Fill(double v);
  void Zero() { Fill(0.0); }

  /// Reshapes to (rows x cols) and zero-fills, reusing the allocation when
  /// capacity suffices (scratch-arena reuse on the inference fast path).
  void Resize(int rows, int cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0);
  }

  /// this += other (same shape required).
  void AddInPlace(const Matrix& other);
  /// this += scale * other.
  void AddScaled(const Matrix& other, double scale);

  Matrix Transposed() const;

  /// Matrix product (rows x k) * (k x cols). Reference naive kernel kept
  /// for tests; hot paths (Tape + serving) route through nn/gemm.h's
  /// GemmBackend instead.
  static Matrix MatMul(const Matrix& a, const Matrix& b);

  bool SameShape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  size_t idx(int r, int c) const {
    return static_cast<size_t>(r) * static_cast<size_t>(cols_) +
           static_cast<size_t>(c);
  }

  int rows_ = 0;
  int cols_ = 0;
  AlignedVector data_;
};

}  // namespace lsched

#endif  // LSCHED_NN_TENSOR_H_

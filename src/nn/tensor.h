#ifndef LSCHED_NN_TENSOR_H_
#define LSCHED_NN_TENSOR_H_

#include <vector>

#include "util/rng.h"

namespace lsched {

/// Dense row-major matrix of doubles. The only tensor rank the LSched
/// networks need: node/edge embeddings are row vectors (1 x d), batched
/// node sets are (n x d), weights are (in x out).
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double init = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), init) {}

  static Matrix FromRow(const std::vector<double>& row);

  /// Xavier/Glorot-style initialization: N(0, sqrt(2/(rows+cols))).
  static Matrix Xavier(int rows, int cols, Rng* rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& at(int r, int c) { return data_[idx(r, c)]; }
  double at(int r, int c) const { return data_[idx(r, c)]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& raw() { return data_; }
  const std::vector<double>& raw() const { return data_; }

  void Fill(double v);
  void Zero() { Fill(0.0); }

  /// Reshapes to (rows x cols) and zero-fills, reusing the allocation when
  /// capacity suffices (scratch-arena reuse on the inference fast path).
  void Resize(int rows, int cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0);
  }

  /// this += other (same shape required).
  void AddInPlace(const Matrix& other);
  /// this += scale * other.
  void AddScaled(const Matrix& other, double scale);

  Matrix Transposed() const;

  /// Matrix product (rows x k) * (k x cols).
  static Matrix MatMul(const Matrix& a, const Matrix& b);

  bool SameShape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  size_t idx(int r, int c) const {
    return static_cast<size_t>(r) * static_cast<size_t>(cols_) +
           static_cast<size_t>(c);
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

}  // namespace lsched

#endif  // LSCHED_NN_TENSOR_H_

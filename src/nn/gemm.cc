#include "nn/gemm.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace lsched {

namespace {

// Blocking parameters for MatMulBlockedInto. kKc k-rows of B (times a
// typical n of a few hundred doubles) fit comfortably in L1/L2 so each
// panel of B is streamed once per 4-row group of A; kMr output rows share
// every B-row load through register accumulators.
constexpr int kKc = 128;
constexpr int kMr = 4;

void CheckShapes(const Matrix& a, const Matrix& b) {
  LSCHED_CHECK(a.cols() == b.rows())
      << "matmul shape mismatch: " << a.rows() << "x" << a.cols() << " * "
      << b.rows() << "x" << b.cols();
}

}  // namespace

const char* GemmKindName(GemmKind kind) {
  switch (kind) {
    case GemmKind::kNaive:
      return "naive";
    case GemmKind::kBlocked:
      return "blocked";
  }
  return "unknown";
}

bool ParseGemmKind(const std::string& name, GemmKind* out) {
  if (name == "naive") {
    *out = GemmKind::kNaive;
    return true;
  }
  if (name == "blocked") {
    *out = GemmKind::kBlocked;
    return true;
  }
  return false;
}

GemmKind GemmKindFromEnv(GemmKind fallback) {
  const char* env = std::getenv("LSCHED_GEMM");
  if (env == nullptr) return fallback;
  GemmKind kind;
  if (!ParseGemmKind(env, &kind)) {
    LSCHED_LOG(Warning) << "unrecognized LSCHED_GEMM=" << env << ", using "
                     << GemmKindName(fallback);
    return fallback;
  }
  return kind;
}

void MatMulNaiveInto(const Matrix& a, const Matrix& b, Matrix* out) {
  CheckShapes(a, b);
  out->Resize(a.rows(), b.cols());
  const int n = b.cols();
  for (int i = 0; i < a.rows(); ++i) {
    double* crow = out->data() + static_cast<size_t>(i) * n;
    for (int k = 0; k < a.cols(); ++k) {
      const double av = a.at(i, k);
      if (av == 0.0) continue;
      const double* brow = b.data() + static_cast<size_t>(k) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void MatMulBlockedInto(const Matrix& a, const Matrix& b, Matrix* out) {
  CheckShapes(a, b);
  const int m = a.rows();
  const int kk = a.cols();
  const int n = b.cols();
  out->Resize(m, n);
  double* c = out->data();
  const double* bd = b.data();
  // k-panels ascending, k ascending within a panel: every output element
  // accumulates its k-terms in the same order as the naive kernel.
  for (int k0 = 0; k0 < kk; k0 += kKc) {
    const int k1 = std::min(k0 + kKc, kk);
    int i = 0;
    for (; i + kMr <= m; i += kMr) {
      const double* a0 = a.data() + static_cast<size_t>(i) * kk;
      const double* a1 = a0 + kk;
      const double* a2 = a1 + kk;
      const double* a3 = a2 + kk;
      double* c0 = c + static_cast<size_t>(i) * n;
      double* c1 = c0 + n;
      double* c2 = c1 + n;
      double* c3 = c2 + n;
      for (int k = k0; k < k1; ++k) {
        const double av0 = a0[k];
        const double av1 = a1[k];
        const double av2 = a2[k];
        const double av3 = a3[k];
        const double* brow = bd + static_cast<size_t>(k) * n;
        if (av0 != 0.0 && av1 != 0.0 && av2 != 0.0 && av3 != 0.0) {
          // Dense fast path (embedding/head GEMMs): all four rows share
          // each B-row load through register accumulators.
          for (int j = 0; j < n; ++j) {
            const double bv = brow[j];
            c0[j] += av0 * bv;
            c1[j] += av1 * bv;
            c2[j] += av2 * bv;
            c3[j] += av3 * bv;
          }
        } else {
          // Sparse path: skip zero A entries exactly like the naive
          // kernel (one-hot feature rows are mostly zeros), keeping the
          // results bit-identical between the two kernels.
          if (av0 != 0.0) {
            for (int j = 0; j < n; ++j) c0[j] += av0 * brow[j];
          }
          if (av1 != 0.0) {
            for (int j = 0; j < n; ++j) c1[j] += av1 * brow[j];
          }
          if (av2 != 0.0) {
            for (int j = 0; j < n; ++j) c2[j] += av2 * brow[j];
          }
          if (av3 != 0.0) {
            for (int j = 0; j < n; ++j) c3[j] += av3 * brow[j];
          }
        }
      }
    }
    for (; i < m; ++i) {
      const double* arow = a.data() + static_cast<size_t>(i) * kk;
      double* crow = c + static_cast<size_t>(i) * n;
      for (int k = k0; k < k1; ++k) {
        const double av = arow[k];
        if (av == 0.0) continue;
        const double* brow = bd + static_cast<size_t>(k) * n;
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

GemmBackend& GemmBackend::Global() {
  static GemmBackend backend(GemmKindFromEnv(GemmKind::kBlocked));
  return backend;
}

void GemmBackend::MatMulInto(const Matrix& a, const Matrix& b,
                             Matrix* out) const {
  switch (kind()) {
    case GemmKind::kNaive:
      MatMulNaiveInto(a, b, out);
      return;
    case GemmKind::kBlocked:
      MatMulBlockedInto(a, b, out);
      return;
  }
}

}  // namespace lsched

#ifndef LSCHED_NN_OPTIMIZER_H_
#define LSCHED_NN_OPTIMIZER_H_

#include <map>
#include <vector>

#include "nn/params.h"

namespace lsched {

/// Optimizer interface: applies accumulated gradients to trainable params.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// One update from the currently-accumulated grads (does not zero them).
  virtual void Step(ParameterStore* store) = 0;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0)
      : lr_(lr), momentum_(momentum) {}
  void Step(ParameterStore* store) override;
  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_;
  double momentum_;
  std::map<Param*, Matrix> velocity_;
};

/// Adam (Kingma & Ba). Skips frozen parameters.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void Step(ParameterStore* store) override;
  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  struct Slot {
    Matrix m;
    Matrix v;
  };
  double lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::map<Param*, Slot> slots_;
};

}  // namespace lsched

#endif  // LSCHED_NN_OPTIMIZER_H_

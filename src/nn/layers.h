#ifndef LSCHED_NN_LAYERS_H_
#define LSCHED_NN_LAYERS_H_

#include <string>
#include <vector>

#include "nn/autograd.h"
#include "nn/params.h"

namespace lsched {

/// Affine layer y = x W + b applied to (n x in) inputs.
class Linear {
 public:
  Linear() = default;
  Linear(ParameterStore* store, const std::string& name, int in, int out,
         Rng* rng);

  Var Forward(Tape* tape, Var x) const;

  int in_dim() const { return in_; }
  int out_dim() const { return out_; }

  /// Parameter access for the tape-free serving path (read-only use).
  const Param* weight() const { return w_; }
  const Param* bias() const { return b_; }

 private:
  Param* w_ = nullptr;
  Param* b_ = nullptr;
  int in_ = 0;
  int out_ = 0;
};

/// Activation selector for MLP hidden layers.
enum class Activation { kRelu, kLeakyRelu, kTanh, kNone };

/// Multi-layer perceptron: Linear + activation stacks, final layer linear.
class Mlp {
 public:
  Mlp() = default;
  /// `dims` = {in, h1, ..., out}. Creates dims.size()-1 Linear layers.
  Mlp(ParameterStore* store, const std::string& name,
      const std::vector<int>& dims, Rng* rng,
      Activation hidden_act = Activation::kRelu);

  Var Forward(Tape* tape, Var x) const;

  int in_dim() const { return layers_.empty() ? 0 : layers_.front().in_dim(); }
  int out_dim() const {
    return layers_.empty() ? 0 : layers_.back().out_dim();
  }

  /// Layer access for the tape-free serving path (read-only use).
  const std::vector<Linear>& layers() const { return layers_; }
  Activation hidden_activation() const { return hidden_act_; }

 private:
  std::vector<Linear> layers_;
  Activation hidden_act_ = Activation::kRelu;
};

/// Applies `act` to `x` on `tape`.
Var Activate(Tape* tape, Var x, Activation act);

}  // namespace lsched

#endif  // LSCHED_NN_LAYERS_H_

#ifndef LSCHED_NN_INFERENCE_H_
#define LSCHED_NN_INFERENCE_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "nn/tensor.h"

namespace lsched {

/// Reusable pool of Matrix buffers for the tape-free serving path: one
/// arena per agent, Reset() per decision, Alloc() per intermediate. Alloc
/// reuses the i-th buffer of the previous decision (same network, same
/// shapes → allocation-free steady state). Pointers stay valid until the
/// arena is destroyed.
class ScratchArena {
 public:
  /// Zero-initialized (rows x cols) buffer owned by the arena.
  Matrix* Alloc(int rows, int cols) {
    if (next_ == pool_.size()) {
      pool_.push_back(std::make_unique<Matrix>());
    }
    Matrix* m = pool_[next_++].get();
    m->Resize(rows, cols);
    return m;
  }

  /// Makes every buffer reusable again (values are NOT cleared until the
  /// buffer is re-Alloc'd).
  void Reset() { next_ = 0; }

  size_t capacity() const { return pool_.size(); }

 private:
  std::vector<std::unique_ptr<Matrix>> pool_;
  size_t next_ = 0;
};

/// Inference-only kernels mirroring the Tape ops bit-for-bit (identical
/// loop order and accumulation order), so serving scores match training
/// forward passes exactly. None of these construct Tape nodes or closures.

/// out = a @ b via the process-wide GemmBackend — the same backend the
/// Tape routes through, so serving stays bit-identical to the training
/// forward pass under any backend. Per output element the accumulation
/// order over k is ascending in every backend, so batching rows into one
/// call is bit-identical to per-row calls.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);

/// m[r, :] += row[0, :] for every row (the Linear bias broadcast).
void AddRowBroadcastInPlace(Matrix* m, const Matrix& row);

void ReluInPlace(Matrix* m);
void LeakyReluInPlace(Matrix* m, double alpha = 0.2);
void TanhInPlace(Matrix* m);
void ExpInPlace(Matrix* m);

/// Applies `act` in place (mirrors Activate()).
void ActivateInPlace(Matrix* m, Activation act);

/// out = x @ W + b for a Linear layer (batched over x's rows).
void LinearForwardInto(const Linear& layer, const Matrix& x, Matrix* out);

/// Full Mlp forward (batched over x's rows); intermediates come from
/// `arena`. Returns the arena buffer holding the output.
Matrix* MlpForward(const Mlp& mlp, const Matrix& x, ScratchArena* arena);

/// Row-wise log-softmax in place (each row shifted by its own
/// LogSumExp — identical math to Tape::LogSoftmaxRow per row).
void LogSoftmaxRowsInPlace(Matrix* m);

}  // namespace lsched

#endif  // LSCHED_NN_INFERENCE_H_

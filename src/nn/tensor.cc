#include "nn/tensor.h"

#include <cmath>

#include "util/logging.h"

namespace lsched {

Matrix Matrix::FromRow(const std::vector<double>& row) {
  Matrix m(1, static_cast<int>(row.size()));
  m.data_.assign(row.begin(), row.end());
  return m;
}

Matrix Matrix::Xavier(int rows, int cols, Rng* rng) {
  Matrix m(rows, cols);
  const double scale = std::sqrt(2.0 / static_cast<double>(rows + cols));
  for (double& v : m.data_) v = rng->Normal(0.0, scale);
  return m;
}

void Matrix::Fill(double v) {
  for (double& x : data_) x = v;
}

void Matrix::AddInPlace(const Matrix& other) {
  LSCHED_DCHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, double scale) {
  LSCHED_DCHECK(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  }
  return t;
}

Matrix Matrix::MatMul(const Matrix& a, const Matrix& b) {
  LSCHED_CHECK(a.cols_ == b.rows_)
      << "matmul shape mismatch: " << a.rows_ << "x" << a.cols_ << " * "
      << b.rows_ << "x" << b.cols_;
  Matrix c(a.rows_, b.cols_);
  for (int i = 0; i < a.rows_; ++i) {
    for (int k = 0; k < a.cols_; ++k) {
      const double av = a.at(i, k);
      if (av == 0.0) continue;
      const double* brow = b.data() + static_cast<size_t>(k) * b.cols_;
      double* crow = c.data() + static_cast<size_t>(i) * c.cols_;
      for (int j = 0; j < b.cols_; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

}  // namespace lsched

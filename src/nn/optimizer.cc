#include "nn/optimizer.h"

#include <cmath>

namespace lsched {

void Sgd::Step(ParameterStore* store) {
  store->BumpValueEpoch();
  for (Param* p : store->All()) {
    if (!p->trainable) continue;
    if (momentum_ > 0.0) {
      auto it = velocity_.find(p);
      if (it == velocity_.end()) {
        it = velocity_.emplace(p, Matrix(p->value.rows(), p->value.cols()))
                 .first;
      }
      Matrix& v = it->second;
      for (size_t i = 0; i < v.raw().size(); ++i) {
        v.raw()[i] = momentum_ * v.raw()[i] - lr_ * p->grad.raw()[i];
        p->value.raw()[i] += v.raw()[i];
      }
    } else {
      p->value.AddScaled(p->grad, -lr_);
    }
  }
}

void Adam::Step(ParameterStore* store) {
  store->BumpValueEpoch();
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (Param* p : store->All()) {
    if (!p->trainable) continue;
    auto it = slots_.find(p);
    if (it == slots_.end()) {
      Slot s;
      s.m = Matrix(p->value.rows(), p->value.cols());
      s.v = Matrix(p->value.rows(), p->value.cols());
      it = slots_.emplace(p, std::move(s)).first;
    }
    Slot& s = it->second;
    for (size_t i = 0; i < p->value.raw().size(); ++i) {
      const double g = p->grad.raw()[i];
      s.m.raw()[i] = beta1_ * s.m.raw()[i] + (1.0 - beta1_) * g;
      s.v.raw()[i] = beta2_ * s.v.raw()[i] + (1.0 - beta2_) * g * g;
      const double mhat = s.m.raw()[i] / bc1;
      const double vhat = s.v.raw()[i] / bc2;
      p->value.raw()[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace lsched

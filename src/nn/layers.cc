#include "nn/layers.h"

namespace lsched {

Linear::Linear(ParameterStore* store, const std::string& name, int in,
               int out, Rng* rng)
    : in_(in), out_(out) {
  w_ = store->Create(name + "/w", in, out, rng);
  b_ = store->CreateZero(name + "/b", 1, out);
}

Var Linear::Forward(Tape* tape, Var x) const {
  Var w = tape->Leaf(w_);
  Var b = tape->Leaf(b_);
  return tape->Add(tape->MatMul(x, w), b);
}

Var Activate(Tape* tape, Var x, Activation act) {
  switch (act) {
    case Activation::kRelu:
      return tape->Relu(x);
    case Activation::kLeakyRelu:
      return tape->LeakyRelu(x);
    case Activation::kTanh:
      return tape->Tanh(x);
    case Activation::kNone:
      return x;
  }
  return x;
}

Mlp::Mlp(ParameterStore* store, const std::string& name,
         const std::vector<int>& dims, Rng* rng, Activation hidden_act)
    : hidden_act_(hidden_act) {
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(store, name + "/l" + std::to_string(i), dims[i],
                         dims[i + 1], rng);
  }
}

Var Mlp::Forward(Tape* tape, Var x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(tape, h);
    if (i + 1 < layers_.size()) h = Activate(tape, h, hidden_act_);
  }
  return h;
}

}  // namespace lsched

#include "workload/templates.h"

#include <algorithm>

#include "plan/plan_builder.h"
#include "util/logging.h"

namespace lsched {

namespace {

using ScanSpec = TemplateSpec::ScanSpec;

/// The 22 TPCH template shapes (join partner sets, aggregation, and result
/// ordering approximate the official queries; tables: 0=lineitem 1=orders
/// 2=partsupp 3=part 4=customer 5=supplier 6=nation 7=region).
std::vector<TemplateSpec> TpchTemplates() {
  auto T = [](std::vector<ScanSpec> scans, std::vector<JoinKind> joins,
              bool agg, bool sort, bool topk) {
    TemplateSpec s;
    s.scans = std::move(scans);
    s.joins = std::move(joins);
    s.aggregate = agg;
    s.sort = sort;
    s.topk = topk;
    return s;
  };
  const JoinKind H = JoinKind::kHash;
  const JoinKind I = JoinKind::kIndexNlj;
  const JoinKind M = JoinKind::kMerge;
  std::vector<TemplateSpec> t;
  // Q1: lineitem scan + aggregation + sort.
  t.push_back(T({{0, 0.90, 0.98}}, {}, true, true, false));
  // Q2: part x partsupp x supplier x nation x region, top-k.
  t.push_back(T({{3, 0.02, 0.1}, {2, 0.8, 1.0}, {5, 0.8, 1.0},
                 {6, 0.9, 1.0}, {7, 0.2, 0.2}},
                {H, H, H, H}, false, false, true));
  // Q3: customer x orders x lineitem, agg + top-k.
  t.push_back(T({{0, 0.4, 0.6}, {1, 0.4, 0.6}, {4, 0.15, 0.25}},
                {H, H}, true, false, true));
  // Q4: orders x lineitem (semi), agg + sort.
  t.push_back(T({{0, 0.5, 0.7}, {1, 0.03, 0.05}}, {H}, true, true, false));
  // Q5: 6-way region-bound join, agg + sort.
  t.push_back(T({{0, 0.9, 1.0}, {1, 0.12, 0.18}, {4, 0.9, 1.0},
                 {5, 0.9, 1.0}, {6, 0.9, 1.0}, {7, 0.2, 0.2}},
                {H, H, H, H, H}, true, true, false));
  // Q6: lineitem selective scan, scalar agg.
  t.push_back(T({{0, 0.015, 0.03}}, {}, true, false, false));
  // Q7: supplier x lineitem x orders x customer x nation x nation.
  t.push_back(T({{0, 0.25, 0.35}, {5, 0.05, 0.1}, {1, 0.9, 1.0},
                 {4, 0.05, 0.1}, {6, 0.08, 0.08}, {6, 0.08, 0.08}},
                {H, H, H, H, H}, true, true, false));
  // Q8: 8-way join, agg + sort.
  t.push_back(T({{0, 0.9, 1.0}, {3, 0.001, 0.003}, {5, 0.9, 1.0},
                 {1, 0.3, 0.4}, {4, 0.9, 1.0}, {6, 0.9, 1.0},
                 {6, 0.9, 1.0}, {7, 0.2, 0.2}},
                {H, H, H, H, H, H, H}, true, true, false));
  // Q9: part-filtered 6-way join, agg + sort.
  t.push_back(T({{0, 0.9, 1.0}, {3, 0.04, 0.06}, {5, 0.9, 1.0},
                 {2, 0.9, 1.0}, {1, 0.9, 1.0}, {6, 0.9, 1.0}},
                {H, H, H, H, H}, true, true, false));
  // Q10: returned-items, 4-way join, agg + top-k.
  t.push_back(T({{0, 0.24, 0.26}, {1, 0.03, 0.05}, {4, 0.9, 1.0},
                 {6, 0.9, 1.0}},
                {H, H, H}, true, false, true));
  // Q11: partsupp x supplier x nation, agg + sort.
  t.push_back(T({{2, 0.9, 1.0}, {5, 0.9, 1.0}, {6, 0.04, 0.04}},
                {H, H}, true, true, false));
  // Q12: orders x lineitem (shipmode), agg + sort (merge join shapes well:
  // both sides clustered on orderkey).
  t.push_back(T({{0, 0.01, 0.02}, {1, 0.9, 1.0}}, {M}, true, true, false));
  // Q13: customer left join orders, agg + sort.
  t.push_back(T({{1, 0.95, 1.0}, {4, 0.9, 1.0}}, {H}, true, true, false));
  // Q14: lineitem x part, scalar agg.
  t.push_back(T({{0, 0.012, 0.02}, {3, 0.9, 1.0}}, {H}, true, false, false));
  // Q15: lineitem(view) x supplier, agg + sort.
  t.push_back(T({{0, 0.03, 0.05}, {5, 0.9, 1.0}}, {H}, true, true, false));
  // Q16: partsupp x part x supplier, distinct agg + sort.
  t.push_back(T({{2, 0.9, 1.0}, {3, 0.1, 0.15}, {5, 0.95, 1.0}},
                {H, H}, true, true, false));
  // Q17: lineitem x part (avg-quantity subquery shape), scalar agg.
  t.push_back(T({{0, 0.9, 1.0}, {3, 0.001, 0.002}}, {I}, true, false, false));
  // Q18: big-orders, 3-way join + agg + top-k.
  t.push_back(T({{0, 0.9, 1.0}, {1, 0.9, 1.0}, {4, 0.9, 1.0}},
                {H, H}, true, false, true));
  // Q19: lineitem x part disjunctive predicate, scalar agg.
  t.push_back(T({{0, 0.02, 0.04}, {3, 0.01, 0.03}}, {I}, true, false, false));
  // Q20: supplier x nation x partsupp x part x lineitem, sort.
  t.push_back(T({{2, 0.9, 1.0}, {3, 0.01, 0.02}, {0, 0.2, 0.3},
                 {5, 0.9, 1.0}, {6, 0.04, 0.04}},
                {H, H, H, H}, false, true, false));
  // Q21: suppliers-who-kept-waiting, 4-way join + agg + top-k.
  t.push_back(T({{0, 0.45, 0.55}, {5, 0.04, 0.05}, {1, 0.45, 0.55},
                 {6, 0.04, 0.04}},
                {H, H, H}, true, false, true));
  // Q22: customer anti-join orders, agg + sort.
  t.push_back(T({{4, 0.2, 0.3}, {1, 0.9, 1.0}}, {H}, true, true, false));
  LSCHED_CHECK(static_cast<int>(t.size()) == NumTemplatesOf(Benchmark::kTpch));
  return t;
}

/// SSB's 13 flights (tables: 0=lineorder 1=customer 2=supplier 3=part
/// 4=date). Flight 1: one date join, scalar agg; flights 2-4 widen the star.
std::vector<TemplateSpec> SsbTemplates() {
  std::vector<TemplateSpec> t;
  auto flight = [&](std::vector<ScanSpec> dims, double fact_lo,
                    double fact_hi, bool group) {
    TemplateSpec s;
    s.scans.push_back({0, fact_lo, fact_hi, false});
    for (const ScanSpec& d : dims) s.scans.push_back(d);
    s.joins.assign(dims.size(), JoinKind::kHash);
    s.aggregate = true;
    s.sort = group;  // grouped flights order their result
    return s;
  };
  // Q1.1 - Q1.3: lineorder x date, narrowing selections.
  t.push_back(flight({{4, 0.14, 0.15}}, 0.45, 0.5, false));
  t.push_back(flight({{4, 0.012, 0.013}}, 0.2, 0.25, false));
  t.push_back(flight({{4, 0.002, 0.003}}, 0.05, 0.1, false));
  // Q2.1 - Q2.3: + part & supplier.
  t.push_back(flight({{4, 0.9, 1.0}, {3, 0.04, 0.05}, {2, 0.2, 0.2}},
                     0.9, 1.0, true));
  t.push_back(flight({{4, 0.9, 1.0}, {3, 0.008, 0.009}, {2, 0.2, 0.2}},
                     0.9, 1.0, true));
  t.push_back(flight({{4, 0.9, 1.0}, {3, 0.001, 0.002}, {2, 0.04, 0.05}},
                     0.9, 1.0, true));
  // Q3.1 - Q3.4: + customer & supplier over date ranges.
  t.push_back(flight({{1, 0.2, 0.2}, {2, 0.2, 0.2}, {4, 0.85, 0.9}},
                     0.9, 1.0, true));
  t.push_back(flight({{1, 0.04, 0.05}, {2, 0.04, 0.05}, {4, 0.85, 0.9}},
                     0.9, 1.0, true));
  t.push_back(flight({{1, 0.008, 0.01}, {2, 0.008, 0.01}, {4, 0.85, 0.9}},
                     0.9, 1.0, true));
  t.push_back(flight({{1, 0.008, 0.01}, {2, 0.008, 0.01}, {4, 0.002, 0.003}},
                     0.9, 1.0, true));
  // Q4.1 - Q4.3: full 4-dimension star.
  t.push_back(flight({{1, 0.2, 0.2}, {2, 0.2, 0.2}, {3, 0.4, 0.45},
                      {4, 0.9, 1.0}},
                     0.9, 1.0, true));
  t.push_back(flight({{1, 0.2, 0.2}, {2, 0.2, 0.2}, {3, 0.4, 0.45},
                      {4, 0.28, 0.3}},
                     0.9, 1.0, true));
  t.push_back(flight({{1, 0.2, 0.2}, {2, 0.04, 0.05}, {3, 0.04, 0.05},
                      {4, 0.28, 0.3}},
                     0.9, 1.0, true));
  LSCHED_CHECK(static_cast<int>(t.size()) == NumTemplatesOf(Benchmark::kSsb));
  return t;
}

/// 113 deterministically generated JOB-shaped templates: join-heavy (4..17
/// joins, matching the real benchmark's range), selective index scans on
/// the dimension side, scalar MIN aggregations, no sorting.
std::vector<TemplateSpec> JobTemplates() {
  std::vector<TemplateSpec> t;
  Rng rng(0xB0B5EED);
  const int num_tables = static_cast<int>(TablesOf(Benchmark::kJob).size());
  // Fact-ish tables that anchor JOB joins.
  const std::vector<RelationId> facts = {0, 1, 2, 3, 4};
  for (int i = 0; i < NumTemplatesOf(Benchmark::kJob); ++i) {
    TemplateSpec s;
    // Join count: most queries 4-8 joins, a tail up to 17.
    int njoins = 4 + static_cast<int>(rng.UniformInt(static_cast<uint64_t>(5)));
    if (rng.Uniform() < 0.25) {
      njoins = 9 + static_cast<int>(rng.UniformInt(static_cast<uint64_t>(9)));
    }
    const RelationId fact = facts[rng.UniformInt(facts.size())];
    s.scans.push_back({fact, 0.15, 0.6, false});
    for (int j = 0; j < njoins; ++j) {
      RelationId dim =
          static_cast<RelationId>(rng.UniformInt(static_cast<uint64_t>(num_tables)));
      const bool selective = rng.Uniform() < 0.6;
      ScanSpec scan;
      scan.table = dim;
      scan.index_scan = selective;
      scan.sel_lo = selective ? 0.002 : 0.3;
      scan.sel_hi = selective ? 0.08 : 0.9;
      s.scans.push_back(scan);
      s.joins.push_back(rng.Uniform() < 0.3 ? JoinKind::kIndexNlj
                                            : JoinKind::kHash);
    }
    s.join_fanout_lo = 0.3;
    s.join_fanout_hi = 1.0;
    s.aggregate = true;  // JOB queries end in MIN() aggregates
    s.agg_ratio = 0.001;
    t.push_back(std::move(s));
  }
  return t;
}

}  // namespace

std::vector<TemplateSpec> TemplatesOf(Benchmark benchmark) {
  switch (benchmark) {
    case Benchmark::kTpch:
      return TpchTemplates();
    case Benchmark::kSsb:
      return SsbTemplates();
    case Benchmark::kJob:
      return JobTemplates();
  }
  return {};
}

Result<QueryPlan> InstantiateTemplate(Benchmark benchmark,
                                      const TemplateSpec& spec, int sf,
                                      Rng* rng) {
  if (spec.scans.empty()) {
    return Status::InvalidArgument("template without scans");
  }
  if (!spec.joins.empty() && spec.joins.size() + 1 != spec.scans.size()) {
    return Status::InvalidArgument("join/scan count mismatch");
  }
  const std::vector<BenchTable>& tables = TablesOf(benchmark);
  PlanBuilder builder(nullptr);

  auto add_scan = [&](const ScanSpec& scan) {
    const BenchTable& table = tables[static_cast<size_t>(scan.table)];
    PlanBuilder::NodeOptions opts;
    opts.input_rows = table.RowsAt(sf);
    opts.selectivity = rng->Uniform(scan.sel_lo, scan.sel_hi);
    const int node = builder.AddSource(
        scan.index_scan ? OperatorType::kIndexScan : OperatorType::kSelect,
        scan.table, opts);
    builder.AddUsedColumn(node, BenchColumnId(scan.table, 1));
    return node;
  };

  int stream = add_scan(spec.scans[0]);
  for (size_t j = 0; j + 1 < spec.scans.size(); ++j) {
    const ScanSpec& dim_scan = spec.scans[j + 1];
    const double fanout =
        rng->Uniform(spec.join_fanout_lo, spec.join_fanout_hi);
    const JoinKind kind = spec.joins[j];
    if (kind == JoinKind::kHash) {
      const int dim = add_scan(dim_scan);
      PlanBuilder::NodeOptions bopts;
      const int build = builder.AddOp(OperatorType::kBuildHash, {dim}, bopts);
      builder.AddUsedColumn(build, BenchColumnId(dim_scan.table, 0));
      PlanBuilder::NodeOptions popts;
      popts.selectivity = fanout;
      stream = builder.AddOp(OperatorType::kProbeHash, {stream, build}, popts);
      builder.AddUsedColumn(stream, BenchColumnId(dim_scan.table, 0));
    } else if (kind == JoinKind::kIndexNlj) {
      // Probes a pre-built index on the dimension table: a single-input
      // operator whose lineage includes the indexed relation.
      PlanBuilder::NodeOptions opts;
      opts.selectivity = fanout;
      stream =
          builder.AddOp(OperatorType::kIndexNestedLoopJoin, {stream}, opts);
      builder.AddBaseInput(stream, dim_scan.table);
      builder.AddUsedColumn(stream, BenchColumnId(dim_scan.table, 0));
    } else {  // kMerge
      const int dim = add_scan(dim_scan);
      const int sort_l = builder.AddOp(OperatorType::kSortRuns, {stream});
      const int merged_l =
          builder.AddOp(OperatorType::kMergeSortedRuns, {sort_l});
      const int sort_r = builder.AddOp(OperatorType::kSortRuns, {dim});
      const int merged_r =
          builder.AddOp(OperatorType::kMergeSortedRuns, {sort_r});
      PlanBuilder::NodeOptions opts;
      opts.selectivity = fanout;
      stream = builder.AddOp(OperatorType::kMergeJoin, {merged_l, merged_r},
                             opts);
    }
  }
  if (spec.aggregate) {
    PlanBuilder::NodeOptions aopts;
    aopts.selectivity = spec.agg_ratio;
    stream = builder.AddOp(OperatorType::kHashAggregate, {stream}, aopts);
    stream = builder.AddOp(OperatorType::kFinalizeAggregate, {stream});
  }
  if (spec.sort) {
    const int runs = builder.AddOp(OperatorType::kSortRuns, {stream});
    stream = builder.AddOp(OperatorType::kMergeSortedRuns, {runs});
  }
  if (spec.topk) {
    stream = builder.AddOp(OperatorType::kTopK, {stream});
  }
  return builder.Build();
}

Result<QueryPlan> InstantiateTemplate(Benchmark benchmark, int index, int sf,
                                      Rng* rng) {
  const std::vector<TemplateSpec> specs = TemplatesOf(benchmark);
  if (index < 0 || index >= static_cast<int>(specs.size())) {
    return Status::OutOfRange("template index");
  }
  return InstantiateTemplate(benchmark, specs[static_cast<size_t>(index)], sf,
                             rng);
}

}  // namespace lsched

#ifndef LSCHED_WORKLOAD_BENCHMARKS_H_
#define LSCHED_WORKLOAD_BENCHMARKS_H_

#include <string>
#include <vector>

#include "storage/types.h"

namespace lsched {

/// The three evaluation benchmarks of the paper (§7.1).
enum class Benchmark { kTpch = 0, kSsb, kJob };

const char* BenchmarkName(Benchmark b);

/// A benchmark base table: `rows_per_sf * sf + fixed_rows` rows at scale
/// factor `sf`. Row counts are scaled down from the real benchmarks so one
/// query costs virtual seconds (not minutes) in the simulator while keeping
/// the relative table-size ratios of the originals.
struct BenchTable {
  std::string name;
  RelationId id = 0;
  double rows_per_sf = 0.0;
  double fixed_rows = 0.0;

  int64_t RowsAt(int scale_factor) const {
    return static_cast<int64_t>(rows_per_sf * scale_factor + fixed_rows);
  }
};

/// Tables of `benchmark`, with dense RelationIds (stable across runs).
const std::vector<BenchTable>& TablesOf(Benchmark benchmark);

/// Scale factors the paper evaluates per benchmark: TPCH {2,5,10,50,100},
/// SSB {2,5,10,50}, JOB {1} (fixed IMDB dataset).
const std::vector<int>& ScaleFactorsOf(Benchmark benchmark);

/// Number of query templates: TPCH 22, SSB 13, JOB 113.
int NumTemplatesOf(Benchmark benchmark);

/// Stable column id for (table, column ordinal) pairs.
inline ColumnId BenchColumnId(RelationId table, int column) {
  return table * 16 + column;
}

}  // namespace lsched

#endif  // LSCHED_WORKLOAD_BENCHMARKS_H_

#ifndef LSCHED_WORKLOAD_SCENARIO_H_
#define LSCHED_WORKLOAD_SCENARIO_H_

#include <optional>
#include <string>
#include <vector>

#include "exec/scheduler.h"
#include "exec/sim_engine.h"
#include "serve/scripted_ingress.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace lsched {

/// --- declarative workload scenarios (DESIGN.md §13) ------------------------
///
/// The i.i.d.-templates/exponential-arrivals generator in workload.h models
/// the paper's §7.1 evaluation, but production traffic is diurnal, bursty,
/// drifting, and occasionally adversarial. A ScenarioSpec describes such
/// traffic declaratively; CompileScenario/CompileIngress lower it — through
/// the same template pool and instantiation seam GenerateWorkload uses —
/// into the engine-facing forms (QuerySubmission streams with scripted
/// cancels and thread-pool events, or a multi-tenant ScriptedIngress).
/// Compilation is a pure function of (spec, rng seed): the same seed
/// regenerates the workload bit-identically.

/// Piecewise-constant rate override: the curve's rate is `rate` for all
/// times before `until` (the first matching phase wins; past the last
/// phase the base rate applies). Times are script seconds — virtual seconds
/// when the compiled workload drives SimEngine.
struct RatePhase {
  double until = 0.0;
  double rate = 0.0;
};

/// A flash-crowd burst: for t in [start, start + duration) the rate is
/// multiplied by `multiplier`.
struct RateBurst {
  double start = 0.0;
  double duration = 0.0;
  double multiplier = 1.0;
};

/// Time-varying arrival rate lambda(t) in queries per script second:
///
///   lambda(t) = phase_rate(t) * diurnal(t) * bursts(t)
///
/// where phase_rate is the piecewise-constant base, diurnal is the optional
/// sinusoidal modulation 1 + A*sin(2*pi*t/P + phi) (clamped at 0), and
/// bursts multiply while active. Arrivals are drawn from the inhomogeneous
/// Poisson process with this intensity via Lewis–Shedler thinning
/// (SampleArrivalTimes).
struct RateCurve {
  double base_rate = 20.0;  ///< queries/second when no phase matches
  std::vector<RatePhase> phases;
  /// Sinusoidal diurnal modulation; period 0 disables it. Amplitude must be
  /// in [0, 1] so the intensity stays non-negative.
  double diurnal_amplitude = 0.0;
  double diurnal_period_seconds = 0.0;
  double diurnal_phase_radians = 0.0;
  std::vector<RateBurst> bursts;

  /// The instantaneous intensity lambda(t) >= 0.
  double RateAt(double t) const;

  /// A global upper bound on RateAt over all t (the thinning envelope).
  /// Conservative: overlapping bursts are bounded by the product of all
  /// burst multipliers, so pathological specs only cost rejection rate,
  /// never correctness.
  double MaxRate() const;
};

/// A template-mix profile: the sampling weight of template position
/// u in [0, 1] (position = rank within the split's template list) is
///
///   w(u) = exp(tilt * u)            when `weights` is empty,
///   w(j) = weights[j mod |weights|] otherwise (explicit per-template
///                                   weights, e.g. from FindAdversarialMix).
///
/// tilt = 0 is the uniform i.i.d. mix of GenerateWorkload; positive tilt
/// favors high-ranked templates, negative low-ranked ones.
struct MixProfile {
  double tilt = 0.0;
  std::vector<double> weights;
};

enum class MixDriftKind : uint8_t {
  kNone = 0,      ///< stationary mix (`from` throughout)
  kLinearRamp,    ///< linear interpolation from -> to over [start, end)
  kAbruptSwitch,  ///< `from` before start_time, `to` at and after it
};

/// Template-mix drift over time — the traffic pattern the PR-3 drift
/// monitor -> OnlineLSched retrain trigger exists for.
struct MixDrift {
  MixDriftKind kind = MixDriftKind::kNone;
  MixProfile from;
  MixProfile to;
  double start_time = 0.0;
  double end_time = 0.0;  ///< ramp end; ignored by kAbruptSwitch
};

/// The declarative scenario: arrival process, mix drift, scale-factor
/// heterogeneity, pool elasticity, and multi-tenant tagging.
struct ScenarioSpec {
  std::string name = "custom";
  Benchmark benchmark = Benchmark::kTpch;
  WorkloadSplit split = WorkloadSplit::kTest;
  int num_queries = 64;
  RateCurve rate;
  MixDrift drift;
  /// Restrict to these scale factors (empty = the benchmark's defaults).
  /// Queries draw their scale factor per-arrival, so a single scenario
  /// mixes heterogeneous data sizes.
  std::vector<int> scale_factors;
  /// Skew of the per-query scale-factor draw in [0, 1): 0 = uniform over
  /// the list; larger values bias toward the front (smaller) entries with
  /// weight (rank+1)^(-6*skew).
  double scale_factor_skew = 0.0;
  /// Mid-run worker-pool elasticity (Decima's scenario), applied to
  /// whichever engine runs the compiled workload. Times are script seconds;
  /// use ScaleThreadEvents when replaying against a wall-clock engine.
  std::vector<ThreadPoolEvent> thread_events;
  /// Multi-tenant tagging: tenants round-robin over submissions; priority
  /// classes are drawn per query from the two fractions (remainder normal).
  int num_tenants = 1;
  double high_priority_fraction = 0.0;
  double low_priority_fraction = 0.0;
  /// Fraction of submissions that also get a scripted cancellation shortly
  /// after arrival (chaos/soak realism; 0 = none).
  double cancel_fraction = 0.0;
  uint64_t split_seed = 0xC0FFEE;
};

/// A scenario lowered to engine-facing form: tagged submissions (virtual
/// arrival times), the scripted cancels, and the pool-elasticity events to
/// install into the engine config.
struct CompiledScenario {
  std::vector<QuerySubmission> submissions;
  std::vector<CancelRequest> cancels;
  std::vector<ThreadPoolEvent> thread_events;
};

/// Draws the first `n` arrival times of the inhomogeneous Poisson process
/// with intensity `curve` via Lewis–Shedler thinning: candidate points come
/// from a homogeneous process at MaxRate(); each is accepted with
/// probability RateAt(t)/MaxRate(). For a constant curve every candidate is
/// accepted and the gaps are exactly Exponential(1/rate) — the `steady`
/// scenario is distributionally identical to GenerateWorkload's arrivals.
std::vector<double> SampleArrivalTimes(const RateCurve& curve, int n,
                                       Rng* rng);

/// The unnormalized sampling weights over TemplatePool(spec) entries at
/// script time `t` (pool order: scale-factor-major, template-minor).
/// Ramp interpolation is linear in weight space, so the expected template
/// position moves monotonically from the `from` profile's mean to the
/// `to` profile's mean — the property scenario_test asserts.
std::vector<double> MixWeightsAt(const ScenarioSpec& spec, double t);

/// Compiles `spec` into a SimEngine/RealEngine-ready workload. Pure in
/// (spec, *rng): the same seed regenerates bit-identical output.
CompiledScenario CompileScenario(const ScenarioSpec& spec, Rng* rng);

/// Compiles `spec` into a deterministic multi-tenant ingress script (plan
/// library = one plan per submission ordinal) for ServingDaemon::RunScript
/// or live Replay.
ScriptedIngress CompileIngress(const ScenarioSpec& spec, Rng* rng);

/// Rescales event times (script seconds -> wall seconds) for replaying a
/// scenario's elasticity against a wall-clock engine.
std::vector<ThreadPoolEvent> ScaleThreadEvents(
    const std::vector<ThreadPoolEvent>& events, double time_scale);

/// --- ResQ-style adversarial mix search -------------------------------------

struct AdversarialSearchOptions {
  int iterations = 12;      ///< hill-climb steps (1 evaluation per step + 1)
  int num_threads = 8;      ///< simulator pool for the inner evaluations
  double step = 0.5;        ///< log-normal perturbation scale per weight
  uint64_t seed = 1;        ///< drives perturbations AND the fixed
                            ///< common-random-numbers evaluation workload
  int eval_queries = 0;     ///< inner-evaluator workload size (0 = spec's)
};

struct AdversarialMixResult {
  /// Per-template weights of the worst-found mix; install via
  /// spec.drift.from = {0.0, weights} to compile it.
  std::vector<double> weights;
  double policy_latency = 0.0;          ///< avg latency of `policy` on it
  double best_heuristic_latency = 0.0;  ///< best FIFO/SJF/Fair avg latency
  std::string best_heuristic;
  double regret = 0.0;  ///< policy_latency - best_heuristic_latency
  int evaluations = 0;  ///< simulator episodes spent
};

/// Seed-deterministic hill climb over template-mix weights that maximizes
/// `policy`'s regret versus the best of the untuned heuristics (FIFO, SJF,
/// Fair) on the cost-model-backed simulator (the cheap inner evaluator,
/// ResQ's search pattern). Every candidate is evaluated on the workload
/// compiled from the SAME rng seed (common random numbers), so regret
/// differences reflect the mix, not sampling noise. `policy` is Reset by
/// each evaluation episode and must tolerate repeated episodes.
AdversarialMixResult FindAdversarialMix(const ScenarioSpec& base,
                                        Scheduler* policy,
                                        const AdversarialSearchOptions& opts);

/// --- the scenario registry -------------------------------------------------

/// Preset names, in canonical grid order: steady, diurnal, flash_crowd,
/// drift_ramp, elastic, adversarial.
const std::vector<std::string>& ScenarioNames();

/// The named preset, or nullopt for unknown names. Presets are authored on
/// a ~4-script-second horizon at a ~20 q/s base rate; callers typically
/// override num_queries/benchmark and rescale rates for their engine.
std::optional<ScenarioSpec> ScenarioByName(const std::string& name);

}  // namespace lsched

#endif  // LSCHED_WORKLOAD_SCENARIO_H_

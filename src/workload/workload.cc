#include "workload/workload.h"

#include <algorithm>

#include "util/logging.h"

namespace lsched {

std::vector<std::pair<int, int>> TemplatePool(const WorkloadConfig& config) {
  const int num_templates = NumTemplatesOf(config.benchmark);
  const std::vector<int>& sfs = config.scale_factors.empty()
                                    ? ScaleFactorsOf(config.benchmark)
                                    : config.scale_factors;

  // Deterministic 50/50 split of template indices (shared across scale
  // factors so a test template is never seen in training at any SF).
  std::vector<int> order(static_cast<size_t>(num_templates));
  for (int i = 0; i < num_templates; ++i) order[static_cast<size_t>(i)] = i;
  Rng split_rng(config.split_seed);
  split_rng.Shuffle(&order);
  const size_t half = order.size() / 2;

  std::vector<int> chosen;
  switch (config.split) {
    case WorkloadSplit::kTrain:
      chosen.assign(order.begin(), order.begin() + static_cast<long>(half));
      break;
    case WorkloadSplit::kTest:
      chosen.assign(order.begin() + static_cast<long>(half), order.end());
      break;
    case WorkloadSplit::kAll:
      chosen = order;
      break;
  }
  std::sort(chosen.begin(), chosen.end());

  std::vector<std::pair<int, int>> pool;
  for (int sf : sfs) {
    for (int t : chosen) pool.push_back({t, sf});
  }
  return pool;
}

std::vector<QuerySubmission> GenerateWorkload(const WorkloadConfig& config,
                                              Rng* rng) {
  const std::vector<std::pair<int, int>> pool = TemplatePool(config);
  LSCHED_CHECK(!pool.empty());
  const std::vector<TemplateSpec> specs = TemplatesOf(config.benchmark);

  std::vector<QuerySubmission> out;
  out.reserve(static_cast<size_t>(config.num_queries));
  double t = 0.0;
  for (int i = 0; i < config.num_queries; ++i) {
    const auto& [tmpl, sf] = pool[rng->UniformInt(pool.size())];
    Result<QueryPlan> plan = InstantiateTemplate(
        config.benchmark, specs[static_cast<size_t>(tmpl)], sf, rng);
    LSCHED_CHECK(plan.ok()) << plan.status().ToString();
    QuerySubmission sub;
    sub.plan = std::move(plan).value();
    if (config.batch) {
      sub.arrival_time = 0.0;
    } else {
      t += rng->Exponential(config.mean_interarrival_seconds);
      sub.arrival_time = t;
    }
    out.push_back(std::move(sub));
  }
  return out;
}

std::function<std::vector<QuerySubmission>(int, Rng*)> MakeEpisodeFactory(
    Benchmark benchmark, int min_queries, int max_queries,
    double min_interarrival, double max_interarrival,
    std::vector<int> scale_factors) {
  return [=](int episode, Rng* rng) {
    (void)episode;
    // All of this episode's draws (query count, arrival rate, the workload
    // itself) come from a forked child stream, so the caller's Rng advances
    // by exactly one draw per episode regardless of the episode's size or
    // parameters. Inserting unrelated draws between episodes — or changing
    // these ranges — can therefore never shift later episodes' workloads.
    Rng episode_rng = rng->Fork();
    WorkloadConfig config;
    config.benchmark = benchmark;
    config.split = WorkloadSplit::kTrain;
    config.num_queries = static_cast<int>(
        episode_rng.UniformInt(static_cast<int64_t>(min_queries),
                               static_cast<int64_t>(max_queries)));
    config.mean_interarrival_seconds =
        episode_rng.Uniform(min_interarrival, max_interarrival);
    config.scale_factors = scale_factors;
    return GenerateWorkload(config, &episode_rng);
  };
}

}  // namespace lsched

#ifndef LSCHED_WORKLOAD_TEMPLATES_H_
#define LSCHED_WORKLOAD_TEMPLATES_H_

#include <vector>

#include "plan/query_plan.h"
#include "util/rng.h"
#include "util/status.h"
#include "workload/benchmarks.h"

namespace lsched {

/// How one join in a template's join chain is implemented.
enum class JoinKind { kHash = 0, kIndexNlj, kMerge };

/// Declarative shape of one benchmark query template: the scans (first is
/// the probe/fact stream), the join kinds gluing them, and the top of the
/// plan. Instantiation samples per-instance predicate selectivities inside
/// [sel_lo, sel_hi], modeling the parameterized query templates of
/// TPCH/SSB/JOB.
struct TemplateSpec {
  struct ScanSpec {
    RelationId table = 0;
    double sel_lo = 0.1;
    double sel_hi = 0.5;
    bool index_scan = false;
  };
  std::vector<ScanSpec> scans;
  std::vector<JoinKind> joins;  ///< size == scans.size() - 1
  /// Per-join output fan-out range (output rows / probe rows).
  double join_fanout_lo = 0.4;
  double join_fanout_hi = 1.1;
  bool aggregate = false;      ///< HashAggregate + FinalizeAggregate
  double agg_ratio = 0.02;     ///< groups per input row
  bool sort = false;           ///< SortRuns + MergeSortedRuns
  bool topk = false;
};

/// The template specs of one benchmark. TPCH returns 22 specs approximating
/// the shapes of Q1..Q22, SSB the 13 flights, JOB 113 deterministically
/// generated join-heavy templates (4..17 joins, IMDB table mix).
std::vector<TemplateSpec> TemplatesOf(Benchmark benchmark);

/// Builds the physical plan of `spec` at scale factor `sf`; `rng` samples
/// the per-instance selectivities.
Result<QueryPlan> InstantiateTemplate(Benchmark benchmark,
                                      const TemplateSpec& spec, int sf,
                                      Rng* rng);

/// Convenience: instantiate template `index` of `benchmark`.
Result<QueryPlan> InstantiateTemplate(Benchmark benchmark, int index, int sf,
                                      Rng* rng);

}  // namespace lsched

#endif  // LSCHED_WORKLOAD_TEMPLATES_H_

#include "workload/benchmarks.h"

#include "util/logging.h"

namespace lsched {

const char* BenchmarkName(Benchmark b) {
  switch (b) {
    case Benchmark::kTpch:
      return "TPCH";
    case Benchmark::kSsb:
      return "SSB";
    case Benchmark::kJob:
      return "JOB";
  }
  return "?";
}

const std::vector<BenchTable>& TablesOf(Benchmark benchmark) {
  // Row counts are 1/200th of the real benchmarks, preserving ratios.
  static const std::vector<BenchTable> kTpch = {
      {"lineitem", 0, 30000.0, 0.0}, {"orders", 1, 7500.0, 0.0},
      {"partsupp", 2, 4000.0, 0.0},  {"part", 3, 1000.0, 0.0},
      {"customer", 4, 750.0, 0.0},   {"supplier", 5, 50.0, 0.0},
      {"nation", 6, 0.0, 25.0},      {"region", 7, 0.0, 5.0},
  };
  static const std::vector<BenchTable> kSsb = {
      {"lineorder", 0, 30000.0, 0.0}, {"customer", 1, 150.0, 0.0},
      {"supplier", 2, 10.0, 0.0},     {"part", 3, 0.0, 1000.0},
      {"date", 4, 0.0, 2556.0},
  };
  // JOB's IMDB snapshot is fixed-size (7.2 GB); sf is ignored (fixed rows).
  static const std::vector<BenchTable> kJob = {
      {"title", 0, 0.0, 250000.0},
      {"cast_info", 1, 0.0, 900000.0},
      {"movie_info", 2, 0.0, 700000.0},
      {"movie_keyword", 3, 0.0, 450000.0},
      {"movie_companies", 4, 0.0, 260000.0},
      {"name", 5, 0.0, 400000.0},
      {"char_name", 6, 0.0, 310000.0},
      {"movie_info_idx", 7, 0.0, 138000.0},
      {"company_name", 8, 0.0, 23000.0},
      {"keyword", 9, 0.0, 13000.0},
      {"person_info", 10, 0.0, 290000.0},
      {"aka_name", 11, 0.0, 90000.0},
      {"aka_title", 12, 0.0, 36000.0},
      {"complete_cast", 13, 0.0, 13500.0},
      {"company_type", 14, 0.0, 4.0},
      {"info_type", 15, 0.0, 113.0},
      {"keyword_type", 16, 0.0, 5.0},
      {"kind_type", 17, 0.0, 7.0},
      {"link_type", 18, 0.0, 18.0},
      {"movie_link", 19, 0.0, 3000.0},
      {"role_type", 20, 0.0, 12.0},
  };
  switch (benchmark) {
    case Benchmark::kTpch:
      return kTpch;
    case Benchmark::kSsb:
      return kSsb;
    case Benchmark::kJob:
      return kJob;
  }
  LSCHED_CHECK(false);
  return kTpch;
}

const std::vector<int>& ScaleFactorsOf(Benchmark benchmark) {
  static const std::vector<int> kTpch = {2, 5, 10, 50, 100};
  static const std::vector<int> kSsb = {2, 5, 10, 50};
  static const std::vector<int> kJob = {1};
  switch (benchmark) {
    case Benchmark::kTpch:
      return kTpch;
    case Benchmark::kSsb:
      return kSsb;
    case Benchmark::kJob:
      return kJob;
  }
  LSCHED_CHECK(false);
  return kTpch;
}

int NumTemplatesOf(Benchmark benchmark) {
  switch (benchmark) {
    case Benchmark::kTpch:
      return 22;
    case Benchmark::kSsb:
      return 13;
    case Benchmark::kJob:
      return 113;
  }
  return 0;
}

}  // namespace lsched

#include "workload/scenario.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "exec/sim_engine.h"
#include "sched/heuristics.h"
#include "util/logging.h"
#include "workload/templates.h"

namespace lsched {

double RateCurve::RateAt(double t) const {
  double rate = base_rate;
  for (const RatePhase& p : phases) {
    if (t < p.until) {
      rate = p.rate;
      break;
    }
  }
  if (diurnal_period_seconds > 0.0) {
    const double mod =
        1.0 + diurnal_amplitude *
                  std::sin(2.0 * M_PI * t / diurnal_period_seconds +
                           diurnal_phase_radians);
    rate *= std::max(0.0, mod);
  }
  for (const RateBurst& b : bursts) {
    if (t >= b.start && t < b.start + b.duration) rate *= b.multiplier;
  }
  return std::max(0.0, rate);
}

double RateCurve::MaxRate() const {
  double rate = base_rate;
  for (const RatePhase& p : phases) rate = std::max(rate, p.rate);
  rate *= 1.0 + std::max(0.0, diurnal_amplitude);
  for (const RateBurst& b : bursts) rate *= std::max(1.0, b.multiplier);
  return rate;
}

std::vector<double> SampleArrivalTimes(const RateCurve& curve, int n,
                                       Rng* rng) {
  const double lambda_max = curve.MaxRate();
  LSCHED_CHECK(lambda_max > 0.0) << "scenario rate curve is identically zero";
  std::vector<double> out;
  out.reserve(static_cast<size_t>(std::max(0, n)));
  double t = 0.0;
  while (static_cast<int>(out.size()) < n) {
    // Candidate from the homogeneous envelope process; thin by the ratio of
    // the true intensity to the envelope. The accepted points are exactly
    // the inhomogeneous Poisson process with intensity RateAt (Lewis &
    // Shedler 1979) — DESIGN.md §13 has the argument.
    t += rng->Exponential(1.0 / lambda_max);
    if (rng->Uniform() * lambda_max <= curve.RateAt(t)) out.push_back(t);
  }
  return out;
}

namespace {

/// The per-template (not per-pool-entry) weights of `profile` over
/// `num_templates` split positions.
void ProfileWeights(const MixProfile& profile, int num_templates,
                    std::vector<double>* out) {
  out->resize(static_cast<size_t>(num_templates));
  if (!profile.weights.empty()) {
    for (int j = 0; j < num_templates; ++j) {
      (*out)[static_cast<size_t>(j)] = std::max(
          0.0, profile.weights[static_cast<size_t>(j) %
                               profile.weights.size()]);
    }
    return;
  }
  for (int j = 0; j < num_templates; ++j) {
    const double u =
        num_templates > 1
            ? static_cast<double>(j) / static_cast<double>(num_templates - 1)
            : 0.0;
    (*out)[static_cast<size_t>(j)] = std::exp(profile.tilt * u);
  }
}

/// Ramp/switch interpolation factor alpha(t) in [0, 1]: weight of the `to`
/// profile at script time t.
double DriftAlpha(const MixDrift& drift, double t) {
  switch (drift.kind) {
    case MixDriftKind::kNone:
      return 0.0;
    case MixDriftKind::kAbruptSwitch:
      return t >= drift.start_time ? 1.0 : 0.0;
    case MixDriftKind::kLinearRamp: {
      if (drift.end_time <= drift.start_time) {
        return t >= drift.start_time ? 1.0 : 0.0;
      }
      const double a = (t - drift.start_time) /
                       (drift.end_time - drift.start_time);
      return std::clamp(a, 0.0, 1.0);
    }
  }
  return 0.0;
}

WorkloadConfig PoolConfig(const ScenarioSpec& spec) {
  WorkloadConfig cfg;
  cfg.benchmark = spec.benchmark;
  cfg.split = spec.split;
  cfg.scale_factors = spec.scale_factors;
  cfg.split_seed = spec.split_seed;
  return cfg;
}

std::vector<int> ScenarioScaleFactors(const ScenarioSpec& spec) {
  return spec.scale_factors.empty() ? ScaleFactorsOf(spec.benchmark)
                                    : spec.scale_factors;
}

/// Pool-entry weights at time t given the pool geometry (sf-major order:
/// entry i = scale-factor block i / num_templates, template position
/// i % num_templates).
std::vector<double> PoolWeightsAt(const ScenarioSpec& spec, int num_templates,
                                  int num_sfs, double t) {
  std::vector<double> from_w, to_w;
  ProfileWeights(spec.drift.from, num_templates, &from_w);
  const double alpha = DriftAlpha(spec.drift, t);
  if (alpha > 0.0) ProfileWeights(spec.drift.to, num_templates, &to_w);

  std::vector<double> weights(
      static_cast<size_t>(num_templates * num_sfs));
  for (int b = 0; b < num_sfs; ++b) {
    // Scale-factor heterogeneity: rank-based bias toward the front of the
    // scale-factor list (skew 0 = uniform).
    const double sf_w =
        spec.scale_factor_skew > 0.0
            ? std::pow(static_cast<double>(b + 1),
                       -6.0 * spec.scale_factor_skew)
            : 1.0;
    for (int j = 0; j < num_templates; ++j) {
      double w = from_w[static_cast<size_t>(j)];
      if (alpha > 0.0) {
        w = (1.0 - alpha) * w + alpha * to_w[static_cast<size_t>(j)];
      }
      weights[static_cast<size_t>(b * num_templates + j)] = w * sf_w;
    }
  }
  return weights;
}

}  // namespace

std::vector<double> MixWeightsAt(const ScenarioSpec& spec, double t) {
  const std::vector<std::pair<int, int>> pool =
      TemplatePool(PoolConfig(spec));
  const int num_sfs = static_cast<int>(ScenarioScaleFactors(spec).size());
  LSCHED_CHECK(num_sfs > 0 && !pool.empty());
  const int num_templates = static_cast<int>(pool.size()) / num_sfs;
  return PoolWeightsAt(spec, num_templates, num_sfs, t);
}

CompiledScenario CompileScenario(const ScenarioSpec& spec, Rng* rng) {
  const std::vector<std::pair<int, int>> pool =
      TemplatePool(PoolConfig(spec));
  LSCHED_CHECK(!pool.empty());
  const int num_sfs = static_cast<int>(ScenarioScaleFactors(spec).size());
  const int num_templates = static_cast<int>(pool.size()) / num_sfs;
  const std::vector<TemplateSpec> specs = TemplatesOf(spec.benchmark);

  CompiledScenario out;
  out.thread_events = spec.thread_events;
  const std::vector<double> arrivals =
      SampleArrivalTimes(spec.rate, spec.num_queries, rng);
  out.submissions.reserve(arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    const double t = arrivals[i];
    const std::vector<double> weights =
        PoolWeightsAt(spec, num_templates, num_sfs, t);
    size_t pick = rng->WeightedIndex(weights);
    if (pick >= pool.size()) pick = 0;  // all-zero weights: degenerate spec
    const auto& [tmpl, sf] = pool[pick];
    Result<QueryPlan> plan = InstantiateTemplate(
        spec.benchmark, specs[static_cast<size_t>(tmpl)], sf, rng);
    LSCHED_CHECK(plan.ok()) << plan.status().ToString();

    QuerySubmission sub;
    sub.plan = std::move(plan).value();
    sub.arrival_time = t;
    sub.tag.tenant = static_cast<TenantId>(
        spec.num_tenants > 1 ? static_cast<int>(i) % spec.num_tenants : 0);
    if (spec.high_priority_fraction > 0.0 ||
        spec.low_priority_fraction > 0.0) {
      const double p = rng->Uniform();
      if (p < spec.high_priority_fraction) {
        sub.tag.priority = QueryPriority::kHigh;
      } else if (p < spec.high_priority_fraction +
                         spec.low_priority_fraction) {
        sub.tag.priority = QueryPriority::kLow;
      }
    }
    out.submissions.push_back(std::move(sub));

    if (spec.cancel_fraction > 0.0 &&
        rng->Uniform() < spec.cancel_fraction) {
      // Cancel about one arrival gap after submission, so some cancels land
      // pre-admission and some mid-run.
      const double rate_here = std::max(spec.rate.RateAt(t), 1e-9);
      out.cancels.push_back(CancelRequest{
          static_cast<QueryId>(i), t + rng->Exponential(1.0 / rate_here)});
    }
  }
  return out;
}

ScriptedIngress CompileIngress(const ScenarioSpec& spec, Rng* rng) {
  CompiledScenario compiled = CompileScenario(spec, rng);
  std::vector<QueryPlan> plans;
  std::vector<IngressEvent> events;
  plans.reserve(compiled.submissions.size());
  for (size_t i = 0; i < compiled.submissions.size(); ++i) {
    QuerySubmission& sub = compiled.submissions[i];
    events.push_back(IngressEvent::Submit(sub.arrival_time,
                                          static_cast<int>(i), sub.tag));
    plans.push_back(std::move(sub.plan));
  }
  for (const CancelRequest& cr : compiled.cancels) {
    events.push_back(
        IngressEvent::Cancel(cr.time, static_cast<int>(cr.query)));
  }
  return ScriptedIngress(std::move(events), std::move(plans));
}

std::vector<ThreadPoolEvent> ScaleThreadEvents(
    const std::vector<ThreadPoolEvent>& events, double time_scale) {
  std::vector<ThreadPoolEvent> out = events;
  for (ThreadPoolEvent& e : out) e.time *= time_scale;
  return out;
}

AdversarialMixResult FindAdversarialMix(const ScenarioSpec& base,
                                        Scheduler* policy,
                                        const AdversarialSearchOptions& opts) {
  // The search works on a stationary copy of the base scenario: drift off,
  // explicit per-template weights as the search variable.
  ScenarioSpec spec = base;
  spec.drift = MixDrift{};
  if (opts.eval_queries > 0) spec.num_queries = opts.eval_queries;
  const int num_sfs = static_cast<int>(ScenarioScaleFactors(spec).size());
  const int num_templates =
      static_cast<int>(TemplatePool(PoolConfig(spec)).size()) / num_sfs;
  LSCHED_CHECK(num_templates > 0);

  Rng search_rng(opts.seed);
  // Common random numbers: every candidate mix is compiled and simulated
  // from this fixed seed, so regret differences are attributable to the mix
  // alone (paired comparison), and the whole search replays from opts.seed.
  const uint64_t eval_seed = search_rng.Next();

  FifoScheduler fifo;
  SjfScheduler sjf;
  FairScheduler fair;
  const std::vector<std::pair<std::string, Scheduler*>> heuristics = {
      {"FIFO", &fifo}, {"SJF", &sjf}, {"Fair", &fair}};

  int evaluations = 0;
  const auto evaluate = [&](const std::vector<double>& weights,
                            AdversarialMixResult* result) {
    spec.drift.from.weights = weights;
    Rng workload_rng(eval_seed);
    const CompiledScenario compiled = CompileScenario(spec, &workload_rng);
    SimEngineConfig ecfg;
    ecfg.num_threads = opts.num_threads;
    ecfg.seed = eval_seed;
    ecfg.thread_events = compiled.thread_events;
    ecfg.cancels = compiled.cancels;

    result->weights = weights;
    result->policy_latency =
        SimEngine(ecfg).Run(compiled.submissions, policy).avg_latency;
    result->best_heuristic_latency = 1e300;
    for (const auto& [name, sched] : heuristics) {
      const double lat =
          SimEngine(ecfg).Run(compiled.submissions, sched).avg_latency;
      if (lat < result->best_heuristic_latency) {
        result->best_heuristic_latency = lat;
        result->best_heuristic = name;
      }
    }
    result->regret = result->policy_latency - result->best_heuristic_latency;
    evaluations += 1 + static_cast<int>(heuristics.size());
  };

  AdversarialMixResult best;
  std::vector<double> current(static_cast<size_t>(num_templates), 1.0);
  evaluate(current, &best);
  for (int it = 0; it < opts.iterations; ++it) {
    // Log-normal perturbation of every weight, renormalized to mean 1 so
    // the mix changes shape, not total mass.
    std::vector<double> candidate = best.weights;
    double sum = 0.0;
    for (double& w : candidate) {
      w *= std::exp(opts.step * search_rng.Normal());
      sum += w;
    }
    for (double& w : candidate) {
      w *= static_cast<double>(candidate.size()) / sum;
    }
    AdversarialMixResult trial;
    evaluate(candidate, &trial);
    if (trial.regret > best.regret) best = trial;
  }
  best.evaluations = evaluations;
  return best;
}

const std::vector<std::string>& ScenarioNames() {
  static const std::vector<std::string> kNames = {
      "steady",     "diurnal", "flash_crowd",
      "drift_ramp", "elastic", "adversarial"};
  return kNames;
}

std::optional<ScenarioSpec> ScenarioByName(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.num_tenants = 3;
  spec.high_priority_fraction = 0.15;
  spec.low_priority_fraction = 0.25;
  if (name == "steady") {
    // The control: constant-rate Poisson arrivals, uniform i.i.d. mix —
    // distributionally identical to GenerateWorkload (scenario_test's
    // KS check pins this).
    spec.rate.base_rate = 20.0;
    return spec;
  }
  if (name == "diurnal") {
    // Day/night sinusoid starting at the trough: load swings 0.3x..1.7x
    // around the base over a 2-second "day".
    spec.rate.base_rate = 20.0;
    spec.rate.diurnal_amplitude = 0.7;
    spec.rate.diurnal_period_seconds = 2.0;
    spec.rate.diurnal_phase_radians = -M_PI / 2.0;
    return spec;
  }
  if (name == "flash_crowd") {
    // Quiet baseline punctured by two 10x bursts.
    spec.rate.base_rate = 8.0;
    spec.rate.bursts = {{0.8, 0.4, 10.0}, {2.4, 0.4, 10.0}};
    return spec;
  }
  if (name == "drift_ramp") {
    // Template mix ramps from the low half of the split to the high half
    // over [0.5, 2.0) — the traffic shape the PR-3 drift monitor ->
    // OnlineLSched retrain trigger is tested end-to-end against.
    spec.rate.base_rate = 20.0;
    spec.drift.kind = MixDriftKind::kLinearRamp;
    spec.drift.from.tilt = -4.0;
    spec.drift.to.tilt = 4.0;
    spec.drift.start_time = 0.5;
    spec.drift.end_time = 2.0;
    return spec;
  }
  if (name == "elastic") {
    // Decima's scenario: the pool shrinks early, overgrows mid-run, then
    // settles back. Deltas are authored for bases >= 3 threads (the pool
    // never drops below base - 2).
    spec.rate.base_rate = 20.0;
    spec.thread_events = {{0.4, -2}, {1.0, +6}, {1.6, -4}};
    return spec;
  }
  if (name == "adversarial") {
    // Static fallback mix: heavy-template tilt + skewed scale factors under
    // a flash burst. fig16_scenarios sharpens it per policy by running
    // FindAdversarialMix and installing the found weights.
    spec.rate.base_rate = 10.0;
    spec.rate.bursts = {{1.0, 0.6, 6.0}};
    spec.drift.from.tilt = 4.0;
    spec.scale_factor_skew = 0.6;
    return spec;
  }
  return std::nullopt;
}

}  // namespace lsched

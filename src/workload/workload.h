#ifndef LSCHED_WORKLOAD_WORKLOAD_H_
#define LSCHED_WORKLOAD_WORKLOAD_H_

#include <functional>
#include <vector>

#include "exec/sim_engine.h"
#include "util/rng.h"
#include "workload/templates.h"

namespace lsched {

/// Which half of the 50/50 train/test template split to draw from
/// (paper §7.1: per scale factor, half the benchmark queries train, the
/// other half test; test queries are never seen in training).
enum class WorkloadSplit { kTrain = 0, kTest, kAll };

struct WorkloadConfig {
  Benchmark benchmark = Benchmark::kTpch;
  WorkloadSplit split = WorkloadSplit::kTest;
  int num_queries = 80;
  /// Mean exponential inter-arrival gap in virtual seconds (§7.1's 1/lambda).
  /// Ignored when `batch` is true (all queries arrive at t = 0).
  double mean_interarrival_seconds = 0.25;
  bool batch = false;
  /// Restrict to these scale factors (empty = the benchmark's defaults).
  std::vector<int> scale_factors;
  /// Seed of the 50/50 template split; fixed so train/test stay disjoint
  /// across runs.
  uint64_t split_seed = 0xC0FFEE;
};

/// The (template index, scale factor) pool the workload samples from.
std::vector<std::pair<int, int>> TemplatePool(const WorkloadConfig& config);

/// Samples a workload: `num_queries` draws with replacement from the pool,
/// exponential inter-arrival gaps (or batch arrivals).
std::vector<QuerySubmission> GenerateWorkload(const WorkloadConfig& config,
                                              Rng* rng);

/// Training-episode factory matching §7.1's setup: each episode draws a
/// fresh streaming workload whose query count and arrival rate vary within
/// the given ranges.
std::function<std::vector<QuerySubmission>(int, Rng*)> MakeEpisodeFactory(
    Benchmark benchmark, int min_queries, int max_queries,
    double min_interarrival, double max_interarrival,
    std::vector<int> scale_factors = {});

}  // namespace lsched

#endif  // LSCHED_WORKLOAD_WORKLOAD_H_

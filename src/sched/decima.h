#ifndef LSCHED_SCHED_DECIMA_H_
#define LSCHED_SCHED_DECIMA_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/scheduler.h"
#include "exec/scheduling_context.h"
#include "exec/sim_engine.h"
#include "nn/inference.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/params.h"
#include "util/rng.h"
#include "util/status.h"

namespace lsched {

/// Configuration of the Decima baseline (Mao et al., SIGCOMM'19), as
/// characterized by the LSched paper (§1, §4.2): black-box per-task
/// features, sequential-message-passing GCN encoder, (node, parallelism)
/// action space, no pipelining support — a task is runnable only when ALL
/// its parents completed — and an average-latency-only reward.
struct DecimaConfig {
  int hidden_dim = 16;
  int num_mp_iterations = 2;
  int summary_dim = 16;
  int head_hidden = 32;
  std::vector<double> parallelism_fractions = {0.1, 0.2, 0.35, 0.5,
                                               0.65, 0.8, 1.0};
  uint64_t seed = 23;
};

/// Black-box snapshot of one query for Decima's encoder.
struct DecimaQueryFeatures {
  QueryId qid = kInvalidQuery;
  int num_nodes = 0;
  /// Per task: [log #remaining work orders, completion ratio,
  /// log est. remaining duration, is_scheduled, is_runnable].
  std::vector<std::vector<double>> node_features;
  std::vector<std::array<int, 2>> child_node;  ///< producer slots
  std::vector<int> topo_order;
  std::vector<double> query_features;  ///< [assigned frac, free frac]
};

struct DecimaStateFeatures {
  double time = 0.0;
  int total_threads = 0;
  std::vector<DecimaQueryFeatures> queries;
  /// Runnable tasks: (query index, op). Decima has no pipelining: runnable
  /// requires every producer completed.
  std::vector<std::pair<int, int>> candidates;
};

struct DecimaExperience {
  DecimaStateFeatures state;
  int chosen_candidate = -1;
  int chosen_parallelism = 0;
  double time = 0.0;
  int num_running_queries = 0;
};

/// Decima's networks: GCN + query/global summaries + two heads.
class DecimaModel {
 public:
  explicit DecimaModel(DecimaConfig config);

  const DecimaConfig& config() const { return config_; }
  ParameterStore* params() { return &store_; }

  static constexpr int kNodeFeatureDim = 5;
  static constexpr int kQueryFeatureDim = 2;

  Linear proj;
  Linear mp_self;
  Linear mp_child;
  Mlp query_summary;   ///< per-node message -> summary
  Mlp global_summary;  ///< per-query message -> summary
  Mlp node_head;
  Mlp par_head;

 private:
  DecimaConfig config_;
  ParameterStore store_;
};

/// The Decima scheduling agent.
class DecimaScheduler : public Scheduler {
 public:
  DecimaScheduler(DecimaModel* model, uint64_t seed = 77);

  std::string name() const override { return "Decima"; }
  void Reset() override;
  /// Legacy tape-based forward (old-path benchmark / fast-path-off bridge).
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SystemState& state) override;
  /// Serving fast path (API v2): per-query GCN embeddings and summaries are
  /// cached by the context's dirty-flag versions; heads run as batched
  /// tape-free GEMMs. Bit-identical scores and rng consumption.
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override;

  void set_use_fast_path(bool v) { use_fast_path_ = v; }
  bool use_fast_path() const { return use_fast_path_; }

  void set_sample_actions(bool v) { sample_actions_ = v; }
  void set_record_experiences(bool v) { record_experiences_ = v; }
  std::vector<DecimaExperience>& experiences() { return experiences_; }

  /// Extracts Decima's black-box features (exposed for tests).
  static DecimaStateFeatures ExtractFeatures(const SystemState& state);

 private:
  /// Version-cacheable slice of one query: black-box features, runnable
  /// ops, and the encoder outputs that depend only on them.
  struct CacheEntry {
    uint64_t version = 0;
    DecimaQueryFeatures features;  ///< query_features left empty
    std::vector<int> runnable_ops;
    /// True once the embeddings reflect `features` (encoding is lazy: an
    /// event whose candidate set turns out empty never runs the GCN).
    bool encoded = false;
    Matrix node_emb;   ///< (num_nodes x hidden_dim), post message passing
    Matrix query_emb;  ///< (1 x summary_dim)
  };

  /// Refreshes features + runnable ops if `version` moved; does not encode.
  CacheEntry& GetCacheEntry(const QueryState& q, uint64_t version);
  /// Runs the serving GCN for `entry` if its embeddings are stale.
  void EnsureEncoded(CacheEntry* entry);

  DecimaModel* model_;
  Rng rng_;
  bool sample_actions_ = false;
  bool record_experiences_ = false;
  bool use_fast_path_ = true;
  std::vector<DecimaExperience> experiences_;
  std::unordered_map<QueryId, CacheEntry> cache_;
  uint64_t params_epoch_ = 0;
  ScratchArena arena_;
};

struct DecimaTrainStats {
  std::vector<double> episode_avg_latency;
  std::vector<double> episode_reward;
};

/// REINFORCE trainer for Decima (average-latency reward only, per the
/// paper's contribution #4 contrast).
class DecimaTrainer {
 public:
  DecimaTrainer(DecimaModel* model, SimEngine* engine, int episodes,
                double learning_rate = 1e-3, uint64_t seed = 41);

  double TrainOneEpisode(const std::vector<QuerySubmission>& workload);
  DecimaTrainStats Train(
      const std::function<std::vector<QuerySubmission>(int, Rng*)>& factory);

 private:
  DecimaModel* model_;
  SimEngine* engine_;
  int episodes_;
  DecimaScheduler agent_;
  Adam optimizer_;
  Rng rng_;
  std::vector<double> baseline_;
  std::vector<bool> baseline_init_;
  DecimaTrainStats stats_;
};

}  // namespace lsched

#endif  // LSCHED_SCHED_DECIMA_H_

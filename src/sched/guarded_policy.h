#ifndef LSCHED_SCHED_GUARDED_POLICY_H_
#define LSCHED_SCHED_GUARDED_POLICY_H_

#include <string>

#include "exec/scheduler.h"
#include "exec/scheduling_context.h"
#include "obs/metrics.h"
#include "sched/heuristics.h"

namespace lsched {

/// Failure-isolation wrapper around an arbitrary (typically learned)
/// scheduling policy (DESIGN.md §10).
///
/// A learned policy is untrusted code on the hot path of every scheduling
/// event: it can throw (a model file went missing mid-run), stall (an
/// oversized inference batch), or emit garbage (a pipeline choice for a
/// query that already left the system). GuardedPolicy makes every such
/// failure non-fatal:
///
///  * the inner Schedule() runs inside try/catch,
///  * its wall time (plus any fault-injected simulated delay) is checked
///    against a decision-latency budget,
///  * the returned decision is validated against the context — every
///    pipeline/parallelism choice must reference a LIVE query and (for
///    pipelines) an in-range, currently-schedulable root operator.
///
/// On any failure the event is answered by FIFO instead, the fallback is
/// recorded in the decision log (event "guard_fallback") and counted in
/// `sched.fallback_total`. After `sticky_after` consecutive failures the
/// guard goes *sticky* — FIFO answers directly and the inner policy is only
/// probed every `probe_interval` events; one successful, valid probe
/// un-sticks it (probe-based recovery).
class GuardedPolicy : public Scheduler {
 public:
  struct Config {
    /// Max wall seconds for one inner Schedule() call. 0 disables the
    /// budget (the default: a wall-clock budget would make simulator runs
    /// timing-dependent; chaos tests inject deterministic `policy_decide`
    /// kDelay faults instead, whose param counts against this budget as
    /// simulated delay).
    double decision_budget_seconds = 0.0;
    /// Consecutive failures before the guard goes sticky.
    int sticky_after = 3;
    /// While sticky, probe the inner policy every this many events.
    int probe_interval = 16;
  };

  /// `inner` is non-owning and must outlive the wrapper.
  explicit GuardedPolicy(Scheduler* inner) : GuardedPolicy(inner, Config()) {}
  GuardedPolicy(Scheduler* inner, Config config);

  std::string name() const override;
  void Reset() override;
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override;
  using Scheduler::Schedule;
  void OnQueryCompleted(QueryId query, double latency) override;

  /// --- introspection (tests, chaos harness) ------------------------------
  int64_t fallback_count() const { return fallback_count_; }
  int consecutive_failures() const { return consecutive_failures_; }
  bool sticky() const { return sticky_; }

 private:
  /// True when `decision` only references live queries with valid,
  /// schedulable roots and sane parallelism caps.
  static bool ValidDecision(const SchedulingDecision& decision,
                            const SchedulingContext& ctx);

  SchedulingDecision Fallback(const char* reason, const SchedulingEvent& event,
                              const SchedulingContext& ctx);

  Scheduler* inner_;
  Config config_;
  FifoScheduler fifo_;

  int64_t fallback_count_ = 0;
  int consecutive_failures_ = 0;
  bool sticky_ = false;
  int64_t events_while_sticky_ = 0;
  obs::Counter* fallback_total_;  ///< sched.fallback_total
};

}  // namespace lsched

#endif  // LSCHED_SCHED_GUARDED_POLICY_H_

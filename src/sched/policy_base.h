#ifndef LSCHED_SCHED_POLICY_BASE_H_
#define LSCHED_SCHED_POLICY_BASE_H_

#include <limits>
#include <vector>

#include "exec/scheduler.h"
#include "exec/scheduling_context.h"

namespace lsched {

/// Shared base for the heuristic baselines: the free-thread / runnable-work
/// bookkeeping that used to be copy-pasted across the six heuristics lives
/// here, expressed against the incremental SchedulingContext (API v2).
///
/// Subclasses override `Schedule(event, const SchedulingContext&)`; the
/// `using` declaration keeps the legacy SystemState overload visible on the
/// concrete type (C++ name hiding would otherwise shadow it).
class HeuristicPolicy : public Scheduler {
 public:
  using Scheduler::Schedule;

 protected:
  /// Launches every currently-schedulable operator of `q` as a full
  /// pipeline.
  static void ScheduleAllOps(const QueryState* q, SchedulingDecision* d);

  /// Grants `query` the entire thread pool.
  static void GrantFullPool(const SchedulingContext& ctx, QueryId query,
                            SchedulingDecision* d);

  enum class ShareRounding {
    kCeil,     ///< work-conserving fair shares (spare capacity handed out)
    kNearest,  ///< largest-remainder-style proportional shares
  };

  /// Splits the thread pool across all live queries proportionally to
  /// `weights` (aligned with ctx.queries()); every cap is at least 1.
  /// A non-positive weight sum grants every query the full pool. When
  /// `schedule_all_ops` is set, every query's schedulable operators are
  /// also launched as full pipelines.
  static void AllocateProportionalShares(const SchedulingContext& ctx,
                                         const std::vector<double>& weights,
                                         ShareRounding rounding,
                                         bool schedule_all_ops,
                                         SchedulingDecision* d);

  /// The query with the highest `score` among those with schedulable work,
  /// or nullptr if none (ties keep the earliest query in context order).
  template <typename ScoreFn>
  static QueryState* BestSchedulableQuery(const SchedulingContext& ctx,
                                          double* best_score,
                                          ScoreFn&& score) {
    QueryState* best = nullptr;
    double bs = -std::numeric_limits<double>::infinity();
    for (QueryState* q : ctx.queries()) {
      if (q->SchedulableOps().empty()) continue;
      const double s = score(*q);
      if (s > bs) {
        bs = s;
        best = q;
      }
    }
    if (best_score != nullptr) *best_score = bs;
    return best;
  }
};

}  // namespace lsched

#endif  // LSCHED_SCHED_POLICY_BASE_H_

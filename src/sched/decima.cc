#include "sched/decima.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <utility>

#include "nn/autograd.h"
#include "nn/inference.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace lsched {

DecimaModel::DecimaModel(DecimaConfig config) : config_(std::move(config)) {
  Rng rng(config_.seed);
  const int d = config_.hidden_dim;
  const int sd = config_.summary_dim;
  proj = Linear(&store_, "decima/proj", kNodeFeatureDim, d, &rng);
  mp_self = Linear(&store_, "decima/mp_self", d, d, &rng);
  mp_child = Linear(&store_, "decima/mp_child", d, d, &rng);
  query_summary = Mlp(&store_, "decima/query_summary", {d, sd, sd}, &rng);
  global_summary = Mlp(&store_, "decima/global_summary", {sd, sd, sd}, &rng);
  node_head = Mlp(&store_, "decima/node_head", {d + sd, config_.head_hidden, 1},
                  &rng);
  par_head =
      Mlp(&store_, "decima/par_head",
          {sd + sd + kQueryFeatureDim, config_.head_hidden,
           static_cast<int>(config_.parallelism_fractions.size())},
          &rng);
}

namespace {

/// Version-cacheable slice of one query: everything except query_features
/// (thread occupancy, which changes every event). All inputs here only move
/// when the query is dirtied — an operator gets scheduled or a work order
/// completes — so the SchedulingContext's per-query version keys a cache.
void ExtractQueryStructuralDecima(const QueryState& q, DecimaQueryFeatures* f,
                                  std::vector<int>* runnable_ops) {
  const QueryPlan& plan = q.plan();
  f->qid = q.id();
  f->num_nodes = static_cast<int>(plan.num_nodes());
  f->topo_order = plan.TopologicalOrder();
  f->child_node.assign(plan.num_nodes(), {-1, -1});
  f->node_features.clear();
  runnable_ops->clear();
  for (size_t i = 0; i < plan.num_nodes(); ++i) {
    const int op = static_cast<int>(i);
    const PlanNode& node = plan.node(op);
    // Black-box task features only: counts, durations, progress. No
    // operator types, columns, or pipelining annotations.
    const double remaining = q.RemainingWorkOrders(op);
    const double planned =
        std::max(1.0, static_cast<double>(node.num_work_orders));
    // Decima's no-pipelining runnability: all producers fully done.
    bool runnable = !q.op_completed(op) && !q.op_scheduled(op);
    for (int e : node.in_edges) {
      if (!q.op_completed(plan.edge(e).producer)) runnable = false;
    }
    f->node_features.push_back(
        {std::log1p(remaining) * 0.2, 1.0 - remaining / planned,
         std::log1p(q.EstimateRemainingSeconds(op)),
         q.op_scheduled(op) ? 1.0 : 0.0, runnable ? 1.0 : 0.0});
    int slot = 0;
    for (int e : node.in_edges) {
      if (slot < 2) {
        f->child_node[i][slot++] = plan.edge(e).producer;
      }
    }
    if (runnable) runnable_ops->push_back(op);
  }
}

}  // namespace

DecimaStateFeatures DecimaScheduler::ExtractFeatures(
    const SystemState& state) {
  DecimaStateFeatures out;
  out.time = state.now;
  out.total_threads = static_cast<int>(state.threads.size());
  const double total = std::max<double>(1.0, out.total_threads);
  int free_threads = 0;
  for (const ThreadInfo& t : state.threads) {
    if (!t.busy) ++free_threads;
  }

  std::vector<int> runnable;
  for (size_t qi = 0; qi < state.queries.size(); ++qi) {
    const QueryState* q = state.queries[qi];
    DecimaQueryFeatures f;
    ExtractQueryStructuralDecima(*q, &f, &runnable);
    for (int op : runnable) {
      out.candidates.push_back({static_cast<int>(qi), op});
    }
    f.query_features = {static_cast<double>(q->assigned_threads()) / total,
                        static_cast<double>(free_threads) / total};
    out.queries.push_back(std::move(f));
  }
  return out;
}

namespace {

struct DecimaEncoded {
  std::vector<std::vector<Var>> node_emb;  ///< per query, per node
  std::vector<Var> query_emb;              ///< per query summary
  Var global_emb;
};

DecimaEncoded Encode(DecimaModel* model, const DecimaStateFeatures& state,
                     Tape* tape) {
  DecimaEncoded enc;
  const int sd = model->config().summary_dim;
  for (const DecimaQueryFeatures& q : state.queries) {
    std::vector<Var> x;
    x.reserve(static_cast<size_t>(q.num_nodes));
    for (int i = 0; i < q.num_nodes; ++i) {
      Var f = tape->Constant(
          Matrix::FromRow(q.node_features[static_cast<size_t>(i)]));
      x.push_back(tape->Relu(model->proj.Forward(tape, f)));
    }
    // Sequential message passing: within one iteration, children computed
    // earlier in the topological sweep feed their parents (Decima's scheme
    // — the source of the over-smoothing LSched's TCN avoids, §4.2.1).
    for (int it = 0; it < model->config().num_mp_iterations; ++it) {
      for (int i : q.topo_order) {
        Var h = model->mp_self.Forward(tape, x[static_cast<size_t>(i)]);
        for (int s = 0; s < 2; ++s) {
          const int child = q.child_node[static_cast<size_t>(i)][s];
          if (child < 0) continue;
          h = tape->Add(
              h, model->mp_child.Forward(tape, x[static_cast<size_t>(child)]));
        }
        x[static_cast<size_t>(i)] = tape->Relu(h);
      }
    }
    Var sum;
    for (int i = 0; i < q.num_nodes; ++i) {
      sum = i == 0 ? x[static_cast<size_t>(i)]
                   : tape->Add(sum, x[static_cast<size_t>(i)]);
    }
    enc.query_emb.push_back(model->query_summary.Forward(tape, sum));
    enc.node_emb.push_back(std::move(x));
  }
  Var gsum;
  for (size_t qi = 0; qi < enc.query_emb.size(); ++qi) {
    gsum = qi == 0 ? enc.query_emb[qi] : tape->Add(gsum, enc.query_emb[qi]);
  }
  if (enc.query_emb.empty()) gsum = tape->Constant(Matrix(1, sd, 0.0));
  enc.global_emb = model->global_summary.Forward(tape, gsum);
  return enc;
}

struct DecimaForward {
  Var node_logprobs;              ///< over candidates
  std::vector<Var> par_logprobs;  ///< per candidate
};

DecimaForward Forward(DecimaModel* model, const DecimaStateFeatures& state,
                      const DecimaEncoded& enc, Tape* tape) {
  DecimaForward out;
  std::vector<Var> scores;
  for (const auto& [qi, op] : state.candidates) {
    Var in = tape->ConcatCols({enc.node_emb[static_cast<size_t>(qi)]
                                           [static_cast<size_t>(op)],
                               enc.query_emb[static_cast<size_t>(qi)]});
    scores.push_back(model->node_head.Forward(tape, in));
    Var qf = tape->Constant(Matrix::FromRow(
        state.queries[static_cast<size_t>(qi)].query_features));
    Var par_in = tape->ConcatCols(
        {enc.global_emb, enc.query_emb[static_cast<size_t>(qi)], qf});
    out.par_logprobs.push_back(
        tape->LogSoftmaxRow(model->par_head.Forward(tape, par_in)));
  }
  out.node_logprobs = tape->LogSoftmaxRow(tape->ConcatCols(scores));
  return out;
}

int SampleSpan(const double* logprobs, int n, Rng* rng) {
  std::vector<double> p(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) {
    p[static_cast<size_t>(c)] = std::exp(logprobs[c]);
  }
  const size_t idx = rng->WeightedIndex(p);
  return idx >= p.size() ? 0 : static_cast<int>(idx);
}

int SampleRow(const Matrix& logprobs, Rng* rng) {
  return SampleSpan(logprobs.data(), logprobs.cols(), rng);
}

int ArgmaxSpan(const double* v, int n) {
  int best = 0;
  for (int c = 1; c < n; ++c) {
    if (v[c] > v[best]) best = c;
  }
  return best;
}

int ArgmaxRow(const Matrix& m) { return ArgmaxSpan(m.data(), m.cols()); }

void AddRowInPlace(double* dst, const double* src, int n) {
  for (int c = 0; c < n; ++c) dst[c] += src[c];
}

/// Tape-free per-query GCN encode, bit-identical to Encode()'s per-query
/// block: batched projection, row-wise sequential message passing (later
/// topo nodes read already-updated child rows, exactly like the tape
/// sweep), ordered node sum, query summary. The outputs are owned copies —
/// they outlive the per-decision arena and live in the scheduler's cache.
void EncodeQueryServingDecima(DecimaModel* model,
                              const DecimaQueryFeatures& q,
                              ScratchArena* arena, Matrix* node_emb,
                              Matrix* query_emb) {
  const int d = model->config().hidden_dim;
  const int n = q.num_nodes;
  Matrix* feats = arena->Alloc(n, DecimaModel::kNodeFeatureDim);
  for (int i = 0; i < n; ++i) {
    const std::vector<double>& f = q.node_features[static_cast<size_t>(i)];
    std::copy(f.begin(), f.end(),
              feats->data() + static_cast<size_t>(i) * feats->cols());
  }
  Matrix* x = arena->Alloc(n, d);
  LinearForwardInto(model->proj, *feats, x);
  ReluInPlace(x);

  Matrix* xrow = arena->Alloc(1, d);
  Matrix* h = arena->Alloc(1, d);
  Matrix* tmp = arena->Alloc(1, d);
  for (int it = 0; it < model->config().num_mp_iterations; ++it) {
    for (int i : q.topo_order) {
      double* row = x->data() + static_cast<size_t>(i) * d;
      std::copy(row, row + d, xrow->data());
      LinearForwardInto(model->mp_self, *xrow, h);
      for (int s = 0; s < 2; ++s) {
        const int child = q.child_node[static_cast<size_t>(i)][s];
        if (child < 0) continue;
        const double* crow = x->data() + static_cast<size_t>(child) * d;
        std::copy(crow, crow + d, xrow->data());
        LinearForwardInto(model->mp_child, *xrow, tmp);
        AddRowInPlace(h->data(), tmp->data(), d);
      }
      ReluInPlace(h);
      std::copy(h->data(), h->data() + d, row);
    }
  }

  Matrix* sum = arena->Alloc(1, d);
  std::copy(x->data(), x->data() + d, sum->data());
  for (int i = 1; i < n; ++i) {
    AddRowInPlace(sum->data(), x->data() + static_cast<size_t>(i) * d, d);
  }
  *query_emb = *MlpForward(model->query_summary, *sum, arena);
  *node_emb = *x;
}

}  // namespace

DecimaScheduler::DecimaScheduler(DecimaModel* model, uint64_t seed)
    : model_(model), rng_(seed) {}

void DecimaScheduler::Reset() {
  experiences_.clear();
  cache_.clear();
}

DecimaScheduler::CacheEntry& DecimaScheduler::GetCacheEntry(
    const QueryState& q, uint64_t version) {
  CacheEntry& e = cache_[q.id()];
  // Version 0 means "untracked" (e.g. a context materialized from a bare
  // snapshot): never trust the cache for it.
  if (e.version == version && version != 0) return e;
  e.version = version;
  ExtractQueryStructuralDecima(q, &e.features, &e.runnable_ops);
  e.encoded = false;
  return e;
}

void DecimaScheduler::EnsureEncoded(CacheEntry* entry) {
  if (entry->encoded) return;
  EncodeQueryServingDecima(model_, entry->features, &arena_,
                           &entry->node_emb, &entry->query_emb);
  entry->encoded = true;
}

SchedulingDecision DecimaScheduler::Schedule(const SchedulingEvent& event,
                                             const SystemState& state) {
  (void)event;
  SchedulingDecision decision;
  DecimaStateFeatures features = ExtractFeatures(state);
  if (features.candidates.empty()) return decision;

  Tape tape;
  DecimaEncoded enc;
  DecimaForward out;
  {
    obs::ScopedSpan span("sched.decima.forward", "sched", "candidates",
                         static_cast<int64_t>(features.candidates.size()));
    enc = Encode(model_, features, &tape);
    out = Forward(model_, features, enc, &tape);
  }

  int cand_idx, par_idx;
  if (sample_actions_) {
    cand_idx = SampleRow(out.node_logprobs.value(), &rng_);
    par_idx = SampleRow(
        out.par_logprobs[static_cast<size_t>(cand_idx)].value(), &rng_);
  } else {
    cand_idx = ArgmaxRow(out.node_logprobs.value());
    par_idx =
        ArgmaxRow(out.par_logprobs[static_cast<size_t>(cand_idx)].value());
  }

  obs::AnnotatePredictedScore(out.node_logprobs.value().at(0, cand_idx));

  const auto& [qi, op] = features.candidates[static_cast<size_t>(cand_idx)];
  const QueryId qid = features.queries[static_cast<size_t>(qi)].qid;
  // Degree is always 1: Decima cannot co-schedule pipelined operators.
  decision.pipelines.push_back(PipelineChoice{qid, op, 1});
  const double frac =
      model_->config().parallelism_fractions[static_cast<size_t>(par_idx)];
  decision.parallelism.push_back(ParallelismChoice{
      qid,
      std::max(1, static_cast<int>(std::lround(
                      frac * static_cast<double>(features.total_threads))))});

  if (record_experiences_) {
    DecimaExperience exp;
    exp.time = state.now;
    exp.num_running_queries = static_cast<int>(state.queries.size());
    exp.chosen_candidate = cand_idx;
    exp.chosen_parallelism = par_idx;
    exp.state = std::move(features);
    experiences_.push_back(std::move(exp));
  }
  return decision;
}

SchedulingDecision DecimaScheduler::Schedule(const SchedulingEvent& event,
                                             const SchedulingContext& ctx) {
  if (!use_fast_path_) {
    // Bridge to the legacy tape-based forward (old-path benchmarking).
    return Scheduler::Schedule(event, ctx);
  }
  (void)event;
  SchedulingDecision decision;
  arena_.Reset();

  // Online weight updates invalidate every cached embedding.
  const uint64_t epoch = model_->params()->value_epoch();
  if (epoch != params_epoch_) {
    cache_.clear();
    params_epoch_ = epoch;
  }

  const std::vector<QueryState*>& queries = ctx.queries();
  const int total_threads = ctx.total_threads();
  const double total = std::max<double>(1.0, total_threads);
  const int free_threads = ctx.num_free_threads();

  std::vector<CacheEntry*> entries;
  entries.reserve(queries.size());
  std::vector<std::vector<double>> qf(queries.size());
  std::vector<std::pair<int, int>> candidates;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const QueryState* q = queries[qi];
    CacheEntry& e = GetCacheEntry(*q, ctx.query_version(q->id()));
    entries.push_back(&e);
    qf[qi] = {static_cast<double>(q->assigned_threads()) / total,
              static_cast<double>(free_threads) / total};
    for (int op : e.runnable_ops) {
      candidates.push_back({static_cast<int>(qi), op});
    }
  }
  if (candidates.empty()) return decision;
  // Only now pay for the GCN: the median Decima event has nothing runnable
  // (strict all-producers-complete runnability) and must stay cheap.
  for (CacheEntry* e : entries) EnsureEncoded(e);

  Matrix* node_logprobs = nullptr;
  Matrix* par_logprobs = nullptr;
  {
    obs::ScopedSpan span("sched.decima.forward", "sched", "candidates",
                         static_cast<int64_t>(candidates.size()));
    static obs::Counter* batch_calls =
        obs::MetricsRegistry::Global().GetCounter("nn.batch_calls");
    static obs::Counter* batch_rows =
        obs::MetricsRegistry::Global().GetCounter("nn.batch_rows");
    batch_calls->Add(1);
    batch_rows->Add(static_cast<double>(candidates.size()));
    const int d = model_->config().hidden_dim;
    const int sd = model_->config().summary_dim;

    // Global summary over the (cached) per-query summaries, accumulated in
    // query order like the tape's sequential Adds.
    Matrix* gsum = arena_.Alloc(1, sd);
    for (size_t qi = 0; qi < entries.size(); ++qi) {
      const Matrix& qe = entries[qi]->query_emb;
      if (qi == 0) {
        std::copy(qe.data(), qe.data() + sd, gsum->data());
      } else {
        AddRowInPlace(gsum->data(), qe.data(), sd);
      }
    }
    Matrix* global_emb = MlpForward(model_->global_summary, *gsum, &arena_);

    const int num_cands = static_cast<int>(candidates.size());
    Matrix* node_in = arena_.Alloc(num_cands, d + sd);
    Matrix* par_in =
        arena_.Alloc(num_cands, sd + sd + DecimaModel::kQueryFeatureDim);
    for (int ci = 0; ci < num_cands; ++ci) {
      const auto& [qi, op] = candidates[static_cast<size_t>(ci)];
      const CacheEntry& e = *entries[static_cast<size_t>(qi)];
      double* nrow = node_in->data() + static_cast<size_t>(ci) * (d + sd);
      const double* emb =
          e.node_emb.data() + static_cast<size_t>(op) * d;
      std::copy(emb, emb + d, nrow);
      std::copy(e.query_emb.data(), e.query_emb.data() + sd, nrow + d);
      double* prow = par_in->data() +
                     static_cast<size_t>(ci) * par_in->cols();
      std::copy(global_emb->data(), global_emb->data() + sd, prow);
      std::copy(e.query_emb.data(), e.query_emb.data() + sd, prow + sd);
      const std::vector<double>& qfr = qf[static_cast<size_t>(qi)];
      std::copy(qfr.begin(), qfr.end(), prow + 2 * sd);
    }

    Matrix* scores = MlpForward(model_->node_head, *node_in, &arena_);
    node_logprobs = arena_.Alloc(1, num_cands);
    for (int ci = 0; ci < num_cands; ++ci) {
      node_logprobs->at(0, ci) = scores->at(ci, 0);
    }
    LogSoftmaxRowsInPlace(node_logprobs);
    par_logprobs = MlpForward(model_->par_head, *par_in, &arena_);
    LogSoftmaxRowsInPlace(par_logprobs);
  }

  const int num_par = par_logprobs->cols();
  int cand_idx, par_idx;
  if (sample_actions_) {
    cand_idx = SampleSpan(node_logprobs->data(), node_logprobs->cols(), &rng_);
    par_idx = SampleSpan(par_logprobs->data() +
                             static_cast<size_t>(cand_idx) * num_par,
                         num_par, &rng_);
  } else {
    cand_idx = ArgmaxSpan(node_logprobs->data(), node_logprobs->cols());
    par_idx = ArgmaxSpan(par_logprobs->data() +
                             static_cast<size_t>(cand_idx) * num_par,
                         num_par);
  }

  obs::AnnotatePredictedScore(node_logprobs->at(0, cand_idx));

  const auto& [qi, op] = candidates[static_cast<size_t>(cand_idx)];
  const QueryId qid = entries[static_cast<size_t>(qi)]->features.qid;
  // Degree is always 1: Decima cannot co-schedule pipelined operators.
  decision.pipelines.push_back(PipelineChoice{qid, op, 1});
  const double frac =
      model_->config().parallelism_fractions[static_cast<size_t>(par_idx)];
  decision.parallelism.push_back(ParallelismChoice{
      qid, std::max(1, static_cast<int>(std::lround(
                        frac * static_cast<double>(total_threads))))});

  if (record_experiences_) {
    // The trainer replays through the tape path; cached structural
    // features plus fresh query_features reconstruct a full extraction.
    DecimaExperience exp;
    exp.time = ctx.now();
    exp.num_running_queries = static_cast<int>(queries.size());
    exp.chosen_candidate = cand_idx;
    exp.chosen_parallelism = par_idx;
    exp.state.time = ctx.now();
    exp.state.total_threads = total_threads;
    exp.state.candidates = candidates;
    exp.state.queries.reserve(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      DecimaQueryFeatures f = entries[i]->features;
      f.query_features = std::move(qf[i]);
      exp.state.queries.push_back(std::move(f));
    }
    experiences_.push_back(std::move(exp));
  }

  if (cache_.size() > queries.size() * 2 + 16) {
    for (auto it = cache_.begin(); it != cache_.end();) {
      bool live = false;
      for (const QueryState* q : queries) {
        if (q->id() == it->first) {
          live = true;
          break;
        }
      }
      it = live ? std::next(it) : cache_.erase(it);
    }
  }
  return decision;
}

DecimaTrainer::DecimaTrainer(DecimaModel* model, SimEngine* engine,
                             int episodes, double learning_rate,
                             uint64_t seed)
    : model_(model),
      engine_(engine),
      episodes_(episodes),
      agent_(model, seed ^ 0x9747b28c),
      optimizer_(learning_rate),
      rng_(seed) {
  agent_.set_sample_actions(true);
  agent_.set_record_experiences(true);
}

double DecimaTrainer::TrainOneEpisode(
    const std::vector<QuerySubmission>& workload) {
  agent_.set_sample_actions(true);
  agent_.set_record_experiences(true);
  const EpisodeResult result = engine_->Run(workload, &agent_);
  std::vector<DecimaExperience> exps = std::move(agent_.experiences());
  agent_.experiences().clear();
  stats_.episode_avg_latency.push_back(result.avg_latency);
  if (exps.empty()) {
    stats_.episode_reward.push_back(0.0);
    return 0.0;
  }

  // Average-latency-only reward: r_d = -H_d (no tail term, unlike LSched).
  std::vector<double> rewards(exps.size(), 0.0);
  double prev = 0.0;
  for (size_t d = 0; d < exps.size(); ++d) {
    rewards[d] = -(exps[d].time - prev) *
                 static_cast<double>(exps[d].num_running_queries);
    prev = exps[d].time;
  }
  // Terminal interval after the last decision (same correction as LSched's
  // trainer, so the comparison stays apples-to-apples).
  if (result.makespan > prev) {
    rewards.back() -= (result.makespan - prev) *
                      static_cast<double>(exps.back().num_running_queries);
  }
  std::vector<double> returns(exps.size(), 0.0);
  double acc = 0.0;
  for (size_t i = exps.size(); i-- > 0;) {
    acc += rewards[i];
    returns[i] = acc;
  }
  double total_reward = 0.0;
  for (double r : rewards) total_reward += r;

  // Per-index EWMA baseline, then normalized advantages.
  if (baseline_.size() < returns.size()) {
    baseline_.resize(returns.size(), 0.0);
    baseline_init_.resize(returns.size(), false);
  }
  std::vector<double> adv(returns.size(), 0.0);
  for (size_t d = 0; d < returns.size(); ++d) {
    adv[d] = baseline_init_[d] ? returns[d] - baseline_[d] : 0.0;
    if (!baseline_init_[d]) {
      baseline_[d] = returns[d];
      baseline_init_[d] = true;
    } else {
      baseline_[d] = 0.9 * baseline_[d] + 0.1 * returns[d];
    }
  }
  const double sd = StdDev(adv);
  const double m = Mean(adv);
  if (sd > 1e-9) {
    for (double& a : adv) a = (a - m) / sd;
  }

  model_->params()->ZeroGrads();
  const double scale =
      1.0 / static_cast<double>(std::max<size_t>(exps.size(), 1));
  for (size_t d = 0; d < exps.size(); ++d) {
    const DecimaExperience& exp = exps[d];
    if (exp.state.candidates.empty()) continue;
    Tape tape;
    const DecimaEncoded enc = Encode(model_, exp.state, &tape);
    const DecimaForward out = Forward(model_, exp.state, enc, &tape);
    Var lp = tape.PickCol(out.node_logprobs, exp.chosen_candidate);
    lp = tape.Add(
        lp, tape.PickCol(
                out.par_logprobs[static_cast<size_t>(exp.chosen_candidate)],
                exp.chosen_parallelism));
    Var loss = tape.Scale(lp, -adv[d]);
    tape.Backward(loss, scale);
  }
  model_->params()->ClipGradNorm(5.0);
  optimizer_.Step(model_->params());

  stats_.episode_reward.push_back(total_reward);
  return total_reward;
}

DecimaTrainStats DecimaTrainer::Train(
    const std::function<std::vector<QuerySubmission>(int, Rng*)>& factory) {
  for (int ep = 0; ep < episodes_; ++ep) {
    TrainOneEpisode(factory(ep, &rng_));
  }
  return stats_;
}

}  // namespace lsched

#include "sched/selftune.h"

#include <algorithm>
#include <cmath>

namespace lsched {

SchedulingDecision SelfTuneScheduler::Schedule(const SchedulingEvent& event,
                                               const SchedulingContext& ctx) {
  (void)event;
  SchedulingDecision d;
  if (ctx.queries().empty()) return d;

  // Thread shares proportional to (1 / attained service)^exponent: stride
  // scheduling's decaying priorities (no cost estimates involved).
  std::vector<double> shares(ctx.queries().size(), 0.0);
  for (size_t i = 0; i < ctx.queries().size(); ++i) {
    const double attained = ctx.queries()[i]->attained_service();
    shares[i] = std::pow(1.0 / (1.0 + attained), params_.share_exponent);
  }
  AllocateProportionalShares(ctx, shares, ShareRounding::kNearest,
                             /*schedule_all_ops=*/false, &d);

  // Score all candidate execution roots; schedule the best ones, one per
  // free thread (the fixed priority policy).
  struct Candidate {
    QueryState* q;
    int root;
    int degree;
    double score;
  };
  std::vector<Candidate> candidates;
  for (QueryState* q : ctx.queries()) {
    const double age = ctx.now() - q->arrival_time();
    const double attained = q->attained_service();
    for (int root : q->SchedulableOps()) {
      const std::vector<int> chain = q->ValidPipelineFrom(root);
      double chain_cost = 0.0;
      for (int op : chain) chain_cost += q->EstimateRemainingSeconds(op);
      const double score = params_.w_age * age - params_.w_decay * attained +
                           params_.w_chain * chain_cost;
      int degree = static_cast<int>(std::lround(
          params_.pipeline_frac * static_cast<double>(chain.size())));
      degree = std::clamp(degree, 1, static_cast<int>(chain.size()));
      candidates.push_back(Candidate{q, root, degree, score});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  const int budget = std::max(1, ctx.num_free_threads());
  for (size_t i = 0;
       i < candidates.size() && static_cast<int>(i) < budget; ++i) {
    d.pipelines.push_back(PipelineChoice{candidates[i].q->id(),
                                         candidates[i].root,
                                         candidates[i].degree});
  }
  return d;
}

SelfTuneResult TuneSelfTune(
    SimEngine* engine,
    const std::vector<std::vector<QuerySubmission>>& training_workloads,
    int iterations, Rng* rng) {
  SelfTuneResult result;
  double best = 1e300;
  for (int it = 0; it < iterations; ++it) {
    SelfTuneParams p;
    if (it > 0) {  // iteration 0 evaluates the defaults
      p.w_age = rng->Uniform(0.0, 4.0);
      p.w_decay = rng->Uniform(0.0, 4.0);
      p.w_chain = rng->Uniform(0.0, 2.0);
      p.pipeline_frac = rng->Uniform(0.2, 1.0);
      p.share_exponent = rng->Uniform(0.0, 2.0);
    }
    SelfTuneScheduler sched(p);
    double total_latency = 0.0;
    int count = 0;
    for (const auto& workload : training_workloads) {
      const EpisodeResult r = engine->Run(workload, &sched);
      total_latency += r.avg_latency;
      ++count;
    }
    const double avg = count > 0 ? total_latency / count : 0.0;
    result.latency_per_iteration.push_back(avg);
    if (avg < best) {
      best = avg;
      result.best_params = p;
      result.best_avg_latency = avg;
    }
  }
  return result;
}

}  // namespace lsched

#ifndef LSCHED_SCHED_SELFTUNE_H_
#define LSCHED_SCHED_SELFTUNE_H_

#include <string>
#include <vector>

#include "exec/sim_engine.h"
#include "sched/policy_base.h"
#include "util/rng.h"

namespace lsched {

/// Hyper-parameters of the fixed priority-based scheduling policy that
/// SelfTune (Wagner et al., SIGMOD'21 — paper baseline 2) tunes per
/// workload. The *policy shape* is fixed; only these weights adapt.
/// Note: per the SelfTune paper, the policy is priority-decay (stride)
/// scheduling — a query's priority decays with the service it has already
/// attained, approximating shortest-job-first WITHOUT cost estimates. The
/// tunables weigh age (no-starvation), attained service (decay strength),
/// pipeline heaviness, pipelining depth, and thread-share skew.
struct SelfTuneParams {
  double w_age = 1.0;       ///< reward query wait time (fairness / no-starve)
  double w_decay = 1.0;     ///< penalize attained service (priority decay)
  double w_chain = 0.5;     ///< reward heavy pipelines (throughput)
  double pipeline_frac = 1.0;  ///< fraction of the max chain to pipeline
  double share_exponent = 1.0; ///< skew of thread shares toward young queries
};

/// Priority-based scheduler with tunable hyper-parameters.
class SelfTuneScheduler : public HeuristicPolicy {
 public:
  explicit SelfTuneScheduler(SelfTuneParams params = {}) : params_(params) {}

  std::string name() const override { return "SelfTune"; }
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override;
  using HeuristicPolicy::Schedule;

  const SelfTuneParams& params() const { return params_; }
  void set_params(SelfTuneParams p) { params_ = p; }

 private:
  SelfTuneParams params_;
};

/// Result of a tuning run.
struct SelfTuneResult {
  SelfTuneParams best_params;
  double best_avg_latency = 0.0;
  std::vector<double> latency_per_iteration;
};

/// Tunes SelfTuneParams for the given training workloads by iterated random
/// search (the constrained-optimization hyper-parameter tuning of the
/// SelfTune paper, reduced to its observable behaviour: pick the
/// configuration minimizing average latency on the input workload).
SelfTuneResult TuneSelfTune(SimEngine* engine,
                            const std::vector<std::vector<QuerySubmission>>&
                                training_workloads,
                            int iterations, Rng* rng);

}  // namespace lsched

#endif  // LSCHED_SCHED_SELFTUNE_H_

#include "sched/guarded_policy.h"

#include <exception>
#include <utility>

#include "obs/decision_log.h"
#include "testing/faultpoint.h"
#include "util/clock.h"
#include "util/logging.h"

namespace lsched {

GuardedPolicy::GuardedPolicy(Scheduler* inner, Config config)
    : inner_(inner), config_(std::move(config)) {
  fallback_total_ =
      obs::MetricsRegistry::Global().GetCounter("sched.fallback_total");
}

std::string GuardedPolicy::name() const {
  return "Guarded(" + inner_->name() + ")";
}

void GuardedPolicy::Reset() {
  inner_->Reset();
  fifo_.Reset();
  consecutive_failures_ = 0;
  sticky_ = false;
  events_while_sticky_ = 0;
  // fallback_count_ is cumulative across episodes by design (mirrors the
  // process-wide sched.fallback_total counter).
}

void GuardedPolicy::OnQueryCompleted(QueryId query, double latency) {
  inner_->OnQueryCompleted(query, latency);
  fifo_.OnQueryCompleted(query, latency);
}

bool GuardedPolicy::ValidDecision(const SchedulingDecision& decision,
                                  const SchedulingContext& ctx) {
  for (const PipelineChoice& pc : decision.pipelines) {
    const QueryState* q = ctx.FindQuery(pc.query);
    if (q == nullptr || !ctx.IsQueryLive(pc.query)) return false;
    if (pc.root_op < 0 ||
        pc.root_op >= static_cast<int>(q->plan().num_nodes())) {
      return false;
    }
    if (!q->IsOpSchedulable(pc.root_op)) return false;
    if (pc.degree < 1) return false;
  }
  for (const ParallelismChoice& pc : decision.parallelism) {
    if (!ctx.IsQueryLive(pc.query)) return false;
    if (pc.max_threads < 0) return false;
  }
  return true;
}

SchedulingDecision GuardedPolicy::Fallback(const char* reason,
                                           const SchedulingEvent& event,
                                           const SchedulingContext& ctx) {
  ++fallback_count_;
  // Warn once per failure streak, not per event (a sticky guard would spam).
  if (consecutive_failures_ == 1) {
    LSCHED_LOG(Warning) << "GuardedPolicy: " << inner_->name()
                        << " failed (" << reason << "); degrading to FIFO";
  }
  if (obs::Enabled()) {
    fallback_total_->Add(1);
    obs::DecisionRecord rec;
    rec.time = ctx.now();
    rec.event = "guard_fallback";
    rec.policy = inner_->name();
    rec.candidates = reason;  // why the guard fired, e.g. "exception"
    rec.running_queries = static_cast<int>(ctx.queries().size());
    rec.free_threads = ctx.num_free_threads();
    rec.fallback = true;
    obs::DecisionLog::Global().Add(std::move(rec));
  }
  return fifo_.Schedule(event, ctx);
}

SchedulingDecision GuardedPolicy::Schedule(const SchedulingEvent& event,
                                           const SchedulingContext& ctx) {
  if (sticky_) {
    // Degraded mode: FIFO answers directly; probe the inner policy only
    // every probe_interval-th event.
    const bool probe =
        config_.probe_interval > 0 &&
        events_while_sticky_++ % config_.probe_interval == 0;
    if (!probe) return Fallback("sticky", event, ctx);
  }

  // Deterministic failure injection for the decision path: kError forces a
  // failure outright; kDelay/kStall add *simulated* seconds charged against
  // the decision budget (real sleeps would make sim runs nondeterministic).
  double simulated_delay = 0.0;
  bool forced_failure = false;
  if (const FaultAction fault =
          LSCHED_FAULT("policy_decide", event.query, ctx.now())) {
    if (fault.type == FaultType::kError) {
      forced_failure = true;
    } else {
      simulated_delay = fault.param;
    }
  }

  const char* reason = nullptr;
  SchedulingDecision decision;
  if (forced_failure) {
    reason = "injected_failure";
  } else {
    Stopwatch sw;
    try {
      decision = inner_->Schedule(event, ctx);
    } catch (const std::exception& e) {
      reason = "exception";
    } catch (...) {
      reason = "exception";
    }
    if (reason == nullptr && config_.decision_budget_seconds > 0.0 &&
        sw.ElapsedSeconds() + simulated_delay >
            config_.decision_budget_seconds) {
      reason = "decision_budget_exceeded";
    }
    if (reason == nullptr && !ValidDecision(decision, ctx)) {
      reason = "invalid_decision";
    }
  }

  if (reason != nullptr) {
    ++consecutive_failures_;
    if (!sticky_ && consecutive_failures_ >= config_.sticky_after) {
      sticky_ = true;
      events_while_sticky_ = 1;  // this event already probed
      LSCHED_LOG(Warning) << "GuardedPolicy: " << inner_->name() << " failed "
                          << consecutive_failures_
                          << " consecutive events; guard is now sticky";
    }
    return Fallback(reason, event, ctx);
  }

  // Success: a valid decision in budget. A probing sticky guard recovers.
  consecutive_failures_ = 0;
  if (sticky_) {
    sticky_ = false;
    events_while_sticky_ = 0;
    LSCHED_LOG(Info) << "GuardedPolicy: " << inner_->name()
                     << " recovered; leaving degraded mode";
  }
  return decision;
}

}  // namespace lsched

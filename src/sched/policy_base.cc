#include "sched/policy_base.h"

#include <algorithm>
#include <cmath>

namespace lsched {

void HeuristicPolicy::ScheduleAllOps(const QueryState* q,
                                     SchedulingDecision* d) {
  for (int root : q->SchedulableOps()) {
    const int degree = static_cast<int>(q->ValidPipelineFrom(root).size());
    d->pipelines.push_back(PipelineChoice{q->id(), root, degree});
  }
}

void HeuristicPolicy::GrantFullPool(const SchedulingContext& ctx,
                                    QueryId query, SchedulingDecision* d) {
  d->parallelism.push_back(ParallelismChoice{query, ctx.total_threads()});
}

void HeuristicPolicy::AllocateProportionalShares(
    const SchedulingContext& ctx, const std::vector<double>& weights,
    ShareRounding rounding, bool schedule_all_ops, SchedulingDecision* d) {
  const std::vector<QueryState*>& queries = ctx.queries();
  const int total = ctx.total_threads();
  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;
  for (size_t i = 0; i < queries.size(); ++i) {
    int cap = total;
    if (weight_sum > 0.0) {
      const double share =
          static_cast<double>(total) * weights[i] / weight_sum;
      cap = std::max(1, static_cast<int>(rounding == ShareRounding::kCeil
                                             ? std::ceil(share)
                                             : std::lround(share)));
    }
    d->parallelism.push_back(ParallelismChoice{queries[i]->id(), cap});
    if (schedule_all_ops) ScheduleAllOps(queries[i], d);
  }
}

}  // namespace lsched

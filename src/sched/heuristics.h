#ifndef LSCHED_SCHED_HEURISTICS_H_
#define LSCHED_SCHED_HEURISTICS_H_

#include <string>

#include "sched/policy_base.h"

namespace lsched {

/// FIFO: runs queries strictly in arrival order and grants each as many
/// threads as are available, stalling later arrivals (paper §7.2 calls this
/// the worst baseline). Pipelining enabled (full chains).
class FifoScheduler : public HeuristicPolicy {
 public:
  std::string name() const override { return "FIFO"; }
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override;
  using HeuristicPolicy::Schedule;
};

/// Carefully-tuned weighted fair scheduling (paper baseline 4): splits the
/// thread pool evenly across running queries (cap = max(1, T/Q)) and keeps
/// every query's schedulable operators running with full pipelines.
class FairScheduler : public HeuristicPolicy {
 public:
  explicit FairScheduler(double weight_by_cost = 0.0)
      : weight_by_cost_(weight_by_cost) {}
  std::string name() const override { return "Fair"; }
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override;
  using HeuristicPolicy::Schedule;

 private:
  /// 0 = equal weights; 1 = weights proportional to remaining work.
  double weight_by_cost_;
};

/// Shortest Job First over *dynamic* remaining-work estimates from the
/// execution monitor: the query with the least estimated remaining seconds
/// gets all free resources.
class SjfScheduler : public HeuristicPolicy {
 public:
  std::string name() const override { return "SJF"; }
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override;
  using HeuristicPolicy::Schedule;
};

/// Highest Priority First with static priorities fixed at arrival
/// (priority = inverse of the optimizer's total plan cost).
class HpfScheduler : public HeuristicPolicy {
 public:
  std::string name() const override { return "HPF"; }
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override;
  using HeuristicPolicy::Schedule;
};

/// Critical-path pipelining heuristic (paper Fig. 1, [19]): at each event,
/// launch the schedulable pipeline carrying the most aggregate work, with
/// aggressive (maximal) pipelining.
class CriticalPathScheduler : public HeuristicPolicy {
 public:
  std::string name() const override { return "CriticalPath"; }
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override;
  using HeuristicPolicy::Schedule;
};

/// Quickstep's built-in policy (paper baseline 3): probabilistic
/// proportional-priority sharing — thread caps allocated proportionally to
/// each query's estimated remaining work orders, all active nodes kept
/// scheduled with pipelining.
class QuickstepScheduler : public HeuristicPolicy {
 public:
  std::string name() const override { return "Quickstep"; }
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override;
  using HeuristicPolicy::Schedule;
};

}  // namespace lsched

#endif  // LSCHED_SCHED_HEURISTICS_H_

#include "sched/heuristics.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace lsched {

SchedulingDecision FifoScheduler::Schedule(const SchedulingEvent& event,
                                           const SchedulingContext& ctx) {
  (void)event;
  SchedulingDecision d;
  // Strict arrival order: find the oldest query that still has schedulable
  // work; grant it everything. Later queries wait.
  std::vector<QueryState*> order = ctx.queries();
  std::sort(order.begin(), order.end(),
            [](const QueryState* a, const QueryState* b) {
              return a->arrival_time() < b->arrival_time();
            });
  for (QueryState* q : order) {
    if (!q->SchedulableOps().empty()) {
      ScheduleAllOps(q, &d);
      GrantFullPool(ctx, q->id(), &d);
      return d;
    }
    if (!q->completed()) {
      // Head-of-line query still running: FIFO does not look past it.
      return d;
    }
  }
  return d;
}

SchedulingDecision FairScheduler::Schedule(const SchedulingEvent& event,
                                           const SchedulingContext& ctx) {
  (void)event;
  SchedulingDecision d;
  if (ctx.queries().empty()) return d;

  std::vector<double> weights(ctx.queries().size(), 1.0);
  if (weight_by_cost_ > 0.0) {
    for (size_t i = 0; i < weights.size(); ++i) {
      weights[i] = 1.0 + weight_by_cost_ *
                             ctx.queries()[i]->EstimateQueryRemainingSeconds();
    }
  }
  // Ceil keeps fair sharing work-conserving: with more threads than
  // queries the spare capacity is still handed out.
  AllocateProportionalShares(ctx, weights, ShareRounding::kCeil,
                             /*schedule_all_ops=*/true, &d);
  return d;
}

SchedulingDecision SjfScheduler::Schedule(const SchedulingEvent& event,
                                          const SchedulingContext& ctx) {
  (void)event;
  SchedulingDecision d;
  double best_score = 0.0;
  QueryState* best =
      BestSchedulableQuery(ctx, &best_score, [](const QueryState& q) {
        return -q.EstimateQueryRemainingSeconds();
      });
  if (best != nullptr) {
    // Decision-log score: negated remaining-time estimate (higher = better).
    obs::AnnotatePredictedScore(best_score);
    ScheduleAllOps(best, &d);
    GrantFullPool(ctx, best->id(), &d);
  }
  return d;
}

SchedulingDecision HpfScheduler::Schedule(const SchedulingEvent& event,
                                          const SchedulingContext& ctx) {
  (void)event;
  SchedulingDecision d;
  double best_score = 0.0;
  QueryState* best =
      BestSchedulableQuery(ctx, &best_score, [](const QueryState& q) {
        // Static priority fixed by the optimizer's plan cost at arrival.
        return 1.0 / (1.0 + q.plan().TotalEstimatedCost());
      });
  if (best != nullptr) {
    obs::AnnotatePredictedScore(best_score);
    ScheduleAllOps(best, &d);
    GrantFullPool(ctx, best->id(), &d);
  }
  return d;
}

SchedulingDecision CriticalPathScheduler::Schedule(
    const SchedulingEvent& event, const SchedulingContext& ctx) {
  (void)event;
  SchedulingDecision d;
  // Pick the schedulable pipeline with the most aggregate remaining work,
  // pipeline it aggressively (full chain).
  QueryState* best_q = nullptr;
  int best_root = -1;
  int best_degree = 1;
  double best_work = -1.0;
  for (QueryState* q : ctx.queries()) {
    for (int root : q->SchedulableOps()) {
      const std::vector<int> chain = q->ValidPipelineFrom(root);
      double work = 0.0;
      for (int op : chain) {
        work += q->EstimateRemainingSeconds(op);
      }
      if (work > best_work) {
        best_work = work;
        best_q = q;
        best_root = root;
        best_degree = static_cast<int>(chain.size());
      }
    }
  }
  if (best_q != nullptr) {
    obs::AnnotatePredictedScore(best_work);
    d.pipelines.push_back(PipelineChoice{best_q->id(), best_root, best_degree});
    GrantFullPool(ctx, best_q->id(), &d);
  }
  return d;
}

SchedulingDecision QuickstepScheduler::Schedule(const SchedulingEvent& event,
                                                const SchedulingContext& ctx) {
  (void)event;
  SchedulingDecision d;
  if (ctx.queries().empty()) return d;

  // Proportional-priority allocation by remaining work orders (largest
  // remainder method), then keep all active nodes scheduled.
  std::vector<double> remaining(ctx.queries().size(), 0.0);
  for (size_t i = 0; i < ctx.queries().size(); ++i) {
    const QueryState* q = ctx.queries()[i];
    double r = 0.0;
    for (size_t op = 0; op < q->plan().num_nodes(); ++op) {
      r += q->RemainingWorkOrders(static_cast<int>(op));
    }
    remaining[i] = r;
  }
  AllocateProportionalShares(ctx, remaining, ShareRounding::kNearest,
                             /*schedule_all_ops=*/true, &d);
  return d;
}

}  // namespace lsched

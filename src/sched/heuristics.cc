#include "sched/heuristics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.h"

namespace lsched {

namespace {

/// Launches every currently-schedulable operator of `q` as a full pipeline.
void ScheduleAllOps(QueryState* q, SchedulingDecision* d) {
  for (int root : q->SchedulableOps()) {
    const int degree = static_cast<int>(q->ValidPipelineFrom(root).size());
    d->pipelines.push_back(PipelineChoice{q->id(), root, degree});
  }
}

}  // namespace

SchedulingDecision FifoScheduler::Schedule(const SchedulingEvent& event,
                                           const SystemState& state) {
  (void)event;
  SchedulingDecision d;
  // Strict arrival order: find the oldest query that still has schedulable
  // work; grant it everything. Later queries wait.
  std::vector<QueryState*> order = state.queries;
  std::sort(order.begin(), order.end(),
            [](const QueryState* a, const QueryState* b) {
              return a->arrival_time() < b->arrival_time();
            });
  for (QueryState* q : order) {
    if (!q->SchedulableOps().empty()) {
      ScheduleAllOps(q, &d);
      d.parallelism.push_back(
          ParallelismChoice{q->id(), static_cast<int>(state.threads.size())});
      return d;
    }
    if (!q->completed()) {
      // Head-of-line query still running: FIFO does not look past it.
      return d;
    }
  }
  return d;
}

SchedulingDecision FairScheduler::Schedule(const SchedulingEvent& event,
                                           const SystemState& state) {
  (void)event;
  SchedulingDecision d;
  if (state.queries.empty()) return d;
  const int total = static_cast<int>(state.threads.size());

  double total_weight = 0.0;
  std::vector<double> weights(state.queries.size(), 1.0);
  for (size_t i = 0; i < state.queries.size(); ++i) {
    if (weight_by_cost_ > 0.0) {
      weights[i] = 1.0 + weight_by_cost_ *
                             state.queries[i]->EstimateQueryRemainingSeconds();
    }
    total_weight += weights[i];
  }
  for (size_t i = 0; i < state.queries.size(); ++i) {
    QueryState* q = state.queries[i];
    // Ceil keeps fair sharing work-conserving: with more threads than
    // queries the spare capacity is still handed out.
    const int cap = std::max(
        1, static_cast<int>(std::ceil(static_cast<double>(total) *
                                      weights[i] / total_weight)));
    d.parallelism.push_back(ParallelismChoice{q->id(), cap});
    ScheduleAllOps(q, &d);
  }
  return d;
}

SchedulingDecision SjfScheduler::Schedule(const SchedulingEvent& event,
                                          const SystemState& state) {
  (void)event;
  SchedulingDecision d;
  QueryState* best = nullptr;
  double best_remaining = std::numeric_limits<double>::infinity();
  for (QueryState* q : state.queries) {
    if (q->SchedulableOps().empty()) continue;
    const double rem = q->EstimateQueryRemainingSeconds();
    if (rem < best_remaining) {
      best_remaining = rem;
      best = q;
    }
  }
  if (best != nullptr) {
    // Decision-log score: negated remaining-time estimate (higher = better).
    obs::AnnotatePredictedScore(-best_remaining);
    ScheduleAllOps(best, &d);
    d.parallelism.push_back(
        ParallelismChoice{best->id(), static_cast<int>(state.threads.size())});
  }
  return d;
}

SchedulingDecision HpfScheduler::Schedule(const SchedulingEvent& event,
                                          const SystemState& state) {
  (void)event;
  SchedulingDecision d;
  QueryState* best = nullptr;
  double best_priority = -1.0;
  for (QueryState* q : state.queries) {
    if (q->SchedulableOps().empty()) continue;
    // Static priority fixed by the optimizer's plan cost at arrival.
    const double priority = 1.0 / (1.0 + q->plan().TotalEstimatedCost());
    if (priority > best_priority) {
      best_priority = priority;
      best = q;
    }
  }
  if (best != nullptr) {
    obs::AnnotatePredictedScore(best_priority);
    ScheduleAllOps(best, &d);
    d.parallelism.push_back(
        ParallelismChoice{best->id(), static_cast<int>(state.threads.size())});
  }
  return d;
}

SchedulingDecision CriticalPathScheduler::Schedule(
    const SchedulingEvent& event, const SystemState& state) {
  (void)event;
  SchedulingDecision d;
  // Pick the schedulable pipeline with the most aggregate remaining work,
  // pipeline it aggressively (full chain).
  QueryState* best_q = nullptr;
  int best_root = -1;
  int best_degree = 1;
  double best_work = -1.0;
  for (QueryState* q : state.queries) {
    for (int root : q->SchedulableOps()) {
      const std::vector<int> chain = q->ValidPipelineFrom(root);
      double work = 0.0;
      for (int op : chain) {
        work += q->EstimateRemainingSeconds(op);
      }
      if (work > best_work) {
        best_work = work;
        best_q = q;
        best_root = root;
        best_degree = static_cast<int>(chain.size());
      }
    }
  }
  if (best_q != nullptr) {
    obs::AnnotatePredictedScore(best_work);
    d.pipelines.push_back(PipelineChoice{best_q->id(), best_root, best_degree});
    d.parallelism.push_back(ParallelismChoice{
        best_q->id(), static_cast<int>(state.threads.size())});
  }
  return d;
}

SchedulingDecision QuickstepScheduler::Schedule(const SchedulingEvent& event,
                                                const SystemState& state) {
  (void)event;
  SchedulingDecision d;
  if (state.queries.empty()) return d;
  const int total = static_cast<int>(state.threads.size());

  // Proportional-priority allocation by remaining work orders (largest
  // remainder method), then keep all active nodes scheduled.
  double total_remaining = 0.0;
  std::vector<double> remaining(state.queries.size(), 0.0);
  for (size_t i = 0; i < state.queries.size(); ++i) {
    const QueryState* q = state.queries[i];
    double r = 0.0;
    for (size_t op = 0; op < q->plan().num_nodes(); ++op) {
      r += q->RemainingWorkOrders(static_cast<int>(op));
    }
    remaining[i] = r;
    total_remaining += r;
  }
  for (size_t i = 0; i < state.queries.size(); ++i) {
    QueryState* q = state.queries[i];
    int cap = total;
    if (total_remaining > 0.0) {
      cap = std::max(1, static_cast<int>(std::lround(
                            static_cast<double>(total) * remaining[i] /
                            total_remaining)));
    }
    d.parallelism.push_back(ParallelismChoice{q->id(), cap});
    ScheduleAllOps(q, &d);
  }
  return d;
}

}  // namespace lsched

#ifndef LSCHED_TESTING_INVARIANTS_H_
#define LSCHED_TESTING_INVARIANTS_H_

#include <set>
#include <string>
#include <vector>

#include "exec/scheduler.h"
#include "exec/sim_engine.h"
#include "util/status.h"

namespace lsched {

/// Scheduler decorator that validates, at every Schedule() call, both the
/// SystemState snapshot the engine hands out and the SchedulingDecision the
/// wrapped policy returns. Violations are collected (not thrown) so tests
/// can run a whole episode and then assert `violations().empty()`.
///
/// State invariants checked:
///  - thread ids are unique; a busy thread names a live query and an idle
///    thread names none (no thread double-assignment). Exception: after a
///    kQueryCancelled event for a query, busy threads may keep naming it —
///    in-flight attempts drain (and are discarded) rather than being
///    preempted mid-kernel;
///  - each query's assigned_threads equals the number of threads currently
///    running it;
///  - queries in the snapshot are unique, arrived (arrival <= now), not
///    completed, and not in a terminal lifecycle state (a cancelled/failed
///    query must leave the snapshot immediately);
///  - event times are nondecreasing across invocations and an arrival event
///    references a query present in the snapshot (no scheduling of
///    unarrived queries).
///
/// Decision invariants checked (against the pre-decision state, tracking
/// ops scheduled earlier in the same decision so producer+consumer launched
/// together is not a false positive):
///  - every pipeline choice names a live (present AND non-terminal) query,
///    an in-range root operator, a schedulable root, and a degree >= 1;
///  - every parallelism choice names a live query and a cap >= 0.
class ValidatingScheduler : public Scheduler {
 public:
  /// Does not take ownership of `inner`.
  explicit ValidatingScheduler(Scheduler* inner) : inner_(inner) {}

  std::string name() const override { return "validating:" + inner_->name(); }
  void Reset() override;
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SystemState& state) override;
  /// API v2 entry point: validates a materialized snapshot plus the
  /// context's own incremental bookkeeping (free-thread counter, query
  /// index, nonzero versions), then hands the *context* to the inner
  /// policy so its fast path stays under test.
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override;
  void OnQueryCompleted(QueryId query, double latency) override {
    inner_->OnQueryCompleted(query, latency);
  }

  const std::vector<std::string>& violations() const { return violations_; }

 private:
  void CheckContext(const SchedulingContext& ctx);
  void CheckState(const SchedulingEvent& event, const SystemState& state);
  void CheckDecision(const SchedulingDecision& decision,
                     const SystemState& state);
  void AddViolation(std::string message);

  Scheduler* inner_;
  std::vector<std::string> violations_;
  /// Queries announced dead via kQueryCancelled events: their in-flight
  /// attempts may still hold threads while they drain.
  std::set<QueryId> terminated_;
  double last_event_time_ = 0.0;
  bool seen_event_ = false;
};

/// Post-hoc validation of one episode's telemetry:
///  - when final_statuses is populated it covers every query, every entry
///    is terminal, and the cancelled/failed counters match it;
///  - arrivals/completions/latencies have one entry per DONE query (all
///    `num_queries` of them absent lifecycle tracking) and
///    latency[i] == completion[i] - arrival[i];
///  - completions are nondecreasing (they are recorded in completion order)
///    and no query completes before it arrives;
///  - work-order conservation (DESIGN.md §10):
///    planned == completed + dropped,
///    dispatched == completed + failed + discarded, retries <= failed
///    (degenerating to planned == dispatched == completed without chaos);
///  - max in-flight work orders never exceeded `max_pool_size`;
///  - decision records are time-ordered with running-query counts in range,
///    one record per scheduler invocation;
///  - avg/p90 latency match a recomputation from query_latencies and the
///    makespan is not before the last completion.
Status ValidateEpisodeResult(const EpisodeResult& result, size_t num_queries,
                             int max_pool_size);

/// Compares every field of two EpisodeResults EXCEPT scheduler_wall_seconds
/// (real time inside Schedule(), inherently nondeterministic). Returns an
/// empty string when identical, else a description of the first difference.
/// Used by the determinism tests: same seed => byte-identical episode.
std::string DiffEpisodeResults(const EpisodeResult& a, const EpisodeResult& b);

}  // namespace lsched

#endif  // LSCHED_TESTING_INVARIANTS_H_

#ifndef LSCHED_TESTING_ORACLE_H_
#define LSCHED_TESTING_ORACLE_H_

#include <cstdint>
#include <vector>

#include "plan/query_plan.h"
#include "storage/catalog.h"
#include "util/status.h"

namespace lsched {

/// What the oracle computed for one query: the same sink summary RealEngine
/// reports in RealRunResult, plus per-node output row counts for debugging
/// differential mismatches.
struct OracleQueryResult {
  int64_t sink_rows = 0;
  double sink_checksum = 0.0;  ///< sum over sink rows of all column values
  std::vector<int64_t> node_output_rows;  ///< materialized rows per node
};

/// Single-threaded reference executor: walks a QueryPlan in topological
/// order and fully materializes every operator's output with naive,
/// obviously-correct kernels (no chunking, no work orders, no locks, no
/// scheduling). It is the ground truth the differential checker compares
/// RealEngine against, independent of scheduling policy and thread count.
///
/// Oracle contract (must hold for a plan to be differentially comparable —
/// the workload fuzzer only emits plans satisfying it):
///  - Sink row counts are compared exactly; checksums are order-invariant
///    sums, so operators may emit rows in any order but must emit the same
///    multiset of rows regardless of input chunking/interleaving.
///  - Operators whose output SET depends on consumption order are excluded
///    or constrained: kLimit and kWindow are excluded from fuzzing; kTopK
///    requires a tie-free sort column; kDistinct requires rows that are
///    functionally determined by the distinct key (project to the key
///    first).
///  - kMergeJoin requires its right (side) input to be globally sorted on
///    the join key (the engine binary-searches it; the oracle collects all
///    key matches).
///  - Generated data is integer-valued so that checksum sums are exact in
///    double precision under any summation order.
class OracleExecutor {
 public:
  /// `catalog` may be null only for plans without source/index operators.
  explicit OracleExecutor(const Catalog* catalog) : catalog_(catalog) {}

  /// Executes `plan` and returns its sink summary. Errors mirror the
  /// preconditions QueryExecution enforces (e.g. probe without build).
  Result<OracleQueryResult> Execute(const QueryPlan& plan) const;

 private:
  const Catalog* catalog_;
};

}  // namespace lsched

#endif  // LSCHED_TESTING_ORACLE_H_

#ifndef LSCHED_TESTING_DIFFERENTIAL_H_
#define LSCHED_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/scheduler.h"
#include "testing/fuzzer.h"

namespace lsched {

/// A scheduler construction recipe: the differential checker builds a FRESH
/// instance per engine run so no policy state leaks between runs.
struct NamedSchedulerFactory {
  std::string name;
  std::function<std::unique_ptr<Scheduler>()> make;
};

/// All heuristic baselines (FIFO, Fair, SJF, HPF, CriticalPath, Quickstep,
/// SelfTune). Cheap: safe to run over many fuzzed workloads.
std::vector<NamedSchedulerFactory> HeuristicSchedulerFactories();

/// The learned policies (LSched with an untrained tiny model, Decima
/// likewise) in greedy-serving mode. Each returned scheduler owns its model.
/// Slower per decision (NN forward passes) — use over fewer workloads.
std::vector<NamedSchedulerFactory> LearnedSchedulerFactories();

struct DifferentialOptions {
  /// RealEngine is run once per (scheduler, thread count) pair.
  std::vector<int> real_thread_counts = {1, 2, 8};
  /// Small chunks force many work orders even on tiny fuzzed tables.
  size_t chunk_rows = 128;
  /// Also run SimEngine (twice, for determinism) per scheduler.
  bool run_sim = true;
  int sim_threads = 4;
  FuzzerOptions fuzzer;
};

/// Outcome of a differential sweep. `mismatches` holds one human-readable
/// entry per divergence (oracle vs engine, invariant violation, or
/// nondeterminism); each embeds the per-workload seed so a single failing
/// workload can be replayed directly.
struct DifferentialReport {
  uint64_t seed = 0;
  int workloads_run = 0;
  int queries_run = 0;
  int real_engine_runs = 0;
  int sim_engine_runs = 0;
  std::vector<std::string> mismatches;

  bool ok() const { return mismatches.empty(); }

  /// One-paragraph outcome, always ending with the repro recipe
  /// (LSCHED_FUZZ_SEED=<seed> ctest -R differential_test ...). Designed to
  /// be embedded in a gtest failure message so a failing run is
  /// reproducible from the test log alone.
  std::string Summary() const;
};

/// Per-workload seed derivation (splitmix64 over base seed + index), exposed
/// so a failure report's workload seed can be replayed standalone:
/// `WorkloadFuzzer(WorkloadSeed(base, i)).NextWorkload()`.
uint64_t WorkloadSeed(uint64_t base_seed, int workload_index);

/// The differential checker (the heart of the harness): generates
/// `num_workloads` fuzzed workloads from `seed`, executes every query with
/// the single-threaded oracle, then runs each workload through RealEngine
/// under every (factory, thread count) combination — asserting identical
/// sink row counts and checksums — and through SimEngine twice per factory
/// — asserting byte-identical telemetry. Every engine run is wrapped in a
/// ValidatingScheduler and its EpisodeResult is checked with
/// ValidateEpisodeResult.
DifferentialReport RunDifferential(
    uint64_t seed, int num_workloads,
    const std::vector<NamedSchedulerFactory>& factories,
    const DifferentialOptions& options = {});

}  // namespace lsched

#endif  // LSCHED_TESTING_DIFFERENTIAL_H_

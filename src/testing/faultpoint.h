#ifndef LSCHED_TESTING_FAULTPOINT_H_
#define LSCHED_TESTING_FAULTPOINT_H_

// Deterministic, seed-driven fault injection (DESIGN.md §10).
//
// Engines and policies mark the places where failures can be injected with
// named fault points:
//
//   const FaultAction f = LSCHED_FAULT("work_order_exec", query_id, now);
//   if (f.type == FaultType::kError) { /* fail this attempt */ }
//
// A chaos run installs a FaultSchedule into the process-global FaultInjector;
// each rule in the schedule decides when its point fires (on the Nth matching
// hit, with probability p from a rule-local seeded RNG, inside a time
// window), so any chaos episode is replayable from (seed, schedule) alone.
// With -DLSCHED_FAULTS=OFF the macro compiles to a no-fault constant and the
// engines are byte-identical to a build that never heard of fault injection.
//
// Known fault points:
//   work_order_exec  both engines, before each work-order attempt executes
//   query_admit      both engines, at query arrival (kError rejects the query)
//   policy_decide    GuardedPolicy, before delegating to the wrapped policy

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace lsched {

#ifndef LSCHED_FAULTS_ENABLED
#define LSCHED_FAULTS_ENABLED 1
#endif

/// True when fault points are compiled in (-DLSCHED_FAULTS=ON, the default).
/// Release/production builds set it to false and every LSCHED_FAULT site
/// collapses to `FaultAction{}`.
inline constexpr bool kFaultsCompiledIn = LSCHED_FAULTS_ENABLED != 0;

enum class FaultType : uint8_t {
  kNone = 0,  ///< no fault — continue normally
  kError,     ///< the guarded operation fails (error status / rejection)
  kDelay,     ///< the operation is delayed by `param` seconds, then succeeds
  kStall,     ///< like kDelay but modelling a stuck worker (longer pauses)
};

const char* FaultTypeName(FaultType t);

/// What a fault point should do for one specific hit. Evaluates to false
/// in boolean context when no fault fires.
struct FaultAction {
  FaultType type = FaultType::kNone;
  double param = 0.0;  ///< seconds for kDelay/kStall; unused for kError

  explicit operator bool() const { return type != FaultType::kNone; }
};

/// One scripted fault: fires at a named point, optionally scoped to a query,
/// either deterministically (on the Nth matching hit / every Kth hit) or
/// probabilistically from a rule-local RNG seeded by the schedule.
struct FaultRule {
  std::string point;  ///< fault-point name ("work_order_exec", ...)
  int64_t query = -1; ///< only hits for this query id match; -1 = any query

  /// Firing condition (checked in this order):
  int nth_hit = 0;  ///< fire exactly on the Nth matching hit (1-based); 0=off
  int every = 0;    ///< fire on every Kth matching hit; 0=off
  double probability = 0.0;  ///< else fire with this probability per hit

  /// Only hits with `window_start <= now <= window_end` match.
  double window_start = 0.0;
  double window_end = std::numeric_limits<double>::infinity();
  /// Stop firing after this many fires (replay-stable storm bounding).
  int max_fires = std::numeric_limits<int>::max();

  FaultAction action{FaultType::kError, 0.0};
};

/// A replayable chaos script: rule-local RNGs are derived from `seed` at
/// Install() time, so the same (seed, rules) always fires identically given
/// the same sequence of Check() calls.
struct FaultSchedule {
  uint64_t seed = 0;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }
};

/// One fired fault, recorded for CI artifacts and replay debugging.
struct FaultEvent {
  std::string point;
  int64_t query = -1;
  double time = 0.0;
  FaultType type = FaultType::kNone;
  double param = 0.0;
};

/// Process-global fault injector. Check() is thread-safe (RealEngine workers
/// probe it concurrently); determinism is only guaranteed for
/// single-threaded probe sequences (SimEngine) or rules whose firing does
/// not depend on cross-thread hit interleaving (nth_hit/probability rules in
/// RealEngine fire in completion order, which is inherently racy — scope
/// such rules to a query and use probability 1.0 when the real engine must
/// fail deterministically).
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Installs `schedule`: seeds one RNG per rule from schedule.seed, resets
  /// all hit/fire counters and the fired-fault log, and arms the injector.
  void Install(FaultSchedule schedule);

  /// Disarms the injector and clears rules, counters, and the log.
  void Clear();

  /// Lock-free armed probe — the fast path the LSCHED_FAULT macro uses so
  /// un-armed runs never touch the mutex.
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Evaluates every matching rule for a hit of `point` at `now`; returns
  /// the first firing rule's action (kNone when nothing fires).
  FaultAction Check(const char* point, int64_t query, double now);

  /// --- introspection (tests, chaos CLI) ---------------------------------

  /// Matching probes / fired faults per point since the last Install().
  int64_t hits(const std::string& point) const;
  int64_t fires(const std::string& point) const;
  int64_t total_fires() const;

  /// Fired-fault log (bounded; oldest entries are kept). `dropped` reports
  /// how many fires did not fit.
  std::vector<FaultEvent> Log() const;
  int64_t dropped_log_entries() const;

  /// Writes the fired-fault log as one line per fire
  /// ("time point query type param"). Returns false on I/O error.
  bool WriteLog(const std::string& path) const;

 private:
  FaultInjector() = default;

  struct RuleState {
    FaultRule rule;
    Rng rng{0};
    int64_t hits = 0;
    int fires = 0;
  };

  static constexpr size_t kMaxLogEntries = 1 << 16;

  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};
  std::vector<RuleState> rules_;
  std::unordered_map<std::string, int64_t> point_hits_;
  std::unordered_map<std::string, int64_t> point_fires_;
  std::vector<FaultEvent> log_;
  int64_t log_dropped_ = 0;
};

#if LSCHED_FAULTS_ENABLED
/// Probes the fault point `point` for query `query` at engine time `now`.
/// Costs one relaxed atomic load when no schedule is installed.
#define LSCHED_FAULT(point, query, now)                                   \
  (::lsched::FaultInjector::Global().armed()                              \
       ? ::lsched::FaultInjector::Global().Check(                         \
             (point), static_cast<int64_t>(query), (now))                 \
       : ::lsched::FaultAction{})
#else
#define LSCHED_FAULT(point, query, now) \
  ((void)(query), (void)(now), ::lsched::FaultAction{})
#endif

}  // namespace lsched

#endif  // LSCHED_TESTING_FAULTPOINT_H_

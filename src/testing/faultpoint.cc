#include "testing/faultpoint.h"

#include <cstdio>

namespace lsched {

const char* FaultTypeName(FaultType t) {
  switch (t) {
    case FaultType::kNone:
      return "none";
    case FaultType::kError:
      return "error";
    case FaultType::kDelay:
      return "delay";
    case FaultType::kStall:
      return "stall";
  }
  return "?";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Install(FaultSchedule schedule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  rules_.reserve(schedule.rules.size());
  // Rule-local RNG streams derived from (schedule.seed, rule index):
  // splitmix-style mixing so rules never share a stream and the whole run
  // replays from the schedule alone.
  for (size_t i = 0; i < schedule.rules.size(); ++i) {
    RuleState rs;
    rs.rule = std::move(schedule.rules[i]);
    uint64_t z = schedule.seed + 0x9E3779B97F4A7C15ULL * (i + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    rs.rng = Rng(z ^ (z >> 31));
    rules_.push_back(std::move(rs));
  }
  point_hits_.clear();
  point_fires_.clear();
  log_.clear();
  log_dropped_ = 0;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  rules_.clear();
  point_hits_.clear();
  point_fires_.clear();
  log_.clear();
  log_dropped_ = 0;
}

FaultAction FaultInjector::Check(const char* point, int64_t query,
                                 double now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!armed_.load(std::memory_order_relaxed)) return FaultAction{};
  ++point_hits_[point];
  FaultAction fired{};
  for (RuleState& rs : rules_) {
    const FaultRule& r = rs.rule;
    if (r.point != point) continue;
    if (r.query >= 0 && r.query != query) continue;
    if (now < r.window_start || now > r.window_end) continue;
    ++rs.hits;
    if (rs.fires >= r.max_fires) continue;
    bool fire = false;
    if (r.nth_hit > 0) {
      fire = rs.hits == r.nth_hit;
    } else if (r.every > 0) {
      fire = rs.hits % r.every == 0;
    } else if (r.probability > 0.0) {
      fire = rs.rng.Uniform() < r.probability;
    }
    if (!fire) continue;
    ++rs.fires;
    if (!fired) fired = r.action;  // first firing rule wins; later rules
                                   // still advance their own state
  }
  if (fired) {
    ++point_fires_[point];
    if (log_.size() < kMaxLogEntries) {
      log_.push_back(FaultEvent{point, query, now, fired.type, fired.param});
    } else {
      ++log_dropped_;
    }
  }
  return fired;
}

int64_t FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = point_hits_.find(point);
  return it == point_hits_.end() ? 0 : it->second;
}

int64_t FaultInjector::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = point_fires_.find(point);
  return it == point_fires_.end() ? 0 : it->second;
}

int64_t FaultInjector::total_fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [point, fires] : point_fires_) total += fires;
  return total;
}

std::vector<FaultEvent> FaultInjector::Log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

int64_t FaultInjector::dropped_log_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_dropped_;
}

bool FaultInjector::WriteLog(const std::string& path) const {
  std::vector<FaultEvent> events = Log();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  for (const FaultEvent& e : events) {
    std::fprintf(f, "%.9f %s %lld %s %.9f\n", e.time, e.point.c_str(),
                 static_cast<long long>(e.query), FaultTypeName(e.type),
                 e.param);
  }
  const bool ok = std::fclose(f) == 0;
  return ok;
}

}  // namespace lsched

#include "testing/differential.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "core/agent.h"
#include "core/model.h"
#include "exec/real_engine.h"
#include "exec/sim_engine.h"
#include "sched/decima.h"
#include "sched/heuristics.h"
#include "sched/selftune.h"
#include "testing/faultpoint.h"
#include "testing/invariants.h"
#include "testing/oracle.h"
#include "util/logging.h"

namespace lsched {

namespace {

/// Scheduler that owns the model its agent reads from (factories must
/// return self-contained objects).
class OwningLSchedScheduler : public Scheduler {
 public:
  OwningLSchedScheduler() : model_(TinyConfig()), agent_(&model_) {}

  std::string name() const override { return agent_.name(); }
  void Reset() override { agent_.Reset(); }
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SystemState& state) override {
    return agent_.Schedule(event, state);
  }
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override {
    return agent_.Schedule(event, ctx);
  }
  void OnQueryCompleted(QueryId query, double latency) override {
    agent_.OnQueryCompleted(query, latency);
  }

 private:
  static LSchedConfig TinyConfig() {
    LSchedConfig config;
    config.hidden_dim = 8;
    config.summary_dim = 8;
    config.head_hidden = 8;
    return config;
  }

  LSchedModel model_;
  LSchedAgent agent_;
};

class OwningDecimaScheduler : public Scheduler {
 public:
  OwningDecimaScheduler() : model_(TinyConfig()), agent_(&model_) {}

  std::string name() const override { return agent_.name(); }
  void Reset() override { agent_.Reset(); }
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SystemState& state) override {
    return agent_.Schedule(event, state);
  }
  SchedulingDecision Schedule(const SchedulingEvent& event,
                              const SchedulingContext& ctx) override {
    return agent_.Schedule(event, ctx);
  }
  void OnQueryCompleted(QueryId query, double latency) override {
    agent_.OnQueryCompleted(query, latency);
  }

 private:
  static DecimaConfig TinyConfig() {
    DecimaConfig config;
    config.hidden_dim = 8;
    config.summary_dim = 8;
    config.head_hidden = 8;
    return config;
  }

  DecimaModel model_;
  DecimaScheduler agent_;
};

bool ChecksumsMatch(double oracle, double engine) {
  const double tol = std::max(1e-6, 1e-9 * std::abs(oracle));
  return std::abs(oracle - engine) <= tol;
}

/// Compares an engine run's terminal statuses against the chaos script's
/// expectations. Returns mismatch descriptions (empty = all as scripted).
std::vector<std::string> DiffTerminalStatuses(
    const std::vector<QueryStatus>& expected,
    const std::vector<QueryStatus>& actual) {
  std::vector<std::string> out;
  if (actual.size() != expected.size()) {
    out.push_back("final_statuses has " + std::to_string(actual.size()) +
                  " entries, chaos script expects " +
                  std::to_string(expected.size()));
    return out;
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (actual[i] != expected[i]) {
      out.push_back("query " + std::to_string(i) + " terminated " +
                    QueryStatusName(actual[i]) + ", chaos script expects " +
                    QueryStatusName(expected[i]));
    }
  }
  return out;
}

}  // namespace

std::vector<NamedSchedulerFactory> HeuristicSchedulerFactories() {
  return {
      {"FIFO", [] { return std::make_unique<FifoScheduler>(); }},
      {"Fair", [] { return std::make_unique<FairScheduler>(); }},
      {"SJF", [] { return std::make_unique<SjfScheduler>(); }},
      {"HPF", [] { return std::make_unique<HpfScheduler>(); }},
      {"CriticalPath", [] { return std::make_unique<CriticalPathScheduler>(); }},
      {"Quickstep", [] { return std::make_unique<QuickstepScheduler>(); }},
      {"SelfTune", [] { return std::make_unique<SelfTuneScheduler>(); }},
  };
}

std::vector<NamedSchedulerFactory> LearnedSchedulerFactories() {
  return {
      {"LSched", [] { return std::make_unique<OwningLSchedScheduler>(); }},
      {"Decima", [] { return std::make_unique<OwningDecimaScheduler>(); }},
  };
}

uint64_t WorkloadSeed(uint64_t base_seed, int workload_index) {
  // splitmix64 over (base + index): independent, individually replayable
  // workload seeds.
  uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL *
                               static_cast<uint64_t>(workload_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::string DifferentialReport::Summary() const {
  std::ostringstream out;
  out << "differential sweep: seed=" << seed << " workloads=" << workloads_run
      << " queries=" << queries_run << " real_runs=" << real_engine_runs
      << " sim_runs=" << sim_engine_runs << " mismatches=" << mismatches.size()
      << "\n";
  for (const std::string& m : mismatches) {
    out << "  MISMATCH: " << m << "\n";
  }
  out << "repro: LSCHED_FUZZ_SEED=" << seed
      << " LSCHED_FUZZ_WORKLOADS=" << workloads_run
      << " ctest -R differential_test --output-on-failure";
  return out.str();
}

DifferentialReport RunDifferential(
    uint64_t seed, int num_workloads,
    const std::vector<NamedSchedulerFactory>& factories,
    const DifferentialOptions& options) {
  DifferentialReport report;
  report.seed = seed;

  for (int wi = 0; wi < num_workloads; ++wi) {
    const uint64_t wseed = WorkloadSeed(seed, wi);
    WorkloadFuzzer fuzzer(wseed, options.fuzzer);
    FuzzedWorkload workload = fuzzer.NextWorkload();
    ++report.workloads_run;
    report.queries_run += static_cast<int>(workload.real_queries.size());

    auto add_mismatch = [&](const std::string& what) {
      std::ostringstream msg;
      msg << what << " [workload " << wi << ", workload_seed " << wseed << "]";
      LSCHED_LOG(Error) << "differential mismatch: " << msg.str();
      report.mismatches.push_back(msg.str());
    };

    // Chaos workloads carry a fault/cancel script plus the terminal status
    // every query must reach; engines run with the script installed and
    // oracle comparisons are restricted to queries expected to finish.
    const bool chaos = !workload.expected_statuses.empty();
    auto expect_done = [&](size_t qi) {
      return !chaos ||
             workload.expected_statuses[qi] == QueryStatus::kDone;
    };

    // Ground truth: oracle result per query. The oracle always runs
    // fault-free (it defines WHAT a query computes, not how it fares).
    FaultInjector::Global().Clear();
    OracleExecutor oracle(workload.catalog.get());
    std::vector<OracleQueryResult> expected;
    bool oracle_ok = true;
    for (size_t qi = 0; qi < workload.real_queries.size(); ++qi) {
      Result<OracleQueryResult> r =
          oracle.Execute(workload.real_queries[qi].plan);
      if (!r.ok()) {
        add_mismatch("oracle failed on query " + std::to_string(qi) + ": " +
                     r.status().ToString());
        oracle_ok = false;
        break;
      }
      expected.push_back(std::move(r).value());
    }
    if (!oracle_ok) continue;

    for (const NamedSchedulerFactory& factory : factories) {
      // RealEngine across thread counts: sink results must equal the
      // oracle's regardless of policy and parallelism.
      for (int threads : options.real_thread_counts) {
        std::unique_ptr<Scheduler> policy = factory.make();
        ValidatingScheduler validating(policy.get());
        RealEngineConfig config;
        config.num_threads = threads;
        config.chunk_rows = options.chunk_rows;
        config.cancels = workload.cancels;
        RealEngine engine(workload.catalog.get(), config);
        if (chaos) FaultInjector::Global().Install(workload.faults);
        RealRunResult run = engine.Run(workload.real_queries, &validating);
        FaultInjector::Global().Clear();
        ++report.real_engine_runs;

        const std::string where =
            factory.name + " x" + std::to_string(threads);
        if (run.sink_row_counts.size() != expected.size()) {
          add_mismatch(where + ": engine reported " +
                       std::to_string(run.sink_row_counts.size()) +
                       " queries, oracle " + std::to_string(expected.size()));
          continue;
        }
        for (size_t qi = 0; qi < expected.size(); ++qi) {
          if (!expect_done(qi)) continue;  // no sink for a dead query
          if (run.sink_row_counts[qi] != expected[qi].sink_rows) {
            add_mismatch(where + " query " + std::to_string(qi) +
                         ": sink rows " +
                         std::to_string(run.sink_row_counts[qi]) +
                         " != oracle " +
                         std::to_string(expected[qi].sink_rows));
          }
          if (!ChecksumsMatch(expected[qi].sink_checksum,
                              run.sink_checksums[qi])) {
            std::ostringstream msg;
            msg << where << " query " << qi << ": sink checksum "
                << run.sink_checksums[qi] << " != oracle "
                << expected[qi].sink_checksum;
            add_mismatch(msg.str());
          }
        }
        if (chaos) {
          for (const std::string& d : DiffTerminalStatuses(
                   workload.expected_statuses, run.episode.final_statuses)) {
            add_mismatch(where + ": " + d);
          }
        }
        for (const std::string& v : validating.violations()) {
          add_mismatch(where + ": " + v);
        }
        Status episode_ok = ValidateEpisodeResult(
            run.episode, workload.real_queries.size(), threads);
        if (!episode_ok.ok()) {
          add_mismatch(where + ": " + episode_ok.ToString());
        }
      }

      // SimEngine: run the exact same plans twice under a fresh scheduler
      // each time; the telemetry must be byte-identical (determinism) and
      // satisfy the episode invariants.
      if (options.run_sim) {
        EpisodeResult episodes[2];
        bool sim_ok = true;
        for (int rep = 0; rep < 2; ++rep) {
          std::unique_ptr<Scheduler> policy = factory.make();
          ValidatingScheduler validating(policy.get());
          SimEngineConfig config;
          config.num_threads = options.sim_threads;
          config.cancels = workload.cancels;
          SimEngine engine(config);
          // Install before EACH rep: rule-local RNG/counter state resets,
          // so both reps see an identical firing sequence.
          if (chaos) FaultInjector::Global().Install(workload.faults);
          episodes[rep] = engine.Run(workload.sim_queries, &validating);
          FaultInjector::Global().Clear();
          ++report.sim_engine_runs;
          if (chaos) {
            for (const std::string& d : DiffTerminalStatuses(
                     workload.expected_statuses,
                     episodes[rep].final_statuses)) {
              add_mismatch(factory.name + " [sim]: " + d);
              sim_ok = false;
            }
          }
          for (const std::string& v : validating.violations()) {
            add_mismatch(factory.name + " [sim]: " + v);
            sim_ok = false;
          }
          Status episode_ok = ValidateEpisodeResult(
              episodes[rep], workload.sim_queries.size(),
              options.sim_threads);
          if (!episode_ok.ok()) {
            add_mismatch(factory.name + " [sim]: " + episode_ok.ToString());
            sim_ok = false;
          }
        }
        if (sim_ok) {
          const std::string diff = DiffEpisodeResults(episodes[0], episodes[1]);
          if (!diff.empty()) {
            add_mismatch(factory.name + " [sim]: nondeterministic episode: " +
                         diff);
          }
        }
      }
    }
  }
  return report;
}

}  // namespace lsched

#include "testing/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "exec/scheduling_context.h"
#include "util/logging.h"
#include "util/math_util.h"

namespace lsched {

namespace {

constexpr double kTimeTol = 1e-9;

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Local re-implementation of QueryState::IsOpSchedulable that additionally
/// treats ops in `pending` (scheduled earlier in the same decision) as
/// scheduled, so a decision launching a producer and its pipelined consumer
/// together validates cleanly.
bool SchedulableWithPending(const QueryState& q, int op,
                            const std::set<int>& pending) {
  if (q.op_completed(op) || q.op_scheduled(op) || pending.count(op) > 0) {
    return false;
  }
  const QueryPlan& plan = q.plan();
  for (int e : plan.node(op).in_edges) {
    const PlanEdge& edge = plan.edge(e);
    if (q.op_completed(edge.producer)) continue;
    if (edge.pipeline_breaking) return false;
    if (!q.op_scheduled(edge.producer) && pending.count(edge.producer) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

void ValidatingScheduler::Reset() {
  inner_->Reset();
  terminated_.clear();
  last_event_time_ = 0.0;
  seen_event_ = false;
}

void ValidatingScheduler::AddViolation(std::string message) {
  LSCHED_LOG(Error) << "scheduling invariant violated: " << message;
  violations_.push_back(std::move(message));
}

void ValidatingScheduler::CheckState(const SchedulingEvent& event,
                                     const SystemState& state) {
  if (seen_event_ && event.time + kTimeTol < last_event_time_) {
    AddViolation("event time went backwards: " + Fmt(event.time) + " after " +
                 Fmt(last_event_time_));
  }
  seen_event_ = true;
  last_event_time_ = std::max(last_event_time_, event.time);
  if (event.type == SchedulingEventType::kQueryCancelled) {
    terminated_.insert(event.query);
  }

  std::set<QueryId> live;
  for (const QueryState* q : state.queries) {
    if (q == nullptr) {
      AddViolation("null QueryState in snapshot");
      continue;
    }
    if (!live.insert(q->id()).second) {
      AddViolation("duplicate query " + std::to_string(q->id()) +
                   " in snapshot");
    }
    if (q->arrival_time() > state.now + kTimeTol) {
      AddViolation("query " + std::to_string(q->id()) +
                   " exposed before its arrival (arrival " +
                   Fmt(q->arrival_time()) + " > now " + Fmt(state.now) + ")");
    }
    if (q->completed()) {
      AddViolation("completed query " + std::to_string(q->id()) +
                   " still in snapshot");
    }
    if (IsTerminalStatus(q->status())) {
      AddViolation("terminal query " + std::to_string(q->id()) + " (" +
                   QueryStatusName(q->status()) + ") still in snapshot");
    }
  }

  std::set<int> thread_ids;
  for (const ThreadInfo& t : state.threads) {
    if (!thread_ids.insert(t.id).second) {
      AddViolation("duplicate thread id " + std::to_string(t.id));
    }
    if (t.busy && t.running_query == kInvalidQuery) {
      AddViolation("busy thread " + std::to_string(t.id) +
                   " with no running query");
    }
    if (!t.busy && t.running_query != kInvalidQuery) {
      AddViolation("idle thread " + std::to_string(t.id) +
                   " still claims query " + std::to_string(t.running_query));
    }
    if (t.busy && live.count(t.running_query) == 0 &&
        terminated_.count(t.running_query) == 0) {
      AddViolation("thread " + std::to_string(t.id) + " runs query " +
                   std::to_string(t.running_query) +
                   " that is not in the snapshot");
    }
  }

  // assigned_threads bookkeeping vs actual thread occupancy (no double
  // assignment: each busy thread counts toward exactly one query).
  for (const QueryState* q : state.queries) {
    if (q == nullptr) continue;
    int running = 0;
    for (const ThreadInfo& t : state.threads) {
      if (t.busy && t.running_query == q->id()) ++running;
    }
    if (running != q->assigned_threads()) {
      AddViolation("query " + std::to_string(q->id()) + " assigned_threads=" +
                   std::to_string(q->assigned_threads()) + " but " +
                   std::to_string(running) + " threads run it");
    }
  }

  if (event.type == SchedulingEventType::kQueryArrival &&
      live.count(event.query) == 0) {
    AddViolation("arrival event for query " + std::to_string(event.query) +
                 " absent from snapshot");
  }
}

void ValidatingScheduler::CheckDecision(const SchedulingDecision& decision,
                                        const SystemState& state) {
  std::map<QueryId, std::set<int>> pending;  // ops launched by this decision
  for (const PipelineChoice& choice : decision.pipelines) {
    const QueryState* q = state.FindQuery(choice.query);
    if (q == nullptr) {
      AddViolation("pipeline choice for unknown/unarrived query " +
                   std::to_string(choice.query));
      continue;
    }
    if (IsTerminalStatus(q->status())) {
      AddViolation("pipeline choice for dead query " +
                   std::to_string(choice.query) + " (" +
                   QueryStatusName(q->status()) + ")");
      continue;
    }
    if (choice.root_op < 0 ||
        choice.root_op >= static_cast<int>(q->plan().num_nodes())) {
      AddViolation("pipeline root " + std::to_string(choice.root_op) +
                   " out of range for query " + std::to_string(choice.query));
      continue;
    }
    if (choice.degree < 1) {
      AddViolation("pipeline degree " + std::to_string(choice.degree) +
                   " < 1 for query " + std::to_string(choice.query));
    }
    std::set<int>& mine = pending[choice.query];
    if (!SchedulableWithPending(*q, choice.root_op, mine)) {
      AddViolation("unschedulable pipeline root " +
                   std::to_string(choice.root_op) + " for query " +
                   std::to_string(choice.query) + " (completed=" +
                   std::to_string(q->op_completed(choice.root_op)) +
                   " scheduled=" +
                   std::to_string(q->op_scheduled(choice.root_op)) + ")");
      continue;
    }
    // Mark the whole requested pipeline as pending, mirroring how engines
    // mark every fused member scheduled when launching.
    std::vector<int> chain = q->ValidPipelineFrom(choice.root_op);
    const size_t fused = std::min(chain.size(),
                                  static_cast<size_t>(
                                      std::max(choice.degree, 1)));
    for (size_t i = 0; i < fused; ++i) mine.insert(chain[i]);
  }
  for (const ParallelismChoice& choice : decision.parallelism) {
    const QueryState* q = state.FindQuery(choice.query);
    if (q == nullptr) {
      AddViolation("parallelism choice for unknown/unarrived query " +
                   std::to_string(choice.query));
    } else if (IsTerminalStatus(q->status())) {
      AddViolation("parallelism choice for dead query " +
                   std::to_string(choice.query) + " (" +
                   QueryStatusName(q->status()) + ")");
    }
    if (choice.max_threads < 0) {
      AddViolation("negative thread cap for query " +
                   std::to_string(choice.query));
    }
  }
}

SchedulingDecision ValidatingScheduler::Schedule(const SchedulingEvent& event,
                                                 const SystemState& state) {
  CheckState(event, state);
  SchedulingDecision decision = inner_->Schedule(event, state);
  CheckDecision(decision, state);
  return decision;
}

void ValidatingScheduler::CheckContext(const SchedulingContext& ctx) {
  int free_recount = 0;
  for (const ThreadInfo& t : ctx.threads()) {
    if (!t.busy) ++free_recount;
  }
  if (free_recount != ctx.num_free_threads()) {
    AddViolation("context free-thread counter " +
                 std::to_string(ctx.num_free_threads()) + " != recount " +
                 std::to_string(free_recount));
  }
  for (const QueryState* q : ctx.queries()) {
    if (q == nullptr) continue;
    if (ctx.FindQuery(q->id()) != q) {
      AddViolation("context query index stale for query " +
                   std::to_string(q->id()));
    }
    if (ctx.query_version(q->id()) == 0) {
      AddViolation("live query " + std::to_string(q->id()) +
                   " has version 0 (reserved for unknown queries)");
    }
  }
}

SchedulingDecision ValidatingScheduler::Schedule(const SchedulingEvent& event,
                                                 const SchedulingContext& ctx) {
  // Validation wants the full legacy view; the inner policy still receives
  // the incremental context, so its fast path stays under test.
  const SystemState state = ctx.MaterializeSnapshot();
  CheckContext(ctx);
  CheckState(event, state);
  SchedulingDecision decision = inner_->Schedule(event, ctx);
  CheckDecision(decision, state);
  return decision;
}

Status ValidateEpisodeResult(const EpisodeResult& result, size_t num_queries,
                             int max_pool_size) {
  auto fail = [](const std::string& msg) {
    return Status(StatusCode::kInternal, "episode invariant violated: " + msg);
  };
  // With lifecycle tracking, latencies exist only for DONE queries; the
  // status vector must cover every query and hold only terminal states.
  size_t expected_done = num_queries;
  if (!result.final_statuses.empty()) {
    if (result.final_statuses.size() != num_queries) {
      return fail("final_statuses has " +
                  std::to_string(result.final_statuses.size()) +
                  " entries for " + std::to_string(num_queries) + " queries");
    }
    int done = 0, cancelled = 0, failed = 0, shed = 0;
    for (size_t i = 0; i < result.final_statuses.size(); ++i) {
      const QueryStatus s = result.final_statuses[i];
      if (!IsTerminalStatus(s)) {
        return fail("query " + std::to_string(i) +
                    " ended the episode non-terminal (" + QueryStatusName(s) +
                    ")");
      }
      if (s == QueryStatus::kDone) ++done;
      if (s == QueryStatus::kCancelled) ++cancelled;
      if (s == QueryStatus::kFailed) ++failed;
      if (s == QueryStatus::kShed) ++shed;
    }
    if (cancelled != result.num_queries_cancelled ||
        failed != result.num_queries_failed ||
        shed != result.num_queries_shed) {
      return fail("terminal-status counts disagree: statuses say " +
                  std::to_string(cancelled) + " cancelled / " +
                  std::to_string(failed) + " failed / " +
                  std::to_string(shed) + " shed, counters say " +
                  std::to_string(result.num_queries_cancelled) + " / " +
                  std::to_string(result.num_queries_failed) + " / " +
                  std::to_string(result.num_queries_shed));
    }
    // Serving conservation (DESIGN.md §11): every query that arrived is
    // accounted for by exactly one terminal state.
    if (done + cancelled + failed + shed !=
        static_cast<int>(num_queries)) {
      return fail("admission conservation broken: done + cancelled + failed "
                  "+ shed != admitted");
    }
    expected_done = static_cast<size_t>(done);
  } else if (result.num_queries_cancelled != 0 ||
             result.num_queries_failed != 0 ||
             result.num_queries_shed != 0) {
    return fail("cancelled/failed/shed queries reported without "
                "final_statuses");
  }
  if (result.query_latencies.size() != expected_done) {
    return fail("expected " + std::to_string(expected_done) +
                " latencies, got " +
                std::to_string(result.query_latencies.size()));
  }
  if (result.query_arrivals.size() != expected_done ||
      result.query_completions.size() != expected_done) {
    return fail("arrival/completion telemetry size mismatch");
  }
  for (size_t i = 0; i < expected_done; ++i) {
    const double arrival = result.query_arrivals[i];
    const double completion = result.query_completions[i];
    const double latency = result.query_latencies[i];
    if (completion + kTimeTol < arrival) {
      return fail("query completed at " + Fmt(completion) +
                  " before its arrival " + Fmt(arrival));
    }
    if (std::abs(latency - (completion - arrival)) >
        kTimeTol * std::max(1.0, std::abs(completion))) {
      return fail("latency[" + std::to_string(i) + "]=" + Fmt(latency) +
                  " != completion - arrival = " + Fmt(completion - arrival));
    }
    if (i > 0 &&
        completion + kTimeTol < result.query_completions[i - 1]) {
      return fail("completions not in completion order at index " +
                  std::to_string(i));
    }
  }
  // Work-order conservation under the fault model (DESIGN.md §10). With no
  // faults/cancellations every chaos counter is zero and these degenerate
  // to the legacy planned == dispatched == completed.
  if (result.num_work_orders_failed < 0 || result.num_work_orders_discarded < 0 ||
      result.num_work_orders_dropped < 0 || result.num_work_orders_expired < 0 ||
      result.num_retries < 0) {
    return fail("negative chaos work-order counter");
  }
  if (result.num_work_orders_planned !=
      result.num_work_orders_completed + result.num_work_orders_dropped) {
    return fail("work-order conservation broken: planned=" +
                std::to_string(result.num_work_orders_planned) +
                " != completed=" +
                std::to_string(result.num_work_orders_completed) +
                " + dropped=" +
                std::to_string(result.num_work_orders_dropped));
  }
  if (result.num_work_orders_dispatched !=
      result.num_work_orders_completed + result.num_work_orders_failed +
          result.num_work_orders_discarded) {
    return fail("work-order conservation broken: dispatched=" +
                std::to_string(result.num_work_orders_dispatched) +
                " != completed=" +
                std::to_string(result.num_work_orders_completed) +
                " + failed=" + std::to_string(result.num_work_orders_failed) +
                " + discarded=" +
                std::to_string(result.num_work_orders_discarded));
  }
  if (result.num_retries > result.num_work_orders_failed) {
    return fail("more retries (" + std::to_string(result.num_retries) +
                ") than failed attempts (" +
                std::to_string(result.num_work_orders_failed) + ")");
  }
  if (result.max_inflight_work_orders > max_pool_size) {
    return fail("max inflight work orders " +
                std::to_string(result.max_inflight_work_orders) +
                " exceeds pool size " + std::to_string(max_pool_size));
  }
  if (static_cast<int>(result.decisions.size()) !=
      result.num_scheduler_invocations) {
    return fail("decision records (" + std::to_string(result.decisions.size()) +
                ") != scheduler invocations (" +
                std::to_string(result.num_scheduler_invocations) + ")");
  }
  double prev_time = 0.0;
  for (size_t i = 0; i < result.decisions.size(); ++i) {
    const auto& d = result.decisions[i];
    if (i > 0 && d.time + kTimeTol < prev_time) {
      return fail("decision times not nondecreasing at record " +
                  std::to_string(i));
    }
    prev_time = std::max(prev_time, d.time);
    if (d.running_queries < 0 ||
        d.running_queries > static_cast<int>(num_queries)) {
      return fail("decision record " + std::to_string(i) + " reports " +
                  std::to_string(d.running_queries) + " running queries");
    }
  }
  const double avg = Mean(result.query_latencies);
  const double p90 = Percentile(result.query_latencies, 90.0);
  if (std::abs(avg - result.avg_latency) > 1e-9 * std::max(1.0, avg)) {
    return fail("avg_latency " + Fmt(result.avg_latency) +
                " != recomputed " + Fmt(avg));
  }
  if (std::abs(p90 - result.p90_latency) > 1e-9 * std::max(1.0, p90)) {
    return fail("p90_latency " + Fmt(result.p90_latency) +
                " != recomputed " + Fmt(p90));
  }
  if (!result.query_completions.empty() &&
      result.makespan + kTimeTol < result.query_completions.back()) {
    return fail("makespan " + Fmt(result.makespan) +
                " precedes last completion " +
                Fmt(result.query_completions.back()));
  }
  return Status::OK();
}

std::string DiffEpisodeResults(const EpisodeResult& a, const EpisodeResult& b) {
  std::ostringstream out;
  auto diff_scalar = [&out](const char* name, double x, double y) {
    if (x != y) {
      out << name << ": " << Fmt(x) << " vs " << Fmt(y) << "; ";
    }
  };
  auto diff_int = [&out](const char* name, int64_t x, int64_t y) {
    if (x != y) out << name << ": " << x << " vs " << y << "; ";
  };
  auto diff_vec = [&out](const char* name, const std::vector<double>& x,
                         const std::vector<double>& y) {
    if (x.size() != y.size()) {
      out << name << ".size: " << x.size() << " vs " << y.size() << "; ";
      return;
    }
    for (size_t i = 0; i < x.size(); ++i) {
      if (x[i] != y[i]) {
        out << name << "[" << i << "]: " << Fmt(x[i]) << " vs " << Fmt(y[i])
            << "; ";
        return;
      }
    }
  };
  diff_vec("query_latencies", a.query_latencies, b.query_latencies);
  diff_vec("query_arrivals", a.query_arrivals, b.query_arrivals);
  diff_vec("query_completions", a.query_completions, b.query_completions);
  diff_scalar("avg_latency", a.avg_latency, b.avg_latency);
  diff_scalar("p90_latency", a.p90_latency, b.p90_latency);
  diff_scalar("makespan", a.makespan, b.makespan);
  diff_int("num_scheduler_invocations", a.num_scheduler_invocations,
           b.num_scheduler_invocations);
  diff_int("num_actions", a.num_actions, b.num_actions);
  diff_int("num_fallback_decisions", a.num_fallback_decisions,
           b.num_fallback_decisions);
  diff_int("num_work_orders_planned", a.num_work_orders_planned,
           b.num_work_orders_planned);
  diff_int("num_work_orders_dispatched", a.num_work_orders_dispatched,
           b.num_work_orders_dispatched);
  diff_int("num_work_orders_completed", a.num_work_orders_completed,
           b.num_work_orders_completed);
  diff_int("num_work_orders_failed", a.num_work_orders_failed,
           b.num_work_orders_failed);
  diff_int("num_work_orders_discarded", a.num_work_orders_discarded,
           b.num_work_orders_discarded);
  diff_int("num_work_orders_dropped", a.num_work_orders_dropped,
           b.num_work_orders_dropped);
  diff_int("num_work_orders_expired", a.num_work_orders_expired,
           b.num_work_orders_expired);
  diff_int("num_retries", a.num_retries, b.num_retries);
  diff_int("num_queries_cancelled", a.num_queries_cancelled,
           b.num_queries_cancelled);
  diff_int("num_queries_failed", a.num_queries_failed, b.num_queries_failed);
  diff_int("num_queries_shed", a.num_queries_shed, b.num_queries_shed);
  diff_int("max_inflight_work_orders", a.max_inflight_work_orders,
           b.max_inflight_work_orders);
  if (a.final_statuses.size() != b.final_statuses.size()) {
    out << "final_statuses.size: " << a.final_statuses.size() << " vs "
        << b.final_statuses.size() << "; ";
  } else {
    for (size_t i = 0; i < a.final_statuses.size(); ++i) {
      if (a.final_statuses[i] != b.final_statuses[i]) {
        out << "final_statuses[" << i
            << "]: " << QueryStatusName(a.final_statuses[i]) << " vs "
            << QueryStatusName(b.final_statuses[i]) << "; ";
        break;
      }
    }
  }
  if (a.decisions.size() != b.decisions.size()) {
    out << "decisions.size: " << a.decisions.size() << " vs "
        << b.decisions.size() << "; ";
  } else {
    for (size_t i = 0; i < a.decisions.size(); ++i) {
      if (a.decisions[i].time != b.decisions[i].time ||
          a.decisions[i].running_queries != b.decisions[i].running_queries) {
        out << "decisions[" << i << "]: (" << Fmt(a.decisions[i].time) << ", "
            << a.decisions[i].running_queries << ") vs ("
            << Fmt(b.decisions[i].time) << ", "
            << b.decisions[i].running_queries << "); ";
        break;
      }
    }
  }
  return out.str();
}

}  // namespace lsched

#ifndef LSCHED_TESTING_FUZZER_H_
#define LSCHED_TESTING_FUZZER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/real_engine.h"
#include "exec/sim_engine.h"
#include "plan/query_plan.h"
#include "serve/scripted_ingress.h"
#include "storage/catalog.h"
#include "testing/faultpoint.h"
#include "util/rng.h"

namespace lsched {

struct FuzzerOptions {
  int min_tables = 2;
  int max_tables = 4;
  int64_t min_rows = 80;
  int64_t max_rows = 700;
  int min_queries = 1;
  int max_queries = 3;
  /// Mean exponential inter-arrival gap for RealEngine submissions (wall
  /// seconds) and SimEngine submissions (virtual seconds).
  double real_arrival_mean_seconds = 0.002;
  double sim_arrival_mean_seconds = 0.05;
  /// Scenario preset name (workload/scenario.h). When set, NextWorkload()
  /// draws arrivals from the preset's time-varying rate curve instead of a
  /// homogeneous Poisson process, rescaled so the preset's base rate maps
  /// onto the mean gaps above, and exports the preset's pool-elasticity
  /// events (FuzzedWorkload::{sim,real}_thread_events) in each engine's
  /// timebase. Unknown names are a hard error.
  std::string scenario;

  /// --- chaos mode (DESIGN.md §10) ---------------------------------------
  /// When true, NextWorkload() also fuzzes a FaultSchedule + cancellation
  /// script and records the exact terminal status every query must reach.
  bool chaos = false;
  /// Fraction of queries cancelled before they can run (t=0 cancels, which
  /// deterministically beat every arrival in both engines).
  double chaos_cancel_fraction = 0.25;
  /// Fraction of queries given a query-scoped always-fail work_order_exec
  /// rule (fails every attempt, so the query deterministically FAILs after
  /// exhausting its retries in either engine).
  double chaos_fail_fraction = 0.2;
  /// Per-hit probability of a global work-order delay fault (does not
  /// change any terminal status, just perturbs timing).
  double chaos_stall_probability = 0.08;
  double chaos_stall_seconds = 0.001;

  /// --- multi-tenant serving scripts (DESIGN.md §11) ---------------------
  /// Tenants to spread fuzzed queries across: tags are drawn per query and
  /// attached identically to both engines' submissions. 1 = single-tenant
  /// (all-default tags, the pre-serving behaviour).
  int num_tenants = 1;
  /// Priority mix of fuzzed tags: probability of kHigh and kLow (the
  /// remainder is kNormal).
  double high_priority_fraction = 0.0;
  double low_priority_fraction = 0.0;
  /// FuzzIngress(): submissions per script, mean exponential inter-arrival
  /// gap (script seconds), and the fraction of submissions that also get a
  /// scripted cancellation later in the stream.
  int script_queries = 32;
  double script_arrival_mean_seconds = 0.05;
  double script_cancel_fraction = 0.1;
};

/// One fuzzed workload: a catalog plus the same query plans packaged for
/// both engines (wall-clock arrival offsets for RealEngine, virtual arrival
/// times for SimEngine).
struct FuzzedWorkload {
  uint64_t seed = 0;  ///< the seed this workload was generated from
  std::unique_ptr<Catalog> catalog;
  std::vector<RealQuerySubmission> real_queries;
  std::vector<QuerySubmission> sim_queries;
  /// Pool-elasticity events from the scenario preset (empty without
  /// FuzzerOptions::scenario), pre-scaled to each engine's timebase. Pass
  /// to SimEngineConfig/RealEngineConfig::thread_events.
  std::vector<ThreadPoolEvent> sim_thread_events;
  std::vector<ThreadPoolEvent> real_thread_events;

  /// Chaos script (empty unless FuzzerOptions::chaos). Install `faults`
  /// into FaultInjector::Global() and pass `cancels` to the engine config;
  /// every query must then terminate in `expected_statuses[id]` regardless
  /// of engine, scheduler, or thread count.
  FaultSchedule faults;
  std::vector<CancelRequest> cancels;
  std::vector<QueryStatus> expected_statuses;
};

/// Seeded generator of randomized catalogs, plan DAGs, and arrival
/// patterns for the differential harness. Every plan it emits satisfies the
/// OracleExecutor contract (deterministic result sets under any thread
/// count): integer-valued data, no kLimit/kWindow, TopK only on a unique
/// column, Distinct only after projecting to the key.
///
/// Generated catalogs: 2-4 tables "t0".."tN", each with columns
/// id (sequential, unique), fk (foreign key into the previous table's id,
/// or into t0 itself for t0), val (uniform int), grp (skewed small-domain
/// int). Plan shapes cover pipeline chains, hash/merge/nested-loop/index
/// joins (fan-in), unions of 2-3 branches, intersects, sorts, top-k, and
/// aggregation sinks (scalar, grouped, partial+finalize, distinct).
class WorkloadFuzzer {
 public:
  explicit WorkloadFuzzer(uint64_t seed, FuzzerOptions options = {});

  uint64_t seed() const { return seed_; }

  /// Generates a complete workload (fresh catalog + queries + arrivals).
  FuzzedWorkload NextWorkload();

  /// Pieces, exposed for focused tests.
  std::unique_ptr<Catalog> FuzzCatalog();
  QueryPlan FuzzPlan(const Catalog& catalog);

  /// A fuzzed tenant/priority tag under the configured mix.
  QueryTag FuzzTag();

  /// A deterministic multi-tenant arrival script over `catalog`
  /// (DESIGN.md §11): `script_queries` tagged submissions with exponential
  /// inter-arrival gaps drawn from a small fuzzed plan library, plus
  /// scripted cancellations for a fraction of them. The same script drives
  /// SimEngine episodes, RealEngine episodes, and live daemon replays (see
  /// serve/scripted_ingress.h).
  ScriptedIngress FuzzIngress(const Catalog& catalog);

 private:
  struct Stream;  // node id + tracked schema facts while building a plan

  Stream FuzzSource(class PlanBuilder* b, const Catalog& catalog,
                    RelationId table);
  Stream FuzzChain(class PlanBuilder* b, Stream s);
  void FuzzSink(class PlanBuilder* b, const Stream& s);
  /// Fuzzes the chaos script (faults/cancels/expected_statuses) for `w`.
  void FuzzChaos(FuzzedWorkload* w);

  uint64_t seed_;
  FuzzerOptions options_;
  Rng rng_;
};

}  // namespace lsched

#endif  // LSCHED_TESTING_FUZZER_H_

#include "testing/oracle.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace lsched {

namespace {

using Rows = std::vector<std::vector<double>>;

/// Mirrors the stream/side input split of QueryExecution (kernels.cc): the
/// first producer streams through binary operators; hash-join build sides
/// are consumed via operator state.
std::vector<int> StreamProducers(const QueryPlan& plan, int op) {
  const PlanNode& node = plan.node(op);
  std::vector<int> producers;
  for (int e : node.in_edges) producers.push_back(plan.edge(e).producer);
  switch (node.type) {
    case OperatorType::kProbeHash: {
      std::vector<int> out;
      for (int p : producers) {
        if (plan.node(p).type != OperatorType::kBuildHash) out.push_back(p);
      }
      return out.empty() ? producers : out;
    }
    case OperatorType::kNestedLoopJoin:
    case OperatorType::kMergeJoin:
    case OperatorType::kIntersect:
      if (producers.size() > 1) producers.resize(1);
      return producers;
    default:
      return producers;
  }
}

int SideProducer(const QueryPlan& plan, int op) {
  const PlanNode& node = plan.node(op);
  std::vector<int> producers;
  for (int e : node.in_edges) producers.push_back(plan.edge(e).producer);
  switch (node.type) {
    case OperatorType::kProbeHash:
      for (int p : producers) {
        if (plan.node(p).type == OperatorType::kBuildHash) return p;
      }
      return producers.size() > 1 ? producers[1] : -1;
    case OperatorType::kNestedLoopJoin:
    case OperatorType::kMergeJoin:
    case OperatorType::kIntersect:
      return producers.size() > 1 ? producers[1] : -1;
    default:
      return -1;
  }
}

int64_t KeyOf(const std::vector<double>& row, int col) {
  const size_t c =
      col >= 0 && col < static_cast<int>(row.size()) ? static_cast<size_t>(col)
                                                     : 0;
  return static_cast<int64_t>(std::llround(row[c]));
}

void ProjectInto(const std::vector<int>& cols, std::vector<double>* row) {
  if (cols.empty()) return;
  std::vector<double> out;
  out.reserve(cols.size());
  for (int c : cols) {
    out.push_back(c >= 0 && c < static_cast<int>(row->size())
                      ? (*row)[static_cast<size_t>(c)]
                      : 0.0);
  }
  *row = std::move(out);
}

Rows RelationRows(const Relation& rel) {
  Rows rows;
  rows.reserve(static_cast<size_t>(rel.num_rows()));
  for (size_t b = 0; b < rel.num_blocks(); ++b) {
    const Block& block = rel.block(b);
    for (size_t r = 0; r < block.num_rows(); ++r) {
      std::vector<double> row(block.num_columns());
      for (size_t c = 0; c < block.num_columns(); ++c) {
        row[c] = block.ValueAsDouble(c, r);
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

/// All rows matching `key` in `side` on column `col` (bounded to arity),
/// appended to `row` — the naive join expansion shared by probe/NLJ/merge
/// join. The engine's merge join binary-searches a sorted right side; over
/// a sorted input that collects exactly the same match set.
void ExpandMatches(const std::vector<double>& row, int64_t key,
                   const Rows& side, int col, Rows* out) {
  for (const std::vector<double>& srow : side) {
    const size_t c = col >= 0 && col < static_cast<int>(srow.size())
                         ? static_cast<size_t>(col)
                         : 0;
    if (static_cast<int64_t>(std::llround(srow[c])) != key) continue;
    std::vector<double> joined = row;
    joined.insert(joined.end(), srow.begin(), srow.end());
    out->push_back(joined);
  }
}

}  // namespace

Result<OracleQueryResult> OracleExecutor::Execute(const QueryPlan& plan) const {
  const std::vector<int> order = plan.TopologicalOrder();
  if (order.size() != plan.num_nodes()) {
    return Status::InvalidArgument("plan is not a DAG");
  }

  // Per-node fully-materialized emitted rows, plus the rows a BuildHash
  // retained in its (conceptual) hash table.
  std::vector<Rows> outputs(plan.num_nodes());
  std::vector<Rows> build_rows(plan.num_nodes());

  for (int op : order) {
    const PlanNode& node = plan.node(op);
    const KernelSpec& k = node.kernel;

    // Resolve the streamed input: base relation for sources, concatenated
    // stream-producer outputs otherwise.
    Rows input;
    if (node.in_edges.empty()) {
      if (node.base_inputs.empty() || catalog_ == nullptr) {
        return Status::FailedPrecondition("source op without base relation");
      }
      input = RelationRows(catalog_->relation(node.base_inputs[0]));
    } else {
      for (int p : StreamProducers(plan, op)) {
        const Rows& prows = outputs[static_cast<size_t>(p)];
        input.insert(input.end(), prows.begin(), prows.end());
      }
    }

    Rows& out = outputs[static_cast<size_t>(op)];
    switch (node.type) {
      case OperatorType::kTableScan:
      case OperatorType::kUnion:
      case OperatorType::kMaterialize:
      case OperatorType::kCreateTempTable:
        out = std::move(input);
        break;

      case OperatorType::kSelect:
      case OperatorType::kIndexScan: {
        for (std::vector<double>& row : input) {
          if (k.filter_column >= 0 &&
              k.filter_column < static_cast<int>(row.size())) {
            const double v = row[static_cast<size_t>(k.filter_column)];
            if (v < k.filter_lo || v > k.filter_hi) continue;
          }
          ProjectInto(k.project_columns, &row);
          out.push_back(std::move(row));
        }
        break;
      }

      case OperatorType::kProject: {
        for (std::vector<double>& row : input) {
          ProjectInto(k.project_columns, &row);
          out.push_back(std::move(row));
        }
        break;
      }

      case OperatorType::kBuildHash:
        // Rows are retained in the hash table; nothing is emitted.
        build_rows[static_cast<size_t>(op)] = std::move(input);
        break;

      case OperatorType::kProbeHash: {
        const int build = SideProducer(plan, op);
        if (build < 0) return Status::FailedPrecondition("probe without build");
        // The hash table was keyed by the BUILD node's build_key.
        const int bkey = plan.node(build).kernel.build_key;
        const Rows& brows = build_rows[static_cast<size_t>(build)];
        for (const std::vector<double>& row : input) {
          ExpandMatches(row, KeyOf(row, k.probe_key), brows, bkey, &out);
        }
        break;
      }

      case OperatorType::kIndexNestedLoopJoin: {
        if (k.index_relation == kInvalidRelation || catalog_ == nullptr) {
          // Mirrors the engine: no index relation means an empty index.
          break;
        }
        const Rows irows = RelationRows(catalog_->relation(k.index_relation));
        for (const std::vector<double>& row : input) {
          ExpandMatches(row, KeyOf(row, k.probe_key), irows, k.index_key,
                        &out);
        }
        break;
      }

      case OperatorType::kNestedLoopJoin:
      case OperatorType::kMergeJoin: {
        const int side = SideProducer(plan, op);
        if (side < 0) return Status::FailedPrecondition("join without side");
        const Rows& srows = outputs[static_cast<size_t>(side)];
        for (const std::vector<double>& row : input) {
          ExpandMatches(row, KeyOf(row, k.probe_key), srows, k.build_key,
                        &out);
        }
        break;
      }

      case OperatorType::kSortRuns:
      case OperatorType::kMergeSortedRuns: {
        // The engine emits per-chunk runs (kSortRuns) or a full sort
        // (kMergeSortedRuns); both emit the input multiset. The oracle
        // canonicalizes to a full sort.
        const int sc = k.sort_column >= 0 ? k.sort_column : 0;
        out = std::move(input);
        std::stable_sort(out.begin(), out.end(),
                         [sc](const auto& a, const auto& b) {
                           return a[static_cast<size_t>(sc)] <
                                  b[static_cast<size_t>(sc)];
                         });
        break;
      }

      case OperatorType::kHashAggregate:
      case OperatorType::kSortedAggregate:
      case OperatorType::kFinalizeAggregate: {
        const bool finalize = node.type == OperatorType::kFinalizeAggregate;
        std::map<int64_t, std::pair<double, int64_t>> agg;
        for (const std::vector<double>& row : input) {
          const int64_t group =
              k.group_by_column >= 0 || finalize
                  ? KeyOf(row, finalize ? 0 : k.group_by_column)
                  : 0;
          const int vc = finalize ? 1
                         : (k.agg_column >= 0 &&
                            k.agg_column < static_cast<int>(row.size()))
                             ? k.agg_column
                             : static_cast<int>(row.size()) - 1;
          const double v = row[static_cast<size_t>(vc)];
          auto [it, inserted] = agg.try_emplace(group, v, 1);
          if (!inserted) {
            switch (k.agg_fn) {
              case AggFn::kSum:
              case AggFn::kAvg:
              case AggFn::kCount:
                it->second.first += v;
                break;
              case AggFn::kMin:
                it->second.first = std::min(it->second.first, v);
                break;
              case AggFn::kMax:
                it->second.first = std::max(it->second.first, v);
                break;
            }
            ++it->second.second;
          }
        }
        for (const auto& [group, acc] : agg) {
          double v = acc.first;
          if (k.agg_fn == AggFn::kCount) {
            // Partial aggregates count input rows; the finalizer sums the
            // partial counts it received.
            v = finalize ? acc.first : static_cast<double>(acc.second);
          } else if (k.agg_fn == AggFn::kAvg && finalize) {
            v = acc.first / static_cast<double>(acc.second);
          }
          out.push_back({static_cast<double>(group), v});
        }
        break;
      }

      case OperatorType::kDistinct: {
        std::unordered_set<int64_t> seen;
        for (std::vector<double>& row : input) {
          if (seen.insert(KeyOf(row, k.group_by_column)).second) {
            out.push_back(std::move(row));
          }
        }
        break;
      }

      case OperatorType::kIntersect: {
        const int other = SideProducer(plan, op);
        if (other < 0) return Status::FailedPrecondition("intersect arity");
        std::unordered_set<int64_t> keys;
        for (const std::vector<double>& srow : outputs[static_cast<size_t>(
                 other)]) {
          keys.insert(static_cast<int64_t>(std::llround(srow[0])));
        }
        for (std::vector<double>& row : input) {
          if (keys.count(KeyOf(row, 0)) > 0) out.push_back(std::move(row));
        }
        break;
      }

      case OperatorType::kTopK: {
        const int64_t limit = k.limit > 0 ? k.limit : 10;
        const int sc = k.sort_column >= 0 ? k.sort_column : 0;
        out = std::move(input);
        std::stable_sort(out.begin(), out.end(),
                         [sc](const auto& a, const auto& b) {
                           return a[static_cast<size_t>(sc)] >
                                  b[static_cast<size_t>(sc)];
                         });
        if (out.size() > static_cast<size_t>(limit)) {
          out.resize(static_cast<size_t>(limit));
        }
        break;
      }

      case OperatorType::kLimit: {
        const int64_t limit = k.limit > 0 ? k.limit : 100;
        for (std::vector<double>& row : input) {
          if (static_cast<int64_t>(out.size()) >= limit) break;
          out.push_back(std::move(row));
        }
        break;
      }

      case OperatorType::kWindow: {
        std::map<int64_t, double> running;
        for (const std::vector<double>& row : input) {
          const int64_t g = KeyOf(row, k.group_by_column);
          const int vc = k.agg_column >= 0
                             ? k.agg_column
                             : static_cast<int>(row.size()) - 1;
          running[g] += row[static_cast<size_t>(vc)];
          std::vector<double> out_row = row;
          out_row.push_back(running[g]);
          out.push_back(std::move(out_row));
        }
        break;
      }

      case OperatorType::kNumOperatorTypes:
        return Status::Unimplemented("invalid operator type");
    }
  }

  OracleQueryResult result;
  result.node_output_rows.reserve(plan.num_nodes());
  for (size_t i = 0; i < plan.num_nodes(); ++i) {
    result.node_output_rows.push_back(
        static_cast<int64_t>(outputs[i].size()));
  }
  for (int sink : plan.SinkNodes()) {
    for (const std::vector<double>& row : outputs[static_cast<size_t>(sink)]) {
      ++result.sink_rows;
      for (double v : row) result.sink_checksum += v;
    }
  }
  return result;
}

}  // namespace lsched

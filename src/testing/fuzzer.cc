#include "testing/fuzzer.h"

#include <algorithm>
#include <optional>
#include <string>

#include "plan/plan_builder.h"
#include "storage/table_generator.h"
#include "util/logging.h"
#include "workload/scenario.h"

namespace lsched {

namespace {

/// Column layout of every fuzzed table (see header).
constexpr int kIdCol = 0;
constexpr int kFkCol = 1;
constexpr int kValCol = 2;
constexpr int kGrpCol = 3;
constexpr int kTableArity = 4;
constexpr int64_t kValDomain = 40;  ///< val uniform in [0, kValDomain]
constexpr int64_t kGrpDomain = 8;   ///< grp in [0, kGrpDomain)

/// Aggregate functions that keep integer inputs integer-valued (kAvg is
/// excluded: division would make checksums order-sensitive in the last
/// ULPs).
AggFn RandomIntegerAggFn(Rng* rng) {
  switch (rng->UniformInt(static_cast<uint64_t>(4))) {
    case 0:
      return AggFn::kSum;
    case 1:
      return AggFn::kCount;
    case 2:
      return AggFn::kMin;
    default:
      return AggFn::kMax;
  }
}

}  // namespace

struct WorkloadFuzzer::Stream {
  int node = -1;
  int arity = kTableArity;
  /// True while column 0 is known to hold unique values (the table id
  /// column surviving filters/1:1 joins) — required for a tie-free TopK.
  bool unique0 = true;
};

WorkloadFuzzer::WorkloadFuzzer(uint64_t seed, FuzzerOptions options)
    : seed_(seed), options_(options), rng_(seed) {}

std::unique_ptr<Catalog> WorkloadFuzzer::FuzzCatalog() {
  auto catalog = std::make_unique<Catalog>();
  const int num_tables = static_cast<int>(
      rng_.UniformInt(static_cast<int64_t>(options_.min_tables),
                      static_cast<int64_t>(options_.max_tables)));
  std::vector<int64_t> rows(static_cast<size_t>(num_tables));
  for (int i = 0; i < num_tables; ++i) {
    rows[static_cast<size_t>(i)] =
        rng_.UniformInt(options_.min_rows, options_.max_rows);
  }
  static const size_t kCapacities[] = {64, 128, 256};
  for (int i = 0; i < num_tables; ++i) {
    // fk of table i references table i-1's sequential id (t0 references
    // itself), guaranteeing 1:1 hash-join fan-out against an unfiltered
    // build side.
    const int ref = i > 0 ? i - 1 : 0;
    TableSpec spec;
    spec.name = "t" + std::to_string(i);
    spec.num_rows = rows[static_cast<size_t>(i)];
    spec.block_capacity = kCapacities[rng_.UniformInt(static_cast<uint64_t>(3))];
    spec.columns = {
        {"id", DataType::kInt64, ColumnDistribution::kSequential, 0, 0, 0},
        {"fk", DataType::kInt64, ColumnDistribution::kForeignKey, 0,
         static_cast<double>(rows[static_cast<size_t>(ref)]), 0},
        {"val", DataType::kInt64, ColumnDistribution::kUniformInt, 0,
         static_cast<double>(kValDomain), 0},
        {"grp", DataType::kInt64, ColumnDistribution::kZipfInt, 0,
         static_cast<double>(kGrpDomain), 0.5}};
    const auto added = catalog->AddRelation(GenerateTable(spec, &rng_));
    LSCHED_CHECK(added.ok()) << added.status().ToString();
  }
  return catalog;
}

WorkloadFuzzer::Stream WorkloadFuzzer::FuzzSource(PlanBuilder* b,
                                                  const Catalog& catalog,
                                                  RelationId table) {
  (void)catalog;
  Stream s;
  const uint64_t kind = rng_.UniformInt(static_cast<uint64_t>(10));
  if (kind < 3) {  // plain scan
    s.node = b->AddSource(OperatorType::kTableScan, table, {});
    return s;
  }
  PlanBuilder::NodeOptions opts;
  if (kind < 8) {  // filter on val
    const int64_t lo = rng_.UniformInt(static_cast<int64_t>(0), 30);
    const int64_t width = rng_.UniformInt(static_cast<int64_t>(5), 25);
    opts.kernel.filter_column = kValCol;
    opts.kernel.filter_lo = static_cast<double>(lo);
    opts.kernel.filter_hi = static_cast<double>(lo + width);
    opts.selectivity =
        std::min(1.0, static_cast<double>(width + 1) /
                          static_cast<double>(kValDomain + 1));
  } else if (kind < 9) {  // filter on grp
    const int64_t hi = rng_.UniformInt(static_cast<int64_t>(0), kGrpDomain - 2);
    opts.kernel.filter_column = kGrpCol;
    opts.kernel.filter_lo = 0.0;
    opts.kernel.filter_hi = static_cast<double>(hi);
    opts.selectivity = static_cast<double>(hi + 1) /
                       static_cast<double>(kGrpDomain);
  } else {  // empty-result filter: exercises empty intermediates
    opts.kernel.filter_column = kValCol;
    opts.kernel.filter_lo = static_cast<double>(kValDomain + 60);
    opts.kernel.filter_hi = static_cast<double>(kValDomain + 80);
    opts.selectivity = 0.0;
  }
  s.node = b->AddSource(OperatorType::kSelect, table, opts);
  return s;
}

WorkloadFuzzer::Stream WorkloadFuzzer::FuzzChain(PlanBuilder* b, Stream s) {
  // Extend full-arity streams with 0-2 chained filters (pipeline chains of
  // varying length). Filters reference the base-table layout, so only apply
  // while the stream still has it.
  if (s.arity != kTableArity) return s;
  const uint64_t extra = rng_.UniformInt(static_cast<uint64_t>(3));
  for (uint64_t i = 0; i < extra; ++i) {
    PlanBuilder::NodeOptions opts;
    if (rng_.UniformInt(static_cast<uint64_t>(2)) == 0) {
      opts.kernel.filter_column = kValCol;
      opts.kernel.filter_lo = 0.0;
      opts.kernel.filter_hi = static_cast<double>(
          rng_.UniformInt(static_cast<int64_t>(15), kValDomain));
      opts.selectivity = opts.kernel.filter_hi /
                         static_cast<double>(kValDomain + 1);
    } else {
      opts.kernel.filter_column = kGrpCol;
      opts.kernel.filter_lo = 0.0;
      opts.kernel.filter_hi = static_cast<double>(
          rng_.UniformInt(static_cast<int64_t>(2), kGrpDomain - 1));
      opts.selectivity = (opts.kernel.filter_hi + 1.0) /
                         static_cast<double>(kGrpDomain);
    }
    s.node = b->AddOp(OperatorType::kSelect, {s.node}, opts);
  }
  return s;
}

void WorkloadFuzzer::FuzzSink(PlanBuilder* b, const Stream& s) {
  uint64_t choice = rng_.UniformInt(static_cast<uint64_t>(14));
  if (choice >= 12 && !s.unique0) choice = 3;  // TopK needs a unique column
  if (choice < 2) {
    return;  // raw stream sink
  }
  if (choice < 4) {  // scalar aggregate
    PlanBuilder::NodeOptions opts;
    opts.kernel.group_by_column = -1;
    opts.kernel.agg_column = static_cast<int>(
        rng_.UniformInt(static_cast<uint64_t>(s.arity)));
    opts.kernel.agg_fn = RandomIntegerAggFn(&rng_);
    b->AddOp(OperatorType::kHashAggregate, {s.node}, opts);
    return;
  }
  if (choice < 7) {  // grouped aggregate (hash or sorted flavour)
    PlanBuilder::NodeOptions opts;
    opts.kernel.group_by_column = static_cast<int>(
        rng_.UniformInt(static_cast<uint64_t>(s.arity)));
    opts.kernel.agg_column = static_cast<int>(
        rng_.UniformInt(static_cast<uint64_t>(s.arity)));
    opts.kernel.agg_fn = RandomIntegerAggFn(&rng_);
    const OperatorType type = rng_.UniformInt(static_cast<uint64_t>(2)) == 0
                                  ? OperatorType::kHashAggregate
                                  : OperatorType::kSortedAggregate;
    b->AddOp(type, {s.node}, opts);
    return;
  }
  if (choice < 9) {  // partial aggregate + finalizer
    PlanBuilder::NodeOptions partial;
    partial.kernel.group_by_column = static_cast<int>(
        rng_.UniformInt(static_cast<uint64_t>(s.arity)));
    partial.kernel.agg_column = static_cast<int>(
        rng_.UniformInt(static_cast<uint64_t>(s.arity)));
    partial.kernel.agg_fn = RandomIntegerAggFn(&rng_);
    const int p = b->AddOp(OperatorType::kHashAggregate, {s.node}, partial);
    PlanBuilder::NodeOptions fin;
    fin.kernel.group_by_column = 0;
    fin.kernel.agg_column = 1;
    fin.kernel.agg_fn = partial.kernel.agg_fn;
    b->AddOp(OperatorType::kFinalizeAggregate, {p}, fin);
    return;
  }
  if (choice < 11) {  // distinct over a single projected key column
    PlanBuilder::NodeOptions proj;
    proj.kernel.project_columns = {static_cast<int>(
        rng_.UniformInt(static_cast<uint64_t>(s.arity)))};
    const int p = b->AddOp(OperatorType::kProject, {s.node}, proj);
    PlanBuilder::NodeOptions distinct;
    distinct.kernel.group_by_column = 0;
    b->AddOp(OperatorType::kDistinct, {p}, distinct);
    return;
  }
  if (choice < 12) {  // sort pipeline
    const int sc = static_cast<int>(
        rng_.UniformInt(static_cast<uint64_t>(s.arity)));
    PlanBuilder::NodeOptions sort_opts;
    sort_opts.kernel.sort_column = sc;
    const int runs = b->AddOp(OperatorType::kSortRuns, {s.node}, sort_opts);
    b->AddOp(OperatorType::kMergeSortedRuns, {runs}, sort_opts);
    return;
  }
  // TopK on the unique id column (tie-free by construction).
  PlanBuilder::NodeOptions topk;
  topk.kernel.sort_column = 0;
  topk.kernel.limit = rng_.UniformInt(static_cast<int64_t>(1), 20);
  b->AddOp(OperatorType::kTopK, {s.node}, topk);
}

QueryPlan WorkloadFuzzer::FuzzPlan(const Catalog& catalog) {
  const int num_tables = static_cast<int>(catalog.num_relations());
  PlanBuilder b(&catalog);

  // Pick a "fact" table and the "dim" table its fk column references.
  const RelationId fact = static_cast<RelationId>(
      rng_.UniformInt(static_cast<uint64_t>(num_tables)));
  const RelationId dim = fact > 0 ? fact - 1 : 0;

  Stream s;
  const uint64_t shape = rng_.UniformInt(static_cast<uint64_t>(18));
  if (shape < 3) {  // plain chain, optionally projected
    s = FuzzChain(&b, FuzzSource(&b, catalog, fact));
    if (rng_.UniformInt(static_cast<uint64_t>(3)) == 0) {
      // Increasing column subset; unique0 survives iff column 0 leads.
      std::vector<int> keep;
      for (int c = 0; c < s.arity; ++c) {
        if (rng_.UniformInt(static_cast<uint64_t>(2)) == 0) keep.push_back(c);
      }
      if (keep.empty()) keep.push_back(kIdCol);
      PlanBuilder::NodeOptions proj;
      proj.kernel.project_columns = keep;
      s.node = b.AddOp(OperatorType::kProject, {s.node}, proj);
      s.unique0 = s.unique0 && keep[0] == kIdCol;
      s.arity = static_cast<int>(keep.size());
    }
  } else if (shape < 7) {  // hash join, optionally two levels deep
    Stream dstream = FuzzSource(&b, catalog, dim);
    PlanBuilder::NodeOptions build_opts;
    build_opts.kernel.build_key = kIdCol;
    const int build =
        b.AddOp(OperatorType::kBuildHash, {dstream.node}, build_opts);
    s = FuzzChain(&b, FuzzSource(&b, catalog, fact));
    PlanBuilder::NodeOptions probe_opts;
    probe_opts.kernel.probe_key = kFkCol;
    probe_opts.selectivity = 1.0;
    s.node = b.AddOp(OperatorType::kProbeHash, {s.node, build}, probe_opts);
    s.arity += dstream.arity;
    if (fact > 1 && rng_.UniformInt(static_cast<uint64_t>(2)) == 0) {
      // Second join level: the first dim's fk column (now at position
      // kTableArity + kFkCol) references table dim-1.
      Stream d2 = FuzzSource(&b, catalog, dim - 1);
      PlanBuilder::NodeOptions build2;
      build2.kernel.build_key = kIdCol;
      const int b2 = b.AddOp(OperatorType::kBuildHash, {d2.node}, build2);
      PlanBuilder::NodeOptions probe2;
      probe2.kernel.probe_key = kTableArity + kFkCol;
      probe2.selectivity = 1.0;
      s.node = b.AddOp(OperatorType::kProbeHash, {s.node, b2}, probe2);
      s.arity += d2.arity;
    }
  } else if (shape < 9) {  // union fan-in of 2-3 branches
    const uint64_t branches = 2 + rng_.UniformInt(static_cast<uint64_t>(2));
    std::vector<int> inputs;
    for (uint64_t i = 0; i < branches; ++i) {
      inputs.push_back(FuzzSource(&b, catalog, fact).node);
    }
    s.node = b.AddOp(OperatorType::kUnion, inputs, {});
    s.unique0 = false;  // the same id can pass several branch filters
  } else if (shape < 11) {  // intersect of two filtered branches
    const Stream left = FuzzSource(&b, catalog, fact);
    const Stream right = FuzzSource(&b, catalog, fact);
    s = left;
    s.node = b.AddOp(OperatorType::kIntersect, {left.node, right.node}, {});
  } else if (shape < 13) {  // sort pipeline mid-plan
    s = FuzzChain(&b, FuzzSource(&b, catalog, fact));
    const int sc = static_cast<int>(
        rng_.UniformInt(static_cast<uint64_t>(s.arity)));
    PlanBuilder::NodeOptions sort_opts;
    sort_opts.kernel.sort_column = sc;
    const int runs = b.AddOp(OperatorType::kSortRuns, {s.node}, sort_opts);
    s.node = b.AddOp(OperatorType::kMergeSortedRuns, {runs}, sort_opts);
  } else if (shape < 15) {  // merge join against a sorted dim
    PlanBuilder::NodeOptions sort_opts;
    sort_opts.kernel.sort_column = kIdCol;
    const Stream dstream = FuzzSource(&b, catalog, dim);
    const int runs =
        b.AddOp(OperatorType::kSortRuns, {dstream.node}, sort_opts);
    const int sorted =
        b.AddOp(OperatorType::kMergeSortedRuns, {runs}, sort_opts);
    s = FuzzChain(&b, FuzzSource(&b, catalog, fact));
    PlanBuilder::NodeOptions join;
    join.kernel.probe_key = kFkCol;
    join.kernel.build_key = kIdCol;
    join.selectivity = 1.0;
    s.node = b.AddOp(OperatorType::kMergeJoin, {s.node, sorted}, join);
    s.arity += dstream.arity;
  } else if (shape < 17) {  // index nested-loop join against a base table
    s = FuzzChain(&b, FuzzSource(&b, catalog, fact));
    PlanBuilder::NodeOptions join;
    join.kernel.index_relation = dim;
    join.kernel.index_key = kIdCol;
    join.kernel.probe_key = kFkCol;
    join.selectivity = 1.0;
    const int node =
        b.AddOp(OperatorType::kIndexNestedLoopJoin, {s.node}, join);
    b.AddBaseInput(node, dim);
    s.node = node;
    s.arity += kTableArity;
  } else {  // block nested-loop join (kept small via a tight outer filter)
    PlanBuilder::NodeOptions outer_opts;
    const int64_t lo = rng_.UniformInt(static_cast<int64_t>(0), 30);
    outer_opts.kernel.filter_column = kValCol;
    outer_opts.kernel.filter_lo = static_cast<double>(lo);
    outer_opts.kernel.filter_hi = static_cast<double>(
        lo + rng_.UniformInt(static_cast<int64_t>(2), 8));
    outer_opts.selectivity = 0.2;
    const int outer = b.AddSource(OperatorType::kSelect, fact, outer_opts);
    const Stream inner = FuzzSource(&b, catalog, dim);
    PlanBuilder::NodeOptions join;
    join.kernel.probe_key = kFkCol;
    join.kernel.build_key = kIdCol;
    join.selectivity = 1.0;
    s.node = b.AddOp(OperatorType::kNestedLoopJoin,
                     {outer, inner.node}, join);
    s.arity += inner.arity;
  }

  FuzzSink(&b, s);
  auto plan = b.Build();
  LSCHED_CHECK(plan.ok()) << "fuzzer built an invalid plan (seed " << seed_
                          << "): " << plan.status().ToString();
  return std::move(plan).value();
}

FuzzedWorkload WorkloadFuzzer::NextWorkload() {
  FuzzedWorkload w;
  w.seed = seed_;
  w.catalog = FuzzCatalog();
  const int num_queries = static_cast<int>(
      rng_.UniformInt(static_cast<int64_t>(options_.min_queries),
                      static_cast<int64_t>(options_.max_queries)));
  const bool tagged = options_.num_tenants > 1 ||
                      options_.high_priority_fraction > 0.0 ||
                      options_.low_priority_fraction > 0.0;

  // Arrival pattern: homogeneous Poisson by default; a scenario preset's
  // time-varying rate curve when one is named. Scenario time is rescaled so
  // one unit of "expected inter-arrival at the base rate" maps onto each
  // engine's configured mean gap — the preset's burst/diurnal shape carries
  // over while the fuzz run keeps its usual duration.
  std::vector<double> real_times(static_cast<size_t>(num_queries));
  std::vector<double> sim_times(static_cast<size_t>(num_queries));
  if (!options_.scenario.empty()) {
    const std::optional<ScenarioSpec> spec = ScenarioByName(options_.scenario);
    LSCHED_CHECK(spec.has_value())
        << "unknown scenario preset: " << options_.scenario;
    const std::vector<double> at =
        SampleArrivalTimes(spec->rate, num_queries, &rng_);
    const double real_scale =
        options_.real_arrival_mean_seconds * spec->rate.base_rate;
    const double sim_scale =
        options_.sim_arrival_mean_seconds * spec->rate.base_rate;
    for (int i = 0; i < num_queries; ++i) {
      real_times[static_cast<size_t>(i)] = at[static_cast<size_t>(i)] *
                                           real_scale;
      sim_times[static_cast<size_t>(i)] = at[static_cast<size_t>(i)] *
                                          sim_scale;
    }
    w.real_thread_events = ScaleThreadEvents(spec->thread_events, real_scale);
    w.sim_thread_events = ScaleThreadEvents(spec->thread_events, sim_scale);
  } else {
    double real_at = 0.0;
    double sim_at = 0.0;
    for (int i = 0; i < num_queries; ++i) {
      real_times[static_cast<size_t>(i)] = real_at;
      sim_times[static_cast<size_t>(i)] = sim_at;
      real_at += rng_.Exponential(options_.real_arrival_mean_seconds);
      sim_at += rng_.Exponential(options_.sim_arrival_mean_seconds);
    }
  }

  for (int i = 0; i < num_queries; ++i) {
    QueryPlan plan = FuzzPlan(*w.catalog);
    const QueryTag tag = tagged ? FuzzTag() : QueryTag{};
    w.real_queries.push_back(
        {plan, real_times[static_cast<size_t>(i)], tag});
    w.sim_queries.push_back(
        {std::move(plan), sim_times[static_cast<size_t>(i)], tag});
  }
  if (options_.chaos) FuzzChaos(&w);
  return w;
}

QueryTag WorkloadFuzzer::FuzzTag() {
  QueryTag tag;
  if (options_.num_tenants > 1) {
    tag.tenant = static_cast<TenantId>(
        rng_.UniformInt(0, static_cast<int64_t>(options_.num_tenants) - 1));
  }
  const double r = rng_.Uniform();
  if (r < options_.high_priority_fraction) {
    tag.priority = QueryPriority::kHigh;
  } else if (r <
             options_.high_priority_fraction + options_.low_priority_fraction) {
    tag.priority = QueryPriority::kLow;
  }
  return tag;
}

ScriptedIngress WorkloadFuzzer::FuzzIngress(const Catalog& catalog) {
  // Small plan library reused across the stream: serving workloads repeat
  // query shapes, and sharing plans keeps 1000-query scripts cheap.
  const int num_plans = static_cast<int>(rng_.UniformInt(
      2, static_cast<int64_t>(std::max(2, options_.script_queries / 8))));
  std::vector<QueryPlan> plans;
  plans.reserve(num_plans);
  for (int i = 0; i < num_plans; ++i) plans.push_back(FuzzPlan(catalog));

  std::vector<IngressEvent> events;
  events.reserve(options_.script_queries);
  double at = 0.0;
  for (int i = 0; i < options_.script_queries; ++i) {
    at += rng_.Exponential(options_.script_arrival_mean_seconds);
    const int plan_index = static_cast<int>(
        rng_.UniformInt(0, static_cast<int64_t>(num_plans) - 1));
    events.push_back(IngressEvent::Submit(at, plan_index, FuzzTag()));
    if (rng_.Uniform() < options_.script_cancel_fraction) {
      // Cancel the submission somewhere later in the stream (possibly
      // while it runs, possibly long after it finished — a no-op then).
      const double cancel_at =
          at + rng_.Exponential(4.0 * options_.script_arrival_mean_seconds);
      events.push_back(IngressEvent::Cancel(cancel_at, i));
    }
  }
  return ScriptedIngress(std::move(events), std::move(plans));
}

void WorkloadFuzzer::FuzzChaos(FuzzedWorkload* w) {
  const size_t n = w->sim_queries.size();
  w->expected_statuses.assign(n, QueryStatus::kDone);
  for (size_t i = 0; i < n; ++i) {
    const double r = rng_.Uniform();
    if (r < options_.chaos_cancel_fraction) {
      // A t=0 cancel is processed before any arrival in both engines
      // (admit-and-cancel), so the query deterministically never runs.
      CancelRequest cancel;
      cancel.query = static_cast<QueryId>(i);
      cancel.time = 0.0;
      w->cancels.push_back(cancel);
      w->expected_statuses[i] = QueryStatus::kCancelled;
    } else if (r < options_.chaos_cancel_fraction +
                       options_.chaos_fail_fraction) {
      // Query-scoped always-fail rule: every work-order attempt errors, so
      // the query FAILs after max_retries in either engine regardless of
      // thread interleaving. Placed before the global delay rule below
      // (Check returns the FIRST firing rule's action).
      FaultRule rule;
      rule.point = "work_order_exec";
      rule.query = static_cast<int64_t>(i);
      rule.probability = 1.0;
      rule.action = {FaultType::kError, 0.0};
      w->faults.rules.push_back(rule);
      w->expected_statuses[i] = QueryStatus::kFailed;
    }
  }
  if (options_.chaos_stall_probability > 0.0) {
    // Timing noise only: delays perturb completion order and retry timing
    // but never change which terminal status a query reaches.
    FaultRule stall;
    stall.point = "work_order_exec";
    stall.probability = options_.chaos_stall_probability;
    stall.action = {FaultType::kDelay, options_.chaos_stall_seconds};
    w->faults.rules.push_back(stall);
  }
  w->faults.seed = rng_.Next();
}

}  // namespace lsched

#ifndef LSCHED_OBS_TRACE_H_
#define LSCHED_OBS_TRACE_H_

// Span-based tracer with per-thread ring buffers and a Chrome trace_event
// exporter.
//
// Each recording thread owns a fixed-capacity ring buffer (leased from a
// global pool so short-lived engine workers do not leak buffers); when a
// ring wraps, the oldest events are overwritten and counted as dropped.
// Event names/categories must be string literals (or otherwise outlive the
// tracer) — nothing is copied on the hot path.
//
// Two recording styles:
//  - ScopedSpan / LSCHED_TRACE_SPAN: RAII wall-clock span on the calling
//    thread (RealEngine workers, trainer loop).
//  - Tracer::RecordSpan with explicit timestamps: used by SimEngine to
//    record spans in *virtual* time against simulated thread ids.
//
// Export: Tracer::Global().WriteChromeTrace(path) (or the
// LSCHED_TRACE_EXPORT env var, see obs.h) emits JSON loadable in
// chrome://tracing / https://ui.perfetto.dev.

#include <cstdint>
#include <ostream>
#include <string>

#include "obs/obs.h"

namespace lsched {
namespace obs {

struct TraceEvent {
  const char* name = "";
  const char* category = "";
  double ts_us = 0.0;   ///< start timestamp, microseconds
  double dur_us = -1.0; ///< duration; < 0 encodes an instant event
  uint32_t tid = 0;
  /// Up to two small integer args, rendered into the Chrome "args" dict.
  const char* arg1_name = nullptr;
  int64_t arg1 = 0;
  const char* arg2_name = nullptr;
  int64_t arg2 = 0;
};

#if LSCHED_OBS_ENABLED

class Tracer {
 public:
  static Tracer& Global();

  /// Record a complete span / instant event with explicit timestamps.
  void RecordSpan(const TraceEvent& event);
  /// Bulk variant: one ring-buffer lock for the whole batch. Used by
  /// single-threaded recorders (SimEngine) that buffer an episode's spans.
  /// If the recorder itself already dropped older events, pass the number
  /// it *saw* as `total` (>= count) so dropped_events() stays truthful;
  /// `events` must then hold the newest `count` of them in order.
  void RecordSpans(const TraceEvent* events, size_t count,
                   uint64_t total = 0);
  void RecordInstant(const char* name, const char* category, double ts_us,
                     uint32_t tid, const char* arg1_name = nullptr,
                     int64_t arg1 = 0, const char* arg2_name = nullptr,
                     int64_t arg2 = 0);

  /// Chrome trace_event JSON of everything currently buffered.
  void ExportChromeTrace(std::ostream& out) const;
  bool WriteChromeTrace(const std::string& path) const;

  /// Drop all buffered events (buffers stay leased to their threads).
  void Clear();

  /// Total events overwritten by ring wraparound since the last Clear().
  uint64_t dropped_events() const;
  uint64_t buffered_events() const;

  /// Ring capacity (events per thread). Default 4096, overridable via the
  /// LSCHED_TRACE_CAPACITY env var; SetCapacityForTest only affects rings
  /// leased after the call.
  size_t capacity() const;
  void SetCapacityForTest(size_t capacity);

  struct Impl;  ///< public so the thread-local ring lease can reference it

 private:
  Tracer();
  Impl* impl_;
};

/// RAII wall-clock span recorded on destruction into the calling thread's
/// ring buffer.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* category,
             const char* arg1_name = nullptr, int64_t arg1 = 0,
             const char* arg2_name = nullptr, int64_t arg2 = 0)
      : active_(Enabled()) {
    if (!active_) return;
    event_.name = name;
    event_.category = category;
    event_.arg1_name = arg1_name;
    event_.arg1 = arg1;
    event_.arg2_name = arg2_name;
    event_.arg2 = arg2;
    event_.ts_us = NowMicros();
  }
  ~ScopedSpan() {
    if (!active_) return;
    event_.dur_us = NowMicros() - event_.ts_us;
    event_.tid = ThreadId();
    Tracer::Global().RecordSpan(event_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
  TraceEvent event_;
};

#else  // !LSCHED_OBS_ENABLED

class Tracer {
 public:
  static Tracer& Global() {
    static Tracer t;
    return t;
  }
  void RecordSpan(const TraceEvent&) {}
  void RecordSpans(const TraceEvent*, size_t, uint64_t = 0) {}
  void RecordInstant(const char*, const char*, double, uint32_t,
                     const char* = nullptr, int64_t = 0,
                     const char* = nullptr, int64_t = 0) {}
  void ExportChromeTrace(std::ostream& out) const {
    out << "{\"traceEvents\":[]}\n";
  }
  bool WriteChromeTrace(const std::string&) const { return false; }
  void Clear() {}
  uint64_t dropped_events() const { return 0; }
  uint64_t buffered_events() const { return 0; }
  size_t capacity() const { return 0; }
  void SetCapacityForTest(size_t) {}
};

class ScopedSpan {
 public:
  ScopedSpan(const char*, const char*, const char* = nullptr, int64_t = 0,
             const char* = nullptr, int64_t = 0) {}
};

#endif  // LSCHED_OBS_ENABLED

/// `LSCHED_TRACE_SPAN("engine.work_order", "engine", "query", qid);`
#define LSCHED_TRACE_SPAN(...) \
  ::lsched::obs::ScopedSpan lsched_obs_span_##__LINE__(__VA_ARGS__)

}  // namespace obs
}  // namespace lsched

#endif  // LSCHED_OBS_TRACE_H_

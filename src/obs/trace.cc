#include "obs/trace.h"

#if LSCHED_OBS_ENABLED

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

namespace lsched {
namespace obs {

namespace {

/// Fixed-capacity ring of trace events. Owned by the global pool, leased
/// to one thread at a time; the (rarely contended) mutex only collides
/// with an in-progress export or clear.
struct Ring {
  explicit Ring(size_t capacity) : events(capacity) {}

  std::mutex mu;
  std::vector<TraceEvent> events;
  uint64_t head = 0;     ///< total events ever written into this ring
  uint64_t skipped = 0;  ///< events dropped before reaching the ring
  size_t next = 0;       ///< head % events.size(), kept to avoid the division

  void Record(const TraceEvent& e) {
    std::lock_guard<std::mutex> lock(mu);
    events[next] = e;
    if (++next == events.size()) next = 0;
    ++head;
  }

  void RecordBatch(const TraceEvent* batch, size_t count, uint64_t total) {
    std::lock_guard<std::mutex> lock(mu);
    // Only the last `cap` events can survive; skip the ones that would be
    // overwritten within this very batch. `head` must count written events
    // only (the exporter relies on next == head % cap), so everything else
    // — intra-batch skips and upstream drops — lands in `skipped`.
    const size_t cap = events.size();
    const size_t first = count > cap ? count - cap : 0;
    for (size_t i = first; i < count; ++i) {
      events[next] = batch[i];
      if (++next == cap) next = 0;
    }
    head += count - first;
    skipped += std::max<uint64_t>(total, count) - (count - first);
  }
};

size_t DefaultCapacity() {
  if (const char* env = std::getenv("LSCHED_TRACE_CAPACITY")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 4096;
}

void JsonEscape(std::ostream& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

void EmitEvent(std::ostream& out, const TraceEvent& e, bool first) {
  if (!first) out << ",\n";
  out << "{\"name\":\"";
  JsonEscape(out, e.name);
  out << "\",\"cat\":\"";
  JsonEscape(out, e.category);
  out << "\",\"ph\":\"" << (e.dur_us < 0.0 ? "i" : "X") << "\"";
  if (e.dur_us < 0.0) out << ",\"s\":\"t\"";
  out << ",\"ts\":" << e.ts_us;
  if (e.dur_us >= 0.0) out << ",\"dur\":" << e.dur_us;
  out << ",\"pid\":1,\"tid\":" << e.tid;
  if (e.arg1_name != nullptr || e.arg2_name != nullptr) {
    out << ",\"args\":{";
    bool first_arg = true;
    if (e.arg1_name != nullptr) {
      out << "\"";
      JsonEscape(out, e.arg1_name);
      out << "\":" << e.arg1;
      first_arg = false;
    }
    if (e.arg2_name != nullptr) {
      if (!first_arg) out << ",";
      out << "\"";
      JsonEscape(out, e.arg2_name);
      out << "\":" << e.arg2;
    }
    out << "}";
  }
  out << "}";
}

}  // namespace

struct Tracer::Impl {
  std::mutex pool_mu;
  std::vector<std::unique_ptr<Ring>> rings;  ///< all rings ever created
  std::vector<Ring*> free_rings;             ///< released by exited threads
  std::atomic<size_t> capacity{DefaultCapacity()};

  Ring* Lease() {
    const size_t cap = capacity.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(pool_mu);
    // Reuse a released ring only if its capacity still matches (capacity
    // changes mid-process only in tests).
    for (size_t i = 0; i < free_rings.size(); ++i) {
      if (free_rings[i]->events.size() == cap) {
        Ring* r = free_rings[i];
        free_rings.erase(free_rings.begin() + static_cast<long>(i));
        return r;
      }
    }
    rings.push_back(std::make_unique<Ring>(cap));
    return rings.back().get();
  }

  void Release(Ring* ring) {
    std::lock_guard<std::mutex> lock(pool_mu);
    free_rings.push_back(ring);
  }
};

namespace {

/// Thread-local lease: acquires a ring on first use, returns it to the
/// pool when the thread exits so engines that spin up fresh worker pools
/// per run reuse buffers instead of growing without bound.
struct RingLease {
  Tracer::Impl* pool = nullptr;
  Ring* ring = nullptr;
  ~RingLease() {
    if (pool != nullptr && ring != nullptr) pool->Release(ring);
  }
};

thread_local RingLease tls_ring;

}  // namespace

Tracer::Tracer() : impl_(new Impl()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::RecordSpan(const TraceEvent& event) {
  if (!Enabled()) return;
  if (tls_ring.ring == nullptr) {
    tls_ring.pool = impl_;
    tls_ring.ring = impl_->Lease();
  }
  tls_ring.ring->Record(event);
}

void Tracer::RecordSpans(const TraceEvent* events, size_t count,
                         uint64_t total) {
  if (!Enabled() || count == 0) return;
  if (tls_ring.ring == nullptr) {
    tls_ring.pool = impl_;
    tls_ring.ring = impl_->Lease();
  }
  tls_ring.ring->RecordBatch(events, count, total);
}

void Tracer::RecordInstant(const char* name, const char* category,
                           double ts_us, uint32_t tid, const char* arg1_name,
                           int64_t arg1, const char* arg2_name, int64_t arg2) {
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.ts_us = ts_us;
  e.dur_us = -1.0;
  e.tid = tid;
  e.arg1_name = arg1_name;
  e.arg1 = arg1;
  e.arg2_name = arg2_name;
  e.arg2 = arg2;
  RecordSpan(e);
}

void Tracer::ExportChromeTrace(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  std::lock_guard<std::mutex> pool_lock(impl_->pool_mu);
  for (const auto& ring : impl_->rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    const size_t cap = ring->events.size();
    const uint64_t start = ring->head > cap ? ring->head - cap : 0;
    for (uint64_t i = start; i < ring->head; ++i) {
      EmitEvent(out, ring->events[i % cap], first);
      first = false;
    }
  }
  out << "\n]}\n";
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  ExportChromeTrace(out);
  return out.good();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> pool_lock(impl_->pool_mu);
  for (const auto& ring : impl_->rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    ring->head = 0;
    ring->skipped = 0;
    ring->next = 0;
  }
}

uint64_t Tracer::dropped_events() const {
  uint64_t dropped = 0;
  std::lock_guard<std::mutex> pool_lock(impl_->pool_mu);
  for (const auto& ring : impl_->rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    const size_t cap = ring->events.size();
    if (ring->head > cap) dropped += ring->head - cap;
    dropped += ring->skipped;
  }
  return dropped;
}

uint64_t Tracer::buffered_events() const {
  uint64_t buffered = 0;
  std::lock_guard<std::mutex> pool_lock(impl_->pool_mu);
  for (const auto& ring : impl_->rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    buffered += std::min<uint64_t>(ring->head, ring->events.size());
  }
  return buffered;
}

size_t Tracer::capacity() const {
  return impl_->capacity.load(std::memory_order_relaxed);
}

void Tracer::SetCapacityForTest(size_t capacity) {
  impl_->capacity.store(capacity, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace lsched

#endif  // LSCHED_OBS_ENABLED

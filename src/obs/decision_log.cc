#include "obs/decision_log.h"

#if LSCHED_OBS_ENABLED

#include <cmath>
#include <fstream>
#include <sstream>

namespace lsched {
namespace obs {

namespace {

/// Quotes a field if it contains CSV metacharacters (RFC-4180 style).
void WriteField(std::ostream& out, const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    out << s;
    return;
  }
  out << '"';
  for (char c : s) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

/// Splits one CSV line honoring quoted fields.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

DecisionLog& DecisionLog::Global() {
  static DecisionLog* log = new DecisionLog();
  return *log;
}

int64_t DecisionLog::Add(DecisionRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.id = static_cast<int64_t>(records_.size());
  records_.push_back(std::move(record));
  return records_.back().id;
}

void DecisionLog::AddRealized(int64_t id, double seconds) {
  if (id < 0) return;
  std::shared_ptr<const BackfillObserver> observer;
  DecisionRecord updated;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= static_cast<int64_t>(records_.size())) return;
    DecisionRecord& r = records_[static_cast<size_t>(id)];
    r.realized_seconds += seconds;
    if (backfill_observer_ != nullptr) {
      observer = backfill_observer_;
      updated = r;  // copy: the observer runs outside the lock
    }
  }
  if (observer != nullptr) (*observer)(updated);
}

void DecisionLog::SetBackfillObserver(BackfillObserver observer) {
  std::lock_guard<std::mutex> lock(mu_);
  if (observer == nullptr) {
    backfill_observer_.reset();
  } else {
    backfill_observer_ =
        std::make_shared<const BackfillObserver>(std::move(observer));
  }
}

void DecisionLog::AddPipeline(int64_t id, int64_t planned_work_orders) {
  if (id < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= static_cast<int64_t>(records_.size())) return;
  DecisionRecord& r = records_[static_cast<size_t>(id)];
  ++r.num_pipelines;
  r.planned_work_orders += planned_work_orders;
}

size_t DecisionLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::vector<DecisionRecord> DecisionLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

void DecisionLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

const char* DecisionLog::CsvHeader() {
  return "id,time,engine,event,policy,candidates,num_candidates,"
         "running_queries,free_threads,chosen_query,chosen_root,op_type,"
         "degree,max_threads,num_pipelines,planned_work_orders,"
         "predicted_score,schedule_wall_us,realized_seconds,fallback,"
         "tenant";
}

void DecisionLog::WriteCsv(std::ostream& out) const {
  const std::vector<DecisionRecord> records = Snapshot();
  out << CsvHeader() << "\n";
  out.precision(17);
  for (const DecisionRecord& r : records) {
    out << r.id << ',' << r.time << ',';
    WriteField(out, r.engine);
    out << ',';
    WriteField(out, r.event);
    out << ',';
    WriteField(out, r.policy);
    out << ',';
    WriteField(out, r.candidates);
    out << ',' << r.num_candidates << ',' << r.running_queries << ','
        << r.free_threads << ',' << r.chosen_query << ',' << r.chosen_root
        << ',';
    WriteField(out, r.op_type);
    out << ',' << r.degree << ',' << r.max_threads << ',' << r.num_pipelines
        << ',' << r.planned_work_orders << ',';
    if (std::isnan(r.predicted_score)) {
      out << "nan";
    } else {
      out << r.predicted_score;
    }
    out << ',' << r.schedule_wall_us << ',' << r.realized_seconds << ','
        << (r.fallback ? 1 : 0) << ',' << r.tenant << "\n";
  }
}

bool DecisionLog::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  WriteCsv(out);
  return out.good();
}

bool ParseDecisionCsv(std::istream& in, std::vector<DecisionRecord>* out) {
  out->clear();
  std::string line;
  if (!std::getline(in, line)) return false;
  if (line != DecisionLog::CsvHeader()) return false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> f = SplitCsvLine(line);
    if (f.size() != 21) return false;
    DecisionRecord r;
    try {
      r.id = std::stoll(f[0]);
      r.time = std::stod(f[1]);
      r.engine = f[2];
      r.event = f[3];
      r.policy = f[4];
      r.candidates = f[5];
      r.num_candidates = std::stoi(f[6]);
      r.running_queries = std::stoi(f[7]);
      r.free_threads = std::stoi(f[8]);
      r.chosen_query = std::stoll(f[9]);
      r.chosen_root = std::stoi(f[10]);
      r.op_type = f[11];
      r.degree = std::stoi(f[12]);
      r.max_threads = std::stoi(f[13]);
      r.num_pipelines = std::stoi(f[14]);
      r.planned_work_orders = std::stoll(f[15]);
      r.predicted_score = std::stod(f[16]);
      r.schedule_wall_us = std::stod(f[17]);
      r.realized_seconds = std::stod(f[18]);
      r.fallback = f[19] == "1";
      r.tenant = std::stoi(f[20]);
    } catch (...) {
      return false;
    }
    out->push_back(std::move(r));
  }
  return true;
}

}  // namespace obs
}  // namespace lsched

#endif  // LSCHED_OBS_ENABLED

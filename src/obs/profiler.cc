#include "obs/profiler.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/metrics.h"
#include "testing/faultpoint.h"

namespace lsched {
namespace prof {

// --- WorkerAccount --------------------------------------------------------

const char* WorkerStateName(WorkerState s) {
  switch (s) {
    case WorkerState::kDispatch: return "dispatch_overhead";
    case WorkerState::kExecuting: return "executing";
    case WorkerState::kIdle: return "idle";
    case WorkerState::kStalled: return "stalled";
    case WorkerState::kDraining: return "draining";
  }
  return "unknown";
}

bool ParseWorkerState(const std::string& name, WorkerState* out) {
  for (int i = 0; i < kNumWorkerStates; ++i) {
    const WorkerState s = static_cast<WorkerState>(i);
    if (name == WorkerStateName(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

void WorkerAccount::Start(int64_t now_ns, WorkerState initial) {
  for (auto& bucket : ns_) bucket.store(0, std::memory_order_relaxed);
  wall_ns_.store(0, std::memory_order_relaxed);
  start_ns_ = now_ns;
  last_ns_ = now_ns;
  state_.store(static_cast<uint8_t>(initial), std::memory_order_relaxed);
  started_.store(true, std::memory_order_release);
}

void WorkerAccount::Transition(WorkerState next, int64_t now_ns) {
  const int64_t now = std::max(now_ns, last_ns_);
  const int cur = state_.load(std::memory_order_relaxed);
  // Single-writer: load+store (not fetch_add) keeps the hot path one
  // uncontended cache line with no RMW.
  ns_[cur].store(ns_[cur].load(std::memory_order_relaxed) + (now - last_ns_),
                 std::memory_order_relaxed);
  wall_ns_.store(now - start_ns_, std::memory_order_relaxed);
  last_ns_ = now;
  state_.store(static_cast<uint8_t>(next), std::memory_order_relaxed);
}

void WorkerAccount::Stop(int64_t now_ns) {
  Transition(current(), now_ns);
}

WorkerStateBuckets WorkerAccount::Read() const {
  WorkerStateBuckets out;
  for (int i = 0; i < kNumWorkerStates; ++i) {
    out.ns[i] = ns_[i].load(std::memory_order_relaxed);
  }
  // wall_ns is computed from the start/last timestamps, independently of
  // the buckets, so the telescoping invariant (SumNs() == wall_ns) checks
  // two arithmetic paths against each other. It is exact once the owner
  // called Stop (and was joined); a live racy read may be mid-transition
  // and off by the in-flight interval.
  out.wall_ns = wall_ns_.load(std::memory_order_relaxed);
  return out;
}

// --- CounterTables --------------------------------------------------------

CounterTables& CounterTables::Global() {
  static CounterTables* tables = new CounterTables();
  return *tables;
}

void CounterTables::Register(const std::string& table, const std::string& label,
                             std::function<double()> value, bool rated) {
  std::lock_guard<std::mutex> lock(mu_);
  Table* t = nullptr;
  for (Table& existing : tables_) {
    if (existing.name == table) {
      t = &existing;
      break;
    }
  }
  if (t == nullptr) {
    tables_.emplace_back();
    t = &tables_.back();
    t->name = table;
  }
  for (Row& row : t->rows) {
    if (row.label == label) {
      row.fn = std::move(value);
      row.rated = rated;
      return;
    }
  }
  Row row;
  row.label = label;
  row.fn = std::move(value);
  row.rated = rated;
  t->rows.push_back(std::move(row));
}

std::string CounterTables::Render() {
  std::lock_guard<std::mutex> lock(mu_);
  const double now_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  const double dt = have_render_time_ ? (now_us - last_render_micros_) * 1e-6
                                      : 0.0;
  std::ostringstream os;
  size_t width = 12;
  for (const Table& t : tables_) {
    for (const Row& row : t.rows) width = std::max(width, row.label.size());
  }
  char buf[192];
  for (Table& t : tables_) {
    os << "[" << t.name << "]\n";
    for (Row& row : t.rows) {
      const double v = row.fn ? row.fn() : 0.0;
      if (row.rated) {
        if (row.have_last && dt > 0.0) {
          std::snprintf(buf, sizeof(buf), "  %-*s %14.6g %12.1f/s\n",
                        static_cast<int>(width), row.label.c_str(), v,
                        (v - row.last) / dt);
        } else {
          std::snprintf(buf, sizeof(buf), "  %-*s %14.6g %12s\n",
                        static_cast<int>(width), row.label.c_str(), v, "-");
        }
      } else {
        std::snprintf(buf, sizeof(buf), "  %-*s %14.6g\n",
                      static_cast<int>(width), row.label.c_str(), v);
      }
      os << buf;
      row.last = v;
      row.have_last = true;
    }
  }
  last_render_micros_ = now_us;
  have_render_time_ = true;
  return os.str();
}

void CounterTables::ResetRates() {
  std::lock_guard<std::mutex> lock(mu_);
  have_render_time_ = false;
  for (Table& t : tables_) {
    for (Row& row : t.rows) row.have_last = false;
  }
}

namespace {

std::function<double()> CounterFn(const char* name) {
  return [name]() {
    return obs::MetricsRegistry::Global().GetCounter(name)->Value();
  };
}

/// value(a) / max(1, value(b)) — hit rates, batch occupancy.
std::function<double()> RatioFn(const char* num, const char* num2,
                                const char* den) {
  return [num, num2, den]() {
    auto& reg = obs::MetricsRegistry::Global();
    const double n = reg.GetCounter(num)->Value() +
                     (num2 != nullptr ? reg.GetCounter(num2)->Value() : 0.0);
    const double d = reg.GetCounter(den)->Value();
    return d > 0.0 ? n / d : 0.0;
  };
}

}  // namespace

void RegisterDefaultCounterTables() {
  static bool registered = [] {
    CounterTables& t = CounterTables::Global();
    t.Register("sched", "decisions", CounterFn("sched.invocations"));
    t.Register("sched", "pipelines_launched",
               CounterFn("sched.pipelines_launched"));
    t.Register("sched", "fallback_decisions",
               CounterFn("sched.fallback_decisions"));
    t.Register("sched", "policy_fallbacks", CounterFn("sched.fallback_total"));
    t.Register("encoder", "cache_hits", CounterFn("sched.encoder_cache_hits"));
    t.Register("encoder", "cache_misses",
               CounterFn("sched.encoder_cache_misses"));
    t.Register("encoder", "hit_rate",
               [] {
                 auto& reg = obs::MetricsRegistry::Global();
                 const double h =
                     reg.GetCounter("sched.encoder_cache_hits")->Value();
                 const double m =
                     reg.GetCounter("sched.encoder_cache_misses")->Value();
                 return h + m > 0.0 ? h / (h + m) : 0.0;
               },
               /*rated=*/false);
    t.Register("nn", "batch_calls", CounterFn("nn.batch_calls"));
    t.Register("nn", "batch_rows", CounterFn("nn.batch_rows"));
    t.Register("nn", "batch_occupancy",
               RatioFn("nn.batch_rows", nullptr, "nn.batch_calls"),
               /*rated=*/false);
    t.Register("exec", "work_orders_dispatched",
               CounterFn("engine.work_orders_dispatched"));
    t.Register("exec", "work_orders_completed",
               CounterFn("engine.work_orders_completed"));
    t.Register("exec", "queries_completed",
               CounterFn("engine.queries_completed"));
    t.Register("exec", "retries", CounterFn("exec.retry_total"));
    t.Register("faults", "fires",
               [] {
                 return static_cast<double>(
                     FaultInjector::Global().total_fires());
               });
    t.Register("serve", "admitted", CounterFn("serve.admitted_total"));
    t.Register("serve", "shed", CounterFn("serve.shed_total"));
    t.Register("serve", "displaced", CounterFn("serve.displaced_total"));
    return true;
  }();
  (void)registered;
}

// --- sampling profiler ----------------------------------------------------

std::string ProfileSamplesToCsv(const std::vector<ProfileSample>& samples) {
  std::ostringstream os;
  os << "t_us,engine,worker,state\n";
  for (const ProfileSample& s : samples) {
    os << s.t_us << "," << s.engine << "," << s.worker << ","
       << WorkerStateName(s.state) << "\n";
  }
  return os.str();
}

bool ParseProfileCsv(const std::string& text,
                     std::vector<ProfileSample>* out) {
  out->clear();
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line)) return false;
  if (line.rfind("t_us,", 0) != 0) return false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ProfileSample s;
    const size_t c1 = line.find(',');
    const size_t c2 = line.find(',', c1 == std::string::npos ? 0 : c1 + 1);
    const size_t c3 = line.find(',', c2 == std::string::npos ? 0 : c2 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos ||
        c3 == std::string::npos) {
      return false;
    }
    s.t_us = std::strtoll(line.c_str(), nullptr, 10);
    s.engine = line.substr(c1 + 1, c2 - c1 - 1);
    s.worker = static_cast<int32_t>(std::strtol(line.c_str() + c2 + 1,
                                                nullptr, 10));
    if (!ParseWorkerState(line.substr(c3 + 1), &s.state)) return false;
    out->push_back(std::move(s));
  }
  return true;
}

std::string RenderProfileSummary(const std::vector<ProfileSample>& samples) {
  // (engine, worker) -> per-state sample counts, in first-seen order.
  struct Key {
    std::string engine;
    int32_t worker;
  };
  std::vector<Key> order;
  std::vector<std::array<int64_t, kNumWorkerStates>> counts;
  for (const ProfileSample& s : samples) {
    size_t idx = order.size();
    for (size_t i = 0; i < order.size(); ++i) {
      if (order[i].engine == s.engine && order[i].worker == s.worker) {
        idx = i;
        break;
      }
    }
    if (idx == order.size()) {
      order.push_back({s.engine, s.worker});
      counts.push_back({});
    }
    counts[idx][static_cast<int>(s.state)] += 1;
  }
  std::ostringstream os;
  char buf[224];
  std::snprintf(buf, sizeof(buf), "%-10s %-6s %8s %9s %9s %6s %8s %9s\n",
                "engine", "worker", "samples", "dispatch%", "execute%",
                "idle%", "stalled%", "draining%");
  os << buf;
  for (size_t i = 0; i < order.size(); ++i) {
    int64_t total = 0;
    for (int64_t c : counts[i]) total += c;
    if (total == 0) continue;
    const double inv = 100.0 / static_cast<double>(total);
    std::snprintf(
        buf, sizeof(buf), "%-10s %-6d %8" PRId64 " %9.1f %9.1f %6.1f %8.1f %9.1f\n",
        order[i].engine.c_str(), order[i].worker, total,
        static_cast<double>(counts[i][0]) * inv,
        static_cast<double>(counts[i][1]) * inv,
        static_cast<double>(counts[i][2]) * inv,
        static_cast<double>(counts[i][3]) * inv,
        static_cast<double>(counts[i][4]) * inv);
    os << buf;
  }
  os << samples.size() << " sample(s)\n";
  return os.str();
}

#if LSCHED_OBS_ENABLED

SamplingProfiler& SamplingProfiler::Global() {
  static SamplingProfiler* profiler = new SamplingProfiler();
  return *profiler;
}

int SamplingProfiler::RegisterWorkers(
    const std::string& engine, std::vector<const WorkerAccount*> accounts) {
  std::lock_guard<std::mutex> lock(mu_);
  Registration reg;
  reg.handle = next_handle_++;
  reg.engine = engine;
  reg.accounts = std::move(accounts);
  registrations_.push_back(std::move(reg));
  return registrations_.back().handle;
}

void SamplingProfiler::UnregisterWorkers(int handle) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < registrations_.size(); ++i) {
    if (registrations_[i].handle == handle) {
      registrations_.erase(registrations_.begin() +
                           static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

bool SamplingProfiler::Start(double hz, size_t capacity) {
  if (hz <= 0.0 || capacity == 0) return false;
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.assign(capacity, ProfileSample{});
    ring_head_ = 0;
    ring_size_ = 0;
  }
  dropped_.store(0, std::memory_order_relaxed);
  stop_requested_.store(false, std::memory_order_release);
  period_us_ = 1e6 / hz;
  sampler_ = std::thread([this] {
    while (!stop_requested_.load(std::memory_order_acquire)) {
      SampleOnce();
      std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
          period_us_));
    }
  });
  return true;
}

void SamplingProfiler::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  if (sampler_.joinable()) sampler_.join();
  running_.store(false, std::memory_order_release);
}

void SamplingProfiler::SampleOnce() {
  const int64_t t_us = static_cast<int64_t>(obs::NowMicros());
  std::lock_guard<std::mutex> lock(mu_);
  for (const Registration& reg : registrations_) {
    for (size_t w = 0; w < reg.accounts.size(); ++w) {
      const WorkerAccount* acct = reg.accounts[w];
      if (acct == nullptr || !acct->started()) continue;
      ProfileSample s;
      s.t_us = t_us;
      s.engine = reg.engine;
      s.worker = static_cast<int32_t>(w);
      s.state = acct->current();
      if (ring_size_ == ring_.size()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++ring_size_;
      }
      ring_[ring_head_] = std::move(s);
      ring_head_ = (ring_head_ + 1) % ring_.size();
    }
  }
}

std::vector<ProfileSample> SamplingProfiler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ProfileSample> out;
  out.reserve(ring_size_);
  const size_t start = (ring_head_ + ring_.size() - ring_size_) % ring_.size();
  for (size_t i = 0; i < ring_size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

bool SamplingProfiler::WriteCsv(const std::string& path) const {
  const std::string csv = ProfileSamplesToCsv(Snapshot());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  std::fclose(f);
  return ok;
}

#endif  // LSCHED_OBS_ENABLED

}  // namespace prof
}  // namespace lsched

#include "obs/exporter.h"

#include <atomic>
#include <cstdio>
#include <cstring>

#include "util/build_info.h"

namespace lsched {
namespace obs {

namespace {

std::atomic<bool> g_draining{false};

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

// Prometheus label-value escaping: backslash, double quote, newline.
std::string EscapeLabelValue(const char* v) {
  std::string out;
  for (const char* p = v; *p != '\0'; ++p) {
    switch (*p) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += *p;
    }
  }
  return out;
}

}  // namespace

std::string BuildInfoPrometheusText() {
  std::string buf;
  buf += "# HELP lsched_build_info build provenance (constant 1)\n";
  buf += "# TYPE lsched_build_info gauge\n";
  buf += "lsched_build_info{git_sha=\"" +
         EscapeLabelValue(buildinfo::kGitSha) + "\",compiler=\"" +
         EscapeLabelValue(buildinfo::kCompiler) + "\",build_type=\"" +
         EscapeLabelValue(buildinfo::kBuildType) + "\",obs=\"" +
         EscapeLabelValue(buildinfo::kObs) + "\",faults=\"" +
         EscapeLabelValue(buildinfo::kFaults) + "\"} 1\n";
  return buf;
}

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

void SetDraining(bool draining) {
  g_draining.store(draining, std::memory_order_release);
}

bool Draining() { return g_draining.load(std::memory_order_acquire); }

void RenderPrometheusText(const MetricsRegistry::Snapshot& snapshot,
                          std::ostream& out) {
  std::string buf;
  buf.reserve(4096);
  buf += BuildInfoPrometheusText();
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    buf += "# HELP " + prom + " " + name + "\n";
    buf += "# TYPE " + prom + " counter\n";
    buf += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    buf += "# HELP " + prom + " " + name + "\n";
    buf += "# TYPE " + prom + " gauge\n";
    buf += prom + " ";
    AppendDouble(&buf, value);
    buf += "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    buf += "# HELP " + prom + " " + name + "\n";
    buf += "# TYPE " + prom + " histogram\n";
    // Cumulative buckets; only boundaries where the count changes are
    // emitted (Prometheus allows sparse `le` sets) plus the +Inf catch-all.
    uint64_t cumulative = 0;
    for (size_t b = 0; b < hist.bucket_counts.size(); ++b) {
      if (hist.bucket_counts[b] == 0) continue;
      cumulative += hist.bucket_counts[b];
      buf += prom + "_bucket{le=\"";
      AppendDouble(&buf, HistogramSnapshot::UpperBound(b));
      buf += "\"} " + std::to_string(cumulative) + "\n";
    }
    buf += prom + "_bucket{le=\"+Inf\"} " + std::to_string(hist.count) + "\n";
    buf += prom + "_sum ";
    AppendDouble(&buf, hist.sum);
    buf += "\n";
    buf += prom + "_count " + std::to_string(hist.count) + "\n";
  }
  out << buf;
}

}  // namespace obs
}  // namespace lsched

#if LSCHED_OBS_ENABLED

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstdlib>
#include <sstream>

#include "obs/profiler.h"
#include "util/logging.h"

namespace lsched {
namespace obs {

namespace {

/// Sends `data` fully, tolerating short writes. Best-effort: scrape
/// clients that hang up early are not an error worth surfacing.
void SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

std::string HttpResponse(int code, const char* status,
                         const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(code);
  out += " ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsExporter::~MetricsExporter() { Stop(); }

bool MetricsExporter::Start(int port) {
  if (running_.load(std::memory_order_acquire)) return false;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&MetricsExporter::Serve, this);
  return true;
}

void MetricsExporter::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  // The accept loop has exited, so no new connections arrive. Join every
  // in-flight handler before closing the listen fd: a scrape that raced
  // Stop() still gets its complete response (socket timeouts in
  // HandleConnection bound how long a stuck client can delay shutdown).
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& conn : connections_) {
      if (conn->thread.joinable()) conn->thread.join();
    }
    connections_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void MetricsExporter::ReapFinishedLocked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void MetricsExporter::Serve() {
  pollfd pfd{};
  pfd.fd = listen_fd_;
  pfd.events = POLLIN;
  while (!stop_.load(std::memory_order_acquire)) {
    // Short poll timeout so Stop() is observed promptly without a wakeup
    // pipe; scrape intervals are seconds, 100ms of shutdown latency is
    // irrelevant.
    const int r = ::poll(&pfd, 1, 100);
    if (r <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // One thread per connection: concurrent scrapes do not serialize
    // behind a slow reader. The Connection's thread member is assigned
    // under the lock so the reaper never observes a half-constructed
    // std::thread.
    std::lock_guard<std::mutex> lock(conn_mu_);
    ReapFinishedLocked();
    connections_.push_back(std::make_unique<Connection>());
    Connection* conn = connections_.back().get();
    conn->thread = std::thread([this, conn, client] {
      HandleConnection(client);
      ::close(client);
      conn->done.store(true, std::memory_order_release);
    });
  }
}

void MetricsExporter::HandleConnection(int fd) {
  // Bound how long a stuck client can hold the accept loop.
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  char buf[2048];
  size_t have = 0;
  while (have < sizeof(buf) - 1) {
    const ssize_t n = ::recv(fd, buf + have, sizeof(buf) - 1 - have, 0);
    if (n <= 0) break;
    have += static_cast<size_t>(n);
    buf[have] = '\0';
    if (std::strstr(buf, "\r\n\r\n") != nullptr ||
        std::strstr(buf, "\n\n") != nullptr) {
      break;
    }
  }
  if (have == 0) return;
  buf[have] = '\0';

  // Request line: METHOD SP PATH SP VERSION.
  const char* sp1 = std::strchr(buf, ' ');
  if (sp1 == nullptr || std::strncmp(buf, "GET ", 4) != 0) {
    SendAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                             "method not allowed\n"));
    return;
  }
  const char* path = sp1 + 1;
  const char* sp2 = std::strpbrk(path, " \r\n");
  const std::string target(path, sp2 == nullptr
                                     ? std::strlen(path)
                                     : static_cast<size_t>(sp2 - path));

  if (target == "/metrics" || target.rfind("/metrics?", 0) == 0) {
    std::ostringstream body;
    RenderPrometheusText(MetricsRegistry::Global().TakeSnapshot(), body);
    SendAll(fd, HttpResponse(200, "OK", "text/plain; version=0.0.4",
                             body.str()));
  } else if (target == "/tables") {
    prof::RegisterDefaultCounterTables();
    SendAll(fd, HttpResponse(200, "OK", "text/plain",
                             prof::CounterTables::Global().Render()));
  } else if (target == "/healthz") {
    if (Draining()) {
      SendAll(fd, HttpResponse(503, "Service Unavailable", "text/plain",
                               "draining\n"));
    } else {
      SendAll(fd, HttpResponse(200, "OK", "text/plain", "ok\n"));
    }
  } else {
    SendAll(fd, HttpResponse(404, "Not Found", "text/plain", "not found\n"));
  }
}

MetricsExporter& GlobalExporter() {
  static MetricsExporter* e = new MetricsExporter();
  return *e;
}

bool StartExporterFromEnv() {
  const char* env = std::getenv("LSCHED_METRICS_PORT");
  if (env == nullptr || *env == '\0') return false;
  MetricsExporter& exporter = GlobalExporter();
  if (exporter.running()) return true;
  const int port = std::atoi(env);
  if (port < 0 || port > 65535) {
    LSCHED_LOG(Error) << "invalid LSCHED_METRICS_PORT: " << env;
    return false;
  }
  if (!exporter.Start(port)) {
    LSCHED_LOG(Error) << "metrics exporter failed to bind port " << port;
    return false;
  }
  LSCHED_LOG(Info) << "metrics exporter serving http://127.0.0.1:"
                   << exporter.port() << "/metrics";
  return true;
}

}  // namespace obs
}  // namespace lsched

#endif  // LSCHED_OBS_ENABLED

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace lsched {
namespace obs {

namespace {
constexpr size_t kBuckets = 64;
constexpr double kMinValue = 1e-9;
}  // namespace

// HistogramSnapshot is compiled in both modes (it is plain data the
// compiled-out stubs still return).
double HistogramSnapshot::LowerBound(size_t bucket) {
  if (bucket == 0) return 0.0;
  return kMinValue * std::exp2(static_cast<double>(bucket - 1));
}

double HistogramSnapshot::UpperBound(size_t bucket) {
  return kMinValue * std::exp2(static_cast<double>(bucket));
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (bucket_counts.size() < other.bucket_counts.size()) {
    bucket_counts.resize(other.bucket_counts.size(), 0);
  }
  for (size_t i = 0; i < other.bucket_counts.size(); ++i) {
    bucket_counts[i] += other.bucket_counts[i];
  }
  count += other.count;
  sum += other.sum;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    const uint64_t c = bucket_counts[i];
    if (c == 0) continue;
    if (static_cast<double>(seen + c) >= rank) {
      // Linear interpolation inside the bucket.
      const double lo = LowerBound(i);
      const double hi = UpperBound(i);
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(c);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += c;
  }
  return UpperBound(bucket_counts.empty() ? 0 : bucket_counts.size() - 1);
}

#if LSCHED_OBS_ENABLED

static_assert(kBuckets == internal::kHistogramBuckets);
static_assert(kMinValue == internal::kHistogramMinValue);

namespace internal {

size_t AssignShardIndex() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % kShards;
}

}  // namespace internal

void Histogram::MergeSnapshot(const HistogramSnapshot& snap) {
  if (!Enabled() || snap.count == 0) return;
  Shard& s = shards_[internal::ShardIndex()];
  const size_t n = std::min(snap.bucket_counts.size(), kBuckets);
  for (size_t b = 0; b < n; ++b) {
    if (snap.bucket_counts[b] != 0) {
      s.buckets[b].fetch_add(snap.bucket_counts[b], std::memory_order_relaxed);
    }
  }
  internal::AtomicAddDouble(&s.sum, snap.sum);
}

HistogramSnapshot Histogram::TakeSnapshot() const {
  HistogramSnapshot snap;
  snap.bucket_counts.assign(kBuckets, 0);
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < kBuckets; ++b) {
      snap.bucket_counts[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.bucket_counts) snap.count += c;
  return snap;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (size_t b = 0; b < kBuckets; ++b) {
      s.buckets[b].store(0, std::memory_order_relaxed);
    }
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& c : counters_) {
    if (c->name() == name) return c.get();
  }
  counters_.push_back(std::make_unique<Counter>(name));
  return counters_.back().get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& g : gauges_) {
    if (g->name() == name) return g.get();
  }
  gauges_.push_back(std::make_unique<Gauge>(name));
  return gauges_.back().get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& h : histograms_) {
    if (h->name() == name) return h.get();
  }
  histograms_.push_back(std::make_unique<Histogram>(name));
  return histograms_.back().get();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& c : counters_) {
    snap.counters.emplace_back(c->name(), c->Value());
  }
  for (const auto& g : gauges_) {
    snap.gauges.emplace_back(g->name(), g->Value());
  }
  for (const auto& h : histograms_) {
    snap.histograms.emplace_back(h->name(), h->TakeSnapshot());
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& c : counters_) c->Reset();
  for (const auto& g : gauges_) g->Reset();
  for (const auto& h : histograms_) h->Reset();
}

#endif  // LSCHED_OBS_ENABLED

}  // namespace obs
}  // namespace lsched

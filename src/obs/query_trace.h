#ifndef LSCHED_OBS_QUERY_TRACE_H_
#define LSCHED_OBS_QUERY_TRACE_H_

// Per-query lifetime traces (DESIGN.md §8.2): every query accumulates a
// causally ordered record of lifecycle edges — arrival, the admission
// verdict from the ServingHooks seam (admit / shed / displace), every
// scheduler decision that considered but skipped it (with the policy's
// predicted score), fairness redirections and injections applied by
// decision post-processing, each work-order dispatch / completion /
// failure / retry, and the terminal transition. The edge stream is the
// ground truth the canonical latency decomposition (LatencyBreakdown) is
// derived from: DeriveBreakdown() below is the single pure derivation both
// engines' decompositions must agree with bit-for-bit.
//
// Capture is assembled episode-locally by EpisodeRecorder (coordinator
// thread only) and published per terminal query into the process-global
// QueryTraceLog — a mutex-guarded ring of the most recent traces, dumped
// to CSV via LSCHED_QUERY_TRACE=<path> or `lsched_cli serve --trace-out=`.
// `lsched_cli explain <query-id>` replays a dumped trace into a
// human-readable timeline (RenderExplain).
//
// The plain-data types and pure functions (parse / derive / render) are
// compiled in every build mode so offline tooling keeps working; the
// QueryTraceLog itself compiles to a no-op stub under -DLSCHED_OBS=OFF
// like the rest of src/obs.

#include <cstdint>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "exec/exec_types.h"
#include "obs/obs.h"

namespace lsched {
namespace obs {

/// One lifecycle edge. `a`/`b`/`value` are kind-specific (see each kind).
enum class TraceEdgeKind : uint8_t {
  kArrival = 0,    ///< query entered the system (a=tenant, b=priority)
  kAdmit,          ///< admission verdict: admitted (a=1 when it displaced
                   ///< another query, see kDisplace)
  kShed,           ///< admission verdict: refused / load-shed at the door
  kDisplace,       ///< this (admitted) query displaced victim a
  kDisplacedBy,    ///< this query was displaced by newcomer a
  kConsideredSkipped,  ///< a scheduler decision considered this query but
                       ///< chose another (a=decision id, b=chosen query,
                       ///< value=policy's predicted score for its choice)
  kFallback,       ///< like kConsideredSkipped, but the decision came from
                   ///< a guard fallback (GuardedPolicy FIFO path)
  kScheduled,      ///< a pipeline of this query launched (a=decision id,
                   ///< b=root op, value=pipeline degree)
  kRedirected,     ///< fairness post-processing redirected this query's
                   ///< launch to query a (the wait continues)
  kInjected,       ///< fairness post-processing injected a launch for this
                   ///< query (a=query it was taken from or -1;
                   ///< value: 1=priority injection, 2=share injection)
  kDispatch,       ///< a work-order attempt was handed to a thread
                   ///< (value!=0 marks a retry dispatch)
  kComplete,       ///< a work-order attempt completed (value=seconds)
  kFailed,         ///< a work-order attempt failed / expired
  kRetry,          ///< a failed attempt was queued for re-dispatch
  kTerminal,       ///< terminal transition (a=QueryStatus as int,
                   ///< value=end-to-end latency seconds)
};

const char* TraceEdgeKindName(TraceEdgeKind k);

struct TraceEdge {
  double time = 0.0;  ///< engine time (virtual or wall seconds)
  TraceEdgeKind kind = TraceEdgeKind::kArrival;
  int64_t a = -1;
  int64_t b = -1;
  double value = 0.0;
};

/// The published lifetime record of one terminal query.
struct QueryTraceRecord {
  int64_t query = -1;
  int32_t tenant = 0;
  int32_t priority = 1;       ///< QueryPriority as int
  std::string engine;         ///< "sim" or "real"
  int32_t final_status = 0;   ///< QueryStatus as int
  double arrival_time = 0.0;
  double terminal_time = 0.0;
  LatencyBreakdown breakdown;  ///< the engine-computed decomposition
  std::vector<TraceEdge> edges;
  int64_t dropped_edges = 0;  ///< edges not recorded (per-query cap hit)
};

/// Per-query edge cap: beyond this, edges are counted in `dropped_edges`
/// instead of stored (the terminal edge is always kept).
inline constexpr int kMaxTraceEdgesPerQuery = 128;

/// Replays a record's edge stream through the same integer-nanosecond
/// four-bucket state machine the engines run online (EpisodeRecorder), so
/// for any record with dropped_edges == 0 the result is bit-identical to
/// `record.breakdown` regardless of which engine produced it. This is the
/// canonical definition of the decomposition.
LatencyBreakdown DeriveBreakdown(const QueryTraceRecord& record);

/// Renders a record as a human-readable timeline plus a per-segment
/// attribution naming the redirection / displacement / guard fallback
/// responsible for each wait segment (`lsched_cli explain`).
std::string RenderExplain(const QueryTraceRecord& record);

/// CSV: one row per edge, per-query columns repeated; header below.
std::string QueryTraceCsvHeader();
void WriteQueryTraceCsv(const std::vector<QueryTraceRecord>& records,
                        std::ostream& os);
/// Parses a CSV produced by WriteQueryTraceCsv. Returns false (leaving
/// `out` in an unspecified state) on a malformed header or row.
bool ParseQueryTraceCsv(std::istream& is, std::vector<QueryTraceRecord>* out);

#if LSCHED_OBS_ENABLED

/// Process-global bounded log of the most recently finished query traces.
/// Thread-safe; Record() is one mutex acquisition per *terminal query*
/// (not per edge), so it stays off the per-work-order hot path.
class QueryTraceLog {
 public:
  explicit QueryTraceLog(size_t capacity = 4096);

  /// Capture master switch (default on). When off, EpisodeRecorder skips
  /// edge assembly entirely; flipping it takes effect at the next
  /// EpisodeRecorder::Begin().
  void SetCapture(bool on);
  bool capture_enabled() const;

  void Record(QueryTraceRecord record);

  /// All retained records, oldest first.
  std::vector<QueryTraceRecord> Snapshot() const;
  /// Most recent record for `query`; false if none retained.
  bool Find(int64_t query, QueryTraceRecord* out) const;
  size_t size() const;
  void Clear();

  /// Dumps Snapshot() as CSV. Returns false when the file can't be opened.
  bool WriteCsv(const std::string& path) const;

  /// The process-global instance (leaked singleton, like DecisionLog).
  static QueryTraceLog& Global();

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  size_t next_ = 0;        ///< ring insert position
  bool wrapped_ = false;
  bool capture_ = true;
  std::vector<QueryTraceRecord> ring_;
};

#else  // !LSCHED_OBS_ENABLED

class QueryTraceLog {
 public:
  explicit QueryTraceLog(size_t = 4096) {}
  void SetCapture(bool) {}
  bool capture_enabled() const { return false; }
  void Record(QueryTraceRecord) {}
  std::vector<QueryTraceRecord> Snapshot() const { return {}; }
  bool Find(int64_t, QueryTraceRecord*) const { return false; }
  size_t size() const { return 0; }
  void Clear() {}
  bool WriteCsv(const std::string&) const { return false; }
  static QueryTraceLog& Global() {
    static QueryTraceLog log;
    return log;
  }
};

#endif  // LSCHED_OBS_ENABLED

}  // namespace obs
}  // namespace lsched

#endif  // LSCHED_OBS_QUERY_TRACE_H_

#ifndef LSCHED_OBS_DRIFT_H_
#define LSCHED_OBS_DRIFT_H_

// Online prediction-drift monitor: watches the stream of (predicted score,
// realized work-order seconds) pairs that the scheduler decision log
// back-fills, maintains streaming quantile sketches of the signed
// prediction error per operator type, and raises an alarm when the error
// distribution shifts (Page-Hinkley test on the standardized error).
//
// Motivation (ISSUE 3 / related work): learned schedulers degrade when the
// workload distribution moves under the policy; the drift score is the
// signal that the serving policy is going stale *before* tail latencies
// show it. OnlineLSched can register for the alarm and escalate from
// checkpoint-mode serving to query-by-query updates
// (OnlineLSched::AttachDriftMonitor).
//
// Exported gauges (registry): `model.drift_score` (Page-Hinkley statistic
// over its alarm threshold; >= 1 means alarmed), `model.pred_error_p50`,
// `model.pred_error_p99`, `model.pred_error_mean`; counter
// `model.drift_alarms`.

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace lsched {
namespace obs {

struct DecisionRecord;

/// Streaming quantile estimator (Jain & Chlamtac's P² algorithm): five
/// markers, O(1) memory, no stored samples. Exact below five observations.
/// Pure algorithm — compiled in regardless of LSCHED_OBS (tests and
/// offline tooling use it directly).
class P2Quantile {
 public:
  /// `quantile` in (0, 1), e.g. 0.5 or 0.99.
  explicit P2Quantile(double quantile);

  void Observe(double x);
  /// Current estimate; exact for fewer than five observations, 0 when
  /// empty.
  double Value() const;
  int64_t count() const { return count_; }

 private:
  double q_;
  int64_t count_ = 0;
  double heights_[5] = {};    // marker heights q_i
  double positions_[5] = {};  // actual marker positions n_i (1-based)
  double desired_[5] = {};    // desired positions n'_i
  double increments_[5] = {}; // desired-position increments dn'_i
};

struct DriftConfig {
  /// Page-Hinkley per-sample tolerance, in standard deviations: drift
  /// slower than this never accumulates. Also sets the false-alarm rate:
  /// the stationary average run length is ~exp(2*delta*lambda)/(2*delta^2)
  /// samples (~2.6e7 at the defaults; delta = 0.1 would false-alarm every
  /// ~2.5e3).
  double ph_delta = 0.25;
  /// Alarm threshold on the Page-Hinkley statistic (standard-deviation
  /// sample units). A sustained 2-sigma shift alarms after roughly
  /// lambda / (2 - delta) samples (~17 at the defaults).
  double ph_lambda = 30.0;
  /// Baseline samples before the test starts accumulating (lets the
  /// running mean/std settle).
  int min_samples = 50;
  /// Per-key (operator type) sketch cap; overflow keys collapse into
  /// "other".
  size_t max_keys = 64;
  /// Per-tenant drift-shard cap (serving mode): each tenant gets its own
  /// Page-Hinkley accumulators + error quantile sketches so a retrain
  /// trigger can fire for one tenant's mix while the global stream looks
  /// stationary. Samples from tenants past the cap only feed the global
  /// monitor.
  size_t max_tenants = 16;
  /// Publish the model.* gauges on every Observe.
  bool export_gauges = true;
};

struct DriftAlarm {
  double drift_score = 0.0;   ///< Page-Hinkley statistic / ph_lambda
  int64_t sample_count = 0;   ///< errors observed when the alarm fired
  double error_mean = 0.0;    ///< running mean of the signed error
  double error_std = 0.0;     ///< running std of the signed error
  bool upward = false;        ///< direction of the detected shift
  /// Tenant whose shard fired, or -1 for the process-global stream.
  int32_t tenant = -1;
};

#if LSCHED_OBS_ENABLED

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftConfig config = DriftConfig());
  ~DriftMonitor();

  DriftMonitor(const DriftMonitor&) = delete;
  DriftMonitor& operator=(const DriftMonitor&) = delete;

  /// Feeds one (predicted, realized) pair attributed to `key` (operator
  /// type). Ignored when either value is non-finite (decisions without a
  /// predicted score log NaN). Thread-safe.
  void Observe(const std::string& key, double predicted, double realized);

  /// Same, additionally routing the sample into `tenant`'s drift shard
  /// (tenant < 0 feeds only the global stream).
  void Observe(const std::string& key, int32_t tenant, double predicted,
               double realized);

  /// Convenience: Observe() with the fields of a back-filled decision
  /// record (key = op_type, "unknown" when empty; tenant = record.tenant).
  void ObserveRecord(const DecisionRecord& record);

  /// Registers this monitor as the decision log's back-fill observer so
  /// every realized-cost attribution flows in automatically. One monitor
  /// per process may be attached; the destructor detaches.
  void AttachToDecisionLog();
  void DetachFromDecisionLog();

  /// Callback invoked (outside the monitor lock) when the alarm first
  /// fires; it stays latched until Reset(). Callbacks must be registered
  /// before the stream starts and be safe to call from whichever thread
  /// observes the fatal sample.
  void AddAlarmCallback(std::function<void(const DriftAlarm&)> callback);

  /// Page-Hinkley statistic normalized by ph_lambda; >= 1 means drifted.
  double drift_score() const;
  bool alarmed() const;
  int64_t sample_count() const;

  struct KeyStats {
    int64_t count = 0;
    double mean_error = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
  };
  /// Per-operator-type error stats, sorted by key.
  std::vector<std::pair<std::string, KeyStats>> SnapshotKeys() const;

  struct TenantStats {
    int64_t count = 0;
    double mean_error = 0.0;
    double drift_score = 0.0;  ///< shard Page-Hinkley statistic / ph_lambda
    bool alarmed = false;
    double p50 = 0.0;
    double p99 = 0.0;
  };
  /// Per-tenant drift-shard stats, sorted by tenant id.
  std::vector<std::pair<int32_t, TenantStats>> SnapshotTenants() const;

  /// Clears all state (sketches, Page-Hinkley accumulators, the alarm
  /// latch) but keeps callbacks and attachment.
  void Reset();

  const DriftConfig& config() const { return config_; }

  /// Process-global monitor backing the LSCHED_DRIFT_MONITOR env gate
  /// (never destroyed, like GlobalExporter).
  static DriftMonitor& Global();

 private:
  struct KeySketch {
    int64_t count = 0;
    double error_sum = 0.0;
    P2Quantile p50{0.5};
    P2Quantile p99{0.99};
  };

  /// One tenant's drift shard: the same Welford + one-sided Page-Hinkley
  /// machinery as the global stream, plus its own error quantiles and
  /// model.tenant<id>.* gauges.
  struct TenantShard {
    int64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double ph_up = 0.0;
    double ph_down = 0.0;
    bool alarmed = false;
    double error_sum = 0.0;
    P2Quantile p50{0.5};
    P2Quantile p99{0.99};
    Gauge* drift_score_gauge = nullptr;
    Gauge* pred_error_p50_gauge = nullptr;
    Gauge* pred_error_p99_gauge = nullptr;
  };

  /// Finds/creates the shard for `tenant` (nullptr past max_tenants).
  /// Caller holds mu_.
  TenantShard* ShardFor(int32_t tenant);

  DriftConfig config_;
  mutable std::mutex mu_;
  // Running moments of the signed error (Welford).
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  // One-sided CUSUM forms of the Page-Hinkley statistic.
  double ph_up_ = 0.0;
  double ph_down_ = 0.0;
  bool alarmed_ = false;
  P2Quantile global_p50_{0.5};
  P2Quantile global_p99_{0.99};
  std::vector<std::pair<std::string, KeySketch>> keys_;  // small; linear scan
  std::vector<std::pair<int32_t, TenantShard>> tenants_;  // small; linear scan
  std::vector<std::function<void(const DriftAlarm&)>> callbacks_;
  bool attached_ = false;

  // Cached gauge handles (may be null when export_gauges is off).
  Gauge* drift_score_gauge_ = nullptr;
  Gauge* pred_error_p50_gauge_ = nullptr;
  Gauge* pred_error_p99_gauge_ = nullptr;
  Gauge* pred_error_mean_gauge_ = nullptr;
  Counter* drift_alarms_counter_ = nullptr;
};

#else  // !LSCHED_OBS_ENABLED

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftConfig config = DriftConfig())
      : config_(config) {}
  void Observe(const std::string&, double, double) {}
  void Observe(const std::string&, int32_t, double, double) {}
  void ObserveRecord(const DecisionRecord&) {}
  void AttachToDecisionLog() {}
  void DetachFromDecisionLog() {}
  void AddAlarmCallback(std::function<void(const DriftAlarm&)>) {}
  double drift_score() const { return 0.0; }
  bool alarmed() const { return false; }
  int64_t sample_count() const { return 0; }
  struct KeyStats {
    int64_t count = 0;
    double mean_error = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
  };
  std::vector<std::pair<std::string, KeyStats>> SnapshotKeys() const {
    return {};
  }
  struct TenantStats {
    int64_t count = 0;
    double mean_error = 0.0;
    double drift_score = 0.0;
    bool alarmed = false;
    double p50 = 0.0;
    double p99 = 0.0;
  };
  std::vector<std::pair<int32_t, TenantStats>> SnapshotTenants() const {
    return {};
  }
  void Reset() {}
  const DriftConfig& config() const { return config_; }
  static DriftMonitor& Global() {
    static DriftMonitor m;
    return m;
  }

 private:
  DriftConfig config_;
};

#endif  // LSCHED_OBS_ENABLED

/// Attaches DriftMonitor::Global() to the decision log when the
/// LSCHED_DRIFT_MONITOR environment variable is set (and not 0/off), so
/// any serving or training process exports model.drift_score without code
/// changes. Returns whether the monitor is attached. Called from obs.cc's
/// TU initializer.
bool StartDriftMonitorFromEnv();

}  // namespace obs
}  // namespace lsched

#endif  // LSCHED_OBS_DRIFT_H_

#ifndef LSCHED_OBS_DECISION_LOG_H_
#define LSCHED_OBS_DECISION_LOG_H_

// Scheduler decision log: one record per scheduler invocation, capturing
// the candidate set the policy chose from, the chosen action, the policy's
// own predicted score (learned schedulers annotate it via
// obs::AnnotatePredictedScore), and the *realized* cost of the pipelines
// the decision launched — back-filled as their work orders complete. The
// CSV dump is the offline substrate for prediction-error analysis
// (predicted score vs realized work-order runtimes, cf. Decima &
// IconqSched tooling).

#include <cstdint>
#include <functional>
#include <istream>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace lsched {
namespace obs {

struct DecisionRecord {
  int64_t id = -1;          ///< sequence number within this process
  double time = 0.0;        ///< engine time of the invocation (virtual or wall)
  std::string engine;       ///< "sim" or "real"
  std::string event;        ///< SchedulingEventTypeName of the trigger
  std::string policy;       ///< Scheduler::name()
  /// Candidate set: "query:op" pairs joined by ';' (truncated to
  /// kMaxLoggedCandidates with a trailing "+N" marker).
  std::string candidates;
  int num_candidates = 0;
  int running_queries = 0;
  int free_threads = 0;
  /// Chosen action (first pipeline of the decision; -1/empty decision if
  /// the policy returned nothing).
  int64_t chosen_query = -1;
  int chosen_root = -1;
  /// OperatorTypeName of the chosen root ("" when no pipeline was chosen) —
  /// the per-operator-type key for prediction-drift analysis.
  std::string op_type;
  int degree = 0;
  int max_threads = 0;         ///< parallelism cap set (0 = unchanged)
  int num_pipelines = 0;       ///< pipelines accepted from this decision
  int64_t planned_work_orders = 0;
  double predicted_score = std::numeric_limits<double>::quiet_NaN();
  double schedule_wall_us = 0.0;  ///< wall time inside Schedule()
  double realized_seconds = 0.0;  ///< measured runtime of launched work orders
  bool fallback = false;
  /// Tenant of the chosen query (serving mode; -1 when no pipeline was
  /// chosen or the run predates multi-tenancy). Keys the per-tenant drift
  /// shards (DriftMonitor) without making src/obs depend on src/exec.
  int32_t tenant = -1;
};

inline constexpr int kMaxLoggedCandidates = 32;

#if LSCHED_OBS_ENABLED

class DecisionLog {
 public:
  static DecisionLog& Global();

  /// Appends `record` (id is assigned, the passed value ignored) and
  /// returns the assigned id for realized-cost attribution.
  int64_t Add(DecisionRecord record);

  /// Accumulates measured work-order seconds into record `id` (no-op for
  /// invalid ids — pipelines launched by the fallback path pass -1).
  /// Notifies the back-fill observer, if any, with the updated record.
  void AddRealized(int64_t id, double seconds);

  /// Observer invoked (outside the log's lock, with a copy of the record)
  /// every time realized cost is back-filled into a record — the feed for
  /// the online DriftMonitor. Pass nullptr to clear. One observer at a
  /// time; setting replaces the previous one.
  using BackfillObserver = std::function<void(const DecisionRecord&)>;
  void SetBackfillObserver(BackfillObserver observer);

  /// Adds accepted-pipeline bookkeeping to record `id`.
  void AddPipeline(int64_t id, int64_t planned_work_orders);

  size_t size() const;
  std::vector<DecisionRecord> Snapshot() const;
  void Clear();

  void WriteCsv(std::ostream& out) const;
  bool WriteCsv(const std::string& path) const;
  static const char* CsvHeader();

 private:
  DecisionLog() = default;
  mutable std::mutex mu_;
  std::vector<DecisionRecord> records_;
  /// shared_ptr so AddRealized can copy the handle under the lock and
  /// invoke the observer after releasing it (the observer may re-enter
  /// metrics or block; never call out under mu_).
  std::shared_ptr<const BackfillObserver> backfill_observer_;
};

/// Parses a CSV produced by WriteCsv back into records (header required).
/// Returns false on malformed input. Used by tests (round-trip) and
/// available to offline tooling.
bool ParseDecisionCsv(std::istream& in, std::vector<DecisionRecord>* out);

#else  // !LSCHED_OBS_ENABLED

class DecisionLog {
 public:
  static DecisionLog& Global() {
    static DecisionLog log;
    return log;
  }
  int64_t Add(const DecisionRecord&) { return -1; }
  void AddRealized(int64_t, double) {}
  using BackfillObserver = std::function<void(const DecisionRecord&)>;
  void SetBackfillObserver(BackfillObserver) {}
  void AddPipeline(int64_t, int64_t) {}
  size_t size() const { return 0; }
  std::vector<DecisionRecord> Snapshot() const { return {}; }
  void Clear() {}
  void WriteCsv(std::ostream&) const {}
  bool WriteCsv(const std::string&) const { return false; }
  static const char* CsvHeader() { return ""; }
};

inline bool ParseDecisionCsv(std::istream&, std::vector<DecisionRecord>*) {
  return false;
}

#endif  // LSCHED_OBS_ENABLED

}  // namespace obs
}  // namespace lsched

#endif  // LSCHED_OBS_DECISION_LOG_H_

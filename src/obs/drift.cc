#include "obs/drift.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "obs/decision_log.h"

namespace lsched {
namespace obs {

// ---------------------------------------------------------------------------
// P² streaming quantile (always compiled; no obs dependency).
// ---------------------------------------------------------------------------

P2Quantile::P2Quantile(double quantile) : q_(quantile) {
  increments_[0] = 0.0;
  increments_[1] = q_ / 2.0;
  increments_[2] = q_;
  increments_[3] = (1.0 + q_) / 2.0;
  increments_[4] = 1.0;
}

void P2Quantile::Observe(double x) {
  if (count_ < 5) {
    // Insertion sort into the initial marker heights.
    int i = static_cast<int>(count_);
    heights_[i] = x;
    for (; i > 0 && heights_[i - 1] > heights_[i]; --i) {
      std::swap(heights_[i - 1], heights_[i]);
    }
    ++count_;
    if (count_ == 5) {
      for (int m = 0; m < 5; ++m) {
        positions_[m] = m + 1;
        desired_[m] = 1.0 + 4.0 * increments_[m];
      }
    }
    return;
  }

  // Find the cell k containing x, extending the extremes if needed.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }
  for (int m = k + 1; m < 5; ++m) positions_[m] += 1.0;
  for (int m = 0; m < 5; ++m) desired_[m] += increments_[m];
  ++count_;

  // Adjust the three interior markers toward their desired positions.
  for (int m = 1; m <= 3; ++m) {
    const double d = desired_[m] - positions_[m];
    const double right_gap = positions_[m + 1] - positions_[m];
    const double left_gap = positions_[m - 1] - positions_[m];
    if ((d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0)) {
      const double s = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P²) prediction of the new height.
      const double span = positions_[m + 1] - positions_[m - 1];
      const double hp =
          heights_[m] +
          s / span *
              ((positions_[m] - positions_[m - 1] + s) *
                   (heights_[m + 1] - heights_[m]) / right_gap +
               (positions_[m + 1] - positions_[m] - s) *
                   (heights_[m] - heights_[m - 1]) /
                   (positions_[m] - positions_[m - 1]));
      if (heights_[m - 1] < hp && hp < heights_[m + 1]) {
        heights_[m] = hp;
      } else {
        // Fall back to linear interpolation toward the neighbor.
        const int n = m + static_cast<int>(s);
        heights_[m] += s * (heights_[n] - heights_[m]) /
                       (positions_[n] - positions_[m]);
      }
      positions_[m] += s;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact: interpolate the sorted prefix at rank q * (n - 1).
    const double rank = q_ * static_cast<double>(count_ - 1);
    const int lo = static_cast<int>(rank);
    const int hi = std::min<int>(lo + 1, static_cast<int>(count_) - 1);
    const double frac = rank - lo;
    return heights_[lo] + frac * (heights_[hi] - heights_[lo]);
  }
  return heights_[2];
}

#if LSCHED_OBS_ENABLED

// ---------------------------------------------------------------------------
// DriftMonitor
// ---------------------------------------------------------------------------

DriftMonitor::DriftMonitor(DriftConfig config) : config_(config) {
  if (config_.export_gauges) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    drift_score_gauge_ = reg.GetGauge("model.drift_score");
    pred_error_p50_gauge_ = reg.GetGauge("model.pred_error_p50");
    pred_error_p99_gauge_ = reg.GetGauge("model.pred_error_p99");
    pred_error_mean_gauge_ = reg.GetGauge("model.pred_error_mean");
    drift_alarms_counter_ = reg.GetCounter("model.drift_alarms");
  }
}

DriftMonitor::~DriftMonitor() {
  if (attached_) DetachFromDecisionLog();
}

void DriftMonitor::Observe(const std::string& key, double predicted,
                           double realized) {
  Observe(key, /*tenant=*/-1, predicted, realized);
}

void DriftMonitor::Observe(const std::string& key, int32_t tenant,
                           double predicted, double realized) {
  if (!Enabled()) return;
  if (!std::isfinite(predicted) || !std::isfinite(realized)) return;
  const double err = predicted - realized;

  std::vector<DriftAlarm> fired;
  std::vector<std::function<void(const DriftAlarm&)>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Welford running moments of the signed error.
    ++count_;
    const double delta = err - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (err - mean_);

    global_p50_.Observe(err);
    global_p99_.Observe(err);

    // Per-key sketch (linear scan: the key space is operator types).
    {
      KeySketch* sketch = nullptr;
      for (auto& [name, s] : keys_) {
        if (name == key) {
          sketch = &s;
          break;
        }
      }
      if (sketch == nullptr && keys_.size() >= config_.max_keys) {
        // Key cap reached: collapse unseen keys into "other".
        for (auto& [name, s] : keys_) {
          if (name == "other") {
            sketch = &s;
            break;
          }
        }
        if (sketch == nullptr) {
          keys_.emplace_back("other", KeySketch{});
          sketch = &keys_.back().second;
        }
      } else if (sketch == nullptr) {
        keys_.emplace_back(key, KeySketch{});
        sketch = &keys_.back().second;
      }
      ++sketch->count;
      sketch->error_sum += err;
      sketch->p50.Observe(err);
      sketch->p99.Observe(err);
    }

    // Page-Hinkley (one-sided CUSUM forms, both directions) on the
    // standardized error, once the baseline moments have settled.
    if (count_ > config_.min_samples) {
      const double var = m2_ / static_cast<double>(count_ - 1);
      const double std = std::sqrt(std::max(var, 1e-24));
      const double z = (err - mean_) / std;
      ph_up_ = std::max(0.0, ph_up_ + z - config_.ph_delta);
      ph_down_ = std::max(0.0, ph_down_ - z - config_.ph_delta);
      const double score =
          std::max(ph_up_, ph_down_) / std::max(config_.ph_lambda, 1e-12);
      if (score >= 1.0 && !alarmed_) {
        alarmed_ = true;
        DriftAlarm alarm;
        alarm.drift_score = score;
        alarm.sample_count = count_;
        alarm.error_mean = mean_;
        alarm.error_std = std;
        alarm.upward = ph_up_ >= ph_down_;
        alarm.tenant = -1;
        fired.push_back(alarm);
      }
    }

    // Per-tenant drift shard: the same machinery, keyed by the tenant of
    // the decision, so one tenant's template mix can trigger a retrain
    // while the blended global stream still looks stationary.
    if (TenantShard* shard = tenant >= 0 ? ShardFor(tenant) : nullptr) {
      ++shard->count;
      const double d = err - shard->mean;
      shard->mean += d / static_cast<double>(shard->count);
      shard->m2 += d * (err - shard->mean);
      shard->error_sum += err;
      shard->p50.Observe(err);
      shard->p99.Observe(err);
      if (shard->count > config_.min_samples) {
        const double var = shard->m2 / static_cast<double>(shard->count - 1);
        const double std = std::sqrt(std::max(var, 1e-24));
        const double z = (err - shard->mean) / std;
        shard->ph_up = std::max(0.0, shard->ph_up + z - config_.ph_delta);
        shard->ph_down = std::max(0.0, shard->ph_down - z - config_.ph_delta);
        const double score = std::max(shard->ph_up, shard->ph_down) /
                             std::max(config_.ph_lambda, 1e-12);
        if (score >= 1.0 && !shard->alarmed) {
          shard->alarmed = true;
          DriftAlarm alarm;
          alarm.drift_score = score;
          alarm.sample_count = shard->count;
          alarm.error_mean = shard->mean;
          alarm.error_std = std;
          alarm.upward = shard->ph_up >= shard->ph_down;
          alarm.tenant = tenant;
          fired.push_back(alarm);
        }
      }
      if (config_.export_gauges) {
        shard->drift_score_gauge->Set(std::max(shard->ph_up, shard->ph_down) /
                                      std::max(config_.ph_lambda, 1e-12));
        shard->pred_error_p50_gauge->Set(shard->p50.Value());
        shard->pred_error_p99_gauge->Set(shard->p99.Value());
      }
    }

    if (config_.export_gauges) {
      const double score =
          std::max(ph_up_, ph_down_) / std::max(config_.ph_lambda, 1e-12);
      drift_score_gauge_->Set(score);
      pred_error_p50_gauge_->Set(global_p50_.Value());
      pred_error_p99_gauge_->Set(global_p99_.Value());
      pred_error_mean_gauge_->Set(mean_);
    }
    if (!fired.empty()) callbacks = callbacks_;
  }
  if (!fired.empty()) {
    if (drift_alarms_counter_ != nullptr) {
      drift_alarms_counter_->Add(static_cast<int64_t>(fired.size()));
    }
    for (const DriftAlarm& alarm : fired) {
      for (const auto& cb : callbacks) cb(alarm);
    }
  }
}

DriftMonitor::TenantShard* DriftMonitor::ShardFor(int32_t tenant) {
  for (auto& [id, shard] : tenants_) {
    if (id == tenant) return &shard;
  }
  if (tenants_.size() >= config_.max_tenants) return nullptr;
  tenants_.emplace_back(tenant, TenantShard{});
  TenantShard& shard = tenants_.back().second;
  if (config_.export_gauges) {
    MetricsRegistry& reg = MetricsRegistry::Global();
    const std::string prefix = "model.tenant" + std::to_string(tenant) + ".";
    shard.drift_score_gauge = reg.GetGauge(prefix + "drift_score");
    shard.pred_error_p50_gauge = reg.GetGauge(prefix + "pred_error_p50");
    shard.pred_error_p99_gauge = reg.GetGauge(prefix + "pred_error_p99");
  }
  return &shard;
}

void DriftMonitor::ObserveRecord(const DecisionRecord& record) {
  Observe(record.op_type.empty() ? std::string("unknown") : record.op_type,
          record.tenant, record.predicted_score, record.realized_seconds);
}

void DriftMonitor::AttachToDecisionLog() {
  DecisionLog::Global().SetBackfillObserver(
      [this](const DecisionRecord& r) { ObserveRecord(r); });
  attached_ = true;
}

void DriftMonitor::DetachFromDecisionLog() {
  DecisionLog::Global().SetBackfillObserver(nullptr);
  attached_ = false;
}

void DriftMonitor::AddAlarmCallback(
    std::function<void(const DriftAlarm&)> callback) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_.push_back(std::move(callback));
}

double DriftMonitor::drift_score() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::max(ph_up_, ph_down_) / std::max(config_.ph_lambda, 1e-12);
}

bool DriftMonitor::alarmed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alarmed_;
}

int64_t DriftMonitor::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::vector<std::pair<int32_t, DriftMonitor::TenantStats>>
DriftMonitor::SnapshotTenants() const {
  std::vector<std::pair<int32_t, TenantStats>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(tenants_.size());
    for (const auto& [id, s] : tenants_) {
      TenantStats stats;
      stats.count = s.count;
      stats.mean_error =
          s.count == 0 ? 0.0 : s.error_sum / static_cast<double>(s.count);
      stats.drift_score = std::max(s.ph_up, s.ph_down) /
                          std::max(config_.ph_lambda, 1e-12);
      stats.alarmed = s.alarmed;
      stats.p50 = s.p50.Value();
      stats.p99 = s.p99.Value();
      out.emplace_back(id, stats);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::pair<std::string, DriftMonitor::KeyStats>>
DriftMonitor::SnapshotKeys() const {
  std::vector<std::pair<std::string, KeyStats>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(keys_.size());
    for (const auto& [name, s] : keys_) {
      KeyStats stats;
      stats.count = s.count;
      stats.mean_error =
          s.count == 0 ? 0.0 : s.error_sum / static_cast<double>(s.count);
      stats.p50 = s.p50.Value();
      stats.p99 = s.p99.Value();
      out.emplace_back(name, stats);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void DriftMonitor::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  ph_up_ = 0.0;
  ph_down_ = 0.0;
  alarmed_ = false;
  global_p50_ = P2Quantile(0.5);
  global_p99_ = P2Quantile(0.99);
  keys_.clear();
  tenants_.clear();
}

DriftMonitor& DriftMonitor::Global() {
  static DriftMonitor* m = new DriftMonitor();
  return *m;
}

#endif  // LSCHED_OBS_ENABLED

bool StartDriftMonitorFromEnv() {
#if LSCHED_OBS_ENABLED
  const char* env = std::getenv("LSCHED_DRIFT_MONITOR");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "off") == 0 || std::strcmp(env, "false") == 0) {
    return false;
  }
  DriftMonitor::Global().AttachToDecisionLog();
  return true;
#else
  return false;
#endif
}

}  // namespace obs
}  // namespace lsched

#include "obs/scalar_events.h"

#if LSCHED_OBS_ENABLED

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>

namespace lsched {
namespace obs {

namespace {

/// Locale-independent double formatting with full round-trip precision.
void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

/// Extracts the value of `key` from a single-line JSON object: returns a
/// pointer just past `"key":` or nullptr when absent.
const char* FindField(const std::string& line, const char* key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return nullptr;
  return line.c_str() + pos + needle.size();
}

}  // namespace

ScalarEventWriter& ScalarEventWriter::Global() {
  static ScalarEventWriter* w = new ScalarEventWriter();
  return *w;
}

void ScalarEventWriter::Append(const std::string& tag, int64_t step,
                               double value) {
  if (!Enabled()) return;
  const double wall_ms = NowMicros() / 1000.0;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(ScalarEvent{step, wall_ms, tag, value});
}

size_t ScalarEventWriter::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<ScalarEvent> ScalarEventWriter::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::vector<ScalarEvent> ScalarEventWriter::Series(
    const std::string& tag) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ScalarEvent> out;
  for (const ScalarEvent& e : events_) {
    if (e.tag == tag) out.push_back(e);
  }
  return out;
}

std::vector<double> ScalarEventWriter::SeriesValues(
    const std::string& tag) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<double> out;
  for (const ScalarEvent& e : events_) {
    if (e.tag == tag) out.push_back(e.value);
  }
  return out;
}

void ScalarEventWriter::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

void ScalarEventWriter::WriteJsonl(std::ostream& out) const {
  const std::vector<ScalarEvent> events = Snapshot();
  std::string line;
  for (const ScalarEvent& e : events) {
    line.clear();
    line += "{\"step\":";
    line += std::to_string(e.step);
    line += ",\"wall_ms\":";
    AppendDouble(&line, e.wall_ms);
    line += ",\"tag\":\"";
    line += e.tag;
    line += "\",\"value\":";
    if (std::isfinite(e.value)) {
      AppendDouble(&line, e.value);
    } else {
      line += "null";  // JSON has no NaN/Inf
    }
    line += "}\n";
    out << line;
  }
}

bool ScalarEventWriter::WriteJsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  WriteJsonl(out);
  return out.good();
}

bool ParseScalarEventsJsonl(std::istream& in, std::vector<ScalarEvent>* out) {
  out->clear();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ScalarEvent e;
    const char* step = FindField(line, "step");
    const char* wall = FindField(line, "wall_ms");
    const char* tag = FindField(line, "tag");
    const char* value = FindField(line, "value");
    if (step == nullptr || wall == nullptr || tag == nullptr ||
        value == nullptr) {
      return false;
    }
    char* end = nullptr;
    e.step = std::strtoll(step, &end, 10);
    if (end == step) return false;
    e.wall_ms = std::strtod(wall, &end);
    if (end == wall) return false;
    if (*tag != '"') return false;
    const char* tag_end = std::strchr(tag + 1, '"');
    if (tag_end == nullptr) return false;
    e.tag.assign(tag + 1, tag_end);
    if (std::strncmp(value, "null", 4) == 0) {
      e.value = std::numeric_limits<double>::quiet_NaN();
    } else {
      e.value = std::strtod(value, &end);
      if (end == value) return false;
    }
    out->push_back(std::move(e));
  }
  return true;
}

}  // namespace obs
}  // namespace lsched

#endif  // LSCHED_OBS_ENABLED
